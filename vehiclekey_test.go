package vehiclekey

import (
	"bytes"
	"testing"
)

func quickOptions(seed int64) Options {
	return Options{Seed: seed, TrainingWindows: 160, TrainingEpochs: 12}
}

func TestSetupAndGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	session, err := Setup(quickOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	keys, m, err := session.GenerateKeys(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) == 0 {
		t.Fatal("no keys generated")
	}
	for _, k := range keys {
		if len(k.Bits) != 16 {
			t.Errorf("key length %d, want 16 bytes", len(k.Bits))
		}
	}
	if m.Blocks != len(keys) {
		t.Errorf("metrics blocks %d != keys %d", m.Blocks, len(keys))
	}
	t.Logf("metrics: %v", m)
}

func TestAttackEvaluation(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	session, err := Setup(quickOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	legit, err := session.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	eve, err := session.EvaluateAttack(true)
	if err != nil {
		t.Fatal(err)
	}
	if eve.PostKAR >= legit.PostKAR {
		t.Errorf("Eve %.3f should trail legitimate %.3f", eve.PostKAR, legit.PostKAR)
	}
	if eve.ExactRate > 0 {
		t.Error("Eve must not complete keys")
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	session, err := Setup(quickOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := session.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	if err := session.LoadModel(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestWindowsAligned(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	session, err := Setup(quickOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	alice, bob := session.Windows(5)
	if len(alice) != len(bob) || len(alice) == 0 {
		t.Fatalf("window counts: %d vs %d", len(alice), len(bob))
	}
	for i := range alice {
		if len(alice[i]) != len(bob[i]) {
			t.Errorf("window %d lengths differ", i)
		}
	}
}
