package vehiclekey

import (
	"encoding/hex"
	"errors"
	"testing"
)

// goldenKeys pins the default scheme's output: the exact keys the
// pre-refactor (monolithic BiLSTM→multi-bit→autoencoder→SHA) pipeline
// produced at seed 1 across Urban/Rural × V2I/V2V. The pluggable-stage
// System must reproduce them byte for byte; any drift here means the
// refactor changed the default scheme's behavior, not just its shape.
var goldenKeys = []struct {
	env    Environment
	link   LinkType
	name   string
	agreed []bool
	hex    []string
}{
	{Urban, V2I, "urban-v2i", []bool{true, true},
		[]string{"89f134c536cf5b802b02ad2eb437d563", "2c5e4ed4b1b6ca496af9bcec3ce0d0f4"}},
	{Urban, V2V, "urban-v2v", []bool{false, false},
		[]string{"9ff1b1d07aee6057aafff2517deee077", "ccb6640fa0eda330d8af3df387106960"}},
	{Rural, V2I, "rural-v2i", []bool{true, true},
		[]string{"77a5a73e78aa4fcd3146899ca75c88a5", "266ee3916a231c77302c4db87a56a297"}},
	{Rural, V2V, "rural-v2v", []bool{false, true},
		[]string{"113adad9ec8b6a5d415b5c72aff62882", "a4cb022c9c54850cfb7bdc6fdf7f22db"}},
}

// TestDefaultSchemeGoldenKeys locks the default scheme to its
// pre-refactor output at seed 1 (120 training windows, 6 epochs, two
// keys per scenario). The table was captured from the last commit
// before the pipeline-stage refactor; WithScheme("") and
// WithScheme("vehicle-key") must both land on it.
func TestDefaultSchemeGoldenKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("trains four models")
	}
	runGoldenKeys(t, "") // "" normalizes to the gemm fast path
}

// TestFastPathReferenceGoldenKeys runs the identical battery on the
// "off" path — the original per-step forward and uncached reconciler
// internals. One golden table serving both modes IS the end-to-end
// byte-identity claim of the fast path (training is float64 reference
// in every mode, so the trained weights agree by construction and any
// divergence would have to come from inference or reconciliation).
func TestFastPathReferenceGoldenKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("trains four models")
	}
	runGoldenKeys(t, "off")
}

// TestFastPathInt8GoldenKeys pins how far the int8 quantized path's
// equality extends, empirically, at seed 1: the FIRST reconciliation
// block of every seed scenario reproduces the golden key bit for bit
// (hard key bits at kept positions are identical — proven in
// internal/core's TestInt8KeyBitIdentitySeedScenarios — and the AE
// corrects Alice toward Bob, whose side never runs the predictor).
// Later blocks are NOT pinned: Alice's guard selection consumes the
// soft ŷ directly, and a boundary-adjacent sample kept by one path and
// dropped by the other re-aligns the remaining key stream. That is a
// weight-precision floor — int8 weights with exact float64 activations
// already shift ŷ by ~5e-3 — so whole-session golden identity is a
// gemm/off property, not an int8 one.
func TestFastPathInt8GoldenKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("trains four models")
	}
	for _, g := range goldenKeys {
		g := g
		t.Run(g.name, func(t *testing.T) {
			s, err := Setup(Options{
				Environment:     g.env,
				Link:            g.link,
				Seed:            1,
				TrainingWindows: 120,
				TrainingEpochs:  6,
				Scheme:          "vehicle-key",
				System:          SystemConfig{FastPath: "int8"},
			})
			if err != nil {
				t.Fatal(err)
			}
			keys, _, err := s.GenerateKeys(len(g.hex))
			if err != nil {
				t.Fatal(err)
			}
			if len(keys) != len(g.hex) {
				t.Fatalf("generated %d keys, want %d", len(keys), len(g.hex))
			}
			if got := hex.EncodeToString(keys[0].Bits); got != g.hex[0] {
				t.Errorf("first block key = %s, want golden %s", got, g.hex[0])
			}
			if keys[0].Agreed != g.agreed[0] {
				t.Errorf("first block agreed = %t, want %t", keys[0].Agreed, g.agreed[0])
			}
			for i, k := range keys {
				if len(k.Bits) != 16 {
					t.Errorf("key %d is %d bytes, want 16", i, len(k.Bits))
				}
			}
		})
	}
}

// runGoldenKeys checks the default scheme reproduces the golden table
// at seed 1 under the given fast-path mode.
func runGoldenKeys(t *testing.T, fastpath string) {
	t.Helper()
	for _, g := range goldenKeys {
		g := g
		t.Run(g.name, func(t *testing.T) {
			s, err := Setup(Options{
				Environment:     g.env,
				Link:            g.link,
				Seed:            1,
				TrainingWindows: 120,
				TrainingEpochs:  6,
				Scheme:          "vehicle-key", // explicit name must equal the "" default
				System:          SystemConfig{FastPath: fastpath},
			})
			if err != nil {
				t.Fatal(err)
			}
			keys, _, err := s.GenerateKeys(len(g.hex))
			if err != nil {
				t.Fatal(err)
			}
			if len(keys) != len(g.hex) {
				t.Fatalf("generated %d keys, want %d", len(keys), len(g.hex))
			}
			for i, k := range keys {
				if got := hex.EncodeToString(k.Bits); got != g.hex[i] {
					t.Errorf("key %d = %s, want golden %s", i, got, g.hex[i])
				}
				if k.Agreed != g.agreed[i] {
					t.Errorf("key %d agreed = %t, want %t", i, k.Agreed, g.agreed[i])
				}
			}
		})
	}
}

// TestSchemesRegistered guards the public registry surface: the three
// baselines and the default scheme are always constructible by name,
// and an unknown name fails with the typed error.
func TestSchemesRegistered(t *testing.T) {
	want := map[string]bool{"vehicle-key": true, "lora-key": true, "han": true, "gao": true}
	got := map[string]bool{}
	for _, name := range Schemes() {
		got[name] = true
	}
	for name := range want {
		if !got[name] {
			t.Errorf("scheme %q not registered (have %v)", name, Schemes())
		}
	}
	_, err := Setup(Options{Scheme: "no-such-scheme", TrainingWindows: 40, TrainingEpochs: 1})
	var unknown *ErrUnknownScheme
	if err == nil || !errors.As(err, &unknown) {
		t.Fatalf("Setup with bogus scheme: err = %v, want *ErrUnknownScheme", err)
	}
	if unknown.Name != "no-such-scheme" || len(unknown.Known) == 0 {
		t.Errorf("ErrUnknownScheme fields = %+v", unknown)
	}
}
