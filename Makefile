# Tier-1 verification and developer entry points.

GO ?= go

.PHONY: build test test-short test-race bench bench-json bench-compare fuzz lint load-smoke contention-smoke platoon-smoke

build:
	$(GO) build ./...

# Tier-1: everything must pass, including the trained-model protocol tests.
test: build
	$(GO) test ./...

# Quick loop: skips tests that train models.
test-short:
	$(GO) test -short ./...

# Race-detector pass over the full tree. The protocol and transport layers
# are explicitly concurrent (retransmit timers, fault-injection goroutines),
# so this is part of tier-1, not an optional extra.
test-race:
	./scripts/test-race.sh

# Static analysis: go vet, formatting, and the repo's own vklint suite
# (internal/lint), which enforces the crypto/determinism/concurrency
# and secret-dataflow invariants DESIGN.md documents under "Enforced
# invariants". CI runs this same target; on failure it re-runs vklint
# with -json and uploads the findings as an artifact.
lint:
	$(GO) vet ./...
	@out=$$(gofmt -l . 2>/dev/null); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) run ./cmd/vklint ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One iteration of every benchmark, summarized as JSON (BENCH.json).
# CI's bench-smoke job uploads this per PR as a perf-trajectory artifact.
bench-json:
	./scripts/bench-json.sh

# Regression gate: run the gated scheme family at the baseline's
# 20-iteration benchtime (a single iteration is too noisy for a 10%
# threshold) and compare against the committed pre-fast-path baseline.
# Any BenchmarkScheme/* entry more than 10% slower than BENCH_seed.json
# fails the target (CI runs this in bench-smoke). Override the inputs:
# make bench-compare NEW=... BASE=...
NEW ?= BENCH_scheme.json
BASE ?= BENCH_seed.json
bench-compare:
	@test -f $(NEW) || BENCH_PATTERN='BenchmarkScheme$$' BENCH_TIME=20x ./scripts/bench-json.sh $(NEW)
	./scripts/bench-compare.sh $(NEW) $(BASE)

# Seed-corpus fuzz smoke: the wire formats (protocol envelope codec, TCP
# frame decoder) and the fast-inference numerics (GEMM kernels vs the
# naive multiply, int8 quantize/dequantize round-trip).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime 30s ./internal/protocol/
	$(GO) test -run '^$$' -fuzz FuzzTCPFrameDecode -fuzztime 30s ./internal/transport/
	$(GO) test -run '^$$' -fuzz FuzzGEMM -fuzztime 30s ./internal/mathx/
	$(GO) test -run '^$$' -fuzz FuzzQuantRoundTrip -fuzztime 30s ./internal/nn/

# A small vkload run over real localhost TCP: 64 vehicles through the
# session manager with the training-free lora-key scheme. CI runs this
# as a serving-layer smoke; `go run ./cmd/vkload` alone drives the full
# 1000-vehicle default.
load-smoke:
	$(GO) run ./cmd/vkload -vehicles 64 -concurrency 16 -scheme lora-key \
		-windows 8 -ramp 0 -metrics

# A small fleet contending on one shared lora:// medium: every session
# crosses the simulated MAC (CAD, collisions, capture, hopping), so the
# vk_lora_* counters must come out non-zero. CI greps the metrics dump
# for exactly that, making the smoke an assertion rather than a demo.
contention-smoke:
	$(GO) run ./cmd/vkload -endpoint "lora://ci?channels=4&scale=5000" \
		-scheme lora-key -vehicles 12 -concurrency 12 -windows 16 \
		-ramp 0 -metrics

# One full platoon group-rekey session on a shared lora:// medium:
# concurrent pairwise establishment, an epoch-1 rekey sealed under the
# pairwise keys, two departures, and the epoch-2 survivor rekey. CI
# greps the -metrics dump for non-zero vk_group_* counters, making the
# smoke an assertion rather than a demo.
platoon-smoke:
	$(GO) run ./cmd/vkload -platoon 8 -platoon-leaves 1,6 \
		-endpoint "lora://ci-platoon?channels=4" -scheme lora-key -metrics
