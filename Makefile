# Tier-1 verification and developer entry points.

GO ?= go

.PHONY: build test test-short test-race bench bench-json fuzz lint load-smoke

build:
	$(GO) build ./...

# Tier-1: everything must pass, including the trained-model protocol tests.
test: build
	$(GO) test ./...

# Quick loop: skips tests that train models.
test-short:
	$(GO) test -short ./...

# Race-detector pass over the full tree. The protocol and transport layers
# are explicitly concurrent (retransmit timers, fault-injection goroutines),
# so this is part of tier-1, not an optional extra.
test-race:
	./scripts/test-race.sh

# Static analysis: go vet, formatting, and the repo's own vklint suite
# (internal/lint), which enforces the crypto/determinism/concurrency
# and secret-dataflow invariants DESIGN.md documents under "Enforced
# invariants". CI runs this same target; on failure it re-runs vklint
# with -json and uploads the findings as an artifact.
lint:
	$(GO) vet ./...
	@out=$$(gofmt -l . 2>/dev/null); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) run ./cmd/vklint ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One iteration of every benchmark, summarized as JSON (BENCH.json).
# CI's bench-smoke job uploads this per PR as a perf-trajectory artifact.
bench-json:
	./scripts/bench-json.sh

# Seed-corpus fuzz smoke for the wire formats: the protocol envelope
# codec and the TCP frame decoder it rides on.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime 30s ./internal/protocol/
	$(GO) test -run '^$$' -fuzz FuzzTCPFrameDecode -fuzztime 30s ./internal/transport/

# A small vkload run over real localhost TCP: 64 vehicles through the
# session manager with the training-free lora-key scheme. CI runs this
# as a serving-layer smoke; `go run ./cmd/vkload` alone drives the full
# 1000-vehicle default.
load-smoke:
	$(GO) run ./cmd/vkload -vehicles 64 -concurrency 16 -scheme lora-key \
		-windows 8 -ramp 0 -metrics
