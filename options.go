package vehiclekey

import (
	"log"

	"repro/internal/core"
	"repro/internal/lora"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// Recorder is the observability hook every layer records into: counters,
// gauges, histogram observations, and trace events, addressed by metric
// name. The default everywhere is a no-op; pass a *MetricsRegistry (or
// any implementation) via WithRecorder to collect.
type Recorder = obs.Recorder

// MetricsRegistry is the concrete Recorder: lock-cheap instruments plus
// a bounded event trace, exportable as a JSON snapshot (WriteJSON) or in
// the Prometheus text format (WritePrometheus).
type MetricsRegistry = obs.Registry

// NewMetricsRegistry builds a registry with the full Vehicle-Key metric
// schema pre-declared, so exports always contain every family — protocol
// ARQ counters, per-phase pipeline histograms, transport fault counts —
// even before (or without) traffic.
func NewMetricsRegistry() *MetricsRegistry {
	r := obs.NewRegistry()
	obs.DeclareStandard(r)
	return r
}

// SystemConfig re-exports the pipeline configuration (Options.System).
type SystemConfig = core.Config

// MediumConfig re-exports the shared-medium MAC configuration
// (Options.Medium): channel count, capture margin, CAD and backoff
// behaviour, per-device duty-cycle budget, hop dwell, and the virtual
// clock mode. A zero value normalizes to the documented defaults; see
// WithMedium.
type MediumConfig = lora.MediumConfig

// MediumStats re-exports the shared medium's MAC counters (frames,
// collisions, CAD drops, airtime), as returned by Medium.Stats.
type MediumStats = lora.Stats

// Medium re-exports the shared LoRa medium itself: a session configured
// with Options.Medium exposes one via Session.Medium, and its Link /
// Listen / Dial endpoints carry transport connections through the
// contended channel model.
type Medium = lora.Medium

// Sentinel errors re-exported from the protocol layer. A failed round's
// KeyOutcome.Err wraps one of these in a *RoundError; branch with
// errors.Is / errors.As.
var (
	// ErrConfirmFailed: the peers reconciled to different bits, or the
	// confirmation tag was tampered with.
	ErrConfirmFailed = protocol.ErrConfirmFailed
	// ErrPeerTimeout: the peer stopped responding and retries ran out.
	ErrPeerTimeout = protocol.ErrPeerTimeout
)

// RoundError locates a protocol round failure (round index plus the
// exchange phase that died), wrapping one of the sentinels above.
type RoundError = protocol.RoundError

// ErrUnknownScheme reports an Options.Scheme name no registered scheme
// answers to; its Known field lists the valid names.
type ErrUnknownScheme = core.ErrUnknownScheme

// SessionObserver receives session lifecycle callbacks. Callbacks run
// synchronously on the calling goroutine; implementations must be quick
// or hand off.
type SessionObserver interface {
	// SessionTrained fires once Setup's model training completes.
	SessionTrained(seed int64, epochs int)
	// KeyGenerated fires for every key GenerateKeys produces, confirmed
	// or not.
	KeyGenerated(key Key)
}

// ObserverFuncs adapts plain functions to SessionObserver; nil fields
// are skipped.
type ObserverFuncs struct {
	OnTrained func(seed int64, epochs int)
	OnKey     func(key Key)
}

// SessionTrained implements SessionObserver.
func (o ObserverFuncs) SessionTrained(seed int64, epochs int) {
	if o.OnTrained != nil {
		o.OnTrained(seed, epochs)
	}
}

// KeyGenerated implements SessionObserver.
func (o ObserverFuncs) KeyGenerated(key Key) {
	if o.OnKey != nil {
		o.OnKey(key)
	}
}

// Option mutates an Options value; pass options to SetupWith. The struct
// path (Setup with a filled Options) and the functional path are
// equivalent — an Option is sugar over the corresponding field.
type Option func(*Options)

// WithEnvironment selects the propagation preset (Urban or Rural).
func WithEnvironment(e Environment) Option {
	return func(o *Options) { o.Environment = e }
}

// WithLink selects the link type (V2I or V2V).
func WithLink(l LinkType) Option {
	return func(o *Options) { o.Link = l }
}

// WithSpeed sets the vehicle speed in km/h.
func WithSpeed(kmh float64) Option {
	return func(o *Options) { o.SpeedKmh = kmh }
}

// WithSeed sets the deterministic seed.
func WithSeed(seed int64) Option {
	return func(o *Options) { o.Seed = seed }
}

// WithTrainingWindows sets the number of probing windows used for
// training.
func WithTrainingWindows(n int) Option {
	return func(o *Options) { o.TrainingWindows = n }
}

// WithTrainingEpochs sets the predictor training epochs.
func WithTrainingEpochs(n int) Option {
	return func(o *Options) { o.TrainingEpochs = n }
}

// WithSystemConfig replaces the advanced pipeline configuration.
func WithSystemConfig(cfg SystemConfig) Option {
	return func(o *Options) { o.System = cfg }
}

// WithFastPath selects the predictor inference implementation: "gemm"
// (the default batched kernels, byte-identical to the reference), "int8"
// (calibrated quantized serving, key-bit-identical on the paper's
// scenarios), or "off" (the original per-step reference path). Training
// always runs in full float64 regardless of the mode, so trained weights
// — and therefore Export/Import artifacts — are identical across modes.
func WithFastPath(mode string) Option {
	return func(o *Options) { o.System.FastPath = mode }
}

// WithScheme selects the key-generation scheme by registry name —
// "vehicle-key" (the default), "lora-key", "han", or "gao"; see
// Schemes(). Setup fails with ErrUnknownScheme for anything else.
func WithScheme(name string) Option {
	return func(o *Options) { o.Scheme = name }
}

// WithMedium attaches a shared LoRa medium to the session: cfg's
// contention parameters (channels, capture margin, CAD, duty cycle,
// dwell) flow through the same surface as WithScheme/WithFastPath, zero
// fields take the documented defaults, the medium seed defaults to the
// session seed, and MAC counters record into the session's Recorder.
// The built medium is returned by Session.Medium.
func WithMedium(cfg MediumConfig) Option {
	return func(o *Options) { o.Medium = &cfg }
}

// WithRecorder routes the session's metrics — pipeline phase timings,
// key counters — into r. Recording is one-way: nothing read from the
// recorder influences results, so an instrumented run stays bit-identical
// to an uninstrumented one with the same seed.
func WithRecorder(r Recorder) Option {
	return func(o *Options) { o.Recorder = r }
}

// WithLogger sets a logger for coarse progress lines (training done,
// keys generated). Nil keeps the session silent.
func WithLogger(l *log.Logger) Option {
	return func(o *Options) { o.Logger = l }
}

// WithObserver registers a lifecycle callback receiver.
func WithObserver(obs SessionObserver) Option {
	return func(o *Options) { o.Observer = obs }
}
