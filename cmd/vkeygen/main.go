// Command vkeygen trains a Vehicle-Key deployment on a simulated
// vehicular link and generates session keys, printing them with their
// agreement diagnostics.
//
//	vkeygen -env urban -link v2i -speed 50 -keys 4
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	vehiclekey "repro"
)

func main() {
	var (
		env   = flag.String("env", "urban", "environment: urban or rural")
		link  = flag.String("link", "v2i", "link type: v2i or v2v")
		speed = flag.Float64("speed", 50, "vehicle speed in km/h")
		keys  = flag.Int("keys", 4, "number of keys to generate")
		seed  = flag.Int64("seed", 1, "deterministic seed")
		quick = flag.Bool("quick", false, "smaller training run")
	)
	flag.Parse()

	opts := vehiclekey.Options{SpeedKmh: *speed, Seed: *seed}
	switch *env {
	case "urban":
		opts.Environment = vehiclekey.Urban
	case "rural":
		opts.Environment = vehiclekey.Rural
	default:
		fmt.Fprintln(os.Stderr, "vkeygen: -env must be urban or rural")
		os.Exit(2)
	}
	switch *link {
	case "v2i":
		opts.Link = vehiclekey.V2I
	case "v2v":
		opts.Link = vehiclekey.V2V
	default:
		fmt.Fprintln(os.Stderr, "vkeygen: -link must be v2i or v2v")
		os.Exit(2)
	}
	if *quick {
		opts.TrainingWindows = 160
		opts.TrainingEpochs = 15
	}

	fmt.Printf("training Vehicle-Key on a simulated %s %s link at %.0f km/h...\n", *env, *link, *speed)
	session, err := vehiclekey.Setup(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vkeygen: %v\n", err)
		os.Exit(1)
	}
	ks, metrics, err := session.GenerateKeys(*keys)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vkeygen: %v\n", err)
		os.Exit(1)
	}
	for i, k := range ks {
		status := "AGREED"
		if !k.Agreed {
			status = fmt.Sprintf("mismatch (%.1f%% agreement)", 100*k.Agreement)
		}
		fmt.Printf("key %d: %s  %s\n", i+1, hex.EncodeToString(k.Bits), status)
	}
	fmt.Printf("\nmetrics: %v\n", metrics)
}
