// Command vkeygen trains a Vehicle-Key deployment on a simulated
// vehicular link and generates session keys, printing them with their
// agreement diagnostics.
//
//	vkeygen -env urban -link v2i -speed 50 -keys 4
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	vehiclekey "repro"
)

func main() {
	var (
		env   = flag.String("env", "urban", "environment: urban or rural")
		link  = flag.String("link", "v2i", "link type: v2i or v2v")
		speed = flag.Float64("speed", 50, "vehicle speed in km/h")
		keys  = flag.Int("keys", 4, "number of keys to generate")
		seed  = flag.Int64("seed", 1, "deterministic seed")
		quick = flag.Bool("quick", false, "smaller training run")
	)
	flag.Parse()

	opts := vehiclekey.Options{SpeedKmh: *speed, Seed: *seed}
	switch *env {
	case "urban":
		opts.Environment = vehiclekey.Urban
	case "rural":
		opts.Environment = vehiclekey.Rural
	default:
		fatalf(2, "vkeygen: -env must be urban or rural")
	}
	switch *link {
	case "v2i":
		opts.Link = vehiclekey.V2I
	case "v2v":
		opts.Link = vehiclekey.V2V
	default:
		fatalf(2, "vkeygen: -link must be v2i or v2v")
	}
	if *quick {
		opts.TrainingWindows = 160
		opts.TrainingEpochs = 15
	}

	fmt.Printf("training Vehicle-Key on a simulated %s %s link at %.0f km/h...\n", *env, *link, *speed)
	session, err := vehiclekey.Setup(opts)
	if err != nil {
		fatalf(1, "vkeygen: %v", err)
	}
	ks, metrics, err := session.GenerateKeys(*keys)
	if err != nil {
		fatalf(1, "vkeygen: %v", err)
	}
	for i, k := range ks {
		status := "AGREED"
		if !k.Agreed {
			status = fmt.Sprintf("mismatch (%.1f%% agreement)", 100*k.Agreement)
		}
		fmt.Printf("key %d: %s  %s\n", i+1, hex.EncodeToString(k.Bits), status)
	}
	fmt.Printf("\nmetrics: %v\n", metrics)
}

// fatalf reports a fatal error and exits with the given code. Stderr is
// best-effort by design: the process is exiting because of the reported
// error, and there is nothing left to do if the write itself fails.
func fatalf(code int, format string, args ...any) {
	_, _ = fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(code)
}
