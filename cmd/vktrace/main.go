// Command vktrace generates synthetic channel traces — the simulator's
// stand-in for the paper's 20-hour drive-test dataset — and writes them as
// CSV for external analysis.
//
//	vktrace -env urban -link v2v -exchanges 200 > trace.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/channel"
	"repro/internal/trace"
)

func main() {
	var (
		env       = flag.String("env", "urban", "environment: urban or rural")
		link      = flag.String("link", "v2i", "link type: v2i or v2v")
		speed     = flag.Float64("speed", 50, "vehicle speed in km/h")
		exchanges = flag.Int("exchanges", 100, "probe exchanges to simulate")
		seed      = flag.Int64("seed", 1, "deterministic seed")
		kind      = flag.String("kind", "prssi", "output series: prssi or arrssi")
	)
	flag.Parse()

	e := channel.Urban
	if *env == "rural" {
		e = channel.Rural
	}
	l := channel.V2I
	if *link == "v2v" {
		l = channel.V2V
	}
	sc := trace.NewScenario(e, l)
	sc.SpeedAKmh = *speed
	col := trace.NewCollector(sc, *seed)
	ex := col.Run(*exchanges)

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	switch *kind {
	case "prssi":
		w.Write([]string{"exchange", "alice_prssi_dbm", "bob_prssi_dbm", "eve_prssi_dbm"})
		alice, bob := trace.PRSSI(ex)
		eve := trace.EvePRSSI(ex)
		for i := range alice {
			w.Write([]string{
				strconv.Itoa(i),
				fmt.Sprintf("%.2f", alice[i]), fmt.Sprintf("%.2f", bob[i]), fmt.Sprintf("%.2f", eve[i]),
			})
		}
	case "arrssi":
		w.Write([]string{"idx", "alice", "bob", "eve_imitate"})
		a, b := trace.ArRSSI(ex, trace.DefaultExtract())
		ev := trace.EveArRSSI(ex, trace.DefaultExtract(), true)
		fa, fb, fe := trace.Flatten(a), trace.Flatten(b), trace.Flatten(ev)
		for i := range fa {
			w.Write([]string{
				strconv.Itoa(i),
				fmt.Sprintf("%.2f", fa[i]), fmt.Sprintf("%.2f", fb[i]), fmt.Sprintf("%.2f", fe[i]),
			})
		}
	default:
		fmt.Fprintln(os.Stderr, "vktrace: -kind must be prssi or arrssi")
		os.Exit(2)
	}
}
