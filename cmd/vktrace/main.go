// Command vktrace generates synthetic channel traces — the simulator's
// stand-in for the paper's 20-hour drive-test dataset — and writes them as
// CSV for external analysis.
//
//	vktrace -env urban -link v2v -exchanges 200 > trace.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/channel"
	"repro/internal/trace"
)

func main() {
	var (
		env       = flag.String("env", "urban", "environment: urban or rural")
		link      = flag.String("link", "v2i", "link type: v2i or v2v")
		speed     = flag.Float64("speed", 50, "vehicle speed in km/h")
		exchanges = flag.Int("exchanges", 100, "probe exchanges to simulate")
		seed      = flag.Int64("seed", 1, "deterministic seed")
		kind      = flag.String("kind", "prssi", "output series: prssi or arrssi")
	)
	flag.Parse()

	e := channel.Urban
	if *env == "rural" {
		e = channel.Rural
	}
	l := channel.V2I
	if *link == "v2v" {
		l = channel.V2V
	}
	sc := trace.NewScenario(e, l)
	sc.SpeedAKmh = *speed
	col := trace.NewCollector(sc, *seed)
	ex := col.Run(*exchanges)

	w := csv.NewWriter(os.Stdout)
	// A short write (closed pipe, full disk) must fail the run, not
	// silently truncate the dataset.
	put := func(record []string) {
		if err := w.Write(record); err != nil {
			fatalf(1, "vktrace: write: %v", err)
		}
	}
	switch *kind {
	case "prssi":
		put([]string{"exchange", "alice_prssi_dbm", "bob_prssi_dbm", "eve_prssi_dbm"})
		alice, bob := trace.PRSSI(ex)
		eve := trace.EvePRSSI(ex)
		for i := range alice {
			put([]string{
				strconv.Itoa(i),
				fmt.Sprintf("%.2f", alice[i]), fmt.Sprintf("%.2f", bob[i]), fmt.Sprintf("%.2f", eve[i]),
			})
		}
	case "arrssi":
		put([]string{"idx", "alice", "bob", "eve_imitate"})
		a, b := trace.ArRSSI(ex, trace.DefaultExtract())
		ev := trace.EveArRSSI(ex, trace.DefaultExtract(), true)
		fa, fb, fe := trace.Flatten(a), trace.Flatten(b), trace.Flatten(ev)
		for i := range fa {
			put([]string{
				strconv.Itoa(i),
				fmt.Sprintf("%.2f", fa[i]), fmt.Sprintf("%.2f", fb[i]), fmt.Sprintf("%.2f", fe[i]),
			})
		}
	default:
		fatalf(2, "vktrace: -kind must be prssi or arrssi")
	}
	w.Flush()
	if err := w.Error(); err != nil {
		fatalf(1, "vktrace: flush: %v", err)
	}
}

// fatalf reports a fatal error and exits with the given code. The
// stderr write is best-effort: the process is exiting either way.
func fatalf(code int, format string, args ...any) {
	_, _ = fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(code)
}
