// Command vklint runs the repository's domain static analyzers — the
// machine-checked forms of the invariants Vehicle-Key's security and
// reproducibility arguments rest on (see DESIGN.md, "Enforced
// invariants"). It is built only on the standard library's go/ast and
// go/types; there is no x/tools dependency.
//
//	vklint ./...                 # whole module (the CI lint job)
//	vklint -checks consttime,zeroize ./internal/secure/...
//	vklint -list                 # describe the registered checks
//
// Exit status: 0 when no error-severity finding survives suppression,
// 1 when findings remain, 2 on usage or load failure. A finding is
// suppressed by a justified comment on or directly above its line:
//
//	//vklint:ignore consttime -- tag is public transcript data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	var (
		checks = flag.String("checks", "", "comma-separated checks to run (default: all)")
		list   = flag.Bool("list", false, "list registered checks and exit")
	)
	flag.Usage = func() {
		_, _ = fmt.Fprintf(os.Stderr, "usage: vklint [-checks a,b] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s  [%s]\n", a.Name, a.Doc, a.Severity)
		}
		return
	}

	analyzers, err := lint.Select(*checks)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	dirs, err := loader.Match(patterns...)
	if err != nil {
		fatal(err)
	}
	if len(dirs) == 0 {
		fatal(fmt.Errorf("no packages match %v", patterns))
	}
	pkgs, err := loader.Load(dirs...)
	if err != nil {
		fatal(err)
	}

	diags := lint.Run(loader.Module(), pkgs, analyzers)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		file := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, file); err == nil && !filepath.IsAbs(rel) {
				file = rel
			}
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", file, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
	}
	if lint.HasErrors(diags) {
		fmt.Printf("vklint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

func fatal(err error) {
	_, _ = fmt.Fprintf(os.Stderr, "vklint: %v\n", err)
	os.Exit(2)
}
