// Command vklint runs the repository's domain static analyzers — the
// machine-checked forms of the invariants Vehicle-Key's security and
// reproducibility arguments rest on (see DESIGN.md, "Enforced
// invariants"). It is built only on the standard library's go/ast and
// go/types; there is no x/tools dependency.
//
//	vklint ./...                 # whole module (the CI lint job)
//	vklint -checks consttime,zeroize ./internal/secure/...
//	vklint -json ./... > findings.json
//	vklint -severity error ./... # hide warn-level findings
//	vklint -list                 # describe the registered checks
//
// Exit status: 0 when no error-severity finding survives suppression,
// 1 when findings remain, 2 on usage or load failure. A finding is
// suppressed by a justified comment on or directly above its line:
//
//	//vklint:ignore consttime -- tag is public transcript data
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the machine-readable shape of one diagnostic, stable
// for CI artifact consumers.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Check    string `json:"check"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vklint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		checks   = fs.String("checks", "", "comma-separated checks to run (default: all)")
		list     = fs.Bool("list", false, "list registered checks and exit")
		jsonOut  = fs.Bool("json", false, "write findings as a JSON array on stdout")
		severity = fs.String("severity", "warn", "minimum severity to report: warn or error")
	)
	fs.Usage = func() {
		_, _ = fmt.Fprintf(stderr, "usage: vklint [-checks a,b] [-json] [-severity warn|error] [-list] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var floor lint.Severity
	switch *severity {
	case "warn":
		floor = lint.Warn
	case "error":
		floor = lint.Error
	default:
		return fatal(stderr, fmt.Errorf("invalid -severity %q (want warn or error)", *severity))
	}

	if *list {
		for _, a := range lint.Analyzers() {
			_, _ = fmt.Fprintf(stdout, "%-11s %s  [%s]\n", a.Name, a.Doc, a.Severity)
		}
		return 0
	}

	analyzers, err := lint.Select(*checks)
	if err != nil {
		return fatal(stderr, err)
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		return fatal(stderr, err)
	}
	dirs, err := loader.Match(patterns...)
	if err != nil {
		return fatal(stderr, err)
	}
	if len(dirs) == 0 {
		return fatal(stderr, fmt.Errorf("no packages match %v", patterns))
	}
	pkgs, err := loader.Load(dirs...)
	if err != nil {
		return fatal(stderr, err)
	}

	all := lint.Run(loader.Module(), pkgs, analyzers)
	diags := all[:0]
	for _, d := range all {
		if d.Severity >= floor {
			diags = append(diags, d)
		}
	}

	cwd, _ := os.Getwd()
	rel := func(file string) string {
		if cwd != "" {
			if r, err := filepath.Rel(cwd, file); err == nil && !filepath.IsAbs(r) {
				return r
			}
		}
		return file
	}

	if *jsonOut {
		out := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonFinding{
				File:     rel(d.Pos.Filename),
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Check:    d.Check,
				Severity: d.Severity.String(),
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return fatal(stderr, err)
		}
	} else {
		for _, d := range diags {
			_, _ = fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, d.Message)
		}
	}
	if lint.HasErrors(diags) {
		if !*jsonOut {
			_, _ = fmt.Fprintf(stdout, "vklint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
		return 1
	}
	return 0
}

func fatal(stderr io.Writer, err error) int {
	_, _ = fmt.Fprintf(stderr, "vklint: %v\n", err)
	return 2
}
