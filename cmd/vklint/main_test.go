package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const (
	cleanDir  = "../../internal/lint/testdata/clean/secure"
	badDir    = "../../internal/lint/testdata/allocbound/transport"
	warnDir   = "../../internal/lint/testdata/engine/pipeline"
	brokenDir = "../../internal/lint/testdata/broken/transport"
)

// TestExitCodeContract pins the 0/1/2 exit-code contract across both
// output modes: 0 when no error-severity finding survives, 1 when
// findings remain, 2 on usage or load failure.
func TestExitCodeContract(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"clean_text", []string{"-checks", "allocbound", cleanDir}, 0},
		{"clean_json", []string{"-json", "-checks", "allocbound", cleanDir}, 0},
		{"findings_text", []string{"-checks", "allocbound", badDir}, 1},
		{"findings_json", []string{"-json", "-checks", "allocbound", badDir}, 1},
		{"findings_severity_floor", []string{"-severity", "error", "-checks", "allocbound", badDir}, 1},
		{"warn_only_text", []string{"-checks", "keyflow", warnDir}, 0},
		{"warn_only_json", []string{"-json", "-checks", "keyflow", warnDir}, 0},
		{"warn_filtered_by_floor", []string{"-severity", "error", "-checks", "keyflow", warnDir}, 0},
		{"unknown_check", []string{"-checks", "nosuchcheck", cleanDir}, 2},
		{"bad_severity", []string{"-severity", "loud", cleanDir}, 2},
		{"load_failure", []string{brokenDir}, 2},
		{"bad_flag", []string{"-nosuchflag"}, 2},
		{"list", []string{"-list"}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(c.args, &stdout, &stderr); got != c.code {
				t.Fatalf("run(%v) = %d, want %d\nstdout:\n%s\nstderr:\n%s", c.args, got, c.code, stdout.String(), stderr.String())
			}
		})
	}
}

// TestTextOutput checks the human-readable mode: path:line:col lines and
// the trailing summary on failure.
func TestTextOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-checks", "allocbound", badDir}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "allocbound:") {
		t.Errorf("text output has no allocbound finding:\n%s", out)
	}
	if !strings.Contains(out, "vklint: ") || !strings.Contains(out, "finding(s)") {
		t.Errorf("text output has no summary line:\n%s", out)
	}
}

// TestJSONOutput checks the machine-readable mode: a parseable array of
// findings with the documented fields, and no summary line mixed in.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-checks", "allocbound", badDir}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("stdout is not a JSON findings array: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("JSON mode reported no findings on the bad fixture")
	}
	for _, f := range findings {
		if f.Check != "allocbound" || f.Severity != "error" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("malformed finding: %+v", f)
		}
	}

	// The clean fixture must still produce a valid (empty) array.
	stdout.Reset()
	if code := run([]string{"-json", "-checks", "allocbound", cleanDir}, &stdout, &stderr); code != 0 {
		t.Fatalf("clean run exit %d, want 0", code)
	}
	var empty []jsonFinding
	if err := json.Unmarshal(stdout.Bytes(), &empty); err != nil || len(empty) != 0 {
		t.Fatalf("clean JSON output = %q (err %v), want empty array", stdout.String(), err)
	}
}

// TestSeverityFloor checks that -severity error drops warn-level
// findings from the output while error findings stay.
func TestSeverityFloor(t *testing.T) {
	var all, floored bytes.Buffer
	var stderr bytes.Buffer
	if code := run([]string{"-checks", "keyflow", warnDir}, &all, &stderr); code != 0 {
		t.Fatalf("warn-only run exit %d, want 0 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(all.String(), "vklint:") {
		t.Errorf("default floor hid the warn finding:\n%s", all.String())
	}
	if code := run([]string{"-severity", "error", "-checks", "keyflow", warnDir}, &floored, &stderr); code != 0 {
		t.Fatalf("floored run exit %d, want 0", code)
	}
	if floored.Len() != 0 {
		t.Errorf("-severity error still printed warn findings:\n%s", floored.String())
	}
}
