// Command vkproto runs one end of the Vehicle-Key establishment protocol
// over UDP, so the two protocol roles can run as separate processes (or
// separate machines sharing the simulated channel seed).
//
// Terminal 1: vkproto -role bob -listen 127.0.0.1:9100
// Terminal 2: vkproto -role alice -peer 127.0.0.1:9100
//
// Both processes derive the same simulated drive and trained model from
// -seed, standing in for two radios probing the same physical channel.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	vehiclekey "repro"
	"repro/internal/protocol"
	"repro/internal/transport"
)

func main() {
	var (
		role    = flag.String("role", "", "alice or bob")
		listen  = flag.String("listen", "127.0.0.1:9100", "bob's UDP address")
		peer    = flag.String("peer", "127.0.0.1:9100", "peer address (alice side)")
		seed    = flag.Int64("seed", 1, "shared deterministic seed")
		windows = flag.Int("windows", 16, "probing windows to run")
		session = flag.String("session", "vkproto", "session identifier")
	)
	flag.Parse()

	fmt.Println("building the shared channel simulation and model...")
	vs, err := vehiclekey.Setup(vehiclekey.Options{
		Seed:            *seed,
		TrainingWindows: 240,
		TrainingEpochs:  18,
	})
	if err != nil {
		fatal(err)
	}
	aliceWin, bobWin := vs.Windows(*windows)

	var conn *transport.UDPConn
	switch *role {
	case "bob":
		conn, err = transport.DialUDP(*listen, "127.0.0.1:9") // peer learned from first datagram
		if err != nil {
			fatal(err)
		}
		// Wait for Alice's hello to learn her address.
		conn.SetPeer(nil)
		hello, err := conn.Recv()
		if err != nil {
			fatal(fmt.Errorf("waiting for alice: %w", err))
		}
		fmt.Printf("alice connected: %s\n", hello)
	case "alice":
		conn, err = transport.DialUDP("127.0.0.1:0", *peer)
		if err != nil {
			fatal(err)
		}
		if err := conn.Send([]byte("hello from alice")); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("-role must be alice or bob"))
	}
	defer conn.Close()

	node := protocol.NewNode(vs.System(), conn, *session)
	var outcomes []protocol.KeyOutcome
	if *role == "bob" {
		outcomes, err = node.RunBob(bobWin)
	} else {
		outcomes, err = node.RunAlice(aliceWin)
	}
	if err != nil {
		fatal(err)
	}
	confirmed := 0
	for i, o := range outcomes {
		if o.Confirmed {
			confirmed++
			fmt.Printf("block %d: key %s\n", i, hex.EncodeToString(o.Key))
		} else {
			fmt.Printf("block %d: rejected by confirmation\n", i)
		}
	}
	fmt.Printf("%s done: %d/%d blocks confirmed\n", *role, confirmed, len(outcomes))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "vkproto: %v\n", err)
	os.Exit(1)
}
