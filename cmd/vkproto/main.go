// Command vkproto runs one end of the Vehicle-Key establishment protocol
// over a network transport, so the two protocol roles can run as separate
// processes (or separate machines sharing the simulated channel seed).
//
// Terminal 1: vkproto -role bob -endpoint udp://127.0.0.1:9100
// Terminal 2: vkproto -role alice -endpoint udp://127.0.0.1:9100
//
// -endpoint takes any socket scheme the transport registry knows
// (tcp://host:port, udp://host:port); the in-process schemes (mem://,
// lora://) need both roles in one process — use vkload for those. The
// pre-endpoint flags (-listen, -peer) are deprecated aliases for the
// original UDP-only flow.
//
// Both processes derive the same simulated drive and trained model from
// -seed, standing in for two radios probing the same physical channel.
//
// Link faults can be injected locally to exercise the protocol's
// retransmit/resynchronization path without a lossy network:
//
//	vkproto -role bob -listen 127.0.0.1:9100 -loss 0.25 -reorder 0.2
//	vkproto -role alice -peer 127.0.0.1:9100 -loss 0.25 -reorder 0.2
//
// Faults apply to this process's outgoing datagrams, so each side
// degrades its own uplink; run both with flags for a symmetric bad link.
package main

import (
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"net/url"
	"os"
	"strings"
	"time"

	vehiclekey "repro"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/transport"
)

func main() {
	var (
		role     = flag.String("role", "", "alice or bob")
		endpoint = flag.String("endpoint", "", "transport endpoint URL, e.g. tcp://host:port or udp://host:port (bob listens, alice dials)")
		listen   = flag.String("listen", "127.0.0.1:9100", "deprecated: use -endpoint udp://addr; bob's UDP address")
		peer     = flag.String("peer", "127.0.0.1:9100", "deprecated: use -endpoint udp://addr; peer address (alice side)")
		seed     = flag.Int64("seed", 21, "shared deterministic seed")
		windows  = flag.Int("windows", 16, "probing windows to run")
		session  = flag.String("session", "vkproto", "session identifier")
		scheme   = flag.String("scheme", "", "key-generation scheme (default vehicle-key; see -list-schemes)")
		list     = flag.Bool("list-schemes", false, "print the registered scheme names and exit")

		loss      = flag.Float64("loss", 0, "probability of dropping an outgoing message")
		dup       = flag.Float64("dup", 0, "probability of duplicating an outgoing message")
		reorder   = flag.Float64("reorder", 0, "probability of holding a message past its successor")
		corrupt   = flag.Float64("corrupt", 0, "probability of flipping bytes in an outgoing message")
		delay     = flag.Float64("delay", 0, "probability of delaying an outgoing message")
		maxDelay  = flag.Duration("max-delay", 5*time.Millisecond, "upper bound for injected delays")
		faultSeed = flag.Int64("fault-seed", 1, "seed for the fault-injection schedule")

		timeout = flag.Duration("timeout", 500*time.Millisecond, "initial per-message receive timeout")
		retries = flag.Int("retries", 8, "retransmit attempts before abandoning a round")

		metrics    = flag.Bool("metrics", false, "dump a Prometheus-text metrics snapshot to stderr when done")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof plus /metrics and /vars on this address")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile covering the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file when done")
	)
	flag.Parse()

	if *list {
		for _, name := range vehiclekey.Schemes() {
			fmt.Println(name)
		}
		return
	}

	// Validate cheap inputs before paying for model training.
	if *role != "alice" && *role != "bob" {
		fatal(fmt.Errorf("-role must be alice or bob"))
	}
	if *endpoint != "" {
		if err := checkEndpoint(*endpoint); err != nil {
			fatal(err)
		}
	}

	// Observability is opt-in: without flags every layer records into
	// obs.Nop. One registry collects the session pipeline, the protocol
	// node, and the fault injector together.
	var reg *vehiclekey.MetricsRegistry
	if *metrics || *pprofAddr != "" {
		reg = vehiclekey.NewMetricsRegistry()
	}
	if *pprofAddr != "" {
		srv, err := obs.ServeDebug(*pprofAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer func() { _ = srv.Close() }()
		fmt.Printf("debug server on http://%s/debug/pprof/\n", srv.Addr)
	}
	if *cpuProfile != "" {
		stop, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				_, _ = fmt.Fprintf(os.Stderr, "vkproto: %v\n", err)
			}
		}()
	}

	fmt.Println("building the shared channel simulation and model...")
	opts := vehiclekey.Options{
		Seed:            *seed,
		Scheme:          *scheme,
		TrainingWindows: 300,
		TrainingEpochs:  25,
	}
	if reg != nil {
		opts.Recorder = reg
	}
	vs, err := vehiclekey.Setup(opts)
	if err != nil {
		fatal(err)
	}
	aliceWin, bobWin := vs.Windows(*windows)

	var conn transport.Conn
	switch {
	case *endpoint != "":
		// Registry path: bob listens at the endpoint and takes the first
		// link; alice dials it. The hello still travels first so both
		// schemes share one handshake shape.
		if *role == "bob" {
			l, err := transport.Listen(*endpoint)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("listening on %s\n", l.Addr())
			c, err := l.Accept()
			if err != nil {
				fatal(err)
			}
			// One session per process, but keep the listener open until
			// exit: the UDP mux shares its socket with every accepted
			// session, so closing it here would sever the link just made.
			defer func() { _ = l.Close() }()
			hello, err := c.Recv()
			if err != nil {
				fatal(fmt.Errorf("waiting for alice: %w", err))
			}
			fmt.Printf("alice connected: %s\n", hello)
			conn = c
		} else {
			c, err := transport.Dial(*endpoint)
			if err != nil {
				fatal(err)
			}
			if err := c.Send([]byte("hello from alice")); err != nil {
				fatal(err)
			}
			conn = c
		}
	case *role == "bob":
		udp, err := transport.DialUDP(*listen, "127.0.0.1:9") // peer learned from first datagram
		if err != nil {
			fatal(err)
		}
		// Wait for Alice's hello to learn her address.
		udp.SetPeer(nil)
		hello, err := udp.Recv()
		if err != nil {
			fatal(fmt.Errorf("waiting for alice: %w", err))
		}
		fmt.Printf("alice connected: %s\n", hello)
		conn = udp
	default:
		udp, err := transport.DialUDP("127.0.0.1:0", *peer)
		if err != nil {
			fatal(err)
		}
		if err := udp.Send([]byte("hello from alice")); err != nil {
			fatal(err)
		}
		conn = udp
	}
	// Closing at exit is best-effort: the session is over and the socket
	// dies with the process either way.
	defer func() { _ = conn.Close() }()

	// Wrap in the fault injector only after the hello exchange: the
	// handshake that discovers Bob's peer address must not be dropped.
	faults := transport.FaultConfig{
		Drop: *loss, Duplicate: *dup, Reorder: *reorder,
		Corrupt: *corrupt, Delay: *delay, MaxDelay: *maxDelay,
	}
	var faulty *transport.FaultyConn
	if faults.Enabled() {
		faulty = transport.WrapFaulty(conn, faults, rng.New(*faultSeed))
		if reg != nil {
			faulty.SetRecorder(reg)
		}
		conn = faulty
		fmt.Printf("injecting faults on outgoing messages: %+v\n", faults)
	}

	policy := protocol.DefaultRetryPolicy()
	policy.Timeout = *timeout
	policy.MaxRetries = *retries
	nodeOpts := []protocol.Option{protocol.WithRetryPolicy(policy)}
	if reg != nil {
		nodeOpts = append(nodeOpts, protocol.WithRecorder(reg))
	}
	node := protocol.NewNode(vs.System(), conn, *session, nodeOpts...)
	var outcomes []protocol.KeyOutcome
	if *role == "bob" {
		outcomes, err = node.RunBob(bobWin)
	} else {
		outcomes, err = node.RunAlice(aliceWin)
	}
	if err != nil {
		fatal(err)
	}
	confirmed := 0
	for i, o := range outcomes {
		switch {
		case o.Confirmed:
			confirmed++
			fmt.Printf("block %d: key %s\n", i, hex.EncodeToString(o.Key))
		case errors.Is(o.Err, vehiclekey.ErrPeerTimeout):
			fmt.Printf("block %d: abandoned (%s)\n", i, failurePhase(o.Err))
		case errors.Is(o.Err, vehiclekey.ErrConfirmFailed):
			fmt.Printf("block %d: rejected by confirmation\n", i)
		default:
			fmt.Printf("block %d: failed: %v\n", i, o.Err)
		}
	}
	st := node.Stats()
	fmt.Printf("protocol stats: sent=%d retransmits=%d timeouts=%d garbage=%d stale=%d abandoned=%d/%d\n",
		st.Sent, st.Retransmits, st.Timeouts, st.Garbage, st.Stale,
		st.AbandonedWindows, st.AbandonedRounds)
	if faulty != nil {
		fs := faulty.Stats()
		fmt.Printf("fault stats: sent=%d delivered=%d dropped=%d dup=%d reordered=%d corrupted=%d delayed=%d\n",
			fs.Sent, fs.Delivered, fs.Dropped, fs.Duplicated, fs.Reordered, fs.Corrupted, fs.Delayed)
	}
	fmt.Printf("%s done: %d/%d blocks confirmed\n", *role, confirmed, len(outcomes))

	if *memProfile != "" {
		if err := obs.WriteHeapProfile(*memProfile); err != nil {
			_, _ = fmt.Fprintf(os.Stderr, "vkproto: %v\n", err)
		}
	}
	if *metrics && reg != nil {
		_ = reg.WritePrometheus(os.Stderr) // best-effort: stderr may be closed
	}
}

// checkEndpoint rejects malformed or unknown-scheme endpoints before
// model training starts, mirroring the cheap-inputs-first flag checks.
func checkEndpoint(endpoint string) error {
	u, err := url.Parse(endpoint)
	if err != nil || u.Scheme == "" {
		return fmt.Errorf("-endpoint %q is not a scheme://address URL", endpoint)
	}
	known := transport.Schemes()
	for _, s := range known {
		if s == u.Scheme {
			return nil
		}
	}
	return fmt.Errorf("-endpoint scheme %q unknown (known: %s)", u.Scheme, strings.Join(known, ", "))
}

// failurePhase names the protocol phase a failed round died in, using the
// typed error's diagnostics when present.
func failurePhase(err error) string {
	var re *vehiclekey.RoundError
	if errors.As(err, &re) {
		return "peer timed out in " + re.Phase + " phase"
	}
	return "peer timed out"
}

func fatal(err error) {
	// Best-effort stderr write: the process is exiting on this error.
	_, _ = fmt.Fprintf(os.Stderr, "vkproto: %v\n", err)
	os.Exit(1)
}
