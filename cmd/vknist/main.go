// Command vknist trains a Vehicle-Key deployment, generates a key stream,
// and runs the NIST SP 800-22 battery over it (Table II).
//
//	vknist -bits 8192
package main

import (
	"flag"
	"fmt"
	"os"

	vehiclekey "repro"
)

func main() {
	var (
		bits  = flag.Int("bits", 4096, "minimum key-stream bits to test")
		seed  = flag.Int64("seed", 1, "deterministic seed")
		quick = flag.Bool("quick", false, "smaller training run")
	)
	flag.Parse()

	opts := vehiclekey.Options{Seed: *seed, Link: vehiclekey.V2V}
	if *quick {
		opts.TrainingWindows = 200
		opts.TrainingEpochs = 15
	}
	session, err := vehiclekey.Setup(opts)
	if err != nil {
		fatal(err)
	}
	rep, err := session.CheckRandomness(*bits)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("NIST battery over %d key-stream bits:\n", rep.Bits)
	failed := 0
	for _, r := range rep.Results {
		verdict := "PASS"
		if !r.Passed {
			verdict, failed = "FAIL", failed+1
		}
		fmt.Printf("  %-26s p=%.6f  %s\n", r.Name, r.P, verdict)
	}
	if failed > 0 {
		fmt.Printf("%d test(s) rejected randomness\n", failed)
		os.Exit(1)
	}
	fmt.Println("all tests passed (p >= 0.01)")
}

// fatal reports a fatal error and exits. The stderr write is
// best-effort: the process is already exiting on the reported error.
func fatal(err error) {
	_, _ = fmt.Fprintf(os.Stderr, "vknist: %v\n", err)
	os.Exit(1)
}
