// Command vkbench regenerates the paper's evaluation: every figure and
// table has a runner (see DESIGN.md's experiment index).
//
//	vkbench -list
//	vkbench -exp fig12
//	vkbench -all -quick -j 8
//
// Reports go to stdout; per-experiment timing goes to stderr, so stdout
// is byte-comparable across runs — `vkbench -all -j 8 > par.txt` equals
// `vkbench -all -j 1 > ser.txt` for the same seed (in -quick mode, where
// even the power profile is modeled deterministically).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		id       = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		all      = flag.Bool("all", false, "run every experiment (same as -exp all)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		quick    = flag.Bool("quick", false, "reduced dataset/epochs for a fast pass")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		samples  = flag.Int("samples", 0, "override dataset windows per scenario")
		epochs   = flag.Int("epochs", 0, "override training epochs")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavored markdown tables")
		parallel = flag.Int("parallel", 0, "worker count for grid fan-out and cross-experiment concurrency (0 = all cores, 1 = serial)")
	)
	flag.IntVar(parallel, "j", 0, "shorthand for -parallel")
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := exp.Default()
	if *quick {
		cfg = exp.Quick()
	}
	cfg.Seed = *seed
	if *samples > 0 {
		cfg.Samples = *samples
	}
	if *epochs > 0 {
		cfg.Epochs = *epochs
	}
	cfg.Parallelism = *parallel

	emit := func(rep exp.Report) {
		if *markdown {
			fmt.Println(rep.Markdown())
		} else {
			fmt.Println(rep)
		}
	}
	fail := func(err error) {
		// Best-effort stderr write: the process exits on this error.
		_, _ = fmt.Fprintf(os.Stderr, "vkbench: %v\n", err)
		os.Exit(1)
	}

	if *all || *id == "all" {
		start := time.Now()
		reps, err := exp.RunAll(nil, cfg)
		if err != nil {
			fail(err)
		}
		for _, rep := range reps {
			emit(rep)
		}
		_, _ = fmt.Fprintf(os.Stderr, "(%d experiments in %v, %d workers)\n",
			len(reps), time.Since(start).Round(time.Millisecond), workersFor(cfg))
		return
	}

	start := time.Now()
	rep, err := exp.Run(*id, cfg)
	if err != nil {
		fail(fmt.Errorf("%s: %w", *id, err))
	}
	emit(rep)
	_, _ = fmt.Fprintf(os.Stderr, "(%s in %v)\n", *id, time.Since(start).Round(time.Millisecond))
}

// workersFor mirrors the engine's Parallelism resolution for display.
func workersFor(cfg exp.RunConfig) int {
	if cfg.Parallelism > 0 {
		return cfg.Parallelism
	}
	return exp.DefaultWorkers()
}
