// Command vkbench regenerates the paper's evaluation: every figure and
// table has a runner (see DESIGN.md's experiment index).
//
//	vkbench -list
//	vkbench -exp fig12
//	vkbench -exp all -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		id       = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		quick    = flag.Bool("quick", false, "reduced dataset/epochs for a fast pass")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		samples  = flag.Int("samples", 0, "override dataset windows per scenario")
		epochs   = flag.Int("epochs", 0, "override training epochs")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavored markdown tables")
	)
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := exp.Default()
	if *quick {
		cfg = exp.Quick()
	}
	cfg.Seed = *seed
	if *samples > 0 {
		cfg.Samples = *samples
	}
	if *epochs > 0 {
		cfg.Epochs = *epochs
	}

	ids := []string{*id}
	if *id == "all" {
		ids = exp.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := exp.Run(id, cfg)
		if err != nil {
			// Best-effort stderr write: the process exits on this error.
			_, _ = fmt.Fprintf(os.Stderr, "vkbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *markdown {
			fmt.Println(rep.Markdown())
		} else {
			fmt.Println(rep)
		}
		fmt.Printf("(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
