// Command vkbench regenerates the paper's evaluation: every figure and
// table has a runner (see DESIGN.md's experiment index).
//
//	vkbench -list
//	vkbench -exp fig12
//	vkbench -all -quick -j 8
//
// Reports go to stdout; per-experiment timing goes to stderr, so stdout
// is byte-comparable across runs — `vkbench -all -j 8 > par.txt` equals
// `vkbench -all -j 1 > ser.txt` for the same seed (in -quick mode, where
// even the power profile is modeled deterministically).
//
// Observability is opt-in and never touches stdout:
//
//	vkbench -exp fig9 -metrics          # Prometheus-text snapshot → stderr
//	vkbench -all -pprof 127.0.0.1:6060  # live /debug/pprof, /metrics, /vars
//	vkbench -exp tab3 -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	vehiclekey "repro"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/obs"
)

func main() {
	var (
		id       = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		all      = flag.Bool("all", false, "run every experiment (same as -exp all)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		quick    = flag.Bool("quick", false, "reduced dataset/epochs for a fast pass")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		samples  = flag.Int("samples", 0, "override dataset windows per scenario")
		epochs   = flag.Int("epochs", 0, "override training epochs")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavored markdown tables")
		scheme   = flag.String("scheme", "", "restrict the 'schemes' experiment to one registered scheme (empty = all)")
		fastpath = flag.String("fastpath", "", "predictor inference path: off, gemm, or int8 (default gemm)")
		parallel = flag.Int("parallel", 0, "worker count for grid fan-out and cross-experiment concurrency (0 = all cores, 1 = serial)")

		metrics    = flag.Bool("metrics", false, "dump a Prometheus-text metrics snapshot to stderr when done (stdout stays byte-comparable)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof plus /metrics and /vars on this address (e.g. 127.0.0.1:6060)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile covering the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file when done")
	)
	flag.IntVar(parallel, "j", 0, "shorthand for -parallel")
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := exp.Default()
	if *quick {
		cfg = exp.Quick()
	}
	cfg.Seed = *seed
	if *samples > 0 {
		cfg.Samples = *samples
	}
	if *epochs > 0 {
		cfg.Epochs = *epochs
	}
	cfg.Parallelism = *parallel
	cfg.Scheme = *scheme
	if !core.ValidFastPath(*fastpath) {
		_, _ = fmt.Fprintln(os.Stderr, "vkbench: -fastpath must be off, gemm, or int8")
		os.Exit(2)
	}
	cfg.FastPath = *fastpath

	fail := func(err error) {
		// Best-effort stderr write: the process exits on this error.
		_, _ = fmt.Fprintf(os.Stderr, "vkbench: %v\n", err)
		os.Exit(1)
	}

	// Observability is opt-in: without flags no registry exists and the
	// engine records into obs.Nop. The registry dump goes to stderr so
	// stdout stays byte-comparable across instrumented and plain runs.
	var reg *vehiclekey.MetricsRegistry
	if *metrics || *pprofAddr != "" {
		reg = vehiclekey.NewMetricsRegistry()
		cfg.Obs = reg
	}
	var srv *obs.DebugServer
	if *pprofAddr != "" {
		var err error
		srv, err = obs.ServeDebug(*pprofAddr, reg)
		if err != nil {
			fail(err)
		}
		_, _ = fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/pprof/\n", srv.Addr)
	}
	stopCPU := func() error { return nil }
	if *cpuProfile != "" {
		stop, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			fail(err)
		}
		stopCPU = stop
	}
	// finish flushes profiles and the metrics snapshot; call before every
	// successful return (fail exits the process, abandoning profiles).
	finish := func() {
		if err := stopCPU(); err != nil {
			_, _ = fmt.Fprintf(os.Stderr, "vkbench: %v\n", err)
		}
		if *memProfile != "" {
			if err := obs.WriteHeapProfile(*memProfile); err != nil {
				_, _ = fmt.Fprintf(os.Stderr, "vkbench: %v\n", err)
			}
		}
		if *metrics && reg != nil {
			_ = reg.WritePrometheus(os.Stderr) // best-effort: stderr may be closed
		}
		if srv != nil {
			_ = srv.Close()
		}
	}

	emit := func(rep exp.Report) {
		if *markdown {
			fmt.Println(rep.Markdown())
		} else {
			fmt.Println(rep)
		}
	}
	if *all || *id == "all" {
		start := time.Now()
		reps, err := exp.RunAll(nil, cfg)
		if err != nil {
			fail(err)
		}
		for _, rep := range reps {
			emit(rep)
		}
		_, _ = fmt.Fprintf(os.Stderr, "(%d experiments in %v, %d workers)\n",
			len(reps), time.Since(start).Round(time.Millisecond), workersFor(cfg))
		finish()
		return
	}

	start := time.Now()
	rep, err := exp.Run(*id, cfg)
	if err != nil {
		fail(fmt.Errorf("%s: %w", *id, err))
	}
	emit(rep)
	_, _ = fmt.Fprintf(os.Stderr, "(%s in %v)\n", *id, time.Since(start).Round(time.Millisecond))
	finish()
}

// workersFor mirrors the engine's Parallelism resolution for display.
func workersFor(cfg exp.RunConfig) int {
	if cfg.Parallelism > 0 {
		return cfg.Parallelism
	}
	return exp.DefaultWorkers()
}
