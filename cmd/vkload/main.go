// Command vkload drives a fleet of simulated vehicles against one
// Vehicle-Key key server and reports the achieved session rate and
// latency tail from the obs registry.
//
// By default it is self-contained: it trains one scheme instance,
// starts an in-process server, and drives the whole fleet through the
// transport named by -endpoint:
//
//	vkload                                    # 1000 vehicles over tcp://127.0.0.1:0
//	vkload -endpoint udp://127.0.0.1:0 -vehicles 2000
//	vkload -endpoint "lora://fleet?channels=4&scale=2000" -vehicles 24
//	vkload -scheme lora-key -vehicles 200 -train-windows 60 -train-epochs 2
//
// lora:// endpoints put the whole fleet on one shared simulated medium:
// sessions contend through CAD, collisions, and duty-cycle budgets, and
// the MAC counters land in the -metrics snapshot.
//
// -platoon replaces the fleet benchmark with one group-rekey session:
// concurrent pairwise establishment, an epoch-1 group rekey sealed
// under the pairwise keys, the configured departures, and the epoch-2
// survivor rekey. The vk_group_* counters land in -metrics:
//
//	vkload -platoon 8 -scheme lora-key -platoon-leaves 1,6 -metrics
//	vkload -platoon 4 -scheme lora-key -endpoint "lora://platoon?channels=4"
//
// The server and load halves also run as separate processes over the
// socket schemes; both sides must agree on -seed, -scheme, and the
// training flags, exactly like the two ends of cmd/vkproto:
//
//	vkload -serve-only -endpoint tcp://0.0.0.0:9300   # terminal 1: server
//	vkload -drive-only -endpoint tcp://host:9300      # terminal 2: the fleet
//
// The pre-endpoint flags (-proto, -listen, -serve, -connect) are
// deprecated aliases and synthesize the equivalent endpoint URL.
//
// Per-vehicle arrival jitter is drawn from rng sub-streams keyed by
// (seed, vehicle), so a fixed seed replays the identical load shape.
package main

import (
	"flag"
	"fmt"
	"net/url"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	vehiclekey "repro"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/lora"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/transport"
)

// runMode selects which halves of the benchmark this process runs.
type runMode int

const (
	modeInProcess runMode = iota // server + fleet in one process
	modeServe                    // server only
	modeDrive                    // fleet only, against an external server
)

func main() {
	var (
		vehicles = flag.Int("vehicles", 1000, "simulated vehicles to drive")
		conc     = flag.Int("concurrency", 64, "vehicles in flight at once")
		windows  = flag.Int("windows", 8, "probing windows per session")

		platoonN      = flag.Int("platoon", 0, "run one platoon group-rekey session with this many members instead of the fleet benchmark")
		platoonLeaves = flag.String("platoon-leaves", "1", "comma-separated member IDs departing after epoch 1 (empty = nobody leaves)")

		endpoint  = flag.String("endpoint", "", "transport endpoint URL: tcp://host:port, udp://host:port, mem://name, or lora://medium[?channels=..&duty=..] (default tcp://127.0.0.1:0)")
		serveOnly = flag.Bool("serve-only", false, "run only the server side, listening at -endpoint")
		driveOnly = flag.Bool("drive-only", false, "drive an external server at -endpoint (no in-process server)")

		proto   = flag.String("proto", "tcp", "deprecated: use -endpoint; transport scheme for the alias flags below")
		connect = flag.String("connect", "", "deprecated: use -drive-only -endpoint; drive an external server at this address")
		serve   = flag.String("serve", "", "deprecated: use -serve-only -endpoint; run the server side only on this address")
		listen  = flag.String("listen", "127.0.0.1:0", "deprecated: use -endpoint; in-process server bind address")

		seed     = flag.Int64("seed", 21, "shared deterministic seed (must match the server)")
		scheme   = flag.String("scheme", "", "key-generation scheme (default vehicle-key)")
		fastpath = flag.String("fastpath", "", "predictor inference path: off, gemm, or int8 (default gemm)")
		wincache = flag.Int("wincache", 0, "server session-window cache entries (0 = default 1024, negative disables)")
		trainW   = flag.Int("train-windows", 160, "probing windows used for training")
		trainE   = flag.Int("train-epochs", 12, "predictor training epochs")
		ramp     = flag.Duration("ramp", time.Second, "spread vehicle arrivals across this window")
		copies   = flag.Int("hello-copies", 0, "hello redundancy (default 1 on tcp, 3 on udp)")
		timeout  = flag.Duration("timeout", 300*time.Millisecond, "initial per-message receive timeout")
		retries  = flag.Int("retries", 6, "retransmit attempts before abandoning an exchange")

		workers        = flag.Int("workers", defaultWorkers(), "server worker pool size")
		queueDepth     = flag.Int("queue", 256, "server accept queue depth")
		sessionTimeout = flag.Duration("session-timeout", 30*time.Second, "server per-session watchdog")

		metrics = flag.Bool("metrics", false, "dump a Prometheus-text metrics snapshot to stderr when done")
	)
	flag.Parse()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	// Resolve the endpoint: -endpoint wins; the deprecated alias flags
	// synthesize the equivalent URL (and -serve/-connect their mode).
	ep := *endpoint
	if ep == "" && *platoonN > 0 && *serve == "" && *connect == "" {
		// Platoon runs are hub + members in one process; a named
		// in-memory endpoint is the natural default.
		ep = "mem://vkload-platoon"
	}
	mode := modeInProcess
	if *serveOnly {
		mode = modeServe
	}
	if *driveOnly {
		mode = modeDrive
	}
	if ep == "" {
		if *proto != "tcp" && *proto != "udp" {
			fatal(fmt.Errorf("-proto must be tcp or udp (or use -endpoint)"))
		}
		switch {
		case *serve != "":
			mode, ep = modeServe, *proto+"://"+*serve
		case *connect != "":
			mode, ep = modeDrive, *proto+"://"+*connect
		default:
			ep = *proto + "://" + *listen
		}
	} else if set["proto"] || set["connect"] || set["serve"] || set["listen"] {
		fatal(fmt.Errorf("-endpoint replaces -proto/-connect/-serve/-listen; use -serve-only or -drive-only to pick the role"))
	}
	u, err := url.Parse(ep)
	if err != nil || u.Scheme == "" {
		fatal(fmt.Errorf("-endpoint %q is not a scheme://address URL", ep))
	}
	epScheme := u.Scheme
	// Reject unknown schemes here, before model training is paid for.
	schemeKnown := false
	for _, s := range transport.Schemes() {
		schemeKnown = schemeKnown || s == epScheme
	}
	if !schemeKnown {
		fatal(fmt.Errorf("-endpoint scheme %q unknown (known: %s)", epScheme, strings.Join(transport.Schemes(), ", ")))
	}
	if epScheme == "lora" && mode != modeInProcess {
		fatal(fmt.Errorf("lora:// media are in-process; drop -serve-only/-drive-only"))
	}
	if *platoonN > 0 {
		if mode != modeInProcess {
			fatal(fmt.Errorf("-platoon runs hub and members in one process; drop -serve-only/-drive-only"))
		}
		if (epScheme == "tcp" || epScheme == "udp") && strings.HasSuffix(u.Host, ":0") {
			fatal(fmt.Errorf("-platoon members dial -endpoint as given; pick a concrete %s port, not :0", epScheme))
		}
	}

	if !core.ValidFastPath(*fastpath) {
		fatal(fmt.Errorf("-fastpath must be off, gemm, or int8"))
	}
	if *copies <= 0 {
		*copies = 1
		if epScheme == "udp" || epScheme == "lora" {
			*copies = 3 // unreliable transports: redundant hellos
		}
	}
	// Timeouts on a lora conn are virtual seconds covering whole frame
	// bursts, not socket round trips — rescale the ARQ defaults unless
	// the user pinned them.
	if epScheme == "lora" {
		if !set["timeout"] {
			*timeout = 4 * time.Second
		}
		if !set["retries"] {
			*retries = 8
		}
	}

	reg := vehiclekey.NewMetricsRegistry()
	fmt.Printf("training scheme %q (windows=%d epochs=%d seed=%d)...\n",
		schemeName(*scheme), *trainW, *trainE, *seed)
	vs, err := vehiclekey.Setup(vehiclekey.Options{
		Seed:            *seed,
		Scheme:          *scheme,
		TrainingWindows: *trainW,
		TrainingEpochs:  *trainE,
		Recorder:        reg,
		System:          vehiclekey.SystemConfig{FastPath: *fastpath},
	})
	if err != nil {
		fatal(err)
	}
	template := vs.System()
	sc := trace.NewScenario(channel.Urban, channel.V2I)

	policy := protocol.RetryPolicy{Timeout: *timeout, MaxRetries: *retries}
	srvConfig := server.Config{
		Template:        template,
		Scenario:        sc,
		Seed:            *seed,
		Workers:         *workers,
		Queue:           *queueDepth,
		SessionTimeout:  *sessionTimeout,
		WindowCacheSize: *wincache,
		Retry:           policy,
		Recorder:        reg,
	}

	// lora media must be created with the metrics registry attached
	// before the first Listen/Dial materializes them with a nop recorder.
	if epScheme == "lora" {
		if _, err := lora.EnsureEndpoint(ep, reg); err != nil {
			fatal(err)
		}
	}

	// Platoon mode: one group-rekey session (concurrent pairwise
	// establishment, epoch-1 rekey, departures, epoch-2 survivor rekey)
	// instead of the fleet benchmark.
	if *platoonN > 0 {
		pcfg := vehiclekey.PlatoonConfig{
			Members:  *platoonN,
			Leavers:  parseLeavers(*platoonLeaves),
			Endpoint: ep,
		}
		if set["windows"] {
			pcfg.Windows = *windows
		}
		if set["timeout"] || set["retries"] {
			pcfg.Retry = protocol.RetryPolicy{Timeout: *timeout, MaxRetries: *retries}
		}
		fmt.Printf("driving a %d-member platoon over %s (leavers %v)...\n", *platoonN, epScheme, pcfg.Leavers)
		started := time.Now()
		rep, err := vs.RunPlatoon(pcfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nvkload: platoon of %d over %s in %s\n", *platoonN, epScheme, time.Since(started).Round(time.Millisecond))
		fmt.Printf("  established: %d   failed: %d   leaves: %d   final epoch: %d\n",
			len(rep.Established), len(rep.Failed), rep.LeavesSeen, rep.FinalEpoch)
		for _, w := range rep.Rekeys {
			fmt.Printf("  epoch %d: addressed %d, acked %d\n", w.Epoch, len(w.Members), len(w.Acked))
		}
		fmt.Printf("  hub key digest: %s\n", rep.HubDigest)
		if acc := rep.Accepted[rep.FinalEpoch]; len(acc) > 0 {
			agree := 0
			for _, d := range acc {
				//vklint:ignore consttime -- key digests are published accounting fingerprints, not secret material
				if d == rep.HubDigest {
					agree++
				}
			}
			fmt.Printf("  members agreeing on the final key: %d/%d\n", agree, len(acc))
		}
		if *metrics {
			_ = reg.WritePrometheus(os.Stderr) // best-effort: stderr may be closed
		}
		return
	}

	// Server-only mode: serve until killed.
	if mode == modeServe {
		l, err := transport.Listen(ep)
		if err != nil {
			fatal(err)
		}
		srv, err := server.New(srvConfig)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("serving %s://%s (workers=%d)\n", epScheme, l.Addr(), *workers)
		if err := srv.Serve(l); err != nil {
			fatal(err)
		}
		return
	}

	// The endpoint the fleet dials: the external server in drive mode;
	// otherwise the in-process listener's resolved address for the socket
	// schemes, and the endpoint itself for the named ones (mem, lora),
	// where dialing the name is the contract.
	dialEp := ep
	var srv *server.Server
	if mode == modeInProcess {
		l, err := transport.Listen(ep)
		if err != nil {
			fatal(err)
		}
		srv, err = server.New(srvConfig)
		if err != nil {
			fatal(err)
		}
		go func() {
			if err := srv.Serve(l); err != nil {
				_, _ = fmt.Fprintf(os.Stderr, "vkload: %v\n", err)
			}
		}()
		if epScheme == "tcp" || epScheme == "udp" {
			dialEp = epScheme + "://" + l.Addr().String()
		}
		fmt.Printf("in-process server on %s (workers=%d queue=%d)\n", dialEp, *workers, *queueDepth)
	}

	fmt.Printf("driving %d vehicles (concurrency=%d windows=%d ramp=%s)...\n", *vehicles, *conc, *windows, *ramp)
	var established, failed, keys atomic.Int64
	idx := make(chan int)
	var wg sync.WaitGroup
	started := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One scheme clone per load worker: vehicles on this worker run
			// sequentially, so the clone is never shared across sessions in
			// flight — the server shards its clones the same way.
			clone := template.Clone()
			for i := range idx {
				src := rng.Stream(*seed, "vkload/arrival", i)
				if *ramp > 0 {
					time.Sleep(time.Duration(src.Float64() * float64(*ramp)))
				}
				conn, err := transport.Dial(dialEp)
				if err != nil {
					failed.Add(1)
					continue
				}
				t0 := time.Now()
				outcomes, err := server.RunVehicle(conn, clone, sc, template.Cfg, *seed,
					server.Vehicle{ID: uint64(i), Windows: *windows, HelloCopies: *copies},
					protocol.WithRetryPolicy(policy), protocol.WithRecorder(reg))
				reg.Observe(obs.LoadSessionSeconds, time.Since(t0).Seconds())
				_ = conn.Close()
				confirmed := 0
				for _, o := range outcomes {
					if o.Confirmed {
						confirmed++
					}
				}
				keys.Add(int64(confirmed))
				if err != nil || confirmed == 0 {
					failed.Add(1)
				} else {
					established.Add(1)
				}
			}
		}()
	}
	for i := 0; i < *vehicles; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	wall := time.Since(started)

	if srv != nil {
		_ = srv.Close() // drain so the server-side accounting is complete
	}
	snap := reg.Snapshot()
	load := snap.Histograms[obs.LoadSessionSeconds]
	fmt.Printf("\nvkload: %d vehicles over %s in %s\n", *vehicles, epScheme, wall.Round(time.Millisecond))
	fmt.Printf("  established: %d   failed: %d   keys confirmed: %d\n",
		established.Load(), failed.Load(), keys.Load())
	fmt.Printf("  sessions/sec: %.1f\n", float64(load.Count)/wall.Seconds())
	fmt.Printf("  p99 session latency (client): %s\n", seconds(load.Quantile(0.99)))
	if srv != nil {
		ss := snap.Histograms[obs.ServerSessionSeconds]
		fmt.Printf("  p99 session latency (server): %s\n", seconds(ss.Quantile(0.99)))
		fmt.Printf("  server outcomes:")
		for _, o := range obs.ServerOutcomes {
			fmt.Printf(" %s=%d", o, snap.Counters[obs.Labeled(obs.ServerSessions, "outcome", o)])
		}
		fmt.Println()
	}
	if *metrics {
		_ = reg.WritePrometheus(os.Stderr) // best-effort: stderr may be closed
	}
}

// defaultWorkers sizes the server pool: one per CPU, floored at 4 —
// sessions spend much of their wall time waiting on the peer's compute
// and the wire, so extra workers overlap usefully even on small hosts.
func defaultWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 4 {
		return n
	}
	return 4
}

// parseLeavers turns the -platoon-leaves flag into member IDs; an
// empty flag means an explicit empty slice — nobody leaves.
func parseLeavers(s string) []uint64 {
	out := []uint64{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			fatal(fmt.Errorf("-platoon-leaves entry %q is not a member ID", part))
		}
		out = append(out, id)
	}
	return out
}

func schemeName(s string) string {
	if s == "" {
		return "vehicle-key"
	}
	return s
}

func seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second)).Round(time.Millisecond)
}

func fatal(err error) {
	// Best-effort stderr write: the process is exiting on this error.
	_, _ = fmt.Fprintf(os.Stderr, "vkload: %v\n", err)
	os.Exit(1)
}
