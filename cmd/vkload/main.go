// Command vkload drives a fleet of simulated vehicles against one
// Vehicle-Key key server over real sockets and reports the achieved
// session rate and latency tail from the obs registry.
//
// By default it is self-contained: it trains one scheme instance,
// starts an in-process server on a loopback socket, and drives the
// whole fleet through real TCP connections:
//
//	vkload                          # 1000 vehicles over TCP, in-process server
//	vkload -proto udp -vehicles 2000
//	vkload -scheme lora-key -vehicles 200 -train-windows 60 -train-epochs 2
//
// The server and load halves also run as separate processes; both sides
// must agree on -seed, -scheme, -proto, and the training flags, exactly
// like the two ends of cmd/vkproto:
//
//	vkload -serve 0.0.0.0:9300                 # terminal 1: server only
//	vkload -connect host:9300 -vehicles 1000   # terminal 2: the fleet
//
// Per-vehicle arrival jitter is drawn from rng sub-streams keyed by
// (seed, vehicle), so a fixed seed replays the identical load shape.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	vehiclekey "repro"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/transport"
)

func main() {
	var (
		vehicles = flag.Int("vehicles", 1000, "simulated vehicles to drive")
		conc     = flag.Int("concurrency", 64, "vehicles in flight at once")
		windows  = flag.Int("windows", 8, "probing windows per session")
		proto    = flag.String("proto", "tcp", "transport: tcp or udp")
		connect  = flag.String("connect", "", "drive an external server at this address (default: in-process)")
		serve    = flag.String("serve", "", "run the server side only, listening on this address")
		listen   = flag.String("listen", "127.0.0.1:0", "in-process server bind address")

		seed     = flag.Int64("seed", 21, "shared deterministic seed (must match the server)")
		scheme   = flag.String("scheme", "", "key-generation scheme (default vehicle-key)")
		fastpath = flag.String("fastpath", "", "predictor inference path: off, gemm, or int8 (default gemm)")
		wincache = flag.Int("wincache", 0, "server session-window cache entries (0 = default 1024, negative disables)")
		trainW   = flag.Int("train-windows", 160, "probing windows used for training")
		trainE   = flag.Int("train-epochs", 12, "predictor training epochs")
		ramp     = flag.Duration("ramp", time.Second, "spread vehicle arrivals across this window")
		copies   = flag.Int("hello-copies", 0, "hello redundancy (default 1 on tcp, 3 on udp)")
		timeout  = flag.Duration("timeout", 300*time.Millisecond, "initial per-message receive timeout")
		retries  = flag.Int("retries", 6, "retransmit attempts before abandoning an exchange")

		workers        = flag.Int("workers", defaultWorkers(), "server worker pool size")
		queueDepth     = flag.Int("queue", 256, "server accept queue depth")
		sessionTimeout = flag.Duration("session-timeout", 30*time.Second, "server per-session watchdog")

		metrics = flag.Bool("metrics", false, "dump a Prometheus-text metrics snapshot to stderr when done")
	)
	flag.Parse()

	if *proto != "tcp" && *proto != "udp" {
		fatal(fmt.Errorf("-proto must be tcp or udp"))
	}
	if !core.ValidFastPath(*fastpath) {
		fatal(fmt.Errorf("-fastpath must be off, gemm, or int8"))
	}
	if *copies <= 0 {
		*copies = 1
		if *proto == "udp" {
			*copies = 3
		}
	}

	reg := vehiclekey.NewMetricsRegistry()
	fmt.Printf("training scheme %q (windows=%d epochs=%d seed=%d)...\n",
		schemeName(*scheme), *trainW, *trainE, *seed)
	vs, err := vehiclekey.Setup(vehiclekey.Options{
		Seed:            *seed,
		Scheme:          *scheme,
		TrainingWindows: *trainW,
		TrainingEpochs:  *trainE,
		Recorder:        reg,
		System:          vehiclekey.SystemConfig{FastPath: *fastpath},
	})
	if err != nil {
		fatal(err)
	}
	template := vs.System()
	sc := trace.NewScenario(channel.Urban, channel.V2I)

	policy := protocol.RetryPolicy{Timeout: *timeout, MaxRetries: *retries}
	srvConfig := server.Config{
		Template:        template,
		Scenario:        sc,
		Seed:            *seed,
		Workers:         *workers,
		Queue:           *queueDepth,
		SessionTimeout:  *sessionTimeout,
		WindowCacheSize: *wincache,
		Retry:           policy,
		Recorder:        reg,
	}

	// Server-only mode: serve until killed.
	if *serve != "" {
		l, err := listenOn(*proto, *serve)
		if err != nil {
			fatal(err)
		}
		srv, err := server.New(srvConfig)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("serving %s on %s (workers=%d)\n", *proto, l.Addr(), *workers)
		if err := srv.Serve(l); err != nil {
			fatal(err)
		}
		return
	}

	addr := *connect
	var srv *server.Server
	if addr == "" {
		l, err := listenOn(*proto, *listen)
		if err != nil {
			fatal(err)
		}
		srv, err = server.New(srvConfig)
		if err != nil {
			fatal(err)
		}
		go func() {
			if err := srv.Serve(l); err != nil {
				_, _ = fmt.Fprintf(os.Stderr, "vkload: %v\n", err)
			}
		}()
		addr = l.Addr().String()
		fmt.Printf("in-process server on %s://%s (workers=%d queue=%d)\n", *proto, addr, *workers, *queueDepth)
	}

	fmt.Printf("driving %d vehicles (concurrency=%d windows=%d ramp=%s)...\n", *vehicles, *conc, *windows, *ramp)
	var established, failed, keys atomic.Int64
	idx := make(chan int)
	var wg sync.WaitGroup
	started := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One scheme clone per load worker: vehicles on this worker run
			// sequentially, so the clone is never shared across sessions in
			// flight — the server shards its clones the same way.
			clone := template.Clone()
			for i := range idx {
				src := rng.Stream(*seed, "vkload/arrival", i)
				if *ramp > 0 {
					time.Sleep(time.Duration(src.Float64() * float64(*ramp)))
				}
				conn, err := dial(*proto, addr)
				if err != nil {
					failed.Add(1)
					continue
				}
				t0 := time.Now()
				outcomes, err := server.RunVehicle(conn, clone, sc, template.Cfg, *seed,
					server.Vehicle{ID: uint64(i), Windows: *windows, HelloCopies: *copies},
					protocol.WithRetryPolicy(policy), protocol.WithRecorder(reg))
				reg.Observe(obs.LoadSessionSeconds, time.Since(t0).Seconds())
				_ = conn.Close()
				confirmed := 0
				for _, o := range outcomes {
					if o.Confirmed {
						confirmed++
					}
				}
				keys.Add(int64(confirmed))
				if err != nil || confirmed == 0 {
					failed.Add(1)
				} else {
					established.Add(1)
				}
			}
		}()
	}
	for i := 0; i < *vehicles; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	wall := time.Since(started)

	if srv != nil {
		_ = srv.Close() // drain so the server-side accounting is complete
	}
	snap := reg.Snapshot()
	load := snap.Histograms[obs.LoadSessionSeconds]
	fmt.Printf("\nvkload: %d vehicles over %s in %s\n", *vehicles, *proto, wall.Round(time.Millisecond))
	fmt.Printf("  established: %d   failed: %d   keys confirmed: %d\n",
		established.Load(), failed.Load(), keys.Load())
	fmt.Printf("  sessions/sec: %.1f\n", float64(load.Count)/wall.Seconds())
	fmt.Printf("  p99 session latency (client): %s\n", seconds(load.Quantile(0.99)))
	if srv != nil {
		ss := snap.Histograms[obs.ServerSessionSeconds]
		fmt.Printf("  p99 session latency (server): %s\n", seconds(ss.Quantile(0.99)))
		fmt.Printf("  server outcomes:")
		for _, o := range obs.ServerOutcomes {
			fmt.Printf(" %s=%d", o, snap.Counters[obs.Labeled(obs.ServerSessions, "outcome", o)])
		}
		fmt.Println()
	}
	if *metrics {
		_ = reg.WritePrometheus(os.Stderr) // best-effort: stderr may be closed
	}
}

// listenOn builds the protocol-matching listener.
func listenOn(proto, addr string) (transport.Listener, error) {
	if proto == "udp" {
		return transport.ListenUDPMux(addr)
	}
	return transport.ListenTCP(addr)
}

// dial builds the protocol-matching client connection.
func dial(proto, addr string) (transport.Conn, error) {
	if proto == "udp" {
		return transport.DialUDP(":0", addr)
	}
	return transport.DialTCP(addr)
}

// defaultWorkers sizes the server pool: one per CPU, floored at 4 —
// sessions spend much of their wall time waiting on the peer's compute
// and the wire, so extra workers overlap usefully even on small hosts.
func defaultWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 4 {
		return n
	}
	return 4
}

func schemeName(s string) string {
	if s == "" {
		return "vehicle-key"
	}
	return s
}

func seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second)).Round(time.Millisecond)
}

func fatal(err error) {
	// Best-effort stderr write: the process is exiting on this error.
	_, _ = fmt.Fprintf(os.Stderr, "vkload: %v\n", err)
	os.Exit(1)
}
