package vehiclekey

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/group"
	"repro/internal/pipeline"
	"repro/internal/protocol"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/transport"
)

// RetryPolicy re-exports the protocol ARQ policy for platoon runs.
type RetryPolicy = protocol.RetryPolicy

// PlatoonReport is one platoon run's accounting: established members,
// per-epoch rekey fan-out results, departures, and the key digests each
// member accepted. Every field is schedule-independent (counts, epochs,
// digests — never timing), so lockstep runs compare byte-for-byte.
type PlatoonReport = group.DriveResult

// PlatoonConfig configures Session.RunPlatoon. The zero value runs a
// four-member platoon with one departure over an in-memory endpoint —
// or over the session's shared LoRa medium when one was attached with
// WithMedium.
type PlatoonConfig struct {
	// Members is the platoon size, hub excluded (default 4).
	Members int
	// Leavers are the members that depart after accepting the first
	// group key, triggering the churn rekey (default: member 1).
	// An explicit empty non-nil slice means nobody leaves.
	Leavers []uint64
	// Windows is the probing-window count per pairwise establishment
	// (default 16 — two reconciliation rounds).
	Windows int
	// Endpoint is the transport endpoint used when the session has no
	// shared medium (default a session-scoped mem:// endpoint).
	Endpoint string
	// Retry is the establishment ARQ policy. The zero value picks a
	// profile matching the transport: virtual seconds on a shared
	// medium, milliseconds on mem/tcp.
	Retry RetryPolicy
	// Tick is the receive-poll granularity in conn time (default: 2s
	// on a shared medium, 20ms otherwise).
	Tick time.Duration
	// JoinCopies bounds each member's join handshake retransmits
	// (default: 8 on a shared medium, where the whole platoon's joins
	// collide in the ignition window; 1 otherwise).
	JoinCopies int
	// LeaveWait is the hub's wall-clock failsafe while waiting for the
	// configured departures (default 60s; the departures themselves
	// are event-driven).
	LeaveWait time.Duration
}

// RunPlatoon drives one complete platoon session from this session's
// trained scheme: N concurrent pairwise establishments, a group rekey
// sealed under the pairwise channels, the configured departures, and a
// survivor rekey at the next epoch. Over a session medium (WithMedium)
// all members contend for the shared hop channels; otherwise the run
// uses the configured point-to-point endpoint.
func (s *Session) RunPlatoon(cfg PlatoonConfig) (PlatoonReport, error) {
	if cfg.Members <= 0 {
		cfg.Members = 4
	}
	if cfg.Windows <= 0 {
		cfg.Windows = 16
	}
	if cfg.Leavers == nil {
		cfg.Leavers = []uint64{1}
	}
	leavers := make(map[uint64]bool, len(cfg.Leavers))
	for _, m := range cfg.Leavers {
		if m >= uint64(cfg.Members) {
			return PlatoonReport{}, fmt.Errorf("vehiclekey: platoon leaver %d outside members [0,%d)", m, cfg.Members)
		}
		leavers[m] = true
	}

	// The shared-medium timing profile applies both to a session medium
	// attached with WithMedium and to a lora:// endpoint resolved by the
	// transport registry — either way the conn clock runs in virtual
	// seconds and joins contend at ignition.
	shared := s.medium != nil || strings.HasPrefix(cfg.Endpoint, "lora://")
	if cfg.Tick <= 0 {
		if shared {
			cfg.Tick = 2 * time.Second
		} else {
			cfg.Tick = 20 * time.Millisecond
		}
	}
	if (cfg.Retry == RetryPolicy{}) {
		if shared {
			// One protocol message is a multi-fragment burst of a second
			// or two on the air (the contention experiments' profile).
			cfg.Retry = RetryPolicy{Timeout: 4 * time.Second, MaxTimeout: 16 * time.Second, Backoff: 1.6, MaxRetries: 8}
		} else {
			cfg.Retry = RetryPolicy{Timeout: 50 * time.Millisecond, MaxRetries: 8}
		}
	}
	if cfg.JoinCopies <= 0 {
		cfg.JoinCopies = 1
		if shared {
			cfg.JoinCopies = 8 // the whole platoon's joins collide at ignition
		}
	}

	sc := trace.NewScenario(s.opts.Environment, s.opts.Link)
	sc.SpeedAKmh = s.opts.SpeedKmh
	dc := group.DriveConfig{
		Members: cfg.Members,
		Leavers: leavers,
		Seed:    s.opts.Seed,
		Hub: group.HubConfig{
			Resolve: func(member uint64, n int) (pipeline.Scheme, [][]float64, error) {
				alice, _, err := server.SessionWindows(sc, s.opts.System, s.opts.Seed, member, n)
				return s.sys.Clone(), alice, err
			},
			Retry:    cfg.Retry,
			Tick:     cfg.Tick,
			Recorder: s.rec,
		},
		Member: func(member uint64) (group.MemberConfig, error) {
			_, bob, err := server.SessionWindows(sc, s.opts.System, s.opts.Seed, member, cfg.Windows)
			if err != nil {
				return group.MemberConfig{}, err
			}
			return group.MemberConfig{
				Scheme:     s.sys.Clone(),
				Windows:    bob,
				Retry:      cfg.Retry,
				Tick:       cfg.Tick,
				JoinCopies: cfg.JoinCopies,
				Recorder:   s.rec,
			}, nil
		},
		// KeyWait stays 0: member waits are event-driven (required on a
		// lockstep medium, harmless elsewhere — Drive's teardown closes
		// every conn).
		LeaveWait: cfg.LeaveWait,
	}
	if s.medium != nil {
		dc.Listen = func() (transport.Listener, error) { return s.medium.Listen() }
		dc.Dial = func(member uint64) (transport.Conn, error) {
			return s.medium.Dial(fmt.Sprintf("veh-%d", member))
		}
	} else {
		// A lora:// endpoint resolves through the transport registry to a
		// process-wide shared medium; mem/tcp/udp endpoints are
		// point-to-point.
		dc.Endpoint = cfg.Endpoint
		if dc.Endpoint == "" {
			dc.Endpoint = fmt.Sprintf("mem://vehiclekey-platoon-%d", s.opts.Seed)
		}
	}
	return group.Drive(dc)
}
