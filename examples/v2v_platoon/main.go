// v2v_platoon runs the full interactive key-establishment protocol
// between two simulated platooning vehicles: Alice and Bob execute the
// real message flow (kept indices → final indices → syndrome+MAC →
// confirmation) over an in-memory link while driving an urban route.
package main

import (
	"encoding/hex"
	"fmt"
	"log"
	"sync"

	vehiclekey "repro"
	"repro/internal/protocol"
	"repro/internal/transport"
)

func main() {
	fmt.Println("training the shared prediction model on the V2V-urban drive...")
	session, err := vehiclekey.Setup(vehiclekey.Options{
		Link:            vehiclekey.V2V,
		TrainingWindows: 240,
		TrainingEpochs:  18,
		Seed:            7,
	})
	if err != nil {
		log.Fatal(err)
	}

	aliceWin, bobWin := session.Windows(24)
	connA, connB := transport.Pair()
	// The in-memory pair's Close is best-effort cleanup at exit.
	defer func() { _ = connA.Close() }()
	defer func() { _ = connB.Close() }()

	alice := protocol.NewNode(session.System(), connA, "platoon-42")
	bob := protocol.NewNode(session.System(), connB, "platoon-42")

	var aliceKeys, bobKeys []protocol.KeyOutcome
	var aliceErr, bobErr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); bobKeys, bobErr = bob.RunBob(bobWin) }()
	go func() { defer wg.Done(); aliceKeys, aliceErr = alice.RunAlice(aliceWin) }()
	wg.Wait()
	if aliceErr != nil || bobErr != nil {
		log.Fatalf("protocol: alice=%v bob=%v", aliceErr, bobErr)
	}

	confirmed := 0
	for i := range aliceKeys {
		if !aliceKeys[i].Confirmed {
			fmt.Printf("block %d: rejected by key confirmation (regenerated next rounds)\n", i)
			continue
		}
		confirmed++
		match := "MATCH"
		if hex.EncodeToString(aliceKeys[i].Key) != hex.EncodeToString(bobKeys[i].Key) {
			match = "DIVERGED (bug!)"
		}
		fmt.Printf("block %d: %s  %s\n", i, hex.EncodeToString(aliceKeys[i].Key), match)
	}
	fmt.Printf("%d/%d blocks confirmed into shared AES-128 keys\n", confirmed, len(aliceKeys))
}
