// secure_ota establishes a Vehicle-Key session key between a roadside
// unit and a passing vehicle (V2I), then uses it to push an authenticated,
// encrypted over-the-air configuration update through an AES-128-GCM
// channel — the end-to-end use the paper motivates.
package main

import (
	"fmt"
	"log"

	vehiclekey "repro"
	"repro/internal/secure"
)

func main() {
	fmt.Println("establishing a key between the RSU and the vehicle...")
	session, err := vehiclekey.Setup(vehiclekey.Options{
		Link:            vehiclekey.V2I,
		Environment:     vehiclekey.Rural,
		TrainingWindows: 200,
		TrainingEpochs:  15,
		Seed:            11,
	})
	if err != nil {
		log.Fatal(err)
	}
	keys, _, err := session.GenerateKeys(1)
	if err != nil {
		log.Fatal(err)
	}
	if len(keys) == 0 || !keys[0].Agreed {
		log.Fatal("no agreed key this window; in deployment the nodes keep probing")
	}
	key := keys[0].Bits

	// Both ends derive an AES-128-GCM channel from the shared key.
	rsu, err := secure.NewChannel(key)
	if err != nil {
		log.Fatal(err)
	}
	vehicle, err := secure.NewChannel(key)
	if err != nil {
		log.Fatal(err)
	}

	update := []byte(`{"fw":"2.4.1","speed_limit_kmh":80}`)
	ciphertext := rsu.Seal(update)
	fmt.Printf("RSU → vehicle: %d-byte sealed update\n", len(ciphertext))

	plain, err := vehicle.Open(ciphertext)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vehicle decrypted: %s\n", plain)

	// Replays are rejected by the channel's sequence numbers.
	if _, err := vehicle.Open(ciphertext); err != nil {
		fmt.Printf("replayed ciphertext rejected: %v\n", err)
	}
}
