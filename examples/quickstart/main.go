// Quickstart: train a Vehicle-Key deployment on a simulated urban V2I
// link and generate AES-128 session keys.
package main

import (
	"encoding/hex"
	"fmt"
	"log"

	vehiclekey "repro"
)

func main() {
	// The zero options reproduce the paper's default setup: urban V2I,
	// 50 km/h, SF12/125 kHz LoRa at 434 MHz. Smaller training sizes keep
	// the example fast; drop the overrides for paper-scale quality.
	session, err := vehiclekey.Setup(vehiclekey.Options{
		TrainingWindows: 200,
		TrainingEpochs:  15,
	})
	if err != nil {
		log.Fatal(err)
	}

	keys, metrics, err := session.GenerateKeys(3)
	if err != nil {
		log.Fatal(err)
	}
	for i, k := range keys {
		fmt.Printf("key %d: %s (agreement %.1f%%)\n", i+1, hex.EncodeToString(k.Bits), 100*k.Agreement)
	}
	fmt.Printf("pipeline metrics: %v\n", metrics)
}
