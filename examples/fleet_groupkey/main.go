// fleet_groupkey extends Vehicle-Key to a platoon: the roadside unit
// establishes pairwise keys with three vehicles over their individual
// channels, then distributes and rotates a shared group key sealed under
// each pairwise key. When a vehicle leaves the platoon, a rekey locks it
// out of future traffic.
package main

import (
	"encoding/hex"
	"fmt"
	"log"

	vehiclekey "repro"
	"repro/internal/group"
	"repro/internal/secure"
)

func main() {
	hub := group.NewHub()
	memberChannels := map[string]*secure.Channel{}

	for i, id := range []string{"car-alpha", "car-bravo", "car-charlie"} {
		fmt.Printf("establishing pairwise key with %s...\n", id)
		session, err := vehiclekey.Setup(vehiclekey.Options{
			Seed:            int64(100 + i),
			TrainingWindows: 160,
			TrainingEpochs:  12,
		})
		if err != nil {
			log.Fatal(err)
		}
		keys, _, err := session.GenerateKeys(1)
		if err != nil {
			log.Fatal(err)
		}
		if len(keys) == 0 || !keys[0].Agreed {
			log.Fatalf("%s: no agreed pairwise key this window", id)
		}
		if err := hub.Join(id, keys[0].Bits); err != nil {
			log.Fatal(err)
		}
		ch, err := secure.NewChannel(keys[0].Bits)
		if err != nil {
			log.Fatal(err)
		}
		memberChannels[id] = ch
	}

	envs, err := hub.Rekey([]byte("platoon-epoch-1"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngroup key (hub): %s\n", hex.EncodeToString(hub.GroupKey()))
	for _, env := range envs {
		epoch, key, err := group.OpenEnvelope(memberChannels[env.MemberID], env)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s unsealed epoch %d: %s\n", env.MemberID, epoch, hex.EncodeToString(key))
	}

	fmt.Println("\ncar-bravo leaves the platoon; rekeying...")
	if err := hub.Leave("car-bravo"); err != nil {
		log.Fatal(err)
	}
	if _, err := hub.Rekey([]byte("platoon-epoch-2")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("new group key: %s (car-bravo holds the old one only)\n", hex.EncodeToString(hub.GroupKey()))
}
