// attack_analysis reproduces the paper's security evaluation from the
// attacker's seat: an Eve with full protocol knowledge, the trained
// models, and either a parking spot near the infrastructure
// (eavesdropping) or a car tailing the victim (imitating).
package main

import (
	"fmt"
	"log"

	vehiclekey "repro"
)

func main() {
	for _, env := range []struct {
		name string
		val  vehiclekey.Environment
	}{{"urban", vehiclekey.Urban}, {"rural", vehiclekey.Rural}} {
		session, err := vehiclekey.Setup(vehiclekey.Options{
			Environment:     env.val,
			Link:            vehiclekey.V2V,
			TrainingWindows: 200,
			TrainingEpochs:  15,
			Seed:            13,
		})
		if err != nil {
			log.Fatal(err)
		}
		legit, err := session.Evaluate()
		if err != nil {
			log.Fatal(err)
		}
		eaves, err := session.EvaluateAttack(false)
		if err != nil {
			log.Fatal(err)
		}
		imit, err := session.EvaluateAttack(true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s V2V:\n", env.name)
		fmt.Printf("  legitimate pair agreement: %.2f%% (exact keys %.0f%%)\n", 100*legit.PostKAR, 100*legit.ExactRate)
		fmt.Printf("  eavesdropping Eve:         %.2f%% (exact keys %.0f%%)\n", 100*eaves.PostKAR, 100*eaves.ExactRate)
		fmt.Printf("  imitating Eve:             %.2f%% (exact keys %.0f%%)\n", 100*imit.PostKAR, 100*imit.ExactRate)
		fmt.Println()
	}
	fmt.Println("an attacker who cannot cross ~50% per-bit advantage cannot reach a", "128-bit key: even at 70% per-bit agreement the chance of an exact key is 0.7^128 ≈ 1e-20")
}
