#!/bin/sh
# Compare two bench-json.sh outputs and fail on perf regression:
#
#   scripts/bench-compare.sh NEW.json BASELINE.json [THRESHOLD_PCT]
#
# Every BenchmarkScheme/* entry present in BOTH files must not regress
# in ns/op by more than THRESHOLD_PCT (default 10). Entries present in
# only one file are reported and skipped — new benchmarks are allowed,
# renamed ones don't silently vanish. Other benchmark families are
# printed for trajectory but never gate: they cover different machines'
# noise floors too unevenly, while the scheme benchmarks are the
# paper-facing numbers CI pins.
#
# Stdlib-only by design, like bench-json.sh: the JSON is the fixed
# single-level shape that script emits, parsed with awk.
set -eu

if [ $# -lt 2 ]; then
    echo "usage: $0 NEW.json BASELINE.json [THRESHOLD_PCT]" >&2
    exit 2
fi

new="$1"
base="$2"
threshold="${3:-10}"

extract() {
    # "    \"Name\": {\"ns_per_op\": 123, ...}"  ->  "Name 123"
    awk -F'"' '/"ns_per_op"/ {
        name = $2
        rest = $0
        sub(/.*"ns_per_op":[ ]*/, "", rest)
        sub(/[,}].*/, "", rest)
        print name, rest
    }' "$1"
}

newvals="$(mktemp)"
basevals="$(mktemp)"
trap 'rm -f "$newvals" "$basevals"' EXIT
extract "$new" > "$newvals"
extract "$base" > "$basevals"

awk -v threshold="$threshold" -v newfile="$new" -v basefile="$base" '
NR == FNR { base[$1] = $2; next }
{
    name = $1; val = $2
    if (!(name in base)) {
        printf "NEW       %-44s %12.0f ns/op (no baseline entry)\n", name, val
        next
    }
    delta = (val - base[name]) * 100.0 / base[name]
    gate = (name ~ /^BenchmarkScheme\//) ? "gated" : "info "
    printf "%s     %-44s %12.0f -> %12.0f ns/op  %+7.1f%%\n", gate, name, base[name], val, delta
    if (gate == "gated" && delta > threshold) {
        fail = 1
        printf "REGRESSION %-43s exceeds +%s%% budget\n", name, threshold
    }
    seen[name] = 1
}
END {
    for (name in base) if (!(name in seen))
        printf "GONE      %-44s (baseline-only entry)\n", name
    if (fail) {
        printf "bench-compare: %s regressed vs %s\n", newfile, basefile
        exit 1
    }
    print "bench-compare: no gated regression"
}
' "$basevals" "$newvals"
