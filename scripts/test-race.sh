#!/bin/sh
# Race-detector test pass, tier-1 alongside `go test ./...`.
#
# The concurrent packages (transport, protocol, server, secure, attack,
# obs, memo, lora, group — whose contention soak must stay byte-identical
# at any parallelism while the detector watches the scheduler) run with
# -count=1 so a cached result can never mask a rediscovered race. The
# model-training packages dominate wall time under -race, so they run
# -short where that keeps coverage meaningful; the protocol soak itself
# must run in full — it is the adversarial concurrency test this script
# exists for.
set -eu

cd "$(dirname "$0")/.."

echo "== race: concurrent layers (full) =="
# Race instrumentation is ~10x; on small CI boxes the protocol soak and
# the equivalence sweep both brush the default 10m per-package limit, so
# give every step explicit headroom.
go test -race -count=1 -timeout 20m \
	./internal/transport/ \
	./internal/secure/ \
	./internal/protocol/ \
	./internal/server/ \
	./internal/attack/ \
	./internal/obs/ \
	./internal/memo/ \
	./internal/lora/ \
	./internal/group/

echo "== race: remaining packages (short) =="
go test -race -short -timeout 20m \
	$(go list ./... | grep -v -e /internal/transport$ -e /internal/secure$ -e /internal/protocol$ -e /internal/server$ -e /internal/attack$ -e /internal/obs$ -e /internal/memo$ -e /internal/lora$ -e /internal/group$)

echo "== race: parallel experiment engine equivalence =="
# -short skips these, so run them explicitly: the golden equivalence
# sweep under -race is what proves the engine's workers share no mutable
# state. VK_EQUIV_FAST shrinks the model/sample sizes — the scheduling
# and sharing behaviour is what -race must see, not full-size training.
VK_EQUIV_FAST=1 go test -race -count=1 -timeout 20m \
	-run 'TestParallelEquivalence|TestRunAllMatchesRun|TestTrainCacheServesClones' \
	./internal/exp/

echo "race suite passed"
