#!/bin/sh
# Run the full benchmark suite once (-benchtime=1x) and convert the
# results to JSON: benchmark name → ns/op, B/op, allocs/op. This seeds
# the perf trajectory: CI's bench-smoke job uploads the file per PR, so
# regressions show up as a diffable artifact rather than anecdote.
#
#   scripts/bench-json.sh [OUTPUT.json]      (default BENCH.json)
#
# Env overrides, for the regression gate (bench-compare.sh) where a
# single iteration is too noisy to compare at a 10% threshold:
#
#   BENCH_PATTERN  -bench regexp      (default: . — everything)
#   BENCH_TIME     -benchtime value   (default: 1x)
#
# e.g. the gated scheme family at the baseline's iteration count:
#   BENCH_PATTERN='BenchmarkScheme$' BENCH_TIME=20x scripts/bench-json.sh BENCH_scheme.json
#
# Stdlib-only by design: plain `go test -bench` output piped through awk.
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH.json}"
pattern="${BENCH_PATTERN:-.}"
benchtime="${BENCH_TIME:-1x}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$pattern" -benchtime="$benchtime" -benchmem ./... | tee "$raw"

awk '
# Benchmark lines look like:
#   BenchmarkFoo-8   1   123456 ns/op   789 B/op   12 allocs/op
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "    \"%s\": {\"ns_per_op\": %s", name, ns
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END {
    if (n == 0) { print "no benchmark results parsed" > "/dev/stderr"; exit 1 }
}
' "$raw" > "$out.tmp"

{
    printf '{\n  "benchtime": "%s",\n  "benchmarks": {\n' "$benchtime"
    cat "$out.tmp"
    printf '\n  }\n}\n'
} > "$out"
rm -f "$out.tmp"

echo "wrote $out"
