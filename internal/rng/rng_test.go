package rng

import (
	"fmt"
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must yield the same stream")
		}
	}
}

func TestDeriveIndependence(t *testing.T) {
	// Deriving a stream must not depend on how many draws the sibling
	// made before it existed — but the same label from the same parent
	// state must be stable.
	p1 := New(7)
	d1 := p1.Derive("alice")
	p2 := New(7)
	d2 := p2.Derive("alice")
	for i := 0; i < 20; i++ {
		if d1.Float64() != d2.Float64() {
			t.Fatal("derive must be deterministic")
		}
	}
	p3 := New(7)
	other := p3.Derive("bob")
	same := 0
	d3 := New(7).Derive("alice")
	for i := 0; i < 50; i++ {
		if d3.Float64() == other.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Error("different labels should give different streams")
	}
}

// TestSubSeedTable pins the sub-stream derivation contract the parallel
// experiment engine depends on: identical (seed, label, index) tuples
// give identical streams, any differing component gives a distinct
// stream, and near-identical tuples do not land on near-identical seeds.
func TestSubSeedTable(t *testing.T) {
	base := struct {
		seed  int64
		label string
		index int
	}{42, "fig12", 7}
	cases := []struct {
		name      string
		seed      int64
		label     string
		index     int
		wantEqual bool
	}{
		{"identical tuple", 42, "fig12", 7, true},
		{"different seed", 43, "fig12", 7, false},
		{"negative seed", -42, "fig12", 7, false},
		{"different label", 42, "fig13", 7, false},
		{"label prefix", 42, "fig1", 7, false},
		{"label with suffix", 42, "fig12 ", 7, false},
		{"empty label", 42, "", 7, false},
		{"different index", 42, "fig12", 8, false},
		{"index zero", 42, "fig12", 0, false},
		{"negative index", 42, "fig12", -7, false},
		{"label/index boundary shift", 42, "fig127", 0, false},
	}
	ref := SubSeed(base.seed, base.label, base.index)
	for _, c := range cases {
		got := SubSeed(c.seed, c.label, c.index)
		if (got == ref) != c.wantEqual {
			t.Errorf("%s: SubSeed(%d, %q, %d) = %d, ref %d, wantEqual=%v",
				c.name, c.seed, c.label, c.index, got, ref, c.wantEqual)
		}
		a, b := Stream(c.seed, c.label, c.index), Stream(c.seed, c.label, c.index)
		for i := 0; i < 10; i++ {
			if a.Float64() != b.Float64() {
				t.Fatalf("%s: two Streams of the same tuple disagree", c.name)
			}
		}
	}
}

// TestSubSeedNoCollisions sweeps a grid of tuples the size of a large
// experiment fan-out and requires all derived seeds to be distinct.
func TestSubSeedNoCollisions(t *testing.T) {
	labels := []string{"fig2a", "fig2b", "fig3", "fig9/window", "tab1", "comparison", "train/x", ""}
	seen := make(map[int64]string)
	for _, seed := range []int64{0, 1, -1, 1 << 40} {
		for _, label := range labels {
			for index := -2; index < 200; index++ {
				s := SubSeed(seed, label, index)
				id := fmt.Sprintf("(%d,%q,%d)", seed, label, index)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: %s and %s both derive %d", prev, id, s)
				}
				seen[s] = id
			}
		}
	}
}

// TestSubSeedOrderIndependence: derivation is a pure function — no
// hidden stream is consumed, so deriving sub-streams in any order, or
// after arbitrary draws elsewhere, changes nothing. (Source.Derive
// deliberately does NOT have this property; the engine uses SubSeed for
// exactly this reason.)
func TestSubSeedOrderIndependence(t *testing.T) {
	first := make([]float64, 8)
	for i := range first {
		first[i] = Stream(9, "unit", i).Float64()
	}
	// Re-derive in reverse order, interleaved with unrelated draws.
	noise := New(123)
	for i := len(first) - 1; i >= 0; i-- {
		noise.Normal(0, 1)
		_ = SubSeed(777, "other", i)
		if got := Stream(9, "unit", i).Float64(); got != first[i] {
			t.Fatalf("unit %d stream changed when derived in a different order", i)
		}
	}
}

// TestStreamDecoupled: sibling sub-streams must not be shifted copies of
// one another — unit 1's draws must not re-align with unit 0's at any
// small offset.
func TestStreamDecoupled(t *testing.T) {
	ref := make([]float64, 54)
	src := Stream(5, "unit", 0)
	for i := range ref {
		ref[i] = src.Float64()
	}
	for off := 0; off < 4; off++ {
		other := Stream(5, "unit", 1)
		matches := 0
		for i := 0; i < off; i++ {
			other.Float64()
		}
		for i := 0; i < 50; i++ {
			if other.Float64() == ref[i] {
				matches++
			}
		}
		if matches > 2 {
			t.Errorf("offset %d: sibling streams align on %d of 50 draws", off, matches)
		}
	}
}

func moments(n int, draw func() float64) (mean, variance float64) {
	var s, s2 float64
	for i := 0; i < n; i++ {
		x := draw()
		s += x
		s2 += x * x
	}
	mean = s / float64(n)
	return mean, s2/float64(n) - mean*mean
}

func TestNormalMoments(t *testing.T) {
	src := New(1)
	mean, variance := moments(50000, func() float64 { return src.Normal(3, 2) })
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("variance = %v, want ~4", variance)
	}
}

func TestRayleighMoments(t *testing.T) {
	src := New(2)
	sigma := 1.5
	mean, _ := moments(50000, func() float64 { return src.Rayleigh(sigma) })
	want := sigma * math.Sqrt(math.Pi/2)
	if math.Abs(mean-want) > 0.03 {
		t.Errorf("Rayleigh mean = %v, want ~%v", mean, want)
	}
}

func TestRicianReducesToRayleigh(t *testing.T) {
	src := New(3)
	// K = 0: Rician(0, omega) has the Rayleigh mean sqrt(pi*omega/4)… up
	// to the omega normalization: E[R] = sqrt(pi*omega)/2.
	omega := 2.0
	mean, _ := moments(50000, func() float64 { return src.Rician(0, omega) })
	want := math.Sqrt(math.Pi*omega) / 2
	if math.Abs(mean-want) > 0.03 {
		t.Errorf("Rician(0) mean = %v, want ~%v", mean, want)
	}
}

func TestRicianPower(t *testing.T) {
	src := New(4)
	// E[R^2] = omega for any K.
	for _, k := range []float64{0, 1, 6} {
		_, _ = k, src
		var s float64
		const n = 40000
		for i := 0; i < n; i++ {
			r := src.Rician(k, 3)
			s += r * r
		}
		if got := s / n; math.Abs(got-3) > 0.1 {
			t.Errorf("K=%v: E[R^2] = %v, want ~3", k, got)
		}
	}
}

func TestLogNormal(t *testing.T) {
	src := New(5)
	mean, _ := moments(50000, func() float64 { return math.Log(src.LogNormal(0.5, 0.25)) })
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("log of LogNormal mean = %v, want ~0.5", mean)
	}
}

func TestBernoulliRate(t *testing.T) {
	src := New(6)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if src.Bernoulli(0.3) {
			hits++
		}
	}
	if rate := float64(hits) / n; math.Abs(rate-0.3) > 0.02 {
		t.Errorf("rate = %v, want ~0.3", rate)
	}
}

func TestBitsBalanced(t *testing.T) {
	src := New(7)
	bits := src.Bits(20000)
	ones := 0
	for _, b := range bits {
		if b == 1 {
			ones++
		}
	}
	if r := float64(ones) / float64(len(bits)); math.Abs(r-0.5) > 0.02 {
		t.Errorf("ones rate = %v, want ~0.5", r)
	}
}
