package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must yield the same stream")
		}
	}
}

func TestDeriveIndependence(t *testing.T) {
	// Deriving a stream must not depend on how many draws the sibling
	// made before it existed — but the same label from the same parent
	// state must be stable.
	p1 := New(7)
	d1 := p1.Derive("alice")
	p2 := New(7)
	d2 := p2.Derive("alice")
	for i := 0; i < 20; i++ {
		if d1.Float64() != d2.Float64() {
			t.Fatal("derive must be deterministic")
		}
	}
	p3 := New(7)
	other := p3.Derive("bob")
	same := 0
	d3 := New(7).Derive("alice")
	for i := 0; i < 50; i++ {
		if d3.Float64() == other.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Error("different labels should give different streams")
	}
}

func moments(n int, draw func() float64) (mean, variance float64) {
	var s, s2 float64
	for i := 0; i < n; i++ {
		x := draw()
		s += x
		s2 += x * x
	}
	mean = s / float64(n)
	return mean, s2/float64(n) - mean*mean
}

func TestNormalMoments(t *testing.T) {
	src := New(1)
	mean, variance := moments(50000, func() float64 { return src.Normal(3, 2) })
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("variance = %v, want ~4", variance)
	}
}

func TestRayleighMoments(t *testing.T) {
	src := New(2)
	sigma := 1.5
	mean, _ := moments(50000, func() float64 { return src.Rayleigh(sigma) })
	want := sigma * math.Sqrt(math.Pi/2)
	if math.Abs(mean-want) > 0.03 {
		t.Errorf("Rayleigh mean = %v, want ~%v", mean, want)
	}
}

func TestRicianReducesToRayleigh(t *testing.T) {
	src := New(3)
	// K = 0: Rician(0, omega) has the Rayleigh mean sqrt(pi*omega/4)… up
	// to the omega normalization: E[R] = sqrt(pi*omega)/2.
	omega := 2.0
	mean, _ := moments(50000, func() float64 { return src.Rician(0, omega) })
	want := math.Sqrt(math.Pi*omega) / 2
	if math.Abs(mean-want) > 0.03 {
		t.Errorf("Rician(0) mean = %v, want ~%v", mean, want)
	}
}

func TestRicianPower(t *testing.T) {
	src := New(4)
	// E[R^2] = omega for any K.
	for _, k := range []float64{0, 1, 6} {
		_, _ = k, src
		var s float64
		const n = 40000
		for i := 0; i < n; i++ {
			r := src.Rician(k, 3)
			s += r * r
		}
		if got := s / n; math.Abs(got-3) > 0.1 {
			t.Errorf("K=%v: E[R^2] = %v, want ~3", k, got)
		}
	}
}

func TestLogNormal(t *testing.T) {
	src := New(5)
	mean, _ := moments(50000, func() float64 { return math.Log(src.LogNormal(0.5, 0.25)) })
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("log of LogNormal mean = %v, want ~0.5", mean)
	}
}

func TestBernoulliRate(t *testing.T) {
	src := New(6)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if src.Bernoulli(0.3) {
			hits++
		}
	}
	if rate := float64(hits) / n; math.Abs(rate-0.3) > 0.02 {
		t.Errorf("rate = %v, want ~0.3", rate)
	}
}

func TestBitsBalanced(t *testing.T) {
	src := New(7)
	bits := src.Bits(20000)
	ones := 0
	for _, b := range bits {
		if b == 1 {
			ones++
		}
	}
	if r := float64(ones) / float64(len(bits)); math.Abs(r-0.5) > 0.02 {
		t.Errorf("ones rate = %v, want ~0.5", r)
	}
}
