// Package rng provides the deterministic random sources used throughout
// the Vehicle-Key simulator. Every stochastic component (fading, noise,
// hardware offsets, NN initialization, dataset shuffling) draws from an
// explicit *Source so that experiments are exactly reproducible from a
// seed, and independent subsystems can be given independent streams.
package rng

import (
	"math"
	"math/rand"
)

// Source is a seeded pseudo-random stream. It wraps math/rand with the
// derived-stream and distribution helpers the channel and NN code need.
// A Source is not safe for concurrent use; derive one per goroutine.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// SubSeed deterministically mixes (seed, label, index) into a derived
// seed. Unlike Source.Derive, it is a pure function of its arguments: it
// consumes nothing from any stream, so the derivation is independent of
// the order in which sub-streams are created. This is the primitive the
// parallel experiment engine builds on — every unit of work (experiment
// ID × grid index) gets a stream that depends only on the root seed and
// the unit's identity, never on which worker ran it first.
func SubSeed(seed int64, label string, index int) int64 {
	// FNV-1a over the seed, label and index bytes, then a splitmix64
	// finalizer so that near-identical tuples (index n vs n+1) land far
	// apart in seed space.
	h := uint64(1469598103934665603)
	step := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for i := 0; i < 8; i++ {
		step(byte(uint64(seed) >> (8 * i)))
	}
	for i := 0; i < len(label); i++ {
		step(label[i])
	}
	for i := 0; i < 8; i++ {
		step(byte(uint64(index) >> (8 * i)))
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int64(h)
}

// Stream returns a Source for one unit of parallel work, seeded with
// SubSeed(seed, label, index). Two calls with the same tuple return
// sources that produce identical draws; calls with distinct tuples
// return decoupled streams. The returned Source is owned by the caller
// and, like every Source, must not be shared across goroutines.
func Stream(seed int64, label string, index int) *Source {
	return New(SubSeed(seed, label, index))
}

// Derive returns a new independent Source whose seed is a deterministic
// function of this source's seed stream and the given label. Use it to
// give subsystems (Alice's radio, Bob's radio, the channel process, ...)
// decoupled streams so adding draws in one does not perturb another.
func (s *Source) Derive(label string) *Source {
	h := int64(1469598103934665603) // FNV offset basis
	for _, c := range label {
		h ^= int64(c)
		h *= 1099511628211
	}
	return New(h ^ s.r.Int63())
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform int in [0, n).
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements via swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Normal returns a sample from N(mean, std²).
func (s *Source) Normal(mean, std float64) float64 {
	return mean + std*s.r.NormFloat64()
}

// Uniform returns a sample from U[lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Rayleigh returns a sample from the Rayleigh distribution with scale
// sigma — the envelope of a zero-mean complex Gaussian with per-component
// std sigma. This is the paper's fast-fading amplitude model (Eq. 1).
func (s *Source) Rayleigh(sigma float64) float64 {
	// Inverse-CDF sampling: F(x) = 1 - exp(-x²/2σ²).
	u := s.r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return sigma * math.Sqrt(-2*math.Log(1-u))
}

// LogNormal returns a sample whose natural log is N(mu, sigma²). This is
// the paper's slow-fading (shadowing) amplitude model (Eq. 2).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Rician returns a sample from the Rician envelope distribution with
// K-factor k (ratio of LOS power to scattered power) and total power
// omega. Rural LOS links are Rician; urban NLOS degenerates to Rayleigh
// at k = 0.
func (s *Source) Rician(k, omega float64) float64 {
	nu := math.Sqrt(k * omega / (k + 1))      // LOS amplitude
	sigma := math.Sqrt(omega / (2 * (k + 1))) // scatter per-component std
	x := s.Normal(nu, sigma)
	y := s.Normal(0, sigma)
	return math.Hypot(x, y)
}

// Exponential returns a sample from Exp(rate).
func (s *Source) Exponential(rate float64) float64 {
	u := s.r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1-u) / rate
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool { return s.r.Float64() < p }

// Bits returns n independent uniform bits as 0/1 bytes.
func (s *Source) Bits(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		if s.r.Int63()&1 == 1 {
			out[i] = 1
		}
	}
	return out
}
