package nist

import "testing"

// FuzzBattery checks the battery never panics or returns out-of-range
// p-values on arbitrary bit streams. Run with `go test -fuzz=FuzzBattery`;
// the seeds below also execute in a plain `go test`.
func FuzzBattery(f *testing.F) {
	f.Add(make([]byte, 256))
	f.Add([]byte{1, 0, 1, 1, 0, 0, 1, 0})
	seed := make([]byte, 512)
	for i := range seed {
		seed[i] = byte(i*37) & 1
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, raw []byte) {
		bits := make([]byte, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		results, err := BatteryExtended(bits)
		if err != nil {
			return // short inputs are allowed to error
		}
		for _, r := range results {
			if r.P < 0 || r.P > 1 || r.P != r.P {
				t.Fatalf("%s: p-value %v out of range", r.Name, r.P)
			}
		}
	})
}

// FuzzBerlekampMassey checks the LFSR-complexity routine stays within
// bounds on arbitrary inputs.
func FuzzBerlekampMassey(f *testing.F) {
	f.Add([]byte{1, 0, 0, 1, 0, 1, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		bits := make([]byte, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		l := berlekampMassey(bits)
		if l < 0 || l > len(bits) {
			t.Fatalf("complexity %d out of [0,%d]", l, len(bits))
		}
	})
}
