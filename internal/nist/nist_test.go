package nist

import (
	"testing"

	"repro/internal/rng"
)

func TestBatteryPassesOnRandomBits(t *testing.T) {
	src := rng.New(1)
	bits := src.Bits(20000)
	results, err := Battery(bits)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		t.Logf("%-26s p=%.6f", r.Name, r.P)
		if !r.Passed {
			t.Errorf("%s rejected random input: p=%.6f", r.Name, r.P)
		}
	}
}

func TestBatteryRejectsConstantBits(t *testing.T) {
	bits := make([]byte, 4096)
	results, err := Battery(bits)
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	for _, r := range results {
		if !r.Passed {
			rejected++
		}
	}
	if rejected < 4 {
		t.Errorf("constant stream should fail most tests, only %d rejected", rejected)
	}
}

func TestBatteryRejectsAlternatingBits(t *testing.T) {
	bits := make([]byte, 4096)
	for i := range bits {
		bits[i] = byte(i % 2)
	}
	results, err := Battery(bits)
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	for _, r := range results {
		if !r.Passed {
			rejected++
		}
	}
	if rejected < 2 {
		t.Errorf("alternating stream should fail several tests, only %d rejected", rejected)
	}
}

func TestBatteryRejectsBiasedBits(t *testing.T) {
	src := rng.New(2)
	bits := make([]byte, 8192)
	for i := range bits {
		if src.Bernoulli(0.7) {
			bits[i] = 1
		}
	}
	results, err := Battery(bits)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Name == "Frequency" && r.Passed {
			t.Error("Frequency test should reject 70 % bias")
		}
	}
}

func TestBerlekampMassey(t *testing.T) {
	// An m-sequence from a known LFSR has complexity = register length.
	// x^4 + x + 1 over GF(2), seed 0001 → period-15 sequence.
	reg := []byte{0, 0, 0, 1}
	var seq []byte
	for i := 0; i < 30; i++ {
		out := reg[3]
		seq = append(seq, out)
		fb := reg[3] ^ reg[0]
		copy(reg[1:], reg[:3])
		reg[0] = fb
	}
	if l := berlekampMassey(seq); l != 4 {
		t.Errorf("LFSR complexity = %d, want 4", l)
	}
}

func TestBatteryTooShort(t *testing.T) {
	if _, err := Battery(make([]byte, 16)); err == nil {
		t.Fatal("expected error for short input")
	}
}

func TestBatteryExtended(t *testing.T) {
	src := rng.New(9)
	bits := src.Bits(20000)
	results, err := BatteryExtended(bits)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 10 {
		t.Fatalf("extended battery has %d tests, want 10", len(results))
	}
	for _, r := range results {
		if !r.Passed {
			t.Errorf("%s rejected random input: p=%.6f", r.Name, r.P)
		}
	}
}

func TestRunsRejectsAlternating(t *testing.T) {
	bits := make([]byte, 2048)
	for i := range bits {
		bits[i] = byte(i % 2)
	}
	p, err := Runs(bits)
	if err != nil {
		t.Fatal(err)
	}
	if p >= 0.01 {
		t.Errorf("alternating stream passed runs test: p=%v", p)
	}
}

func TestSerialRejectsPeriodicPattern(t *testing.T) {
	bits := make([]byte, 4096)
	for i := range bits {
		if i%4 == 0 {
			bits[i] = 1
		}
	}
	p, err := Serial(bits, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p >= 0.01 {
		t.Errorf("period-4 stream passed serial test: p=%v", p)
	}
}
