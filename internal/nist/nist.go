// Package nist implements the subset of the NIST SP 800-22 statistical
// test suite the paper reports in Table II: Frequency, Block Frequency,
// Cumulative Sums, Longest Run of Ones, DFT (Spectral), Approximate
// Entropy, Non-overlapping Template Matching, and Linear Complexity.
//
// Each test consumes a 0/1 bit slice and returns a p-value; the
// randomness hypothesis is rejected below 0.01, the conventional
// threshold the paper uses.
package nist

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mathx"
)

// MinBits is the smallest input the full battery accepts. SP 800-22
// recommends much longer streams for some tests; the implementations
// below degrade gracefully but refuse fewer than this.
const MinBits = 128

// Result couples a test name with its p-value.
type Result struct {
	Name   string
	P      float64
	Passed bool // P >= 0.01
}

// Battery runs the paper's Table II tests over the bit stream and returns
// their results in the table's order.
func Battery(bits []byte) ([]Result, error) {
	if len(bits) < MinBits {
		return nil, fmt.Errorf("nist: need at least %d bits, got %d", MinBits, len(bits))
	}
	type tf struct {
		name string
		fn   func([]byte) (float64, error)
	}
	tests := []tf{
		{"Frequency", Frequency},
		{"DFT Test", DFT},
		{"Longest Run", LongestRun},
		{"Linear Complexity", LinearComplexity},
		{"Block Frequency", func(b []byte) (float64, error) { return BlockFrequency(b, 32) }},
		{"Cumulative Sums", CumulativeSums},
		{"Approximate Entropy", func(b []byte) (float64, error) { return ApproximateEntropy(b, 2) }},
		{"Non Overlapping Template", func(b []byte) (float64, error) { return NonOverlappingTemplate(b, []byte{0, 0, 1}) }},
	}
	out := make([]Result, 0, len(tests))
	for _, t := range tests {
		p, err := t.fn(bits)
		if err != nil {
			return nil, fmt.Errorf("nist: %s: %w", t.name, err)
		}
		out = append(out, Result{Name: t.name, P: p, Passed: p >= 0.01})
	}
	return out, nil
}

// BatteryExtended runs Table II's tests plus the Runs and Serial tests
// from the full SP 800-22 suite.
func BatteryExtended(bits []byte) ([]Result, error) {
	out, err := Battery(bits)
	if err != nil {
		return nil, err
	}
	for _, t := range []struct {
		name string
		fn   func([]byte) (float64, error)
	}{
		{"Runs", Runs},
		{"Serial", func(b []byte) (float64, error) { return Serial(b, 3) }},
	} {
		p, err := t.fn(bits)
		if err != nil {
			return nil, fmt.Errorf("nist: %s: %w", t.name, err)
		}
		out = append(out, Result{Name: t.name, P: p, Passed: p >= 0.01})
	}
	return out, nil
}

// Runs tests the total number of runs (maximal same-bit substrings)
// against the expectation for the observed ones proportion.
func Runs(bits []byte) (float64, error) {
	n := len(bits)
	if n < 2 {
		return 0, errors.New("input too short")
	}
	ones := 0
	for _, b := range bits {
		if b == 1 {
			ones++
		}
	}
	pi := float64(ones) / float64(n)
	// Precondition of the runs test: the frequency test must be
	// passable; SP 800-22 short-circuits to p = 0 otherwise.
	if tau := 2 / math.Sqrt(float64(n)); math.Abs(pi-0.5) >= tau {
		return 0, nil
	}
	runs := 1
	for i := 1; i < n; i++ {
		if bits[i] != bits[i-1] {
			runs++
		}
	}
	num := math.Abs(float64(runs) - 2*float64(n)*pi*(1-pi))
	den := 2 * math.Sqrt(2*float64(n)) * pi * (1 - pi)
	return math.Erfc(num / den), nil
}

// Serial tests the uniformity of overlapping m-bit patterns via the
// ∇ψ²_m statistic.
func Serial(bits []byte, m int) (float64, error) {
	n := len(bits)
	if n < 16 || m < 2 {
		return 0, errors.New("input too short or m too small")
	}
	psi := func(m int) float64 {
		if m <= 0 {
			return 0
		}
		counts := make([]int, 1<<uint(m))
		for i := 0; i < n; i++ {
			v := 0
			for j := 0; j < m; j++ {
				v = v<<1 | int(bits[(i+j)%n])
			}
			counts[v]++
		}
		var s float64
		for _, c := range counts {
			s += float64(c) * float64(c)
		}
		return s*math.Exp2(float64(m))/float64(n) - float64(n)
	}
	d1 := psi(m) - psi(m-1)
	d2 := psi(m) - 2*psi(m-1) + psi(m-2)
	p1 := mathx.Igamc(math.Exp2(float64(m-2)), d1/2)
	p2 := mathx.Igamc(math.Exp2(float64(m-3)), d2/2)
	if p2 < p1 {
		return p2, nil
	}
	return p1, nil
}

// Frequency is the monobit test: the proportion of ones should be ~1/2.
func Frequency(bits []byte) (float64, error) {
	n := len(bits)
	if n == 0 {
		return 0, errors.New("empty input")
	}
	var s float64
	for _, b := range bits {
		if b == 1 {
			s++
		} else {
			s--
		}
	}
	sObs := math.Abs(s) / math.Sqrt(float64(n))
	return math.Erfc(sObs / math.Sqrt2), nil
}

// BlockFrequency tests the proportion of ones within m-bit blocks.
func BlockFrequency(bits []byte, m int) (float64, error) {
	if m <= 0 {
		return 0, errors.New("block size must be positive")
	}
	nBlocks := len(bits) / m
	if nBlocks == 0 {
		return 0, errors.New("input shorter than one block")
	}
	var chi2 float64
	for i := 0; i < nBlocks; i++ {
		ones := 0
		for _, b := range bits[i*m : (i+1)*m] {
			if b == 1 {
				ones++
			}
		}
		pi := float64(ones) / float64(m)
		chi2 += (pi - 0.5) * (pi - 0.5)
	}
	chi2 *= 4 * float64(m)
	return mathx.Igamc(float64(nBlocks)/2, chi2/2), nil
}

// CumulativeSums tests the maximal excursion of the ±1 random walk
// (forward mode).
func CumulativeSums(bits []byte) (float64, error) {
	n := len(bits)
	if n == 0 {
		return 0, errors.New("empty input")
	}
	var s, z float64
	for _, b := range bits {
		if b == 1 {
			s++
		} else {
			s--
		}
		if a := math.Abs(s); a > z {
			z = a
		}
	}
	if z == 0 {
		return 0, nil
	}
	nf := math.Sqrt(float64(n))
	var sum1, sum2 float64
	kLo := int(math.Floor((-float64(n)/z + 1) / 4))
	kHi := int(math.Floor((float64(n)/z - 1) / 4))
	for k := kLo; k <= kHi; k++ {
		sum1 += mathx.NormalCDF((4*float64(k)+1)*z/nf) - mathx.NormalCDF((4*float64(k)-1)*z/nf)
	}
	kLo = int(math.Floor((-float64(n)/z - 3) / 4))
	for k := kLo; k <= kHi; k++ {
		sum2 += mathx.NormalCDF((4*float64(k)+3)*z/nf) - mathx.NormalCDF((4*float64(k)+1)*z/nf)
	}
	p := 1 - sum1 + sum2
	return mathx.Clamp(p, 0, 1), nil
}

// LongestRun tests the distribution of the longest run of ones within
// blocks, using the SP 800-22 parameterization for the input size.
func LongestRun(bits []byte) (float64, error) {
	n := len(bits)
	var m int
	var vCats []int
	var pi []float64
	switch {
	case n < 128:
		return 0, errors.New("need at least 128 bits")
	case n < 6272:
		m = 8
		vCats = []int{1, 2, 3, 4}
		pi = []float64{0.2148, 0.3672, 0.2305, 0.1875}
	case n < 750000:
		m = 128
		vCats = []int{4, 5, 6, 7, 8, 9}
		pi = []float64{0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124}
	default:
		m = 10000
		vCats = []int{10, 11, 12, 13, 14, 15, 16}
		pi = []float64{0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727}
	}
	nBlocks := n / m
	counts := make([]float64, len(vCats))
	for i := 0; i < nBlocks; i++ {
		longest, run := 0, 0
		for _, b := range bits[i*m : (i+1)*m] {
			if b == 1 {
				run++
				if run > longest {
					longest = run
				}
			} else {
				run = 0
			}
		}
		idx := 0
		for idx < len(vCats)-1 && longest > vCats[idx] {
			idx++
		}
		if longest < vCats[0] {
			idx = 0
		}
		counts[idx]++
	}
	var chi2 float64
	for i := range counts {
		exp := float64(nBlocks) * pi[i]
		chi2 += (counts[i] - exp) * (counts[i] - exp) / exp
	}
	return mathx.Igamc(float64(len(vCats)-1)/2, chi2/2), nil
}

// DFT is the spectral test: peaks of the discrete Fourier transform of
// the ±1 sequence should not be too concentrated.
func DFT(bits []byte) (float64, error) {
	n := len(bits)
	if n < 2 {
		return 0, errors.New("input too short")
	}
	x := make([]float64, n)
	for i, b := range bits {
		if b == 1 {
			x[i] = 1
		} else {
			x[i] = -1
		}
	}
	spec, err := mathx.FFTReal(x)
	if err != nil {
		return 0, err
	}
	half := n / 2
	threshold := math.Sqrt(math.Log(1/0.05) * float64(n))
	below := 0
	for i := 0; i < half; i++ {
		re := real(spec[i])
		im := imag(spec[i])
		if math.Hypot(re, im) < threshold {
			below++
		}
	}
	n0 := 0.95 * float64(half)
	d := (float64(below) - n0) / math.Sqrt(float64(n)*0.95*0.05/4)
	return math.Erfc(math.Abs(d) / math.Sqrt2), nil
}

// ApproximateEntropy compares the frequencies of overlapping m- and
// (m+1)-bit patterns.
func ApproximateEntropy(bits []byte, m int) (float64, error) {
	n := len(bits)
	if n < 8 {
		return 0, errors.New("input too short")
	}
	phi := func(m int) float64 {
		if m == 0 {
			return 0
		}
		counts := make([]int, 1<<uint(m))
		for i := 0; i < n; i++ {
			v := 0
			for j := 0; j < m; j++ {
				v = v<<1 | int(bits[(i+j)%n])
			}
			counts[v]++
		}
		var sum float64
		for _, c := range counts {
			if c > 0 {
				p := float64(c) / float64(n)
				sum += p * math.Log(p)
			}
		}
		return sum
	}
	apEn := phi(m) - phi(m+1)
	chi2 := 2 * float64(n) * (math.Ln2 - apEn)
	if chi2 < 0 {
		chi2 = 0
	}
	return mathx.Igamc(math.Exp2(float64(m-1)), chi2/2), nil
}

// NonOverlappingTemplate counts non-overlapping occurrences of the
// template within blocks and compares against the expected distribution.
func NonOverlappingTemplate(bits []byte, tmpl []byte) (float64, error) {
	m := len(tmpl)
	if m == 0 {
		return 0, errors.New("empty template")
	}
	// Use 8 blocks per SP 800-22 practice.
	const nBlocks = 8
	blockLen := len(bits) / nBlocks
	if blockLen < 2*m {
		return 0, errors.New("input too short for template test")
	}
	mu := float64(blockLen-m+1) / math.Exp2(float64(m))
	sigma2 := float64(blockLen) * (1/math.Exp2(float64(m)) -
		float64(2*m-1)/math.Exp2(float64(2*m)))
	var chi2 float64
	for b := 0; b < nBlocks; b++ {
		block := bits[b*blockLen : (b+1)*blockLen]
		count := 0
		for i := 0; i+m <= len(block); {
			match := true
			for j := 0; j < m; j++ {
				if block[i+j] != tmpl[j] {
					match = false
					break
				}
			}
			if match {
				count++
				i += m
			} else {
				i++
			}
		}
		chi2 += (float64(count) - mu) * (float64(count) - mu) / sigma2
	}
	return mathx.Igamc(nBlocks/2.0, chi2/2), nil
}

// LinearComplexity measures the Berlekamp–Massey LFSR complexity of
// blocks against the expectation for random data.
func LinearComplexity(bits []byte) (float64, error) {
	// Block size scaled to input (SP 800-22 recommends M in [500, 5000]
	// with large inputs; smaller blocks keep the test usable on key-sized
	// material).
	m := 128
	if len(bits) < m {
		m = len(bits)
	}
	nBlocks := len(bits) / m
	if nBlocks == 0 {
		return 0, errors.New("input too short")
	}
	pi := []float64{0.010417, 0.03125, 0.125, 0.5, 0.25, 0.0625, 0.020833}
	counts := make([]float64, 7)
	mean := float64(m)/2 + (9+math.Pow(-1, float64(m+1)))/36 -
		(float64(m)/3+2.0/9)/math.Exp2(float64(m))
	for b := 0; b < nBlocks; b++ {
		l := berlekampMassey(bits[b*m : (b+1)*m])
		t := math.Pow(-1, float64(m))*(float64(l)-mean) + 2.0/9
		switch {
		case t <= -2.5:
			counts[0]++
		case t <= -1.5:
			counts[1]++
		case t <= -0.5:
			counts[2]++
		case t <= 0.5:
			counts[3]++
		case t <= 1.5:
			counts[4]++
		case t <= 2.5:
			counts[5]++
		default:
			counts[6]++
		}
	}
	var chi2 float64
	for i := range counts {
		exp := float64(nBlocks) * pi[i]
		chi2 += (counts[i] - exp) * (counts[i] - exp) / exp
	}
	return mathx.Igamc(3, chi2/2), nil
}

// berlekampMassey returns the length of the shortest LFSR generating the
// bit sequence.
func berlekampMassey(s []byte) int {
	n := len(s)
	c := make([]byte, n)
	b := make([]byte, n)
	c[0], b[0] = 1, 1
	l, m := 0, -1
	for i := 0; i < n; i++ {
		d := s[i]
		for j := 1; j <= l; j++ {
			d ^= c[j] & s[i-j]
		}
		if d == 1 {
			t := make([]byte, n)
			copy(t, c)
			for j := 0; j+i-m < n; j++ {
				c[j+i-m] ^= b[j]
			}
			if l <= i/2 {
				l = i + 1 - l
				m = i
				copy(b, t)
			}
		}
	}
	return l
}
