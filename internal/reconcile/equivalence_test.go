package reconcile

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/rng"
)

// trainPair trains two AEs with identical seeds, one on the reference
// scalar path and one on the PR 8 fast path. Training itself routes
// through encode/backproject, so identical weights after training is
// already half the equivalence proof.
func trainPair(t *testing.T) (ref, fast *AE) {
	t.Helper()
	cfg := AEConfig{KeyBits: 64, CodeDim: 32, DecoderUnits: 16, MaxMismatch: 0.15}
	cfg.Reference = true
	ref = TrainAE(cfg, 3, 60, rng.New(42))
	cfg.Reference = false
	fast = TrainAE(cfg, 3, 60, rng.New(42))
	return ref, fast
}

// TestAEFastPathByteIdentical reconciles many random key pairs (varying
// mismatch counts and salts) through both paths and demands bitwise
// agreement of every outcome field that carries key material.
func TestAEFastPathByteIdentical(t *testing.T) {
	ref, fast := trainPair(t)
	for i, pr := range ref.Params() {
		pf := fast.Params()[i]
		for j := range pr.W {
			if math.Float64bits(pr.W[j]) != math.Float64bits(pf.W[j]) {
				t.Fatalf("training diverged at tensor %q element %d", pr.Name, j)
			}
		}
	}
	src := rng.New(7)
	for trial := 0; trial < 40; trial++ {
		kb := src.Bits(64)
		ka := make([]byte, 64)
		copy(ka, kb)
		for f := 0; f < trial%9; f++ {
			ka[src.Intn(64)] ^= 1
		}
		salt := []byte(fmt.Sprintf("salt-%d", trial%5))
		outRef, errRef := ref.Reconcile(ka, kb, salt)
		outFast, errFast := fast.Reconcile(ka, kb, salt)
		if (errRef == nil) != (errFast == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, errRef, errFast)
		}
		if errRef != nil {
			continue
		}
		if string(outRef.AliceKey) != string(outFast.AliceKey) {
			t.Fatalf("trial %d: corrected keys differ between paths", trial)
		}
		if string(outRef.BobKey) != string(outFast.BobKey) {
			t.Fatalf("trial %d: bob keys differ between paths", trial)
		}
		if outRef.SyndromeBits != outFast.SyndromeBits || outRef.LeakedKeyBits != outFast.LeakedKeyBits {
			t.Fatalf("trial %d: leakage accounting differs between paths", trial)
		}
	}
}

// TestAEEncodeShortInputFallback: inputs shorter than KeyBits take the
// reference loop on both paths (the fast ±1 mapping has no exact
// equivalent for the early stop), so they agree trivially — pin it.
func TestAEEncodeShortInputFallback(t *testing.T) {
	cfgRef := AEConfig{KeyBits: 32, CodeDim: 16, Reference: true}
	cfgFast := AEConfig{KeyBits: 32, CodeDim: 16}
	ref := NewAE(cfgRef, rng.New(1))
	fast := NewAE(cfgFast, rng.New(1))
	short := []byte{1, 0, 1, 1, 0}
	a, b := ref.encode(short), fast.encode(short)
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("short-input encode differs at %d", i)
		}
	}
}

func TestBloomForMatchesFresh(t *testing.T) {
	for _, n := range []int{16, 64, 128} {
		for s := 0; s < 5; s++ {
			salt := []byte(fmt.Sprintf("s%d", s))
			cached := BloomFor(n, salt)
			fresh := NewBloomFilter(n, salt)
			bits := rng.New(int64(n + s)).Bits(n)
			a := cached.Transform(bits)
			b := fresh.Transform(bits)
			if string(a) != string(b) {
				t.Fatalf("n=%d salt=%s: cached transform differs from fresh", n, salt)
			}
			if string(cached.Inverse(a)) != string(bits) {
				t.Fatalf("n=%d salt=%s: cached inverse broken", n, salt)
			}
			// Second lookup must return the identical shared instance.
			if BloomFor(n, salt) != cached {
				t.Fatalf("n=%d salt=%s: cache did not return the shared filter", n, salt)
			}
		}
	}
}

// TestBloomCacheEvictionChurn overflows the bloom cache and checks
// evicted keys are rebuilt correctly (purity means eviction can only
// cost time, never correctness).
func TestBloomCacheEvictionChurn(t *testing.T) {
	bits := rng.New(3).Bits(32)
	want := NewBloomFilter(32, []byte("churn-0")).Transform(bits)
	for i := 0; i < 300; i++ { // capacity is 128
		BloomFor(32, []byte(fmt.Sprintf("churn-%d", i)))
	}
	got := BloomFor(32, []byte("churn-0")).Transform(bits)
	if string(got) != string(want) {
		t.Fatal("rebuilt-after-eviction filter differs from fresh")
	}
	if st := CacheStats()["bloom"]; st.Evictions == 0 {
		t.Fatalf("churn produced no evictions: %+v", st)
	}
}

func TestSensingMatrixCachedMatches(t *testing.T) {
	fresh := sensingMatrix(16, 64, 99)
	cached := sensingMatrixCached(16, 64, 99)
	if len(fresh) != len(cached) {
		t.Fatal("length mismatch")
	}
	for i := range fresh {
		if math.Float64bits(fresh[i]) != math.Float64bits(cached[i]) {
			t.Fatalf("element %d differs", i)
		}
	}
}

func TestCascadePermCachedMatches(t *testing.T) {
	for pass := 0; pass < 4; pass++ {
		fresh := cascadePerm([]byte("sess"), pass, 128)
		cached := cascadePermCached([]byte("sess"), pass, 128)
		if len(fresh) != len(cached) {
			t.Fatal("length mismatch")
		}
		for i := range fresh {
			if fresh[i] != cached[i] {
				t.Fatalf("pass %d element %d differs", pass, i)
			}
		}
	}
}
