package reconcile

import (
	"testing"

	"repro/internal/rng"
)

// TestMatchedFilterBound measures what plain |Wᵀh| ranking with the
// ‖h‖²/4 count estimate achieves — the information bound the NN decoder
// should approach.
func TestMatchedFilterBound(t *testing.T) {
	cfg := AEConfig{KeyBits: 64, CodeDim: 32, DecoderUnits: 64, MaxMismatch: 0.15}
	cfg.normalize()
	ae := NewAE(cfg, rng.New(1))
	src := rng.New(2)
	for _, flips := range []int{2, 5, 8} {
		var agree float64
		const trials = 200
		for i := 0; i < trials; i++ {
			kb := src.Bits(64)
			ka := flipBits(kb, flips, src)
			yB := ae.encode(kb)
			yA := ae.encode(ka)
			h := make([]float64, len(yB))
			var hn float64
			for j := range h {
				h[j] = yB[j] - yA[j]
				hn += h[j] * h[j]
			}
			bp := ae.backproject(h)
			kHat := int(hn/4 + 0.5)
			out := make([]byte, 64)
			copy(out, ka)
			for r := 0; r < kHat; r++ {
				best, bv := -1, -1.0
				for j, v := range bp {
					av := v
					if av < 0 {
						av = -av
					}
					if av > bv {
						bv, best = av, j
					}
				}
				out[best] ^= 1
				bp[best] = 0
			}
			same := 0
			for j := range out {
				if out[j] == kb[j] {
					same++
				}
			}
			agree += float64(same) / 64
		}
		t.Logf("flips=%d matched-filter agreement %.4f", flips, agree/trials)
	}
}
