package reconcile

import (
	"errors"
	"math"
)

// This file splits the compressed-sensing reconciler into its two wire
// halves, so the protocol layer can run LoRa-Key/Gao reconciliation as
// a one-message exchange: Bob transmits the public syndrome y = Φ·k_B,
// Alice decodes the sparse mismatch from her own projection. CSISTA is
// the local (both-keys-in-hand) composition of the same two halves.

// CSEncode is Bob's half: the public syndrome y = Φ·k_B over the shared
// sensing matrix derived from cfg.MatrixSeed.
func CSEncode(keyBob []byte, cfg CSConfig) []float64 {
	if cfg.Rows <= 0 {
		cfg.Rows = 20
	}
	n := len(keyBob)
	phi := sensingMatrixCached(cfg.Rows, n, cfg.MatrixSeed)
	return matVecBits(phi, keyBob, cfg.Rows, n)
}

// CSISTACorrect is Alice's half: she forms Φ·k_A − y = Φ·e and recovers
// the sparse mismatch e with the same ISTA decode CSISTA runs, flipping
// the recovered positions in a copy of her key. A syndrome whose length
// does not match cfg.Rows (possible with a corrupted or hostile
// envelope) is rejected with an error, never a panic.
func CSISTACorrect(keyAlice []byte, yBob []float64, cfg CSConfig) ([]byte, error) {
	if cfg.Rows <= 0 {
		cfg.Rows = 20
	}
	m := cfg.Rows
	if len(yBob) != m {
		return nil, errors.New("reconcile: cs syndrome length mismatch")
	}
	iters := cfg.ISTAIterations
	if iters <= 0 {
		iters = 200
	}
	n := len(keyAlice)
	phi := sensingMatrixCached(m, n, cfg.MatrixSeed)
	yA := matVecBits(phi, keyAlice, m, n)
	b := make([]float64, m)
	for i := range b {
		b[i] = yA[i] - yBob[i]
	}

	// ISTA, identical to CSISTA's decode: x ← shrink(x + (1/L)·Φᵀ(b − Φx), λ/L).
	x := make([]float64, n)
	l := float64(n) / float64(m)
	step := 1 / l
	lambda := 0.2
	resid := make([]float64, m)
	grad := make([]float64, n)
	for it := 0; it < iters; it++ {
		for r := 0; r < m; r++ {
			s := b[r]
			row := phi[r*n : (r+1)*n]
			for c := 0; c < n; c++ {
				s -= row[c] * x[c]
			}
			resid[r] = s
		}
		for c := 0; c < n; c++ {
			var s float64
			for r := 0; r < m; r++ {
				s += phi[r*n+c] * resid[r]
			}
			grad[c] = s
		}
		for c := 0; c < n; c++ {
			v := x[c] + step*grad[c]
			switch {
			case v > lambda*step:
				v -= lambda * step
			case v < -lambda*step:
				v += lambda * step
			default:
				v = 0
			}
			x[c] = v
		}
	}

	alice := make([]byte, n)
	copy(alice, keyAlice)
	for c := 0; c < n; c++ {
		if math.Abs(x[c]) > 0.5 {
			alice[c] ^= 1
		}
	}
	return alice, nil
}
