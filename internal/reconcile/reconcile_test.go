package reconcile

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func flipBits(key []byte, k int, src *rng.Source) []byte {
	out := make([]byte, len(key))
	copy(out, key)
	perm := src.Perm(len(key))
	for i := 0; i < k && i < len(perm); i++ {
		out[perm[i]] ^= 1
	}
	return out
}

func TestBloomFilterRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		bf := NewBloomFilter(128, []byte{byte(seed), 1, 2})
		key := src.Bits(128)
		return bytes.Equal(bf.Inverse(bf.Transform(key)), key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBloomFilterPreservesMismatchCount(t *testing.T) {
	f := func(seed int64, flips uint8) bool {
		src := rng.New(seed)
		k := int(flips) % 64
		bf := NewBloomFilter(128, []byte{3, byte(seed)})
		ka := src.Bits(128)
		kb := flipBits(ka, k, src)
		ta, tb := bf.Transform(ka), bf.Transform(kb)
		var before, after int
		for i := range ka {
			if ka[i] != kb[i] {
				before++
			}
			if ta[i] != tb[i] {
				after++
			}
		}
		return before == after
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBloomFilterDifferentSaltsDiffer(t *testing.T) {
	src := rng.New(1)
	key := src.Bits(128)
	a := NewBloomFilter(128, []byte("session-a")).Transform(key)
	b := NewBloomFilter(128, []byte("session-b")).Transform(key)
	if bytes.Equal(a, b) {
		t.Fatal("different salts must yield different transforms")
	}
}

func TestCascadeConvergesToEqualKeys(t *testing.T) {
	f := func(seed int64, flips uint8) bool {
		src := rng.New(seed)
		ka := src.Bits(128)
		kb := flipBits(ka, int(flips)%16, src.Derive("flip"))
		out, err := Cascade(kb, ka, DefaultCascadeConfig(), src.Derive("cascade"))
		if err != nil {
			return false
		}
		// Cascade with 4 passes corrects small mismatch counts fully.
		return out.Agreement() >= 0.99
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCascadeCountsExchanges(t *testing.T) {
	src := rng.New(2)
	ka := src.Bits(128)
	kb := flipBits(ka, 8, src)
	out, err := Cascade(kb, ka, DefaultCascadeConfig(), src)
	if err != nil {
		t.Fatal(err)
	}
	if out.Messages < 10 {
		t.Errorf("cascade should need many interactive messages, got %d", out.Messages)
	}
	if out.Method != "cascade" {
		t.Errorf("method = %q", out.Method)
	}
}

func TestCSCorrectsSparseMismatch(t *testing.T) {
	src := rng.New(3)
	// M = 20 measurements over 64 bits recovers only a few errors —
	// exactly the limitation the paper's autoencoder addresses. Beyond
	// that envelope we only log the degradation.
	for _, flips := range []int{0, 1, 3} {
		ka := src.Bits(64)
		kb := flipBits(ka, flips, src)
		out, err := CS(kb, ka, DefaultCSConfig())
		if err != nil {
			t.Fatal(err)
		}
		if !out.Exact() {
			t.Errorf("CS failed at %d flips: agreement %.3f", flips, out.Agreement())
		}
	}
	ka := src.Bits(64)
	kb := flipBits(ka, 6, src)
	out, err := CS(kb, ka, DefaultCSConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("CS at 6 flips (beyond M/2·log envelope): agreement %.3f", out.Agreement())
}

func TestCSISTACorrectsSparseMismatch(t *testing.T) {
	src := rng.New(31)
	for _, flips := range []int{0, 1, 2} {
		ka := src.Bits(64)
		kb := flipBits(ka, flips, src)
		out, err := CSISTA(kb, ka, DefaultCSConfig())
		if err != nil {
			t.Fatal(err)
		}
		if out.Agreement() < 0.95 {
			t.Errorf("ISTA at %d flips: agreement %.3f", flips, out.Agreement())
		}
	}
}

func TestCSDegradesGracefullyWhenDense(t *testing.T) {
	src := rng.New(4)
	ka := src.Bits(64)
	kb := flipBits(ka, 25, src) // way beyond M/2 sparsity
	out, err := CS(kb, ka, DefaultCSConfig())
	if err != nil {
		t.Fatal(err)
	}
	if out.Agreement() < 0.3 {
		t.Errorf("CS should not corrupt most bits: agreement %.3f", out.Agreement())
	}
}

func trainSmallAE(t *testing.T) *AE {
	t.Helper()
	cfg := AEConfig{KeyBits: 64, CodeDim: 32, DecoderUnits: 16, MaxMismatch: 0.15}
	return TrainAE(cfg, 10, 200, rng.New(5))
}

func TestAECorrectsMismatches(t *testing.T) {
	if testing.Short() {
		t.Skip("AE training is slow")
	}
	ae := trainSmallAE(t)
	src := rng.New(6)
	salt := []byte("session")
	for _, tc := range []struct {
		flips    int
		minAgree float64
	}{
		{1, 0.99},
		{3, 0.97},
		{5, 0.92},
	} {
		var agree float64
		const trials = 50
		for i := 0; i < trials; i++ {
			kb := src.Bits(64)
			ka := flipBits(kb, tc.flips, src)
			out, err := ae.Reconcile(ka, kb, salt)
			if err != nil {
				t.Fatal(err)
			}
			agree += out.Agreement()
		}
		agree /= trials
		t.Logf("mean post-AE agreement at %d/64 flips: %.4f", tc.flips, agree)
		if agree < tc.minAgree {
			t.Errorf("AE agreement %.4f at %d flips below %.2f", agree, tc.flips, tc.minAgree)
		}
	}
}

func TestAEBeatsCSAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("AE training is slow")
	}
	ae := trainSmallAE(t)
	src := rng.New(17)
	const trials = 40
	var aeAgree, csAgree float64
	for i := 0; i < trials; i++ {
		kb := src.Bits(64)
		ka := flipBits(kb, 5, src)
		aeOut, err := ae.Reconcile(ka, kb, []byte("s"))
		if err != nil {
			t.Fatal(err)
		}
		csOut, err := CSISTA(ka, kb, DefaultCSConfig())
		if err != nil {
			t.Fatal(err)
		}
		aeAgree += aeOut.Agreement()
		csAgree += csOut.Agreement()
	}
	aeAgree /= trials
	csAgree /= trials
	t.Logf("agreement at 5/64 flips: AE=%.4f CS-ISTA=%.4f", aeAgree, csAgree)
	if aeAgree <= csAgree {
		t.Errorf("AE agreement %.4f should beat CS %.4f (Fig. 11)", aeAgree, csAgree)
	}
}

func TestAECheaperThanCS(t *testing.T) {
	if testing.Short() {
		t.Skip("AE training is slow")
	}
	ae := trainSmallAE(t)
	src := rng.New(7)
	kb := src.Bits(64)
	ka := flipBits(kb, 5, src)
	aeOut, err := ae.Reconcile(ka, kb, []byte("s"))
	if err != nil {
		t.Fatal(err)
	}
	csOut, err := CSISTA(ka, kb, DefaultCSConfig())
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(csOut.ComputeOps) / float64(aeOut.ComputeOps)
	t.Logf("compute ops: AE=%d CS-ISTA=%d (ratio %.1fx)", aeOut.ComputeOps, csOut.ComputeOps, ratio)
	if ratio < 5 {
		t.Errorf("AE should be ≫ cheaper than iterative CS, got %.1fx (Fig. 11 reports ~10x)", ratio)
	}
}

func TestAESaveLoadRoundTrip(t *testing.T) {
	src := rng.New(8)
	cfg := AEConfig{KeyBits: 32, CodeDim: 8, DecoderUnits: 16}
	ae := NewAE(cfg, src)
	var buf bytes.Buffer
	if err := ae.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ae2 := NewAE(cfg, rng.New(9))
	if err := ae2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	key := src.Bits(32)
	y1 := ae.EncodeBob(key)
	y2 := ae2.EncodeBob(key)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("loaded model disagrees at %d: %v vs %v", i, y1[i], y2[i])
		}
	}
}
