// Package-level memoization of the reconcilers' pure derived artifacts
// (PR 8). Every cached value is fully determined by its key and
// read-only after construction:
//
//   - BloomFilter: permutation + pad derived by SHA-256 from (n, salt);
//     Transform/Inverse only read it.
//   - CS sensing matrix: ±1/√m entries derived from (m, n, seed); the
//     OMP/ISTA solvers only read it.
//   - Cascade pass permutation: Fisher–Yates order derived from
//     (salt, pass, n); the encode/correct passes only read it.
//
// Purity makes the caches safe to share across the server worker pool
// (memo.LRU is mutex-guarded, and a racing duplicate construction is
// identical by determinism); cache_test.go proves cached == fresh
// byte-for-byte and the race soak in the server package exercises the
// sharing.
package reconcile

import "repro/internal/memo"

type bloomKey struct {
	n    int
	salt string
}

type phiKey struct {
	m, n int
	seed int64
}

type permKey struct {
	salt string
	pass int
	n    int
}

var (
	// Sized for serving reality: sessions reuse one salt per stream
	// block counter (bounded churn), experiments sweep a few matrix
	// shapes, and cascade touches Passes perms per salt.
	bloomCache = memo.NewLRU[bloomKey, *BloomFilter](128)
	phiCache   = memo.NewLRU[phiKey, []float64](32)
	permCache  = memo.NewLRU[permKey, []int](256)
)

// BloomFor returns the Bloom transform for (n, salt), constructing it
// at most once per cached key. The returned filter is shared and
// read-only; construction is deterministic, so every caller sees the
// same permutation regardless of which goroutine built it.
func BloomFor(n int, salt []byte) *BloomFilter {
	k := bloomKey{n: n, salt: string(salt)}
	if bf, ok := bloomCache.Get(k); ok {
		return bf
	}
	bf := NewBloomFilter(n, salt)
	bloomCache.Put(k, bf)
	return bf
}

// sensingMatrixCached is the memoized sensingMatrix. The CS solvers
// only read the returned slice.
func sensingMatrixCached(m, n int, seed int64) []float64 {
	k := phiKey{m: m, n: n, seed: seed}
	if phi, ok := phiCache.Get(k); ok {
		return phi
	}
	phi := sensingMatrix(m, n, seed)
	phiCache.Put(k, phi)
	return phi
}

// cascadePermCached is the memoized cascadePerm. Both ends of a pass
// only read the returned order.
func cascadePermCached(salt []byte, pass, n int) []int {
	k := permKey{salt: string(salt), pass: pass, n: n}
	if p, ok := permCache.Get(k); ok {
		return p
	}
	p := cascadePerm(salt, pass, n)
	permCache.Put(k, p)
	return p
}

// CacheStats snapshots the reconciler caches' hit/miss/eviction
// counters, keyed by cache name. Diagnostics and tests only.
func CacheStats() map[string]memo.Stats {
	return map[string]memo.Stats{
		"bloom":   bloomCache.Stats(),
		"sensing": phiCache.Stats(),
		"cascade": permCache.Stats(),
	}
}

// ResetCaches drops every cached artifact (tests only; values are pure,
// so this is never needed for correctness).
func ResetCaches() {
	bloomCache.Purge()
	phiCache.Purge()
	permCache.Purge()
}
