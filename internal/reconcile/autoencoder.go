package reconcile

import (
	"bytes"
	"errors"
	"io"
	"math"
	"sync"

	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/rng"
)

// AEConfig sizes the autoencoder reconciler.
type AEConfig struct {
	// KeyBits is the key length N the reconciler operates on.
	KeyBits int
	// CodeDim is M, the width of the transmitted code vector y_Bob
	// (paper: 32-unit encoder layers).
	CodeDim int
	// DecoderUnits is the hidden width of the decoder's three fully
	// connected hidden layers — the quantity swept in Fig. 11
	// (AE-16 … AE-128; the paper selects AE-64).
	DecoderUnits int
	// MaxMismatch is the largest bit-disagreement fraction the model is
	// trained to correct.
	MaxMismatch float64
	// EncoderSeed keys the fixed encoder projection; both parties derive
	// it from public session context.
	EncoderSeed int64
	// Reference forces the original scalar implementations (per-element
	// encoder loops, per-position decoder calls, uncached Bloom filters)
	// instead of the PR 8 fast path. Both paths are byte-identical —
	// equivalence_test.go pins that — so this exists for benchmarking
	// the speedup and for the equivalence battery itself.
	Reference bool
}

// DefaultAEConfig returns the selected configuration: 128-bit keys,
// 32-dimensional code, 16-unit shared decoder, trained up to 15 %
// mismatch. Note on sizing: the paper selects AE-64 for its *dense*
// decoder; our decoder shares weights across bit positions (see AE), so
// far fewer units per position reach the same accuracy, and 16 units is
// the agreement/cost balance point that AE-64 plays in the paper.
func DefaultAEConfig() AEConfig {
	return AEConfig{KeyBits: 128, CodeDim: 32, DecoderUnits: 16, MaxMismatch: 0.15, EncoderSeed: 424242}
}

func (c *AEConfig) normalize() {
	if c.KeyBits <= 0 {
		c.KeyBits = 128
	}
	if c.CodeDim <= 0 {
		c.CodeDim = 32
	}
	if c.DecoderUnits <= 0 {
		c.DecoderUnits = 16
	}
	if c.MaxMismatch <= 0 || c.MaxMismatch >= 0.5 {
		c.MaxMismatch = 0.15
	}
	if c.EncoderSeed == 0 {
		c.EncoderSeed = 424242
	}
}

// AE is the paper's two-input autoencoder reconciler (Fig. 7). Bob runs
// only the blue path: Bloom filter → pre-trained encoder → code vector
// y_Bob, which he transmits. Alice encodes her own Bloom-filtered key,
// subtracts, and decodes the difference into the estimated mismatch
// pattern Δx, which she XORs onto her key.
//
// Implementation notes relative to the paper's sketch:
//
//   - The paper describes the encoders as *pre-trained*; here the shared
//     encoder is a fixed random linear projection (the classical CS
//     sensing structure the design is motivated by [24]).
//   - The decoder g keeps the paper's three fully connected hidden layers
//     but is applied position-wise with shared weights (a 1×1
//     convolution) over per-position features [|Wᵀh|_j, k̂], where
//     k̂ = ‖h‖²/4 estimates the mismatch count. The reconciliation task
//     is permutation-equivariant over bit positions, so weight sharing is
//     the correct inductive bias and is what lets a compact decoder reach
//     the matched-filter bound.
type AE struct {
	Cfg AEConfig

	w   []float64 // CodeDim×KeyBits fixed encoder projection
	dec *nn.MLP   // shared per-position decoder: [|bp_j|, k̂] → P(flip)

	// Fast-path scratch, reused across calls. One System is routinely
	// shared between an Alice and a Bob protocol node in the same
	// process (the loopback tests and benches do exactly that), so
	// EncodeBob and Correct can race on these buffers — mu serializes
	// them. Training and Save/Load stay single-goroutine by contract.
	mu      sync.Mutex
	scPM    []float64 // ±1-mapped key for the encoder GEMV
	scBP    []float64 // backprojection output
	scFeat  []float64 // batched decoder input rows
	scScore []float64 // batched decoder output
}

// growF returns *buf resized to n, reusing its backing array when
// large enough. Contents are unspecified — callers overwrite.
func growF(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// NewAE builds an untrained reconciler. Callers normally use TrainAE.
func NewAE(cfg AEConfig, src *rng.Source) *AE {
	cfg.normalize()
	ae := &AE{Cfg: cfg}
	// Shared fixed projection, ±1/√M Bernoulli like the CS baselines.
	enc := rng.New(cfg.EncoderSeed)
	ae.w = make([]float64, cfg.CodeDim*cfg.KeyBits)
	scale := 1 / math.Sqrt(float64(cfg.CodeDim))
	for i := range ae.w {
		if enc.Bernoulli(0.5) {
			ae.w[i] = scale
		} else {
			ae.w[i] = -scale
		}
	}
	spec := []nn.MLPSpec{
		{Out: cfg.DecoderUnits, Act: nn.ReLU},
		{Out: cfg.DecoderUnits, Act: nn.ReLU},
		{Out: 1, Act: nn.Sigmoid},
	}
	ae.dec = nn.NewMLP("ae.dec", 2, spec, src)
	return ae
}

// decodeRounds is the fixed number of decode/cancel rounds Correct runs;
// a small constant keeps the cost an order of magnitude below iterative
// CS while interference cancellation recovers most of its accuracy.
const decodeRounds = 3

// Params returns the learnable tensors (the decoder's; the encoder
// projection is fixed).
func (ae *AE) Params() nn.Params { return ae.dec.Params() }

// Save serializes the trained decoder weights.
func (ae *AE) Save(w io.Writer) error { return nn.SaveParams(w, ae.Params()) }

// Load restores weights saved by Save into a model built with the same
// AEConfig.
func (ae *AE) Load(r io.Reader) error { return nn.LoadParams(r, ae.Params()) }

// Clone returns an independent deep copy of the reconciler: same fixed
// encoder projection (it is derived from Cfg.EncoderSeed), decoder
// weights copied through the Save/Load round-trip so the two copies
// share no parameter storage. The initialization seed is irrelevant —
// Load overwrites every trained parameter.
func (ae *AE) Clone() *AE {
	out := NewAE(ae.Cfg, rng.New(1))
	var buf bytes.Buffer
	if err := ae.Save(&buf); err != nil {
		panic("reconcile: AE clone save: " + err.Error())
	}
	if err := out.Load(&buf); err != nil {
		panic("reconcile: AE clone load: " + err.Error())
	}
	return out
}

// encode projects a ±1-mapped key through the fixed encoder. The fast
// path maps the bits to a ±1 vector once and runs a single GEMV:
// row[c]*(+1) and row[c]*(−1) are exact in IEEE float, and s−row[c]
// equals s+(−row[c]) bit-for-bit, so the result is byte-identical to
// the branchy reference loop. Short inputs (len(bits) < KeyBits) fall
// back to the reference, whose early stop has no ±1 encoding.
func (ae *AE) encode(bits []byte) []float64 {
	n, m := ae.Cfg.KeyBits, ae.Cfg.CodeDim
	out := make([]float64, m)
	if !ae.Cfg.Reference && len(bits) >= n {
		pm := growF(&ae.scPM, n)
		for c := 0; c < n; c++ {
			if bits[c] == 1 {
				pm[c] = 1
			} else {
				pm[c] = -1
			}
		}
		mathx.MatVec(ae.w, m, n, pm, out)
		return out
	}
	for r := 0; r < m; r++ {
		row := ae.w[r*n : (r+1)*n]
		var s float64
		for c := 0; c < n && c < len(bits); c++ {
			if bits[c] == 1 {
				s += row[c]
			} else {
				s -= row[c]
			}
		}
		out[r] = s
	}
	return out
}

// backproject computes Wᵀh, the decoder's matched-filter first stage.
// The fast path streams W row-major (one cache-friendly pass) instead
// of striding down columns; per output element the terms are still
// added in ascending r, so the sums are byte-identical. The returned
// slice is scratch, valid until the next backproject call.
func (ae *AE) backproject(h []float64) []float64 {
	n, m := ae.Cfg.KeyBits, ae.Cfg.CodeDim
	if !ae.Cfg.Reference {
		out := growF(&ae.scBP, n)
		mathx.MatVecT(ae.w, m, n, h, out)
		return out
	}
	out := make([]float64, n)
	for c := 0; c < n; c++ {
		var s float64
		for r := 0; r < m; r++ {
			s += ae.w[r*n+c] * h[r]
		}
		out[c] = s
	}
	return out
}

// features derives the per-position decoder inputs from the code
// difference h: |Wᵀh|_j and the shared mismatch-count estimate
// k̂ = ‖h‖²/4 (encoder columns are near-orthonormal and a flip changes the
// ±1-mapped key by magnitude 2).
func (ae *AE) features(h []float64) (absBP []float64, kHat float64) {
	bp := ae.backproject(h)
	var hNorm float64
	for _, v := range h {
		hNorm += v * v
	}
	for i, v := range bp {
		bp[i] = math.Abs(v)
		_ = i
	}
	return bp, hNorm / 4
}

// EncodeBob is Bob's half of reconciliation: his Bloom-filtered key is
// compressed into the code vector y_Bob that he transmits to Alice.
func (ae *AE) EncodeBob(bloomKeyBob []byte) []float64 {
	if len(bloomKeyBob) != ae.Cfg.KeyBits {
		panic("reconcile: key length mismatch")
	}
	ae.mu.Lock()
	defer ae.mu.Unlock()
	return ae.encode(bloomKeyBob)
}

// Correct is Alice's half: from her Bloom-filtered key and Bob's received
// code vector she decodes the mismatch pattern and returns her corrected
// key (in the Bloom-filtered domain).
//
// Decoding runs a fixed small number of rounds: each round scores
// candidate positions with the shared decoder, flips the most confident
// ones, and cancels their contribution from the code difference h, so the
// next round sees less interference. After the first round only the
// positions that were plausible candidates (largest |Wᵀh|) are rescored.
func (ae *AE) Correct(bloomKeyAlice []byte, yBob []float64) []byte {
	ae.mu.Lock()
	defer ae.mu.Unlock()
	n := ae.Cfg.KeyBits
	out := make([]byte, n)
	copy(out, bloomKeyAlice)
	yAlice := ae.encode(out)
	h := make([]float64, len(yBob))
	for i := range h {
		h[i] = yBob[i] - yAlice[i]
	}

	// Refuse to decode when the estimated mismatch count exceeds the
	// trained envelope: beyond it the decoder would mostly flip wrong
	// bits. This also denies an eavesdropper any use of an intercepted
	// code vector — her key disagrees with Bob's in ≈ half the positions,
	// far past the envelope, so the syndrome corrects nothing for her
	// (the paper's Fig. 15a observation).
	maxK := ae.Cfg.MaxMismatch * float64(n) * 1.2
	if _, kHat0 := ae.features(h); kHat0 > maxK {
		return out
	}

	in := make([]float64, 2)
	scores := make([]float64, n)
	candidates := make([]int, 0, n)
	for round := 0; round < decodeRounds; round++ {
		absBP, kHat := ae.features(h)
		kRemain := int(kHat + 0.5)
		if kRemain <= 0 {
			break
		}
		// Round 0 considers every position; later rounds only the
		// plausible ones (4k̂+8 largest |Wᵀh|).
		candidates = candidates[:0]
		if round == 0 {
			for j := 0; j < n; j++ {
				candidates = append(candidates, j)
			}
		} else {
			limit := 4*kRemain + 8
			if limit > n {
				limit = n
			}
			candidates = topIndices(absBP, limit, candidates)
		}
		for i := range scores {
			scores[i] = -1
		}
		if ae.Cfg.Reference {
			for _, j := range candidates {
				in[0], in[1] = absBP[j], kHat
				scores[j] = ae.dec.Forward(in)[0]
			}
		} else {
			// One batched decoder pass over all candidates (byte-
			// identical per row to the per-position calls above).
			rows := len(candidates)
			feat := growF(&ae.scFeat, rows*2)
			for i, j := range candidates {
				feat[2*i], feat[2*i+1] = absBP[j], kHat
			}
			batched := growF(&ae.scScore, rows)
			ae.dec.ForwardInfer(feat, rows, batched)
			for i, j := range candidates {
				scores[j] = batched[i]
			}
		}
		// Flip the most confident candidates this round; leave the
		// uncertain tail for the cleaner next round. The final round
		// flips everything still estimated mismatched.
		quota := (kRemain + 1) / 2
		if round == decodeRounds-1 {
			quota = kRemain
		}
		flipped := 0
		for flipped < quota {
			best, bestScore := -1, 0.3 // confidence floor
			for j, s := range scores {
				if s > bestScore {
					bestScore, best = s, j
				}
			}
			if best < 0 {
				break
			}
			scores[best] = -1
			ae.cancelFlip(out, best, h)
			flipped++
		}
		if flipped == 0 {
			break
		}
	}
	return out
}

// cancelFlip flips Alice's working bit j and removes its contribution
// from the code difference h (the encode of the ±1-mapped key changes by
// ±2·w_col_j, so h moves the opposite way).
func (ae *AE) cancelFlip(key []byte, j int, h []float64) {
	n, m := ae.Cfg.KeyBits, ae.Cfg.CodeDim
	var d float64 = 2
	if key[j] == 1 {
		d = -2 // bit 1→0: Alice's encoding loses +w_j twice
	}
	key[j] ^= 1
	for r := 0; r < m; r++ {
		h[r] -= d * ae.w[r*n+j]
	}
}

// topIndices appends the indices of the k largest values of xs to dst.
func topIndices(xs []float64, k int, dst []int) []int {
	// Simple selection: k is small (tens) and xs short; O(k·n) is fine.
	used := make([]bool, len(xs))
	for r := 0; r < k; r++ {
		best, bv := -1, -1.0
		for i, v := range xs {
			if !used[i] && v > bv {
				bv, best = v, i
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		dst = append(dst, best)
	}
	return dst
}

// TrainAE trains a reconciler on synthetic key pairs: Bob's key is
// uniform, Alice's differs in a random fraction of positions up to
// MaxMismatch (mirroring the paper, which trains on the mismatch
// distribution its quantizer produces). Returns the trained model.
func TrainAE(cfg AEConfig, epochs, samplesPerEpoch int, src *rng.Source) *AE {
	cfg.normalize()
	ae := NewAE(cfg, src.Derive("init"))
	opt := nn.NewAdam(2e-3)
	params := ae.Params()
	data := src.Derive("data")
	for e := 0; e < epochs; e++ {
		// Step-decay learning rate: thirds at 2e-3 / 1e-3 / 4e-4.
		switch {
		case e >= 2*epochs/3:
			opt.LR = 4e-4
		case e >= epochs/3:
			opt.LR = 1e-3
		}
		for s := 0; s < samplesPerEpoch; s++ {
			kb := data.Bits(cfg.KeyBits)
			ka := make([]byte, cfg.KeyBits)
			copy(ka, kb)
			rate := data.Uniform(0, cfg.MaxMismatch)
			for i := range ka {
				if data.Bernoulli(rate) {
					ka[i] ^= 1
				}
			}
			ae.trainStep(ka, kb)
			params.ClipGrad(5)
			opt.Step(params)
		}
	}
	return ae
}

// trainStep runs one forward/backward decoder pass per bit position.
func (ae *AE) trainStep(ka, kb []byte) float64 {
	yB := ae.encode(kb)
	yA := ae.encode(ka)
	h := make([]float64, len(yB))
	for i := range h {
		h[i] = yB[i] - yA[i]
	}
	absBP, kHat := ae.features(h)
	// Positive-weighted binary cross entropy: mismatch positions are a
	// small minority of the targets and an unweighted loss lets the
	// decoder collapse to predicting all-zeros.
	const posWeight = 4.0
	const eps = 1e-9
	var loss float64
	in := make([]float64, 2)
	dout := make([]float64, 1)
	for j := 0; j < ae.Cfg.KeyBits; j++ {
		in[0], in[1] = absBP[j], kHat
		p := ae.dec.Forward(in)[0]
		if p < eps {
			p = eps
		}
		if p > 1-eps {
			p = 1 - eps
		}
		if ka[j] != kb[j] {
			loss += -posWeight * math.Log(p)
			dout[0] = -posWeight / p
		} else {
			loss += -math.Log(1 - p)
			dout[0] = 1 / (1 - p)
		}
		dout[0] /= float64(ae.Cfg.KeyBits)
		ae.dec.Backward(dout)
	}
	return loss / float64(ae.Cfg.KeyBits)
}

// Reconcile runs the full protocol for one key pair (both ends simulated
// locally) and reports the outcome. salt keys the session's Bloom filter.
func (ae *AE) Reconcile(keyAlice, keyBob, salt []byte) (Outcome, error) {
	if len(keyAlice) != ae.Cfg.KeyBits || len(keyBob) != ae.Cfg.KeyBits {
		return Outcome{}, errors.New("reconcile: key length mismatch")
	}
	// The fast path serves repeated session salts from the package
	// cache; the filter is pure in (n, salt), so the keys are unchanged.
	var bf *BloomFilter
	if ae.Cfg.Reference {
		bf = NewBloomFilter(ae.Cfg.KeyBits, salt)
	} else {
		bf = BloomFor(ae.Cfg.KeyBits, salt)
	}
	bkA := bf.Transform(keyAlice)
	bkB := bf.Transform(keyBob)

	ops := newOpCounter()
	yBob := ae.EncodeBob(bkB)
	ops.add(ae.Cfg.KeyBits * ae.Cfg.CodeDim) // Bob: one encoder pass
	corrected := ae.Correct(bkA, yBob)
	// Alice: encoder, one backprojection per round, a full scoring pass in
	// round 0 plus candidate-only rescoring after (≈ 0.8·N in total).
	n, m, u := ae.Cfg.KeyBits, ae.Cfg.CodeDim, ae.Cfg.DecoderUnits
	perPos := 2*u + u*u + u
	ops.add(n*m + decodeRounds*m*n + (n+4*n/5)*perPos)

	return Outcome{
		AliceKey:      bf.Inverse(corrected),
		BobKey:        keyBob,
		Messages:      1,
		SyndromeBits:  m * 64, // float64 code vector
		ComputeOps:    ops.total,
		LeakedKeyBits: m,
		Method:        "autoencoder",
	}, nil
}
