package reconcile

// Outcome reports one reconciliation run, including the cost accounting
// used to reproduce the paper's Fig. 11 computation-cost comparison.
type Outcome struct {
	AliceKey []byte // Alice's key after correction
	BobKey   []byte // Bob's (reference) key

	Messages      int    // protocol messages exchanged
	SyndromeBits  int    // public bits transmitted
	ComputeOps    int    // abstract multiply-accumulate count
	LeakedKeyBits int    // upper bound on key bits revealed publicly
	Method        string // which reconciler produced this outcome
}

// Agreement returns the post-reconciliation bit agreement rate.
func (o Outcome) Agreement() float64 {
	if len(o.AliceKey) == 0 || len(o.AliceKey) != len(o.BobKey) {
		return 0
	}
	same := 0
	for i := range o.AliceKey {
		if o.AliceKey[i] == o.BobKey[i] {
			same++
		}
	}
	return float64(same) / float64(len(o.AliceKey))
}

// Exact reports whether the two keys agree on every bit.
func (o Outcome) Exact() bool { return o.Agreement() == 1 }

// opCounter tallies abstract compute operations.
type opCounter struct{ total int }

func newOpCounter() *opCounter { return &opCounter{} }
func (c *opCounter) add(n int) { c.total += n }
