package reconcile

import (
	"errors"

	"repro/internal/rng"
)

// CascadeConfig parameterizes the Brassard–Salvail Cascade reconciler, the
// method the Han et al. baseline uses (group length k = 3, 4 iterations in
// the paper's comparison).
type CascadeConfig struct {
	// InitialBlock is the pass-1 block size k; subsequent passes double it.
	InitialBlock int
	// Passes is the number of Cascade passes.
	Passes int
}

// DefaultCascadeConfig matches the paper's Han et al. setup.
func DefaultCascadeConfig() CascadeConfig { return CascadeConfig{InitialBlock: 3, Passes: 4} }

// Cascade reconciles Alice's key against Bob's with the interactive
// Cascade protocol, simulating both ends locally and accounting for every
// parity bit that would cross the public channel. Alice's bits are
// corrected in place on a copy; Bob's key is never modified.
func Cascade(keyAlice, keyBob []byte, cfg CascadeConfig, src *rng.Source) (Outcome, error) {
	if len(keyAlice) != len(keyBob) {
		return Outcome{}, errors.New("reconcile: key length mismatch")
	}
	if cfg.InitialBlock <= 0 {
		cfg.InitialBlock = 3
	}
	if cfg.Passes <= 0 {
		cfg.Passes = 4
	}
	n := len(keyAlice)
	alice := make([]byte, n)
	copy(alice, keyAlice)

	ops := newOpCounter()
	out := Outcome{BobKey: keyBob, Method: "cascade"}

	block := cfg.InitialBlock
	for pass := 0; pass < cfg.Passes; pass++ {
		perm := src.Perm(n)
		for lo := 0; lo < n; lo += block {
			hi := lo + block
			if hi > n {
				hi = n
			}
			idx := perm[lo:hi]
			// One parity announcement each way per block.
			out.Messages += 2
			out.SyndromeBits += 2
			out.LeakedKeyBits++
			ops.add(len(idx) * 2)
			if parity(alice, idx) != parity(keyBob, idx) {
				fixOneError(alice, keyBob, idx, &out, ops)
			}
		}
		block *= 2
	}
	out.AliceKey = alice
	out.ComputeOps = ops.total
	return out, nil
}

// fixOneError binary-searches the block for one mismatched bit, counting
// the interactive parity exchanges, and flips it on Alice's side.
func fixOneError(alice, bob []byte, idx []int, out *Outcome, ops *opCounter) {
	lo, hi := 0, len(idx)
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		out.Messages += 2
		out.SyndromeBits += 2
		out.LeakedKeyBits++
		ops.add((mid - lo) * 2)
		if parity(alice, idx[lo:mid]) != parity(bob, idx[lo:mid]) {
			hi = mid
		} else {
			lo = mid
		}
	}
	alice[idx[lo]] ^= 1
}

func parity(bits []byte, idx []int) byte {
	var p byte
	for _, i := range idx {
		p ^= bits[i]
	}
	return p
}
