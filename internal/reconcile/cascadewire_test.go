package reconcile

import (
	"testing"

	"repro/internal/rng"
)

// wireEquations rebuilds, exactly as a passive eavesdropper can, the
// GF(2) linear system the published cascade syndrome imposes on an
// n-bit block: one row per parity, bit j set iff position j is in that
// parity's block.
func wireEquations(n int, salt []byte, cfg CascadeConfig) [][]byte {
	var rows [][]byte
	block := cfg.InitialBlock
	for pass := 0; pass < cfg.Passes; pass++ {
		perm := cascadePerm(salt, pass, n)
		for lo := 0; lo < n; lo += block {
			hi := lo + block
			if hi > n {
				hi = n
			}
			row := make([]byte, n)
			for _, j := range perm[lo:hi] {
				row[j] = 1
			}
			rows = append(rows, row)
		}
		block *= 2
	}
	return rows
}

// gf2Rank computes the rank of a 0/1 matrix by Gaussian elimination.
func gf2Rank(rows [][]byte) int {
	rank := 0
	if len(rows) == 0 {
		return 0
	}
	n := len(rows[0])
	for col := 0; col < n && rank < len(rows); col++ {
		pivot := -1
		for r := rank; r < len(rows); r++ {
			if rows[r][col] == 1 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		rows[rank], rows[pivot] = rows[pivot], rows[rank]
		for r := 0; r < len(rows); r++ {
			if r != rank && rows[r][col] == 1 {
				for c := 0; c < n; c++ {
					rows[r][c] ^= rows[rank][c]
				}
			}
		}
		rank++
	}
	return rank
}

// TestCascadeWireDoesNotDetermineKey is the eavesdropper regression:
// the public code must be strictly rank-deficient, so no passive
// observer can solve it for the block. (The previous wire form
// published the full bisection parity tree — n independent equations —
// which reconstructed every key bit.)
func TestCascadeWireDoesNotDetermineKey(t *testing.T) {
	cfg := DefaultCascadeConfig()
	const n = 64
	for _, salt := range [][]byte{[]byte("session-a"), []byte("session-b"), {0}} {
		key := rng.New(int64(len(salt))).Bits(n)
		code := CascadeSyndromeEncode(key, salt, cfg)
		want := CascadeSyndromeBits(n, cfg)
		if len(code) != want {
			t.Fatalf("published %d parities, CascadeSyndromeBits says %d", len(code), want)
		}
		if want >= n {
			t.Fatalf("wire syndrome publishes %d parities over %d bits: leaks the key", want, n)
		}
		rank := gf2Rank(wireEquations(n, salt, cfg))
		if rank >= n {
			t.Fatalf("public equations have rank %d over %d bits: an eavesdropper can solve for the block", rank, n)
		}
		t.Logf("salt %q: %d parities, GF(2) rank %d/%d (≥ 2^%d keys consistent)", salt, want, rank, n, n-rank)
	}
}

// TestCascadeWireCorrectsSparseMismatch pins the decoder's envelope:
// the majority vote must repair small mismatch counts exactly, the
// regime the protocol's retransmitted windows actually present.
func TestCascadeWireCorrectsSparseMismatch(t *testing.T) {
	cfg := DefaultCascadeConfig()
	salt := []byte("wire-session")
	for _, flips := range []int{0, 1, 2, 3} {
		exact := 0
		const trials = 50
		for i := 0; i < trials; i++ {
			src := rng.New(int64(1000*flips + i))
			kb := src.Bits(64)
			ka := flipBits(kb, flips, src)
			code := CascadeSyndromeEncode(kb, salt, cfg)
			got, err := CascadeSyndromeCorrect(ka, code, salt, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) == string(kb) {
				exact++
			}
		}
		t.Logf("%d flips: %d/%d blocks corrected exactly", flips, exact, trials)
		min := trials * 9 / 10
		if flips <= 1 {
			min = trials // 0/1 errors must always be repaired
		}
		if exact < min {
			t.Errorf("%d flips: only %d/%d exact (want ≥ %d)", flips, exact, trials, min)
		}
	}
}

// TestCascadeWireResidualIsHonest: dense mismatch may survive the
// one-shot decode, but the output must stay a valid bit vector of the
// right length — the MAC confirmation handles the rejection.
func TestCascadeWireResidualIsHonest(t *testing.T) {
	cfg := DefaultCascadeConfig()
	salt := []byte("dense")
	src := rng.New(9)
	kb := src.Bits(64)
	ka := flipBits(kb, 20, src)
	code := CascadeSyndromeEncode(kb, salt, cfg)
	got, err := CascadeSyndromeCorrect(ka, code, salt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(kb) {
		t.Fatalf("corrected length %d, want %d", len(got), len(kb))
	}
	for i, b := range got {
		if b != 0 && b != 1 {
			t.Fatalf("non-bit value %d at %d", b, i)
		}
	}
}

// TestCascadeWireRejectsMalformedCodes: truncated, overlong, or
// non-bit code vectors must error, never panic.
func TestCascadeWireRejectsMalformedCodes(t *testing.T) {
	cfg := DefaultCascadeConfig()
	salt := []byte("s")
	key := rng.New(3).Bits(64)
	code := CascadeSyndromeEncode(key, salt, cfg)

	if _, err := CascadeSyndromeCorrect(key, code[:len(code)-1], salt, cfg); err == nil {
		t.Error("truncated code accepted")
	}
	if _, err := CascadeSyndromeCorrect(key, append(append([]float64(nil), code...), 0), salt, cfg); err == nil {
		t.Error("overlong code accepted")
	}
	bad := append([]float64(nil), code...)
	bad[0] = 0.5
	if _, err := CascadeSyndromeCorrect(key, bad, salt, cfg); err == nil {
		t.Error("non-bit code accepted")
	}
}
