package reconcile

import "testing"

// FuzzBloomFilter checks round-trip and mismatch preservation on
// arbitrary keys and salts.
func FuzzBloomFilter(f *testing.F) {
	f.Add([]byte{1, 0, 1, 1}, []byte("salt"))
	f.Fuzz(func(t *testing.T, rawKey, salt []byte) {
		if len(rawKey) == 0 || len(rawKey) > 512 {
			return
		}
		key := make([]byte, len(rawKey))
		for i, b := range rawKey {
			key[i] = b & 1
		}
		bf := NewBloomFilter(len(key), salt)
		tr := bf.Transform(key)
		back := bf.Inverse(tr)
		for i := range key {
			if back[i] != key[i] {
				t.Fatalf("round trip failed at %d", i)
			}
		}
	})
}

// FuzzCS checks the OMP reconciler never panics and always returns a
// key of the right length.
func FuzzCS(f *testing.F) {
	f.Add([]byte{1, 0, 1, 0, 1, 1, 0, 0}, []byte{1, 0, 1, 1, 1, 1, 0, 0})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		n := len(rawA)
		if len(rawB) < n {
			n = len(rawB)
		}
		if n < 8 || n > 128 {
			return
		}
		ka := make([]byte, n)
		kb := make([]byte, n)
		for i := 0; i < n; i++ {
			ka[i] = rawA[i] & 1
			kb[i] = rawB[i] & 1
		}
		out, err := CS(ka, kb, DefaultCSConfig())
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if len(out.AliceKey) != n {
			t.Fatalf("key length %d, want %d", len(out.AliceKey), n)
		}
	})
}
