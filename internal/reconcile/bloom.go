// Package reconcile corrects the residual bit mismatches between Alice's
// and Bob's quantized keys. It implements the paper's autoencoder-based
// reconciler (Sec. IV-C) and the two baselines it is compared against:
// Cascade (Brassard–Salvail, used by Han et al.) and compressed-sensing
// reconciliation (used by LoRa-Key and Gao et al.).
package reconcile

import (
	"crypto/sha256"
	"encoding/binary"
)

// BloomFilter is the paper's "adapted Bloom filter" (after InaudibleKey):
// a keyed, position-preserving transform applied to both keys before they
// enter the autoencoder, so that an attacker who knows the trained decoder
// cannot reverse-engineer key material from an intercepted code vector.
//
// The transform is a salt-keyed bit permutation followed by a salt-keyed
// XOR pad. Both operations are bijective and applied identically on both
// sides, so the number AND positions of mismatched bits are preserved
// exactly — the property the reconciler depends on ("its output can
// retain the same number of mismatched bits as the input key").
type BloomFilter struct {
	n    int
	perm []int  // output position of each input bit
	inv  []int  // inverse permutation
	pad  []byte // keyed 0/1 pad
}

// NewBloomFilter builds the transform for n-bit keys from a public salt.
// The salt is not secret: it is negotiated per session so that observed
// syndromes cannot be replayed across sessions.
func NewBloomFilter(n int, salt []byte) *BloomFilter {
	bf := &BloomFilter{
		n:    n,
		perm: make([]int, n),
		inv:  make([]int, n),
		pad:  make([]byte, n),
	}
	// Fisher–Yates keyed by a SHA-256 stream over the salt.
	stream := newHashStream(salt)
	for i := range bf.perm {
		bf.perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(stream.next() % uint64(i+1))
		bf.perm[i], bf.perm[j] = bf.perm[j], bf.perm[i]
	}
	for i, p := range bf.perm {
		bf.inv[p] = i
	}
	for i := range bf.pad {
		bf.pad[i] = byte(stream.next() & 1)
	}
	return bf
}

// Transform maps a key into the Bloom-filtered domain.
func (bf *BloomFilter) Transform(bits []byte) []byte {
	out := make([]byte, bf.n)
	for i := 0; i < bf.n && i < len(bits); i++ {
		out[bf.perm[i]] = bits[i] ^ bf.pad[bf.perm[i]]
	}
	return out
}

// Inverse maps a Bloom-filtered key back to the original domain.
func (bf *BloomFilter) Inverse(bits []byte) []byte {
	out := make([]byte, bf.n)
	for i := 0; i < bf.n && i < len(bits); i++ {
		out[i] = bits[bf.perm[i]] ^ bf.pad[bf.perm[i]]
	}
	return out
}

// hashStream yields a deterministic stream of uint64s from a salt via
// chained SHA-256, enough entropy for the keyed permutation and pad.
type hashStream struct {
	state [32]byte
	buf   [32]byte
	off   int
}

func newHashStream(salt []byte) *hashStream {
	s := &hashStream{state: sha256.Sum256(salt)}
	s.buf = sha256.Sum256(s.state[:])
	return s
}

func (s *hashStream) next() uint64 {
	if s.off+8 > len(s.buf) {
		s.state = sha256.Sum256(s.state[:])
		s.buf = sha256.Sum256(s.state[:])
		s.off = 0
	}
	v := binary.BigEndian.Uint64(s.buf[s.off:])
	s.off += 8
	return v
}
