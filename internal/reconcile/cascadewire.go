package reconcile

import (
	"errors"
	"hash/fnv"

	"repro/internal/rng"
)

// This file is the one-shot wire form of Cascade. The interactive
// protocol (Cascade in cascade.go) alternates parity queries with
// binary-search replies; over a lossy half-duplex LoRa link that
// chattiness is exactly what the paper's baselines suffer from. For the
// unified protocol path Bob instead publishes, per pass and block, the
// parity of the block and of every left child in its bisection tree —
// the complete set of answers the interactive search could ever request
// (a right half's parity is the node parity XOR the left half's, so
// only left children are sent). Alice then replays Cascade's correction
// locally against that table. Pass permutations are derived from the
// public session salt, so both sides compute identical block layouts
// without interaction. The published parities leak ~n bits per pass,
// the honest upper bound the interactive protocol also pays in the
// worst case.

// cascadePerm derives pass p's shuffle of n positions from the salt.
func cascadePerm(salt []byte, pass, n int) []int {
	h := fnv.New64a()
	h.Write(salt)
	seed := int64(h.Sum64() & 0x7fffffffffffffff)
	return rng.New(rng.SubSeed(seed, "cascade-pass", pass)).Perm(n)
}

// forEachCascadeNode enumerates one block's parity announcements in
// canonical order — the whole block first, then the left child of every
// internal bisection node, pre-order — as (lo, hi) spans over the
// block's index slice. Both wire halves walk this exact order.
func forEachCascadeNode(n int, emit func(lo, hi int) error) error {
	if err := emit(0, n); err != nil {
		return err
	}
	var walk func(lo, hi int) error
	walk = func(lo, hi int) error {
		if hi-lo <= 1 {
			return nil
		}
		mid := (lo + hi) / 2
		if err := emit(lo, mid); err != nil {
			return err
		}
		if err := walk(lo, mid); err != nil {
			return err
		}
		return walk(mid, hi)
	}
	return walk(0, n)
}

// CascadeSyndromeEncode is Bob's half: every parity Alice's replayed
// binary search could query, flattened into one code vector.
func CascadeSyndromeEncode(keyBob, salt []byte, cfg CascadeConfig) []float64 {
	if cfg.InitialBlock <= 0 {
		cfg.InitialBlock = 3
	}
	if cfg.Passes <= 0 {
		cfg.Passes = 4
	}
	n := len(keyBob)
	var code []float64
	block := cfg.InitialBlock
	for pass := 0; pass < cfg.Passes; pass++ {
		perm := cascadePerm(salt, pass, n)
		for lo := 0; lo < n; lo += block {
			hi := lo + block
			if hi > n {
				hi = n
			}
			idx := perm[lo:hi]
			_ = forEachCascadeNode(len(idx), func(a, b int) error {
				code = append(code, float64(parity(keyBob, idx[a:b])))
				return nil
			})
		}
		block *= 2
	}
	return code
}

// CascadeSyndromeCorrect is Alice's half: Cascade's per-pass correction
// replayed against Bob's published parity table. Malformed codes (wrong
// length, non-bit values) are rejected with an error, never a panic.
func CascadeSyndromeCorrect(keyAlice []byte, code []float64, salt []byte, cfg CascadeConfig) ([]byte, error) {
	if cfg.InitialBlock <= 0 {
		cfg.InitialBlock = 3
	}
	if cfg.Passes <= 0 {
		cfg.Passes = 4
	}
	n := len(keyAlice)
	alice := make([]byte, n)
	copy(alice, keyAlice)

	pos := 0
	next := func() (byte, error) {
		if pos >= len(code) {
			return 0, errors.New("reconcile: cascade syndrome truncated")
		}
		v := code[pos]
		pos++
		if v != 0 && v != 1 {
			return 0, errors.New("reconcile: cascade syndrome is not a bit vector")
		}
		return byte(v), nil
	}

	block := cfg.InitialBlock
	for pass := 0; pass < cfg.Passes; pass++ {
		perm := cascadePerm(salt, pass, n)
		for lo := 0; lo < n; lo += block {
			hi := lo + block
			if hi > n {
				hi = n
			}
			idx := perm[lo:hi]
			// Consume this block's parities in canonical order: the root
			// first, then the left-child parities keyed by their span.
			var root byte
			left := make(map[[2]int]byte)
			first := true
			err := forEachCascadeNode(len(idx), func(a, b int) error {
				p, err := next()
				if err != nil {
					return err
				}
				if first {
					root, first = p, false
				} else {
					left[[2]int{a, b}] = p
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			if parity(alice, idx) != root {
				lo2, hi2 := 0, len(idx)
				for hi2-lo2 > 1 {
					mid := (lo2 + hi2) / 2
					if parity(alice, idx[lo2:mid]) != left[[2]int{lo2, mid}] {
						hi2 = mid
					} else {
						lo2 = mid
					}
				}
				alice[idx[lo2]] ^= 1
			}
		}
		block *= 2
	}
	if pos != len(code) {
		return nil, errors.New("reconcile: cascade syndrome length mismatch")
	}
	return alice, nil
}
