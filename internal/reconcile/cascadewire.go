package reconcile

import (
	"errors"
	"hash/fnv"

	"repro/internal/rng"
)

// This file is the one-shot wire form of Cascade. The interactive
// protocol (Cascade in cascade.go) alternates parity queries with
// binary-search replies; over a lossy half-duplex LoRa link that
// chattiness is exactly what the paper's baselines suffer from. For the
// unified protocol path Bob instead publishes, per pass, only the
// top-level parity of each block. Pass permutations are derived from
// the public session salt, so both sides compute identical block
// layouts without interaction; Alice decodes her mismatches against
// the published parities with an iterative majority-vote bit flip
// (each bit sits in one block per pass, so the per-pass parity
// mismatches of its blocks vote on whether it is in error).
//
// Publishing any more than the top-level parities is unsafe in a
// one-shot exchange: the full bisection tree the interactive search
// could query linearly determines every key bit, handing a passive
// eavesdropper the whole block. The price of staying safe is residual
// mismatch — unlike interactive Cascade, the one-shot decode cannot
// query further parities, so dense error patterns may survive and are
// caught by the protocol's MAC confirmation instead. Every published
// parity is one linear equation over the key bits; callers must treat
// CascadeSyndromeBits as publicly leaked key bits and refuse
// configurations where it reaches the block size.

// CascadeSyndromeBits returns how many parity bits the one-shot wire
// form publishes for an n-bit block — one per top-level Cascade block
// per pass. Each is a linear equation over the key bits, so this is
// exactly the eavesdropper leakage of CascadeSyndromeEncode.
func CascadeSyndromeBits(n int, cfg CascadeConfig) int {
	if cfg.InitialBlock <= 0 {
		cfg.InitialBlock = 3
	}
	if cfg.Passes <= 0 {
		cfg.Passes = 4
	}
	total := 0
	block := cfg.InitialBlock
	for pass := 0; pass < cfg.Passes; pass++ {
		total += (n + block - 1) / block
		block *= 2
	}
	return total
}

// cascadePerm derives pass p's shuffle of n positions from the salt.
func cascadePerm(salt []byte, pass, n int) []int {
	h := fnv.New64a()
	h.Write(salt)
	seed := int64(h.Sum64() & 0x7fffffffffffffff)
	return rng.New(rng.SubSeed(seed, "cascade-pass", pass)).Perm(n)
}

// CascadeSyndromeEncode is Bob's half: the top-level parity of every
// Cascade block in every pass, flattened into one code vector of
// CascadeSyndromeBits(len(keyBob), cfg) bits.
func CascadeSyndromeEncode(keyBob, salt []byte, cfg CascadeConfig) []float64 {
	if cfg.InitialBlock <= 0 {
		cfg.InitialBlock = 3
	}
	if cfg.Passes <= 0 {
		cfg.Passes = 4
	}
	n := len(keyBob)
	var code []float64
	block := cfg.InitialBlock
	for pass := 0; pass < cfg.Passes; pass++ {
		perm := cascadePermCached(salt, pass, n)
		for lo := 0; lo < n; lo += block {
			hi := lo + block
			if hi > n {
				hi = n
			}
			code = append(code, float64(parity(keyBob, perm[lo:hi])))
		}
		block *= 2
	}
	return code
}

// CascadeSyndromeCorrect is Alice's half: an iterative majority-vote
// decode of her block against Bob's published per-pass block parities.
// A bit whose containing block mismatches in a strict majority of
// passes is flipped (ties broken toward the lowest index); each such
// flip strictly shrinks the number of mismatched blocks, so the loop
// terminates. Residual mismatch the vote cannot localize is left in
// place for the protocol's MAC confirmation to reject. Malformed codes
// (wrong length, non-bit values) are rejected with an error, never a
// panic.
func CascadeSyndromeCorrect(keyAlice []byte, code []float64, salt []byte, cfg CascadeConfig) ([]byte, error) {
	if cfg.InitialBlock <= 0 {
		cfg.InitialBlock = 3
	}
	if cfg.Passes <= 0 {
		cfg.Passes = 4
	}
	n := len(keyAlice)
	if len(code) != CascadeSyndromeBits(n, cfg) {
		return nil, errors.New("reconcile: cascade syndrome length mismatch")
	}
	alice := make([]byte, n)
	copy(alice, keyAlice)

	// Lay out every pass once: which block each bit falls in, the block
	// member lists, and whether each block's parity currently mismatches
	// Bob's published one.
	blockOf := make([][]int, cfg.Passes)   // pass -> bit -> block index
	members := make([][][]int, cfg.Passes) // pass -> block -> member bits
	mismatch := make([][]bool, cfg.Passes) // pass -> block -> parity differs
	pos := 0
	block := cfg.InitialBlock
	for pass := 0; pass < cfg.Passes; pass++ {
		perm := cascadePermCached(salt, pass, n)
		blockOf[pass] = make([]int, n)
		for lo := 0; lo < n; lo += block {
			hi := lo + block
			if hi > n {
				hi = n
			}
			idx := perm[lo:hi]
			v := code[pos]
			pos++
			if v != 0 && v != 1 {
				return nil, errors.New("reconcile: cascade syndrome is not a bit vector")
			}
			b := len(mismatch[pass])
			for _, i := range idx {
				blockOf[pass][i] = b
			}
			members[pass] = append(members[pass], idx)
			mismatch[pass] = append(mismatch[pass], parity(alice, idx) != byte(v))
		}
		block *= 2
	}

	flip := func(i int) {
		alice[i] ^= 1
		for pass := 0; pass < cfg.Passes; pass++ {
			b := blockOf[pass][i]
			mismatch[pass][b] = !mismatch[pass][b]
		}
	}

	// Phase 0: exhaustive residual search. If every error sits in its
	// own mismatched pass-0 block — by far the common pattern, pass-0
	// blocks being the smallest — the error set is one choice of a
	// single bit per mismatched block, and the remaining passes'
	// parities check each choice. Enumerate the (bounded) product of
	// choices in lexicographic order and apply the first fully
	// consistent one; an aliased or unrepresentable pattern falls
	// through to the vote phases and ultimately to the MAC.
	exhaustive := func() bool {
		var blocks [][]int
		for b, mm := range mismatch[0] {
			if mm {
				blocks = append(blocks, members[0][b])
			}
		}
		m := len(blocks)
		if m == 0 {
			return false
		}
		combos := 1
		for _, blk := range blocks {
			if combos *= len(blk); combos > 1<<14 {
				return false
			}
		}
		choice := make([]int, m)
		cand := make([]int, m)
		odd := make(map[int]bool, m)
		for {
			for k, c := range choice {
				cand[k] = blocks[k][c]
			}
			ok := true
			for pass := 1; pass < cfg.Passes && ok; pass++ {
				for _, i := range cand {
					b := blockOf[pass][i]
					odd[b] = !odd[b]
				}
				for b, mm := range mismatch[pass] {
					if mm != odd[b] {
						ok = false
						break
					}
				}
				for b := range odd {
					delete(odd, b)
				}
			}
			if ok {
				for _, i := range cand {
					flip(i)
				}
				return true
			}
			k := m - 1
			for ; k >= 0; k-- {
				choice[k]++
				if choice[k] < len(blocks[k]) {
					break
				}
				choice[k] = 0
			}
			if k < 0 {
				return false
			}
		}
	}

	// Phase 1: majority-vote bit flipping. A flip is only accepted when
	// more than half of the bit's containing blocks mismatch, which
	// lowers the total mismatched-block count every iteration; the count
	// bounds the loop, the cap is belt and braces.
	majority := func() {
		need := cfg.Passes/2 + 1
		for iter := 0; iter < n*cfg.Passes; iter++ {
			best, bestScore := -1, need-1
			for i := 0; i < n; i++ {
				score := 0
				for pass := 0; pass < cfg.Passes; pass++ {
					if mismatch[pass][blockOf[pass][i]] {
						score++
					}
				}
				if score > bestScore {
					best, bestScore = i, score
				}
			}
			if best < 0 {
				return
			}
			flip(best)
		}
	}

	// pairGain is the drop in mismatched-block count from flipping both
	// i and j: a pass where they share a block is untouched (two flips
	// cancel in the parity), elsewhere each toggles its own block.
	pairGain := func(i, j int) int {
		gain := 0
		for pass := 0; pass < cfg.Passes; pass++ {
			bi, bj := blockOf[pass][i], blockOf[pass][j]
			if bi == bj {
				continue
			}
			for _, b := range [2]int{bi, bj} {
				if mismatch[pass][b] {
					gain++
				} else {
					gain--
				}
			}
		}
		return gain
	}

	// Phase 2: pair search. The majority vote stalls when two errors
	// share blocks in half the passes (their colliding blocks stay
	// clean, so each bit's vote drops to a tie); the true pair then
	// clears its remaining mismatched blocks, so pick the pair with the
	// largest strictly positive gain and re-run the vote. Every accepted
	// flip lowers the mismatched-block count, which bounds the outer
	// loop. Whatever no phase can localize is left in place for the
	// protocol's MAC confirmation to reject.
	if !exhaustive() {
		for {
			majority()
			best, bestGain := [2]int{-1, -1}, 0
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if g := pairGain(i, j); g > bestGain {
						best, bestGain = [2]int{i, j}, g
					}
				}
			}
			if bestGain <= 0 {
				break
			}
			flip(best[0])
			flip(best[1])
		}
	}
	return alice, nil
}
