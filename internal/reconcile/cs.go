package reconcile

import (
	"errors"
	"math"

	"repro/internal/rng"
)

// CSConfig parameterizes the compressed-sensing reconciler used by the
// LoRa-Key and Gao et al. baselines (the paper fixes the random matrix at
// 20×64 for both).
type CSConfig struct {
	// Rows is M, the syndrome dimension.
	Rows int
	// MaxSparsity bounds the number of mismatches the decoder will try to
	// recover; 0 derives it from Rows/2 (a standard CS operating point).
	MaxSparsity int
	// MatrixSeed seeds the shared sensing matrix; both parties derive the
	// same Φ from it publicly.
	MatrixSeed int64
	// ISTAIterations is the iteration budget of the ℓ1 decoder (CSISTA);
	// 0 means 200, a typical basis-pursuit operating point.
	ISTAIterations int
}

// DefaultCSConfig matches the paper's comparison setup for 64-bit keys.
func DefaultCSConfig() CSConfig { return CSConfig{Rows: 20, MatrixSeed: 99} }

// CS reconciles Alice's key against Bob's with syndrome-based compressed
// sensing: Bob transmits y = Φ·k_B, Alice computes Φ·k_A − y = Φ·e for the
// sparse mismatch vector e and recovers e with orthogonal matching
// pursuit. OMP's iterative least-squares decode is what makes this method
// roughly an order of magnitude more expensive than the autoencoder's
// single forward pass (Fig. 11).
func CS(keyAlice, keyBob []byte, cfg CSConfig) (Outcome, error) {
	if len(keyAlice) != len(keyBob) {
		return Outcome{}, errors.New("reconcile: key length mismatch")
	}
	n := len(keyAlice)
	if cfg.Rows <= 0 {
		cfg.Rows = 20
	}
	if cfg.MaxSparsity <= 0 {
		cfg.MaxSparsity = cfg.Rows / 2
	}
	m := cfg.Rows
	phi := sensingMatrixCached(m, n, cfg.MatrixSeed)
	ops := newOpCounter()

	// Bob's syndrome and Alice's local projection.
	yB := matVecBits(phi, keyBob, m, n)
	yA := matVecBits(phi, keyAlice, m, n)
	ops.add(2 * m * n)
	resid := make([]float64, m)
	for i := range resid {
		resid[i] = yA[i] - yB[i] // Φ·e, e ∈ {−1,0,+1}
	}

	support, coef := omp(phi, resid, m, n, cfg.MaxSparsity, ops)

	alice := make([]byte, n)
	copy(alice, keyAlice)
	for k, j := range support {
		// e_j ≈ ±1 means Alice's bit j differs from Bob's.
		if math.Abs(coef[k]) > 0.5 {
			alice[j] ^= 1
		}
	}
	return Outcome{
		AliceKey:      alice,
		BobKey:        keyBob,
		Messages:      1,
		SyndromeBits:  m * 64,
		ComputeOps:    ops.total,
		LeakedKeyBits: m,
		Method:        "cs-omp",
	}, nil
}

// CSISTA reconciles like CS but decodes the sparse mismatch vector with
// iterative soft-thresholding (ISTA), the ℓ1-minimization decode that
// LoRa-Key's CS reconciliation performs. Its hundreds of full
// matrix-vector iterations are the computation cost the paper's Fig. 11
// reports the autoencoder cutting by roughly an order of magnitude.
func CSISTA(keyAlice, keyBob []byte, cfg CSConfig) (Outcome, error) {
	if len(keyAlice) != len(keyBob) {
		return Outcome{}, errors.New("reconcile: key length mismatch")
	}
	n := len(keyAlice)
	if cfg.Rows <= 0 {
		cfg.Rows = 20
	}
	iters := cfg.ISTAIterations
	if iters <= 0 {
		iters = 200
	}
	m := cfg.Rows
	phi := sensingMatrixCached(m, n, cfg.MatrixSeed)
	ops := newOpCounter()

	yB := matVecBits(phi, keyBob, m, n)
	yA := matVecBits(phi, keyAlice, m, n)
	ops.add(2 * m * n)
	b := make([]float64, m)
	for i := range b {
		b[i] = yA[i] - yB[i]
	}

	// ISTA: x ← shrink(x + (1/L)·Φᵀ(b − Φx), λ/L). The Lipschitz constant
	// of ΦᵀΦ for a ±1/√M Bernoulli matrix is ≈ N/M; step 1/L.
	x := make([]float64, n)
	l := float64(n) / float64(m)
	step := 1 / l
	lambda := 0.2
	resid := make([]float64, m)
	grad := make([]float64, n)
	for it := 0; it < iters; it++ {
		for r := 0; r < m; r++ {
			s := b[r]
			row := phi[r*n : (r+1)*n]
			for c := 0; c < n; c++ {
				s -= row[c] * x[c]
			}
			resid[r] = s
		}
		for c := 0; c < n; c++ {
			var s float64
			for r := 0; r < m; r++ {
				s += phi[r*n+c] * resid[r]
			}
			grad[c] = s
		}
		ops.add(2 * m * n)
		for c := 0; c < n; c++ {
			v := x[c] + step*grad[c]
			// Soft threshold.
			switch {
			case v > lambda*step:
				v -= lambda * step
			case v < -lambda*step:
				v += lambda * step
			default:
				v = 0
			}
			x[c] = v
		}
		ops.add(n)
	}

	alice := make([]byte, n)
	copy(alice, keyAlice)
	for c := 0; c < n; c++ {
		if math.Abs(x[c]) > 0.5 {
			alice[c] ^= 1
		}
	}
	return Outcome{
		AliceKey:      alice,
		BobKey:        keyBob,
		Messages:      1,
		SyndromeBits:  m * 64,
		ComputeOps:    ops.total,
		LeakedKeyBits: m,
		Method:        "cs-ista",
	}, nil
}

// sensingMatrix derives the shared ±1/√M Bernoulli matrix from the seed.
func sensingMatrix(m, n int, seed int64) []float64 {
	src := rng.New(seed)
	phi := make([]float64, m*n)
	scale := 1 / math.Sqrt(float64(m))
	for i := range phi {
		if src.Bernoulli(0.5) {
			phi[i] = scale
		} else {
			phi[i] = -scale
		}
	}
	return phi
}

func matVecBits(phi []float64, bits []byte, m, n int) []float64 {
	out := make([]float64, m)
	for r := 0; r < m; r++ {
		row := phi[r*n : (r+1)*n]
		var s float64
		for c, b := range bits {
			if b == 1 {
				s += row[c]
			}
		}
		out[r] = s
	}
	return out
}

// omp runs orthogonal matching pursuit on residual b over the columns of
// phi, returning the chosen support and least-squares coefficients.
func omp(phi, b []float64, m, n, maxS int, ops *opCounter) (support []int, coef []float64) {
	resid := make([]float64, m)
	copy(resid, b)
	chosen := make(map[int]bool, maxS)

	norm := func(v []float64) float64 {
		var s float64
		for _, x := range v {
			s += x * x
		}
		return math.Sqrt(s)
	}
	if norm(resid) < 1e-9 {
		return nil, nil
	}

	for iter := 0; iter < maxS; iter++ {
		// Column most correlated with the residual.
		best, bestAbs := -1, 0.0
		for j := 0; j < n; j++ {
			if chosen[j] {
				continue
			}
			var dot float64
			for r := 0; r < m; r++ {
				dot += phi[r*n+j] * resid[r]
			}
			ops.add(m)
			if a := math.Abs(dot); a > bestAbs {
				bestAbs, best = a, j
			}
		}
		if best < 0 || bestAbs < 1e-9 {
			break
		}
		chosen[best] = true
		support = append(support, best)

		// Least squares on the support: solve (AᵀA)x = Aᵀb.
		k := len(support)
		ata := make([]float64, k*k)
		atb := make([]float64, k)
		for a := 0; a < k; a++ {
			for bcol := 0; bcol < k; bcol++ {
				var s float64
				for r := 0; r < m; r++ {
					s += phi[r*n+support[a]] * phi[r*n+support[bcol]]
				}
				ata[a*k+bcol] = s
			}
			var s float64
			for r := 0; r < m; r++ {
				s += phi[r*n+support[a]] * b[r]
			}
			atb[a] = s
		}
		ops.add(k*k*m + k*m)
		coef = solve(ata, atb, k)
		ops.add(k * k * k)

		// Update residual r = b − A·x.
		for r := 0; r < m; r++ {
			s := b[r]
			for a := 0; a < k; a++ {
				s -= phi[r*n+support[a]] * coef[a]
			}
			resid[r] = s
		}
		ops.add(k * m)
		if norm(resid) < 1e-6 {
			break
		}
	}
	return support, coef
}

// solve performs Gaussian elimination with partial pivoting on the k×k
// system a·x = b. Singular systems return the best-effort solution with
// zeroed free variables.
func solve(a, b []float64, k int) []float64 {
	// Work on copies.
	m := make([]float64, len(a))
	copy(m, a)
	x := make([]float64, k)
	copy(x, b)
	for col := 0; col < k; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < k; r++ {
			if math.Abs(m[r*k+col]) > math.Abs(m[p*k+col]) {
				p = r
			}
		}
		if math.Abs(m[p*k+col]) < 1e-12 {
			continue
		}
		if p != col {
			for c := 0; c < k; c++ {
				m[p*k+c], m[col*k+c] = m[col*k+c], m[p*k+c]
			}
			x[p], x[col] = x[col], x[p]
		}
		for r := col + 1; r < k; r++ {
			f := m[r*k+col] / m[col*k+col]
			if f == 0 {
				continue
			}
			for c := col; c < k; c++ {
				m[r*k+c] -= f * m[col*k+c]
			}
			x[r] -= f * x[col]
		}
	}
	out := make([]float64, k)
	for r := k - 1; r >= 0; r-- {
		if math.Abs(m[r*k+r]) < 1e-12 {
			out[r] = 0
			continue
		}
		s := x[r]
		for c := r + 1; c < k; c++ {
			s -= m[r*k+c] * out[c]
		}
		out[r] = s / m[r*k+r]
	}
	return out
}
