package reconcile

import (
	"testing"

	"repro/internal/rng"
)

// TestAETuning is a manual knob-exploration harness; run with -run
// TestAETuning -v to inspect accuracy at different training budgets.
func TestAETuning(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning harness")
	}
	cfg := AEConfig{KeyBits: 64, CodeDim: 32, DecoderUnits: 16, MaxMismatch: 0.15}
	for _, epochs := range []int{10, 30} {
		ae := TrainAE(cfg, epochs, 200, rng.New(5))
		src := rng.New(6)
		for _, flips := range []int{2, 5, 8} {
			var agree float64
			const trials = 40
			for i := 0; i < trials; i++ {
				kb := src.Bits(64)
				ka := flipBits(kb, flips, src)
				out, err := ae.Reconcile(ka, kb, []byte("s"))
				if err != nil {
					t.Fatal(err)
				}
				agree += out.Agreement()
			}
			t.Logf("epochs=%d flips=%d: agreement %.4f", epochs, flips, agree/trials)
		}
	}
}
