package core

import (
	"testing"

	"repro/internal/amplify"
	"repro/internal/channel"
	"repro/internal/trace"
)

// TestKeptBitsBalanced is a security regression: the bits entering
// reconciliation must be close to marginally unbiased, or the final keys
// inherit structure an attacker can exploit (see the natural-coding
// discussion in internal/quantize).
func TestKeptBitsBalanced(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	sc := trace.NewScenario(channel.Urban, channel.V2I)
	sys, _, test := buildSystem(t, sc, 61, 300, 20)
	var ones, total float64
	for _, smp := range test.Samples {
		bobBits, bobKept, err := sys.BobQuantize(smp.Bob)
		if err != nil {
			t.Fatal(err)
		}
		_, finalKept := sys.AliceSelect(smp.Alice, bobKept)
		final := SelectAt(bobBits, bobKept, finalKept, sys.Cfg.BitsPerSample)
		for _, b := range final {
			ones += float64(b)
			total++
		}
	}
	rate := ones / total
	t.Logf("kept-bit ones rate: %.4f over %.0f bits", rate, total)
	if rate < 0.42 || rate > 0.58 {
		t.Errorf("kept bits biased: ones rate %.4f", rate)
	}
}

// TestKeptBitEntropy checks the pre-amplification material carries near
// one bit of entropy per bit.
func TestKeptBitEntropy(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	sc := trace.NewScenario(channel.Urban, channel.V2V)
	sys, _, test := buildSystem(t, sc, 62, 300, 20)
	var stream []byte
	for _, smp := range test.Samples {
		bobBits, bobKept, err := sys.BobQuantize(smp.Bob)
		if err != nil {
			t.Fatal(err)
		}
		_, finalKept := sys.AliceSelect(smp.Alice, bobKept)
		stream = append(stream, SelectAt(bobBits, bobKept, finalKept, sys.Cfg.BitsPerSample)...)
	}
	h := amplify.EstimateEntropy(stream)
	t.Logf("pre-amplification entropy: %.4f bit/bit over %d bits", h, len(stream))
	// Guard banding keeps extreme levels more often, which bonds the two
	// bits of a sample's natural code word and costs ~0.3 bit/bit at the
	// source. Privacy amplification compresses accordingly (a 64-bit
	// block carries ≈ 40+ bits of entropy into the hash); the final keys
	// are the NIST-tested artifact. This floor guards against
	// regressions below that understood level.
	if h < 0.6 {
		t.Errorf("kept material entropy %.4f below the understood floor", h)
	}
}

// TestDifferentSaltsDifferentKeys: the same channel material under two
// session salts must never produce the same final key.
func TestDifferentSaltsDifferentKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	sc := trace.NewScenario(channel.Rural, channel.V2I)
	sys, _, test := buildSystem(t, sc, 63, 120, 10)
	run := func(salt string) [][]byte {
		ks := sys.NewKeyStream([]byte(salt))
		var keys [][]byte
		for _, smp := range test.Samples {
			rs, err := ks.Push(smp)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rs {
				keys = append(keys, r.BobKey)
			}
		}
		return keys
	}
	k1 := run("session-one")
	k2 := run("session-two")
	if len(k1) == 0 || len(k1) != len(k2) {
		t.Fatalf("key counts: %d vs %d", len(k1), len(k2))
	}
	for i := range k1 {
		if string(k1[i]) == string(k2[i]) {
			t.Fatal("same material under different salts produced the same key")
		}
	}
}
