package core

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/rng"
	"repro/internal/trace"
)

// TestSweepGuards is a tuning harness for the guard/confidence operating
// point; run with -run TestSweepGuards -v.
func TestSweepGuards(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning harness")
	}
	sc := trace.NewScenario(channel.Urban, channel.V2I)
	ds, err := trace.Build(sc, 42, 250, 32, trace.DefaultExtract())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ guard, margin float64 }{
		{0.4, 0.15},
		{0.6, 0.15},
		{0.6, 0.25},
		{0.8, 0.25},
		{0.8, 0.35},
	} {
		src := rng.New(43)
		train, _, test := ds.Split(0.75, 0.05, src.Derive("split"))
		cfg := DefaultConfig()
		cfg.GuardRatio = tc.guard
		cfg.PredGuardRatio = tc.margin * 2.4
		sys := New(cfg, src.Derive("sys"))
		if _, err := sys.Train(train, 30, src.Derive("train")); err != nil {
			t.Fatal(err)
		}
		m, err := sys.Evaluate(test, []byte("sweep"))
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("guard=%.1f margin=%.2f: %v", tc.guard, tc.margin, m)
	}
}
