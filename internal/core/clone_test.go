package core

import (
	"bytes"
	"testing"

	"repro/internal/channel"
	"repro/internal/rng"
	"repro/internal/trace"
)

// smallConfig keeps clone/serialization tests cheap without changing
// the structure under test.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Hidden = 8
	cfg.AE.DecoderUnits = 8
	cfg.AEEpochs = 2
	cfg.AESamples = 40
	return cfg
}

// TestCloneEquivalentToSaveLoad is the contract Clone replaces
// exp.cloneSystem under: a clone must be byte-for-byte the system an
// explicit Save/Load round-trip produces — serialized forms equal,
// predictions equal — so no System field can silently drift out of the
// copy.
func TestCloneEquivalentToSaveLoad(t *testing.T) {
	src := rng.New(11)
	sys := New(smallConfig(), src)

	clone := sys.Clone()
	viaBlob := New(sys.Cfg, rng.New(99))
	var blob bytes.Buffer
	if err := sys.Save(&blob); err != nil {
		t.Fatal(err)
	}
	if err := viaBlob.Load(&blob); err != nil {
		t.Fatal(err)
	}

	serialize := func(s *System) []byte {
		var b bytes.Buffer
		if err := s.Save(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	want := serialize(sys)
	if !bytes.Equal(serialize(clone), want) {
		t.Fatal("Clone() serializes differently from its source")
	}
	if !bytes.Equal(serialize(viaBlob), want) {
		t.Fatal("Save/Load round-trip serializes differently from its source")
	}

	seq := make([]float64, sys.Cfg.SeqLen)
	for i := range seq {
		seq[i] = src.Normal(0, 1)
	}
	kept := []int{0, 2, 5, 9, 14, 20, 27, 31}
	orig := sys.AliceBitsAt(seq, kept)
	if got := clone.AliceBitsAt(seq, kept); !bytes.Equal(got, orig) {
		t.Fatal("clone predicts differently from its source")
	}
	if got := viaBlob.AliceBitsAt(seq, kept); !bytes.Equal(got, orig) {
		t.Fatal("round-tripped system predicts differently from its source")
	}
}

// TestCloneIsolation: training a clone must not touch the original (the
// property the experiment cache relies on when handing clones to
// concurrent workers).
func TestCloneIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	sc := trace.NewScenario(channel.Urban, channel.V2I)
	ds, err := trace.Build(sc, 13, 60, 32, trace.DefaultExtract())
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(14)
	train, _, _ := ds.Split(0.75, 0.05, src.Derive("split"))
	sys := New(smallConfig(), src.Derive("sys"))
	if _, err := sys.Train(train, 2, src.Derive("train")); err != nil {
		t.Fatal(err)
	}

	var before bytes.Buffer
	if err := sys.Save(&before); err != nil {
		t.Fatal(err)
	}
	clone := sys.Clone()
	if _, err := clone.FineTune(train, 2, src.Derive("ft")); err != nil {
		t.Fatal(err)
	}
	var after bytes.Buffer
	if err := sys.Save(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("fine-tuning a clone mutated the original system")
	}
	var cloneBlob bytes.Buffer
	if err := clone.Save(&cloneBlob); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(before.Bytes(), cloneBlob.Bytes()) {
		t.Fatal("fine-tuning left the clone unchanged; the test proves nothing")
	}
}

// FuzzSaveLoad feeds arbitrary bytes to System.Load: corrupt or
// truncated model blobs must surface as errors, never as panics, and a
// valid blob must round-trip.
func FuzzSaveLoad(f *testing.F) {
	cfg := smallConfig()
	var blob bytes.Buffer
	if err := New(cfg, rng.New(3)).Save(&blob); err != nil {
		f.Fatal(err)
	}
	valid := blob.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))
	for _, cut := range []int{1, len(valid) / 4, len(valid) / 2, len(valid) - 1} {
		f.Add(append([]byte(nil), valid[:cut]...))
	}
	// A bit flip in the middle exercises gob's internal decode paths.
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		sys := New(cfg, rng.New(4))
		err := sys.Load(bytes.NewReader(data))
		if bytes.Equal(data, valid) && err != nil {
			t.Fatalf("valid blob failed to load: %v", err)
		}
		// Any other outcome is acceptable as long as it returns instead
		// of panicking; a partially applied load must still leave a
		// usable (serializable) system behind.
		var out bytes.Buffer
		if err := sys.Save(&out); err != nil {
			t.Fatalf("system unusable after Load: %v", err)
		}
	})
}
