package core

import (
	"bytes"
	"testing"

	"repro/internal/channel"
	"repro/internal/quantize"
	"repro/internal/rng"
	"repro/internal/trace"
)

// buildSystem trains a small Vehicle-Key instance on one scenario and
// returns it with train/test splits. Shared by several tests.
func buildSystem(t *testing.T, sc trace.Scenario, seed int64, nSamples, epochs int) (*System, *trace.Dataset, *trace.Dataset) {
	t.Helper()
	ds, err := trace.Build(sc, seed, nSamples, 32, trace.DefaultExtract())
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(seed + 1)
	train, _, test := ds.Split(0.75, 0.05, src.Derive("split"))
	sys := New(DefaultConfig(), src.Derive("sys"))
	if _, err := sys.Train(train, epochs, src.Derive("train")); err != nil {
		t.Fatal(err)
	}
	return sys, train, test
}

func TestEndToEndKeyGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	sc := trace.NewScenario(channel.Urban, channel.V2I)
	sys, _, test := buildSystem(t, sc, 42, 500, 30)
	m, err := sys.Evaluate(test, []byte("e2e"))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("V2I-urban: %v", m)
	if m.Blocks == 0 {
		t.Fatal("no key blocks emitted")
	}
	if m.PostKAR < 0.95 {
		t.Errorf("post-reconciliation KAR %.4f below 0.95", m.PostKAR)
	}
	if m.PreKAR < 0.85 {
		t.Errorf("pre-reconciliation KAR %.4f below 0.85", m.PreKAR)
	}
}

func TestPredictionImprovesAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	sc := trace.NewScenario(channel.Urban, channel.V2I)
	sys, _, test := buildSystem(t, sc, 43, 500, 30)

	// Toggle only the prediction module, everything else equal (the
	// paper's Fig. 10 ablation): with = guard on the predicted sequence +
	// head bits; without = the same guard and quantizer on Alice's raw
	// sequence.
	b := sys.Cfg.BitsPerSample
	var withA, withK, woA, woK float64
	for _, smp := range test.Samples {
		bobBits, bobKept, err := sys.BobQuantize(smp.Bob)
		if err != nil {
			t.Fatal(err)
		}
		aliceBits, finalKept := sys.AliceSelect(smp.Alice, bobKept)
		bobFinal := SelectAt(bobBits, bobKept, finalKept, b)
		withA += agreement(aliceBits, bobFinal)
		withK += float64(len(finalKept)) / float64(sys.Cfg.SeqLen)

		res, err := quantize.MultiBit(smp.Alice, sys.Cfg.quantConfig(sys.Cfg.PredGuardRatio))
		if err != nil {
			t.Fatal(err)
		}
		rawKept := intersect(res.Kept, bobKept)
		rawBits := SelectAt(res.Bits, res.Kept, rawKept, b)
		bobRaw := SelectAt(bobBits, bobKept, rawKept, b)
		woA += agreement(rawBits, bobRaw)
		woK += float64(len(rawKept)) / float64(sys.Cfg.SeqLen)
	}
	n := float64(len(test.Samples))
	t.Logf("with prediction: agree=%.4f keep=%.3f | without: agree=%.4f keep=%.3f",
		withA/n, withK/n, woA/n, woK/n)
	if withA <= woA {
		t.Errorf("prediction should improve agreement: with=%.4f without=%.4f", withA/n, woA/n)
	}
}

func intersect(a, b []int) []int {
	in := make(map[int]bool, len(b))
	for _, x := range b {
		in[x] = true
	}
	var out []int
	for _, x := range a {
		if in[x] {
			out = append(out, x)
		}
	}
	return out
}

func TestEveStaysNearChance(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	sc := trace.NewScenario(channel.Urban, channel.V2V)
	sys, _, test := buildSystem(t, sc, 44, 500, 30)

	legit, err := sys.Evaluate(test, []byte("s"))
	if err != nil {
		t.Fatal(err)
	}
	eveEaves, err := sys.EvaluateEve(test, false, []byte("s"))
	if err != nil {
		t.Fatal(err)
	}
	eveImit, err := sys.EvaluateEve(test, true, []byte("s"))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("legit postKAR=%.4f eavesdrop=%.4f imitate=%.4f",
		legit.PostKAR, eveEaves.PostKAR, eveImit.PostKAR)
	if legit.PostKAR-eveEaves.PostKAR < 0.2 {
		t.Errorf("eavesdropping Eve agreement %.4f too close to legit %.4f", eveEaves.PostKAR, legit.PostKAR)
	}
	if legit.PostKAR-eveImit.PostKAR < 0.2 {
		t.Errorf("imitating Eve agreement %.4f too close to legit %.4f", eveImit.PostKAR, legit.PostKAR)
	}
	if eveEaves.ExactRate > 0 || eveImit.ExactRate > 0 {
		t.Error("Eve must never recover an exact key")
	}
}

func TestSystemSaveLoad(t *testing.T) {
	src := rng.New(9)
	sys := New(DefaultConfig(), src)
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	sys2 := New(DefaultConfig(), rng.New(10))
	if err := sys2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	seq := make([]float64, sys.Cfg.SeqLen)
	for i := range seq {
		seq[i] = src.Normal(0, 1)
	}
	kept := []int{0, 3, 5, 8, 13, 21, 30}
	a := sys.AliceBitsAt(seq, kept)
	b := sys2.AliceBitsAt(seq, kept)
	if !bytes.Equal(a, b) {
		t.Fatal("loaded system must reproduce predictions")
	}
}

func TestKeysDifferAcrossBlocks(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	sc := trace.NewScenario(channel.Rural, channel.V2I)
	sys, _, test := buildSystem(t, sc, 45, 120, 20)
	ks := sys.NewKeyStream([]byte("uniq"))
	seen := make(map[string]bool)
	for _, smp := range test.Samples {
		results, err := ks.Push(smp)
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range results {
			k := string(res.BobKey)
			if seen[k] {
				t.Fatal("two blocks produced the same key")
			}
			seen[k] = true
		}
	}
	if len(seen) == 0 {
		t.Fatal("no keys emitted")
	}
}
