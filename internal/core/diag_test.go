package core

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/quantize"
	"repro/internal/rng"
	"repro/internal/trace"
)

// keptAgreement measures Alice/Bob agreement over Bob's kept bits for one
// sample.
func keptAgreement(sys *System, alice, bob []float64) float64 {
	bits, kept, err := sys.BobQuantize(bob)
	if err != nil || len(kept) == 0 {
		return 0
	}
	return agreement(sys.AliceBitsAt(alice, kept), bits)
}

// TestDiagTraining is a tuning harness: it reports train/test kept-bit
// agreement per training stage plus the no-prediction baseline.
func TestDiagTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning harness")
	}
	sc := trace.NewScenario(channel.Urban, channel.V2I)
	ds, err := trace.Build(sc, 42, 300, 32, trace.DefaultExtract())
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(1)
	train, _, test := ds.Split(0.8, 0.05, src.Derive("split"))
	sys := New(DefaultConfig(), src.Derive("sys"))
	samples, err := sys.TrainSamples(train)
	if err != nil {
		t.Fatal(err)
	}
	tr := nn.NewTrainer(sys.predictorNet(), sys.Cfg.LearnRate, src.Derive("fit"))
	tr.Opt.WeightDecay = sys.Cfg.WeightDecay
	acc := func(ds *trace.Dataset) float64 {
		var a float64
		for _, smp := range ds.Samples {
			a += keptAgreement(sys, smp.Alice, smp.Bob)
		}
		return a / float64(len(ds.Samples))
	}
	for e := 0; e < 60; e++ {
		loss := tr.Epoch(samples)
		if (e+1)%10 == 0 {
			t.Logf("epoch %d loss %.4f trainAcc %.4f testAcc %.4f", e+1, loss, acc(train), acc(test))
		}
	}
	// No-prediction baseline: Alice quantizes her own sequence with the
	// same guard-banded quantizer; agreement over the intersection of
	// kept indices.
	var raw float64
	for _, smp := range test.Samples {
		qc := sys.Cfg.quantConfig(sys.Cfg.GuardRatio)
		ra, _ := quantize.MultiBit(smp.Alice, qc)
		rb, _ := quantize.MultiBit(smp.Bob, qc)
		ba, bb := quantize.IntersectKept(ra, rb, sys.Cfg.BitsPerSample)
		raw += agreement(ba, bb)
	}
	t.Logf("no-prediction kept-intersection agreement: %.4f", raw/float64(len(test.Samples)))
}

func corrOf(a, b []float64) (float64, error) {
	return mathx.Pearson(a, b)
}
