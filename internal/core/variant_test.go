package core

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/quantize"
	"repro/internal/rng"
	"repro/internal/trace"
)

// TestBitSourceVariants compares Alice deriving bits from the sigmoid head
// vs from quantizing the predicted sequence, at the pipeline's selection.
func TestBitSourceVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning harness")
	}
	sc := trace.NewScenario(channel.Urban, channel.V2I)
	ds, err := trace.Build(sc, 43, 250, 32, trace.DefaultExtract())
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(44)
	train, _, test := ds.Split(0.75, 0.05, src.Derive("split"))
	sys := New(DefaultConfig(), src.Derive("sys"))
	if _, err := sys.Train(train, 40, src.Derive("train")); err != nil {
		t.Fatal(err)
	}
	var headAgree, seqAgree, keep float64
	b := sys.Cfg.BitsPerSample
	for _, smp := range test.Samples {
		bobBits, bobKept, err := sys.BobQuantize(smp.Bob)
		if err != nil {
			t.Fatal(err)
		}
		yHat, _ := sys.predictorNet().Forward(smp.Alice)
		headBits, finalKept := sys.AliceSelect(smp.Alice, bobKept)
		bobFinal := SelectAt(bobBits, bobKept, finalKept, b)
		headAgree += agreement(headBits, bobFinal)
		// Variant: quantize yHat (no guard) and select the same indices.
		qc := sys.Cfg.quantConfig(0)
		resY, err := quantize.MultiBit(yHat, qc)
		if err != nil {
			t.Fatal(err)
		}
		seqBits := SelectAt(resY.Bits, resY.Kept, finalKept, b)
		seqAgree += agreement(seqBits, bobFinal)
		keep += float64(len(finalKept)) / float64(sys.Cfg.SeqLen)
	}
	n := float64(len(test.Samples))
	t.Logf("head bits agree=%.4f, quantized-yHat bits agree=%.4f, keep=%.3f",
		headAgree/n, seqAgree/n, keep/n)
}

// TestPredictionQuality reports corr(ŷ, Bob) vs corr(Alice, Bob) for a
// few model sizes/budgets.
func TestPredictionQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning harness")
	}
	sc := trace.NewScenario(channel.Urban, channel.V2I)
	ds, err := trace.Build(sc, 43, 250, 32, trace.DefaultExtract())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		hidden, epochs int
		lr             float64
	}{
		{16, 40, 5e-3},
		{32, 80, 3e-3},
	} {
		src := rng.New(44)
		train, _, test := ds.Split(0.75, 0.05, src.Derive("split"))
		cfg := DefaultConfig()
		cfg.Hidden = tc.hidden
		cfg.LearnRate = tc.lr
		sys := New(cfg, src.Derive("sys"))
		if _, err := sys.Train(train, tc.epochs, src.Derive("train")); err != nil {
			t.Fatal(err)
		}
		var predCorr, rawCorr, n float64
		for _, smp := range test.Samples {
			yHat, _ := sys.predictorNet().Forward(smp.Alice)
			pc, _ := corrOf(yHat, smp.Bob)
			rc, _ := corrOf(smp.Alice, smp.Bob)
			predCorr += pc
			rawCorr += rc
			n++
		}
		t.Logf("H=%d epochs=%d: corr(yHat,bob)=%.4f corr(alice,bob)=%.4f", tc.hidden, tc.epochs, predCorr/n, rawCorr/n)
	}
}
