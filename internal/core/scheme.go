package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/rng"
)

// DefaultScheme is the registry name of the paper's own pipeline.
const DefaultScheme = "vehicle-key"

// SchemeBuilder constructs one scheme's stage assignment. cfg arrives
// normalized; src is the scheme's construction randomness (stateful —
// builders must derive from it in a fixed order, or not at all).
type SchemeBuilder func(cfg Config, src *rng.Source) (pipeline.Stages, error)

var (
	schemeMu       sync.RWMutex
	schemeRegistry = map[string]SchemeBuilder{}
)

// RegisterScheme adds a scheme builder under name. Packages register in
// init (the database/sql driver pattern: importing a scheme package,
// possibly blank, makes its schemes available). Re-registering a name
// panics — two packages claiming one name is a wiring bug.
func RegisterScheme(name string, b SchemeBuilder) {
	schemeMu.Lock()
	defer schemeMu.Unlock()
	if _, dup := schemeRegistry[name]; dup {
		panic("core: scheme registered twice: " + name)
	}
	schemeRegistry[name] = b
}

// SchemeNames lists the registered schemes, sorted.
func SchemeNames() []string {
	schemeMu.RLock()
	defer schemeMu.RUnlock()
	out := make([]string, 0, len(schemeRegistry))
	for name := range schemeRegistry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SchemeRegistered reports whether name resolves in the registry (""
// means DefaultScheme and always resolves). It consumes no randomness,
// so callers can fail fast on a bad name before paying for dataset or
// model construction.
func SchemeRegistered(name string) bool {
	if name == "" {
		return true
	}
	schemeMu.RLock()
	defer schemeMu.RUnlock()
	_, ok := schemeRegistry[name]
	return ok
}

// ErrUnknownScheme wraps scheme lookup failures.
type ErrUnknownScheme struct {
	Name  string
	Known []string
}

func (e *ErrUnknownScheme) Error() string {
	return fmt.Sprintf("core: unknown scheme %q (registered: %s)", e.Name, strings.Join(e.Known, ", "))
}

// NewScheme builds an untrained System for the named scheme ("" means
// DefaultScheme). The result satisfies pipeline.Scheme, so the
// protocol, experiment, and NIST layers drive it exactly like the
// default pipeline.
func NewScheme(name string, cfg Config, src *rng.Source) (*System, error) {
	if name == "" {
		name = DefaultScheme
	}
	schemeMu.RLock()
	b, ok := schemeRegistry[name]
	schemeMu.RUnlock()
	if !ok {
		return nil, &ErrUnknownScheme{Name: name, Known: SchemeNames()}
	}
	cfg.Normalize()
	st, err := b(cfg, src)
	if err != nil {
		return nil, fmt.Errorf("core: building scheme %q: %w", name, err)
	}
	st.Scheme = name
	return &System{Cfg: cfg, Stages: st, rec: obs.Nop}, nil
}

func init() {
	RegisterScheme(DefaultScheme, func(cfg Config, src *rng.Source) (pipeline.Stages, error) {
		return New(cfg, src).Stages, nil
	})
}
