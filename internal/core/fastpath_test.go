package core

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/rng"
	"repro/internal/trace"
)

// seedScenarios are the four golden scenarios of scheme_golden_test.go.
var seedScenarios = []struct {
	name string
	env  channel.Environment
	link channel.LinkType
}{
	{"urban-v2i", channel.Urban, channel.V2I},
	{"urban-v2v", channel.Urban, channel.V2V},
	{"rural-v2i", channel.Rural, channel.V2I},
	{"rural-v2v", channel.Rural, channel.V2V},
}

// trainSeedSystem trains one Vehicle-Key system at the golden
// configuration (seed 1, 120 windows, 6 epochs) for a seed scenario.
func trainSeedSystem(t *testing.T, env channel.Environment, link channel.LinkType, fastpath string) (*System, *trace.Dataset) {
	t.Helper()
	scn := trace.NewScenario(env, link)
	ds, err := trace.Build(scn, 1, 120, 32, trace.DefaultExtract())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.FastPath = fastpath
	src := rng.New(1)
	sys := New(cfg, src.Derive("sys"))
	train, _, test := ds.Split(0.75, 0.05, src.Derive("split"))
	if _, err := sys.Train(train, 6, src.Derive("train")); err != nil {
		t.Fatal(err)
	}
	return sys, test
}

// TestInt8KeyBitIdentitySeedScenarios is the int8 path's key-bit
// identity claim, stated at the position the pipeline actually consumes
// bits: across every test window of all four seed scenarios, the
// quantized forward produces bit-identical hard key bits at every
// kept sample (Bob's guard-band announcement intersected with Alice's
// float-path selection), and its soft-bit error stays within the
// calibrated bound everywhere.
//
// This is the precise sense in which int8 serving "tolerates bounded
// probability-output error before the quantizer's hard threshold": at
// positions both guard rules keep, the trained network is confident, so
// the quantization perturbation never crosses 0.5. Full golden-key
// identity over a whole session is NOT claimed for int8 — the guard
// selection consumes the soft ŷ directly, and a boundary-adjacent
// sample may be kept by one path and dropped by the other, re-aligning
// the downstream key stream (first reconciliation blocks do reproduce
// the golden keys; see TestFastPathInt8GoldenKeys). That is a weight-
// precision floor, not an activation artifact: int8 weights alone (with
// exact float64 activations) already move ŷ by ~5e-3, enough to flip
// boundary-adjacent keep decisions.
func TestInt8KeyBitIdentitySeedScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("trains four models")
	}
	for _, sc := range seedScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			sys, test := trainSeedSystem(t, sc.env, sc.link, FastPathInt8)
			net := sys.predictorNet()
			if !net.Calibrated() {
				t.Fatal("int8 training did not calibrate")
			}
			bound := net.QuantBound()
			b := sys.SampleBits()
			keptBits := 0
			for _, smp := range test.Samples {
				_, bobKept, err := sys.Stages.Quantizer.Quantize(smp.Bob)
				if err != nil {
					t.Fatal(err)
				}
				yf, zf := net.ForwardBatched(smp.Alice)
				_, zq := net.ForwardQuantized(smp.Alice)
				for i := range zf {
					if d := math.Abs(zf[i] - zq[i]); d > bound {
						t.Fatalf("soft-bit error %.3g exceeds calibrated bound %.3g", d, bound)
					}
				}
				_, mine, err := sys.Stages.Quantizer.QuantizePredicted(yf)
				if err != nil {
					t.Fatal(err)
				}
				aliceKept := make(map[int]bool, len(mine))
				for _, k := range mine {
					aliceKept[k] = true
				}
				for _, idx := range bobKept {
					if !aliceKept[idx] {
						continue
					}
					for o := 0; o < b; o++ {
						keptBits++
						if (zf[idx*b+o] > 0.5) != (zq[idx*b+o] > 0.5) {
							t.Fatalf("window: hard key bit flipped at kept sample %d bit %d", idx, o)
						}
					}
				}
			}
			if keptBits == 0 {
				t.Fatal("no kept bits compared — scenario selects nothing")
			}
			t.Logf("%s: %d kept-position key bits identical, soft error ≤ %.3g", sc.name, keptBits, bound)
		})
	}
}

// TestPredictorMemoByteIdentical: the per-System forward memo serves
// byte-identical results to a cold computation, counts hits, and is
// purged when training moves the weights.
func TestPredictorMemoByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	sys, test := trainSeedSystem(t, channel.Urban, channel.V2I, FastPathGEMM)
	if sys.pmemo == nil {
		t.Fatal("gemm mode must memoize predictor forwards")
	}
	sys.pmemo.Purge()
	win := test.Samples[0].Alice
	coldY, coldBits, err := sys.predict(win)
	if err != nil {
		t.Fatal(err)
	}
	warmY, warmBits, err := sys.predict(win)
	if err != nil {
		t.Fatal(err)
	}
	for i := range coldY {
		if math.Float64bits(coldY[i]) != math.Float64bits(warmY[i]) {
			t.Fatalf("memoized yHat differs at %d", i)
		}
	}
	if string(coldBits) != string(warmBits) {
		t.Fatal("memoized bits differ")
	}
	// The warm result must be served from the cache, not recomputed.
	if st := sys.pmemo.Stats(); st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected one miss then one hit, got %+v", st)
	}
	// A clone never inherits cached forwards.
	if clone := sys.Clone(); clone.pmemo.Len() != 0 {
		t.Fatal("clone inherited memoized forwards")
	}
	// Training purges: fine-tune a single epoch and re-predict.
	ds, err := trace.Build(trace.NewScenario(channel.Urban, channel.V2I), 2, 8, 32, trace.DefaultExtract())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.FineTune(ds, 1, rng.New(5)); err != nil {
		t.Fatal(err)
	}
	if sys.pmemo.Len() != 0 {
		t.Fatal("FineTune did not purge the forward memo")
	}
	freshY, _, err := sys.predict(win)
	if err != nil {
		t.Fatal(err)
	}
	moved := false
	for i := range freshY {
		if math.Float64bits(freshY[i]) != math.Float64bits(coldY[i]) {
			moved = true
			break
		}
	}
	if !moved {
		t.Log("fine-tune left the forward unchanged (allowed, but purge is still required)")
	}
}

// TestFastPathOffDisablesMemo: the reference mode is the fully uncached
// baseline the benchmarks compare against.
func TestFastPathOffDisablesMemo(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FastPath = FastPathOff
	sys := New(cfg, rng.New(1))
	if sys.pmemo != nil {
		t.Fatal("FastPathOff must not memoize predictor forwards")
	}
	if !sys.Cfg.AE.Reference {
		t.Fatal("FastPathOff must pin the reconciler to its reference internals")
	}
	def := DefaultConfig()
	if def.FastPath != FastPathGEMM || def.AE.Reference {
		t.Fatalf("default config must take the gemm fast path, got %+v", def.FastPath)
	}
}

// TestValidFastPath pins the flag-validation helper.
func TestValidFastPath(t *testing.T) {
	for _, ok := range []string{"", FastPathOff, FastPathGEMM, FastPathInt8} {
		if !ValidFastPath(ok) {
			t.Errorf("ValidFastPath(%q) = false", ok)
		}
	}
	for _, bad := range []string{"fast", "INT8", "gemm "} {
		if ValidFastPath(bad) {
			t.Errorf("ValidFastPath(%q) = true", bad)
		}
	}
}
