package core

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// Metrics aggregates key-generation quality over an evaluation set, the
// quantities the paper's evaluation reports throughout Sec. V.
type Metrics struct {
	Blocks int // completed reconciliation blocks

	// PreKAR is the mean bit agreement before reconciliation (Fig. 10's
	// quantity) and PreKARStd its standard deviation across blocks.
	PreKAR    float64
	PreKARStd float64

	// PostKAR is the mean bit agreement after reconciliation — the
	// paper's headline "key agreement rate" (98.87 % average).
	PostKAR    float64
	PostKARStd float64

	// ExactRate is the fraction of blocks ending with identical keys.
	ExactRate float64

	// KGR is the key generation rate in agreed bits per second of probing
	// time (Fig. 13's quantity); NetKGR additionally subtracts the bits
	// revealed publicly during reconciliation, the rate at which *secret*
	// material actually accumulates.
	KGR    float64
	NetKGR float64
}

// String implements fmt.Stringer.
func (m Metrics) String() string {
	return fmt.Sprintf("blocks=%d preKAR=%.2f%%±%.2f postKAR=%.2f%%±%.2f exact=%.1f%% KGR=%.2f bit/s net=%.2f bit/s",
		m.Blocks, 100*m.PreKAR, 100*m.PreKARStd, 100*m.PostKAR, 100*m.PostKARStd, 100*m.ExactRate, m.KGR, m.NetKGR)
}

// Evaluate streams the dataset's samples through key generation and
// aggregates block metrics. salt seeds the session value.
func (s *System) Evaluate(ds *trace.Dataset, salt []byte) (Metrics, error) {
	ks := s.NewKeyStream(salt)
	var results []KeyResult
	for _, smp := range ds.Samples {
		rs, err := ks.Push(smp)
		if err != nil {
			return Metrics{}, err
		}
		results = append(results, rs...)
	}
	return aggregate(results, ds.TotalDuration()), nil
}

// EvaluateEve measures an attacker's best key agreement against Bob. Eve
// runs the same trained model over her own measurements (she knows the
// full protocol, including Bob's announced kept indices) and, per the
// paper's Fig. 15 methodology, feeds the intercepted code vector y_Bob to
// the reconciler with her own key material.
func (s *System) EvaluateEve(ds *trace.Dataset, imitate bool, salt []byte) (Metrics, error) {
	var eveBuf, bobBuf []byte
	var results []KeyResult
	emitted := 0
	block := s.BlockBits()
	for _, smp := range ds.Samples {
		bobBits, bobKept, err := s.BobQuantize(smp.Bob)
		if err != nil {
			return Metrics{}, err
		}
		eveSeq := smp.EveEavesdrop
		if imitate {
			eveSeq = smp.EveImitate
		}
		// Eve plays Alice's role with her own measurements, including the
		// confidence gating Alice would apply.
		eveBits, finalKept := s.AliceSelect(eveSeq, bobKept)
		eveBuf = append(eveBuf, eveBits...)
		bobBuf = append(bobBuf, SelectAt(bobBits, bobKept, finalKept, s.SampleBits())...)
		for len(bobBuf) >= block {
			emitted++
			roundSalt := append(append([]byte{}, salt...), byte(emitted), byte(emitted>>8))
			res := KeyResult{
				BitsGenerated: block,
				PreAgreement:  agreement(eveBuf[:block], bobBuf[:block]),
			}
			out, err := s.Stages.Reconciler.Reconcile(eveBuf[:block], bobBuf[:block], roundSalt)
			if err != nil {
				return Metrics{}, err
			}
			res.PostAgreement = out.Agreement()
			res.Exact = out.Exact()
			eveBuf = eveBuf[block:]
			bobBuf = bobBuf[block:]
			results = append(results, res)
		}
	}
	return aggregate(results, 0), nil
}

// Aggregate folds a set of key results into Metrics; totalTime (seconds
// of probing) enables the KGR fields when positive.
func Aggregate(results []KeyResult, totalTime float64) Metrics {
	return aggregate(results, totalTime)
}

func aggregate(results []KeyResult, totalTime float64) Metrics {
	var m Metrics
	m.Blocks = len(results)
	if m.Blocks == 0 {
		return m
	}
	var pre, post []float64
	var agreedBits, netBits float64
	for _, r := range results {
		pre = append(pre, r.PreAgreement)
		post = append(post, r.PostAgreement)
		if r.Exact {
			m.ExactRate++
		}
		agreedBits += r.PostAgreement * float64(r.BitsGenerated)
		if nb := r.PostAgreement*float64(r.BitsGenerated) - float64(r.LeakedBits); nb > 0 {
			netBits += nb
		}
	}
	m.PreKAR, m.PreKARStd = meanStd(pre)
	m.PostKAR, m.PostKARStd = meanStd(post)
	m.ExactRate /= float64(m.Blocks)
	if totalTime > 0 {
		m.KGR = agreedBits / totalTime
		m.NetKGR = netBits / totalTime
	}
	return m
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}
