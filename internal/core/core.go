// Package core assembles the full Vehicle-Key pipeline (Fig. 5): channel
// probing (package trace) → arRSSI extraction → the BiLSTM prediction +
// quantization model on Alice's side and the guard-banded multi-bit
// quantizer on Bob's → kept-index exchange → autoencoder reconciliation →
// privacy amplification into 128-bit session keys.
//
// Protocol shape per round: Bob quantizes his arRSSI sequence with the
// Jana et al. multi-bit quantizer, drops guard-band samples, and publicly
// announces which sample indices he kept (indices reveal nothing about
// values). Alice runs the prediction+quantization network over her own
// sequence and selects the predicted bit pairs at Bob's kept indices.
// Kept bits accumulate in a stream; every KeyBlockBits of aligned material
// is reconciled with the autoencoder and hashed into a 128-bit key.
package core

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/amplify"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/quantize"
	"repro/internal/reconcile"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Per-phase metric names, baked once so the hot path never builds label
// strings (the paper's Table III phase split).
var (
	phaseSecProbe     = obs.Labeled(obs.PipelinePhaseSeconds, "phase", obs.PhaseProbe)
	phaseSecPredict   = obs.Labeled(obs.PipelinePhaseSeconds, "phase", obs.PhasePredict)
	phaseSecQuantize  = obs.Labeled(obs.PipelinePhaseSeconds, "phase", obs.PhaseQuantize)
	phaseSecReconcile = obs.Labeled(obs.PipelinePhaseSeconds, "phase", obs.PhaseReconcile)
	phaseSecAmplify   = obs.Labeled(obs.PipelinePhaseSeconds, "phase", obs.PhaseAmplify)

	phaseBitsProbe     = obs.Labeled(obs.PipelinePhaseBits, "phase", obs.PhaseProbe)
	phaseBitsPredict   = obs.Labeled(obs.PipelinePhaseBits, "phase", obs.PhasePredict)
	phaseBitsQuantize  = obs.Labeled(obs.PipelinePhaseBits, "phase", obs.PhaseQuantize)
	phaseBitsReconcile = obs.Labeled(obs.PipelinePhaseBits, "phase", obs.PhaseReconcile)
	phaseBitsAmplify   = obs.Labeled(obs.PipelinePhaseBits, "phase", obs.PhaseAmplify)
)

// Config assembles the pipeline's knobs. The zero value is completed with
// the paper's defaults by Normalize.
type Config struct {
	// SeqLen is the arRSSI sequence length per probing round.
	SeqLen int
	// BitsPerSample is Bob's quantizer depth (2 in the paper: 64-bit head
	// over 32 samples).
	BitsPerSample int
	// GuardRatio is the quantizer guard band α: samples this close to a
	// level boundary (relative to level width) are dropped and excluded
	// from the key by both sides via the kept-index exchange.
	GuardRatio float64
	// PredGuardRatio is Alice's guard band in the predicted domain: she
	// applies the same guard-band rule to her *predicted* sequence ŷ that
	// Bob applies to his measurements, and both sides use the
	// intersection of kept indices. Selecting on distance-to-threshold in
	// the value domain (rather than on sigmoid confidence) keeps the kept
	// levels uniformly distributed — a confidence gate skews kept samples
	// toward extreme levels, which biases the Gray-coded second bit and
	// both inflates an eavesdropper's agreement and breaks key
	// randomness. Defaults to GuardRatio.
	PredGuardRatio float64
	// KeyBlockBits is the reconciliation unit (64: one AE block).
	KeyBlockBits int
	// Hidden is the predictor's BiLSTM width per direction.
	Hidden int
	// Theta is the joint-loss weight (paper: 0.9).
	Theta float64
	// LearnRate is the predictor's Adam rate.
	LearnRate float64
	// WeightDecay regularizes predictor training.
	WeightDecay float64
	// AE configures the reconciler (KeyBits is forced to KeyBlockBits).
	AE reconcile.AEConfig
	// AEEpochs and AESamples size reconciler training.
	AEEpochs  int
	AESamples int
}

// DefaultConfig mirrors the paper's implementation section: 32-step
// sequences, 2 bits per sample (a 64-bit quantization head), θ = 0.9,
// 64-bit reconciliation blocks. The BiLSTM width defaults to 16 (the
// paper uses 128; width is configurable and 16 already saturates
// agreement on the simulated channel — see EXPERIMENTS.md).
func DefaultConfig() Config {
	cfg := Config{}
	cfg.Normalize()
	return cfg
}

// Normalize fills unset fields with defaults.
func (c *Config) Normalize() {
	if c.SeqLen <= 0 {
		c.SeqLen = 32
	}
	if c.BitsPerSample <= 0 {
		c.BitsPerSample = 2
	}
	if c.GuardRatio == 0 {
		c.GuardRatio = 0.8
	}
	if c.PredGuardRatio == 0 {
		// Slightly wider than Bob's guard: predicted values carry model
		// uncertainty on top of measurement noise.
		c.PredGuardRatio = 0.85
	}
	if c.KeyBlockBits <= 0 {
		c.KeyBlockBits = 64
	}
	if c.Hidden <= 0 {
		c.Hidden = 16
	}
	if c.Theta <= 0 || c.Theta >= 1 {
		c.Theta = 0.9
	}
	if c.LearnRate <= 0 {
		c.LearnRate = 5e-3
	}
	if c.WeightDecay == 0 {
		c.WeightDecay = 1e-4
	}
	c.AE.KeyBits = c.KeyBlockBits
	if c.AE.CodeDim == 0 {
		c.AE.CodeDim = c.KeyBlockBits / 2
	}
	if c.AEEpochs <= 0 {
		c.AEEpochs = 10
	}
	if c.AESamples <= 0 {
		c.AESamples = 300
	}
}

// bits returns the quantization head width.
func (c Config) bits() int { return c.BitsPerSample * c.SeqLen }

func (c Config) quantConfig(guard float64) quantize.MultiBitConfig {
	return quantize.MultiBitConfig{
		BitsPerSample: c.BitsPerSample,
		GuardRatio:    guard,
		BlockSize:     c.SeqLen,
		Thresholds:    quantize.GaussianThresholds(c.BitsPerSample),
		NaturalCoding: true,
	}
}

// System is a trained Vehicle-Key instance: the prediction+quantization
// model (run by Alice, or by the power-rich side) and the trained
// reconciler shared by both parties.
type System struct {
	Cfg       Config
	Predictor *nn.Predictor
	AE        *reconcile.AE

	rec obs.Recorder
}

// New builds an untrained system.
func New(cfg Config, src *rng.Source) *System {
	cfg.Normalize()
	pcfg := nn.PredictorConfig{SeqLen: cfg.SeqLen, Hidden: cfg.Hidden, Bits: cfg.bits(), Theta: cfg.Theta}
	return &System{
		Cfg:       cfg,
		Predictor: nn.NewPredictor(pcfg, src.Derive("predictor")),
		AE:        reconcile.NewAE(cfg.AE, src.Derive("ae")),
		rec:       obs.Nop,
	}
}

// SetRecorder routes the pipeline's per-phase duration and bit-count
// observations into r. Call it before the system is shared across
// goroutines (protocol nodes, experiment workers); the field is read-only
// afterwards. Metrics never feed results, so recording cannot perturb
// the deterministic outputs.
func (s *System) SetRecorder(r obs.Recorder) { s.rec = obs.OrNop(r) }

// recorder tolerates zero-value Systems built without New.
func (s *System) recorder() obs.Recorder {
	if s.rec == nil {
		return obs.Nop
	}
	return s.rec
}

// BobQuantize runs Bob's side: the guard-banded multi-bit quantizer over
// his measured (normalized) arRSSI sequence. It returns his key bits and
// the kept sample indices he announces publicly.
func (s *System) BobQuantize(bobSeq []float64) (bits []byte, kept []int, err error) {
	started := time.Now()
	res, err := quantize.MultiBit(bobSeq, s.Cfg.quantConfig(s.Cfg.GuardRatio))
	if err != nil {
		return nil, nil, fmt.Errorf("core: Bob quantization: %w", err)
	}
	rec := s.recorder()
	rec.Observe(phaseSecQuantize, time.Since(started).Seconds())
	rec.Observe(phaseBitsQuantize, float64(len(res.Bits)))
	return res.Bits, res.Kept, nil
}

// AliceBitsAt runs Alice's prediction network over her sequence and
// returns her bit pairs at the given sample indices.
func (s *System) AliceBitsAt(aliceSeq []float64, kept []int) []byte {
	_, zHat := s.Predictor.Forward(aliceSeq)
	all := nn.Bits(zHat)
	b := s.Cfg.BitsPerSample
	out := make([]byte, 0, len(kept)*b)
	for _, idx := range kept {
		out = append(out, all[idx*b:(idx+1)*b]...)
	}
	return out
}

// AliceRound is Alice's precomputed per-window prediction state: the
// expensive network forward pass and guard-band pass run once, after
// which Select answers Bob's announcement (possibly several times, under
// retransmission) with a cheap set intersection. The protocol layer
// precomputes one per window so its receive-loop latency stays far below
// the retransmit timeout.
type AliceRound struct {
	mine map[int]bool
	all  []byte
	b    int
}

// AlicePrecompute runs Alice's prediction network and guard-band rule
// over her measured sequence, independent of anything Bob announces.
func (s *System) AlicePrecompute(aliceSeq []float64) (*AliceRound, error) {
	started := time.Now()
	yHat, zHat := s.Predictor.Forward(aliceSeq)
	res, err := quantize.MultiBit(yHat, s.Cfg.quantConfig(s.Cfg.PredGuardRatio))
	if err != nil {
		return nil, fmt.Errorf("core: Alice quantization: %w", err)
	}
	mine := make(map[int]bool, len(res.Kept))
	for _, idx := range res.Kept {
		mine[idx] = true
	}
	all := nn.Bits(zHat)
	rec := s.recorder()
	rec.Observe(phaseSecPredict, time.Since(started).Seconds())
	rec.Observe(phaseBitsPredict, float64(len(all)))
	return &AliceRound{mine: mine, all: all, b: s.Cfg.BitsPerSample}, nil
}

// Select intersects Bob's announced kept indices with Alice's own
// guard-band survivors and returns her bits plus the final index list.
// Out-of-range announcements (possible with a corrupted envelope) are
// rejected with ok=false rather than panicking.
func (r *AliceRound) Select(bobKept []int) (bits []byte, kept []int, ok bool) {
	n := len(r.all) / r.b
	for _, idx := range bobKept {
		if idx < 0 || idx >= n {
			return nil, nil, false
		}
	}
	for _, idx := range bobKept {
		if !r.mine[idx] {
			continue
		}
		kept = append(kept, idx)
		bits = append(bits, r.all[idx*r.b:(idx+1)*r.b]...)
	}
	return bits, kept, true
}

// AliceSelect runs Alice's full round: the prediction network, then the
// guard-band rule over her predicted sequence, restricted to Bob's
// announced kept indices. It returns her bits (from the quantization
// head) and the final index list she announces back to Bob.
func (s *System) AliceSelect(aliceSeq []float64, bobKept []int) (bits []byte, kept []int) {
	r, err := s.AlicePrecompute(aliceSeq)
	if err != nil {
		return nil, nil
	}
	bits, kept, ok := r.Select(bobKept)
	if !ok {
		return nil, nil
	}
	return bits, kept
}

// SelectAt picks the bit pairs of a quantizer result at the given final
// indices (Bob's step after Alice's announcement).
func SelectAt(bits []byte, kept []int, final []int, bitsPerSample int) []byte {
	pos := make(map[int]int, len(kept))
	for i, idx := range kept {
		pos[idx] = i
	}
	out := make([]byte, 0, len(final)*bitsPerSample)
	for _, idx := range final {
		if i, ok := pos[idx]; ok {
			out = append(out, bits[i*bitsPerSample:(i+1)*bitsPerSample]...)
		}
	}
	return out
}

// TrainSamples converts a dataset into predictor training samples: input
// Alice's sequence; targets Bob's sequence plus Bob's guard-banded bits,
// with the BCE loss masked to the kept positions.
func (s *System) TrainSamples(ds *trace.Dataset) ([]nn.TrainSample, error) {
	b := s.Cfg.BitsPerSample
	out := make([]nn.TrainSample, 0, len(ds.Samples))
	for _, smp := range ds.Samples {
		res, err := quantize.MultiBit(smp.Bob, s.Cfg.quantConfig(s.Cfg.GuardRatio))
		if err != nil {
			return nil, err
		}
		bits := make([]byte, s.Cfg.bits())
		mask := make([]bool, s.Cfg.bits())
		for i, idx := range res.Kept {
			copy(bits[idx*b:(idx+1)*b], res.Bits[i*b:(i+1)*b])
			for k := 0; k < b; k++ {
				mask[idx*b+k] = true
			}
		}
		out = append(out, nn.TrainSample{Alice: smp.Alice, Bob: smp.Bob, Bits: bits, Mask: mask})
	}
	return out, nil
}

// Train fits the predictor on the dataset for the given epochs and trains
// the reconciler, returning per-epoch losses.
func (s *System) Train(ds *trace.Dataset, epochs int, src *rng.Source) ([]float64, error) {
	samples, err := s.TrainSamples(ds)
	if err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, errors.New("core: empty training set")
	}
	tr := nn.NewTrainer(s.Predictor, s.Cfg.LearnRate, src.Derive("fit"))
	tr.Opt.WeightDecay = s.Cfg.WeightDecay
	losses := tr.Fit(samples, epochs)
	s.AE = reconcile.TrainAE(s.Cfg.AE, s.Cfg.AEEpochs, s.Cfg.AESamples, src.Derive("ae-fit"))
	return losses, nil
}

// FineTune continues predictor training on new-environment data without
// reinitializing, the transfer-learning mode of Fig. 14.
func (s *System) FineTune(ds *trace.Dataset, epochs int, src *rng.Source) ([]float64, error) {
	samples, err := s.TrainSamples(ds)
	if err != nil {
		return nil, err
	}
	tr := nn.NewTrainer(s.Predictor, s.Cfg.LearnRate, src.Derive("finetune"))
	tr.Opt.WeightDecay = s.Cfg.WeightDecay
	return tr.Fit(samples, epochs), nil
}

// KeyResult reports one completed key block.
type KeyResult struct {
	PreAgreement  float64 // bit agreement before reconciliation
	PostAgreement float64 // bit agreement after reconciliation
	Exact         bool    // keys identical after reconciliation
	AliceKey      []byte  // Alice's 128-bit key after privacy amplification
	BobKey        []byte  // Bob's 128-bit key
	BitsGenerated int
	LeakedBits    int     // public bits revealed during reconciliation
	Duration      float64 // probing time consumed by this block
}

// KeyStream accumulates kept key material across probing rounds and emits
// a KeyResult whenever a full reconciliation block is available.
type KeyStream struct {
	sys      *System
	salt     []byte
	aliceBuf []byte
	bobBuf   []byte
	duration float64
	emitted  int
}

// NewKeyStream starts a stream for the session identified by salt.
func (s *System) NewKeyStream(salt []byte) *KeyStream {
	return &KeyStream{sys: s, salt: append([]byte{}, salt...)}
}

// Push feeds one probing round's aligned sample through quantization and
// selection, appending the kept material. It returns a KeyResult for each
// completed block (usually zero or one).
//
// Protocol messages modeled: Bob announces his guard-band kept indices;
// Alice replies with the confidence-gated subset; both extract bits at
// the final indices. Indices reveal nothing about measurement values.
func (ks *KeyStream) Push(smp trace.Sample) ([]KeyResult, error) {
	bobBits, bobKept, err := ks.sys.BobQuantize(smp.Bob)
	if err != nil {
		return nil, err
	}
	aliceBits, finalKept := ks.sys.AliceSelect(smp.Alice, bobKept)
	bobFinal := SelectAt(bobBits, bobKept, finalKept, ks.sys.Cfg.BitsPerSample)
	ks.bobBuf = append(ks.bobBuf, bobFinal...)
	ks.aliceBuf = append(ks.aliceBuf, aliceBits...)
	ks.duration += smp.Duration
	// The probe phase's cost is the channel probing time the sample
	// consumed (modeled, not wall-clock); its yield is the kept bits.
	rec := ks.sys.recorder()
	rec.Observe(phaseSecProbe, smp.Duration)
	rec.Observe(phaseBitsProbe, float64(len(bobFinal)))

	var out []KeyResult
	block := ks.sys.Cfg.KeyBlockBits
	for len(ks.bobBuf) >= block {
		res, err := ks.emit(ks.aliceBuf[:block], ks.bobBuf[:block])
		if err != nil {
			return nil, err
		}
		ks.aliceBuf = ks.aliceBuf[block:]
		ks.bobBuf = ks.bobBuf[block:]
		out = append(out, res)
	}
	return out, nil
}

func (ks *KeyStream) emit(aliceBits, bobBits []byte) (KeyResult, error) {
	ks.emitted++
	salt := append(append([]byte{}, ks.salt...), byte(ks.emitted), byte(ks.emitted>>8))
	res := KeyResult{
		BitsGenerated: len(bobBits),
		Duration:      ks.duration,
		PreAgreement:  agreement(aliceBits, bobBits),
	}
	ks.duration = 0
	rec := ks.sys.recorder()

	started := time.Now()
	out, err := ks.sys.AE.Reconcile(aliceBits, bobBits, salt)
	if err != nil {
		return KeyResult{}, fmt.Errorf("core: reconcile: %w", err)
	}
	rec.Observe(phaseSecReconcile, time.Since(started).Seconds())
	rec.Observe(phaseBitsReconcile, float64(len(bobBits)))
	res.PostAgreement = out.Agreement()
	res.Exact = out.Exact()
	res.LeakedBits = out.LeakedKeyBits
	started = time.Now()
	if res.AliceKey, err = amplify.Amplify(out.AliceKey, salt); err != nil {
		return KeyResult{}, err
	}
	if res.BobKey, err = amplify.Amplify(out.BobKey, salt); err != nil {
		return KeyResult{}, err
	}
	rec.Observe(phaseSecAmplify, time.Since(started).Seconds())
	rec.Observe(phaseBitsAmplify, float64(len(res.BobKey)*8))
	return res, nil
}

func agreement(a, b []byte) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	return float64(same) / float64(len(a))
}

// Save serializes the trained predictor and reconciler.
func (s *System) Save(w io.Writer) error {
	if err := nn.SaveParams(w, s.Predictor.Params()); err != nil {
		return err
	}
	return s.AE.Save(w)
}

// Load restores a system saved by Save into a same-config System.
func (s *System) Load(r io.Reader) error {
	if err := nn.LoadParams(r, s.Predictor.Params()); err != nil {
		return err
	}
	return s.AE.Load(r)
}
