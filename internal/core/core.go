// Package core assembles the full Vehicle-Key pipeline (Fig. 5): channel
// probing (package trace) → arRSSI extraction → the BiLSTM prediction +
// quantization model on Alice's side and the guard-banded multi-bit
// quantizer on Bob's → kept-index exchange → autoencoder reconciliation →
// privacy amplification into 128-bit session keys.
//
// Protocol shape per round: Bob quantizes his arRSSI sequence with the
// Jana et al. multi-bit quantizer, drops guard-band samples, and publicly
// announces which sample indices he kept (indices reveal nothing about
// values). Alice runs the prediction+quantization network over her own
// sequence and selects the predicted bit pairs at Bob's kept indices.
// Kept bits accumulate in a stream; every KeyBlockBits of aligned material
// is reconciled with the autoencoder and hashed into a 128-bit key.
//
// Since the stage refactor, System is a composition of the pluggable
// pipeline interfaces (pipeline.Predictor/Quantizer/Reconciler/
// Amplifier) rather than a hardwired chain: New builds the Vehicle-Key
// slot assignment, NewScheme (scheme.go) builds any registered scheme,
// and every System — Vehicle-Key or baseline — satisfies
// pipeline.Scheme, so the protocol, experiment, and NIST layers drive
// all of them through one code path.
package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/memo"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/quantize"
	"repro/internal/reconcile"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Per-phase metric names, baked once so the hot path never builds label
// strings (the paper's Table III phase split).
var (
	phaseSecProbe     = obs.Labeled(obs.PipelinePhaseSeconds, "phase", obs.PhaseProbe)
	phaseSecPredict   = obs.Labeled(obs.PipelinePhaseSeconds, "phase", obs.PhasePredict)
	phaseSecQuantize  = obs.Labeled(obs.PipelinePhaseSeconds, "phase", obs.PhaseQuantize)
	phaseSecReconcile = obs.Labeled(obs.PipelinePhaseSeconds, "phase", obs.PhaseReconcile)
	phaseSecAmplify   = obs.Labeled(obs.PipelinePhaseSeconds, "phase", obs.PhaseAmplify)

	phaseBitsProbe     = obs.Labeled(obs.PipelinePhaseBits, "phase", obs.PhaseProbe)
	phaseBitsPredict   = obs.Labeled(obs.PipelinePhaseBits, "phase", obs.PhasePredict)
	phaseBitsQuantize  = obs.Labeled(obs.PipelinePhaseBits, "phase", obs.PhaseQuantize)
	phaseBitsReconcile = obs.Labeled(obs.PipelinePhaseBits, "phase", obs.PhaseReconcile)
	phaseBitsAmplify   = obs.Labeled(obs.PipelinePhaseBits, "phase", obs.PhaseAmplify)

	cacheHitPredictor  = obs.Labeled(obs.CacheHits, "cache", "predictor")
	cacheMissPredictor = obs.Labeled(obs.CacheMisses, "cache", "predictor")

	nnForwardSecOff  = obs.Labeled(obs.NNForwardSeconds, "path", FastPathOff)
	nnForwardSecGEMM = obs.Labeled(obs.NNForwardSeconds, "path", FastPathGEMM)
	nnForwardSecInt8 = obs.Labeled(obs.NNForwardSeconds, "path", FastPathInt8)
)

// FastPath values for Config.FastPath: which predictor inference
// implementation serves Predict.
const (
	// FastPathOff forces the original per-step reference forward and
	// uncached reconciler artifacts — the path the equivalence battery
	// and A/B benchmarks compare against.
	FastPathOff = "off"
	// FastPathGEMM (the default) batches the BiLSTM and head forwards
	// into matrix–matrix kernels. Byte-identical to the reference.
	FastPathGEMM = "gemm"
	// FastPathInt8 additionally serves inference from the calibrated
	// int8 snapshot (falling back to the GEMM path until the predictor
	// has been trained and calibrated). Bounded soft-bit error;
	// key-bit-identical on the seed scenarios (scheme_golden_test.go).
	FastPathInt8 = "int8"
)

// ValidFastPath reports whether mode is a recognized Config.FastPath
// value ("" meaning "take the default").
func ValidFastPath(mode string) bool {
	switch mode {
	case "", FastPathOff, FastPathGEMM, FastPathInt8:
		return true
	}
	return false
}

func nnForwardSecFor(mode string) string {
	switch mode {
	case FastPathOff:
		return nnForwardSecOff
	case FastPathInt8:
		return nnForwardSecInt8
	default:
		return nnForwardSecGEMM
	}
}

// Config assembles the pipeline's knobs. The zero value is completed with
// the paper's defaults by Normalize.
type Config struct {
	// SeqLen is the arRSSI sequence length per probing round.
	SeqLen int
	// BitsPerSample is Bob's quantizer depth (2 in the paper: 64-bit head
	// over 32 samples).
	BitsPerSample int
	// GuardRatio is the quantizer guard band α: samples this close to a
	// level boundary (relative to level width) are dropped and excluded
	// from the key by both sides via the kept-index exchange.
	GuardRatio float64
	// PredGuardRatio is Alice's guard band in the predicted domain: she
	// applies the same guard-band rule to her *predicted* sequence ŷ that
	// Bob applies to his measurements, and both sides use the
	// intersection of kept indices. Selecting on distance-to-threshold in
	// the value domain (rather than on sigmoid confidence) keeps the kept
	// levels uniformly distributed — a confidence gate skews kept samples
	// toward extreme levels, which biases the Gray-coded second bit and
	// both inflates an eavesdropper's agreement and breaks key
	// randomness. Defaults to GuardRatio.
	PredGuardRatio float64
	// KeyBlockBits is the reconciliation unit (64: one AE block).
	KeyBlockBits int
	// Hidden is the predictor's BiLSTM width per direction.
	Hidden int
	// Theta is the joint-loss weight (paper: 0.9).
	Theta float64
	// LearnRate is the predictor's Adam rate.
	LearnRate float64
	// WeightDecay regularizes predictor training.
	WeightDecay float64
	// AE configures the reconciler (KeyBits is forced to KeyBlockBits).
	AE reconcile.AEConfig
	// AEEpochs and AESamples size reconciler training.
	AEEpochs  int
	AESamples int
	// FastPath selects the predictor inference implementation and the
	// reconciler fast internals: FastPathGEMM (default), FastPathInt8,
	// or FastPathOff for the per-step reference path. Unrecognized
	// values normalize to the default.
	FastPath string
}

// DefaultConfig mirrors the paper's implementation section: 32-step
// sequences, 2 bits per sample (a 64-bit quantization head), θ = 0.9,
// 64-bit reconciliation blocks. The BiLSTM width defaults to 16 (the
// paper uses 128; width is configurable and 16 already saturates
// agreement on the simulated channel — see EXPERIMENTS.md).
func DefaultConfig() Config {
	cfg := Config{}
	cfg.Normalize()
	return cfg
}

// Normalize fills unset fields with defaults.
func (c *Config) Normalize() {
	if c.SeqLen <= 0 {
		c.SeqLen = 32
	}
	if c.BitsPerSample <= 0 {
		c.BitsPerSample = 2
	}
	if c.GuardRatio == 0 {
		c.GuardRatio = 0.8
	}
	if c.PredGuardRatio == 0 {
		// Slightly wider than Bob's guard: predicted values carry model
		// uncertainty on top of measurement noise.
		c.PredGuardRatio = 0.85
	}
	if c.KeyBlockBits <= 0 {
		c.KeyBlockBits = 64
	}
	if c.Hidden <= 0 {
		c.Hidden = 16
	}
	if c.Theta <= 0 || c.Theta >= 1 {
		c.Theta = 0.9
	}
	if c.LearnRate <= 0 {
		c.LearnRate = 5e-3
	}
	if c.WeightDecay == 0 {
		c.WeightDecay = 1e-4
	}
	c.AE.KeyBits = c.KeyBlockBits
	if c.AE.CodeDim == 0 {
		c.AE.CodeDim = c.KeyBlockBits / 2
	}
	if c.AEEpochs <= 0 {
		c.AEEpochs = 10
	}
	if c.AESamples <= 0 {
		c.AESamples = 300
	}
	switch c.FastPath {
	case FastPathOff, FastPathGEMM, FastPathInt8:
	default:
		c.FastPath = FastPathGEMM
	}
	// The reference fast-path mode also pins the reconciler to its
	// original scalar internals, so "off" really is the pre-fast-path
	// pipeline end to end.
	c.AE.Reference = c.FastPath == FastPathOff
}

// bits returns the quantization head width.
func (c Config) bits() int { return c.BitsPerSample * c.SeqLen }

func (c Config) quantConfig(guard float64) quantize.MultiBitConfig {
	return quantize.MultiBitConfig{
		BitsPerSample: c.BitsPerSample,
		GuardRatio:    guard,
		BlockSize:     c.SeqLen,
		Thresholds:    quantize.GaussianThresholds(c.BitsPerSample),
		NaturalCoding: true,
	}
}

// System is one scheme instance: the four pipeline stages composed
// behind the scheme-agnostic operations the protocol and experiment
// layers drive. New builds the Vehicle-Key slot assignment; NewScheme
// builds any registered scheme. System implements pipeline.Scheme.
type System struct {
	Cfg    Config
	Stages pipeline.Stages

	rec obs.Recorder

	// pmemo caches predictor forwards by window fingerprint. It is
	// PER-System (a clone gets a fresh, empty one): clones' weights can
	// diverge through FineTune, so sharing entries across instances
	// would poison them. Purged whenever training moves the weights.
	// nil disables memoization (baselines without an NN predictor).
	pmemo *memo.LRU[uint64, predEntry]
}

// predEntry is one memoized predictor forward. Both slices are treated
// as read-only by every consumer (Round.Select and AliceBitsAt copy
// out of them).
type predEntry struct {
	yHat []float64
	bits []byte
}

// predMemoCap bounds the per-System forward cache; entries are a few
// hundred bytes (SeqLen floats + Bits bytes).
const predMemoCap = 512

// windowFingerprint is FNV-1a over the float bits of the window — the
// memo key for predictor forwards. A 64-bit digest makes an accidental
// collision (two distinct windows sharing a key) vanishingly rare at
// cache scale (~512 live entries).
func windowFingerprint(seq []float64) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for _, v := range seq {
		b := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= uint64(byte(b >> s))
			h *= prime64
		}
	}
	return h
}

// nnPredictor is the Vehicle-Key predictor stage: the BiLSTM prediction
// + quantization network, run by Alice (or the power-rich side). mode
// (a FastPath value) selects which forward implementation serves
// Predict; training always runs the float64 reference.
type nnPredictor struct {
	cfg  nn.PredictorConfig
	net  *nn.Predictor
	mode string
}

func (p *nnPredictor) Name() string { return "bilstm" }

func (p *nnPredictor) Predict(aliceSeq []float64) ([]float64, []byte, error) {
	var yHat, zHat []float64
	switch p.mode {
	case FastPathOff:
		yHat, zHat = p.net.Forward(aliceSeq)
	case FastPathInt8:
		if p.net.Calibrated() {
			yHat, zHat = p.net.ForwardQuantized(aliceSeq)
		} else {
			// Until a post-training calibration exists, serve the
			// exact GEMM path rather than refuse.
			yHat, zHat = p.net.ForwardBatched(aliceSeq)
		}
	default:
		yHat, zHat = p.net.ForwardBatched(aliceSeq)
	}
	return yHat, nn.Bits(zHat), nil
}

// calibrationWindows bounds how many training windows feed the int8
// activation-scale calibration; max-abs statistics saturate quickly.
const calibrationWindows = 64

func (p *nnPredictor) Fit(samples []nn.TrainSample, epochs int, learnRate, weightDecay float64, src *rng.Source) []float64 {
	tr := nn.NewTrainer(p.net, learnRate, src)
	tr.Opt.WeightDecay = weightDecay
	losses := tr.Fit(samples, epochs)
	// Training moved the weights: any existing int8 snapshot is stale.
	p.net.DropCalibration()
	if p.mode == FastPathInt8 && len(samples) > 0 {
		wins := make([][]float64, 0, calibrationWindows)
		for _, s := range samples {
			wins = append(wins, s.Alice)
			if len(wins) == calibrationWindows {
				break
			}
		}
		p.net.Calibrate(wins)
	}
	return losses
}

// Clone deep-copies the network through an in-memory Save/Load
// round-trip; the initialization seed is irrelevant because Load
// overwrites every parameter. The clone's weights are byte-identical,
// so it adopts the source's int8 calibration snapshot (read-only,
// shared) instead of re-deriving it.
func (p *nnPredictor) Clone() pipeline.Predictor {
	out := &nnPredictor{cfg: p.cfg, net: nn.NewPredictor(p.cfg, rng.New(1)), mode: p.mode}
	var buf bytes.Buffer
	if err := nn.SaveParams(&buf, p.net.Params()); err != nil {
		panic("core: predictor clone save: " + err.Error())
	}
	if err := nn.LoadParams(&buf, out.net.Params()); err != nil {
		panic("core: predictor clone load: " + err.Error())
	}
	out.net.AdoptCalibration(p.net)
	return out
}

func (p *nnPredictor) Save(w io.Writer) error { return nn.SaveParams(w, p.net.Params()) }

// Load restores weights and drops any int8 calibration (it described
// the previous weights); the int8 mode serves the exact GEMM path
// until the next Train re-calibrates.
func (p *nnPredictor) Load(r io.Reader) error {
	if err := nn.LoadParams(r, p.net.Params()); err != nil {
		return err
	}
	p.net.DropCalibration()
	return nil
}

// New builds an untrained Vehicle-Key system: BiLSTM predictor,
// guard-banded multi-bit quantizer, Bloom+autoencoder reconciler,
// SHA-based amplification.
func New(cfg Config, src *rng.Source) *System {
	cfg.Normalize()
	pcfg := nn.PredictorConfig{SeqLen: cfg.SeqLen, Hidden: cfg.Hidden, Bits: cfg.bits(), Theta: cfg.Theta}
	pred := &nnPredictor{cfg: pcfg, net: nn.NewPredictor(pcfg, src.Derive("predictor")), mode: cfg.FastPath}
	ae := reconcile.NewAE(cfg.AE, src.Derive("ae"))
	var pm *memo.LRU[uint64, predEntry]
	if cfg.FastPath != FastPathOff {
		// "off" is the fully uncached reference pipeline; the memo is
		// part of the fast path, not the baseline being compared against.
		pm = memo.NewLRU[uint64, predEntry](predMemoCap)
	}
	return &System{
		Cfg: cfg,
		Stages: pipeline.Stages{
			Scheme:        DefaultScheme,
			Predictor:     pred,
			Quantizer:     pipeline.NewMultiBit(cfg.quantConfig(cfg.GuardRatio), cfg.quantConfig(cfg.PredGuardRatio)),
			Reconciler:    pipeline.NewAEStage(ae, cfg.AE, cfg.AEEpochs, cfg.AESamples),
			Amplifier:     pipeline.NewSHAAmplifier(),
			IndexExchange: true,
		},
		rec:   obs.Nop,
		pmemo: pm,
	}
}

// predictorNet exposes the concrete BiLSTM for same-package diagnostics
// and tests; it is nil for schemes without a network predictor.
func (s *System) predictorNet() *nn.Predictor {
	if p, ok := s.Stages.Predictor.(*nnPredictor); ok {
		return p.net
	}
	return nil
}

// SetRecorder routes the pipeline's per-phase duration and bit-count
// observations into r. Call it before the system is shared across
// goroutines (protocol nodes, experiment workers); the field is read-only
// afterwards. Metrics never feed results, so recording cannot perturb
// the deterministic outputs.
func (s *System) SetRecorder(r obs.Recorder) { s.rec = obs.OrNop(r) }

// recorder tolerates zero-value Systems built without New.
func (s *System) recorder() obs.Recorder {
	if s.rec == nil {
		return obs.Nop
	}
	return s.rec
}

// SchemeName identifies the registered scheme this system composes.
func (s *System) SchemeName() string {
	if s.Stages.Scheme == "" {
		return DefaultScheme
	}
	return s.Stages.Scheme
}

// BlockBits is the reconciliation unit in key bits.
func (s *System) BlockBits() int { return s.Stages.Reconciler.BlockBits() }

// SampleBits is the quantizer depth in bits per kept sample.
func (s *System) SampleBits() int { return s.Stages.Quantizer.BitsPerSample() }

// Clone returns an independent deep copy: predictor and reconciler
// state duplicated (equivalent to a Save/Load round-trip into a fresh
// same-config System), stateless stages shared, the recorder inherited.
func (s *System) Clone() *System {
	out := &System{Cfg: s.Cfg, Stages: s.Stages, rec: s.rec}
	out.Stages.Predictor = s.Stages.Predictor.Clone()
	out.Stages.Reconciler = s.Stages.Reconciler.Clone()
	if s.pmemo != nil {
		// Fresh, empty memo: the clone's weights may diverge (FineTune),
		// so it must never serve the source's cached forwards.
		out.pmemo = memo.NewLRU[uint64, predEntry](predMemoCap)
	}
	return out
}

// BobQuantize runs Bob's side: the scheme's measurement-rule quantizer
// over his measured (normalized) sequence. It returns his key bits and
// the kept sample indices he announces publicly.
func (s *System) BobQuantize(bobSeq []float64) (bits []byte, kept []int, err error) {
	started := time.Now()
	bits, kept, err = s.Stages.Quantizer.Quantize(bobSeq)
	if err != nil {
		return nil, nil, fmt.Errorf("core: Bob quantization: %w", err)
	}
	rec := s.recorder()
	rec.Observe(phaseSecQuantize, time.Since(started).Seconds())
	rec.Observe(phaseBitsQuantize, float64(len(bits)))
	return bits, kept, nil
}

// timedPredict runs the predictor stage under the fast-path latency
// histogram. It is the single point every prediction funnels through,
// memoized or not.
func (s *System) timedPredict(aliceSeq []float64) ([]float64, []byte, error) {
	started := time.Now()
	yHat, all, err := s.Stages.Predictor.Predict(aliceSeq)
	s.recorder().Observe(nnForwardSecFor(s.Cfg.FastPath), time.Since(started).Seconds())
	return yHat, all, err
}

// predict serves the predictor forward for aliceSeq, consulting the
// per-System memo when one exists. Returned slices are the cache's and
// must be treated as read-only; every current consumer only reads or
// copies out of them (pipeline.NewRound and AliceBitsAt included).
func (s *System) predict(aliceSeq []float64) ([]float64, []byte, error) {
	if s.pmemo == nil {
		return s.timedPredict(aliceSeq)
	}
	key := windowFingerprint(aliceSeq)
	rec := s.recorder()
	if e, ok := s.pmemo.Get(key); ok {
		rec.Add(cacheHitPredictor, 1)
		return e.yHat, e.bits, nil
	}
	rec.Add(cacheMissPredictor, 1)
	yHat, all, err := s.timedPredict(aliceSeq)
	if err == nil {
		s.pmemo.Put(key, predEntry{yHat: yHat, bits: all})
	}
	return yHat, all, err
}

// AliceBitsAt runs Alice's predictor over her sequence and returns her
// bit groups at the given sample indices.
func (s *System) AliceBitsAt(aliceSeq []float64, kept []int) []byte {
	_, all, err := s.predict(aliceSeq)
	if err != nil {
		return nil
	}
	b := s.SampleBits()
	out := make([]byte, 0, len(kept)*b)
	for _, idx := range kept {
		out = append(out, all[idx*b:(idx+1)*b]...)
	}
	return out
}

// AlicePrecompute runs Alice's predictor and prediction-side guard rule
// over her measured sequence, independent of anything Bob announces.
// The returned Round answers Bob's announcement (possibly several
// times, under retransmission) with a cheap set intersection.
func (s *System) AlicePrecompute(aliceSeq []float64) (pipeline.Round, error) {
	started := time.Now()
	yHat, all, err := s.predict(aliceSeq)
	if err != nil {
		return nil, fmt.Errorf("core: Alice prediction: %w", err)
	}
	_, mine, err := s.Stages.Quantizer.QuantizePredicted(yHat)
	if err != nil {
		return nil, fmt.Errorf("core: Alice quantization: %w", err)
	}
	rec := s.recorder()
	rec.Observe(phaseSecPredict, time.Since(started).Seconds())
	rec.Observe(phaseBitsPredict, float64(len(all)))
	return pipeline.NewRound(all, mine, s.SampleBits()), nil
}

// AliceSelect runs Alice's full round: the predictor, then the
// prediction-side guard rule, restricted to Bob's announced kept
// indices. It returns her bits and the final index list she announces
// back to Bob.
func (s *System) AliceSelect(aliceSeq []float64, bobKept []int) (bits []byte, kept []int) {
	r, err := s.AlicePrecompute(aliceSeq)
	if err != nil {
		return nil, nil
	}
	bits, kept, ok := r.Select(bobKept)
	if !ok {
		return nil, nil
	}
	return bits, kept
}

// BobEncode derives the public reconciliation code for one of Bob's key
// blocks; keyImage is the MAC-keying image the caller must wipe.
func (s *System) BobEncode(block, salt []byte) (code []float64, keyImage []byte, err error) {
	return s.Stages.Reconciler.BobEncode(block, salt)
}

// AliceCorrect reconciles Alice's block against Bob's public code;
// keyImage is the MAC-verification image the caller must wipe.
func (s *System) AliceCorrect(block []byte, code []float64, salt []byte) (final, keyImage []byte, err error) {
	return s.Stages.Reconciler.AliceCorrect(block, code, salt)
}

// Amplify runs the scheme's privacy amplification.
func (s *System) Amplify(bits, salt []byte) ([]byte, error) {
	return s.Stages.Amplifier.Amplify(bits, salt)
}

var _ pipeline.Scheme = (*System)(nil)

// SelectAt picks the bit groups of a quantizer result at the given final
// indices (Bob's step after Alice's announcement).
func SelectAt(bits []byte, kept []int, final []int, bitsPerSample int) []byte {
	return pipeline.SelectAt(bits, kept, final, bitsPerSample)
}

// TrainSamples converts a dataset into predictor training samples: input
// Alice's sequence; targets Bob's sequence plus Bob's guard-banded bits,
// with the BCE loss masked to the kept positions.
func (s *System) TrainSamples(ds *trace.Dataset) ([]nn.TrainSample, error) {
	// Stride by the scheme quantizer's depth, not Cfg.BitsPerSample: the
	// two differ for baseline quantizers (han: 3, lora-key/gao: 1), and
	// striding by the config depth would interleave wrong bit groups.
	b := s.SampleBits()
	width := b * s.Cfg.SeqLen
	out := make([]nn.TrainSample, 0, len(ds.Samples))
	for _, smp := range ds.Samples {
		resBits, resKept, err := s.Stages.Quantizer.Quantize(smp.Bob)
		if err != nil {
			return nil, err
		}
		bits := make([]byte, width)
		mask := make([]bool, width)
		for i, idx := range resKept {
			copy(bits[idx*b:(idx+1)*b], resBits[i*b:(i+1)*b])
			for k := 0; k < b; k++ {
				mask[idx*b+k] = true
			}
		}
		out = append(out, nn.TrainSample{Alice: smp.Alice, Bob: smp.Bob, Bits: bits, Mask: mask})
	}
	return out, nil
}

// Train fits the trainable stages on the dataset for the given epochs,
// returning the predictor's per-epoch losses. Stages without trainable
// parameters (every baseline) are left untouched.
func (s *System) Train(ds *trace.Dataset, epochs int, src *rng.Source) ([]float64, error) {
	tp, trainPred := s.Stages.Predictor.(pipeline.TrainablePredictor)
	tr, trainRec := s.Stages.Reconciler.(pipeline.TrainableReconciler)
	if !trainPred && !trainRec {
		// Nothing to fit (every baseline): skip sample assembly rather
		// than build predictor targets no stage will consume.
		return nil, nil
	}
	samples, err := s.TrainSamples(ds)
	if err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, errors.New("core: empty training set")
	}
	var losses []float64
	if trainPred {
		losses = tp.Fit(samples, epochs, s.Cfg.LearnRate, s.Cfg.WeightDecay, src.Derive("fit"))
		// Cached forwards describe the pre-training weights.
		s.pmemo.Purge()
	}
	if trainRec {
		tr.Fit(src.Derive("ae-fit"))
	}
	return losses, nil
}

// FineTune continues predictor training on new-environment data without
// reinitializing, the transfer-learning mode of Fig. 14.
func (s *System) FineTune(ds *trace.Dataset, epochs int, src *rng.Source) ([]float64, error) {
	samples, err := s.TrainSamples(ds)
	if err != nil {
		return nil, err
	}
	tp, ok := s.Stages.Predictor.(pipeline.TrainablePredictor)
	if !ok {
		return nil, errors.New("core: scheme has no trainable predictor")
	}
	losses := tp.Fit(samples, epochs, s.Cfg.LearnRate, s.Cfg.WeightDecay, src.Derive("finetune"))
	s.pmemo.Purge()
	return losses, nil
}

// KeyResult reports one completed key block.
type KeyResult struct {
	PreAgreement  float64 // bit agreement before reconciliation
	PostAgreement float64 // bit agreement after reconciliation
	Exact         bool    // keys identical after reconciliation
	AliceKey      []byte  // Alice's 128-bit key after privacy amplification
	BobKey        []byte  // Bob's 128-bit key
	BitsGenerated int
	LeakedBits    int     // public bits revealed during reconciliation
	Duration      float64 // probing time consumed by this block
}

// KeyStream accumulates kept key material across probing rounds and emits
// a KeyResult whenever a full reconciliation block is available.
type KeyStream struct {
	sys      *System
	salt     []byte
	aliceBuf []byte
	bobBuf   []byte
	duration float64
	emitted  int
}

// NewKeyStream starts a stream for the session identified by salt.
func (s *System) NewKeyStream(salt []byte) *KeyStream {
	return &KeyStream{sys: s, salt: append([]byte{}, salt...)}
}

// Push feeds one probing round's aligned sample through quantization and
// selection, appending the kept material. It returns a KeyResult for each
// completed block (usually zero or one).
//
// Protocol messages modeled: Bob announces his guard-band kept indices;
// Alice replies with the confidence-gated subset; both extract bits at
// the final indices. Indices reveal nothing about measurement values.
func (ks *KeyStream) Push(smp trace.Sample) ([]KeyResult, error) {
	bobBits, bobKept, err := ks.sys.BobQuantize(smp.Bob)
	if err != nil {
		return nil, err
	}
	aliceBits, finalKept := ks.sys.AliceSelect(smp.Alice, bobKept)
	bobFinal := SelectAt(bobBits, bobKept, finalKept, ks.sys.SampleBits())
	ks.bobBuf = append(ks.bobBuf, bobFinal...)
	ks.aliceBuf = append(ks.aliceBuf, aliceBits...)
	ks.duration += smp.Duration
	// The probe phase's cost is the channel probing time the sample
	// consumed (modeled, not wall-clock); its yield is the kept bits.
	rec := ks.sys.recorder()
	rec.Observe(phaseSecProbe, smp.Duration)
	rec.Observe(phaseBitsProbe, float64(len(bobFinal)))

	var out []KeyResult
	block := ks.sys.BlockBits()
	for len(ks.bobBuf) >= block {
		res, err := ks.emit(ks.aliceBuf[:block], ks.bobBuf[:block])
		if err != nil {
			return nil, err
		}
		ks.aliceBuf = ks.aliceBuf[block:]
		ks.bobBuf = ks.bobBuf[block:]
		out = append(out, res)
	}
	return out, nil
}

func (ks *KeyStream) emit(aliceBits, bobBits []byte) (KeyResult, error) {
	ks.emitted++
	salt := append(append([]byte{}, ks.salt...), byte(ks.emitted), byte(ks.emitted>>8))
	res := KeyResult{
		BitsGenerated: len(bobBits),
		Duration:      ks.duration,
		PreAgreement:  agreement(aliceBits, bobBits),
	}
	ks.duration = 0
	rec := ks.sys.recorder()

	started := time.Now()
	out, err := ks.sys.Stages.Reconciler.Reconcile(aliceBits, bobBits, salt)
	if err != nil {
		return KeyResult{}, fmt.Errorf("core: reconcile: %w", err)
	}
	rec.Observe(phaseSecReconcile, time.Since(started).Seconds())
	rec.Observe(phaseBitsReconcile, float64(len(bobBits)))
	res.PostAgreement = out.Agreement()
	res.Exact = out.Exact()
	res.LeakedBits = out.LeakedKeyBits
	started = time.Now()
	if res.AliceKey, err = ks.sys.Amplify(out.AliceKey, salt); err != nil {
		return KeyResult{}, err
	}
	if res.BobKey, err = ks.sys.Amplify(out.BobKey, salt); err != nil {
		return KeyResult{}, err
	}
	rec.Observe(phaseSecAmplify, time.Since(started).Seconds())
	rec.Observe(phaseBitsAmplify, float64(len(res.BobKey)*8))
	return res, nil
}

func agreement(a, b []byte) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	return float64(same) / float64(len(a))
}

// Save serializes the trained stages (predictor, then reconciler; only
// stages with persistent state write anything).
func (s *System) Save(w io.Writer) error {
	for _, st := range []any{s.Stages.Predictor, s.Stages.Reconciler} {
		if p, ok := st.(pipeline.Persistent); ok {
			if err := p.Save(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// Load restores a system saved by Save into a same-config System.
func (s *System) Load(r io.Reader) error {
	for _, st := range []any{s.Stages.Predictor, s.Stages.Reconciler} {
		if p, ok := st.(pipeline.Persistent); ok {
			if err := p.Load(r); err != nil {
				return err
			}
		}
	}
	// Restored weights invalidate any forwards cached under the old ones.
	s.pmemo.Purge()
	return nil
}
