package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The loader is shared across all tests in this package so the standard
// library is type-checked once, not once per test.
var (
	loaderOnce sync.Once
	sharedL    *Loader
	loaderErr  error
)

func goldenLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { sharedL, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return sharedL
}

// wantRe matches a golden expectation marker on a violating line:
//
//	... // want "check"
var wantRe = regexp.MustCompile(`// want "([a-z]+)"`)

// finding is the (file, line, check) identity of one diagnostic,
// with the file reduced to its base name.
type finding struct {
	file  string
	line  int
	check string
}

// readWants scans the fixture sources in dir for want markers.
func readWants(t *testing.T, dir string) map[finding]bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir(%s): %v", dir, err)
	}
	wants := make(map[finding]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				wants[finding{e.Name(), i + 1, m[1]}] = true
			}
		}
	}
	return wants
}

// lintDir loads the package in dir and runs the given analyzers over it.
func lintDir(t *testing.T, dir string, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	l := goldenLoader(t)
	pkgs, err := l.Load(dir)
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	return Run(l.Module(), pkgs, analyzers)
}

// TestGolden checks, per analyzer, that every marked violation in its
// golden packages is reported at exactly the marked file and line, that
// nothing unmarked is reported, and that //vklint:ignore comments in the
// fixtures suppress their findings (a suppressed line carries no want
// marker, so a surviving diagnostic there fails the "unexpected" check).
func TestGolden(t *testing.T) {
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			root := filepath.Join("testdata", a.Name)
			entries, err := os.ReadDir(root)
			if err != nil {
				t.Fatalf("no golden packages for %s: %v", a.Name, err)
			}
			ran := 0
			for _, e := range entries {
				if !e.IsDir() {
					continue
				}
				ran++
				dir := filepath.Join(root, e.Name())
				want := readWants(t, dir)
				if len(want) == 0 {
					t.Fatalf("%s has no want markers; the golden package proves nothing", dir)
				}
				got := make(map[finding]bool)
				for _, d := range lintDir(t, dir, []*Analyzer{a}) {
					got[finding{filepath.Base(d.Pos.Filename), d.Pos.Line, d.Check}] = true
				}
				for f := range want {
					if !got[f] {
						t.Errorf("%s: missing diagnostic %s:%d (%s)", dir, f.file, f.line, f.check)
					}
				}
				for f := range got {
					if !want[f] {
						t.Errorf("%s: unexpected diagnostic %s:%d (%s)", dir, f.file, f.line, f.check)
					}
				}
			}
			if ran == 0 {
				t.Fatalf("no golden package directories under %s", root)
			}
		})
	}
}

// TestSuppressionDirectivesPresent guards the fixtures themselves: every
// analyzer's golden package must exercise the ignore escape hatch, so a
// regression that stops parsing directives cannot slip through as
// "nothing was suppressed, nothing was expected".
func TestSuppressionDirectivesPresent(t *testing.T) {
	for _, a := range Analyzers() {
		pattern := filepath.Join("testdata", a.Name, "*", "ignored.go")
		matches, err := filepath.Glob(pattern)
		if err != nil || len(matches) == 0 {
			t.Errorf("analyzer %s has no ignored.go fixture (%s)", a.Name, pattern)
			continue
		}
		for _, m := range matches {
			data, err := os.ReadFile(m)
			if err != nil {
				t.Fatalf("ReadFile: %v", err)
			}
			if !strings.Contains(string(data), "//"+ignoreDirective) {
				t.Errorf("%s does not contain a %s directive", m, ignoreDirective)
			}
		}
	}
}

// TestCleanPackage runs every analyzer over the compliant fixture and
// expects silence.
func TestCleanPackage(t *testing.T) {
	dir := filepath.Join("testdata", "clean", "secure")
	diags := lintDir(t, dir, Analyzers())
	for _, d := range diags {
		t.Errorf("clean package produced a diagnostic: %s", d)
	}
}

// TestRealTreeClean is the enforcement test: vklint over every package
// in the module must report nothing. A new violation anywhere in the
// repository fails this test before CI even reaches the lint job.
func TestRealTreeClean(t *testing.T) {
	l := goldenLoader(t)
	dirs, err := l.Match(l.Module().Root + "/...")
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if len(dirs) < 10 {
		t.Fatalf("Match found only %d package dirs; pattern expansion is broken", len(dirs))
	}
	pkgs, err := l.Load(dirs...)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags := Run(l.Module(), pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("real tree is not lint-clean: %s", d)
	}
	if HasErrors(diags) {
		t.Error("vklint would exit non-zero on this tree")
	}
}
