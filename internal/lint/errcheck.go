package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

func init() {
	register(&Analyzer{
		Name:     "errcheck",
		Doc:      "errors from transport/protocol/crypto calls and real I/O must not be silently discarded",
		Severity: Error,
		Run:      runErrcheck,
	})
}

// errcheckModulePkgs are the module-internal packages whose error
// returns are load-bearing for the security argument: a dropped
// transport or protocol error turns a detected failure (lost CONFIRM,
// failed MAC, closed link) into silent key disagreement.
var errcheckModulePkgs = []string{
	"internal/transport", "internal/protocol", "internal/secure",
	"internal/amplify", "internal/group", "internal/attack",
}

// errcheckIOPkgs are standard-library packages whose Close/Flush/Write
// style errors report real I/O failure (a short CSV write, an unsent
// datagram) and must be looked at.
var errcheckIOPkgs = map[string]bool{
	"encoding/csv": true, "bufio": true, "os": true, "net": true,
}

var errcheckIOMethods = map[string]bool{
	"Close": true, "Flush": true, "Write": true, "WriteAll": true, "Sync": true,
}

// fprintFuncs are the fmt functions that write to an explicit writer.
var fprintFuncs = map[string]bool{"Fprint": true, "Fprintf": true, "Fprintln": true}

// runErrcheck flags statements that call an error-returning function and
// drop the result on the floor: bare expression statements plus go/defer
// statements. Assigning the error to _ is an explicit, greppable
// acknowledgement and is allowed; silence is not.
func runErrcheck(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if isGenerated(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			}
			if call == nil {
				return true
			}
			if !lastErrorResult(info, call) {
				return true
			}
			if why := pass.discardReason(info, call); why != "" {
				obj := calleeObject(info, call)
				pass.Reportf(call.Pos(),
					"error from %s is silently discarded (%s); handle it or assign to _",
					calleeLabel(obj), why)
			}
			return true
		})
	}
}

// discardReason classifies a discarded-error call as a finding,
// returning a short reason, or "" when the call is out of scope.
func (p *Pass) discardReason(info *types.Info, call *ast.CallExpr) string {
	obj := calleeObject(info, call)
	if obj == nil {
		return ""
	}
	pkgPath := objectPkgPath(obj)
	// Module-internal protocol-critical packages.
	for _, suffix := range errcheckModulePkgs {
		if pkgPath == p.Module.Path+"/"+suffix || strings.HasSuffix(pkgPath, "/"+suffix) {
			return "protocol-critical call"
		}
	}
	// I/O finalizers from the standard library.
	if errcheckIOPkgs[pkgPath] && errcheckIOMethods[obj.Name()] {
		return "I/O may have failed"
	}
	// fmt.Fprint* to a writer that can actually fail. Writes into
	// strings.Builder and bytes.Buffer are infallible by contract and are
	// exempt — that is why the exp package's report rendering is clean.
	if pkgPath == "fmt" && fprintFuncs[obj.Name()] && len(call.Args) > 0 {
		if tv, ok := info.Types[call.Args[0]]; ok {
			switch tv.Type.String() {
			case "*strings.Builder", "*bytes.Buffer":
				return ""
			}
			return "write to " + tv.Type.String() + " can fail"
		}
	}
	return ""
}

func calleeLabel(obj types.Object) string {
	if obj == nil {
		return "call"
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv := sig.Recv().Type().String()
			if i := strings.LastIndex(recv, "."); i >= 0 {
				star := ""
				if strings.HasPrefix(recv, "*") {
					star = "*"
				}
				recv = star + recv[i+1:]
			}
			return "(" + recv + ")." + obj.Name()
		}
	}
	if pkg := obj.Pkg(); pkg != nil {
		return pkg.Name() + "." + obj.Name()
	}
	return obj.Name()
}
