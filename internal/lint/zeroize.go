package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// zeroizeScope is the set of packages that handle live key material.
var zeroizeScope = []string{"secure", "protocol", "amplify", "group", "pipeline"}

func init() {
	register(&Analyzer{
		Name:     "zeroize",
		Doc:      "intermediate key-material buffers must be wiped before the function returns",
		Severity: Error,
		Run:      runZeroize,
	})
}

// runZeroize flags local []byte variables that hold key material (name
// contains "key"/"secret") and neither escape the function — via a
// return statement or a composite literal — nor get wiped before it
// ends. Go does not scrub dead heap memory: an un-wiped intermediate
// (e.g. a Bloom-domain key image) lingers until the GC reuses the
// allocation, exactly the residue a memory-disclosure bug or a core
// dump hands to an attacker. Wipe with secure.Wipe (or an explicit
// zeroing loop), which the analyzer recognizes.
func runZeroize(pass *Pass) {
	if !pass.InScope(zeroizeScope...) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if isGenerated(f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFuncZeroize(pass, info, fn)
		}
	}
}

// secretLocal is one candidate key-material variable.
type secretLocal struct {
	id  *ast.Ident
	obj types.Object
}

func checkFuncZeroize(pass *Pass, info *types.Info, fn *ast.FuncDecl) {
	// Collect locals declared in this function whose name and type mark
	// them as key material. Parameters are excluded: they belong to the
	// caller, and wiping them here would destroy shared buffers.
	var locals []secretLocal
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closures are analyzed with their own frame rules
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := info.Defs[id]
				if obj == nil || !isByteSlice(obj.Type()) || !isKeyMaterialName(id.Name) {
					continue
				}
				locals = append(locals, secretLocal{id, obj})
			}
		case *ast.ValueSpec:
			for _, id := range n.Names {
				if id.Name == "_" {
					continue
				}
				obj := info.Defs[id]
				if obj == nil || !isByteSlice(obj.Type()) || !isKeyMaterialName(id.Name) {
					continue
				}
				locals = append(locals, secretLocal{id, obj})
			}
		}
		return true
	})
	if len(locals) == 0 {
		return
	}
	for _, loc := range locals {
		if escapesOrWiped(info, fn.Body, loc.obj) {
			continue
		}
		pass.Reportf(loc.id.Pos(),
			"key material %q is neither returned nor wiped before %s returns; call secure.Wipe(%s) when it is dead",
			loc.id.Name, fn.Name.Name, loc.id.Name)
	}
}

// escapesOrWiped reports whether the object escapes the function (return
// statement or composite literal, where ownership transfers) or is
// explicitly wiped (a recognized wipe call or a zeroing range loop).
func escapesOrWiped(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if usesObject(info, n, obj) {
				ok = true
				return false
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if usesObject(info, elt, obj) {
					ok = true
					return false
				}
			}
		case *ast.CallExpr:
			if isWipeCall(n) {
				for _, arg := range n.Args {
					if usesObject(info, arg, obj) {
						ok = true
						return false
					}
				}
			}
		case *ast.RangeStmt:
			if isZeroingLoop(info, n, obj) {
				ok = true
				return false
			}
		}
		return true
	})
	return ok
}

// wipeNames are the function names the analyzer accepts as wipes.
var wipeNames = map[string]bool{
	"Wipe": true, "wipe": true,
	"Zero": true, "zero": true,
	"Zeroize": true, "zeroize": true,
	"Scrub": true, "scrub": true,
}

func isWipeCall(call *ast.CallExpr) bool {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return wipeNames[fn.Name]
	case *ast.SelectorExpr:
		return wipeNames[fn.Sel.Name]
	}
	return false
}

// isZeroingLoop recognizes the manual wipe idiom:
//
//	for i := range buf { buf[i] = 0 }
func isZeroingLoop(info *types.Info, loop *ast.RangeStmt, obj types.Object) bool {
	id, ok := ast.Unparen(loop.X).(*ast.Ident)
	if !ok || info.Uses[id] != obj {
		return false
	}
	for _, stmt := range loop.Body.List {
		assign, ok := stmt.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			continue
		}
		idx, ok := assign.Lhs[0].(*ast.IndexExpr)
		if !ok {
			continue
		}
		base, ok := ast.Unparen(idx.X).(*ast.Ident)
		if !ok || info.Uses[base] != obj {
			continue
		}
		if lit, ok := assign.Rhs[0].(*ast.BasicLit); ok && lit.Value == "0" {
			return true
		}
	}
	return false
}
