package lint

import (
	"go/ast"
	"strconv"
)

// norandScope is the set of protocol-critical packages in which every
// random draw must come from crypto/rand or the explicitly seeded
// internal/rng streams. A math/rand draw here would silently weaken key
// material (predictable "randomness") or break the deterministic replay
// the fault-injection tests depend on.
var norandScope = []string{"secure", "protocol", "quantize", "reconcile", "amplify"}

func init() {
	register(&Analyzer{
		Name:     "norand",
		Doc:      "protocol-critical packages must not use math/rand or time-seeded randomness",
		Severity: Error,
		Run:      runNorand,
	})
}

func runNorand(pass *Pass) {
	if !pass.InScope(norandScope...) {
		return
	}
	for _, f := range pass.Pkg.Files {
		if isGenerated(f) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch path {
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(),
					"package %s must not import %s; draw from crypto/rand or a seeded internal/rng stream",
					pass.Pkg.Name, path)
			}
		}
		// Time-seeded randomness is the classic smuggling path: even with
		// math/rand banned, seeding any PRNG from the wall clock destroys
		// both unpredictability claims and reproducibility.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPkgFunc(pass.Pkg.Info, call, "time", "Now") {
				pass.Reportf(call.Pos(),
					"package %s must not read the wall clock; randomness and timing must come from seeded sources",
					pass.Pkg.Name)
			}
			return true
		})
	}
}
