package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module identifies the Go module under analysis.
type Module struct {
	// Root is the absolute directory containing go.mod.
	Root string
	// Path is the module path declared in go.mod.
	Path string
}

// Package is one loaded, type-checked package (non-test files only).
type Package struct {
	Dir        string
	ImportPath string
	Name       string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader parses and type-checks module packages on demand, resolving
// module-internal imports from source and everything else (the standard
// library) through go/importer's source importer. Test files are not
// loaded: the invariants vklint enforces are about shipped code, and
// tests legitimately compare keys byte-for-byte.
type Loader struct {
	Fset *token.FileSet

	mod     Module
	std     types.Importer
	pkgs    map[string]*Package // keyed by directory
	loading map[string]bool     // cycle detection, keyed by directory
}

// NewLoader locates the module containing dir (walking up to go.mod) and
// returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	mod, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	// The source importer type-checks the standard library from $GOROOT/src
	// with the default build context; cgo-tagged variants (net, os/user)
	// cannot be type-checked without running cgo, so force the pure-Go
	// paths. This only affects type checking, never the built binary.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		mod:     mod,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// Module returns the module the loader is rooted in.
func (l *Loader) Module() Module { return l.mod }

// findModule walks up from dir to the enclosing go.mod.
func findModule(dir string) (Module, error) {
	for d := dir; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return Module{Root: d, Path: strings.TrimSpace(rest)}, nil
				}
			}
			return Module{}, fmt.Errorf("lint: %s has no module directive", filepath.Join(d, "go.mod"))
		}
		if filepath.Dir(d) == d {
			return Module{}, fmt.Errorf("lint: no go.mod found above %s", dir)
		}
	}
}

// Match expands package patterns into package directories. A pattern is
// either a directory or a directory followed by "/...", which walks
// recursively; like the go tool, the walk skips testdata, vendor, and
// hidden or underscore-prefixed directories. Relative patterns resolve
// against the current working directory.
func (l *Loader) Match(patterns ...string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		root, err := filepath.Abs(pat)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if !recursive {
			if hasGoFiles(root) {
				add(root)
			}
			continue
		}
		err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if isSourceFile(e) {
			return true
		}
	}
	return false
}

func isSourceFile(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// Load parses and type-checks the packages in the given directories.
func (l *Loader) Load(dirs ...string) ([]*Package, error) {
	out := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// loadDir loads one directory's package, caching the result.
func (l *Loader) loadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	if pkg, ok := l.pkgs[abs]; ok {
		return pkg, nil
	}
	if l.loading[abs] {
		return nil, fmt.Errorf("lint: import cycle through %s", abs)
	}
	l.loading[abs] = true
	defer delete(l.loading, abs)

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if !isSourceFile(e) {
			continue
		}
		path := filepath.Join(abs, e.Name())
		f, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go source files in %s", abs)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []string
	conf := types.Config{
		Importer: (*moduleImporter)(l),
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	importPath := l.importPathFor(abs)
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		shown := typeErrs
		if len(shown) > 5 {
			shown = shown[:5]
		}
		return nil, fmt.Errorf("lint: type-checking %s failed:\n  %s", abs, strings.Join(shown, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", abs, err)
	}
	pkg := &Package{
		Dir:        abs,
		ImportPath: importPath,
		Name:       tpkg.Name(),
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[abs] = pkg
	return pkg, nil
}

// importPathFor maps a directory inside the module to its import path.
// Directories outside the module root (never hit in practice) fall back
// to the directory path itself, which keeps diagnostics meaningful.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.mod.Root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(dir)
	}
	if rel == "." {
		return l.mod.Path
	}
	return l.mod.Path + "/" + filepath.ToSlash(rel)
}

// moduleImporter resolves imports during type checking: module-internal
// paths load from source through the loader (sharing its cache), and all
// other paths — the standard library — go through the source importer.
type moduleImporter Loader

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(m)
	if path == l.mod.Path || strings.HasPrefix(path, l.mod.Path+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.mod.Path), "/")
		pkg, err := l.loadDir(filepath.Join(l.mod.Root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
