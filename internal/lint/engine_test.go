package lint

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		comment string
		checks  []string
		ok      bool
	}{
		{"//vklint:ignore", []string{"*"}, true},
		{"// vklint:ignore", []string{"*"}, true},
		{"//vklint:ignore consttime", []string{"consttime"}, true},
		{"//vklint:ignore consttime,zeroize", []string{"consttime", "zeroize"}, true},
		{"//vklint:ignore consttime zeroize -- tag is public", []string{"consttime", "zeroize"}, true},
		{"//vklint:ignore -- wipe happens in the caller", []string{"*"}, true},
		{"// just a comment", nil, false},
		{"//vklint:ignored typo", nil, false},
	}
	for _, c := range cases {
		checks, ok := parseIgnore(c.comment)
		if ok != c.ok {
			t.Errorf("parseIgnore(%q) ok = %v, want %v", c.comment, ok, c.ok)
			continue
		}
		if ok && !reflect.DeepEqual(checks, c.checks) {
			t.Errorf("parseIgnore(%q) = %v, want %v", c.comment, checks, c.checks)
		}
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil {
		t.Fatalf("Select(\"\"): %v", err)
	}
	if len(all) != len(Analyzers()) {
		t.Fatalf("Select(\"\") returned %d analyzers, want %d", len(all), len(Analyzers()))
	}
	two, err := Select("norand, zeroize")
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if len(two) != 2 || two[0].Name != "norand" || two[1].Name != "zeroize" {
		t.Fatalf("Select(\"norand, zeroize\") = %v", names(two))
	}
	if _, err := Select("nosuchcheck"); err == nil {
		t.Fatal("Select with an unknown check did not error")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"allocbound", "consttime", "detrand", "errcheck", "keyflow", "locksafe", "netdeadline", "norand", "obsnop", "stageiface", "zeroize"}
	got := names(Analyzers())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("registered analyzers = %v, want %v", got, want)
	}
	for _, a := range Analyzers() {
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
	}
}

func TestSecretNameHeuristics(t *testing.T) {
	secret := []string{"macKey", "sessionKey", "hmacTag", "secret", "keyBits", "expectedMAC"}
	for _, n := range secret {
		if !isSecretName(n) {
			t.Errorf("isSecretName(%q) = false, want true", n)
		}
	}
	public := []string{"index", "window", "payload", "monkey", "donkeyRide", "keyboard"}
	for _, n := range public {
		if isSecretName(n) {
			t.Errorf("isSecretName(%q) = true, want false", n)
		}
	}
	if !isKeyMaterialName("roundKey") || isKeyMaterialName("macTag") {
		t.Error("isKeyMaterialName should accept roundKey and reject macTag")
	}
}

// TestEngineFixture drives the engine-behavior fixture: a finding whose
// statement spans two lines is suppressed by a directive above its
// opening line, and a directive naming a nonexistent check produces the
// engine's unknown-check warning instead of silently suppressing
// nothing.
func TestEngineFixture(t *testing.T) {
	analyzers, err := Select("keyflow")
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	diags := lintDir(t, "testdata/engine/pipeline", analyzers)
	var warns []Diagnostic
	for _, d := range diags {
		if d.Check == "keyflow" {
			t.Errorf("multi-line finding escaped its suppression: %s", d)
			continue
		}
		warns = append(warns, d)
	}
	if len(warns) != 1 {
		t.Fatalf("got %d engine diagnostics, want exactly 1 unknown-check warning: %v", len(warns), warns)
	}
	w := warns[0]
	if w.Check != "vklint" || w.Severity != Warn {
		t.Errorf("unknown-check warning = check %q severity %s, want vklint/warn", w.Check, w.Severity)
	}
	if !strings.Contains(w.Message, `"keyflwo"`) {
		t.Errorf("warning does not name the typoed check: %s", w.Message)
	}
}

// TestLoadErrorPath pins the engine's behavior on a package that does
// not type-check: Load must fail with a diagnosis, not panic, and the
// message must carry the type-checker's complaint.
func TestLoadErrorPath(t *testing.T) {
	l := goldenLoader(t)
	_, err := l.Load("testdata/broken/transport")
	if err == nil {
		t.Fatal("Load of a type-broken package succeeded")
	}
	for _, want := range []string{"type-checking", "undefinedSymbol"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("load error %q does not mention %q", err, want)
		}
	}
}

func TestHasErrors(t *testing.T) {
	if HasErrors(nil) {
		t.Error("HasErrors(nil) = true")
	}
	if HasErrors([]Diagnostic{{Severity: Warn}}) {
		t.Error("a lone warning should not fail the build")
	}
	if !HasErrors([]Diagnostic{{Severity: Warn}, {Severity: Error}}) {
		t.Error("an error-severity diagnostic must fail the build")
	}
}
