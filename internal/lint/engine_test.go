package lint

import (
	"reflect"
	"testing"
)

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		comment string
		checks  []string
		ok      bool
	}{
		{"//vklint:ignore", []string{"*"}, true},
		{"// vklint:ignore", []string{"*"}, true},
		{"//vklint:ignore consttime", []string{"consttime"}, true},
		{"//vklint:ignore consttime,zeroize", []string{"consttime", "zeroize"}, true},
		{"//vklint:ignore consttime zeroize -- tag is public", []string{"consttime", "zeroize"}, true},
		{"//vklint:ignore -- wipe happens in the caller", []string{"*"}, true},
		{"// just a comment", nil, false},
		{"//vklint:ignored typo", nil, false},
	}
	for _, c := range cases {
		checks, ok := parseIgnore(c.comment)
		if ok != c.ok {
			t.Errorf("parseIgnore(%q) ok = %v, want %v", c.comment, ok, c.ok)
			continue
		}
		if ok && !reflect.DeepEqual(checks, c.checks) {
			t.Errorf("parseIgnore(%q) = %v, want %v", c.comment, checks, c.checks)
		}
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil {
		t.Fatalf("Select(\"\"): %v", err)
	}
	if len(all) != len(Analyzers()) {
		t.Fatalf("Select(\"\") returned %d analyzers, want %d", len(all), len(Analyzers()))
	}
	two, err := Select("norand, zeroize")
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if len(two) != 2 || two[0].Name != "norand" || two[1].Name != "zeroize" {
		t.Fatalf("Select(\"norand, zeroize\") = %v", names(two))
	}
	if _, err := Select("nosuchcheck"); err == nil {
		t.Fatal("Select with an unknown check did not error")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"consttime", "detrand", "errcheck", "locksafe", "norand", "obsnop", "stageiface", "zeroize"}
	got := names(Analyzers())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("registered analyzers = %v, want %v", got, want)
	}
	for _, a := range Analyzers() {
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
	}
}

func TestSecretNameHeuristics(t *testing.T) {
	secret := []string{"macKey", "sessionKey", "hmacTag", "secret", "keyBits", "expectedMAC"}
	for _, n := range secret {
		if !isSecretName(n) {
			t.Errorf("isSecretName(%q) = false, want true", n)
		}
	}
	public := []string{"index", "window", "payload", "monkey", "donkeyRide", "keyboard"}
	for _, n := range public {
		if isSecretName(n) {
			t.Errorf("isSecretName(%q) = true, want false", n)
		}
	}
	if !isKeyMaterialName("roundKey") || isKeyMaterialName("macTag") {
		t.Error("isKeyMaterialName should accept roundKey and reject macTag")
	}
}

func TestHasErrors(t *testing.T) {
	if HasErrors(nil) {
		t.Error("HasErrors(nil) = true")
	}
	if HasErrors([]Diagnostic{{Severity: Warn}}) {
		t.Error("a lone warning should not fail the build")
	}
	if !HasErrors([]Diagnostic{{Severity: Warn}, {Severity: Error}}) {
		t.Error("an error-severity diagnostic must fail the build")
	}
}
