package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

func init() {
	register(&Analyzer{
		Name:     "locksafe",
		Doc:      "locks must not be copied by value, and no network Send/Recv may run while a lock is held",
		Severity: Error,
		Run:      runLocksafe,
	})
}

// runLocksafe guards the two concurrency invariants the transport and
// protocol layers depend on:
//
//  1. No sync.Mutex/RWMutex (or type containing one) is received or
//     passed by value — a copied lock silently splits into two
//     independent locks and the critical section evaporates.
//  2. No transport Send/Recv/RecvTimeout runs while a mutex is held.
//     Transport calls block (UDP syscalls, timers, in-memory channels);
//     holding a node or injector lock across one stalls every other
//     goroutine touching that state for up to a full receive timeout,
//     and is one reordered Close away from deadlock.
func runLocksafe(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if isGenerated(f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkLockCopies(pass, info, fn)
			if fn.Body != nil {
				walkLockStmts(pass, info, fn.Body.List, make(map[string]bool))
			}
		}
	}
}

// checkLockCopies flags by-value receivers and parameters of lock-bearing
// types.
func checkLockCopies(pass *Pass, info *types.Info, fn *ast.FuncDecl) {
	flag := func(fl *ast.Field, kind string) {
		if fl.Type == nil {
			return
		}
		tv, ok := info.Types[fl.Type]
		if !ok {
			return
		}
		if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
			return
		}
		if typeContainsMutex(tv.Type) {
			pass.Reportf(fl.Pos(),
				"%s of %s passes a lock by value; use a pointer so the critical section is shared",
				kind, fn.Name.Name)
		}
	}
	if fn.Recv != nil {
		for _, fl := range fn.Recv.List {
			flag(fl, "receiver")
		}
	}
	if fn.Type.Params != nil {
		for _, fl := range fn.Type.Params.List {
			flag(fl, "parameter")
		}
	}
}

// transportMethods are the blocking calls that must not run under a lock.
var transportMethods = map[string]bool{"Send": true, "Recv": true, "RecvTimeout": true}

// walkLockStmts tracks which mutexes are held through a statement list.
// Straight-line Lock/Unlock pairs update the set in source order;
// nested control flow is analyzed with a copy of the set (conservative:
// an unlock inside a branch does not clear the lock for code after the
// branch); function literals start with an empty set, since they run on
// their own goroutine or at defer time.
func walkLockStmts(pass *Pass, info *types.Info, stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.BlockStmt:
			walkLockStmts(pass, info, s.List, held)
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held to the end of the
			// function — exactly the case where a later Send must be
			// flagged — so it deliberately does not clear the set.
			scanExprForLocks(pass, info, s.Call, held, false)
		case *ast.IfStmt:
			scanStmtExprs(pass, info, s.Init, held)
			scanExprForLocks(pass, info, s.Cond, held, true)
			walkLockStmts(pass, info, s.Body.List, copySet(held))
			if s.Else != nil {
				walkLockStmts(pass, info, []ast.Stmt{s.Else}, copySet(held))
			}
		case *ast.ForStmt:
			walkLockStmts(pass, info, s.Body.List, copySet(held))
		case *ast.RangeStmt:
			walkLockStmts(pass, info, s.Body.List, copySet(held))
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkLockStmts(pass, info, cc.Body, copySet(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkLockStmts(pass, info, cc.Body, copySet(held))
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkLockStmts(pass, info, cc.Body, copySet(held))
				}
			}
		case *ast.LabeledStmt:
			walkLockStmts(pass, info, []ast.Stmt{s.Stmt}, held)
		default:
			scanStmtExprs(pass, info, stmt, held)
		}
	}
}

func copySet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// scanStmtExprs handles the straight-line statements (expression
// statements, assignments, returns): every call inside is classified in
// traversal order.
func scanStmtExprs(pass *Pass, info *types.Info, stmt ast.Stmt, held map[string]bool) {
	if stmt == nil {
		return
	}
	scanExprForLocks(pass, info, stmt, held, true)
}

// scanExprForLocks walks a subtree classifying calls: Lock/Unlock
// mutate the held set (when mutate is true), transport calls under a
// non-empty set are reported, and function literals recurse with a
// fresh set.
func scanExprForLocks(pass *Pass, info *types.Info, root ast.Node, held map[string]bool, mutate bool) {
	if root == nil {
		return
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			walkLockStmts(pass, info, n.Body.List, make(map[string]bool))
			return false
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch name {
			case "Lock", "RLock", "Unlock", "RUnlock":
				tv, ok := info.Types[sel.X]
				if ok && isMutexType(tv.Type) && mutate {
					key := renderExpr(sel.X)
					if name == "Lock" || name == "RLock" {
						held[key] = true
					} else {
						delete(held, key)
					}
				}
			case "Send", "Recv", "RecvTimeout":
				if len(held) == 0 {
					return true
				}
				obj := info.Uses[sel.Sel]
				if obj == nil {
					return true
				}
				pkgPath := objectPkgPath(obj)
				if obj.Pkg() != nil && (obj.Pkg().Name() == "transport" || strings.HasSuffix(pkgPath, "/transport")) {
					pass.Reportf(n.Pos(),
						"%s.%s called while holding %s; release the lock before blocking transport I/O",
						renderExpr(sel.X), name, heldList(held))
				}
			}
		}
		return true
	})
}

func heldList(held map[string]bool) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	// Deterministic message text regardless of map order.
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}
