// Package lint is a from-scratch static-analysis engine for the
// Vehicle-Key repository, built only on the standard library (go/parser,
// go/ast, go/types, go/token — no x/tools dependency).
//
// The compiler cannot see the invariants the paper's security argument
// rests on: key and MAC material must be compared in constant time and
// zeroized after use, randomness in the protocol-critical packages must
// come from crypto/rand or the seeded internal/rng, the channel/NN
// simulation must stay bit-deterministic so the figures reproduce, and
// the concurrent transport code must not do network I/O under a lock.
// Each of those invariants is guarded by one Analyzer in this package;
// cmd/vklint runs the registry over every package in the module and CI
// fails on any finding.
//
// A finding can be suppressed — with justification, per DESIGN.md — by a
// comment on the flagged line or the line directly above it:
//
//	//vklint:ignore consttime -- tag is public transcript data
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Severity ranks a diagnostic. Error findings fail the build; Warn
// findings are printed but do not affect the exit code.
type Severity int

// Severity levels.
const (
	Warn Severity = iota
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warn"
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos      token.Position
	Check    string
	Severity Severity
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message, d.Severity)
}

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the check identifier used in diagnostics, -checks, and
	// //vklint:ignore comments.
	Name string
	// Doc is a one-line description of the guarded invariant.
	Doc string
	// Severity classifies every diagnostic the analyzer emits.
	Severity Severity
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one (package, analyzer) execution.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	Module   Module

	// Pkgs is every package of the current Run — the whole-module view
	// interprocedural analyzers (keyflow) resolve callee bodies against.
	// Pkg is always an element of Pkgs.
	Pkgs []*Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Check:    p.Analyzer.Name,
		Severity: p.Analyzer.Severity,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InScope reports whether the package under analysis is one of the named
// scope packages. Scope is matched on the package name and on the last
// import-path segment, so golden-file testdata packages (for example
// testdata/norand/secure) are scoped exactly like the real ones.
func (p *Pass) InScope(names ...string) bool {
	base := p.Pkg.ImportPath
	if i := strings.LastIndex(base, "/"); i >= 0 {
		base = base[i+1:]
	}
	for _, n := range names {
		if p.Pkg.Name == n || base == n {
			return true
		}
	}
	return false
}

// registry holds the built-in analyzers in registration order.
var registry []*Analyzer

// register adds an analyzer at package init time.
func register(a *Analyzer) { registry = append(registry, a) }

// Analyzers returns the registered analyzers sorted by name.
func Analyzers() []*Analyzer {
	out := append([]*Analyzer(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Select returns the analyzers whose names appear in the comma-separated
// list, or all of them when the list is empty.
func Select(list string) ([]*Analyzer, error) {
	all := Analyzers()
	if strings.TrimSpace(list) == "" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q (have %s)", name, strings.Join(names(all), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

func names(as []*Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

// Run executes the analyzers over the packages and returns the surviving
// diagnostics, sorted by position, with //vklint:ignore suppressions
// applied.
func Run(mod Module, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		start := len(diags)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Fset: pkg.Fset, Pkg: pkg, Module: mod, Pkgs: pkgs, diags: &diags}
			a.Run(pass)
		}
		diags = append(diags[:start], suppress(pkg, diags[start:])...)
		// Unknown-check warnings are appended after suppression on purpose:
		// a typoed directive must not be able to suppress the warning about
		// itself.
		diags = append(diags, checkIgnoreDirectives(pkg)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags
}

// HasErrors reports whether any diagnostic is Error severity — the
// condition under which vklint exits non-zero.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// ignoreDirective is the suppression comment prefix.
const ignoreDirective = "vklint:ignore"

// suppress drops diagnostics covered by an ignore comment on the same
// line or the line immediately above. The directive names the checks it
// suppresses; a bare directive suppresses every check on that line.
// Anything after " -- " is a human rationale and is not parsed.
func suppress(pkg *Package, diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	// ignored[file][line] → set of suppressed check names ("*" = all).
	ignored := make(map[string]map[int]map[string]bool)
	for _, f := range pkg.Files {
		for _, grp := range f.Comments {
			for _, c := range grp.List {
				checks, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := ignored[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					ignored[pos.Filename] = byLine
				}
				// The directive covers its own line (trailing comment) and
				// the next line (comment above the flagged statement).
				for _, line := range []int{pos.Line, pos.Line + 1} {
					set := byLine[line]
					if set == nil {
						set = make(map[string]bool)
						byLine[line] = set
					}
					for _, chk := range checks {
						set[chk] = true
					}
				}
			}
		}
	}
	out := diags[:0]
	for _, d := range diags {
		set := ignored[d.Pos.Filename][d.Pos.Line]
		if set["*"] || set[d.Check] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// checkIgnoreDirectives warns about //vklint:ignore comments naming a
// check that does not exist in the registry: such a directive is dead (a
// typo, or a check that was renamed) and silently suppresses nothing,
// which is exactly the state that lets a real finding reappear unnoticed.
// The warning is engine-level, so it carries the synthetic check name
// "vklint" and Warn severity — it never fails the build by itself.
func checkIgnoreDirectives(pkg *Package) []Diagnostic {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, grp := range f.Comments {
			for _, c := range grp.List {
				checks, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				for _, chk := range checks {
					if chk == "*" || known[chk] {
						continue
					}
					out = append(out, Diagnostic{
						Pos:      pkg.Fset.Position(c.Pos()),
						Check:    "vklint",
						Severity: Warn,
						Message:  fmt.Sprintf("ignore directive names unknown check %q; it suppresses nothing", chk),
					})
				}
			}
		}
	}
	return out
}

// parseIgnore extracts the suppressed check names from one comment.
func parseIgnore(text string) ([]string, bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, ignoreDirective)
	// The directive must be the whole word: "vklint:ignored" is not it.
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return nil, false
	}
	text = strings.TrimSpace(rest)
	if i := strings.Index(text, "--"); i >= 0 {
		text = text[:i]
	}
	fields := strings.FieldsFunc(text, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
	if len(fields) == 0 {
		return []string{"*"}, true
	}
	return fields, true
}

// isGenerated reports whether the file carries the standard generated-code
// marker; analyzers skip such files.
func isGenerated(f *ast.File) bool {
	for _, grp := range f.Comments {
		for _, c := range grp.List {
			if strings.HasPrefix(c.Text, "// Code generated ") && strings.HasSuffix(c.Text, " DO NOT EDIT.") {
				return true
			}
		}
	}
	return false
}
