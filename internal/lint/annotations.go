package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Source annotations. Beyond the heuristics (names, known source calls),
// code can mark its own trust boundaries for the dataflow analyzers:
//
//	//vklint:secret — on a function parameter or struct field: the value
//	is key material; keyflow treats every read of it as a raw taint
//	source.
//
//	//vklint:wire — on a struct type declaration: the struct is decoded
//	from untrusted wire input; allocbound treats every field read as a
//	hostile size until a cap check intervenes.
//
// A directive covers the declaration on its own line or on the line
// directly below it (same placement contract as //vklint:ignore), and
// anything after " -- " is rationale.
const (
	secretDirective = "vklint:secret"
	wireDirective   = "vklint:wire"
)

// annotations is the module-wide view of both directives, resolved to
// type-checker objects so analyzers can match uses across packages.
type annotations struct {
	// secret holds annotated parameter and struct-field objects.
	secret map[types.Object]bool
	// wire holds the *types.TypeName of each annotated struct type.
	wire map[types.Object]bool
}

// collectAnnotations scans every package in pkgs for the two directives.
func collectAnnotations(pkgs []*Package) *annotations {
	a := &annotations{
		secret: make(map[types.Object]bool),
		wire:   make(map[types.Object]bool),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			secretLines, wireLines := directiveLines(pkg.Fset, f)
			if len(secretLines) == 0 && len(wireLines) == 0 {
				continue
			}
			collectFileAnnotations(pkg, f, secretLines, wireLines, a)
		}
	}
	return a
}

// directiveLines returns, per directive, the set of source lines a
// directive in f covers: its own line and the next.
func directiveLines(fset *token.FileSet, f *ast.File) (secret, wire map[int]bool) {
	secret = make(map[int]bool)
	wire = make(map[int]bool)
	for _, grp := range f.Comments {
		for _, c := range grp.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			var set map[int]bool
			switch {
			case isDirective(text, secretDirective):
				set = secret
			case isDirective(text, wireDirective):
				set = wire
			default:
				continue
			}
			line := fset.Position(c.Pos()).Line
			set[line] = true
			set[line+1] = true
		}
	}
	return secret, wire
}

// isDirective reports whether text is the named whole-word directive,
// optionally followed by a rationale.
func isDirective(text, directive string) bool {
	rest, ok := strings.CutPrefix(text, directive)
	return ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t')
}

func collectFileAnnotations(pkg *Package, f *ast.File, secretLines, wireLines map[int]bool, a *annotations) {
	line := func(pos token.Pos) int { return pkg.Fset.Position(pos).Line }
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Type.Params == nil {
				return true
			}
			for _, field := range n.Type.Params.List {
				if !secretLines[line(field.Pos())] {
					continue
				}
				for _, name := range field.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						a.secret[obj] = true
					}
				}
			}
		case *ast.TypeSpec:
			if wireLines[line(n.Pos())] {
				if obj := pkg.Info.Defs[n.Name]; obj != nil {
					a.wire[obj] = true
				}
			}
			st, ok := n.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !secretLines[line(field.Pos())] {
					continue
				}
				for _, name := range field.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						a.secret[obj] = true
					}
				}
			}
		}
		return true
	})
}

// isWireStruct reports whether t (possibly a pointer to) is a struct type
// annotated //vklint:wire.
func (a *annotations) isWireStruct(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return a.wire[named.Obj()]
}
