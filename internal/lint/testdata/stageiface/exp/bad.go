// Package exp is a golden-file fixture for the stageiface analyzer: an
// experiment runner reaching past the pipeline stage interfaces into
// concrete stage packages, plus the compliant shapes (blank scheme
// registration and the pipeline package itself).
package exp

import (
	"repro/internal/quantize"            // want "stageiface"
	reconcile "repro/internal/reconcile" // want "stageiface"

	"repro/internal/pipeline"

	_ "repro/internal/baselines"
)

// defaultQuant hard-wires one scheme's quantizer parameters into the
// driver — exactly the coupling the analyzer exists to break.
var defaultQuant = quantize.DefaultMultiBit()

var cascadeCfg = reconcile.DefaultCascadeConfig()

// stages is the compliant shape: the driver holds stage interfaces and
// lets the registry fill them.
var stages pipeline.Stages

var (
	_ = defaultQuant
	_ = cascadeCfg
	_ = stages
)
