package exp

// selfContained shows the suppression escape hatch: the directive names
// the check and carries a rationale, and the import below it is dropped.

//vklint:ignore stageiface -- fixture exercising justified suppression
import "repro/internal/nn"

var _ *nn.Predictor
