package transport

// startupBarrier waits for the accept goroutine's ready signal. The
// process is still single-threaded at this point, so liveness belongs to
// the launcher; the suppression records that judgment.
func startupBarrier(ready chan struct{}) {
	//vklint:ignore netdeadline -- startup-only barrier, supervised by the process launcher
	<-ready
}

var _ = startupBarrier
