// Package transport is the netdeadline golden fixture: the serving
// layer's blocking reads must always be able to wake up.
package transport

import (
	"net"
	"time"
)

// pump mirrors the pre-fix UDP mux read loop: nothing ever arms a read
// deadline, so one silent fleet wedges the demultiplexer goroutine
// forever (the udpmux.readLoop regression).
func pump(pc *net.UDPConn, out chan<- []byte) {
	buf := make([]byte, 1024)
	for {
		n, _, err := pc.ReadFromUDP(buf) // want "netdeadline"
		if err != nil {
			return
		}
		out <- append([]byte(nil), buf[:n]...)
	}
}

// recvGoverned arms a deadline before reading: compliant.
func recvGoverned(c net.Conn, d time.Duration) ([]byte, error) {
	buf := make([]byte, 1024)
	if err := c.SetReadDeadline(time.Now().Add(d)); err != nil {
		return nil, err
	}
	n, err := c.Read(buf)
	return buf[:n], err
}

// waitDone is the server.Close regression: a bare receive with no timer
// or done escape blocks forever when a worker wedges.
func waitDone(drained chan struct{}) {
	<-drained // want "netdeadline"
}

// waitBounded is the compliant drain wait: timer-bounded select.
func waitBounded(drained chan struct{}, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-drained:
	case <-t.C:
	}
}

// drainQueue ranges over a channel; close terminates the loop, so range
// receives are exempt.
func drainQueue(ch chan []byte) int {
	n := 0
	for range ch {
		n++
	}
	return n
}

// relay selects over data channels only — no default, timer, or
// lifecycle case — so the whole select can block forever.
func relay(a, b chan []byte) {
	select { // want "netdeadline"
	case m := <-a:
		b <- m
	case m := <-b:
		a <- m
	}
}

var (
	_ = pump
	_ = recvGoverned
	_ = waitDone
	_ = waitBounded
	_ = drainQueue
	_ = relay
)
