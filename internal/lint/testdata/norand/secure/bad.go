// Package secure is a golden-file fixture: it deliberately violates the
// norand invariant so the analyzer tests can assert exact positions.
package secure

import (
	"math/rand" // want "norand"
	"time"
)

// draw seeds a PRNG from the wall clock — both halves of the violation.
func draw() int {
	r := rand.New(rand.NewSource(time.Now().UnixNano())) // want "norand"
	return r.Intn(6)
}

var _ = draw
