package secure

import "time"

// stamp shows the suppression escape hatch: the directive names the
// check and carries a rationale, and the finding on the next line is
// dropped.
func stamp() int64 {
	//vklint:ignore norand -- fixture exercising justified suppression
	return time.Now().UnixNano()
}

var _ = stamp
