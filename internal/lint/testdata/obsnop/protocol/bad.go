// Package protocol is a golden-file fixture for the obsnop analyzer: a
// hot-path package constructing its own recorders instead of accepting
// one through its API.
package protocol

import "repro/internal/obs"

// node buries a privately built registry, hiding its metrics from the
// binary's exporter.
type node struct {
	rec obs.Recorder
}

func newNode() *node {
	return &node{rec: obs.NewRegistry()} // want "obsnop"
}

func newTrace() *obs.Tracer {
	return obs.NewTracer(64) // want "obsnop"
}

func literalRegistry() *obs.Registry {
	return &obs.Registry{} // want "obsnop"
}

// goodNode is the compliant shape: the recorder arrives from outside and
// defaults to the no-op.
func goodNode(rec obs.Recorder) *node {
	return &node{rec: obs.OrNop(rec)}
}

var (
	_ = newNode
	_ = newTrace
	_ = literalRegistry
	_ = goodNode
)
