package protocol

import "repro/internal/obs"

// selfContained shows the suppression escape hatch: the directive names
// the check and carries a rationale, and the finding below it is dropped.
func selfContained() *obs.Registry {
	//vklint:ignore obsnop -- fixture exercising justified suppression
	return obs.NewRegistry()
}

var _ = selfContained
