// Package transport is the allocbound golden fixture: sizes decoded
// from the wire must be capped before they drive an allocation or a
// loop.
package transport

import "encoding/binary"

// frame is a decoded wire header.
//
//vklint:wire -- parsed from untrusted datagrams
type frame struct {
	Size  uint32
	Count uint32
}

const maxFrame = 1 << 20

// allocUnchecked is the bug class the frame codec's 1 MiB pre-check
// exists to prevent: the peer picks the allocation size.
func allocUnchecked(hdr []byte) []byte {
	size := binary.BigEndian.Uint32(hdr)
	return make([]byte, size) // want "allocbound"
}

// allocChecked rejects oversized frames before allocating: compliant.
func allocChecked(hdr []byte) []byte {
	size := binary.BigEndian.Uint32(hdr)
	if size > maxFrame {
		return nil
	}
	return make([]byte, size)
}

// loopUnchecked lets the decoded count pick the iteration count (and so
// the appended length) — the hostile-Round back-fill regression.
func loopUnchecked(f frame) []int {
	var out []int
	for i := 0; i < int(f.Count); i++ { // want "allocbound"
		out = append(out, i)
	}
	return out
}

// loopChecked caps the count with an exit guard first; everything after
// the guard is bounded.
func loopChecked(f frame) []int {
	if f.Count > 1024 {
		return nil
	}
	out := make([]int, 0, f.Count)
	for i := 0; i < int(f.Count); i++ {
		out = append(out, i)
	}
	return out
}

// lowWater shows the direction rule: a lower-bound early-exit proves
// nothing about how large the value can be, so the loop stays flagged.
func lowWater(f frame, next uint32) []int {
	if f.Count < next {
		return nil
	}
	var out []int
	for i := next; i < f.Count; i++ { // want "allocbound"
		out = append(out, int(i))
	}
	return out
}

// lenDerived sizes from len() of data something upstream already capped:
// always safe.
func lenDerived(payload []byte) []byte {
	out := make([]byte, len(payload))
	copy(out, payload)
	return out
}

var (
	_ = allocUnchecked
	_ = allocChecked
	_ = loopUnchecked
	_ = loopChecked
	_ = lowWater
	_ = lenDerived
)
