package transport

import "encoding/binary"

// replayBuf preallocates from a fuzz-corpus header; the harness caps
// corpus sizes by construction, and the suppression records that.
func replayBuf(hdr []byte) []byte {
	n := binary.BigEndian.Uint16(hdr)
	//vklint:ignore allocbound -- fuzz-harness corpus caps sizes at 64 KiB by construction
	return make([]byte, n)
}

var _ = replayBuf
