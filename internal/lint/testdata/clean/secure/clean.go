// Package secure is the clean golden-file fixture: every analyzer runs
// over it and must report nothing.
package secure

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"fmt"
)

// Fresh returns new random key material; the caller owns the wipe.
func Fresh() ([]byte, error) {
	key := make([]byte, 16)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("fresh: %w", err)
	}
	return key, nil
}

// Tag computes an HMAC and wipes the derived key before returning.
func Tag(seed, msg []byte) []byte {
	macKey := make([]byte, 32)
	copy(macKey, seed)
	m := hmac.New(sha256.New, macKey)
	m.Write(msg)
	tag := m.Sum(nil)
	for i := range macKey {
		macKey[i] = 0
	}
	return tag
}

// Verify compares tags in constant time.
func Verify(want, got []byte) bool {
	return subtle.ConstantTimeCompare(want, got) == 1
}
