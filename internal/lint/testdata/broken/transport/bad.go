// Package transport is deliberately type-broken: the engine's load
// error path must surface the type-check failure instead of panicking.
package transport

func undefinedRef() int {
	return undefinedSymbol
}
