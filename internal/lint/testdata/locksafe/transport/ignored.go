package transport

import "sync"

type probe struct {
	mu   sync.Mutex
	conn Conn
}

// lockedSend holds the lock across a send on purpose: the fixture
// suppression stands in for a measured, documented exception.
func (p *probe) lockedSend(msg []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	//vklint:ignore locksafe -- single-goroutine probe; lock is for state, not the conn
	return p.conn.Send(msg)
}

var _ = (*probe).lockedSend
