// Package transport is a golden-file fixture for the locksafe analyzer.
// It declares its own tiny Conn so the fixture has no dependencies.
package transport

import "sync"

// Conn mirrors the real transport interface shape.
type Conn interface {
	Send(msg []byte) error
	Recv() ([]byte, error)
}

type node struct {
	mu   sync.Mutex
	conn Conn
}

// badSend blocks on the network with the node lock held for the whole
// call (the deferred unlock runs after Send returns).
func (n *node) badSend(msg []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.conn.Send(msg) // want "locksafe"
}

// badRecv holds the lock across a blocking receive.
func (n *node) badRecv() ([]byte, error) {
	n.mu.Lock()
	msg, err := n.conn.Recv() // want "locksafe"
	n.mu.Unlock()
	return msg, err
}

// goodSend snapshots the conn under the lock, then sends outside it.
func (n *node) goodSend(msg []byte) error {
	n.mu.Lock()
	c := n.conn
	n.mu.Unlock()
	return c.Send(msg)
}

// value receives the lock-bearing struct by value: the mutex is copied
// and no longer guards anything.
func (n node) value() Conn { // want "locksafe"
	return n.conn
}

// stats takes a lock-bearing parameter by value.
func stats(n node) int { // want "locksafe"
	return len(mustBytes(n.conn))
}

func mustBytes(c Conn) []byte {
	msg, err := c.Recv()
	if err != nil {
		return nil
	}
	return msg
}

var (
	_ = (*node).badSend
	_ = (*node).badRecv
	_ = (*node).goodSend
	_ = node.value
	_ = stats
)
