// Package protocol is a golden-file fixture for the consttime analyzer.
package protocol

import (
	"bytes"
	"crypto/subtle"
	"reflect"
)

// verifyTag compares MAC tags three ways; only the subtle one is legal.
func verifyTag(macKey, tag, got []byte) bool {
	if bytes.Equal(tag, got) { // want "consttime"
		return true
	}
	if reflect.DeepEqual(macKey, got) { // want "consttime"
		return true
	}
	return subtle.ConstantTimeCompare(tag, got) == 1
}

// sameKey compares two secret strings with ==.
func sameKey(key, other string) bool {
	return key == other // want "consttime"
}

// roleCheck compares against a compile-time constant — configuration,
// not secret verification, and deliberately not flagged.
func roleCheck(sessionKeyName string) bool {
	return sessionKeyName == "alice"
}

// publicCompare has no secret-marked operand and is not flagged.
func publicCompare(a, b []byte) bool {
	return bytes.Equal(a, b)
}

var (
	_ = verifyTag
	_ = sameKey
	_ = roleCheck
	_ = publicCompare
)
