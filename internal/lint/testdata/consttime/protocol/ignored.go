package protocol

import "bytes"

// transcriptCheck compares a tag that is public transcript data; the
// suppression documents why the variable-time compare is acceptable.
func transcriptCheck(publicTag, got []byte) bool {
	return bytes.Equal(publicTag, got) //vklint:ignore consttime -- tag is public transcript data
}

var _ = transcriptCheck
