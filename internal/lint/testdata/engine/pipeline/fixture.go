// Package pipeline is the engine-behavior fixture (not a golden
// package): it exercises suppression of a finding anchored on the first
// line of a multi-line statement, and an ignore directive naming a check
// that does not exist.
package pipeline

import "fmt"

type quantizer struct{}

// Quantize is a keyflow policy source: its result is raw key bits.
func (quantizer) Quantize(win []float64) []byte { return nil }

func dump(win []float64) {
	var q quantizer
	bits := q.Quantize(win)
	//vklint:ignore keyflow -- fixture: the finding anchors on the opening line below
	fmt.Printf("key=%x\n",
		bits)
	//vklint:ignore keyflwo -- typo on purpose: the engine must warn, not stay silent
	_ = bits
}

var _ = dump
