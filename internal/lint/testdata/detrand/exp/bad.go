// Package exp is a golden-file fixture for the detrand analyzer.
package exp

import (
	"fmt"
	"sort"
	"time"
)

// stamp leaks wall-clock time into simulation output.
func stamp() int64 {
	return time.Now().Unix() // want "detrand"
}

// unorderedIDs builds output in map-iteration order — different every run.
func unorderedIDs(registry map[string]int) []string {
	var out []string
	for id := range registry {
		out = append(out, id) // want "detrand"
	}
	return out
}

// sortedIDs does the same but sorts before returning, which restores
// determinism and is not flagged.
func sortedIDs(registry map[string]int) []string {
	var out []string
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// dump prints rows straight out of a map range.
func dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "detrand"
	}
}

var (
	_ = stamp
	_ = unorderedIDs
	_ = sortedIDs
	_ = dump
)
