// Package exp is a golden-file fixture for the detrand analyzer.
package exp

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/rng"
)

// stamp leaks wall-clock time into simulation output.
func stamp() int64 {
	return time.Now().Unix() // want "detrand"
}

// unorderedIDs builds output in map-iteration order — different every run.
func unorderedIDs(registry map[string]int) []string {
	var out []string
	for id := range registry {
		out = append(out, id) // want "detrand"
	}
	return out
}

// sortedIDs does the same but sorts before returning, which restores
// determinism and is not flagged.
func sortedIDs(registry map[string]int) []string {
	var out []string
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// dump prints rows straight out of a map range.
func dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "detrand"
	}
}

// sharedStream fans work out across goroutines that all draw from one
// captured stream — a data race, and the draw interleaving depends on
// scheduling even if it were locked.
func sharedStream() []float64 {
	src := rng.New(1)
	out := make([]float64, 8)
	var wg sync.WaitGroup
	for i := range out {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = src.Float64() // want "detrand"
		}()
	}
	wg.Wait()
	return out
}

// sharedDerive is the subtler variant: Derive consumes the parent
// stream, so concurrent derivation races exactly like direct draws.
func sharedDerive(parent *rng.Source) {
	done := make(chan *rng.Source, 2)
	for i := 0; i < 2; i++ {
		go func() {
			done <- parent.Derive("worker") // want "detrand"
		}()
	}
	<-done
	<-done
}

// perUnitStream derives each goroutine's stream purely from the seed
// before any concurrency — the sanctioned pattern, not flagged.
func perUnitStream(seed int64) []float64 {
	out := make([]float64, 8)
	var wg sync.WaitGroup
	for i := range out {
		wg.Add(1)
		go func(i int, src *rng.Source) {
			defer wg.Done()
			out[i] = src.Float64()
		}(i, rng.Stream(seed, "unit", i))
	}
	wg.Wait()
	return out
}

// ownStream creates the stream inside the goroutine body — also fine.
func ownStream(seed int64) {
	done := make(chan float64, 1)
	go func() {
		src := rng.Stream(seed, "solo", 0)
		done <- src.Float64()
	}()
	<-done
}

var (
	_ = stamp
	_ = unorderedIDs
	_ = sortedIDs
	_ = dump
	_ = sharedStream
	_ = sharedDerive
	_ = perUnitStream
	_ = ownStream
)
