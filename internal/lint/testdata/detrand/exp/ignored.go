package exp

import "time"

// wallClock measures real elapsed time for a progress meter, which is
// presentation, not simulation output.
func wallClock() time.Time {
	//vklint:ignore detrand -- progress display only, not in recorded results
	return time.Now()
}

var _ = wallClock
