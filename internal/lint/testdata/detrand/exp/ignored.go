package exp

import (
	"sync"
	"time"

	"repro/internal/rng"
)

// wallClock measures real elapsed time for a progress meter, which is
// presentation, not simulation output.
func wallClock() time.Time {
	//vklint:ignore detrand -- progress display only, not in recorded results
	return time.Now()
}

// mutexedWarmup shares one stream across goroutines under a lock for a
// throwaway warm-up whose values never reach a report.
func mutexedWarmup(src *rng.Source) {
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			//vklint:ignore detrand -- warm-up draws are discarded, never reported
			_ = src.Float64()
			mu.Unlock()
		}()
	}
	wg.Wait()
}

var (
	_ = wallClock
	_ = mutexedWarmup
)
