// Package secure is a golden-file fixture for the zeroize analyzer.
package secure

// derive stretches a seed into fresh key material. The returned slice
// escapes, so derive itself is clean.
func derive(seed []byte) []byte {
	out := make([]byte, 16)
	copy(out, seed)
	return out
}

// leak consumes key material and lets it die on the heap unwiped.
func leak(seed []byte) int {
	roundKey := derive(seed) // want "zeroize"
	n := 0
	for _, b := range roundKey {
		n += int(b)
	}
	return n
}

// wiped scrubs via the sanctioned helper before returning.
func wiped(seed []byte) int {
	sessionKey := derive(seed)
	n := int(sessionKey[0])
	Wipe(sessionKey)
	return n
}

// loops scrubs with a manual zeroing loop, which is also accepted.
func loops(seed []byte) int {
	tmpKey := derive(seed)
	n := int(tmpKey[0])
	for i := range tmpKey {
		tmpKey[i] = 0
	}
	return n
}

// handoff returns the key material, transferring wipe responsibility
// to the caller — not flagged.
func handoff(seed []byte) []byte {
	newKey := derive(seed)
	return newKey
}

// Wipe zeroes b in place.
func Wipe(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

var (
	_ = leak
	_ = wiped
	_ = loops
	_ = handoff
)
