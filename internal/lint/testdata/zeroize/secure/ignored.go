package secure

// probe inspects key material in a debugging helper where the buffer is
// synthetic; the suppression records that.
func probe(seed []byte) int {
	//vklint:ignore zeroize -- synthetic test vector, not a live session key
	debugKey := derive(seed)
	return int(debugKey[0])
}

var _ = probe
