package pipeline

import (
	"fmt"

	"repro/internal/secure"
)

// dumpKAT prints a known-answer test vector. The bits come from the
// quantizer policy source, so both flows on the print line (format sink
// and raw-keyed MAC) are findings — recorded and accepted below.
func dumpKAT(win []float64) {
	var q quantizer
	bits, _ := q.BobQuantize(win)
	//vklint:ignore keyflow -- published known-answer test vector, not a live session key
	fmt.Printf("kat=%x mac=%x\n", bits, secure.MAC(bits, make([]byte, 8)))
}

var _ = dumpKAT
