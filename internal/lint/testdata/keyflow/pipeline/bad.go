// Package pipeline is the keyflow golden fixture. Its two leak*
// functions reconstruct the two real vulnerabilities fixed after PR 5 —
// the one-shot wire Cascade that published a full-rank parity system
// over the key bits, and the confirmation MAC keyed with the raw key
// block — as regression cases the analyzer must flag forever.
package pipeline

import (
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/obs"
	"repro/internal/secure"
)

// quantizer stands in for the real pipeline quantizer stage; the keyflow
// policy table marks the first result of BobQuantize as raw key bits and
// the kept-index result as public wire data.
type quantizer struct{}

func (quantizer) BobQuantize(win []float64) ([]byte, []int) {
	return make([]byte, 8), []int{0, 1}
}

// leakCascadeTree is PR-5 bug #1: the one-shot wire Cascade published
// the full bisection parity tree as its syndrome. Every parity is an XOR
// of key bits, the tree has full rank over them, so encoding it hands a
// passive eavesdropper every key bit.
func leakCascadeTree(w io.Writer, win []float64) error {
	var q quantizer
	bits, _ := q.BobQuantize(win)
	tree := make([]byte, 0, 2*len(bits))
	for width := 1; width <= len(bits); width *= 2 {
		var parity byte
		for i, b := range bits {
			if i%width == 0 {
				parity = 0
			}
			parity ^= b
			if (i+1)%width == 0 {
				tree = append(tree, parity)
			}
		}
	}
	return gob.NewEncoder(w).Encode(tree) // want "keyflow"
}

// leakRawKeyMAC is PR-5 bug #2: a confirmation MAC keyed directly with
// the raw key block is an offline verification oracle for key guesses.
func leakRawKeyMAC(win []float64, salt []byte) []byte {
	var q quantizer
	bits, _ := q.BobQuantize(win)
	return secure.MAC(bits, salt) // want "keyflow"
}

// describeFailure leaks an annotated secret into error construction.
func describeFailure(
	//vklint:secret -- negotiated session key
	key []byte,
) error {
	return fmt.Errorf("session failed, key=%x", key) // want "keyflow"
}

// logBits formats whatever it is given — harmless on public data. A
// caller handing it key bits creates the flow, so the finding is lifted
// to that call site.
func logBits(tag string, bits []byte) {
	fmt.Printf("%s: %x\n", tag, bits)
}

func debugDump(win []float64) {
	var q quantizer
	bits, kept := q.BobQuantize(win)
	logBits("kept", intsToBytes(kept)) // kept indices are public wire data
	logBits("key", bits)               // want "keyflow"
}

func intsToBytes(xs []int) []byte {
	out := make([]byte, len(xs))
	for i, x := range xs {
		out[i] = byte(x)
	}
	return out
}

// labelKey publishes key-derived bytes as an obs series label.
func labelKey(rec obs.Recorder, win []float64) {
	var q quantizer
	bits, _ := q.BobQuantize(win)
	rec.Event(obs.Labeled("vk_key", "bits", string(bits)), "x") // want "keyflow"
}

// confirmMAC is the compliant confirmation path: the MAC is keyed by a
// salted one-way image of the block, and both secrets are wiped.
func confirmMAC(win []float64, salt []byte) []byte {
	var q quantizer
	bits, _ := q.BobQuantize(win)
	confirmKey := secure.BlockImage(bits, salt)
	mac := secure.MAC(confirmKey, salt)
	secure.Wipe(confirmKey)
	secure.Wipe(bits)
	return mac
}

// publishDigest publishes a SHA-256 digest of the key for auditing; the
// digest declassifies by policy.
func publishDigest(w io.Writer, win []float64) error {
	var q quantizer
	bits, _ := q.BobQuantize(win)
	sum := sha256.Sum256(bits)
	secure.Wipe(bits)
	return gob.NewEncoder(w).Encode(sum[:])
}

// countOnes publishes only an aggregate scalar statistic — comparisons
// and counters declassify (implicit flows are out of scope by design).
func countOnes(win []float64) int {
	var q quantizer
	bits, _ := q.BobQuantize(win)
	n := 0
	for _, b := range bits {
		if b == 1 {
			n++
		}
	}
	fmt.Printf("ones=%d\n", n)
	return n
}

var (
	_ = leakCascadeTree
	_ = leakRawKeyMAC
	_ = describeFailure
	_ = debugDump
	_ = labelKey
	_ = confirmMAC
	_ = publishDigest
	_ = countOnes
)
