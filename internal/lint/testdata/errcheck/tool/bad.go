// Package main is a golden-file fixture for the errcheck analyzer,
// shaped like one of the repo's cmd/ tools.
package main

import (
	"encoding/csv"
	"fmt"
	"os"
	"strings"

	"repro/internal/transport"
)

func main() {}

// emit drops CSV write errors and a stderr write error on the floor.
func emit(rows [][]string) {
	w := csv.NewWriter(os.Stdout)
	for _, r := range rows {
		w.Write(r) // want "errcheck"
	}
	w.Flush()
	fmt.Fprintln(os.Stderr, "done") // want "errcheck"
}

// closeBoth discards transport errors three different ways; only the
// explicit `_ =` assignment is sanctioned.
func closeBoth(a, b transport.Conn) {
	a.Close()       // want "errcheck"
	defer b.Close() // want "errcheck"
	_ = a.Close()
}

// fire launches a send without anyone to observe the error.
func fire(c transport.Conn, msg []byte) {
	go c.Send(msg) // want "errcheck"
}

// render writes into a strings.Builder, which cannot fail — exempt.
func render(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d", n)
	return b.String()
}

var (
	_ = emit
	_ = closeBoth
	_ = fire
	_ = render
)
