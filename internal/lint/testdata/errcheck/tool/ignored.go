package main

import "repro/internal/transport"

// bestEffortClose documents why this particular discard is fine.
func bestEffortClose(c transport.Conn) {
	//vklint:ignore errcheck -- best-effort cleanup at process exit
	c.Close()
}

var _ = bestEffortClose
