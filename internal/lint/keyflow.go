package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// keyflowScope is the set of packages whose functions are taint-analyzed.
// The experiment/attack/NIST layers and the command binaries publish
// statistics and demo keys on purpose, so they are deliberately outside
// the flow contract.
var keyflowScope = []string{
	"protocol", "server", "transport", "pipeline", "core",
	"secure", "group", "amplify", "quantize", "reconcile",
}

func init() {
	register(&Analyzer{
		Name:     "keyflow",
		Doc:      "key material must not flow to the wire, logs, errors, or metrics unsanitized",
		Severity: Error,
		Run:      runKeyflow,
	})
}

// taintKind is the three-point lattice the flow analysis runs on.
// kindImage (a salted one-way image of a key block, secure.BlockImage)
// may key MACs but must never be published; kindRaw (actual key bits) may
// do neither.
type taintKind int

const (
	kindClean taintKind = iota
	kindImage
	kindRaw
)

func (k taintKind) String() string {
	switch k {
	case kindRaw:
		return "raw key material"
	case kindImage:
		return "one-way key image"
	}
	return "clean"
}

func maxKind(a, b taintKind) taintKind {
	if a > b {
		return a
	}
	return b
}

// policySpec is the curated flow contract of one callee the analysis does
// not (or must not) look inside.
type policySpec struct {
	// results fixes the taint kind of each result; missing entries are
	// clean. A source's key-bit results are kindRaw here.
	results []taintKind
	// macKey flags a call whose first argument must not be raw key bits
	// (secure.MAC/VerifyMAC: raw-keyed MACs are offline verification
	// oracles — the PR 5 bug class).
	macKey bool
	// image makes the result a one-way key image when any input is
	// tainted (secure.BlockImage).
	image bool
	// wipe kills the first argument's taint from the call position on
	// (secure.Wipe/WipeFloats).
	wipe bool
	// sink names a publication channel; any tainted argument is a
	// finding.
	sink string
	// clean marks a sanitizing package: results carry no taint.
	clean bool
}

// keyflowPolicy resolves the flow contract for a callee identified by its
// package's base name and its own name. Policy is consulted before module
// summaries so the sanctioned stage contracts (e.g. BobEncode's
// bounded-leakage syndrome output) override whatever the implementation
// bodies would propagate.
func keyflowPolicy(pkgBase, name string) (policySpec, bool) {
	switch pkgBase {
	case "pipeline", "core", "quantize", "reconcile", "amplify":
		switch name {
		// Quantizer outputs: result 0 is the key-bit stream; kept-index
		// results are public wire data by design.
		case "Quantize", "BobQuantize", "QuantizePredicted", "AliceBitsAt",
			"MultiBit", "MeanThreshold", "Select", "SelectAt", "AliceSelect",
			"Amplify", "Cascade", "CS", "CSISTA", "Reconcile",
			"CascadeSyndromeCorrect", "CSISTACorrect", "AlicePrecompute":
			return policySpec{results: []taintKind{kindRaw}}, true
		case "IntersectKept":
			return policySpec{results: []taintKind{kindRaw, kindRaw}}, true
		// The wire-facing reconciler contract: the code vector is the
		// sanctioned bounded-leakage publication, the key image is a
		// one-way image.
		case "BobEncode":
			return policySpec{results: []taintKind{kindClean, kindImage}}, true
		case "AliceCorrect":
			return policySpec{results: []taintKind{kindRaw, kindImage}}, true
		case "CascadeSyndromeEncode", "CSEncode", "CascadeSyndromeBits":
			return policySpec{clean: true}, true
		// Aggregate agreement statistics are declassified by contract.
		case "Agreement":
			return policySpec{clean: true}, true
		}
		return policySpec{}, false
	case "secure":
		switch name {
		case "MAC", "VerifyMAC":
			return policySpec{macKey: true, clean: true}, true
		case "BlockImage":
			return policySpec{image: true}, true
		case "Wipe", "WipeFloats":
			return policySpec{wipe: true}, true
		}
		return policySpec{}, false
	case "gob":
		if name == "Encode" || name == "EncodeValue" {
			return policySpec{sink: "a gob/wire encoder"}, true
		}
		return policySpec{clean: true}, true
	case "transport":
		return policySpec{sink: "a transport send"}, true
	case "net":
		switch name {
		case "Write", "WriteTo", "WriteToUDP", "WriteMsgUDP":
			return policySpec{sink: "a socket write"}, true
		}
		return policySpec{clean: true}, true
	case "fmt", "log":
		return policySpec{sink: "log/format output"}, true
	case "errors":
		if name == "New" {
			return policySpec{sink: "error construction"}, true
		}
		return policySpec{clean: true}, true
	case "obs":
		return policySpec{sink: "an obs metric or label"}, true
	// Cryptographic digests and constant-time primitives declassify;
	// the listed support packages never carry key bits outward.
	case "sha256", "sha512", "hmac", "subtle", "aes", "cipher", "rand",
		"binary", "crc32", "hex", "base64", "bits", "math", "sort",
		"strconv", "time", "sync", "atomic", "utf8", "slices", "maps":
		return policySpec{clean: true}, true
	}
	return policySpec{}, false
}

// taintReport is one finding, anchored inside the analyzed function.
type taintReport struct {
	anchor token.Pos
	msg    string
}

// funcInfo is one module function the analysis can look inside.
type funcInfo struct {
	pkg     *Package
	decl    *ast.FuncDecl
	obj     *types.Func
	params  []types.Object // receiver first when present; nil for unnamed
	results int
}

// funcSummary is the memoized effect of one function under one input
// taint assignment: the taint kinds of its results and the findings its
// body produces under those inputs.
type funcSummary struct {
	results []taintKind
	reports []taintReport
}

// keyflow is the per-pass interprocedural engine state.
type keyflow struct {
	pass       *Pass
	ann        *annotations
	funcs      map[types.Object]*funcInfo
	memo       map[summaryKey]*funcSummary
	inProgress map[summaryKey]bool
	reported   map[string]bool
}

type summaryKey struct {
	fn    types.Object
	kinds string
}

func kindsKey(kinds []taintKind) string {
	b := make([]byte, len(kinds))
	for i, k := range kinds {
		b[i] = byte('0' + k)
	}
	return string(b)
}

func runKeyflow(pass *Pass) {
	if !pass.InScope(keyflowScope...) {
		return
	}
	kf := &keyflow{
		pass:       pass,
		ann:        collectAnnotations(pass.Pkgs),
		funcs:      indexFuncs(pass.Pkgs),
		memo:       make(map[summaryKey]*funcSummary),
		inProgress: make(map[summaryKey]bool),
		reported:   make(map[string]bool),
	}
	for _, f := range pass.Pkg.Files {
		if isGenerated(f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.Pkg.Info.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := kf.funcs[obj]
			if fi == nil {
				continue
			}
			sum := kf.summarize(fi, make([]taintKind, len(fi.params)))
			for _, r := range sum.reports {
				kf.emit(r)
			}
		}
	}
}

func (kf *keyflow) emit(r taintReport) {
	key := fmt.Sprintf("%d:%s", r.anchor, r.msg)
	if kf.reported[key] {
		return
	}
	kf.reported[key] = true
	kf.pass.Reportf(r.anchor, "%s", r.msg)
}

// indexFuncs maps every function and method object in the loaded universe
// to its declaration, so calls can be summarized across packages.
func indexFuncs(pkgs []*Package) map[types.Object]*funcInfo {
	out := make(map[types.Object]*funcInfo)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &funcInfo{pkg: pkg, decl: fn, obj: obj}
				if fn.Recv != nil {
					fi.params = append(fi.params, fieldObjects(pkg, fn.Recv)...)
				}
				fi.params = append(fi.params, fieldObjects(pkg, fn.Type.Params)...)
				if sig, ok := obj.Type().(*types.Signature); ok {
					fi.results = sig.Results().Len()
				}
				out[obj] = fi
			}
		}
	}
	return out
}

// fieldObjects flattens a parameter list into per-value objects, with nil
// placeholders for unnamed parameters.
func fieldObjects(pkg *Package, fields *ast.FieldList) []types.Object {
	if fields == nil {
		return nil
	}
	var out []types.Object
	for _, field := range fields.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			out = append(out, pkg.Info.Defs[name])
		}
	}
	return out
}

// summarize computes (and memoizes) a function's summary under the given
// parameter taint kinds. Recursive cycles resolve to a clean summary —
// a bounded under-approximation documented in the package doc.
func (kf *keyflow) summarize(fi *funcInfo, kinds []taintKind) *funcSummary {
	key := summaryKey{fi.obj, kindsKey(kinds)}
	if s, ok := kf.memo[key]; ok {
		return s
	}
	if kf.inProgress[key] {
		return &funcSummary{results: make([]taintKind, fi.results)}
	}
	kf.inProgress[key] = true
	defer delete(kf.inProgress, key)

	fa := &fnAnalysis{
		kf:      kf,
		fi:      fi,
		state:   make(map[types.Object]taintKind),
		wiped:   make(map[types.Object]token.Pos),
		results: make([]taintKind, fi.results),
		seen:    make(map[string]bool),
	}
	for i, obj := range fi.params {
		if obj == nil {
			continue
		}
		k := kindClean
		if i < len(kinds) {
			k = kinds[i]
		}
		if kf.ann.secret[obj] {
			k = kindRaw
		}
		fa.state[obj] = k
	}
	for iter := 0; iter < 12; iter++ {
		fa.changed = false
		fa.walkStmt(fi.decl.Body)
		if !fa.changed {
			break
		}
	}
	fa.reporting = true
	fa.walkStmt(fi.decl.Body)
	// Named results accumulate through assignments as well as returns.
	resultObjs := fieldObjects(fi.pkg, fi.decl.Type.Results)
	for i, obj := range resultObjs {
		if obj != nil && i < len(fa.results) {
			fa.results[i] = maxKind(fa.results[i], fa.state[obj])
		}
	}
	sum := &funcSummary{results: fa.results, reports: fa.reports}
	kf.memo[key] = sum
	return sum
}

// fnAnalysis is one flow-insensitive fixpoint over one function body.
type fnAnalysis struct {
	kf      *keyflow
	fi      *funcInfo
	state   map[types.Object]taintKind
	wiped   map[types.Object]token.Pos // position-gated secure.Wipe kills
	results []taintKind
	reports []taintReport
	seen    map[string]bool

	reporting bool
	changed   bool
	inDefer   bool // inside defer/go/func literal: wipes must not kill
}

func (fa *fnAnalysis) info() *types.Info { return fa.fi.pkg.Info }

func (fa *fnAnalysis) join(obj types.Object, k taintKind) {
	if obj == nil || k == kindClean {
		return
	}
	if fa.state[obj] < k {
		fa.state[obj] = k
		fa.changed = true
	}
}

// kindAt reads an object's taint at a use position, honoring wipes that
// precede the use in source order.
func (fa *fnAnalysis) kindAt(obj types.Object, pos token.Pos) taintKind {
	if obj == nil {
		return kindClean
	}
	if w, ok := fa.wiped[obj]; ok && pos > w {
		return kindClean
	}
	return fa.state[obj]
}

func (fa *fnAnalysis) report(pos token.Pos, msg string) {
	if !fa.reporting {
		return
	}
	key := fmt.Sprintf("%d:%s", pos, msg)
	if fa.seen[key] {
		return
	}
	fa.seen[key] = true
	fa.reports = append(fa.reports, taintReport{anchor: pos, msg: msg})
}

// rootObject resolves the variable an assignable expression stores into:
// x, x[i], x.f, *x, x[i:j] all root at x.
func (fa *fnAnalysis) rootObject(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := fa.info().Uses[e]; obj != nil {
			return obj
		}
		return fa.info().Defs[e]
	case *ast.SelectorExpr:
		return fa.rootObject(e.X)
	case *ast.IndexExpr:
		return fa.rootObject(e.X)
	case *ast.SliceExpr:
		return fa.rootObject(e.X)
	case *ast.StarExpr:
		return fa.rootObject(e.X)
	case *ast.UnaryExpr:
		return fa.rootObject(e.X)
	}
	return nil
}

func (fa *fnAnalysis) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			fa.walkStmt(st)
		}
	case *ast.AssignStmt:
		fa.assign(s)
	case *ast.ExprStmt:
		fa.eval(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					obj := fa.info().Defs[name]
					if i < len(vs.Values) {
						fa.join(obj, fa.eval(vs.Values[i]))
					} else if len(vs.Values) == 1 {
						ks := fa.evalMulti(vs.Values[0])
						if i < len(ks) {
							fa.join(obj, ks[i])
						}
					}
				}
			}
		}
	case *ast.IfStmt:
		fa.walkStmt(s.Init)
		fa.eval(s.Cond)
		fa.walkStmt(s.Body)
		fa.walkStmt(s.Else)
	case *ast.ForStmt:
		fa.walkStmt(s.Init)
		if s.Cond != nil {
			fa.eval(s.Cond)
		}
		fa.walkStmt(s.Post)
		fa.walkStmt(s.Body)
	case *ast.RangeStmt:
		k := fa.eval(s.X)
		// The element carries the data: for channels that is the Key
		// binding, for maps/slices/strings the Value. Map/slice keys are
		// positional metadata (round and window indices here) and stay
		// clean — a map keyed by secrets would be missed, a documented
		// under-approximation.
		isChan := false
		if t := fa.info().TypeOf(s.X); t != nil {
			_, isChan = t.Underlying().(*types.Chan)
		}
		if isChan {
			fa.join(fa.rootObject(s.Key), k)
		} else {
			fa.join(fa.rootObject(s.Value), k)
		}
		fa.walkStmt(s.Body)
	case *ast.SwitchStmt:
		fa.walkStmt(s.Init)
		if s.Tag != nil {
			fa.eval(s.Tag)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				fa.eval(e)
			}
			for _, st := range cc.Body {
				fa.walkStmt(st)
			}
		}
	case *ast.TypeSwitchStmt:
		fa.walkStmt(s.Init)
		fa.walkStmt(s.Assign)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, st := range cc.Body {
				fa.walkStmt(st)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			fa.walkStmt(cc.Comm)
			for _, st := range cc.Body {
				fa.walkStmt(st)
			}
		}
	case *ast.ReturnStmt:
		if len(s.Results) == 1 && fa.fi.results > 1 {
			for i, k := range fa.evalMulti(s.Results[0]) {
				if i < len(fa.results) {
					fa.results[i] = maxKind(fa.results[i], k)
				}
			}
			return
		}
		for i, e := range s.Results {
			if i < len(fa.results) {
				fa.results[i] = maxKind(fa.results[i], fa.eval(e))
			}
		}
	case *ast.DeferStmt:
		fa.inFuncValue(func() { fa.call(s.Call) })
	case *ast.GoStmt:
		fa.inFuncValue(func() { fa.call(s.Call) })
	case *ast.SendStmt:
		fa.join(fa.rootObject(s.Chan), fa.eval(s.Value))
	case *ast.LabeledStmt:
		fa.walkStmt(s.Stmt)
	}
}

// inFuncValue runs fn with wipe recording disabled: code inside defers,
// go statements, and function literals runs at an unknown time, so a
// secure.Wipe there cannot be used as a position-gated kill (the PR 5
// raw-MAC flow sits between a deferred wipe's declaration and its run).
func (fa *fnAnalysis) inFuncValue(fn func()) {
	saved := fa.inDefer
	fa.inDefer = true
	fn()
	fa.inDefer = saved
}

func (fa *fnAnalysis) assign(s *ast.AssignStmt) {
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		// Compound ops (+=, ^=, |=, ...): the updated variable absorbs
		// the operand's taint (parity accumulation is exactly this).
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			fa.join(fa.rootObject(s.Lhs[0]), fa.eval(s.Rhs[0]))
		}
		return
	}
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		ks := fa.evalMulti(s.Rhs[0])
		for i, lhs := range s.Lhs {
			if i < len(ks) {
				fa.join(fa.rootObject(lhs), ks[i])
			}
		}
		return
	}
	for i, lhs := range s.Lhs {
		if i < len(s.Rhs) {
			fa.join(fa.rootObject(lhs), fa.eval(s.Rhs[i]))
		}
	}
}

// evalMulti evaluates an expression in a multi-value context.
func (fa *fnAnalysis) evalMulti(e ast.Expr) []taintKind {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		return fa.call(call)
	}
	return []taintKind{fa.eval(e)}
}

// eval computes the taint kind of a single-valued expression, walking any
// calls and function literals inside it.
func (fa *fnAnalysis) eval(e ast.Expr) taintKind {
	switch e := e.(type) {
	case nil:
		return kindClean
	case *ast.Ident:
		obj := fa.info().Uses[e]
		if obj == nil {
			obj = fa.info().Defs[e]
		}
		if v, ok := obj.(*types.Var); ok && fa.kf.ann.secret[v] {
			return kindRaw
		}
		return fa.kindAt(obj, e.Pos())
	case *ast.SelectorExpr:
		sel := fa.info().Uses[e.Sel]
		if fa.kf.ann.secret[sel] {
			return kindRaw
		}
		if _, isFunc := sel.(*types.Func); isFunc {
			return kindClean // method value / qualified function name
		}
		k := fa.eval(e.X)
		return maxKind(k, fa.kindAt(sel, e.Sel.Pos()))
	case *ast.IndexExpr:
		return fa.eval(e.X)
	case *ast.SliceExpr:
		return fa.eval(e.X)
	case *ast.StarExpr:
		return fa.eval(e.X)
	case *ast.UnaryExpr:
		return fa.eval(e.X)
	case *ast.ParenExpr:
		return fa.eval(e.X)
	case *ast.TypeAssertExpr:
		return fa.eval(e.X)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			// Comparisons yield booleans; implicit flows are out of scope.
			fa.eval(e.X)
			fa.eval(e.Y)
			return kindClean
		}
		return maxKind(fa.eval(e.X), fa.eval(e.Y))
	case *ast.CompositeLit:
		k := kindClean
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			k = maxKind(k, fa.eval(el))
		}
		return k
	case *ast.CallExpr:
		k := kindClean
		for _, rk := range fa.call(e) {
			k = maxKind(k, rk)
		}
		return k
	case *ast.FuncLit:
		fa.inFuncValue(func() { fa.walkStmt(e.Body) })
		return kindClean
	}
	return kindClean
}

// call resolves one call expression: builtins, conversions, the curated
// policy table, module-function summaries, and a conservative default for
// everything else. It returns the taint kinds of the call's results.
func (fa *fnAnalysis) call(call *ast.CallExpr) []taintKind {
	info := fa.info()
	// Conversions propagate: string(keyBits) or float64(parity) is still
	// the secret.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		k := kindClean
		for _, a := range call.Args {
			k = maxKind(k, fa.eval(a))
		}
		return []taintKind{k}
	}
	obj := calleeObject(info, call)
	if b, ok := obj.(*types.Builtin); ok {
		return fa.builtinCall(b.Name(), call)
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		// Calls through function values and literals: propagate the
		// argument join to every result.
		k := kindClean
		for _, a := range call.Args {
			k = maxKind(k, fa.eval(a))
		}
		if sig, ok := info.Types[call.Fun].Type.Underlying().(*types.Signature); ok {
			return defaultResults(sig, k)
		}
		return []taintKind{k}
	}

	pkgBase := lastSegment(objectPkgPath(fn))
	name := fn.Name()
	if spec, ok := keyflowPolicy(pkgBase, name); ok {
		return fa.policyCall(spec, pkgBase, name, call)
	}
	if fi := fa.kf.funcs[fn]; fi != nil {
		return fa.summaryCall(fi, call)
	}
	return fa.defaultCall(fn, call)
}

func (fa *fnAnalysis) builtinCall(name string, call *ast.CallExpr) []taintKind {
	switch name {
	case "append":
		k := kindClean
		for _, a := range call.Args {
			k = maxKind(k, fa.eval(a))
		}
		if len(call.Args) > 0 {
			fa.join(fa.rootObject(call.Args[0]), k)
		}
		return []taintKind{k}
	case "copy":
		if len(call.Args) == 2 {
			fa.join(fa.rootObject(call.Args[0]), fa.eval(call.Args[1]))
		}
		return []taintKind{kindClean}
	case "len", "cap", "make", "new", "min", "max", "delete", "clear":
		for _, a := range call.Args {
			fa.eval(a)
		}
		if name == "min" || name == "max" {
			k := kindClean
			for _, a := range call.Args {
				k = maxKind(k, fa.eval(a))
			}
			return []taintKind{k}
		}
		return []taintKind{kindClean}
	}
	for _, a := range call.Args {
		fa.eval(a)
	}
	return []taintKind{kindClean}
}

func (fa *fnAnalysis) policyCall(spec policySpec, pkgBase, name string, call *ast.CallExpr) []taintKind {
	argKinds := make([]taintKind, len(call.Args))
	worst := kindClean
	for i, a := range call.Args {
		argKinds[i] = fa.eval(a)
		worst = maxKind(worst, argKinds[i])
	}
	switch {
	case spec.wipe:
		if !fa.inDefer && len(call.Args) > 0 {
			if obj := fa.rootObject(call.Args[0]); obj != nil {
				if _, done := fa.wiped[obj]; !done {
					fa.wiped[obj] = call.Pos()
					fa.changed = true
				}
			}
		}
		return nil
	case spec.macKey:
		if len(argKinds) > 0 && argKinds[0] == kindRaw {
			fa.report(call.Pos(), fmt.Sprintf(
				"MAC keyed with raw key bits (%s.%s) — an offline verification oracle; key it with a secure.BlockImage key image instead", pkgBase, name))
		}
		return make([]taintKind, resultCount(fa.info(), call))
	case spec.sink != "":
		for i, k := range argKinds {
			if k >= kindImage {
				fa.report(call.Pos(), fmt.Sprintf(
					"%s reaches %s (argument %d of %s.%s); sanitize with secure.BlockImage/sha256 or remove the flow", k, spec.sink, i+1, pkgBase, name))
			}
		}
		return make([]taintKind, resultCount(fa.info(), call))
	case spec.image:
		out := make([]taintKind, resultCount(fa.info(), call))
		if worst > kindClean && len(out) > 0 {
			out[0] = kindImage
		}
		return out
	case spec.clean:
		return make([]taintKind, resultCount(fa.info(), call))
	}
	n := resultCount(fa.info(), call)
	out := make([]taintKind, n)
	for i := 0; i < n && i < len(spec.results); i++ {
		out[i] = spec.results[i]
	}
	return out
}

// summaryCall applies a module function's summary at the call site and
// lifts the findings its body produces under these argument kinds —
// minus the findings it produces on its own (those are reported once, in
// the callee's own package pass).
func (fa *fnAnalysis) summaryCall(fi *funcInfo, call *ast.CallExpr) []taintKind {
	kinds := make([]taintKind, len(fi.params))
	idx := 0
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && fa.info().Selections[sel] != nil {
		if len(kinds) > 0 {
			kinds[0] = fa.eval(sel.X)
			idx = 1
		}
	}
	for _, a := range call.Args {
		k := fa.eval(a)
		switch {
		case idx < len(kinds):
			kinds[idx] = k
			idx++
		case len(kinds) > 0: // variadic overflow joins into the last param
			kinds[len(kinds)-1] = maxKind(kinds[len(kinds)-1], k)
		}
	}
	sum := fa.kf.summarize(fi, kinds)
	if fa.reporting {
		internal := make(map[string]bool)
		for _, r := range fa.kf.summarize(fi, make([]taintKind, len(fi.params))).reports {
			internal[fmt.Sprintf("%d:%s", r.anchor, r.msg)] = true
		}
		for _, r := range sum.reports {
			if internal[fmt.Sprintf("%d:%s", r.anchor, r.msg)] {
				continue
			}
			pos := fa.kf.pass.Fset.Position(r.anchor)
			fa.report(call.Pos(), fmt.Sprintf("%s [via %s at %s:%d]",
				r.msg, fi.obj.Name(), filepath.Base(pos.Filename), pos.Line))
		}
	}
	out := make([]taintKind, resultCount(fa.info(), call))
	for i := 0; i < len(out) && i < len(sum.results); i++ {
		out[i] = sum.results[i]
	}
	return out
}

// defaultCall handles externals without policy or body: scalar results
// are clean (aggregate statistics), everything else propagates the join
// of the receiver and arguments, and a tainted argument taints a mutable
// receiver (bytes.Buffer.Write and friends).
func (fa *fnAnalysis) defaultCall(fn *types.Func, call *ast.CallExpr) []taintKind {
	k := kindClean
	for _, a := range call.Args {
		k = maxKind(k, fa.eval(a))
	}
	var recvRoot types.Object
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && fa.info().Selections[sel] != nil {
		k = maxKind(k, fa.eval(sel.X))
		recvRoot = fa.rootObject(sel.X)
	}
	if k > kindClean && recvRoot != nil {
		fa.join(recvRoot, k)
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return []taintKind{k}
	}
	return defaultResults(sig, k)
}

func defaultResults(sig *types.Signature, k taintKind) []taintKind {
	out := make([]taintKind, sig.Results().Len())
	for i := range out {
		t := sig.Results().At(i).Type()
		if k == kindClean || isScalarType(t) || isErrorType(t) {
			out[i] = kindClean
		} else {
			out[i] = k
		}
	}
	return out
}

// isScalarType reports whether t is a single machine word that cannot
// meaningfully carry a key (numbers, booleans). Strings are NOT scalar:
// string(keyBits) is still the key.
func isScalarType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsNumeric|types.IsBoolean) != 0
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func resultCount(info *types.Info, call *ast.CallExpr) int {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return 1
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		return tuple.Len()
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.Invalid {
		return 0
	}
	return 1
}

func lastSegment(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
