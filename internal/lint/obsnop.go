package lint

import (
	"go/ast"
	"go/types"
)

// obsnopScope is the set of hot-path packages that record metrics on
// every message or pipeline phase. These packages must accept an
// obs.Recorder from their caller (defaulting to obs.Nop) and never
// construct a concrete Registry or Tracer themselves: a privately
// constructed recorder hides its metrics from the binary's exporter,
// and an accidental always-on registry would put registry map lookups
// and atomics on paths that are supposed to cost nothing by default.
var obsnopScope = []string{"protocol", "core", "transport", "exp", "server", "lora", "group"}

// obsnopTypes are the concrete recorder types the scope must not build.
var obsnopTypes = map[string]bool{"Registry": true, "Tracer": true}

// obsnopCtors are the constructor functions for those types.
var obsnopCtors = map[string]bool{"NewRegistry": true, "NewTracer": true}

func init() {
	register(&Analyzer{
		Name:     "obsnop",
		Doc:      "hot-path packages must accept an obs.Recorder, never construct a concrete Registry or Tracer",
		Severity: Error,
		Run:      runObsnop,
	})
}

func runObsnop(pass *Pass) {
	if !pass.InScope(obsnopScope...) {
		return
	}
	obsPath := pass.Module.Path + "/internal/obs"
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if isGenerated(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				obj := calleeObject(info, n)
				if obj != nil && obsnopCtors[obj.Name()] && objectPkgPath(obj) == obsPath {
					pass.Reportf(n.Pos(),
						"package %s constructs obs.%s; hot-path code must take an obs.Recorder from the caller (default obs.Nop)",
						pass.Pkg.Name, obj.Name())
				}
			case *ast.CompositeLit:
				tv, ok := info.Types[ast.Expr(n)]
				if !ok {
					return true
				}
				if named := namedObsType(tv.Type, obsPath); named != "" {
					pass.Reportf(n.Pos(),
						"package %s builds an obs.%s literal; hot-path code must take an obs.Recorder from the caller (default obs.Nop)",
						pass.Pkg.Name, named)
				}
			}
			return true
		})
	}
}

// namedObsType returns the type name if t is one of the concrete
// recorder types declared in the obs package, and "" otherwise.
func namedObsType(t types.Type, obsPath string) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != obsPath || !obsnopTypes[obj.Name()] {
		return ""
	}
	return obj.Name()
}
