package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

func init() {
	register(&Analyzer{
		Name:     "consttime",
		Doc:      "key/MAC material must be compared in constant time (crypto/subtle or hmac.Equal)",
		Severity: Error,
		Run:      runConsttime,
	})
}

// runConsttime flags variable-time equality checks over values whose
// names mark them as key/MAC/secret material: bytes.Equal and
// reflect.DeepEqual short-circuit at the first differing byte, and ==
// on strings and byte arrays compiles to the same early-exit compare.
// An attacker timing MAC verification can forge tags byte by byte
// (the classic HMAC timing oracle), so these must go through
// crypto/subtle.ConstantTimeCompare or crypto/hmac.Equal.
func runConsttime(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if isGenerated(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				var fn string
				switch {
				case isPkgFunc(info, n, "bytes", "Equal"):
					fn = "bytes.Equal"
				case isPkgFunc(info, n, "reflect", "DeepEqual"):
					fn = "reflect.DeepEqual"
				default:
					return true
				}
				for _, arg := range n.Args {
					if name := exprName(arg); name != "" && isSecretName(name) {
						pass.Reportf(n.Pos(),
							"%s on secret-marked value %q is not constant-time; use crypto/subtle.ConstantTimeCompare or hmac.Equal",
							fn, name)
						return true
					}
				}
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				// Comparing against a compile-time constant (a sentinel or
				// mode string) is configuration, not secret verification.
				if isConstOperand(info, n.X) || isConstOperand(info, n.Y) {
					return true
				}
				for _, side := range []ast.Expr{n.X, n.Y} {
					tv, ok := info.Types[side]
					if !ok || !isComparableSecretType(tv.Type) {
						continue
					}
					if name := exprName(side); name != "" && isSecretName(name) {
						pass.Reportf(n.Pos(),
							"%s comparison on secret-marked value %q is not constant-time; use crypto/subtle.ConstantTimeCompare",
							n.Op, name)
						return true
					}
				}
			}
			return true
		})
	}
}

// isConstOperand reports whether the expression has a compile-time
// constant value (literal or named constant).
func isConstOperand(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
