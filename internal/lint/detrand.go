package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// detrandScope is the set of packages whose output must be a pure
// function of the seed: the channel simulation, the LoRa PHY model, the
// neural networks, and the experiment runners that regenerate the
// paper's figures. A wall-clock read or a map-iteration-ordered output
// here makes two runs of the same seed disagree, which both breaks the
// figure regeneration and desynchronizes Alice's and Bob's quantizer
// inputs.
var detrandScope = []string{"channel", "lora", "nn", "exp"}

func init() {
	register(&Analyzer{
		Name:     "detrand",
		Doc:      "deterministic simulation packages must not read the clock or order output by map iteration",
		Severity: Error,
		Run:      runDetrand,
	})
}

func runDetrand(pass *Pass) {
	if !pass.InScope(detrandScope...) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if isGenerated(f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFuncDetrand(pass, info, fn)
		}
	}
}

func checkFuncDetrand(pass *Pass, info *types.Info, fn *ast.FuncDecl) {
	// Objects that are sorted somewhere in this function: feeding them
	// from a map range is fine because the order is re-established.
	sorted := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		obj := calleeObject(info, call)
		if obj == nil {
			return true
		}
		switch objectPkgPath(obj) {
		case "sort", "slices":
		default:
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if target := info.Uses[id]; target != nil {
				sorted[target] = true
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPkgFunc(info, n, "time", "Now") || isPkgFunc(info, n, "time", "Since") {
				pass.Reportf(n.Pos(),
					"wall-clock read in deterministic simulation package %s; results must be a pure function of the seed",
					pass.Pkg.Name)
			}
		case *ast.RangeStmt:
			checkMapRange(pass, info, n, sorted)
		case *ast.GoStmt:
			checkGoSharedSource(pass, info, n)
		}
		return true
	})
}

// checkGoSharedSource flags a goroutine closure that uses a *rng.Source
// declared outside its own body. A Source is a single mutable stream:
// two goroutines drawing from it race on its state, and even under a
// mutex the interleaving of draws — and therefore every downstream
// value — depends on goroutine scheduling. Each goroutine must own a
// stream derived purely from the seed (rng.Stream / rng.SubSeed), the
// way internal/exp's forEach hands every work unit its own sub-stream.
func checkGoSharedSource(pass *Pass, info *types.Info, g *ast.GoStmt) {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	reported := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || reported[obj] || !isRNGSourcePtr(obj.Type()) {
			return true
		}
		// Free variable: declared outside the closure literal. Parameters
		// and locals of the closure have positions inside its range.
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true
		}
		reported[obj] = true
		pass.Reportf(id.Pos(),
			"goroutine captures *rng.Source %q declared outside its body; concurrent draws race and make results depend on scheduling — give each goroutine its own stream via rng.Stream(seed, label, i)",
			id.Name)
		return true
	})
}

// isRNGSourcePtr reports whether t is *rng.Source from the repository's
// internal/rng package.
func isRNGSourcePtr(t types.Type) bool {
	p, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Source" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/rng")
}

// checkMapRange flags a range over a map whose body feeds ordered output:
// appending to a slice declared outside the loop (unless that slice is
// subsequently sorted in the same function) or printing directly.
func checkMapRange(pass *Pass, info *types.Info, loop *ast.RangeStmt, sorted map[types.Object]bool) {
	tv, ok := info.Types[loop.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// append(outer, ...) in any assignment position.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
				dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
				if !ok {
					return true
				}
				obj := info.Uses[dst]
				if obj == nil || sorted[obj] {
					return true
				}
				if declaredOutside(pass, obj, loop) {
					pass.Reportf(call.Pos(),
						"append to %q inside a map range: map iteration order is randomized, so the output order varies run to run; sort afterwards or iterate a sorted key slice",
						dst.Name)
				}
			}
			return true
		}
		// Direct output in map order.
		obj := calleeObject(info, call)
		if obj != nil && objectPkgPath(obj) == "fmt" {
			pass.Reportf(call.Pos(),
				"fmt.%s inside a map range emits output in randomized map order; iterate a sorted key slice",
				obj.Name())
		}
		return true
	})
}

// declaredOutside reports whether obj's declaration lies outside the
// loop's source range.
func declaredOutside(pass *Pass, obj types.Object, loop *ast.RangeStmt) bool {
	pos := obj.Pos()
	return pos < loop.Pos() || pos > loop.End()
}
