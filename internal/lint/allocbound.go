package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// allocboundScope: the packages that decode hostile wire bytes.
var allocboundScope = []string{"transport", "server", "protocol"}

func init() {
	register(&Analyzer{
		Name:     "allocbound",
		Doc:      "allocation sizes and loop bounds derived from decoded wire input need a cap check first",
		Severity: Error,
		Run:      runAllocbound,
	})
}

func runAllocbound(pass *Pass) {
	if !pass.InScope(allocboundScope...) {
		return
	}
	ann := collectAnnotations([]*Package{pass.Pkg})
	for _, f := range pass.Pkg.Files {
		if isGenerated(f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			newAllocCheck(pass, ann, fn).run()
		}
	}
}

// posRange is a half-open source interval in which a hostile value is
// known to be bounded.
type posRange struct{ from, to token.Pos }

// allocCheck analyzes one function. Hostile entities are identified by a
// string key: locals by object identity, wire-struct field reads by their
// rendered selector (so `e.Round` stays one entity across uses). A cap
// check clears an entity over a source interval:
//
//   - exit guard — `if x > Max { return/continue/break/panic }` (also as a
//     switch case): cleared from the end of the guard statement to the end
//     of the function. The comparison must bound the hostile side from
//     above; `if x < lowWater { continue }` proves nothing about how big
//     x is.
//   - in-body guard — `if x <= Max { ... }`: cleared inside the body.
type allocCheck struct {
	pass *Pass
	ann  *annotations
	fn   *ast.FuncDecl

	tainted map[string]bool
	cleared map[string][]posRange
	changed bool
}

func newAllocCheck(pass *Pass, ann *annotations, fn *ast.FuncDecl) *allocCheck {
	return &allocCheck{
		pass:    pass,
		ann:     ann,
		fn:      fn,
		tainted: make(map[string]bool),
		cleared: make(map[string][]posRange),
	}
}

func (ac *allocCheck) run() {
	// The clear set grows monotonically; taint is recomputed from
	// scratch against it each round, so a guard discovered late retracts
	// the taint of everything assigned from the now-bounded value
	// (`totalRounds = e.Round` after the cap check must come out clean).
	for i := 0; i < 8; i++ {
		ac.recomputeTaint()
		ac.changed = false
		ac.collectGuards()
		if !ac.changed {
			break
		}
	}
	ac.flag()
}

// recomputeTaint rebuilds the tainted-entity set to a fixpoint under the
// current clear intervals.
func (ac *allocCheck) recomputeTaint() {
	ac.tainted = make(map[string]bool)
	for {
		before := len(ac.tainted)
		ac.collectTaint()
		if len(ac.tainted) == before {
			return
		}
	}
}

func (ac *allocCheck) info() *types.Info { return ac.pass.Pkg.Info }

// entityKey returns the tracking key for an expression, or "" when the
// expression is not a trackable entity.
func (ac *allocCheck) entityKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := ac.info().Uses[e]
		if obj == nil {
			obj = ac.info().Defs[e]
		}
		if obj == nil {
			return ""
		}
		return fmt.Sprintf("obj:%p", obj)
	case *ast.SelectorExpr:
		if t := ac.info().TypeOf(e.X); t != nil && ac.ann.isWireStruct(t) {
			return "sel:" + renderExpr(e)
		}
	}
	return ""
}

// wireRoot reports whether the expression is a primary hostile value: a
// field read on a //vklint:wire struct, or a binary.ByteOrder integer
// decode.
func (ac *allocCheck) wireRoot(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if t := ac.info().TypeOf(e.X); t != nil && ac.ann.isWireStruct(t) {
			return true
		}
	case *ast.CallExpr:
		if fn, ok := calleeObject(ac.info(), e).(*types.Func); ok {
			if objectPkgPath(fn) == "encoding/binary" {
				switch fn.Name() {
				case "Uint16", "Uint32", "Uint64", "Varint", "Uvarint":
					return true
				}
			}
		}
	}
	return false
}

// hostileAt reports whether expr carries an unbounded wire value at pos:
// it is (or contains) a wire root or a tainted entity whose bound has not
// been established before pos. len/cap results are always safe — the
// codec itself caps what was ever allocated.
func (ac *allocCheck) hostileAt(expr ast.Expr, pos token.Pos) bool {
	hostile := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if hostile {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
				return false
			}
			if ac.wireRoot(n) && !ac.clearedAt(ac.entityKey(n), pos) {
				hostile = true
				return false
			}
		case *ast.SelectorExpr:
			if ac.wireRoot(n) && !ac.clearedAt(ac.entityKey(n), pos) {
				hostile = true
			}
			return false // don't descend: e.Round's `e` is not itself an entity
		case *ast.Ident:
			key := ac.entityKey(n)
			if key != "" && ac.tainted[key] && !ac.clearedAt(key, pos) {
				hostile = true
			}
		}
		return true
	})
	return hostile
}

func (ac *allocCheck) clearedAt(key string, pos token.Pos) bool {
	if key == "" {
		return false
	}
	for _, r := range ac.cleared[key] {
		if pos >= r.from && pos < r.to {
			return true
		}
	}
	return false
}

// collectTaint spreads wire taint through assignments: `r := e.Round`
// makes r hostile wherever e.Round was still unchecked at the assignment.
func (ac *allocCheck) collectTaint() {
	ast.Inspect(ac.fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			if !ac.hostileAt(as.Rhs[i], as.Pos()) {
				continue
			}
			key := ac.entityKey(lhs)
			if key != "" && !ac.tainted[key] {
				ac.tainted[key] = true
				ac.changed = true
			}
		}
		return true
	})
}

func (ac *allocCheck) collectGuards() {
	ast.Inspect(ac.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			for _, leaf := range orLeaves(n.Cond) {
				key, upper := ac.guardLeaf(leaf)
				if key == "" {
					continue
				}
				if upper && terminates(n.Body) {
					ac.addClear(key, posRange{n.End(), ac.fn.End()})
				} else if !upper {
					ac.addClear(key, posRange{n.Body.Pos(), n.Body.End()})
				}
			}
		case *ast.SwitchStmt:
			if n.Tag != nil {
				return true
			}
			for _, c := range n.Body.List {
				cc := c.(*ast.CaseClause)
				if !terminatesStmts(cc.Body) {
					continue
				}
				for _, cond := range cc.List {
					for _, leaf := range orLeaves(cond) {
						if key, upper := ac.guardLeaf(leaf); key != "" && upper {
							ac.addClear(key, posRange{n.End(), ac.fn.End()})
						}
					}
				}
			}
		}
		return true
	})
}

// guardLeaf inspects one comparison: it returns the guarded entity key
// and whether the comparison bounds that entity from above (the direction
// an exit guard needs; the opposite direction is an in-body bound).
func (ac *allocCheck) guardLeaf(e ast.Expr) (key string, upperBound bool) {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok {
		return "", false
	}
	keyOf := func(side ast.Expr) string {
		k := ac.entityKey(side)
		if k != "" && (ac.tainted[k] || ac.wireRoot(side)) {
			return k
		}
		return ""
	}
	switch be.Op {
	case token.GTR, token.GEQ: // x > Max (exit) | Max > x (in-body)
		if k := keyOf(be.X); k != "" {
			return k, true
		}
		if k := keyOf(be.Y); k != "" {
			return k, false
		}
	case token.LSS, token.LEQ: // x < Max (in-body) | Max < x (exit)
		if k := keyOf(be.X); k != "" {
			return k, false
		}
		if k := keyOf(be.Y); k != "" {
			return k, true
		}
	case token.NEQ, token.EQL:
		// Equality against a constant pins the value either way.
		if k := keyOf(be.X); k != "" {
			return k, be.Op == token.NEQ
		}
		if k := keyOf(be.Y); k != "" {
			return k, be.Op == token.NEQ
		}
	}
	return "", false
}

func (ac *allocCheck) addClear(key string, r posRange) {
	for _, have := range ac.cleared[key] {
		if have == r {
			return
		}
	}
	ac.cleared[key] = append(ac.cleared[key], r)
	ac.changed = true
}

func (ac *allocCheck) flag() {
	ast.Inspect(ac.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "make" && len(n.Args) > 1 {
				if _, isBuiltin := calleeObject(ac.info(), n).(*types.Builtin); !isBuiltin {
					return true
				}
				for _, arg := range n.Args[1:] {
					if ac.hostileAt(arg, n.Pos()) {
						ac.pass.Reportf(n.Pos(), "make sized by decoded wire input without a cap check; a hostile peer picks the allocation size")
						break
					}
				}
			}
		case *ast.ForStmt:
			if n.Cond == nil {
				return true
			}
			for _, leaf := range orLeaves(n.Cond) {
				be, ok := ast.Unparen(leaf).(*ast.BinaryExpr)
				if !ok {
					continue
				}
				if ac.hostileAt(be.X, n.Pos()) || ac.hostileAt(be.Y, n.Pos()) {
					ac.pass.Reportf(n.Pos(), "loop bound derives from decoded wire input without a cap check; a hostile peer picks the iteration count")
					break
				}
			}
		}
		return true
	})
}

// orLeaves splits an || chain into its comparison leaves.
func orLeaves(e ast.Expr) []ast.Expr {
	if be, ok := ast.Unparen(e).(*ast.BinaryExpr); ok && be.Op == token.LOR {
		return append(orLeaves(be.X), orLeaves(be.Y)...)
	}
	return []ast.Expr{e}
}

// terminates reports whether a guard body unconditionally leaves the
// enclosing flow (return, continue, break, goto, or panic).
func terminates(body *ast.BlockStmt) bool {
	return terminatesStmts(body.List)
}

func terminatesStmts(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
