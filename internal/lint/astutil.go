package lint

import (
	"go/ast"
	"go/types"
	"strings"
	"unicode"
)

// calleeObject resolves the object a call expression invokes: the
// function or method named by the call, or nil for calls through function
// values, function literals, and conversions.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// objectPkgPath returns the import path of the package an object is
// declared in, or "" for builtins and universe objects.
func objectPkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// isPkgFunc reports whether the call invokes pkgPath.name.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := calleeObject(info, call)
	return obj != nil && obj.Name() == name && objectPkgPath(obj) == pkgPath
}

// lastErrorResult reports whether the call's (possibly multi-valued)
// result ends in an error.
func lastErrorResult(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObject(info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// words splits an identifier into lowercase words on camelCase humps,
// underscores, and digits: "bloomKeyBits" → [bloom key bits].
func words(name string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	runes := []rune(name)
	for i, r := range runes {
		switch {
		case r == '_' || unicode.IsDigit(r):
			flush()
		case unicode.IsUpper(r):
			// A new word starts at an upper rune preceded by a lower rune
			// (camelCase) or followed by a lower rune (end of an acronym:
			// "MACKey" → MAC, Key).
			if i > 0 && (unicode.IsLower(runes[i-1]) || (i+1 < len(runes) && unicode.IsLower(runes[i+1]))) {
				flush()
			}
			cur.WriteRune(r)
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}

// secretWords are the identifier words that mark key/MAC/secret material.
var secretWords = map[string]bool{
	"mac": true, "macs": true, "hmac": true,
	"key": true, "keys": true,
	"secret": true, "secrets": true,
	"token": true, "tokens": true,
	"tag": true, "tags": true,
	"digest": true, "digests": true,
}

// isSecretName reports whether an identifier names key/MAC/secret
// material by the repo's naming convention.
func isSecretName(name string) bool {
	for _, w := range words(name) {
		if secretWords[w] {
			return true
		}
	}
	return false
}

// keyMaterialWords is the narrower set the zeroize analyzer uses: only
// names that denote actual key material (MAC tags and the like are
// public transcript data and need no wiping).
var keyMaterialWords = map[string]bool{
	"key": true, "keys": true, "secret": true, "secrets": true,
}

// isKeyMaterialName reports whether an identifier names key material
// proper.
func isKeyMaterialName(name string) bool {
	for _, w := range words(name) {
		if keyMaterialWords[w] {
			return true
		}
	}
	return false
}

// exprName extracts the most meaningful identifier from an expression
// for secret-name matching: the identifier itself, a selector's field or
// method name, a called function's name, or the element expression of an
// index/slice.
func exprName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.CallExpr:
		return exprName(e.Fun)
	case *ast.IndexExpr:
		return exprName(e.X)
	case *ast.SliceExpr:
		return exprName(e.X)
	case *ast.UnaryExpr:
		return exprName(e.X)
	case *ast.StarExpr:
		return exprName(e.X)
	}
	return ""
}

// isByteSlice reports whether t is []byte (possibly through a named
// type's underlying).
func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// isComparableSecretType reports whether t is a type whose == comparison
// could leak timing on secret contents: strings and byte arrays.
func isComparableSecretType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Array:
		b, ok := u.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8)
	}
	return false
}

// typeContainsMutex reports whether t directly or transitively (through
// struct fields and embedded structs) contains a sync.Mutex or
// sync.RWMutex by value.
func typeContainsMutex(t types.Type) bool {
	return containsMutex(t, make(map[types.Type]bool))
}

func containsMutex(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex" || obj.Name() == "WaitGroup" || obj.Name() == "Once") {
			return true
		}
		return containsMutex(named.Underlying(), seen)
	}
	if st, ok := t.(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			if containsMutex(st.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// isMutexType reports whether t (or *t) is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// renderExpr formats a simple expression (identifiers and selectors) as
// source text, for use as a lockset key and in messages.
func renderExpr(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return renderExpr(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + renderExpr(e.X)
	case *ast.UnaryExpr:
		return renderExpr(e.X)
	case *ast.IndexExpr:
		return renderExpr(e.X) + "[...]"
	case *ast.CallExpr:
		return renderExpr(e.Fun) + "(...)"
	}
	return "?"
}

// usesObject reports whether the subtree rooted at n contains an
// identifier resolving to obj.
func usesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
