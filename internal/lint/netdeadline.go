package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// netdeadlineScope: the serving layer. Everywhere else blocking is either
// in-process (memConn) or test-only.
var netdeadlineScope = []string{"server", "transport", "lora"}

func init() {
	register(&Analyzer{
		Name:     "netdeadline",
		Doc:      "every blocking read in the serving layer must be governed by a deadline or a liveness escape",
		Severity: Error,
		Run:      runNetdeadline,
	})
}

// netReadMethods are the net-package blocking reads the analyzer tracks.
var netReadMethods = map[string]bool{
	"Read": true, "ReadFrom": true, "ReadFromUDP": true, "ReadMsgUDP": true,
}

// ioReadFuncs block until the underlying net read returns.
var ioReadFuncs = map[string]bool{
	"ReadFull": true, "ReadAtLeast": true,
}

func runNetdeadline(pass *Pass) {
	if !pass.InScope(netdeadlineScope...) {
		return
	}
	for _, f := range pass.Pkg.Files {
		if isGenerated(f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFuncDeadlines(pass, fn)
		}
	}
}

func checkFuncDeadlines(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info

	// Every SetReadDeadline/SetDeadline call in the function. A read is
	// governed when some deadline call precedes it in source order — a
	// deliberately syntactic rule: a dead peer then wakes the read within
	// one deadline period on every path that reaches it.
	var deadlines []token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "SetReadDeadline", "SetDeadline":
				deadlines = append(deadlines, call.Pos())
			}
		}
		return true
	})
	governed := func(pos token.Pos) bool {
		for _, d := range deadlines {
			if d < pos {
				return true
			}
		}
		return false
	}

	// Channel receives inside select communication clauses are judged as
	// part of their select, not as bare receives.
	selectRecv := make(map[*ast.UnaryExpr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		escape := false
		for _, c := range sel.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm == nil { // default clause: never blocks
				escape = true
				continue
			}
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				if ue, ok := m.(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
					selectRecv[ue] = true
					if recvIsEscape(info, ue.X) {
						escape = true
					}
				}
				return true
			})
		}
		if !escape {
			pass.Reportf(sel.Pos(), "select can block forever: add a default case, a timer case, or a done-channel (chan struct{}) case")
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			obj := calleeObject(info, n)
			fnObj, ok := obj.(*types.Func)
			if !ok {
				return true
			}
			pkg := objectPkgPath(fnObj)
			name := fnObj.Name()
			blocking := (pkg == "net" && netReadMethods[name]) ||
				(pkg == "io" && ioReadFuncs[name])
			if blocking && !governed(n.Pos()) {
				pass.Reportf(n.Pos(), "blocking %s.%s without a preceding SetReadDeadline/SetDeadline in this function; a dead peer wedges this goroutine forever", pkg, name)
			}
		case *ast.UnaryExpr:
			if n.Op != token.ARROW || selectRecv[n] {
				return true
			}
			if recvIsTimer(info, n.X) {
				return true
			}
			pass.Reportf(n.Pos(), "bare channel receive can block forever: select against a timer or done channel")
		}
		return true
	})
}

// recvIsTimer reports whether the received channel carries time.Time —
// a receive that by construction fires after a bounded wait.
func recvIsTimer(info *types.Info, ch ast.Expr) bool {
	elem := chanElem(info, ch)
	if elem == nil {
		return false
	}
	named, ok := elem.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "time" && named.Obj().Name() == "Time"
}

// recvIsEscape reports whether a select receive case is a liveness
// escape: a timer (time.Time) or a lifecycle done channel (chan struct{}).
func recvIsEscape(info *types.Info, ch ast.Expr) bool {
	if recvIsTimer(info, ch) {
		return true
	}
	elem := chanElem(info, ch)
	if elem == nil {
		return false
	}
	st, ok := elem.Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

func chanElem(info *types.Info, ch ast.Expr) types.Type {
	t := info.TypeOf(ch)
	if t == nil {
		return nil
	}
	c, ok := t.Underlying().(*types.Chan)
	if !ok {
		return nil
	}
	return c.Elem()
}
