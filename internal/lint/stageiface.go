package lint

import (
	"strconv"
	"strings"
)

// stageifaceScope is the set of scheme-driving packages: they run key
// establishment end to end for whatever scheme they are handed, so they
// must see schemes only through the pipeline stage interfaces. A direct
// dependency on a concrete stage package re-welds the driver to one
// scheme's internals and silently breaks every other registered scheme.
var stageifaceScope = []string{"protocol", "exp"}

// stageifaceBanned are the concrete stage-implementation packages
// (relative to <module>/internal/) the scope must not reference.
// Blank imports are exempt: they only register schemes with core's
// registry (the database/sql driver pattern) and cannot name a type.
var stageifaceBanned = map[string]bool{
	"nn":        true,
	"reconcile": true,
	"quantize":  true,
	"baselines": true,
}

func init() {
	register(&Analyzer{
		Name:     "stageiface",
		Doc:      "scheme drivers (protocol, exp) must use pipeline stage interfaces, never concrete stage packages",
		Severity: Error,
		Run:      runStageiface,
	})
}

func runStageiface(pass *Pass) {
	if !pass.InScope(stageifaceScope...) {
		return
	}
	prefix := pass.Module.Path + "/internal/"
	for _, f := range pass.Pkg.Files {
		if isGenerated(f) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			rest, ok := strings.CutPrefix(path, prefix)
			if !ok || !stageifaceBanned[rest] {
				continue
			}
			if imp.Name != nil && imp.Name.Name == "_" {
				continue // registration-only import; no types reachable
			}
			pass.Reportf(imp.Pos(),
				"package %s imports concrete stage package %s; drive schemes through pipeline interfaces (core.NewScheme + pipeline.Stages)",
				pass.Pkg.Name, path)
		}
	}
}
