package exp

import (
	"bytes"

	"repro/internal/baselines"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/lora"
	"repro/internal/quantize"
	"repro/internal/reconcile"
	"repro/internal/rng"
	"repro/internal/trace"
)

func init() {
	register("fig10", Fig10)
	register("fig11", Fig11)
	register("tab1", Table1)
	register("fig12", Fig12)
	register("fig13", Fig13)
	register("fig14", Fig14)
	register("ablate-theta", AblateTheta)
	register("ablate-bloom", AblateBloom)
}

// trainFor builds and trains a Vehicle-Key system for one scenario.
func trainFor(sc trace.Scenario, cfg RunConfig, seedOff int64, sysCfg core.Config) (*core.System, *trace.Dataset, *trace.Dataset, error) {
	ds, err := trace.Build(sc, cfg.Seed+seedOff, cfg.Samples, sysCfg.SeqLen, trace.DefaultExtract())
	if err != nil {
		return nil, nil, nil, err
	}
	src := rng.New(cfg.Seed + seedOff + 1)
	train, _, test := ds.Split(0.75, 0.05, src.Derive("split"))
	sys := core.New(sysCfg, src.Derive("sys"))
	if _, err := sys.Train(train, cfg.Epochs, src.Derive("train")); err != nil {
		return nil, nil, nil, err
	}
	return sys, train, test, nil
}

// Fig10 regenerates Fig. 10: key agreement with and without the
// prediction module, per scenario.
func Fig10(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "fig10",
		Title:  "Impact of the prediction module on agreement rate",
		Header: []string{"scenario", "with prediction", "keep", "without", "keep", "gain"},
		Notes:  []string{"paper: prediction adds +5.48/+11.71/+5.42/+10.34 pp in V2I-U/V2I-R/V2V-U/V2V-R"},
	}
	for i, sc := range trace.Scenarios() {
		sys, _, test, err := trainFor(sc, cfg, int64(1000+i*37), core.DefaultConfig())
		if err != nil {
			return Report{}, err
		}
		withA, withK, woA, woK, err := ablatePrediction(sys, test)
		if err != nil {
			return Report{}, err
		}
		r.Rows = append(r.Rows, []string{
			sc.Name, pct(withA), f("%.2f", withK), pct(woA), f("%.2f", woK), f("%+.2f pp", 100*(withA-woA)),
		})
	}
	return r, nil
}

// ablatePrediction measures agreement with the pipeline vs with Alice's
// raw sequence through the same guard/quantizer.
func ablatePrediction(sys *core.System, test *trace.Dataset) (withA, withK, woA, woK float64, err error) {
	b := sys.Cfg.BitsPerSample
	n := float64(len(test.Samples))
	for _, smp := range test.Samples {
		bobBits, bobKept, qerr := sys.BobQuantize(smp.Bob)
		if qerr != nil {
			return 0, 0, 0, 0, qerr
		}
		aliceBits, finalKept := sys.AliceSelect(smp.Alice, bobKept)
		bobFinal := core.SelectAt(bobBits, bobKept, finalKept, b)
		withA += bitAgree(aliceBits, bobFinal)
		withK += float64(len(finalKept)) / float64(sys.Cfg.SeqLen)

		res, qerr := quantize.MultiBit(smp.Alice, quantize.MultiBitConfig{
			BitsPerSample: b,
			GuardRatio:    sys.Cfg.PredGuardRatio,
			BlockSize:     sys.Cfg.SeqLen,
			Thresholds:    quantize.GaussianThresholds(b),
			NaturalCoding: true,
		})
		if qerr != nil {
			return 0, 0, 0, 0, qerr
		}
		rawKept := intersectInts(res.Kept, bobKept)
		rawBits := core.SelectAt(res.Bits, res.Kept, rawKept, b)
		bobRaw := core.SelectAt(bobBits, bobKept, rawKept, b)
		woA += bitAgree(rawBits, bobRaw)
		woK += float64(len(rawKept)) / float64(sys.Cfg.SeqLen)
	}
	return withA / n, withK / n, woA / n, woK / n, nil
}

func bitAgree(a, b []byte) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	return float64(same) / float64(len(a))
}

func intersectInts(a, b []int) []int {
	in := make(map[int]bool, len(b))
	for _, x := range b {
		in[x] = true
	}
	var out []int
	for _, x := range a {
		if in[x] {
			out = append(out, x)
		}
	}
	return out
}

// Fig11 regenerates Fig. 11: the autoencoder reconciler at several
// decoder widths against CS reconciliation — agreement and compute cost.
func Fig11(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "fig11",
		Title:  "Reconciliation: autoencoder width sweep vs CS",
		Header: []string{"method", "agree@3", "agree@5", "agree@8", "compute ops", "vs CS"},
		Notes: []string{
			"agreement at k mismatched bits out of 64; CS is LoRa-Key's iterative l1 decode (20x64)",
			"decoder widths are per-position shared units; 16 plays the role of the paper's AE-64 balance point",
		},
	}
	trials := 60
	epochs := 10
	if cfg.Quick {
		trials, epochs = 30, 6
	}
	src := rng.New(cfg.Seed + 2000)
	eval := func(rec func(a, b []byte) (reconcile.Outcome, error)) ([3]float64, int, error) {
		var agr [3]float64
		ops := 0
		for ki, k := range []int{3, 5, 8} {
			for tr := 0; tr < trials; tr++ {
				kb := src.Bits(64)
				ka := flip(kb, k, src)
				out, err := rec(ka, kb)
				if err != nil {
					return agr, 0, err
				}
				agr[ki] += out.Agreement()
				ops = out.ComputeOps
			}
			agr[ki] /= float64(trials)
		}
		return agr, ops, nil
	}

	csCfg := reconcile.DefaultCSConfig()
	csAgr, csOps, err := eval(func(a, b []byte) (reconcile.Outcome, error) {
		return reconcile.CSISTA(a, b, csCfg)
	})
	if err != nil {
		return Report{}, err
	}

	for _, units := range []int{8, 16, 32, 64} {
		aeCfg := reconcile.AEConfig{KeyBits: 64, CodeDim: 32, DecoderUnits: units, MaxMismatch: 0.15}
		ae := reconcile.TrainAE(aeCfg, epochs, 200, rng.New(cfg.Seed+int64(units)))
		agr, ops, err := eval(func(a, b []byte) (reconcile.Outcome, error) {
			return ae.Reconcile(a, b, []byte("fig11"))
		})
		if err != nil {
			return Report{}, err
		}
		r.Rows = append(r.Rows, []string{
			f("AE-%d", units), pct(agr[0]), pct(agr[1]), pct(agr[2]),
			f("%d", ops), f("%.1fx cheaper", float64(csOps)/float64(ops)),
		})
	}
	r.Rows = append(r.Rows, []string{
		"CS (ISTA)", pct(csAgr[0]), pct(csAgr[1]), pct(csAgr[2]), f("%d", csOps), "1.0x",
	})
	return r, nil
}

func flip(key []byte, k int, src *rng.Source) []byte {
	out := make([]byte, len(key))
	copy(out, key)
	perm := src.Perm(len(key))
	for i := 0; i < k && i < len(perm); i++ {
		out[perm[i]] ^= 1
	}
	return out
}

// Table1 regenerates Table I: agreement rate per device type and speed.
func Table1(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "tab1",
		Title:  "Agreement rate of different devices and speeds",
		Header: []string{"device", "30 km/h", "60 km/h", "90 km/h", "mean"},
		Notes:  []string{"paper: 98.33%–99.33% across all cells, mean 98.87%"},
	}
	speeds := []float64{30, 60, 90}
	for di, dev := range lora.AllDevices() {
		row := []string{dev.String()}
		var mean float64
		for si, v := range speeds {
			sc := trace.NewScenario(channel.Urban, channel.V2I)
			sc.SpeedAKmh = v
			sc.Device = dev
			sys, _, test, err := trainFor(sc, cfg, int64(3000+di*97+si*11), core.DefaultConfig())
			if err != nil {
				return Report{}, err
			}
			m, err := sys.Evaluate(test, []byte("tab1"))
			if err != nil {
				return Report{}, err
			}
			row = append(row, pct(m.PostKAR))
			mean += m.PostKAR
		}
		row = append(row, pct(mean/float64(len(speeds))))
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}

// Fig12 and Fig13 share their per-scenario evaluation.
func comparisonRows(cfg RunConfig) (vk []core.Metrics, base [][]baselines.Result, err error) {
	for i, sc := range trace.Scenarios() {
		sys, _, test, terr := trainFor(sc, cfg, int64(4000+i*13), core.DefaultConfig())
		if terr != nil {
			return nil, nil, terr
		}
		m, merr := sys.Evaluate(test, []byte("cmp"))
		if merr != nil {
			return nil, nil, merr
		}
		vk = append(vk, m)

		exch := cfg.Samples * 4
		if exch > 1200 {
			exch = 1200
		}
		col := trace.NewCollector(sc, cfg.Seed+int64(5000+i))
		ex := col.Run(exch)
		src := rng.New(cfg.Seed + int64(6000+i))
		lk, berr := baselines.LoRaKey(ex)
		if berr != nil {
			return nil, nil, berr
		}
		han, berr := baselines.Han(ex, src)
		if berr != nil {
			return nil, nil, berr
		}
		gao, berr := baselines.Gao(ex)
		if berr != nil {
			return nil, nil, berr
		}
		base = append(base, []baselines.Result{lk, han, gao})
	}
	return vk, base, nil
}

// Fig12 regenerates Fig. 12: agreement-rate comparison with the
// state-of-the-art baselines.
func Fig12(cfg RunConfig) (Report, error) {
	vk, base, err := comparisonRows(cfg)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		ID:     "fig12",
		Title:  "Key agreement rate vs state of the art",
		Header: []string{"scenario", "Vehicle-Key", "LoRa-Key", "Han et al.", "Gao et al."},
		Notes:  []string{"paper: Vehicle-Key +49.81 pp over LoRa-Key, +20.48 over Han, +15.10 over Gao on average"},
	}
	for i, sc := range trace.Scenarios() {
		r.Rows = append(r.Rows, []string{
			sc.Name, pct(vk[i].PostKAR), pct(base[i][0].PostKAR), pct(base[i][1].PostKAR), pct(base[i][2].PostKAR),
		})
	}
	return r, nil
}

// Fig13 regenerates Fig. 13: key generation rate comparison.
func Fig13(cfg RunConfig) (Report, error) {
	vk, base, err := comparisonRows(cfg)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		ID:     "fig13",
		Title:  "Key generation rate vs state of the art (net secret bit/s; gross in parentheses)",
		Header: []string{"scenario", "Vehicle-Key", "LoRa-Key", "Han et al.", "Gao et al."},
		Notes: []string{
			"net rate subtracts the bits revealed publicly during reconciliation — Cascade's",
			"interactive parities cost Han et al. nearly all of its gross rate at vehicular BDR",
			"paper: Vehicle-Key 9x over LoRa-Key/Han, 14x over Gao (gross accounting)",
		},
	}
	cell := func(net, gross float64) string { return f("%.3f (%.3f)", net, gross) }
	for i, sc := range trace.Scenarios() {
		r.Rows = append(r.Rows, []string{
			sc.Name,
			cell(vk[i].NetKGR, vk[i].KGR),
			cell(base[i][0].NetKGR, base[i][0].KGR),
			cell(base[i][1].NetKGR, base[i][1].KGR),
			cell(base[i][2].NetKGR, base[i][2].KGR),
		})
	}
	return r, nil
}

// Fig14 regenerates Fig. 14: transfer learning to new environments.
func Fig14(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "fig14",
		Title:  "Generalization: fine-tuning the V2I-urban model (M1) on new scenarios",
		Header: []string{"target", "variant", "epochs", "agreement"},
		Notes:  []string{"paper: transfer-10% reaches traditional training's accuracy with 20 epochs and 10% of the data"},
	}
	scenarios := trace.Scenarios()
	baseSys, _, _, err := trainFor(scenarios[0], cfg, 7000, core.DefaultConfig())
	if err != nil {
		return Report{}, err
	}
	ftEpochs := 10
	if cfg.Quick {
		ftEpochs = 5
	}
	for i, target := range scenarios[1:] {
		ds, err := trace.Build(target, cfg.Seed+int64(7100+i), cfg.Samples, baseSys.Cfg.SeqLen, trace.DefaultExtract())
		if err != nil {
			return Report{}, err
		}
		src := rng.New(cfg.Seed + int64(7200+i))
		train, _, test := ds.Split(0.75, 0.05, src.Derive("split"))

		for _, frac := range []float64{0.10, 0.50, 1.0} {
			ft := cloneSystem(baseSys, src.Derive(f("clone-%f", frac)))
			if _, err := ft.FineTune(train.Subset(frac), ftEpochs, src.Derive("ft")); err != nil {
				return Report{}, err
			}
			m, err := ft.Evaluate(test, []byte("fig14"))
			if err != nil {
				return Report{}, err
			}
			r.Rows = append(r.Rows, []string{
				"M1→" + target.Name, f("transfer-%.0f%%", frac*100), f("%d", ftEpochs), pct(m.PostKAR),
			})
		}
		fresh := core.New(core.DefaultConfig(), src.Derive("fresh"))
		if _, err := fresh.Train(train, ftEpochs, src.Derive("fresh-train")); err != nil {
			return Report{}, err
		}
		m, err := fresh.Evaluate(test, []byte("fig14"))
		if err != nil {
			return Report{}, err
		}
		r.Rows = append(r.Rows, []string{"M1→" + target.Name, "traditional", f("%d", ftEpochs), pct(m.PostKAR)})
	}
	return r, nil
}

// cloneSystem deep-copies a trained system so fine-tuning variants do not
// interfere.
func cloneSystem(sys *core.System, src *rng.Source) *core.System {
	out := core.New(sys.Cfg, src)
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		panic(err)
	}
	if err := out.Load(&buf); err != nil {
		panic(err)
	}
	return out
}

// AblateTheta sweeps the joint-loss weight θ (design-choice ablation).
func AblateTheta(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "ablate-theta",
		Title:  "Joint-loss weight θ ablation (V2I urban)",
		Header: []string{"theta", "preKAR", "postKAR"},
		Notes:  []string{"paper selects θ = 0.9 experimentally"},
	}
	sc := trace.NewScenario(channel.Urban, channel.V2I)
	for _, theta := range []float64{0.5, 0.7, 0.9, 0.99} {
		sysCfg := core.DefaultConfig()
		sysCfg.Theta = theta
		sys, _, test, err := trainFor(sc, cfg, 8000, sysCfg)
		if err != nil {
			return Report{}, err
		}
		m, err := sys.Evaluate(test, []byte("theta"))
		if err != nil {
			return Report{}, err
		}
		r.Rows = append(r.Rows, []string{f("%.2f", theta), pct(m.PreKAR), pct(m.PostKAR)})
	}
	return r, nil
}

// AblateBloom measures the Bloom filter's security role: how well an
// eavesdropper can exploit the syndrome with and without it.
func AblateBloom(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "ablate-bloom",
		Title:  "Bloom filter ablation: syndrome reuse across sessions",
		Header: []string{"condition", "same-bits syndrome match"},
		Notes: []string{
			"with per-session salts, identical key material yields different syndromes across sessions (replay window closed)",
		},
	}
	ae := reconcile.TrainAE(reconcile.AEConfig{KeyBits: 64, CodeDim: 32, DecoderUnits: 16}, 6, 150, rng.New(cfg.Seed+9000))
	src := rng.New(cfg.Seed + 9001)
	key := src.Bits(64)

	same := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		s1 := []byte(f("session-a-%d", i))
		s2 := []byte(f("session-b-%d", i))
		y1 := ae.EncodeBob(reconcile.NewBloomFilter(64, s1).Transform(key))
		y2 := ae.EncodeBob(reconcile.NewBloomFilter(64, s2).Transform(key))
		if floatsEqual(y1, y2) {
			same++
		}
	}
	r.Rows = append(r.Rows, []string{"with Bloom filter (salted)", f("%d/%d", same, trials)})

	y := ae.EncodeBob(key)
	same = 0
	for i := 0; i < trials; i++ {
		if floatsEqual(y, ae.EncodeBob(key)) {
			same++
		}
	}
	r.Rows = append(r.Rows, []string{"without Bloom filter", f("%d/%d", same, trials)})
	return r, nil
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
