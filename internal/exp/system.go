package exp

import (
	// Blank import: registers the lora-key/han/gao builders with core's
	// scheme registry. The experiments below reach every baseline through
	// core.NewScheme and the pipeline interfaces — the same code path the
	// protocol drives — never through baseline-specific entry points.
	_ "repro/internal/baselines"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/lora"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/trace"
)

func init() {
	register("fig10", Fig10)
	register("fig11", Fig11)
	register("tab1", Table1)
	register("fig12", Fig12)
	register("fig13", Fig13)
	register("fig14", Fig14)
	register("ablate-theta", AblateTheta)
	register("ablate-bloom", AblateBloom)
}

// Fig10 regenerates Fig. 10: key agreement with and without the
// prediction module, one work unit per scenario.
func Fig10(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "fig10",
		Title:  "Impact of the prediction module on agreement rate",
		Header: []string{"scenario", "with prediction", "keep", "without", "keep", "gain"},
		Notes:  []string{"paper: prediction adds +5.48/+11.71/+5.42/+10.34 pp in V2I-U/V2I-R/V2V-U/V2V-R"},
	}
	scs := trace.Scenarios()
	rows, err := parMap(cfg, "fig10", len(scs), func(i int, _ *rng.Source) ([]string, error) {
		sys, _, test, err := trainFor(scs[i], cfg, core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		withA, withK, woA, woK, err := ablatePrediction(sys, test)
		if err != nil {
			return nil, err
		}
		return []string{
			scs[i].Name, pct(withA), f("%.2f", withK), pct(woA), f("%.2f", woK), f("%+.2f pp", 100*(withA-woA)),
		}, nil
	})
	if err != nil {
		return Report{}, err
	}
	r.Rows = rows
	return r, nil
}

// ablatePrediction measures agreement with the pipeline vs with Alice's
// raw sequence through the same guard/quantizer.
func ablatePrediction(sys *core.System, test *trace.Dataset) (withA, withK, woA, woK float64, err error) {
	b := sys.Cfg.BitsPerSample
	n := float64(len(test.Samples))
	for _, smp := range test.Samples {
		bobBits, bobKept, qerr := sys.BobQuantize(smp.Bob)
		if qerr != nil {
			return 0, 0, 0, 0, qerr
		}
		aliceBits, finalKept := sys.AliceSelect(smp.Alice, bobKept)
		bobFinal := pipeline.SelectAt(bobBits, bobKept, finalKept, b)
		withA += bitAgree(aliceBits, bobFinal)
		withK += float64(len(finalKept)) / float64(sys.Cfg.SeqLen)

		// The "without prediction" arm feeds Alice's raw sequence through
		// the scheme's own predicted-side quantizer rule.
		rawAll, keptAll, qerr := sys.Stages.Quantizer.QuantizePredicted(smp.Alice)
		if qerr != nil {
			return 0, 0, 0, 0, qerr
		}
		rawKept := intersectInts(keptAll, bobKept)
		rawBits := pipeline.SelectAt(rawAll, keptAll, rawKept, b)
		bobRaw := pipeline.SelectAt(bobBits, bobKept, rawKept, b)
		woA += bitAgree(rawBits, bobRaw)
		woK += float64(len(rawKept)) / float64(sys.Cfg.SeqLen)
	}
	return withA / n, withK / n, woA / n, woK / n, nil
}

func bitAgree(a, b []byte) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	return float64(same) / float64(len(a))
}

func intersectInts(a, b []int) []int {
	in := make(map[int]bool, len(b))
	for _, x := range b {
		in[x] = true
	}
	var out []int
	for _, x := range a {
		if in[x] {
			out = append(out, x)
		}
	}
	return out
}

// fig11Mismatches are the mismatched-bit counts the reconcilers are
// evaluated at.
var fig11Mismatches = [3]int{3, 5, 8}

// fig11Pairs returns the tr-th test pair at k mismatched bits. Pairs are
// derived from (seed, k, trial) alone, so every reconciliation method is
// scored on exactly the same keys — a fairer comparison than sequential
// draws, and independent of which worker evaluates which method.
func fig11Pairs(cfg RunConfig, k, tr int) (ka, kb []byte) {
	src := rng.Stream(cfg.Seed, f("fig11/pairs/k%d", k), tr)
	kb = src.Bits(64)
	ka = flip(kb, k, src)
	return ka, kb
}

type fig11Result struct {
	agr [3]float64
	ops int
}

func fig11Eval(cfg RunConfig, trials int, rec func(a, b []byte) (pipeline.Outcome, error)) (fig11Result, error) {
	var res fig11Result
	for ki, k := range fig11Mismatches {
		for tr := 0; tr < trials; tr++ {
			ka, kb := fig11Pairs(cfg, k, tr)
			out, err := rec(ka, kb)
			if err != nil {
				return fig11Result{}, err
			}
			res.agr[ki] += out.Agreement()
			res.ops = out.ComputeOps
		}
		res.agr[ki] /= float64(trials)
	}
	return res, nil
}

// Fig11 regenerates Fig. 11: the autoencoder reconciler at several
// decoder widths against CS reconciliation — agreement and compute cost.
// Each method (four AE widths plus the CS baseline) is one work unit.
func Fig11(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "fig11",
		Title:  "Reconciliation: autoencoder width sweep vs CS",
		Header: []string{"method", "agree@3", "agree@5", "agree@8", "compute ops", "vs CS"},
		Notes: []string{
			"agreement at k mismatched bits out of 64; CS is LoRa-Key's iterative l1 decode (20x64)",
			"decoder widths are per-position shared units; 16 plays the role of the paper's AE-64 balance point",
		},
	}
	trials := 60
	epochs := 10
	if cfg.Quick {
		trials, epochs = 30, 6
	}
	widths := []int{8, 16, 32, 64}
	// Units 0..len(widths)-1 are the AE variants; the last unit is CS.
	results, err := parMap(cfg, "fig11", len(widths)+1, func(i int, src *rng.Source) (fig11Result, error) {
		if i == len(widths) {
			cs := pipeline.NewCS(pipeline.DefaultCSConfig(), 64)
			return fig11Eval(cfg, trials, func(a, b []byte) (pipeline.Outcome, error) {
				return cs.Reconcile(a, b, nil)
			})
		}
		aeCfg := pipeline.AEConfig{KeyBits: 64, CodeDim: 32, DecoderUnits: widths[i], MaxMismatch: 0.15}
		ae := pipeline.TrainAE(aeCfg, epochs, 200, src.Derive("train"))
		return fig11Eval(cfg, trials, func(a, b []byte) (pipeline.Outcome, error) {
			return ae.Reconcile(a, b, []byte("fig11"))
		})
	})
	if err != nil {
		return Report{}, err
	}
	cs := results[len(widths)]
	for i, units := range widths {
		res := results[i]
		r.Rows = append(r.Rows, []string{
			f("AE-%d", units), pct(res.agr[0]), pct(res.agr[1]), pct(res.agr[2]),
			f("%d", res.ops), f("%.1fx cheaper", float64(cs.ops)/float64(res.ops)),
		})
	}
	r.Rows = append(r.Rows, []string{
		"CS (ISTA)", pct(cs.agr[0]), pct(cs.agr[1]), pct(cs.agr[2]), f("%d", cs.ops), "1.0x",
	})
	return r, nil
}

func flip(key []byte, k int, src *rng.Source) []byte {
	out := make([]byte, len(key))
	copy(out, key)
	perm := src.Perm(len(key))
	for i := 0; i < k && i < len(perm); i++ {
		out[perm[i]] ^= 1
	}
	return out
}

// Table1 regenerates Table I: agreement rate per device type and speed.
// The (device, speed) grid is flattened into independent work units.
func Table1(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "tab1",
		Title:  "Agreement rate of different devices and speeds",
		Header: []string{"device", "30 km/h", "60 km/h", "90 km/h", "mean"},
		Notes:  []string{"paper: 98.33%–99.33% across all cells, mean 98.87%"},
	}
	speeds := []float64{30, 60, 90}
	devices := lora.AllDevices()
	kars, err := parMap(cfg, "tab1", len(devices)*len(speeds), func(u int, _ *rng.Source) (float64, error) {
		dev, v := devices[u/len(speeds)], speeds[u%len(speeds)]
		sc := trace.NewScenario(channel.Urban, channel.V2I)
		sc.SpeedAKmh = v
		sc.Device = dev
		sys, _, test, err := trainFor(sc, cfg, core.DefaultConfig())
		if err != nil {
			return 0, err
		}
		m, err := sys.Evaluate(test, []byte("tab1"))
		if err != nil {
			return 0, err
		}
		return m.PostKAR, nil
	})
	if err != nil {
		return Report{}, err
	}
	for di, dev := range devices {
		row := []string{dev.String()}
		var mean float64
		for si := range speeds {
			kar := kars[di*len(speeds)+si]
			row = append(row, pct(kar))
			mean += kar
		}
		row = append(row, pct(mean/float64(len(speeds))))
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}

// comparisonCell is one scenario's slice of the fig12/fig13 sweep.
type comparisonCell struct {
	vk   core.Metrics
	base []pipeline.StreamResult
}

// evalBaseline builds the named scheme from core's registry and streams
// the pRSSI series through its quantizer/reconciler slots — the unified
// path every baseline shares with Vehicle-Key's own stages.
func evalBaseline(name string, src *rng.Source, ex []trace.Exchange) (pipeline.StreamResult, error) {
	sys, err := core.NewScheme(name, core.DefaultConfig(), src)
	if err != nil {
		return pipeline.StreamResult{}, err
	}
	alice, bob := trace.PRSSI(ex)
	var total float64
	for _, e := range ex {
		total += e.Duration
	}
	return pipeline.EvaluateStream(sys.Stages, alice, bob, total)
}

// comparisonRows runs the Vehicle-Key vs state-of-the-art sweep shared
// by Fig12 and Fig13: one work unit per scenario, memoized so the two
// figures pay for it once.
func comparisonRows(cfg RunConfig) ([]comparisonCell, error) {
	return memo("comparison", cfg, func() ([]comparisonCell, error) {
		scs := trace.Scenarios()
		return parMap(cfg, "comparison", len(scs), func(i int, src *rng.Source) (comparisonCell, error) {
			sys, _, test, err := trainFor(scs[i], cfg, core.DefaultConfig())
			if err != nil {
				return comparisonCell{}, err
			}
			m, err := sys.Evaluate(test, []byte("cmp"))
			if err != nil {
				return comparisonCell{}, err
			}
			exch := cfg.Samples * 4
			if exch > 1200 {
				exch = 1200
			}
			col := trace.NewCollector(scs[i], src.Int63())
			ex := col.Run(exch)
			lk, err := evalBaseline("lora-key", nil, ex)
			if err != nil {
				return comparisonCell{}, err
			}
			han, err := evalBaseline("han", src.Derive("han"), ex)
			if err != nil {
				return comparisonCell{}, err
			}
			gao, err := evalBaseline("gao", nil, ex)
			if err != nil {
				return comparisonCell{}, err
			}
			return comparisonCell{vk: m, base: []pipeline.StreamResult{lk, han, gao}}, nil
		})
	})
}

// Fig12 regenerates Fig. 12: agreement-rate comparison with the
// state-of-the-art baselines.
func Fig12(cfg RunConfig) (Report, error) {
	cells, err := comparisonRows(cfg)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		ID:     "fig12",
		Title:  "Key agreement rate vs state of the art",
		Header: []string{"scenario", "Vehicle-Key", "LoRa-Key", "Han et al.", "Gao et al."},
		Notes:  []string{"paper: Vehicle-Key +49.81 pp over LoRa-Key, +20.48 over Han, +15.10 over Gao on average"},
	}
	for i, sc := range trace.Scenarios() {
		c := cells[i]
		r.Rows = append(r.Rows, []string{
			sc.Name, pct(c.vk.PostKAR), pct(c.base[0].PostKAR), pct(c.base[1].PostKAR), pct(c.base[2].PostKAR),
		})
	}
	return r, nil
}

// Fig13 regenerates Fig. 13: key generation rate comparison.
func Fig13(cfg RunConfig) (Report, error) {
	cells, err := comparisonRows(cfg)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		ID:     "fig13",
		Title:  "Key generation rate vs state of the art (net secret bit/s; gross in parentheses)",
		Header: []string{"scenario", "Vehicle-Key", "LoRa-Key", "Han et al.", "Gao et al."},
		Notes: []string{
			"net rate subtracts the bits revealed publicly during reconciliation — Cascade's",
			"interactive parities cost Han et al. nearly all of its gross rate at vehicular BDR",
			"paper: Vehicle-Key 9x over LoRa-Key/Han, 14x over Gao (gross accounting)",
		},
	}
	cell := func(net, gross float64) string { return f("%.3f (%.3f)", net, gross) }
	for i, sc := range trace.Scenarios() {
		c := cells[i]
		r.Rows = append(r.Rows, []string{
			sc.Name,
			cell(c.vk.NetKGR, c.vk.KGR),
			cell(c.base[0].NetKGR, c.base[0].KGR),
			cell(c.base[1].NetKGR, c.base[1].KGR),
			cell(c.base[2].NetKGR, c.base[2].KGR),
		})
	}
	return r, nil
}

// Fig14 regenerates Fig. 14: transfer learning to new environments. One
// work unit per target scenario; each unit obtains its own clone of the
// shared M1 base model from the training cache.
func Fig14(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "fig14",
		Title:  "Generalization: fine-tuning the V2I-urban model (M1) on new scenarios",
		Header: []string{"target", "variant", "epochs", "agreement"},
		Notes:  []string{"paper: transfer-10% reaches traditional training's accuracy with 20 epochs and 10% of the data"},
	}
	scenarios := trace.Scenarios()
	// Warm the cache serially so the per-target units share one training.
	if _, _, _, err := trainFor(scenarios[0], cfg, core.DefaultConfig()); err != nil {
		return Report{}, err
	}
	ftEpochs := 10
	if cfg.Quick {
		ftEpochs = 5
	}
	targets := scenarios[1:]
	unitRows, err := parMap(cfg, "fig14", len(targets), func(i int, src *rng.Source) ([][]string, error) {
		target := targets[i]
		baseSys, _, _, err := trainFor(scenarios[0], cfg, core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		ds, err := trace.Build(target, src.Int63(), cfg.Samples, baseSys.Cfg.SeqLen, trace.DefaultExtract())
		if err != nil {
			return nil, err
		}
		train, _, test := ds.Split(0.75, 0.05, src.Derive("split"))

		var rows [][]string
		for _, frac := range []float64{0.10, 0.50, 1.0} {
			// The pre-Clone() implementation drew a clone seed here; the
			// draw stays so the unit's derive chain (and every golden
			// report downstream of it) is unchanged.
			_ = src.Derive(f("clone-%f", frac))
			ft := baseSys.Clone()
			if _, err := ft.FineTune(train.Subset(frac), ftEpochs, src.Derive(f("ft-%f", frac))); err != nil {
				return nil, err
			}
			m, err := ft.Evaluate(test, []byte("fig14"))
			if err != nil {
				return nil, err
			}
			rows = append(rows, []string{
				"M1→" + target.Name, f("transfer-%.0f%%", frac*100), f("%d", ftEpochs), pct(m.PostKAR),
			})
		}
		fresh := core.New(core.DefaultConfig(), src.Derive("fresh"))
		if _, err := fresh.Train(train, ftEpochs, src.Derive("fresh-train")); err != nil {
			return nil, err
		}
		m, err := fresh.Evaluate(test, []byte("fig14"))
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{"M1→" + target.Name, "traditional", f("%d", ftEpochs), pct(m.PostKAR)})
		return rows, nil
	})
	if err != nil {
		return Report{}, err
	}
	for _, rows := range unitRows {
		r.Rows = append(r.Rows, rows...)
	}
	return r, nil
}

// AblateTheta sweeps the joint-loss weight θ (design-choice ablation),
// one work unit per θ.
func AblateTheta(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "ablate-theta",
		Title:  "Joint-loss weight θ ablation (V2I urban)",
		Header: []string{"theta", "preKAR", "postKAR"},
		Notes:  []string{"paper selects θ = 0.9 experimentally"},
	}
	sc := trace.NewScenario(channel.Urban, channel.V2I)
	thetas := []float64{0.5, 0.7, 0.9, 0.99}
	rows, err := parMap(cfg, "ablate-theta", len(thetas), func(i int, _ *rng.Source) ([]string, error) {
		sysCfg := core.DefaultConfig()
		sysCfg.Theta = thetas[i]
		sys, _, test, err := trainFor(sc, cfg, sysCfg)
		if err != nil {
			return nil, err
		}
		m, err := sys.Evaluate(test, []byte("theta"))
		if err != nil {
			return nil, err
		}
		return []string{f("%.2f", thetas[i]), pct(m.PreKAR), pct(m.PostKAR)}, nil
	})
	if err != nil {
		return Report{}, err
	}
	r.Rows = rows
	return r, nil
}

// AblateBloom measures the Bloom filter's security role: how well an
// eavesdropper can exploit the syndrome with and without it.
func AblateBloom(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "ablate-bloom",
		Title:  "Bloom filter ablation: syndrome reuse across sessions",
		Header: []string{"condition", "same-bits syndrome match"},
		Notes: []string{
			"with per-session salts, identical key material yields different syndromes across sessions (replay window closed)",
		},
	}
	err := forEach(cfg, "ablate-bloom", 1, func(_ int, src *rng.Source) error {
		ae := pipeline.TrainAE(pipeline.AEConfig{KeyBits: 64, CodeDim: 32, DecoderUnits: 16}, 6, 150, src.Derive("ae"))
		key := src.Derive("key").Bits(64)

		same := 0
		const trials = 30
		for i := 0; i < trials; i++ {
			y1, _, err := ae.BobEncode(key, []byte(f("session-a-%d", i)))
			if err != nil {
				return err
			}
			y2, _, err := ae.BobEncode(key, []byte(f("session-b-%d", i)))
			if err != nil {
				return err
			}
			if floatsEqual(y1, y2) {
				same++
			}
		}
		r.Rows = append(r.Rows, []string{"with Bloom filter (salted)", f("%d/%d", same, trials)})

		y := ae.EncodeRaw(key)
		same = 0
		for i := 0; i < trials; i++ {
			if floatsEqual(y, ae.EncodeRaw(key)) {
				same++
			}
		}
		r.Rows = append(r.Rows, []string{"without Bloom filter", f("%d/%d", same, trials)})
		return nil
	})
	if err != nil {
		return Report{}, err
	}
	return r, nil
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
