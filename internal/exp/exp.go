// Package exp contains one runner per figure and table of the paper's
// evaluation. Each runner regenerates the corresponding result — the same
// rows or series the paper reports — against the simulated substrate, and
// returns it as a printable Report. The cmd/vkbench binary and the
// repository-level benchmarks are thin wrappers over this package.
package exp

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// RunConfig sizes the experiments.
type RunConfig struct {
	Seed    int64
	Samples int // dataset windows per scenario
	Epochs  int // predictor training epochs
	Quick   bool

	// Scheme restricts the cross-scheme comparison experiment
	// ("schemes") to one registered scheme name. Empty runs every
	// registered scheme. Figure runners ignore it: each figure fixes the
	// scheme set the paper compares.
	Scheme string

	// FastPath overrides core.Config.FastPath for every system the
	// experiments build ("off", "gemm", "int8"; empty keeps the core
	// default). The exact paths produce bit-identical reports; int8 can
	// differ within its calibrated soft-bit bound, so the mode is part of
	// every cache key.
	FastPath string

	// Parallelism is the worker count used to fan out each experiment's
	// grid points and RunAll's cross-experiment scheduling. 0 means one
	// worker per CPU; 1 forces serial execution. Reports are a pure
	// function of Seed regardless of this value — every unit of work
	// draws from its own (seed, experiment, index) sub-stream, so the
	// parallel output is bit-identical to the serial one (enforced by
	// TestParallelEquivalence).
	Parallelism int

	// Obs receives wall-clock timing observations (whole experiments and
	// individual work units). It is deliberately one-way: nothing read
	// from it ever reaches a Report, so instrumenting a run cannot
	// perturb the deterministic, Seed-only outputs. Nil means no
	// recording. Obs is excluded from every cache key (see cacheKey).
	Obs obs.Recorder
}

// recorder resolves the configured recorder, defaulting to the no-op.
func (c RunConfig) recorder() obs.Recorder { return obs.OrNop(c.Obs) }

// cacheKey renders the fields that determine an experiment's output —
// and only those. The Obs recorder must stay out: it is an interface
// whose rendering would vary by pointer address, and it has no influence
// on results. Parallelism is included so the equivalence tests comparing
// worker counts never serve one count's result to the other.
func (c RunConfig) cacheKey() string {
	return fmt.Sprintf("seed=%d samples=%d epochs=%d quick=%t par=%d scheme=%q fastpath=%q",
		c.Seed, c.Samples, c.Epochs, c.Quick, c.Parallelism, c.Scheme, c.FastPath)
}

// Default returns the full-size configuration; Quick returns a reduced
// one for fast regression runs.
func Default() RunConfig { return RunConfig{Seed: 1, Samples: 500, Epochs: 30} }

// Quick returns a configuration an order of magnitude faster, for smoke
// runs and benchmarks.
func Quick() RunConfig { return RunConfig{Seed: 1, Samples: 160, Epochs: 15, Quick: true} }

// Report is one regenerated figure or table.
type Report struct {
	ID     string // e.g. "fig12"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the report as an aligned text table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c + "  ")
			}
		}
		b.WriteString("\n")
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner regenerates one experiment.
type Runner func(RunConfig) (Report, error)

// registry maps experiment IDs to runners.
var registry = map[string]Runner{}

func register(id string, r Runner) { registry[id] = r }

// IDs returns the registered experiment IDs in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ErrUnknownID is wrapped by the error Run and RunAll return for an
// unregistered experiment ID, so callers can match it with errors.Is.
var ErrUnknownID = errors.New("unknown experiment")

// unknownIDError builds the stable not-found error: it always lists the
// valid IDs in sorted order, so the message is identical run to run and
// usable directly as CLI output.
func unknownIDError(id string) error {
	return fmt.Errorf("exp: %w %q; valid IDs: %s", ErrUnknownID, id, strings.Join(IDs(), ", "))
}

// Run executes one experiment by ID.
func Run(id string, cfg RunConfig) (Report, error) {
	r, ok := registry[id]
	if !ok {
		return Report{}, unknownIDError(id)
	}
	//vklint:ignore detrand -- wall time feeds only the metrics recorder, never a report
	started := time.Now()
	rep, err := r(cfg)
	//vklint:ignore detrand -- wall time feeds only the metrics recorder, never a report
	cfg.recorder().Observe(obs.Labeled(obs.ExpSeconds, "exp", id), time.Since(started).Seconds())
	return rep, err
}

// Markdown renders the report as a GitHub-flavored markdown table.
func (r Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	b.WriteString("| " + strings.Join(r.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(r.Header)) + "\n")
	for _, row := range r.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

func f(format string, args ...interface{}) string { return fmt.Sprintf(format, args...) }

func pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }
