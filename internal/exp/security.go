package exp

import (
	"repro/internal/amplify"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/nist"
	"repro/internal/rng"
	"repro/internal/trace"
)

func init() {
	register("fig15", Fig15)
	register("fig16", Fig16)
	register("tab2", Table2)
}

// Fig15 regenerates Fig. 15: Eve's agreement rate under the eavesdropping
// and imitating attacks, one work unit per environment.
func Fig15(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "fig15",
		Title:  "Security analysis: attacker agreement rates",
		Header: []string{"environment", "legitimate", "eavesdropping Eve", "imitating Eve", "Eve exact keys"},
		Notes: []string{
			"paper: Eve reaches 42–51% (eavesdrop) and 48–54% (imitate)",
			"our simulated Eve retains partial large-scale correlation, so her rate sits higher, but she never completes a key (see EXPERIMENTS.md)",
		},
	}
	envs := []channel.Environment{channel.Urban, channel.Rural}
	rows, err := parMap(cfg, "fig15", len(envs), func(i int, _ *rng.Source) ([]string, error) {
		env := envs[i]
		sc := trace.NewScenario(env, channel.V2V)
		sys, _, test, err := trainFor(sc, cfg, core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		legit, err := sys.Evaluate(test, []byte("fig15"))
		if err != nil {
			return nil, err
		}
		eaves, err := sys.EvaluateEve(test, false, []byte("fig15"))
		if err != nil {
			return nil, err
		}
		imit, err := sys.EvaluateEve(test, true, []byte("fig15"))
		if err != nil {
			return nil, err
		}
		return []string{
			env.String(), pct(legit.PostKAR), pct(eaves.PostKAR), pct(imit.PostKAR),
			f("%.0f%% / %.0f%%", 100*eaves.ExactRate, 100*imit.ExactRate),
		}, nil
	})
	if err != nil {
		return Report{}, err
	}
	r.Rows = rows
	return r, nil
}

// Fig16 regenerates Fig. 16: aligned arRSSI traces of Alice, Bob and an
// imitating Eve — similar large-scale pattern, different fine structure.
func Fig16(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "fig16",
		Title:  "arRSSI of Alice, Bob and Eve (imitating)",
		Header: []string{"idx", "Alice", "Bob", "Eve"},
	}
	err := forEach(cfg, "fig16", 1, func(_ int, src *rng.Source) error {
		sc := trace.NewScenario(channel.Urban, channel.V2V)
		col := trace.NewCollector(sc, src.Int63())
		ex := col.Run(24)
		alice, bob := trace.ArRSSI(ex, trace.DefaultExtract())
		eve := trace.EveArRSSI(ex, trace.DefaultExtract(), true)
		fa, fb, fe := trace.Flatten(alice), trace.Flatten(bob), trace.Flatten(eve)
		for i := range fa {
			r.Rows = append(r.Rows, []string{f("%d", i), f("%.1f", fa[i]), f("%.1f", fb[i]), f("%.1f", fe[i])})
		}
		la, _ := trace.Correlation(alice, bob)
		le, _ := trace.Correlation(eve, bob)
		r.Notes = append(r.Notes, f("corr(Alice,Bob)=%.3f corr(Eve,Bob)=%.3f", la, le))
		return nil
	})
	if err != nil {
		return Report{}, err
	}
	return r, nil
}

// Table2 regenerates Table II: the NIST battery over amplified keys.
func Table2(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "tab2",
		Title:  "NIST statistical test suite over generated keys",
		Header: []string{"test", "p-value", "verdict"},
		Notes:  []string{"randomness is rejected below p = 0.01; the paper's keys pass every test"},
	}
	err := forEach(cfg, "tab2", 1, func(_ int, _ *rng.Source) error {
		sc := trace.NewScenario(channel.Urban, channel.V2V)
		sys, _, test, err := trainFor(sc, cfg, core.DefaultConfig())
		if err != nil {
			return err
		}
		// Concatenate amplified key bits across blocks into one stream.
		var stream []byte
		ks := sys.NewKeyStream([]byte("tab2"))
		for _, smp := range test.Samples {
			results, err := ks.Push(smp)
			if err != nil {
				return err
			}
			for _, res := range results {
				stream = append(stream, amplify.UnpackBits(res.BobKey, amplify.KeyBits)...)
			}
		}
		if len(stream) < nist.MinBits {
			return f2err("tab2 needs more key material: got %d bits", len(stream))
		}
		results, err := nist.Battery(stream)
		if err != nil {
			return err
		}
		for _, res := range results {
			verdict := "PASS"
			if !res.Passed {
				verdict = "FAIL"
			}
			r.Rows = append(r.Rows, []string{res.Name, f("%.6f", res.P), verdict})
		}
		r.Notes = append(r.Notes, f("stream length: %d bits from %d keys", len(stream), len(stream)/amplify.KeyBits))
		return nil
	})
	if err != nil {
		return Report{}, err
	}
	return r, nil
}

type strErr string

func (e strErr) Error() string { return string(e) }

func f2err(format string, args ...interface{}) error { return strErr(f(format, args...)) }
