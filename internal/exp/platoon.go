package exp

import (
	"fmt"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/group"
	"repro/internal/lora"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/transport"
)

func init() {
	register("platoon", PlatoonExp)
}

// platoonPoint is one grid entry: a platoon size and how many members
// depart after the first group rekey.
type platoonPoint struct {
	members int
	leavers int
}

// platoonLeavers picks the departing member IDs for a grid point —
// a fixed, spread-out choice so the churn pattern is part of the
// experiment definition, not a random draw.
func platoonLeavers(p platoonPoint) map[uint64]bool {
	out := make(map[uint64]bool, p.leavers)
	out[1] = true
	if p.leavers > 1 {
		out[uint64(p.members-2)] = true
	}
	return out
}

// runPlatoon drives one full platoon session — concurrent pairwise
// establishment, epoch-1 group rekey, the configured departures, and
// the epoch-2 survivor rekey — over a fresh lockstep shared medium.
// Deterministic: the medium serializes every device, links are dialed
// in member order before any session goroutine starts, and all
// randomness descends from seed.
func runPlatoon(sys *core.System, seed int64, p platoonPoint, cfg RunConfig) (group.DriveResult, error) {
	m, err := lora.NewMedium(lora.MediumConfig{
		Channels: 4,
		Lockstep: true,
		Seed:     rng.SubSeed(seed, "exp/platoon/medium", p.members),
		Recorder: cfg.Obs,
	})
	if err != nil {
		return group.DriveResult{}, err
	}
	defer func() { _ = m.Close() }()

	const windows = 16 // two reconciliation rounds per member
	sc := trace.NewScenario(channel.Urban, channel.V2I)
	sysCfg := core.DefaultConfig()
	dc := group.DriveConfig{
		Members: p.members,
		Leavers: platoonLeavers(p),
		Seed:    seed,
		Listen:  func() (transport.Listener, error) { return m.Listen() },
		Dial: func(member uint64) (transport.Conn, error) {
			return m.Dial(fmt.Sprintf("veh-%d", member))
		},
		Hub: group.HubConfig{
			Resolve: func(member uint64, n int) (pipeline.Scheme, [][]float64, error) {
				alice, _, err := server.SessionWindows(sc, sysCfg, seed, member, n)
				return sys.Clone(), alice, err
			},
			Retry:    contentionPolicy,
			Tick:     2 * time.Second,
			Recorder: cfg.Obs,
		},
		Member: func(member uint64) (group.MemberConfig, error) {
			_, bob, err := server.SessionWindows(sc, sysCfg, seed, member, windows)
			if err != nil {
				return group.MemberConfig{}, err
			}
			return group.MemberConfig{
				Scheme:     sys.Clone(),
				Windows:    bob,
				Retry:      contentionPolicy,
				Tick:       2 * time.Second,
				JoinCopies: 8, // the whole platoon's joins collide at ignition
				Recorder:   cfg.Obs,
			}, nil
		},
		// KeyWait stays 0 (event-driven member waits): on a lockstep
		// medium the virtual clock outruns the hub's wall-scheduled
		// control plane between epochs, so tick budgets there would turn
		// scheduler noise into nondeterministic member deaths.
		LeaveWait: 60 * time.Second,
	}
	return group.Drive(dc)
}

// platoonUnanimous reports whether every member's accepted digest
// agrees within each epoch and the final epoch matches the hub's key.
func platoonUnanimous(res group.DriveResult) bool {
	for epoch, byMember := range res.Accepted {
		want := ""
		for _, d := range byMember {
			if want == "" {
				want = d
			}
			if d != want {
				return false
			}
		}
		//vklint:ignore consttime -- key digests are published accounting fingerprints, not secret material
		if epoch == res.FinalEpoch && want != res.HubDigest {
			return false
		}
	}
	return true
}

// PlatoonExp runs the group key schedule at platoon scale on one shared
// lockstep LoRa medium: N concurrent pairwise establishments contending
// for the hop channels, an epoch-1 group rekey fanned out under the
// pairwise channels, churn departures, and the epoch-2 survivor rekey.
// Every reported quantity is schedule-independent — membership counts,
// epochs, digest unanimity — never wall or virtual timing, so the rows
// are bit-identical at any parallelism (TestParallelEquivalence).
func PlatoonExp(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "platoon",
		Title:  "Platoon-scale group rekeying over one shared LoRa medium",
		Header: []string{"members", "leavers", "established", "e1 acked", "e2 acked", "leaves", "final epoch", "unanimous"},
		Notes: []string{
			"lockstep shared medium: 4 hop channels, CAD + backoff; rekey epochs are sealed under the pairwise keys",
			"unanimous = every member's accepted key digest agrees per epoch and matches the hub at the final epoch",
		},
	}
	grid := []platoonPoint{{4, 1}, {8, 2}}
	if cfg.Quick {
		grid = []platoonPoint{{3, 1}}
	}
	sys, err := core.NewScheme("lora-key", core.DefaultConfig(), rng.New(cfg.Seed).Derive("exp/platoon/sys"))
	if err != nil {
		return Report{}, err
	}
	rows, err := parMap(cfg, "platoon", len(grid), func(i int, _ *rng.Source) ([]string, error) {
		p := grid[i]
		res, err := runPlatoon(sys, rng.SubSeed(cfg.Seed, "exp/platoon", i), p, cfg)
		if err != nil {
			return nil, err
		}
		acked := func(epoch int) int {
			if epoch <= len(res.Rekeys) {
				return len(res.Rekeys[epoch-1].Acked)
			}
			return 0
		}
		return []string{
			f("%d", p.members), f("%d", p.leavers), f("%d", len(res.Established)),
			f("%d", acked(1)), f("%d", acked(2)), f("%d", res.LeavesSeen),
			f("%d", res.FinalEpoch), f("%t", platoonUnanimous(res)),
		}, nil
	})
	if err != nil {
		return Report{}, err
	}
	r.Rows = rows
	return r, nil
}
