package exp

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/trace"
)

func sceneForCacheTest() trace.Scenario {
	return trace.NewScenario(channel.Urban, channel.V2I)
}

func defaultSysCfg() core.Config { return core.DefaultConfig() }

// TestForEachSubStreams: a unit's draws depend only on (seed, label,
// index), so any worker count produces the same per-slot values.
func TestForEachSubStreams(t *testing.T) {
	const n = 37
	collect := func(parallelism int) []float64 {
		cfg := Quick()
		cfg.Parallelism = parallelism
		out := make([]float64, n)
		err := forEach(cfg, "engine-test", n, func(i int, src *rng.Source) error {
			// Several draws per unit, so stream interleaving bugs show up.
			out[i] = src.Float64() + src.Normal(0, 1) + float64(src.Intn(1000))
			return nil
		})
		if err != nil {
			t.Fatalf("forEach: %v", err)
		}
		return out
	}
	want := collect(1)
	for _, p := range []int{2, 3, 8, 64} {
		if got := collect(p); !reflect.DeepEqual(got, want) {
			t.Errorf("Parallelism=%d produced different values than serial", p)
		}
	}
}

// TestForEachErrorDeterministic: when several units fail, the reported
// error is the lowest-index one, regardless of scheduling.
func TestForEachErrorDeterministic(t *testing.T) {
	for _, p := range []int{1, 4, 16} {
		cfg := Quick()
		cfg.Parallelism = p
		err := forEach(cfg, "engine-err", 20, func(i int, _ *rng.Source) error {
			if i%3 == 1 { // units 1, 4, 7, ... fail
				return fmt.Errorf("unit %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "unit 1 failed" {
			t.Errorf("Parallelism=%d: error = %v, want the lowest-index failure", p, err)
		}
	}
}

// TestParMapOrder: results land in index order whatever the fan-out.
func TestParMapOrder(t *testing.T) {
	cfg := Quick()
	cfg.Parallelism = 8
	got, err := parMap(cfg, "engine-map", 25, func(i int, _ *rng.Source) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatalf("parMap: %v", err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}
}

// TestParMapErrorDropsResults: a failing unit poisons the whole map.
func TestParMapErrorDropsResults(t *testing.T) {
	cfg := Quick()
	cfg.Parallelism = 4
	sentinel := errors.New("boom")
	out, err := parMap(cfg, "engine-maperr", 10, func(i int, _ *rng.Source) (int, error) {
		if i == 9 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if out != nil {
		t.Fatalf("out = %v, want nil on error", out)
	}
}

// TestForEachZeroAndNegative: degenerate unit counts are no-ops.
func TestForEachZeroAndNegative(t *testing.T) {
	cfg := Quick()
	for _, n := range []int{0, -3} {
		ran := false
		if err := forEach(cfg, "engine-zero", n, func(int, *rng.Source) error {
			ran = true
			return nil
		}); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if ran {
			t.Errorf("n=%d: fn ran", n)
		}
	}
}

// TestWorkersResolution pins the Parallelism semantics: positive values
// are taken literally, zero falls back to the CPU count.
func TestWorkersResolution(t *testing.T) {
	cfg := Quick()
	if cfg.Parallelism != 0 {
		t.Fatalf("Quick() should leave Parallelism unset, got %d", cfg.Parallelism)
	}
	if got := cfg.workers(); got != DefaultWorkers() || got < 1 {
		t.Errorf("workers() with Parallelism=0 = %d, want DefaultWorkers() = %d", got, DefaultWorkers())
	}
	cfg.Parallelism = 5
	if got := cfg.workers(); got != 5 {
		t.Errorf("workers() with Parallelism=5 = %d", got)
	}
}

// TestTrainCacheServesClones: two requests for the same key must return
// distinct System instances (forward passes mutate LSTM scratch state,
// so sharing one across goroutines would race) backed by identical
// weights, plus the same shared datasets.
func TestTrainCacheServesClones(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	resetCaches()
	cfg := Quick()
	cfg.Samples = 64
	cfg.Epochs = 2
	sc := sceneForCacheTest()
	s1, train1, test1, err := trainFor(sc, cfg, defaultSysCfg())
	if err != nil {
		t.Fatal(err)
	}
	s2, train2, test2, err := trainFor(sc, cfg, defaultSysCfg())
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("trainFor returned the same *System twice; callers would race on LSTM caches")
	}
	if train1 != train2 || test1 != test2 {
		t.Error("datasets should be shared (read-only) across cache hits")
	}
	if len(cachedTrainKeys()) != 1 {
		t.Errorf("cache holds %d keys, want 1", len(cachedTrainKeys()))
	}
	m1, err := s1.Evaluate(test1, []byte("cache-test"))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s2.Evaluate(test2, []byte("cache-test"))
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Errorf("clones evaluate differently: %v vs %v", m1, m2)
	}
}
