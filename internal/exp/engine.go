package exp

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/trace"
)

// DefaultWorkers is the fan-out width used when RunConfig.Parallelism
// is 0: one worker per CPU.
func DefaultWorkers() int { return runtime.NumCPU() }

// workers resolves the configured fan-out width: Parallelism if set,
// otherwise one worker per CPU.
func (c RunConfig) workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return DefaultWorkers()
}

// forEach runs n independent units of work across min(workers, n)
// goroutines. Unit i receives the sub-stream rng.Stream(cfg.Seed, label,
// i) as its only source of randomness, so what a unit computes depends
// only on (seed, label, i) — never on which worker picked it up or in
// what order. fn must write its result into storage indexed by i (its
// own slot of a pre-sized slice) and must not touch other units' slots;
// under that discipline the assembled output is identical for any worker
// count, including 1.
//
// Every unit runs even after a failure; the returned error is the
// lowest-index one, so error reporting is deterministic too.
func forEach(cfg RunConfig, label string, n int, fn func(i int, src *rng.Source) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	// Per-unit wall time flows one-way into the recorder; the label is
	// baked once per fan-out, not per unit.
	rec := cfg.recorder()
	unitName := obs.Labeled(obs.ExpUnitSeconds, "exp", label)
	run := func(i int) error {
		//vklint:ignore detrand -- wall time feeds only the metrics recorder, never a report
		started := time.Now()
		err := fn(i, rng.Stream(cfg.Seed, label, i))
		//vklint:ignore detrand -- wall time feeds only the metrics recorder, never a report
		rec.Observe(unitName, time.Since(started).Seconds())
		return err
	}
	w := cfg.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = run(i)
		}
		return firstError(errs)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = run(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstError(errs)
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// parMap is forEach collecting one result per unit, in index order.
func parMap[T any](cfg RunConfig, label string, n int, fn func(i int, src *rng.Source) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := forEach(cfg, label, n, func(i int, src *rng.Source) error {
		v, err := fn(i, src)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunAll executes the given experiment IDs (all registered ones when ids
// is nil) with cross-experiment concurrency and returns the reports in
// input order. Every ID is validated up front, so a typo fails before
// any training starts, with the same stable error Run produces.
func RunAll(ids []string, cfg RunConfig) ([]Report, error) {
	if ids == nil {
		ids = IDs()
	}
	for _, id := range ids {
		if _, ok := registry[id]; !ok {
			return nil, unknownIDError(id)
		}
	}
	return parMap(cfg, "runall", len(ids), func(i int, _ *rng.Source) (Report, error) {
		return Run(ids[i], cfg)
	})
}

// ---------------------------------------------------------------------
// Trained-system cache.
//
// Most figures train the same (scenario, config) BiLSTM: fig10, fig12,
// fig13, fig15, tab2, tab3 and fig17 all need a system trained on one of
// the four canonical scenarios at the default config. Training dominates
// their cost, so RunAll would otherwise retrain identical predictors up
// to seven times. The cache trains each distinct key once and hands out
// clones — forward passes mutate LSTM caches, so every caller gets a
// private System.Clone() it can use without synchronization; the cached
// original is only ever cloned, never run. The train/test datasets are
// shared read-only.
//
// Determinism: the training seed chain is derived from the key alone
// (root seed, scenario/config fingerprint) — never from which figure
// asked first — so a report is the same whether its training was a cache
// hit or a miss.
// ---------------------------------------------------------------------

type trainedEntry struct {
	once  sync.Once
	err   error
	sys   *core.System
	train *trace.Dataset
	test  *trace.Dataset
}

var trainedCache sync.Map // string key -> *trainedEntry

// fingerprint canonically identifies a training problem. Scenario and
// core.Config are flat value structs, so %+v is a stable rendering.
func fingerprint(sc trace.Scenario, cfg RunConfig, sysCfg core.Config) string {
	return fmt.Sprintf("%+v|%+v|seed=%d samples=%d epochs=%d", sc, sysCfg, cfg.Seed, cfg.Samples, cfg.Epochs)
}

// trainFor builds and trains a Vehicle-Key system for one scenario,
// serving repeated requests for the same (scenario, run config, system
// config) from the in-process cache. The returned System is a private
// clone, safe to use on the calling goroutine; the datasets are shared
// and must be treated as read-only.
func trainFor(sc trace.Scenario, cfg RunConfig, sysCfg core.Config) (*core.System, *trace.Dataset, *trace.Dataset, error) {
	if cfg.FastPath != "" {
		// The run-level override reaches every system the experiments
		// build through this single choke point. Applied before the
		// fingerprint: sysCfg renders into it, so modes never share a
		// trained-cache entry.
		sysCfg.FastPath = cfg.FastPath
	}
	fp := fingerprint(sc, cfg, sysCfg)
	// Training never consults the fast path — Fit always runs the float
	// reference — so the dataset and training RNG streams are seeded
	// from a fingerprint with the mode normalized out. Every mode then
	// trains on the same data to byte-identical weights, which is
	// exactly what the cross-mode equivalence tests compare. The cache
	// key above keeps the mode, so a clone never carries one mode's
	// predictor into another mode's run.
	seedCfg := sysCfg
	seedCfg.FastPath = ""
	seedFP := fingerprint(sc, cfg, seedCfg)
	v, _ := trainedCache.LoadOrStore(fp, &trainedEntry{})
	e := v.(*trainedEntry)
	e.once.Do(func() {
		ds, err := trace.Build(sc, rng.SubSeed(cfg.Seed, "train-ds/"+seedFP, 0), cfg.Samples, sysCfg.SeqLen, trace.DefaultExtract())
		if err != nil {
			e.err = err
			return
		}
		src := rng.Stream(cfg.Seed, "train/"+seedFP, 0)
		train, _, test := ds.Split(0.75, 0.05, src.Derive("split"))
		sys := core.New(sysCfg, src.Derive("sys"))
		if _, err := sys.Train(train, cfg.Epochs, src.Derive("train")); err != nil {
			e.err = err
			return
		}
		e.sys = sys
		e.train, e.test = train, test
	})
	if e.err != nil {
		return nil, nil, nil, e.err
	}
	// Clone serializes the trained stages and loads them into a fresh
	// System (verified equivalent to an explicit Save/Load round-trip),
	// so concurrent callers never share mutable predictor state.
	sys := e.sys.Clone()
	// The clone is private to the calling goroutine, so attaching the run's
	// recorder here is race-free; phase timings flow one way into it and
	// never feed back into results.
	sys.SetRecorder(cfg.recorder())
	return sys, e.train, e.test, nil
}

// memoCache deduplicates whole sub-computations that several experiments
// share (fig12/fig13's comparison sweep, tab3/fig17's power profile).
// Keys include Parallelism so that the equivalence tests comparing
// worker counts never serve one count's result to the other.
var memoCache sync.Map // string key -> *memoEntry

type memoEntry struct {
	once sync.Once
	val  any
	err  error
}

func memo[T any](key string, cfg RunConfig, compute func() (T, error)) (T, error) {
	// cacheKey, not %+v: the config's Obs recorder is an interface whose
	// rendering would make equal configs miss (and unequal ones collide).
	full := fmt.Sprintf("%s|%s", key, cfg.cacheKey())
	v, _ := memoCache.LoadOrStore(full, &memoEntry{})
	e := v.(*memoEntry)
	e.once.Do(func() { e.val, e.err = compute() })
	if e.err != nil {
		var zero T
		return zero, e.err
	}
	return e.val.(T), nil
}

// resetCaches drops every cached trained system and memoized
// sub-computation. Tests use it to prove that reports do not depend on
// cache warmth.
func resetCaches() {
	trainedCache.Range(func(k, _ any) bool { trainedCache.Delete(k); return true })
	memoCache.Range(func(k, _ any) bool { memoCache.Delete(k); return true })
}

// sortedKeys is a debugging helper for cache inspection in tests.
func cachedTrainKeys() []string {
	var out []string
	trainedCache.Range(func(k, _ any) bool { out = append(out, k.(string)); return true })
	sort.Strings(out)
	return out
}
