package exp

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/lora"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/trace"
)

func init() {
	register("density", DensityExp)
	register("airtime", AirtimeExp)
}

// contentionPolicy works in the medium's virtual seconds: one protocol
// message is a multi-fragment burst of a second or two on the air, so
// the initial receive deadline sits above a full round trip.
var contentionPolicy = protocol.RetryPolicy{
	Timeout:    4 * time.Second,
	MaxTimeout: 16 * time.Second,
	Backoff:    1.6,
	MaxRetries: 8,
}

// contentionResult aggregates one shared-medium run.
type contentionResult struct {
	confirmed int        // keys confirmed on the vehicle side
	sessions  int        // vehicles that confirmed at least one key
	meanTTK   float64    // mean virtual time-to-last-key over those vehicles
	stats     lora.Stats // final MAC counters
}

// runContention drives one N-vehicle × one-gateway deployment over a
// fresh lockstep medium: the full serving stack (hello redundancy, ARQ,
// reconciliation) with the trained Vehicle-Key system on both ends.
// Deterministic: the medium serializes every device, all randomness
// comes from mediumSeed, and links and scheme clones are created in a
// fixed order before any goroutine starts.
func runContention(sys *core.System, sc trace.Scenario, sysCfg core.Config,
	mc lora.MediumConfig, mediumSeed int64, vehicles, windows int) (contentionResult, error) {
	mc.Lockstep = true
	mc.Seed = mediumSeed
	m, err := lora.NewMedium(mc)
	if err != nil {
		return contentionResult{}, err
	}
	defer func() { _ = m.Close() }()

	type session struct {
		vconn, gconn *lora.Conn
		vsys, gsys   *core.System
		jitter       time.Duration
		vOut         []protocol.KeyOutcome
		vErr         error
		ttk          float64
	}
	sessions := make([]*session, vehicles)
	for i := range sessions {
		v, g, err := m.Link(fmt.Sprintf("veh-%d", i))
		if err != nil {
			return contentionResult{}, err
		}
		jitter := rng.Stream(mediumSeed, "exp/contention/jitter", i).Uniform(0, 2)
		sessions[i] = &session{
			vconn:  v,
			gconn:  g,
			vsys:   sys.Clone(),
			gsys:   sys.Clone(),
			jitter: time.Duration(jitter * float64(time.Second)),
		}
	}

	var wg sync.WaitGroup
	for i, s := range sessions {
		i, s := i, s
		wg.Add(1)
		go func() { // vehicle: staggered ignition, then the client stack
			defer wg.Done()
			defer func() { _ = s.vconn.Close() }()
			if err := s.vconn.Wait(s.jitter); err != nil {
				s.vErr = err
				return
			}
			s.vOut, s.vErr = server.RunVehicle(s.vconn, s.vsys, sc, sysCfg, mediumSeed,
				server.Vehicle{ID: uint64(i), Windows: windows, HelloCopies: 2},
				protocol.WithRetryPolicy(contentionPolicy))
			s.ttk = s.vconn.LastActive()
		}()
		wg.Add(1)
		go func() { // gateway: shared window derivation + the Alice role
			defer wg.Done()
			defer func() { _ = s.gconn.Close() }()
			aliceWin, _, err := server.SessionWindows(sc, sysCfg, mediumSeed, uint64(i), windows)
			if err != nil {
				return
			}
			node := protocol.NewNode(s.gsys, s.gconn, server.SessionName(uint64(i)),
				protocol.WithRetryPolicy(contentionPolicy))
			// The hello copies land as garbage envelopes the ARQ layer
			// skips, as on the real server after its hello decode.
			_, _ = node.RunAlice(aliceWin)
		}()
	}
	wg.Wait()

	res := contentionResult{stats: m.Stats()}
	for _, s := range sessions {
		if s.vErr != nil {
			continue
		}
		got := 0
		for _, ko := range s.vOut {
			if ko.Confirmed {
				got++
			}
		}
		if got > 0 {
			res.confirmed += got
			res.sessions++
			res.meanTTK += s.ttk
		}
	}
	if res.sessions > 0 {
		res.meanTTK /= float64(res.sessions)
	}
	return res, nil
}

// keysPerVirtualMinute is the medium-level key rate.
func keysPerVirtualMinute(r contentionResult) float64 {
	if r.stats.VirtualSeconds == 0 {
		return 0
	}
	return float64(r.confirmed) / r.stats.VirtualSeconds * 60
}

// DensityExp sweeps vehicle density on one shared medium: key rate and
// time-to-key degrade as collisions and CAD backoffs eat the channel.
// This is the many-vehicle experiment the point-to-point transports
// cannot express — every session contends for the same hop channels.
func DensityExp(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "density",
		Title:  "Key establishment vs. vehicle density on one shared LoRa medium",
		Header: []string{"vehicles", "keys", "keys/vmin", "mean TTK (vs)", "collision %", "cad busy/frame", "airtime util %", "virtual s"},
		Notes: []string{
			"lockstep shared medium: 4 hop channels, capture 6 dB, CAD + backoff; TTK and the clock are virtual seconds",
		},
	}
	grid := []int{2, 4, 8}
	if cfg.Quick {
		grid = []int{2, 3}
	}
	const windows = 16 // two rounds of probing material per session
	sc := trace.NewScenario(channel.Urban, channel.V2I)
	sysCfg := core.DefaultConfig()
	sys, _, _, err := trainFor(sc, cfg, sysCfg)
	if err != nil {
		return Report{}, err
	}
	rows, err := parMap(cfg, "density", len(grid), func(i int, _ *rng.Source) ([]string, error) {
		n := grid[i]
		res, err := runContention(sys, sc, sysCfg,
			lora.MediumConfig{Channels: 4, Recorder: cfg.Obs},
			rng.SubSeed(cfg.Seed, "exp/density", n), n, windows)
		if err != nil {
			return nil, err
		}
		s := res.stats
		collPct, cadPerFrame, util := 0.0, 0.0, 0.0
		if s.Frames > 0 {
			collPct = float64(s.Collided) / float64(s.Frames)
			cadPerFrame = float64(s.CADBusy) / float64(s.Frames)
		}
		if s.VirtualSeconds > 0 {
			util = s.AirtimeSeconds / (s.VirtualSeconds * 4)
		}
		return []string{f("%d", n), f("%d", res.confirmed), f("%.3f", keysPerVirtualMinute(res)),
			f("%.1f", res.meanTTK), pct(collPct), f("%.3f", cadPerFrame), pct(util),
			f("%.1f", s.VirtualSeconds)}, nil
	})
	if err != nil {
		return Report{}, err
	}
	r.Rows = rows
	return r, nil
}

// AirtimeExp fixes the fleet and sweeps the duty-cycle budget: probing
// under a regulatory airtime cap pays for every frame with credit-wait
// time, stretching time-to-key until the ARQ gives up.
func AirtimeExp(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "airtime",
		Title:  "Airtime-budgeted probing: duty-cycle caps vs. key establishment",
		Header: []string{"duty", "keys", "keys/vmin", "mean TTK (vs)", "duty waits", "cad dropped", "virtual s"},
		Notes: []string{
			"3 vehicles on 4 hop channels; duty is the allowed time-on-air fraction per device (1 = uncapped)",
		},
	}
	grid := []float64{1, 0.1, 0.02}
	if cfg.Quick {
		grid = []float64{1, 0.02}
	}
	const windows = 16 // two rounds of probing material per session
	sc := trace.NewScenario(channel.Urban, channel.V2I)
	sysCfg := core.DefaultConfig()
	sys, _, _, err := trainFor(sc, cfg, sysCfg)
	if err != nil {
		return Report{}, err
	}
	rows, err := parMap(cfg, "airtime", len(grid), func(i int, _ *rng.Source) ([]string, error) {
		duty := grid[i]
		res, err := runContention(sys, sc, sysCfg,
			lora.MediumConfig{Channels: 4, DutyCycle: duty, Recorder: cfg.Obs},
			rng.SubSeed(cfg.Seed, "exp/airtime", i), 3, windows)
		if err != nil {
			return nil, err
		}
		s := res.stats
		return []string{f("%.2f", duty), f("%d", res.confirmed), f("%.3f", keysPerVirtualMinute(res)),
			f("%.1f", res.meanTTK), f("%d", s.DutyWaits), f("%d", s.CADDropped),
			f("%.1f", s.VirtualSeconds)}, nil
	})
	if err != nil {
		return Report{}, err
	}
	r.Rows = rows
	return r, nil
}
