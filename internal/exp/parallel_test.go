package exp

import (
	"errors"
	"os"
	"strings"
	"testing"
)

// equivConfig is the configuration the scheduling-equivalence tests run
// at: exp.Quick(), or a further-reduced variant when VK_EQUIV_FAST is
// set (scripts/test-race.sh sets it — the race detector needs the
// engine's scheduling exercised, not full-size models, and Quick-size
// training under -race costs tens of minutes on small runners).
func equivConfig() RunConfig {
	cfg := Quick()
	if os.Getenv("VK_EQUIV_FAST") != "" {
		cfg.Samples = 64
		cfg.Epochs = 3
	}
	return cfg
}

// TestParallelEquivalence is the engine's determinism contract: for
// every registered experiment, the report produced with eight workers is
// byte-identical (via Report.Markdown) to the one produced serially.
// Units of work draw only from (seed, experiment, index) sub-streams, so
// neither worker count nor goroutine scheduling may leak into a report.
// scripts/test-race.sh runs this test under -race, which additionally
// turns any shared-state shortcut between workers into a hard failure.
func TestParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment sweep twice")
	}
	serial := equivConfig()
	serial.Parallelism = 1
	parallel := equivConfig()
	parallel.Parallelism = 8
	for _, id := range IDs() {
		t.Run(id, func(t *testing.T) {
			a, err := Run(id, serial)
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			b, err := Run(id, parallel)
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			if am, bm := a.Markdown(), b.Markdown(); am != bm {
				t.Errorf("Parallelism=8 report differs from Parallelism=1:\n--- serial ---\n%s\n--- parallel ---\n%s", am, bm)
			}
		})
	}
}

// TestParallelEquivalenceColdCache re-proves equivalence for one
// training experiment with the trained-system cache dropped between the
// two runs, so the parallel run's *training* path (not just its
// evaluation path) is shown to be schedule-independent. The main sweep
// above shares the cache for speed, which would otherwise let a
// nondeterministic parallel training hide behind a serial run's cached
// weights.
func TestParallelEquivalenceColdCache(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models twice")
	}
	cfg := equivConfig()
	cfg.Parallelism = 1
	resetCaches()
	a, err := Run("fig15", cfg)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	cfg.Parallelism = 8
	resetCaches()
	b, err := Run("fig15", cfg)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if a.Markdown() != b.Markdown() {
		t.Errorf("cold-cache parallel report differs:\n--- serial ---\n%s\n--- parallel ---\n%s", a.Markdown(), b.Markdown())
	}
	if keys := cachedTrainKeys(); len(keys) == 0 {
		t.Error("expected the cold-cache run to repopulate the training cache")
	}
}

// TestRunAllMatchesRun checks that cross-experiment concurrency changes
// nothing: RunAll's reports equal the per-ID serial ones, in input
// order. Restricted to the training-free runners to stay cheap.
func TestRunAllMatchesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	ids := []string{"fig2a", "fig2b", "fig3", "fig4", "fig9", "fig16"}
	par := equivConfig()
	par.Parallelism = 8
	reps, err := RunAll(ids, par)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(reps) != len(ids) {
		t.Fatalf("RunAll returned %d reports for %d ids", len(reps), len(ids))
	}
	serial := equivConfig()
	serial.Parallelism = 1
	for i, id := range ids {
		if reps[i].ID != id {
			t.Errorf("report %d is %q, want %q (input order must be preserved)", i, reps[i].ID, id)
		}
		want, err := Run(id, serial)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if reps[i].Markdown() != want.Markdown() {
			t.Errorf("%s: RunAll report differs from serial Run", id)
		}
	}
}

// TestUnknownIDError pins the stable not-found contract: the error wraps
// ErrUnknownID, lists every valid ID, and renders identically on every
// call, from both Run and RunAll.
func TestUnknownIDError(t *testing.T) {
	_, err := Run("nope", Quick())
	if err == nil {
		t.Fatal("Run with an unknown ID did not error")
	}
	if !errors.Is(err, ErrUnknownID) {
		t.Errorf("error does not wrap ErrUnknownID: %v", err)
	}
	msg := err.Error()
	for _, id := range IDs() {
		if !strings.Contains(msg, id) {
			t.Errorf("error message does not list valid ID %q: %s", id, msg)
		}
	}
	if _, again := Run("nope", Quick()); again == nil || again.Error() != msg {
		t.Errorf("error message is not stable across calls:\n%s\nvs\n%v", msg, again)
	}
	_, err2 := RunAll([]string{"fig4", "nope"}, Quick())
	if err2 == nil || err2.Error() != msg {
		t.Errorf("RunAll unknown-ID error differs from Run's:\n%v\nvs\n%s", err2, msg)
	}
}
