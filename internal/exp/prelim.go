package exp

import (
	"repro/internal/channel"
	"repro/internal/lora"
	"repro/internal/mathx"
	"repro/internal/trace"
)

func init() {
	register("fig2a", Fig2a)
	register("fig2b", Fig2b)
	register("fig3", Fig3)
	register("fig4", Fig4)
	register("fig9", Fig9)
}

// avgCorr runs several channel realizations and averages the pRSSI
// correlation.
func avgCorr(sc trace.Scenario, seeds, exchanges int, base int64) (float64, error) {
	var sum float64
	for s := 0; s < seeds; s++ {
		col := trace.NewCollector(sc, base+int64(s))
		ex := col.Run(exchanges)
		pa, pb := trace.PRSSI(ex)
		c, err := mathx.Pearson(pa, pb)
		if err != nil {
			return 0, err
		}
		sum += c
	}
	return sum / float64(seeds), nil
}

// Fig2a regenerates Fig. 2(a): Alice/Bob pRSSI correlation vs data rate
// at a fixed 50 km/h.
func Fig2a(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "fig2a",
		Title:  "Correlation vs data rate (50 km/h, V2I urban)",
		Header: []string{"data rate", "airtime", "correlation"},
		Notes:  []string{"paper: correlation drops below 0.6 under 293 bit/s"},
	}
	seeds, exch := 4, 80
	if cfg.Quick {
		seeds, exch = 2, 50
	}
	for _, pt := range lora.DataRateSweep() {
		sc := trace.NewScenario(channel.Urban, channel.V2I)
		sc.Radio = pt.Params
		c, err := avgCorr(sc, seeds, exch, cfg.Seed+100)
		if err != nil {
			return Report{}, err
		}
		r.Rows = append(r.Rows, []string{pt.Label, f("%.0f ms", pt.Params.Airtime()*1e3), f("%.3f", c)})
	}
	return r, nil
}

// Fig2b regenerates Fig. 2(b): correlation vs vehicle speed at 183 bit/s.
func Fig2b(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "fig2b",
		Title:  "Correlation vs vehicle speed (183 bit/s, V2I urban)",
		Header: []string{"speed", "coherence time", "correlation"},
		Notes:  []string{"paper: correlation drops below 0.6 above 30 km/h"},
	}
	seeds, exch := 4, 80
	if cfg.Quick {
		seeds, exch = 2, 50
	}
	for _, v := range []float64{10, 20, 30, 40, 50, 60, 80} {
		sc := trace.NewScenario(channel.Urban, channel.V2I)
		sc.SpeedAKmh = v
		c, err := avgCorr(sc, seeds, exch, cfg.Seed+200)
		if err != nil {
			return Report{}, err
		}
		tc := sc.ChannelConfig().CoherenceTime()
		r.Rows = append(r.Rows, []string{f("%.0f km/h", v), f("%.1f ms", tc*1e3), f("%.3f", c)})
	}
	return r, nil
}

// Fig3 regenerates Fig. 3: pRSSI vs arRSSI correlation in the four
// scenarios.
func Fig3(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "fig3",
		Title:  "pRSSI vs arRSSI correlation per scenario",
		Header: []string{"scenario", "pRSSI corr", "arRSSI corr"},
		Notes:  []string{"paper: rRSSI-derived correlation is significantly higher in every scenario"},
	}
	exch := 100
	if cfg.Quick {
		exch = 60
	}
	for _, sc := range trace.Scenarios() {
		col := trace.NewCollector(sc, cfg.Seed+300)
		ex := col.Run(exch)
		pa, pb := trace.PRSSI(ex)
		pc, err := mathx.Pearson(pa, pb)
		if err != nil {
			return Report{}, err
		}
		aa, ab := trace.ArRSSI(ex, trace.DefaultExtract())
		ac, err := trace.Correlation(aa, ab)
		if err != nil {
			return Report{}, err
		}
		r.Rows = append(r.Rows, []string{sc.Name, f("%.3f", pc), f("%.3f", ac)})
	}
	return r, nil
}

// Fig4 regenerates Fig. 4: one probe exchange's register-RSSI streams,
// showing Bob's window ending where Alice's begins.
func Fig4(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "fig4",
		Title:  "Register RSSI within one probe exchange (packet RSSI vs register RSSI)",
		Header: []string{"t (s)", "side", "rRSSI (dBm)"},
	}
	sc := trace.NewScenario(channel.Urban, channel.V2I)
	col := trace.NewCollector(sc, cfg.Seed+400)
	ex := col.Run(1)[0]
	step := len(ex.BobRx.RRSSI) / 16
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(ex.BobRx.RRSSI); i += step {
		r.Rows = append(r.Rows, []string{f("%.2f", ex.BobRx.Times[i]), "Bob", f("%.1f", ex.BobRx.RRSSI[i])})
	}
	for i := 0; i < len(ex.AlcRx.RRSSI); i += step {
		r.Rows = append(r.Rows, []string{f("%.2f", ex.AlcRx.Times[i]), "Alice", f("%.1f", ex.AlcRx.RRSSI[i])})
	}
	r.Notes = append(r.Notes,
		f("Bob pRSSI %.1f dBm, Alice pRSSI %.1f dBm — the packet averages differ while the adjacent window edges track each other", ex.BobRx.PRSSI, ex.AlcRx.PRSSI))
	return r, nil
}

// Fig9 regenerates Fig. 9: arRSSI correlation vs window percentage.
func Fig9(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "fig9",
		Title:  "arRSSI correlation vs adjacent-window percentage",
		Header: []string{"window", "correlation"},
		Notes:  []string{"paper: the optimum sits near 10%"},
	}
	exch := 120
	if cfg.Quick {
		exch = 60
	}
	sc := trace.NewScenario(channel.Urban, channel.V2I)
	col := trace.NewCollector(sc, cfg.Seed+500)
	ex := col.Run(exch)
	for _, frac := range []float64{0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50, 0.70, 0.90} {
		a, b := trace.ArRSSI(ex, trace.ExtractConfig{WindowFraction: frac, Blocks: 4})
		c, err := trace.Correlation(a, b)
		if err != nil {
			return Report{}, err
		}
		r.Rows = append(r.Rows, []string{pct(frac), f("%.3f", c)})
	}
	return r, nil
}
