package exp

import (
	"repro/internal/channel"
	"repro/internal/lora"
	"repro/internal/mathx"
	"repro/internal/rng"
	"repro/internal/trace"
)

func init() {
	register("fig2a", Fig2a)
	register("fig2b", Fig2b)
	register("fig3", Fig3)
	register("fig4", Fig4)
	register("fig9", Fig9)
}

// avgCorr runs several channel realizations and averages the pRSSI
// correlation. Realization seeds are drawn from src, the calling work
// unit's private sub-stream.
func avgCorr(sc trace.Scenario, seeds, exchanges int, src *rng.Source) (float64, error) {
	var sum float64
	for s := 0; s < seeds; s++ {
		col := trace.NewCollector(sc, src.Int63())
		ex := col.Run(exchanges)
		pa, pb := trace.PRSSI(ex)
		c, err := mathx.Pearson(pa, pb)
		if err != nil {
			return 0, err
		}
		sum += c
	}
	return sum / float64(seeds), nil
}

// Fig2a regenerates Fig. 2(a): Alice/Bob pRSSI correlation vs data rate
// at a fixed 50 km/h. Each data-rate point is an independent unit of
// work on the fan-out engine.
func Fig2a(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "fig2a",
		Title:  "Correlation vs data rate (50 km/h, V2I urban)",
		Header: []string{"data rate", "airtime", "correlation"},
		Notes:  []string{"paper: correlation drops below 0.6 under 293 bit/s"},
	}
	seeds, exch := 4, 80
	if cfg.Quick {
		seeds, exch = 2, 50
	}
	pts := lora.DataRateSweep()
	rows, err := parMap(cfg, "fig2a", len(pts), func(i int, src *rng.Source) ([]string, error) {
		pt := pts[i]
		sc := trace.NewScenario(channel.Urban, channel.V2I)
		sc.Radio = pt.Params
		c, err := avgCorr(sc, seeds, exch, src)
		if err != nil {
			return nil, err
		}
		return []string{pt.Label, f("%.0f ms", pt.Params.Airtime()*1e3), f("%.3f", c)}, nil
	})
	if err != nil {
		return Report{}, err
	}
	r.Rows = rows
	return r, nil
}

// Fig2b regenerates Fig. 2(b): correlation vs vehicle speed at 183 bit/s.
func Fig2b(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "fig2b",
		Title:  "Correlation vs vehicle speed (183 bit/s, V2I urban)",
		Header: []string{"speed", "coherence time", "correlation"},
		Notes:  []string{"paper: correlation drops below 0.6 above 30 km/h"},
	}
	seeds, exch := 4, 80
	if cfg.Quick {
		seeds, exch = 2, 50
	}
	speeds := []float64{10, 20, 30, 40, 50, 60, 80}
	rows, err := parMap(cfg, "fig2b", len(speeds), func(i int, src *rng.Source) ([]string, error) {
		sc := trace.NewScenario(channel.Urban, channel.V2I)
		sc.SpeedAKmh = speeds[i]
		c, err := avgCorr(sc, seeds, exch, src)
		if err != nil {
			return nil, err
		}
		tc := sc.ChannelConfig().CoherenceTime()
		return []string{f("%.0f km/h", speeds[i]), f("%.1f ms", tc*1e3), f("%.3f", c)}, nil
	})
	if err != nil {
		return Report{}, err
	}
	r.Rows = rows
	return r, nil
}

// Fig3 regenerates Fig. 3: pRSSI vs arRSSI correlation in the four
// scenarios, one unit of work per scenario.
func Fig3(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "fig3",
		Title:  "pRSSI vs arRSSI correlation per scenario",
		Header: []string{"scenario", "pRSSI corr", "arRSSI corr"},
		Notes:  []string{"paper: rRSSI-derived correlation is significantly higher in every scenario"},
	}
	exch := 100
	if cfg.Quick {
		exch = 60
	}
	scs := trace.Scenarios()
	rows, err := parMap(cfg, "fig3", len(scs), func(i int, src *rng.Source) ([]string, error) {
		col := trace.NewCollector(scs[i], src.Int63())
		ex := col.Run(exch)
		pa, pb := trace.PRSSI(ex)
		pc, err := mathx.Pearson(pa, pb)
		if err != nil {
			return nil, err
		}
		aa, ab := trace.ArRSSI(ex, trace.DefaultExtract())
		ac, err := trace.Correlation(aa, ab)
		if err != nil {
			return nil, err
		}
		return []string{scs[i].Name, f("%.3f", pc), f("%.3f", ac)}, nil
	})
	if err != nil {
		return Report{}, err
	}
	r.Rows = rows
	return r, nil
}

// Fig4 regenerates Fig. 4: one probe exchange's register-RSSI streams,
// showing Bob's window ending where Alice's begins. A single exchange is
// one unit of work.
func Fig4(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "fig4",
		Title:  "Register RSSI within one probe exchange (packet RSSI vs register RSSI)",
		Header: []string{"t (s)", "side", "rRSSI (dBm)"},
	}
	err := forEach(cfg, "fig4", 1, func(_ int, src *rng.Source) error {
		sc := trace.NewScenario(channel.Urban, channel.V2I)
		col := trace.NewCollector(sc, src.Int63())
		ex := col.Run(1)[0]
		step := len(ex.BobRx.RRSSI) / 16
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(ex.BobRx.RRSSI); i += step {
			r.Rows = append(r.Rows, []string{f("%.2f", ex.BobRx.Times[i]), "Bob", f("%.1f", ex.BobRx.RRSSI[i])})
		}
		for i := 0; i < len(ex.AlcRx.RRSSI); i += step {
			r.Rows = append(r.Rows, []string{f("%.2f", ex.AlcRx.Times[i]), "Alice", f("%.1f", ex.AlcRx.RRSSI[i])})
		}
		r.Notes = append(r.Notes,
			f("Bob pRSSI %.1f dBm, Alice pRSSI %.1f dBm — the packet averages differ while the adjacent window edges track each other", ex.BobRx.PRSSI, ex.AlcRx.PRSSI))
		return nil
	})
	if err != nil {
		return Report{}, err
	}
	return r, nil
}

// Fig9 regenerates Fig. 9: arRSSI correlation vs window percentage. The
// probe exchanges are collected once; the window fractions then fan out
// over the shared, read-only exchange slice.
func Fig9(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "fig9",
		Title:  "arRSSI correlation vs adjacent-window percentage",
		Header: []string{"window", "correlation"},
		Notes:  []string{"paper: the optimum sits near 10%"},
	}
	exch := 120
	if cfg.Quick {
		exch = 60
	}
	var ex []trace.Exchange
	err := forEach(cfg, "fig9/collect", 1, func(_ int, src *rng.Source) error {
		sc := trace.NewScenario(channel.Urban, channel.V2I)
		col := trace.NewCollector(sc, src.Int63())
		ex = col.Run(exch)
		return nil
	})
	if err != nil {
		return Report{}, err
	}
	fracs := []float64{0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50, 0.70, 0.90}
	rows, err := parMap(cfg, "fig9/window", len(fracs), func(i int, _ *rng.Source) ([]string, error) {
		a, b := trace.ArRSSI(ex, trace.ExtractConfig{WindowFraction: fracs[i], Blocks: 4})
		c, err := trace.Correlation(a, b)
		if err != nil {
			return nil, err
		}
		return []string{pct(fracs[i]), f("%.3f", c)}, nil
	})
	if err != nil {
		return Report{}, err
	}
	r.Rows = rows
	return r, nil
}
