package exp

import (
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/trace"
)

func init() {
	register("tab3", Table3)
	register("fig17", Fig17)
}

// profileOnce trains a small system (served from the cache when another
// figure already trained it) and profiles one key round. Table3 and
// Fig17 share one memoized profile per run configuration.
//
// In quick/regression mode the per-stage durations come from
// power.ModelProfile's deterministic operation-count model, so the
// report is a pure function of the seed — the property the parallel
// equivalence tests assert. At the full configuration the durations are
// measured on the host, matching the paper's methodology; those reports
// are *statistically* stable but not bit-reproducible.
func profileOnce(cfg RunConfig) ([]power.Measurement, error) {
	return memo("profile", cfg, func() ([]power.Measurement, error) {
		sc := trace.NewScenario(channel.Urban, channel.V2I)
		sysCfg := core.DefaultConfig()
		// The paper's on-device model: 128 BiLSTM units. Profiling uses the
		// full width even when training used less — weights are sized at
		// construction, and timing depends only on architecture.
		sys, _, test, err := trainFor(sc, cfg, sysCfg)
		if err != nil {
			return nil, err
		}
		if cfg.Quick {
			return power.ModelProfile(sys), nil
		}
		return power.Profile(sys, test.Samples[0], 30)
	})
}

// timingNote states which timing source the profile rows used.
func timingNote(cfg RunConfig) string {
	if cfg.Quick {
		return "quick mode: times are modeled from operation counts (deterministic), not measured"
	}
	return "times below are measured on this host; energy uses the Pi 4 per-stage draws"
}

// Table3 regenerates Table III: per-stage computation time and energy.
func Table3(cfg RunConfig) (Report, error) {
	ms, err := profileOnce(cfg)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		ID:     "tab3",
		Title:  "Computation time and energy per 128-bit key",
		Header: []string{"side", "stage", "time (ms)", "energy (mJ)"},
		Notes: []string{
			"paper (Raspberry Pi 4): Alice 3.41 ms / 13.0 mJ, Bob 0.43 ms / 1.47 mJ",
			timingNote(cfg),
		},
	}
	for _, m := range ms {
		r.Rows = append(r.Rows, []string{
			m.Side, m.Stage, f("%.4f", float64(m.Duration.Nanoseconds())/1e6), f("%.4f", m.EnergyMJ),
		})
	}
	for _, side := range []string{"Alice", "Bob"} {
		t := power.Totals(ms)[side]
		r.Rows = append(r.Rows, []string{
			side, "Total", f("%.4f", float64(t.Duration.Nanoseconds())/1e6), f("%.4f", t.EnergyMJ),
		})
	}
	return r, nil
}

// Fig17 regenerates Fig. 17: the power-draw trace over one key
// generation.
func Fig17(cfg RunConfig) (Report, error) {
	ms, err := profileOnce(cfg)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		ID:     "fig17",
		Title:  "Power draw over one key generation (Alice)",
		Header: []string{"t (ms)", "draw (W)", "stage"},
		Notes:  []string{timingNote(cfg)},
	}
	for _, p := range power.DrawTrace(ms) {
		r.Rows = append(r.Rows, []string{f("%.4f", p.AtMS), f("%.2f", p.DrawW), p.Stage})
	}
	return r, nil
}
