package exp

import (
	"strings"
	"testing"
)

// TestQuickRunners exercises the fast (non-training) experiments.
func TestQuickRunners(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	cfg := Quick()
	for _, id := range []string{"fig2a", "fig2b", "fig3", "fig4", "fig9", "fig16", "fig11", "ablate-bloom"} {
		rep, err := Run(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Rows) == 0 {
			t.Errorf("%s: empty report", id)
		}
		t.Logf("\n%s", rep)
	}
}

// TestTrainedRunnersSmoke exercises one training-based experiment at quick
// scale to keep runtime tolerable; the rest share the same code path.
func TestTrainedRunnersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	cfg := Quick()
	for _, id := range []string{"fig15", "tab3"} {
		rep, err := Run(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Rows) == 0 {
			t.Errorf("%s: empty report", id)
		}
		t.Logf("\n%s", rep)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", Quick()); err == nil {
		t.Fatal("expected error")
	}
}

func TestReportString(t *testing.T) {
	r := Report{ID: "x", Title: "t", Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}
	s := r.String()
	for _, want := range []string{"x", "t", "a", "1"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestIDsComplete(t *testing.T) {
	want := []string{"fig2a", "fig2b", "fig3", "fig4", "fig9", "fig10", "fig11",
		"tab1", "fig12", "fig13", "fig14", "fig15", "fig16", "tab2", "tab3", "fig17",
		"ablate-theta", "ablate-bloom"}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
}

func TestReportMarkdown(t *testing.T) {
	r := Report{ID: "x", Title: "t", Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	md := r.Markdown()
	for _, want := range []string{"### x", "| a | b |", "| 1 | 2 |", "*n*"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
