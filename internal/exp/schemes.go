package exp

import (
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/trace"
)

func init() {
	register("schemes", SchemesExp)
}

// SchemesExp runs every registered scheme — Vehicle-Key and the three
// baselines alike — through the unified stage interface over the same
// V2I-urban link, one work unit per scheme. It is the refactor's
// end-to-end demonstration: the rows differ only in which Stages slots
// each scheme plugs in, never in the driving code. RunConfig.Scheme
// restricts the sweep to a single name (vkbench -scheme).
func SchemesExp(cfg RunConfig) (Report, error) {
	r := Report{
		ID:     "schemes",
		Title:  "Cross-scheme sweep through the unified pipeline (V2I urban)",
		Header: []string{"scheme", "blocks", "preKAR", "postKAR", "KGR", "net KGR"},
		Notes: []string{
			"every scheme is built by core.NewScheme and evaluated by the same stage-interface driver",
		},
	}
	names := core.SchemeNames()
	if cfg.Scheme != "" {
		names = []string{cfg.Scheme}
	}
	sc := trace.NewScenario(channel.Urban, channel.V2I)
	rows, err := parMap(cfg, "schemes", len(names), func(i int, src *rng.Source) ([]string, error) {
		name := names[i]
		if name == core.DefaultScheme {
			// Vehicle-Key needs its trained predictor; the baselines are
			// training-free and run straight off the probing series.
			sys, _, test, err := trainFor(sc, cfg, core.DefaultConfig())
			if err != nil {
				return nil, err
			}
			m, err := sys.Evaluate(test, []byte("schemes"))
			if err != nil {
				return nil, err
			}
			return []string{name, f("%d", m.Blocks), pct(m.PreKAR), pct(m.PostKAR),
				f("%.3f", m.KGR), f("%.3f", m.NetKGR)}, nil
		}
		exch := cfg.Samples * 4
		if exch > 1200 {
			exch = 1200
		}
		col := trace.NewCollector(sc, src.Int63())
		ex := col.Run(exch)
		sr, err := evalBaseline(name, src.Derive(name), ex)
		if err != nil {
			return nil, err
		}
		return []string{name, f("%d", sr.Blocks), pct(sr.PreKAR), pct(sr.PostKAR),
			f("%.3f", sr.KGR), f("%.3f", sr.NetKGR)}, nil
	})
	if err != nil {
		return Report{}, err
	}
	r.Rows = rows
	return r, nil
}
