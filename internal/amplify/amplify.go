// Package amplify implements privacy amplification: the reconciled key
// material is hashed down so that the bits leaked during reconciliation
// (syndromes, parities) carry no information about the final key. The
// paper applies "SHA-128"; we realize it as SHA-256 truncated to 128 bits,
// the standard construction for that output size.
package amplify

import (
	"crypto/sha256"
	"errors"
	"math"
)

// KeyBits is the final symmetric key width Vehicle-Key produces (AES-128).
const KeyBits = 128

// PackBits packs a 0/1-byte bit slice MSB-first into bytes.
func PackBits(bits []byte) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b == 1 {
			out[i/8] |= 1 << uint(7-i%8)
		}
	}
	return out
}

// UnpackBits expands packed bytes into n 0/1 bytes, MSB-first.
func UnpackBits(data []byte, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n && i/8 < len(data); i++ {
		out[i] = data[i/8] >> uint(7-i%8) & 1
	}
	return out
}

// Amplify hashes reconciled key bits (0/1 bytes) together with public
// session context into a 128-bit key. The context binds the key to the
// session (salt, nonces) so replayed reconciliation transcripts cannot
// reproduce it.
func Amplify(bits []byte, context []byte) ([]byte, error) {
	if len(bits) == 0 {
		return nil, errors.New("amplify: no key material")
	}
	h := sha256.New()
	h.Write([]byte("vehicle-key/pa/v1"))
	h.Write(context)
	h.Write(PackBits(bits))
	sum := h.Sum(nil)
	return sum[:KeyBits/8], nil
}

// ExtractableBits bounds how many secret bits the material still holds
// after reconciliation leaked leakedBits: the leftover-hash lemma lets us
// extract about n − leaked − 2·log(1/ε) bits; we use a safety margin of
// 32.
func ExtractableBits(materialBits, leakedBits int) int {
	out := materialBits - leakedBits - 32
	if out < 0 {
		return 0
	}
	return out
}

// SufficientMaterial reports whether the material can safely yield a full
// 128-bit key after accounting for leakage.
func SufficientMaterial(materialBits, leakedBits int) bool {
	return ExtractableBits(materialBits, leakedBits) >= KeyBits
}

// EstimateEntropy returns an empirical Shannon entropy estimate of the
// bit stream in bits per bit, using order-2 block statistics (the min of
// the order-1 and conditional order-2 estimates). Useful as a cheap
// health check on key material before amplification; 1.0 means ideally
// random.
func EstimateEntropy(bits []byte) float64 {
	if len(bits) < 4 {
		return 0
	}
	// Order 1.
	ones := 0
	for _, b := range bits {
		if b == 1 {
			ones++
		}
	}
	p1 := float64(ones) / float64(len(bits))
	h1 := binEntropy(p1)

	// Order 2: H(X_{i+1} | X_i) from pair counts.
	var counts [2][2]float64
	for i := 0; i+1 < len(bits); i++ {
		counts[bits[i]&1][bits[i+1]&1]++
	}
	var h2 float64
	total := float64(len(bits) - 1)
	for prev := 0; prev < 2; prev++ {
		rowTotal := counts[prev][0] + counts[prev][1]
		if rowTotal == 0 {
			continue
		}
		pPrev := rowTotal / total
		h2 += pPrev * binEntropy(counts[prev][1]/rowTotal)
	}
	if h2 < h1 {
		return h2
	}
	return h1
}

func binEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*log2(p) - (1-p)*log2(1-p)
}

func log2(x float64) float64 { return math.Log2(x) }
