package amplify

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		bits := make([]byte, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		return bytes.Equal(UnpackBits(PackBits(bits), len(bits)), bits)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAmplifyDeterministicAndContextBound(t *testing.T) {
	bits := []byte{1, 0, 1, 1, 0, 1, 0, 0, 1, 1}
	k1, err := Amplify(bits, []byte("ctx"))
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := Amplify(bits, []byte("ctx"))
	if !bytes.Equal(k1, k2) {
		t.Fatal("amplification must be deterministic")
	}
	k3, _ := Amplify(bits, []byte("other"))
	if bytes.Equal(k1, k3) {
		t.Fatal("different context must give a different key")
	}
	if len(k1) != KeyBits/8 {
		t.Fatalf("key length %d, want %d", len(k1), KeyBits/8)
	}
}

func TestAmplifySingleBitAvalanche(t *testing.T) {
	bits := make([]byte, 128)
	bits[5] = 1
	k1, _ := Amplify(bits, nil)
	bits[77] ^= 1
	k2, _ := Amplify(bits, nil)
	diff := 0
	for i := range k1 {
		x := k1[i] ^ k2[i]
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff < 40 {
		t.Errorf("avalanche too weak: %d differing bits", diff)
	}
}

func TestAmplifyEmpty(t *testing.T) {
	if _, err := Amplify(nil, nil); err == nil {
		t.Fatal("empty material must be rejected")
	}
}

func TestExtractableBits(t *testing.T) {
	if got := ExtractableBits(256, 32); got != 192 {
		t.Errorf("extractable = %d, want 192", got)
	}
	if got := ExtractableBits(40, 32); got != 0 {
		t.Errorf("extractable = %d, want 0", got)
	}
	if !SufficientMaterial(300, 32) {
		t.Error("300-32-32 ≥ 128 should be sufficient")
	}
	if SufficientMaterial(128, 32) {
		t.Error("128 bits with 32 leaked is insufficient for a 128-bit key")
	}
}

func TestEstimateEntropy(t *testing.T) {
	// Constant stream → 0; alternating stream → order-2 catches it.
	if h := EstimateEntropy(make([]byte, 1000)); h != 0 {
		t.Errorf("constant entropy = %v", h)
	}
	alt := make([]byte, 1000)
	for i := range alt {
		alt[i] = byte(i % 2)
	}
	if h := EstimateEntropy(alt); h > 0.01 {
		t.Errorf("alternating entropy = %v, want ~0", h)
	}
	// A simple LCG-ish pseudorandom stream should score near 1.
	bits := make([]byte, 4096)
	s := uint64(12345)
	for i := range bits {
		s = s*6364136223846793005 + 1442695040888963407
		bits[i] = byte(s >> 63)
	}
	if h := EstimateEntropy(bits); h < 0.98 {
		t.Errorf("pseudorandom entropy = %v, want ~1", h)
	}
}
