package power

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/trace"
)

func TestProfileStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	sc := trace.NewScenario(channel.Urban, channel.V2I)
	ds, err := trace.Build(sc, 31, 60, 32, trace.DefaultExtract())
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(32)
	sys := core.New(core.DefaultConfig(), src)
	if _, err := sys.Train(ds, 3, src.Derive("t")); err != nil {
		t.Fatal(err)
	}
	ms, err := Profile(sys, ds.Samples[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 6 {
		t.Fatalf("want 6 measurements, got %d", len(ms))
	}
	totals := Totals(ms)
	alice, bob := totals["Alice"], totals["Bob"]
	// Table III's structural claim: Alice (running the prediction
	// network) costs far more than Bob (quantizer + encoder only).
	if alice.Duration <= bob.Duration {
		t.Errorf("Alice total %v should exceed Bob total %v", alice.Duration, bob.Duration)
	}
	if alice.EnergyMJ <= 0 || bob.EnergyMJ <= 0 {
		t.Error("energies must be positive")
	}
	tr := DrawTrace(ms)
	if len(tr) < 4 {
		t.Errorf("draw trace too short: %d points", len(tr))
	}
}
