// Package power reproduces the paper's Table III / Fig. 17 measurement:
// per-stage computation time and energy for one key generation. Times are
// measured on the current host; energy is modeled with the per-stage
// power draws implied by the paper's Raspberry Pi 4 measurements
// (energy = time × draw), so the *structure* — Alice pays for prediction,
// Bob only for quantization and encoding, reconciliation is negligible —
// carries over even though absolute host speeds differ.
package power

import (
	"fmt"
	"time"

	"repro/internal/amplify"
	"repro/internal/core"
	"repro/internal/trace"
)

// Stage draws implied by Table III (mJ / ms → W).
const (
	predictionDrawW = 3.81 // 12.8947 mJ / 3.38 ms
	quantizeDrawW   = 3.43 // 1.44 mJ / 0.42 ms
	reconcileDrawW  = 3.61 // 0.1113 mJ / 0.0308 ms
)

// Measurement is one (side, stage) timing/energy row.
type Measurement struct {
	Side     string // "Alice" or "Bob"
	Stage    string
	Duration time.Duration
	EnergyMJ float64
}

// String implements fmt.Stringer.
func (m Measurement) String() string {
	return fmt.Sprintf("%-5s %-28s %10.4f ms %10.4f mJ",
		m.Side, m.Stage, float64(m.Duration.Nanoseconds())/1e6, m.EnergyMJ)
}

// Profile times every pipeline stage of one key-generation round on the
// trained system, repeating each stage iters times and reporting the mean.
func Profile(sys *core.System, smp trace.Sample, iters int) ([]Measurement, error) {
	if iters <= 0 {
		iters = 20
	}
	salt := []byte("power-profile")

	timeIt := func(f func()) time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		return time.Since(start) / time.Duration(iters)
	}

	// Bob: quantization.
	bobBits, bobKept, err := sys.BobQuantize(smp.Bob)
	if err != nil {
		return nil, err
	}
	tBobQuant := timeIt(func() {
		_, _, _ = sys.BobQuantize(smp.Bob)
	})

	// Alice: prediction + quantization network and selection.
	tAlicePred := timeIt(func() {
		_, _ = sys.AliceSelect(smp.Alice, bobKept)
	})
	aliceBits, finalKept := sys.AliceSelect(smp.Alice, bobKept)
	bobFinal := core.SelectAt(bobBits, bobKept, finalKept, sys.Cfg.BitsPerSample)

	// Pad both to the reconciliation block (profiling a single round).
	block := sys.Cfg.KeyBlockBits
	padTo := func(bits []byte) []byte {
		out := make([]byte, block)
		copy(out, bits)
		return out
	}
	a64, b64 := padTo(aliceBits), padTo(bobFinal)

	// Bob: reconciliation encode.
	tBobRec := timeIt(func() {
		out, _ := sys.Stages.Reconciler.Reconcile(a64, b64, salt)
		_ = out
	})
	// Alice: full reconciliation (encode + decode). Measure her cost via
	// the same call; Bob's share is the encoder only, which is a small
	// fraction — approximate it by the encoder's op share.
	tAliceRec := tBobRec
	encShare := float64(sys.Cfg.AE.KeyBits*sys.Cfg.AE.CodeDim) /
		float64(sys.Cfg.AE.KeyBits*sys.Cfg.AE.CodeDim*2+sys.Cfg.AE.KeyBits*(sys.Cfg.AE.DecoderUnits*sys.Cfg.AE.DecoderUnits+3*sys.Cfg.AE.DecoderUnits))
	tBobRecOnly := time.Duration(float64(tBobRec) * encShare)

	// Privacy amplification (both sides, microseconds).
	tPA := timeIt(func() {
		_, _ = amplify.Amplify(b64, salt)
	})

	mj := func(d time.Duration, draw float64) float64 {
		return d.Seconds() * 1e3 * draw
	}
	return []Measurement{
		{Side: "Alice", Stage: "Prediction and quantization", Duration: tAlicePred, EnergyMJ: mj(tAlicePred, predictionDrawW)},
		{Side: "Bob", Stage: "Prediction and quantization", Duration: tBobQuant, EnergyMJ: mj(tBobQuant, quantizeDrawW)},
		{Side: "Alice", Stage: "Reconciliation", Duration: tAliceRec, EnergyMJ: mj(tAliceRec, reconcileDrawW)},
		{Side: "Bob", Stage: "Reconciliation", Duration: tBobRecOnly, EnergyMJ: mj(tBobRecOnly, reconcileDrawW)},
		{Side: "Alice", Stage: "Privacy amplification", Duration: tPA, EnergyMJ: mj(tPA, reconcileDrawW)},
		{Side: "Bob", Stage: "Privacy amplification", Duration: tPA, EnergyMJ: mj(tPA, reconcileDrawW)},
	}, nil
}

// ModelProfile produces the same six (side, stage) rows as Profile, but
// with durations computed from a deterministic operation-count model of
// the configured architecture scaled to the paper's Raspberry Pi 4
// throughput, instead of measured on the host. The result is a pure
// function of the system's Config — bit-identical run to run — which is
// what the experiment engine's quick/regression mode needs: measured
// wall-clock times can never reproduce exactly, modeled ones always do.
//
// Calibration: the paper's 128-unit BiLSTM predictor takes 3.38 ms on
// the Pi 4, and its per-timestep cost is dominated by the recurrent
// multiply-accumulates, giving roughly 0.25 ns per MAC; the remaining
// stages reuse that constant over their own op counts.
func ModelProfile(sys *core.System) []Measurement {
	cfg := sys.Cfg
	const nsPerOp = 0.25

	dur := func(ops float64) time.Duration {
		return time.Duration(ops * nsPerOp)
	}

	// BiLSTM: two directions × SeqLen steps × 4 gates × H×(H+1) MACs,
	// plus the per-timestep prediction and quantization heads.
	h := float64(cfg.Hidden)
	seq := float64(cfg.SeqLen)
	bits := float64(cfg.BitsPerSample * cfg.SeqLen)
	predOps := 2*seq*4*h*(h+1) + seq*2*h + bits*2*h
	// Bob's quantizer: a threshold scan per sample.
	quantOps := seq * float64(int(1)<<cfg.BitsPerSample) * 4
	// Autoencoder: encoder KeyBits×CodeDim; decoder adds the per-position
	// shared units (same expression Profile's encoder share uses).
	enc := float64(cfg.AE.KeyBits * cfg.AE.CodeDim)
	dec := enc + float64(cfg.AE.KeyBits*(cfg.AE.DecoderUnits*cfg.AE.DecoderUnits+3*cfg.AE.DecoderUnits))
	// Privacy amplification: one hash pass over the block.
	paOps := float64(cfg.KeyBlockBits) * 24

	tAlicePred := dur(predOps)
	tBobQuant := dur(quantOps)
	tAliceRec := dur(enc + dec)
	tBobRec := dur(enc)
	tPA := dur(paOps)

	mj := func(d time.Duration, draw float64) float64 {
		return d.Seconds() * 1e3 * draw
	}
	return []Measurement{
		{Side: "Alice", Stage: "Prediction and quantization", Duration: tAlicePred, EnergyMJ: mj(tAlicePred, predictionDrawW)},
		{Side: "Bob", Stage: "Prediction and quantization", Duration: tBobQuant, EnergyMJ: mj(tBobQuant, quantizeDrawW)},
		{Side: "Alice", Stage: "Reconciliation", Duration: tAliceRec, EnergyMJ: mj(tAliceRec, reconcileDrawW)},
		{Side: "Bob", Stage: "Reconciliation", Duration: tBobRec, EnergyMJ: mj(tBobRec, reconcileDrawW)},
		{Side: "Alice", Stage: "Privacy amplification", Duration: tPA, EnergyMJ: mj(tPA, reconcileDrawW)},
		{Side: "Bob", Stage: "Privacy amplification", Duration: tPA, EnergyMJ: mj(tPA, reconcileDrawW)},
	}
}

// Totals sums the measurements per side.
func Totals(ms []Measurement) map[string]Measurement {
	out := make(map[string]Measurement)
	for _, m := range ms {
		t := out[m.Side]
		t.Side = m.Side
		t.Stage = "Total"
		t.Duration += m.Duration
		t.EnergyMJ += m.EnergyMJ
		out[m.Side] = t
	}
	return out
}

// Trace produces a Fig. 17-style power-draw series: (time offset, watts)
// points over one key generation, derived from the stage timings.
type TracePoint struct {
	AtMS  float64
	DrawW float64
	Stage string
}

// DrawTrace lays the Alice-side stages end to end.
func DrawTrace(ms []Measurement) []TracePoint {
	var out []TracePoint
	var at float64
	const idleDraw = 2.7 // Pi 4 idle draw, paper's Fig. 17 baseline
	out = append(out, TracePoint{AtMS: 0, DrawW: idleDraw, Stage: "idle"})
	for _, m := range ms {
		if m.Side != "Alice" {
			continue
		}
		durMS := float64(m.Duration.Nanoseconds()) / 1e6
		draw := idleDraw
		if durMS > 0 {
			draw = m.EnergyMJ / durMS
		}
		out = append(out, TracePoint{AtMS: at, DrawW: draw, Stage: m.Stage})
		at += durMS
	}
	out = append(out, TracePoint{AtMS: at, DrawW: idleDraw, Stage: "idle"})
	return out
}
