package pipeline

// identityPredictor is the no-prediction slot filler used by schemes
// where Alice quantizes her own measurements directly (every baseline):
// yHat is the measured sequence itself, and the bit head is produced by
// the scheme's own un-guarded quantization rule.
type identityPredictor struct {
	head func(seq []float64) ([]byte, error)
}

// NewIdentityPredictor builds a pass-through predictor. head maps
// Alice's raw sequence to her full (un-guarded) bit head; it is
// typically the scheme's quantizer with the guard band disabled.
func NewIdentityPredictor(head func(seq []float64) ([]byte, error)) Predictor {
	return &identityPredictor{head: head}
}

func (p *identityPredictor) Name() string { return "identity" }

func (p *identityPredictor) Predict(aliceSeq []float64) ([]float64, []byte, error) {
	bits, err := p.head(aliceSeq)
	if err != nil {
		return nil, nil, err
	}
	return aliceSeq, bits, nil
}

// Clone returns the receiver: an identity predictor is stateless.
func (p *identityPredictor) Clone() Predictor { return p }
