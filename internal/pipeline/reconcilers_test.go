package pipeline

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rng"
)

// TestRawBitSchemesKeyImageIsOneWay is the MAC-oracle regression: the
// reconcilers that work directly on raw bits (CS, Cascade) must hand
// the protocol a salted one-way image of the block, never the block
// itself — a raw-bit MAC key plus the public syndrome equations would
// give an eavesdropper a cheap offline verification oracle.
func TestRawBitSchemesKeyImageIsOneWay(t *testing.T) {
	block := rng.New(5).Bits(64)
	stages := map[string]Reconciler{
		"cs-ista": NewCS(DefaultCSConfig(), 64),
		"cascade": NewCascade(DefaultCascadeConfig(), 64, rng.New(6)),
	}
	for name, st := range stages {
		code, img, err := st.BobEncode(block, []byte("salt-a"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if bytes.Equal(img, block) {
			t.Errorf("%s: key image is the raw block", name)
		}
		_, imgB, err := st.BobEncode(block, []byte("salt-b"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if bytes.Equal(img, imgB) {
			t.Errorf("%s: key image ignores the salt", name)
		}
		// Alice's image after a clean correction must match Bob's, or
		// the MAC confirmation would reject agreeing keys.
		final, imgAlice, err := st.AliceCorrect(append([]byte(nil), block...), code, []byte("salt-a"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(final, block) {
			t.Fatalf("%s: zero-mismatch correction changed the block", name)
		}
		if !bytes.Equal(imgAlice, img) {
			t.Errorf("%s: Alice's image differs from Bob's on equal blocks", name)
		}
	}
}

// TestCascadeCloneContract pins the clone semantics: a clone shares no
// mutable rng state with its original — the wire path stays fully
// functional (and identical, since its randomness derives from the
// session salt), while the local interactive path reports a tailored
// error instead of racing on a shared source.
func TestCascadeCloneContract(t *testing.T) {
	orig := NewCascade(DefaultCascadeConfig(), 64, rng.New(7))
	clone := orig.Clone().(*CascadeStage)

	block := rng.New(8).Bits(64)
	salt := []byte("session")
	codeA, imgA, err := orig.BobEncode(block, salt)
	if err != nil {
		t.Fatal(err)
	}
	codeB, imgB, err := clone.BobEncode(block, salt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range codeA {
		if codeA[i] != codeB[i] {
			t.Fatalf("clone wire code differs at %d", i)
		}
	}
	if !bytes.Equal(imgA, imgB) {
		t.Fatal("clone key image differs from original")
	}

	if _, err := clone.Reconcile(block, block, nil); err == nil {
		t.Fatal("local Reconcile on a clone must error, not share the original's rng source")
	} else if !strings.Contains(err.Error(), "clone") {
		t.Fatalf("clone Reconcile error should name the clone contract, got: %v", err)
	}
	if _, err := orig.Reconcile(block, block, nil); err != nil {
		t.Fatalf("original's local Reconcile broke after cloning: %v", err)
	}
}

// TestCascadeLeakGuard: a configuration whose published parity count
// reaches the block size would hand an eavesdropper the key; both wire
// halves must refuse it.
func TestCascadeLeakGuard(t *testing.T) {
	// InitialBlock 1 publishes every bit of the first pass in the clear.
	st := NewCascade(CascadeConfig{InitialBlock: 1, Passes: 4}, 64, nil)
	block := rng.New(9).Bits(64)
	if _, _, err := st.BobEncode(block, []byte("s")); err == nil {
		t.Fatal("BobEncode accepted a config that leaks the whole key")
	}
	if _, _, err := st.AliceCorrect(block, make([]float64, 120), []byte("s")); err == nil {
		t.Fatal("AliceCorrect accepted a config that leaks the whole key")
	}
}
