// Package pipeline defines the pluggable stage interfaces a key
// establishment scheme is composed of — Predictor, Quantizer,
// Reconciler, Amplifier — plus the runtime Scheme contract the protocol
// and experiment layers drive schemes through. Vehicle-Key and every
// baseline (LoRa-Key, Han, Gao) implement the same four slots, so the
// protocol/ARQ layer, the experiment engine, and the NIST battery
// exercise identical code paths no matter which scheme is selected.
//
// Determinism contract: every stage must be a pure function of its
// inputs and its construction-time state. Stages that need randomness
// (training, interactive reconciliation) receive an *rng.Source at
// construction or through an explicit Fit call; nothing may read wall
// clocks or global randomness. Under that discipline a scheme's keys
// are a function of (trace, seed, salt) alone.
package pipeline

import (
	"fmt"
	"io"

	"repro/internal/nn"
	"repro/internal/reconcile"
	"repro/internal/rng"
)

// Predictor is Alice's side of the channel-reciprocity gap: it maps her
// measured sequence to (an estimate of) Bob's, plus the full bit head
// her quantization would produce. Vehicle-Key's BiLSTM predicts Bob's
// sequence; baseline schemes use an identity predictor (Alice quantizes
// her own measurements directly).
type Predictor interface {
	Name() string
	// Predict returns Alice's estimate of Bob's sequence and the full
	// (un-guarded) bit head over every sample position.
	Predict(aliceSeq []float64) (yHat []float64, headBits []byte, err error)
	// Clone returns an independent deep copy; mutating one side's
	// internal caches or weights must not affect the other.
	Clone() Predictor
}

// TrainablePredictor is implemented by predictors with fittable
// parameters (Vehicle-Key's BiLSTM). Fit returns per-epoch losses.
type TrainablePredictor interface {
	Predictor
	Fit(samples []nn.TrainSample, epochs int, learnRate, weightDecay float64, src *rng.Source) []float64
}

// Quantizer turns a (normalized) RSSI sequence into key bits.
// Quantize applies the measurement-side rule (Bob: guard-banded);
// QuantizePredicted applies the prediction-side rule (Alice: possibly a
// wider guard, or the same rule for schemes without prediction). Both
// return the kept sample indices alongside the bits; for schemes
// without guard bands every index is kept.
type Quantizer interface {
	Name() string
	BitsPerSample() int
	Quantize(seq []float64) (bits []byte, kept []int, err error)
	QuantizePredicted(seq []float64) (bits []byte, kept []int, err error)
}

// Reconciler corrects the residual bit mismatch between the two sides'
// key blocks. Reconcile is the local/evaluation entry point (both
// blocks in hand). BobEncode/AliceCorrect split the same correction
// across the wire for the protocol layer: Bob derives a public code
// from his block, Alice corrects her block against it. keyImage is the
// reconciliation-domain image of the block (e.g. the Bloom-domain key
// for the autoencoder) used to key the integrity MAC; callers must
// wipe it after use. Schemes whose reconciliation works directly on raw
// bits return the block itself.
type Reconciler interface {
	Name() string
	// BlockBits is the reconciliation unit in bits.
	BlockBits() int
	Reconcile(alice, bob, salt []byte) (reconcile.Outcome, error)
	BobEncode(block, salt []byte) (code []float64, keyImage []byte, err error)
	AliceCorrect(block []byte, code []float64, salt []byte) (final, keyImage []byte, err error)
	Clone() Reconciler
}

// TrainableReconciler is implemented by reconcilers with fittable
// parameters (the autoencoder). Fit trains in place with the knobs the
// stage was constructed with.
type TrainableReconciler interface {
	Reconciler
	Fit(src *rng.Source)
}

// Amplifier compresses reconciled material into a uniform session key.
type Amplifier interface {
	Name() string
	Amplify(bits, salt []byte) ([]byte, error)
}

// Persistent is implemented by stages with trained state worth
// serializing. Save/Load must round-trip to an equivalent stage.
type Persistent interface {
	Save(w io.Writer) error
	Load(r io.Reader) error
}

// Stages is one scheme's slot assignment. The zero value is not usable;
// construct through a scheme builder (core.NewScheme).
type Stages struct {
	// Scheme is the registry name ("vehicle-key", "lora-key", ...).
	Scheme string

	Predictor  Predictor
	Quantizer  Quantizer
	Reconciler Reconciler
	Amplifier  Amplifier

	// IndexExchange marks schemes that publicly announce kept sample
	// indices and intersect them (guard-banded quantizers). Schemes
	// without it keep every sample, so the announcement is a no-op —
	// the unified protocol path still exchanges the (full) index lists,
	// which reveal nothing about values either way.
	IndexExchange bool
}

// Round is Alice's precomputed per-window state: the expensive forward
// pass and guard-band rule run once, after which Select answers Bob's
// announcement (possibly several times, under retransmission) with a
// cheap set intersection.
type Round interface {
	// Select intersects Bob's announced kept indices with Alice's own
	// survivors and returns her bits plus the final index list.
	// Out-of-range announcements (possible with a corrupted envelope)
	// are rejected with ok=false rather than panicking.
	Select(bobKept []int) (bits []byte, kept []int, ok bool)
}

// Scheme is the runtime contract the protocol layer drives: the four
// stages composed behind scheme-agnostic operations. core.System is the
// canonical implementation for every registered scheme.
type Scheme interface {
	SchemeName() string
	// BlockBits is the reconciliation block length in key bits.
	BlockBits() int
	// SampleBits is the quantizer depth (bits per kept sample).
	SampleBits() int
	BobQuantize(bobSeq []float64) (bits []byte, kept []int, err error)
	AlicePrecompute(aliceSeq []float64) (Round, error)
	BobEncode(block, salt []byte) (code []float64, keyImage []byte, err error)
	AliceCorrect(block []byte, code []float64, salt []byte) (final, keyImage []byte, err error)
	Amplify(bits, salt []byte) ([]byte, error)
}

// indexRound is the standard Round implementation: Alice's full bit
// head plus her own kept-index set.
type indexRound struct {
	mine map[int]bool
	all  []byte
	b    int
}

// NewRound builds the standard Round from Alice's full bit head, her
// own guard-band survivors, and the quantizer depth.
func NewRound(all []byte, mine []int, bitsPerSample int) Round {
	m := make(map[int]bool, len(mine))
	for _, idx := range mine {
		m[idx] = true
	}
	return &indexRound{mine: m, all: all, b: bitsPerSample}
}

func (r *indexRound) Select(bobKept []int) (bits []byte, kept []int, ok bool) {
	n := len(r.all) / r.b
	for _, idx := range bobKept {
		if idx < 0 || idx >= n {
			return nil, nil, false
		}
	}
	for _, idx := range bobKept {
		if !r.mine[idx] {
			continue
		}
		kept = append(kept, idx)
		bits = append(bits, r.all[idx*r.b:(idx+1)*r.b]...)
	}
	return bits, kept, true
}

// SelectAt picks the bit groups of a quantizer result at the given
// final indices (Bob's step after Alice's announcement).
func SelectAt(bits []byte, kept []int, final []int, bitsPerSample int) []byte {
	pos := make(map[int]int, len(kept))
	for i, idx := range kept {
		pos[idx] = i
	}
	out := make([]byte, 0, len(final)*bitsPerSample)
	for _, idx := range final {
		if i, ok := pos[idx]; ok {
			out = append(out, bits[i*bitsPerSample:(i+1)*bitsPerSample]...)
		}
	}
	return out
}

// StageError identifies which stage of which scheme failed, so protocol
// and experiment errors name the slot rather than a concrete type.
type StageError struct {
	Scheme string // registry name, when known
	Stage  string // "predictor", "quantizer", "reconciler", "amplifier"
	Err    error
}

func (e *StageError) Error() string {
	if e.Scheme == "" {
		return fmt.Sprintf("pipeline: %s stage: %v", e.Stage, e.Err)
	}
	return fmt.Sprintf("pipeline: %s/%s stage: %v", e.Scheme, e.Stage, e.Err)
}

func (e *StageError) Unwrap() error { return e.Err }
