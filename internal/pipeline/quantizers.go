package pipeline

import (
	"repro/internal/quantize"
)

// multiBitQuantizer wraps the Jana et al. multi-bit quantizer with
// separate measurement-side and prediction-side configurations (they
// differ only in guard ratio for Vehicle-Key; baselines use one rule
// for both sides).
type multiBitQuantizer struct {
	meas quantize.MultiBitConfig
	pred quantize.MultiBitConfig
}

// NewMultiBit builds a quantizer stage from a measurement-side and a
// prediction-side multi-bit configuration. Both must share the same
// BitsPerSample.
func NewMultiBit(meas, pred quantize.MultiBitConfig) Quantizer {
	return &multiBitQuantizer{meas: meas, pred: pred}
}

func (q *multiBitQuantizer) Name() string       { return "multi-bit" }
func (q *multiBitQuantizer) BitsPerSample() int { return q.meas.BitsPerSample }

func (q *multiBitQuantizer) Quantize(seq []float64) ([]byte, []int, error) {
	res, err := quantize.MultiBit(seq, q.meas)
	if err != nil {
		return nil, nil, err
	}
	return res.Bits, res.Kept, nil
}

func (q *multiBitQuantizer) QuantizePredicted(seq []float64) ([]byte, []int, error) {
	res, err := quantize.MultiBit(seq, q.pred)
	if err != nil {
		return nil, nil, err
	}
	return res.Bits, res.Kept, nil
}

// intervalQuantizer wraps Gao's chunked interval quantizer. It has no
// guard band: every repetition index is kept, and both sides apply the
// same rule.
type intervalQuantizer struct {
	interval int
	rounds   int
}

// NewInterval builds Gao's interval quantizer stage.
func NewInterval(interval, rounds int) Quantizer {
	return &intervalQuantizer{interval: interval, rounds: rounds}
}

func (q *intervalQuantizer) Name() string       { return "interval" }
func (q *intervalQuantizer) BitsPerSample() int { return 1 }

func (q *intervalQuantizer) Quantize(seq []float64) ([]byte, []int, error) {
	bits := quantize.Interval(seq, q.interval, q.rounds)
	kept := make([]int, len(bits))
	for i := range kept {
		kept[i] = i
	}
	return bits, kept, nil
}

func (q *intervalQuantizer) QuantizePredicted(seq []float64) ([]byte, []int, error) {
	return q.Quantize(seq)
}
