package pipeline

import (
	"math"

	"repro/internal/mathx"
)

// StreamResult aggregates one scheme's stream evaluation, mirroring
// core.Metrics for the paper's Fig. 12/13 comparison.
type StreamResult struct {
	Blocks     int
	PreKAR     float64
	PreKARStd  float64
	PostKAR    float64
	PostKARStd float64
	KGR        float64 // agreed bits per probing second (gross)
	NetKGR     float64 // agreed bits minus publicly leaked bits, per second
}

// EvaluateStream runs one scheme's quantizer and reconciler over a pair
// of full measurement streams: both sides quantize with the
// measurement-side rule, the order-aligned bit streams are cut into
// reconciliation blocks, and each block is reconciled locally. This is
// the figure-regeneration path; it deliberately performs no kept-index
// alignment, preserving each baseline paper's own (mis)alignment
// behavior on a time-varying channel. totalTime is the probing time
// that produced the streams.
func EvaluateStream(st Stages, alice, bob []float64, totalTime float64) (StreamResult, error) {
	ba, _, err := st.Quantizer.Quantize(alice)
	if err != nil {
		return StreamResult{}, &StageError{Scheme: st.Scheme, Stage: "quantizer", Err: err}
	}
	bb, _, err := st.Quantizer.Quantize(bob)
	if err != nil {
		return StreamResult{}, &StageError{Scheme: st.Scheme, Stage: "quantizer", Err: err}
	}
	blockSize := st.Reconciler.BlockBits()
	n := len(ba)
	if len(bb) < n {
		n = len(bb)
	}
	var res StreamResult
	var pre, post []float64
	var agreedBits, netBits float64
	for lo := 0; lo+blockSize <= n; lo += blockSize {
		a := ba[lo : lo+blockSize]
		b := bb[lo : lo+blockSize]
		p, err := mathx.BitAgreement(a, b)
		if err != nil {
			return StreamResult{}, err
		}
		out, err := st.Reconciler.Reconcile(a, b, nil)
		if err != nil {
			return StreamResult{}, &StageError{Scheme: st.Scheme, Stage: "reconciler", Err: err}
		}
		pre = append(pre, p)
		post = append(post, out.Agreement())
		agreedBits += out.Agreement() * float64(blockSize)
		if nb := out.Agreement()*float64(blockSize) - float64(out.LeakedKeyBits); nb > 0 {
			netBits += nb
		}
		res.Blocks++
	}
	if res.Blocks == 0 {
		return res, nil
	}
	res.PreKAR, res.PreKARStd = meanStd(pre)
	res.PostKAR, res.PostKARStd = meanStd(post)
	if totalTime > 0 {
		res.KGR = agreedBits / totalTime
		res.NetKGR = netBits / totalTime
	}
	return res, nil
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var v float64
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(v / float64(len(xs)))
}
