package pipeline

import "repro/internal/amplify"

// shaAmplifier is SHA-256-based privacy amplification into 128-bit
// session keys, the final stage every scheme shares.
type shaAmplifier struct{}

// NewSHAAmplifier returns the standard privacy-amplification stage.
func NewSHAAmplifier() Amplifier { return shaAmplifier{} }

func (shaAmplifier) Name() string { return "sha-128" }

func (shaAmplifier) Amplify(bits, salt []byte) ([]byte, error) {
	return amplify.Amplify(bits, salt)
}
