package pipeline

import (
	"fmt"
	"io"

	"repro/internal/reconcile"
	"repro/internal/rng"
	"repro/internal/secure"
)

// Aliases so stage consumers configure reconcilers without importing
// the reconcile package (the stageiface analyzer forbids that import in
// protocol and exp).
type (
	// Outcome is one reconciliation run's result and cost accounting.
	Outcome = reconcile.Outcome
	// AEConfig sizes the autoencoder reconciler.
	AEConfig = reconcile.AEConfig
	// CSConfig parameterizes the compressed-sensing reconciler.
	CSConfig = reconcile.CSConfig
	// CascadeConfig parameterizes the Cascade reconciler.
	CascadeConfig = reconcile.CascadeConfig
)

// DefaultCSConfig re-exports the paper's CS comparison setup.
func DefaultCSConfig() CSConfig { return reconcile.DefaultCSConfig() }

// DefaultCascadeConfig re-exports the paper's Han et al. setup.
func DefaultCascadeConfig() CascadeConfig { return reconcile.DefaultCascadeConfig() }

// ---------------------------------------------------------------------
// Autoencoder stage (Vehicle-Key).
// ---------------------------------------------------------------------

// AEStage wraps the autoencoder reconciler behind the salted Bloom
// transform: both wire halves bloom the raw block before touching the
// autoencoder, so the MAC-keying image the protocol sees is the
// Bloom-domain key, never the raw bits.
type AEStage struct {
	ae      *reconcile.AE
	cfg     reconcile.AEConfig
	epochs  int
	samples int
}

// NewAEStage adopts an existing (possibly untrained) autoencoder.
// epochs/samples are the training knobs a later Fit call uses.
func NewAEStage(ae *reconcile.AE, cfg AEConfig, epochs, samples int) *AEStage {
	return &AEStage{ae: ae, cfg: cfg, epochs: epochs, samples: samples}
}

// TrainAE builds a trained autoencoder stage (the Fig. 11 sweep path).
func TrainAE(cfg AEConfig, epochs, samples int, src *rng.Source) *AEStage {
	return &AEStage{ae: reconcile.TrainAE(cfg, epochs, samples, src), cfg: cfg, epochs: epochs, samples: samples}
}

func (s *AEStage) Name() string   { return "autoencoder" }
func (s *AEStage) BlockBits() int { return s.ae.Cfg.KeyBits }

func (s *AEStage) Reconcile(alice, bob, salt []byte) (Outcome, error) {
	return s.ae.Reconcile(alice, bob, salt)
}

// bloomFor serves the session's Bloom transform, from the shared
// package cache on the fast path (the filter is pure in (n, salt) and
// read-only, so repeated protocol rounds skip the SHA-256 derivation).
func (s *AEStage) bloomFor(n int, salt []byte) *reconcile.BloomFilter {
	if s.ae.Cfg.Reference {
		return reconcile.NewBloomFilter(n, salt)
	}
	return reconcile.BloomFor(n, salt)
}

func (s *AEStage) BobEncode(block, salt []byte) ([]float64, []byte, error) {
	if len(block) != s.ae.Cfg.KeyBits {
		return nil, nil, &StageError{Stage: "reconciler",
			Err: fmt.Errorf("block length %d, want %d", len(block), s.ae.Cfg.KeyBits)}
	}
	bf := s.bloomFor(len(block), salt)
	bloomKey := bf.Transform(block)
	code := s.ae.EncodeBob(bloomKey)
	return code, bloomKey, nil
}

func (s *AEStage) AliceCorrect(block []byte, code []float64, salt []byte) ([]byte, []byte, error) {
	if len(block) != s.ae.Cfg.KeyBits {
		return nil, nil, &StageError{Stage: "reconciler",
			Err: fmt.Errorf("block length %d, want %d", len(block), s.ae.Cfg.KeyBits)}
	}
	if len(code) != s.ae.Cfg.CodeDim {
		// A hostile or corrupted envelope must fail the round, not
		// index out of range inside the decoder.
		return nil, nil, &StageError{Stage: "reconciler",
			Err: fmt.Errorf("code length %d, want %d", len(code), s.ae.Cfg.CodeDim)}
	}
	bf := s.bloomFor(len(block), salt)
	bloomKey := bf.Transform(block)
	corrected := s.ae.Correct(bloomKey, code)
	secure.Wipe(bloomKey)
	final := bf.Inverse(corrected)
	return final, corrected, nil
}

// EncodeRaw encodes a block without the Bloom transform. It exists for
// the Fig. 9 bloom ablation, which measures exactly the linkage the
// transform is there to destroy.
func (s *AEStage) EncodeRaw(block []byte) []float64 { return s.ae.EncodeBob(block) }

// Fit trains the autoencoder in place with the construction-time knobs.
func (s *AEStage) Fit(src *rng.Source) {
	s.ae = reconcile.TrainAE(s.cfg, s.epochs, s.samples, src)
}

func (s *AEStage) Clone() Reconciler {
	return &AEStage{ae: s.ae.Clone(), cfg: s.cfg, epochs: s.epochs, samples: s.samples}
}

// Save / Load serialize the trained decoder (Persistent).
func (s *AEStage) Save(w io.Writer) error { return s.ae.Save(w) }
func (s *AEStage) Load(r io.Reader) error { return s.ae.Load(r) }

// ---------------------------------------------------------------------
// Compressed-sensing stage (LoRa-Key, Gao).
// ---------------------------------------------------------------------

// CSStage reconciles with the compressed-sensing syndrome over the
// shared sensing matrix; the local path runs the ISTA decode of CSISTA.
// The stage is stateless: the matrix derives from cfg.MatrixSeed.
type CSStage struct {
	cfg   reconcile.CSConfig
	block int
}

// NewCS builds a compressed-sensing reconciler stage over blockBits-bit
// blocks.
func NewCS(cfg CSConfig, blockBits int) *CSStage {
	return &CSStage{cfg: cfg, block: blockBits}
}

func (s *CSStage) Name() string   { return "cs-ista" }
func (s *CSStage) BlockBits() int { return s.block }

func (s *CSStage) Reconcile(alice, bob, _ []byte) (Outcome, error) {
	return reconcile.CSISTA(alice, bob, s.cfg)
}

// BobEncode publishes the CS syndrome. The MAC-keying image is the
// salted one-way BlockImage of the block, never the raw bits: the
// syndrome already hands an eavesdropper cfg.Rows linear equations over
// the block, and a raw-bit MAC key on top would give a cheap offline
// verification oracle for the remaining search space.
func (s *CSStage) BobEncode(block, salt []byte) ([]float64, []byte, error) {
	code := reconcile.CSEncode(block, s.cfg)
	return code, secure.BlockImage(block, salt), nil
}

func (s *CSStage) AliceCorrect(block []byte, code []float64, salt []byte) ([]byte, []byte, error) {
	final, err := reconcile.CSISTACorrect(block, code, s.cfg)
	if err != nil {
		return nil, nil, &StageError{Stage: "reconciler", Err: err}
	}
	return final, secure.BlockImage(final, salt), nil
}

// Clone returns the receiver: a CS stage is stateless.
func (s *CSStage) Clone() Reconciler { return s }

// ---------------------------------------------------------------------
// Cascade stage (Han).
// ---------------------------------------------------------------------

// CascadeStage reconciles with Brassard–Salvail Cascade. The local
// path simulates the interactive protocol with permutations drawn from
// the stage's rng source (one Derive per block, matching the paper's
// evaluation); the wire path publishes the one-shot per-pass block
// parities with permutations derived from the public salt, refusing
// any configuration whose published parity count would reach the block
// size (each parity is one linear equation over the key bits).
type CascadeStage struct {
	cfg    reconcile.CascadeConfig
	block  int
	src    *rng.Source
	cloned bool
}

// NewCascade builds a Cascade reconciler stage over blockBits-bit
// blocks. src feeds the interactive (local-evaluation) permutations and
// may be nil for protocol-only use.
func NewCascade(cfg CascadeConfig, blockBits int, src *rng.Source) *CascadeStage {
	return &CascadeStage{cfg: cfg, block: blockBits, src: src}
}

func (s *CascadeStage) Name() string   { return "cascade" }
func (s *CascadeStage) BlockBits() int { return s.block }

func (s *CascadeStage) Reconcile(alice, bob, _ []byte) (Outcome, error) {
	if s.src == nil {
		if s.cloned {
			return Outcome{}, &StageError{Stage: "reconciler",
				Err: fmt.Errorf("cascade clones carry no interactive rng source (it is mutable state of the original); local reconciliation is unavailable on clones, the wire path derives from the session salt")}
		}
		return Outcome{}, &StageError{Stage: "reconciler",
			Err: fmt.Errorf("cascade stage built without an rng source; local reconciliation unavailable")}
	}
	return reconcile.Cascade(alice, bob, s.cfg, s.src.Derive("cascade"))
}

// leakGuard rejects Cascade configurations whose one-shot syndrome
// would publish at least as many parity equations as the block has
// bits, i.e. hand a passive eavesdropper the whole key.
func (s *CascadeStage) leakGuard(n int) error {
	if leak := reconcile.CascadeSyndromeBits(n, s.cfg); leak >= n {
		return &StageError{Stage: "reconciler",
			Err: fmt.Errorf("cascade wire syndrome would publish %d parities over a %d-bit block; refusing to leak the key", leak, n)}
	}
	return nil
}

func (s *CascadeStage) BobEncode(block, salt []byte) ([]float64, []byte, error) {
	if err := s.leakGuard(len(block)); err != nil {
		return nil, nil, err
	}
	code := reconcile.CascadeSyndromeEncode(block, salt, s.cfg)
	return code, secure.BlockImage(block, salt), nil
}

func (s *CascadeStage) AliceCorrect(block []byte, code []float64, salt []byte) ([]byte, []byte, error) {
	if err := s.leakGuard(len(block)); err != nil {
		return nil, nil, err
	}
	final, err := reconcile.CascadeSyndromeCorrect(block, code, salt, s.cfg)
	if err != nil {
		return nil, nil, &StageError{Stage: "reconciler", Err: err}
	}
	return final, secure.BlockImage(final, salt), nil
}

// Clone drops the interactive rng source rather than share it: the
// source is mutable state, and deriving a child would itself consume a
// draw from the original, so either choice silently couples clone and
// original. Clones keep the full wire path (its randomness derives from
// the public salt); the local Reconcile path reports a tailored error.
func (s *CascadeStage) Clone() Reconciler {
	return &CascadeStage{cfg: s.cfg, block: s.block, cloned: true}
}
