package mathx

import (
	"errors"
	"math"
	"math/cmplx"
)

// FFT computes the in-order discrete Fourier transform of x using an
// iterative radix-2 Cooley–Tukey algorithm. The input length must be a
// power of two. The input slice is not modified.
func FFT(x []complex128) ([]complex128, error) {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return nil, errors.New("mathx: FFT length must be a nonzero power of two")
	}
	out := make([]complex128, n)
	copy(out, x)
	fftInPlace(out, false)
	return out, nil
}

// IFFT computes the inverse DFT (including the 1/n scaling).
func IFFT(x []complex128) ([]complex128, error) {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return nil, errors.New("mathx: IFFT length must be a nonzero power of two")
	}
	out := make([]complex128, n)
	copy(out, x)
	fftInPlace(out, true)
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out, nil
}

// FFTReal transforms a real series, zero-padding to the next power of two,
// and returns the complex spectrum. Convenient for the NIST DFT test.
func FFTReal(x []float64) ([]complex128, error) {
	n := NextPow2(len(x))
	buf := make([]complex128, n)
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	fftInPlace(buf, false)
	return buf, nil
}

// NextPow2 returns the smallest power of two >= n (and 1 for n <= 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func fftInPlace(a []complex128, inverse bool) {
	n := len(a)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length / 2
			for j := 0; j < half; j++ {
				u := a[i+j]
				v := a[i+j+half] * w
				a[i+j] = u + v
				a[i+j+half] = u - v
				w *= wl
			}
		}
	}
}
