// Order-preserving dense kernels for the fast inference path (PR 8).
//
// Everything in this file is stdlib-only float64 arithmetic with one
// non-negotiable contract: for every output element the sequence of
// floating-point operations — the seed value, the order of the
// multiply-adds — is EXACTLY the sequence the per-step reference loops
// in internal/nn and internal/reconcile perform. Go's float64 is strict
// IEEE 754 (no reassociation, no extended-precision accumulation on
// amd64/arm64), so preserving the op order makes the batched results
// byte-identical to the reference, not merely close. The equivalence
// battery in gemm_test.go and internal/nn/infer_test.go asserts this
// with math.Float64bits.
//
// Blocking therefore tiles only the OUTPUT dimensions (rows of A,
// rows of B): elements are computed whole, never split into partial
// sums, so tiling changes cache behaviour but not a single rounding.
package mathx

// gemmBlock is the output-tile edge. 64×64 float64 tiles of A-rows and
// B-rows fit comfortably in L1/L2 for the dimensions the pipeline uses
// (K ≤ a few hundred).
const gemmBlock = 64

// MatMulTBias computes out = A·Bᵀ with a bias seed:
//
//	out[i*n+j] = bias[j] + Σ_{c=0..k-1} a[i*k+c] * b[j*k+c]
//
// with c strictly ascending and the accumulator seeded at bias[j] —
// the exact op order of the reference loops `sum := bias[j]; for c
// { sum += w[c]*x[c] }`. A is m×k row-major, B is n×k row-major (so
// B's rows are the weight rows of a Dense/LSTM gate), out is m×n
// row-major. out must not alias a, b, or bias.
func MatMulTBias(a []float64, m, k int, b []float64, n int, bias, out []float64) {
	checkGEMM(a, m, k, b, n, out)
	if len(bias) < n {
		panic("mathx: MatMulTBias bias shorter than n")
	}
	for i0 := 0; i0 < m; i0 += gemmBlock {
		iMax := min(i0+gemmBlock, m)
		for j0 := 0; j0 < n; j0 += gemmBlock {
			jMax := min(j0+gemmBlock, n)
			for i := i0; i < iMax; i++ {
				ar := a[i*k : i*k+k]
				or := out[i*n : i*n+n]
				for j := j0; j < jMax; j++ {
					br := b[j*k : j*k+k]
					sum := bias[j]
					for c, av := range ar {
						sum += br[c] * av
					}
					or[j] = sum
				}
			}
		}
	}
}

// MatMulT is MatMulTBias with a zero seed: out[i*n+j] = Σ_c a[i*k+c]*b[j*k+c].
func MatMulT(a []float64, m, k int, b []float64, n int, out []float64) {
	checkGEMM(a, m, k, b, n, out)
	for i0 := 0; i0 < m; i0 += gemmBlock {
		iMax := min(i0+gemmBlock, m)
		for j0 := 0; j0 < n; j0 += gemmBlock {
			jMax := min(j0+gemmBlock, n)
			for i := i0; i < iMax; i++ {
				ar := a[i*k : i*k+k]
				or := out[i*n : i*n+n]
				for j := j0; j < jMax; j++ {
					br := b[j*k : j*k+k]
					sum := 0.0
					for c, av := range ar {
						sum += br[c] * av
					}
					or[j] = sum
				}
			}
		}
	}
}

// MatVec computes out[r] = Σ_{c ascending} w[r*cols+c] * x[c] for the
// rows×cols row-major matrix w. out must not alias w or x.
func MatVec(w []float64, rows, cols int, x, out []float64) {
	checkMatVec(w, rows, cols, x, cols, out, rows)
	for r := 0; r < rows; r++ {
		row := w[r*cols : r*cols+cols]
		sum := 0.0
		for c, wv := range row {
			sum += wv * x[c]
		}
		out[r] = sum
	}
}

// AddMatVec accumulates out[r] += Σ_{c ascending} w[r*cols+c] * x[c],
// continuing whatever sum out[r] already holds — the recurrent half of
// an LSTM gate, whose reference loop appends the U·h terms after the
// bias-seeded W·x terms in the same accumulator. out must not alias w
// or x.
func AddMatVec(w []float64, rows, cols int, x, out []float64) {
	checkMatVec(w, rows, cols, x, cols, out, rows)
	for r := 0; r < rows; r++ {
		row := w[r*cols : r*cols+cols]
		sum := out[r]
		for c, wv := range row {
			sum += wv * x[c]
		}
		out[r] = sum
	}
}

// MatVecT computes the transposed product out[c] = Σ_{r ascending}
// w[r*cols+c] * x[r], streaming w row-major (one pass, cache-friendly)
// instead of striding down columns. Per output element the terms are
// still added in ascending r — identical to the column-dot reference.
// out is zeroed first and must not alias w or x.
func MatVecT(w []float64, rows, cols int, x, out []float64) {
	checkMatVec(w, rows, cols, x, rows, out, cols)
	for c := range out[:cols] {
		out[c] = 0
	}
	for r := 0; r < rows; r++ {
		row := w[r*cols : r*cols+cols]
		xr := x[r]
		for c, wv := range row {
			out[c] += wv * xr
		}
	}
}

func checkGEMM(a []float64, m, k int, b []float64, n int, out []float64) {
	if m < 0 || k < 0 || n < 0 {
		panic("mathx: negative GEMM dimension")
	}
	if len(a) < m*k {
		panic("mathx: GEMM A shorter than m*k")
	}
	if len(b) < n*k {
		panic("mathx: GEMM B shorter than n*k")
	}
	if len(out) < m*n {
		panic("mathx: GEMM out shorter than m*n")
	}
}

func checkMatVec(w []float64, rows, cols int, x []float64, xLen int, out []float64, outLen int) {
	if rows < 0 || cols < 0 {
		panic("mathx: negative MatVec dimension")
	}
	if len(w) < rows*cols {
		panic("mathx: MatVec matrix shorter than rows*cols")
	}
	if len(x) < xLen {
		panic("mathx: MatVec input vector too short")
	}
	if len(out) < outLen {
		panic("mathx: MatVec output vector too short")
	}
}
