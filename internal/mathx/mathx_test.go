package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("variance = %v, want 4", v)
	}
	if s := Std(xs); s != 2 {
		t.Errorf("std = %v, want 2", s)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
	if _, err := MeanChecked(nil); err == nil {
		t.Error("MeanChecked should error on empty input")
	}
}

func TestPearsonPerfect(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	c, err := Pearson(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-1) > 1e-12 {
		t.Errorf("corr = %v, want 1", c)
	}
	for i := range b {
		b[i] = -b[i]
	}
	c, _ = Pearson(a, b)
	if math.Abs(c+1) > 1e-12 {
		t.Errorf("corr = %v, want -1", c)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if c, err := Pearson([]float64{3, 3, 3}, []float64{1, 2, 3}); err != nil || c != 0 {
		t.Errorf("flat series: corr=%v err=%v, want 0,nil", c, err)
	}
}

func TestPearsonBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := newRand(seed)
		n := 20
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = r()
			b[i] = r()
		}
		c, err := Pearson(a, b)
		return err == nil && c >= -1-1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// newRand is a tiny deterministic generator for property tests.
func newRand(seed int64) func() float64 {
	s := uint64(seed)*2862933555777941757 + 3037000493
	return func() float64 {
		s = s*2862933555777941757 + 3037000493
		return float64(s>>11) / (1 << 53)
	}
}

func TestQuantiles(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	q := Quantiles(xs, 4)
	if len(q) != 3 {
		t.Fatalf("want 3 boundaries, got %d", len(q))
	}
	for i, want := range []float64{249.75, 499.5, 749.25} {
		if math.Abs(q[i]-want) > 1e-9 {
			t.Errorf("q[%d] = %v, want %v", i, q[i], want)
		}
	}
}

func TestSortedQuantilesMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := newRand(seed)
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = r()
		}
		q := Quantiles(xs, 8)
		for i := 1; i < len(q); i++ {
			if q[i] < q[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeRoundTrip(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	orig := append([]float64(nil), xs...)
	mean, std := Normalize(xs)
	if math.Abs(Mean(xs)) > 1e-12 || math.Abs(Std(xs)-1) > 1e-12 {
		t.Error("normalized series should be zero-mean unit-std")
	}
	Denormalize(xs, mean, std)
	for i := range xs {
		if math.Abs(xs[i]-orig[i]) > 1e-9 {
			t.Errorf("round trip failed at %d: %v vs %v", i, xs[i], orig[i])
		}
	}
}

func TestHammingAndAgreement(t *testing.T) {
	a := []byte{1, 0, 1, 1}
	b := []byte{1, 1, 1, 0}
	d, err := HammingDistance(a, b)
	if err != nil || d != 2 {
		t.Errorf("distance=%d err=%v, want 2,nil", d, err)
	}
	ag, err := BitAgreement(a, b)
	if err != nil || ag != 0.5 {
		t.Errorf("agreement=%v err=%v, want 0.5,nil", ag, err)
	}
}

func TestIgamcKnownValues(t *testing.T) {
	// Q(1, x) = e^{-x}; Q(0.5, x) = erfc(sqrt(x)).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5} {
		if got, want := Igamc(1, x), math.Exp(-x); math.Abs(got-want) > 1e-10 {
			t.Errorf("Igamc(1,%v) = %v, want %v", x, got, want)
		}
		if got, want := Igamc(0.5, x), math.Erfc(math.Sqrt(x)); math.Abs(got-want) > 1e-10 {
			t.Errorf("Igamc(0.5,%v) = %v, want %v", x, got, want)
		}
	}
}

func TestIgamComplement(t *testing.T) {
	f := func(a8, x8 uint8) bool {
		a := 0.1 + float64(a8)/16
		x := float64(x8) / 16
		s := Igam(a, x) + Igamc(a, x)
		return math.Abs(s-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFFTRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := newRand(seed)
		n := 64
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r(), r())
		}
		spec, err := FFT(x)
		if err != nil {
			return false
		}
		back, err := IFFT(spec)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(real(back[i])-real(x[i])) > 1e-9 || math.Abs(imag(back[i])-imag(x[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTKnownSpectrum(t *testing.T) {
	// A pure cosine concentrates at ±k.
	n := 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*4*float64(i)/float64(n)), 0)
	}
	spec, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range spec {
		mag := math.Hypot(real(spec[i]), imag(spec[i]))
		if i == 4 || i == n-4 {
			if mag < float64(n)/2-1e-6 {
				t.Errorf("bin %d magnitude %v too small", i, mag)
			}
		} else if mag > 1e-6 {
			t.Errorf("bin %d magnitude %v should be ~0", i, mag)
		}
	}
}

func TestFFTRejectsNonPow2(t *testing.T) {
	if _, err := FFT(make([]complex128, 12)); err == nil {
		t.Error("non-power-of-two length should error")
	}
}

func TestGrayRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		return GrayDecode(GrayEncode(uint64(n))) == uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGrayAdjacency(t *testing.T) {
	// Consecutive integers differ in exactly one Gray bit.
	for n := uint64(0); n < 1000; n++ {
		x := GrayEncode(n) ^ GrayEncode(n+1)
		if x == 0 || x&(x-1) != 0 {
			t.Fatalf("Gray codes of %d and %d differ in more than one bit", n, n+1)
		}
	}
}

func TestGrayBits(t *testing.T) {
	// level 3 (0b11) → Gray 0b10.
	bits := GrayBits(3, 2)
	if bits[0] != 1 || bits[1] != 0 {
		t.Errorf("GrayBits(3,2) = %v, want [1 0]", bits)
	}
}
