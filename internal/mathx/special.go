package mathx

import "math"

// Igamc computes the complemented incomplete gamma function Q(a, x) =
// Γ(a, x)/Γ(a), following the continued-fraction / power-series split used
// by Cephes (and by the NIST SP 800-22 reference implementation, which the
// randomness tests in internal/nist mirror).
//
// Valid for a > 0, x >= 0. Out-of-domain inputs return NaN.
func Igamc(a, x float64) float64 {
	switch {
	case a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x == 0:
		return 1
	case x < a+1:
		return 1 - igamSeries(a, x)
	}
	return igamcCF(a, x)
}

// Igam computes the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a) = 1 − Igamc(a, x).
func Igam(a, x float64) float64 {
	switch {
	case a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x == 0:
		return 0
	case x < a+1:
		return igamSeries(a, x)
	}
	return 1 - igamcCF(a, x)
}

const (
	igamEps  = 1e-15
	igamBig  = 1e300
	igamTiny = 1e-300
)

// igamSeries evaluates P(a,x) by its power series, accurate for x < a+1.
func igamSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ax := a*math.Log(x) - x - lg
	if ax < -700 {
		return 0
	}
	c := 1.0 / a
	sum := c
	an := a
	for i := 0; i < 1000; i++ {
		an++
		c *= x / an
		sum += c
		if c < sum*igamEps {
			break
		}
	}
	return sum * math.Exp(ax)
}

// igamcCF evaluates Q(a,x) by the modified Lentz continued fraction,
// accurate for x >= a+1.
func igamcCF(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ax := a*math.Log(x) - x - lg
	if ax < -700 {
		return 0
	}
	b := x + 1 - a
	c := igamBig
	d := 1 / b
	h := d
	for i := 1; i < 1000; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < igamTiny {
			d = igamTiny
		}
		c = b + an/c
		if math.Abs(c) < igamTiny {
			c = igamTiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < igamEps {
			break
		}
	}
	return h * math.Exp(ax)
}

// ErfcScaled is a thin alias for math.Erfc retained so NIST test code reads
// like the SP 800-22 reference (which names the function erfc).
func ErfcScaled(x float64) float64 { return math.Erfc(x) }

// NormalCDF returns the standard normal cumulative distribution Φ(x).
func NormalCDF(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }
