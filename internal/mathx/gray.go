package mathx

// GrayEncode converts a binary index to its reflected Gray code. Multi-bit
// quantizers emit Gray-coded symbols so that a one-level quantization error
// flips exactly one key bit (Jana et al., MobiCom'09).
func GrayEncode(n uint64) uint64 { return n ^ (n >> 1) }

// GrayDecode inverts GrayEncode.
func GrayDecode(g uint64) uint64 {
	n := g
	for shift := uint(1); shift < 64; shift <<= 1 {
		n ^= n >> shift
	}
	return n
}

// GrayBits returns the width least-significant bits of the Gray code of n,
// most-significant bit first, as 0/1 bytes.
func GrayBits(n uint64, width int) []byte {
	g := GrayEncode(n)
	out := make([]byte, width)
	for i := 0; i < width; i++ {
		out[i] = byte(g >> uint(width-1-i) & 1)
	}
	return out
}
