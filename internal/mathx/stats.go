// Package mathx provides the small numeric toolbox shared by the
// Vehicle-Key simulator: descriptive statistics, special functions used by
// the NIST randomness tests, a radix-2 FFT, and Gray-code helpers.
//
// Everything here is deterministic and allocation-conscious; hot paths
// (fading synthesis, NN training) call into this package tightly.
package mathx

import (
	"errors"
	"math"
)

// ErrEmptyInput reports that a statistic was requested over no samples.
var ErrEmptyInput = errors.New("mathx: empty input")

// Mean returns the arithmetic mean of xs. It returns 0 for empty input so
// that streaming callers can treat "no data" as a neutral level; use
// MeanChecked when emptiness is a programming error.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanChecked is Mean with an explicit error for empty input.
func MeanChecked(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptyInput
	}
	return Mean(xs), nil
}

// Variance returns the population variance of xs (divides by n, not n-1),
// matching the convention used by the paper's channel statistics.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Pearson returns the Pearson correlation coefficient between a and b.
// The two series must have equal, nonzero length. A series with zero
// variance yields correlation 0 (the paper's plots treat a flat RSSI trace
// as uninformative rather than undefined).
func Pearson(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("mathx: length mismatch")
	}
	if len(a) == 0 {
		return 0, ErrEmptyInput
	}
	ma, mb := Mean(a), Mean(b)
	var sab, saa, sbb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0, nil
	}
	return sab / math.Sqrt(saa*sbb), nil
}

// MinMax returns the minimum and maximum of xs.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Quantiles returns the q-quantile boundaries of xs for q >= 2: the
// (1/q, 2/q, ..., (q-1)/q) points of the empirical distribution. The input
// is not modified. Linear interpolation between order statistics is used.
func Quantiles(xs []float64, q int) []float64 {
	if q < 2 || len(xs) == 0 {
		return nil
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sortFloats(sorted)
	out := make([]float64, q-1)
	n := float64(len(sorted))
	for i := 1; i < q; i++ {
		pos := float64(i) / float64(q) * (n - 1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if hi >= len(sorted) {
			hi = len(sorted) - 1
		}
		frac := pos - float64(lo)
		out[i-1] = sorted[lo]*(1-frac) + sorted[hi]*frac
	}
	return out
}

// sortFloats is an in-place introsort-free quicksort adequate for the
// trace sizes used here (stdlib sort would also do; this avoids the
// interface overhead on hot quantization paths).
func sortFloats(a []float64) {
	if len(a) < 12 {
		for i := 1; i < len(a); i++ {
			for j := i; j > 0 && a[j] < a[j-1]; j-- {
				a[j], a[j-1] = a[j-1], a[j]
			}
		}
		return
	}
	p := medianOfThree(a[0], a[len(a)/2], a[len(a)-1])
	i, j := 0, len(a)-1
	for i <= j {
		for a[i] < p {
			i++
		}
		for a[j] > p {
			j--
		}
		if i <= j {
			a[i], a[j] = a[j], a[i]
			i++
			j--
		}
	}
	sortFloats(a[:j+1])
	sortFloats(a[i:])
}

func medianOfThree(a, b, c float64) float64 {
	switch {
	case (a <= b && b <= c) || (c <= b && b <= a):
		return b
	case (b <= a && a <= c) || (c <= a && a <= b):
		return a
	}
	return c
}

// Normalize rescales xs in place to zero mean and unit standard deviation
// and returns the original mean and std so callers can invert the
// transform. A zero-variance input is left centred at 0 with std reported
// as 1 to keep downstream math finite.
func Normalize(xs []float64) (mean, std float64) {
	mean = Mean(xs)
	std = Std(xs)
	if std == 0 {
		std = 1
	}
	for i := range xs {
		xs[i] = (xs[i] - mean) / std
	}
	return mean, std
}

// Denormalize inverts Normalize given the recorded mean and std.
func Denormalize(xs []float64, mean, std float64) {
	for i := range xs {
		xs[i] = xs[i]*std + mean
	}
}

// HammingDistance counts positions where the bit slices differ. The slices
// must have equal length.
func HammingDistance(a, b []byte) (int, error) {
	if len(a) != len(b) {
		return 0, errors.New("mathx: length mismatch")
	}
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d, nil
}

// BitAgreement returns the fraction of equal positions in two bit slices
// of equal length; it is the paper's "key agreement rate" for one pair.
func BitAgreement(a, b []byte) (float64, error) {
	d, err := HammingDistance(a, b)
	if err != nil {
		return 0, err
	}
	if len(a) == 0 {
		return 0, ErrEmptyInput
	}
	return 1 - float64(d)/float64(len(a)), nil
}
