package mathx

import (
	"math"
	"testing"
)

// naiveMatMulTBias is the unblocked reference the kernels must match
// bit-for-bit: accumulator seeded at the bias, c ascending.
func naiveMatMulTBias(a []float64, m, k int, b []float64, n int, bias []float64) []float64 {
	out := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			if bias != nil {
				sum = bias[j]
			}
			for c := 0; c < k; c++ {
				sum += b[j*k+c] * a[i*k+c]
			}
			out[i*n+j] = sum
		}
	}
	return out
}

// lcg is a tiny deterministic generator so the kernel tests do not
// depend on internal/rng (keeps mathx dependency-free).
type lcg uint64

func (l *lcg) next() float64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	// Spread across a few orders of magnitude so rounding actually
	// differs between op orders if an implementation reassociates.
	v := float64(int64(*l)>>11) / float64(1<<52)
	return v * 3.7
}

func fill(n int, l *lcg) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = l.next()
	}
	return out
}

func bitsEqual(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: element %d differs: got %x want %x (%.17g vs %.17g)",
				name, i, math.Float64bits(got[i]), math.Float64bits(want[i]), got[i], want[i])
		}
	}
}

// TestMatMulTBiasMatchesNaive crosses the block boundary (gemmBlock=64)
// in both output dimensions so the tiled loops are exercised, and
// checks byte-identity against the unblocked reference.
func TestMatMulTBiasMatchesNaive(t *testing.T) {
	l := lcg(1)
	for _, dims := range [][3]int{
		{1, 1, 1}, {3, 5, 7}, {32, 1, 64}, {65, 3, 64}, {64, 17, 65},
		{130, 9, 130}, {7, 200, 3}, {1, 64, 129},
	} {
		m, k, n := dims[0], dims[1], dims[2]
		a := fill(m*k, &l)
		b := fill(n*k, &l)
		bias := fill(n, &l)
		out := make([]float64, m*n)
		MatMulTBias(a, m, k, b, n, bias, out)
		bitsEqual(t, "MatMulTBias", out, naiveMatMulTBias(a, m, k, b, n, bias))

		MatMulT(a, m, k, b, n, out)
		bitsEqual(t, "MatMulT", out, naiveMatMulTBias(a, m, k, b, n, nil))
	}
}

// TestMatMulTSelfAlias checks the documented-legal aliasing: A and B
// may share backing storage (both are read-only inputs).
func TestMatMulTSelfAlias(t *testing.T) {
	l := lcg(2)
	const m, k = 9, 13
	a := fill(m*k, &l)
	out := make([]float64, m*m)
	MatMulT(a, m, k, a, m, out)
	bitsEqual(t, "MatMulT self-alias", out, naiveMatMulTBias(a, m, k, a, m, nil))
}

func TestMatVecMatchesReference(t *testing.T) {
	l := lcg(3)
	for _, dims := range [][2]int{{1, 1}, {5, 9}, {128, 32}, {64, 257}} {
		rows, cols := dims[0], dims[1]
		w := fill(rows*cols, &l)
		x := fill(cols, &l)
		want := make([]float64, rows)
		for r := 0; r < rows; r++ {
			sum := 0.0
			for c := 0; c < cols; c++ {
				sum += w[r*cols+c] * x[c]
			}
			want[r] = sum
		}
		out := make([]float64, rows)
		MatVec(w, rows, cols, x, out)
		bitsEqual(t, "MatVec", out, want)

		// AddMatVec continues the accumulator seeded with prior values.
		seed := fill(rows, &l)
		wantAdd := make([]float64, rows)
		for r := 0; r < rows; r++ {
			sum := seed[r]
			for c := 0; c < cols; c++ {
				sum += w[r*cols+c] * x[c]
			}
			wantAdd[r] = sum
		}
		got := make([]float64, rows)
		copy(got, seed)
		AddMatVec(w, rows, cols, x, got)
		bitsEqual(t, "AddMatVec", got, wantAdd)
	}
}

// TestMatVecTMatchesColumnDot pins the streamed transposed product to
// the column-dot reference (the AE backprojection loop): per output
// element the terms must be added in ascending r.
func TestMatVecTMatchesColumnDot(t *testing.T) {
	l := lcg(4)
	for _, dims := range [][2]int{{1, 1}, {32, 64}, {200, 7}, {3, 129}} {
		rows, cols := dims[0], dims[1]
		w := fill(rows*cols, &l)
		x := fill(rows, &l)
		want := make([]float64, cols)
		for c := 0; c < cols; c++ {
			sum := 0.0
			for r := 0; r < rows; r++ {
				sum += w[r*cols+c] * x[r]
			}
			want[c] = sum
		}
		out := make([]float64, cols)
		for i := range out {
			out[i] = math.NaN() // MatVecT must overwrite, not accumulate
		}
		MatVecT(w, rows, cols, x, out)
		bitsEqual(t, "MatVecT", out, want)
	}
}

func TestGEMMShapeGuards(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	a := make([]float64, 6)
	expectPanic("short A", func() { MatMulT(a, 4, 2, a, 3, make([]float64, 12)) })
	expectPanic("short B", func() { MatMulT(a, 3, 2, a[:2], 3, make([]float64, 9)) })
	expectPanic("short out", func() { MatMulT(a, 3, 2, a, 3, make([]float64, 8)) })
	expectPanic("short bias", func() {
		MatMulTBias(a, 3, 2, a, 3, make([]float64, 2), make([]float64, 9))
	})
	expectPanic("negative dim", func() { MatMulT(a, -1, 2, a, 3, make([]float64, 9)) })
	expectPanic("matvec short x", func() { MatVec(a, 3, 2, a[:1], make([]float64, 3)) })
	expectPanic("matvecT short out", func() { MatVecT(a, 3, 2, make([]float64, 3), make([]float64, 1)) })
}

// FuzzGEMM drives the blocked kernels with fuzzer-chosen shapes and
// element bytes (including the A==B transpose-style alias) and demands
// byte-identity with the naive reference on every element.
func FuzzGEMM(f *testing.F) {
	f.Add(uint8(3), uint8(5), uint8(7), int64(1), false)
	f.Add(uint8(65), uint8(2), uint8(64), int64(9), false)
	f.Add(uint8(8), uint8(8), uint8(8), int64(42), true)
	f.Add(uint8(1), uint8(0), uint8(1), int64(7), false)
	f.Fuzz(func(t *testing.T, mRaw, kRaw, nRaw uint8, seed int64, alias bool) {
		m := int(mRaw)%96 + 1
		k := int(kRaw) % 96 // k = 0 is legal: out = bias (or zero)
		n := int(nRaw)%96 + 1
		l := lcg(seed)
		a := fill(m*k, &l)
		b := fill(n*k, &l)
		bias := fill(n, &l)
		if alias {
			// A and B share storage: b becomes a view of a's shape-
			// compatible prefix (both read-only, documented legal).
			n = m
			b = a
			bias = bias[:0]
			bias = append(bias, fill(n, &l)...)
		}
		out := make([]float64, m*n)
		MatMulTBias(a, m, k, b, n, bias, out)
		want := naiveMatMulTBias(a, m, k, b, n, bias)
		for i := range out {
			if math.Float64bits(out[i]) != math.Float64bits(want[i]) {
				t.Fatalf("MatMulTBias m=%d k=%d n=%d alias=%v: element %d differs", m, k, n, alias, i)
			}
		}
		MatMulT(a, m, k, b, n, out)
		want = naiveMatMulTBias(a, m, k, b, n, nil)
		for i := range out {
			if math.Float64bits(out[i]) != math.Float64bits(want[i]) {
				t.Fatalf("MatMulT m=%d k=%d n=%d alias=%v: element %d differs", m, k, n, alias, i)
			}
		}
	})
}
