package group

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
)

// The group wire format frames platoon control traffic the same way the
// protocol layer frames its envelopes: a CRC32 header over a gob
// payload, a magic word to distinguish it from the pairwise protocol's
// envelopes (both travel on the same conn), and hard decode caps so a
// hostile or corrupted frame is rejected before anything oversized is
// trusted. Frames that fail to decode are skipped by both ends' receive
// loops — on a shared medium a late protocol retransmit routinely lands
// between group frames, and the ARQ layer's copies/retransmits make
// skipping safe.

// frameMagic distinguishes group frames from protocol envelopes and
// server hellos at decode.
const frameMagic = 0x564b4750 // "VKGP"

// Frame kinds.
const (
	// kindJoin announces a member to the hub before its pairwise
	// establishment run: member ID and probing window count.
	kindJoin = uint8(iota + 1)
	// kindKey carries one sealed group-key envelope, hub → member.
	kindKey
	// kindAck confirms a received group key at an epoch, member → hub.
	kindAck
	// kindLeave announces a voluntary departure, member → hub.
	kindLeave
	// kindBye ends the platoon session, hub → member.
	kindBye
	// kindWelcome acknowledges a join, hub → member: the member keeps
	// retransmitting its join each tick until welcomed, so a lost join
	// frame cannot starve the establishment on a lossy medium.
	kindWelcome
)

// Group wire caps, mirroring the protocol layer's decode hygiene.
const (
	// MaxFrameBytes bounds one encoded group frame.
	MaxFrameBytes = 4096
	// MaxSealedBytes bounds the sealed envelope payload (a 20-byte
	// plaintext plus AES-GCM nonce and tag is ~48 bytes; the cap leaves
	// room for schedule growth without accepting megabyte blobs).
	MaxSealedBytes = 256
	// MaxFrameWindows is the wire cap on a join's announced window count.
	MaxFrameWindows = 1 << 12
)

// errNotGroupFrame flags a delivery that is not a well-formed group
// frame (most likely a pairwise protocol envelope sharing the conn);
// receive loops skip it.
var errNotGroupFrame = errors.New("group: not a group frame")

// frame is the single wire message all platoon control traffic uses;
// unused fields stay zero for a given kind.
//
//vklint:wire -- decoded from unauthenticated peers; treat field reads as hostile
type frame struct {
	Magic   uint32
	Kind    uint8
	Member  uint64
	Epoch   uint32
	Windows int
	Sealed  []byte
}

// encodeFrame frames fr with the CRC32-over-gob layout.
func encodeFrame(fr frame) ([]byte, error) {
	fr.Magic = frameMagic
	var buf bytes.Buffer
	buf.Write(make([]byte, 4))
	if err := gob.NewEncoder(&buf).Encode(fr); err != nil {
		return nil, fmt.Errorf("group: encode frame: %w", err)
	}
	data := buf.Bytes()
	binary.BigEndian.PutUint32(data[:4], crc32.ChecksumIEEE(data[4:]))
	return data, nil
}

// decodeFrame parses and validates one group frame. Anything that is
// not well-formed within the caps reports errNotGroupFrame.
func decodeFrame(data []byte) (frame, error) {
	if len(data) < 4 || len(data) > MaxFrameBytes {
		return frame{}, errNotGroupFrame
	}
	if want := binary.BigEndian.Uint32(data[:4]); want != crc32.ChecksumIEEE(data[4:]) {
		return frame{}, errNotGroupFrame
	}
	var fr frame
	if err := gob.NewDecoder(bytes.NewReader(data[4:])).Decode(&fr); err != nil {
		return frame{}, errNotGroupFrame
	}
	switch {
	case fr.Magic != frameMagic:
		return frame{}, errNotGroupFrame
	case fr.Kind < kindJoin || fr.Kind > kindWelcome:
		return frame{}, errNotGroupFrame
	case len(fr.Sealed) > MaxSealedBytes:
		return frame{}, errNotGroupFrame
	case fr.Windows < 0 || fr.Windows > MaxFrameWindows:
		return frame{}, errNotGroupFrame
	case fr.Kind == kindJoin && fr.Windows < 1:
		return frame{}, errNotGroupFrame
	case fr.Kind == kindKey && len(fr.Sealed) == 0:
		return frame{}, errNotGroupFrame
	}
	return fr, nil
}
