package group

import (
	"bytes"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []frame{
		{Kind: kindJoin, Member: 7, Windows: 16},
		{Kind: kindKey, Member: 7, Epoch: 3, Sealed: bytes.Repeat([]byte{0xAB}, 48)},
		{Kind: kindAck, Member: 7, Epoch: 3},
		{Kind: kindLeave, Member: 7},
		{Kind: kindBye, Member: 7},
		{Kind: kindWelcome, Member: 7},
	}
	for _, want := range cases {
		data, err := encodeFrame(want)
		if err != nil {
			t.Fatalf("kind %d: %v", want.Kind, err)
		}
		got, err := decodeFrame(data)
		if err != nil {
			t.Fatalf("kind %d: %v", want.Kind, err)
		}
		if got.Kind != want.Kind || got.Member != want.Member ||
			got.Epoch != want.Epoch || got.Windows != want.Windows ||
			!bytes.Equal(got.Sealed, want.Sealed) {
			t.Fatalf("kind %d: round trip mismatch: %+v vs %+v", want.Kind, got, want)
		}
	}
}

func TestFrameDecodeRejectsGarbage(t *testing.T) {
	valid, err := encodeFrame(frame{Kind: kindAck, Member: 1, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	reject := func(name string, data []byte) {
		t.Helper()
		if _, err := decodeFrame(data); !errors.Is(err, errNotGroupFrame) {
			t.Fatalf("%s: want errNotGroupFrame, got %v", name, err)
		}
	}
	reject("empty", nil)
	reject("short", valid[:3])
	reject("oversized", make([]byte, MaxFrameBytes+1))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0xFF
	reject("crc flip", flipped)
	reject("random", bytes.Repeat([]byte{0x42}, 64))

	// A pairwise protocol envelope sharing the conn must be skipped, not
	// misparsed: it fails the magic/CRC checks.
	reject("foreign magic", append([]byte{0, 0, 0, 0}, valid[4:]...))
}

func TestFrameDecodeEnforcesCaps(t *testing.T) {
	reject := func(name string, fr frame) {
		t.Helper()
		data, err := encodeFrame(fr)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		if _, err := decodeFrame(data); !errors.Is(err, errNotGroupFrame) {
			t.Fatalf("%s: want errNotGroupFrame, got %v", name, err)
		}
	}
	reject("kind zero", frame{Kind: 0})
	reject("kind out of range", frame{Kind: kindWelcome + 1})
	reject("sealed over cap", frame{Kind: kindKey, Sealed: make([]byte, MaxSealedBytes+1)})
	reject("key without payload", frame{Kind: kindKey, Epoch: 1})
	reject("join without windows", frame{Kind: kindJoin, Member: 1})
	reject("negative windows", frame{Kind: kindJoin, Member: 1, Windows: -1})
	reject("windows over cap", frame{Kind: kindJoin, Member: 1, Windows: MaxFrameWindows + 1})
}
