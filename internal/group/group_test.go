package group

import (
	"bytes"
	"testing"

	"repro/internal/secure"
)

func pairwise(t *testing.T, seed byte) ([]byte, *secure.Channel) {
	t.Helper()
	key := make([]byte, 16)
	for i := range key {
		key[i] = seed + byte(i)
	}
	ch, err := secure.NewChannel(key)
	if err != nil {
		t.Fatal(err)
	}
	return key, ch
}

func TestGroupRekeyDistributesSameKey(t *testing.T) {
	hub := NewHub()
	memberChans := map[string]*secure.Channel{}
	for _, id := range []string{"car-1", "car-2", "car-3"} {
		key, ch := pairwise(t, id[len(id)-1])
		if err := hub.Join(id, key); err != nil {
			t.Fatal(err)
		}
		memberChans[id] = ch
	}
	envs, err := hub.Rekey([]byte("entropy-1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 3 {
		t.Fatalf("want 3 envelopes, got %d", len(envs))
	}
	for _, env := range envs {
		epoch, key, err := OpenEnvelope(memberChans[env.MemberID], env)
		if err != nil {
			t.Fatalf("%s: %v", env.MemberID, err)
		}
		if epoch != 1 {
			t.Errorf("epoch = %d", epoch)
		}
		if !bytes.Equal(key, hub.GroupKey()) {
			t.Errorf("%s received a different group key", env.MemberID)
		}
	}
}

func TestGroupRekeyAfterLeaveChangesKey(t *testing.T) {
	hub := NewHub()
	k1, _ := pairwise(t, 1)
	k2, _ := pairwise(t, 2)
	if err := hub.Join("a", k1); err != nil {
		t.Fatal(err)
	}
	if err := hub.Join("b", k2); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Rekey([]byte("e")); err != nil {
		t.Fatal(err)
	}
	old := append([]byte{}, hub.GroupKey()...)
	if err := hub.Leave("b"); err != nil {
		t.Fatal(err)
	}
	envs, err := hub.Rekey([]byte("e"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(old, hub.GroupKey()) {
		t.Fatal("rekey after leave must change the group key")
	}
	for _, env := range envs {
		if env.MemberID == "b" {
			t.Fatal("departed member must not receive an envelope")
		}
	}
}

func TestGroupJoinErrors(t *testing.T) {
	hub := NewHub()
	k, _ := pairwise(t, 9)
	if err := hub.Join("x", k); err != nil {
		t.Fatal(err)
	}
	if err := hub.Join("x", k); err == nil {
		t.Fatal("duplicate join accepted")
	}
	if err := hub.Join("short", []byte{1, 2}); err == nil {
		t.Fatal("short key accepted")
	}
	if err := hub.Leave("ghost"); err == nil {
		t.Fatal("leaving a non-member accepted")
	}
	if _, err := NewHub().Rekey(nil); err == nil {
		t.Fatal("rekey of empty group accepted")
	}
}

func TestEnvelopeWrongChannelRejected(t *testing.T) {
	hub := NewHub()
	k1, _ := pairwise(t, 1)
	_, wrongCh := pairwise(t, 7)
	if err := hub.Join("a", k1); err != nil {
		t.Fatal(err)
	}
	envs, err := hub.Rekey([]byte("e"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenEnvelope(wrongCh, envs[0]); err == nil {
		t.Fatal("wrong pairwise channel must not open the envelope")
	}
}
