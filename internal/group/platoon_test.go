package group

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/lora"
	"repro/internal/pipeline"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/transport"

	// Registers the training-free baseline schemes ("lora-key") the
	// e2e tests establish with.
	_ "repro/internal/baselines"
)

// platoonSeed roots every e2e platoon test's rng sub-streams.
const platoonSeed int64 = 91

// platoonWindows matches the contention experiments' sessions: two
// reconciliation rounds of probing material per member, so a single
// failed round does not sink an establishment.
const platoonWindows = 16

func platoonScenario() trace.Scenario { return trace.NewScenario(channel.Urban, channel.V2I) }

// platoonTemplate shares one built scheme across the e2e tests;
// lora-key is training-free, so building it once is cheap and every
// session clones it.
var platoonTemplate = struct {
	sync.Mutex
	sys *core.System
}{}

func platoonSystem(t testing.TB) *core.System {
	t.Helper()
	platoonTemplate.Lock()
	defer platoonTemplate.Unlock()
	if platoonTemplate.sys == nil {
		sys, err := core.NewScheme("lora-key", core.DefaultConfig(), rng.New(platoonSeed).Derive("sys"))
		if err != nil {
			t.Fatal(err)
		}
		platoonTemplate.sys = sys
	}
	return platoonTemplate.sys
}

// platoonDrive assembles the shared DriveConfig pieces: hub Resolve
// and member configs over server.SessionWindows, cloned schemes, and
// the given timing profile.
func platoonDrive(t testing.TB, members int, leavers map[uint64]bool,
	retry protocol.RetryPolicy, tick time.Duration, joinCopies int) DriveConfig {
	t.Helper()
	sys := platoonSystem(t)
	sc := platoonScenario()
	sysCfg := core.DefaultConfig()
	return DriveConfig{
		Members: members,
		Leavers: leavers,
		Seed:    platoonSeed,
		Hub: HubConfig{
			Resolve: func(member uint64, n int) (pipeline.Scheme, [][]float64, error) {
				alice, _, err := server.SessionWindows(sc, sysCfg, platoonSeed, member, n)
				return sys.Clone(), alice, err
			},
			Retry: retry,
			Tick:  tick,
		},
		Member: func(member uint64) (MemberConfig, error) {
			_, bob, err := server.SessionWindows(sc, sysCfg, platoonSeed, member, platoonWindows)
			if err != nil {
				return MemberConfig{}, err
			}
			return MemberConfig{
				Scheme:     sys.Clone(),
				Windows:    bob,
				Retry:      retry,
				Tick:       tick,
				JoinCopies: joinCopies,
			}, nil
		},
	}
}

// checkPlatoonResult asserts the full e2e contract on one run:
// everyone establishes, two epochs complete, the leavers depart after
// epoch 1, and every member's accepted key digests agree with the
// hub's schedule.
func checkPlatoonResult(t *testing.T, res DriveResult, members int, leavers map[uint64]bool) {
	t.Helper()
	if len(res.Established) != members || len(res.Failed) != 0 {
		t.Fatalf("established %d of %d (failed %v)", len(res.Established), members, res.Failed)
	}
	if len(res.Rekeys) != 2 {
		t.Fatalf("want 2 rekey waves, got %d", len(res.Rekeys))
	}
	if res.Rekeys[0].Epoch != 1 || res.Rekeys[1].Epoch != 2 {
		t.Fatalf("epochs = %d, %d", res.Rekeys[0].Epoch, res.Rekeys[1].Epoch)
	}
	if got := len(res.Rekeys[0].Acked); got != members {
		t.Fatalf("epoch 1 acked by %d of %d: %+v", got, members, res.Rekeys[0])
	}
	survivors := members - len(leavers)
	if got := len(res.Rekeys[1].Members); got != survivors {
		t.Fatalf("epoch 2 addressed %d members, want %d survivors", got, survivors)
	}
	if got := len(res.Rekeys[1].Acked); got != survivors {
		t.Fatalf("epoch 2 acked by %d of %d survivors: %+v", got, survivors, res.Rekeys[1])
	}
	for _, m := range res.Rekeys[1].Members {
		if leavers[m] {
			t.Fatalf("departed member %d addressed in the post-leave wave", m)
		}
	}
	if res.LeavesSeen != len(leavers) {
		t.Fatalf("hub saw %d leaves, want %d", res.LeavesSeen, len(leavers))
	}
	if res.FinalEpoch != 2 {
		t.Fatalf("final epoch = %d", res.FinalEpoch)
	}
	if res.HubDigest == "" {
		t.Fatal("empty hub key digest")
	}
	if got := len(res.Accepted[1]); got != members {
		t.Fatalf("epoch 1 accepted by %d of %d members", got, members)
	}
	epoch1 := ""
	for _, d := range res.Accepted[1] {
		if epoch1 == "" {
			epoch1 = d
		}
		if d != epoch1 {
			t.Fatalf("epoch 1 digests disagree: %v", res.Accepted[1])
		}
	}
	if got := len(res.Accepted[2]); got != survivors {
		t.Fatalf("epoch 2 accepted by %d members, want %d survivors", got, survivors)
	}
	for m, d := range res.Accepted[2] {
		if leavers[m] {
			t.Fatalf("departed member %d accepted the post-leave key", m)
		}
		if d != res.HubDigest {
			t.Fatalf("member %d epoch-2 digest %s != hub %s", m, d, res.HubDigest)
		}
	}
	if epoch1 == res.HubDigest {
		t.Fatal("rekey after leave did not change the group key")
	}
}

// TestPlatoonEndToEndMem runs the full platoon session — 8 concurrent
// pairwise establishments, group rekey, two member leaves, rekey of
// the survivors — over the in-memory endpoint.
func TestPlatoonEndToEndMem(t *testing.T) {
	leavers := map[uint64]bool{2: true, 5: true}
	cfg := platoonDrive(t, 8, leavers,
		protocol.RetryPolicy{Timeout: 50 * time.Millisecond, MaxRetries: 8},
		20*time.Millisecond, 1)
	cfg.Endpoint = "mem://group-platoon-e2e"
	cfg.KeyWait = 30 * time.Second
	cfg.LeaveWait = 20 * time.Second
	res, err := Drive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkPlatoonResult(t, res, 8, leavers)
}

// loraPlatoonPolicy mirrors the contention experiments' virtual-second
// ARQ profile: one protocol message is a multi-fragment burst of a
// second or two on the air.
var loraPlatoonPolicy = protocol.RetryPolicy{
	Timeout:    4 * time.Second,
	MaxTimeout: 16 * time.Second,
	Backoff:    1.6,
	MaxRetries: 8,
}

// runLoraPlatoon runs one 8-member platoon over a fresh lockstep
// shared medium and returns the drive accounting.
func runLoraPlatoon(t *testing.T, leavers map[uint64]bool) DriveResult {
	t.Helper()
	m, err := lora.NewMedium(lora.MediumConfig{
		Channels: 4,
		Lockstep: true,
		Seed:     rng.SubSeed(platoonSeed, "test/platoon-lora", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	cfg := platoonDrive(t, 8, leavers, loraPlatoonPolicy, 2*time.Second, 8)
	cfg.Listen = func() (transport.Listener, error) { return m.Listen() }
	cfg.Dial = func(member uint64) (transport.Conn, error) {
		return m.Dial(fmt.Sprintf("veh-%d", member))
	}
	// KeyWait stays 0: on a lockstep medium the virtual clock can run
	// arbitrarily far ahead of the hub's wall-scheduled control plane
	// between epochs, so member waits must be event-driven — any
	// idle-tick budget here turns Go scheduler noise into flaky member
	// deaths. Drive's teardown conn sweep bounds the run instead.
	cfg.LeaveWait = 60 * time.Second
	res, err := Drive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPlatoonEndToEndLora runs the same churn session over the shared
// lockstep LoRa MAC — establishment contends for 4 hop channels with
// CAD, collisions, and capture — and checks the identical contract.
func TestPlatoonEndToEndLora(t *testing.T) {
	leavers := map[uint64]bool{1: true, 6: true}
	res := runLoraPlatoon(t, leavers)
	checkPlatoonResult(t, res, 8, leavers)
}

// TestPlatoonLoraDeterministic runs the lockstep platoon twice with
// the same seed and requires byte-identical accounting — the
// schedule-independence contract DESIGN.md §13 documents: results are
// counts, epochs, and key digests, never wall or virtual timing.
func TestPlatoonLoraDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("second full lockstep run")
	}
	leavers := map[uint64]bool{1: true, 6: true}
	a, err := json.Marshal(runLoraPlatoon(t, leavers))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(runLoraPlatoon(t, leavers))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("lockstep platoon runs diverged:\n%s\n%s", a, b)
	}
}
