// Package group extends Vehicle-Key from pairwise to group keys — the
// platoon/fleet setting the paper's related work (Liu et al., TMC'14)
// motivates. A hub (roadside unit or platoon leader) establishes a
// pairwise Vehicle-Key with every member over their individual radio
// channels, then distributes a fresh group key to each member through an
// AES-GCM channel keyed by that member's pairwise key.
//
// The package has two layers. This file is the key schedule: a
// mutex-guarded Hub that derives epoch-bound group keys and seals one
// envelope per member (concurrently, over an indexed-slot worker pool),
// and the member-side MemberState that enforces the monotone-epoch
// contract. platoon.go runs both roles as protocol.Node peers over
// transport endpoints, so a whole platoon session — N concurrent
// pairwise establishments, rekey fan-out, churn — works across
// tcp/mem/lora unmodified.
//
// Security inherits from the pairwise scheme: each member's channel is
// spatially decorrelated from every other's, so a compromised or
// departing member learns nothing about future group keys (the hub
// simply re-keys). Epochs are strictly monotone in both directions:
// the hub never reuses one, and a member rejects any envelope at or
// below its current epoch, so replayed envelopes cannot regress the
// group key. Superseded keys are wiped via secure.Wipe.
package group

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/secure"
)

// ErrHubClosed reports use of a closed hub.
var ErrHubClosed = errors.New("group: hub closed")

// ErrStaleEpoch reports an envelope whose epoch does not advance the
// member's schedule — a duplicate, an out-of-order delivery, or a
// deliberate replay.
var ErrStaleEpoch = errors.New("group: stale or replayed epoch")

// Member is one group participant as seen by the hub: an established
// pairwise key and the secure channel derived from it.
type Member struct {
	ID      string
	channel *secure.Channel
}

// Hub distributes and rotates group keys over established pairwise keys.
// All methods are safe for concurrent use; Rekey holds the hub lock for
// its whole derive+seal span, so every envelope batch covers exactly one
// consistent member set even under join/leave storms.
type Hub struct {
	mu      sync.Mutex
	members map[string]*Member
	epoch   uint32
	current []byte
	workers int
	rec     obs.Recorder
	closed  bool
}

// HubOption configures NewHub.
type HubOption func(*Hub)

// WithWorkers bounds Rekey's concurrent envelope sealing (default: one
// worker per CPU). Worker count never changes the output: each worker
// writes only its own indexed envelope slots.
func WithWorkers(n int) HubOption {
	return func(h *Hub) { h.workers = n }
}

// WithRecorder routes the hub's vk_group_* metrics into r (default
// obs.Nop; the hub never constructs its own recorder).
func WithRecorder(r obs.Recorder) HubOption {
	return func(h *Hub) { h.rec = obs.OrNop(r) }
}

// NewHub returns an empty hub.
func NewHub(opts ...HubOption) *Hub {
	h := &Hub{members: make(map[string]*Member), rec: obs.Nop}
	for _, o := range opts {
		o(h)
	}
	return h
}

// Join registers a member with its established 16-byte pairwise key
// (the output of the Vehicle-Key protocol with that member). The caller
// still owns pairwiseKey and should wipe it; the channel keeps only the
// derived cipher state.
func (h *Hub) Join(id string, pairwiseKey []byte) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return ErrHubClosed
	}
	if _, exists := h.members[id]; exists {
		return fmt.Errorf("group: member %q already joined", id)
	}
	ch, err := secure.NewChannel(pairwiseKey)
	if err != nil {
		return fmt.Errorf("group: member %q: %w", id, err)
	}
	h.members[id] = &Member{ID: id, channel: ch}
	h.rec.Set(obs.GroupMembers, float64(len(h.members)))
	return nil
}

// Leave removes a member. Callers should Rekey afterwards so the
// departed member cannot follow future traffic.
func (h *Hub) Leave(id string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.members[id]; !ok {
		return fmt.Errorf("group: member %q not joined", id)
	}
	delete(h.members, id)
	h.rec.Set(obs.GroupMembers, float64(len(h.members)))
	return nil
}

// Size returns the current member count.
func (h *Hub) Size() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.members)
}

// Members returns the current member IDs in sorted order.
func (h *Hub) Members() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	ids := make([]string, 0, len(h.members))
	for id := range h.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Epoch returns the current key epoch (0 before the first Rekey).
func (h *Hub) Epoch() uint32 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.epoch
}

// GroupKey returns a copy of the current group key (nil before the
// first Rekey). The caller owns — and should wipe — the copy.
func (h *Hub) GroupKey() []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.current == nil {
		return nil
	}
	key := make([]byte, len(h.current))
	copy(key, h.current)
	return key
}

// Close wipes the group key and rejects further use.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	secure.Wipe(h.current)
	h.current = nil
	h.closed = true
}

// Envelope is one member's sealed copy of the group key. Epoch is
// repeated in the clear for routing; the authoritative copy is inside
// the sealed payload, and members reject a mismatch.
type Envelope struct {
	MemberID string
	Epoch    uint32
	Sealed   []byte
}

// Rekey derives a fresh group key bound to the epoch and member set and
// returns one sealed envelope per member, in sorted member order.
//
// The derivation hashes the member IDs in sorted order, so the same
// entropy and member set always yield the same key regardless of join
// order or map iteration (the hash is schedule-independent). The
// superseded key is wiped before the new one is installed. Sealing fans
// out over a strided worker pool: worker k seals envelopes k, k+w,
// k+2w…, so each member's channel is touched by exactly one goroutine
// and the envelope slice is identical at any worker count.
func (h *Hub) Rekey(entropy []byte) ([]Envelope, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrHubClosed
	}
	if len(h.members) == 0 {
		return nil, errors.New("group: no members")
	}
	ids := make([]string, 0, len(h.members))
	for id := range h.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	h.epoch++
	hash := sha256.New()
	hash.Write([]byte("vehicle-key/group/v1"))
	hash.Write(entropy)
	var eb [4]byte
	binary.BigEndian.PutUint32(eb[:], h.epoch)
	hash.Write(eb[:])
	for _, id := range ids {
		hash.Write([]byte(id))
	}
	sum := hash.Sum(nil)
	secure.Wipe(h.current)
	h.current = sum[:16:16]
	secure.Wipe(sum[16:])

	out := make([]Envelope, len(ids))
	w := h.workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > len(ids) {
		w = len(ids)
	}
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := k; i < len(ids); i += w {
				m := h.members[ids[i]]
				payload := make([]byte, 4+16)
				copy(payload[:4], eb[:])
				copy(payload[4:], h.current)
				out[i] = Envelope{MemberID: m.ID, Epoch: h.epoch, Sealed: m.channel.Seal(payload)}
				secure.Wipe(payload)
			}
		}(k)
	}
	wg.Wait()
	h.rec.Add(obs.GroupRekeys, 1)
	h.rec.Set(obs.GroupEpoch, float64(h.epoch))
	return out, nil
}

// OpenEnvelope is the stateless member primitive: it unseals a
// group-key envelope with the member's pairwise channel and returns
// (epoch, groupKey). It performs no epoch-ordering checks — use
// MemberState, which wraps it with the monotone-epoch contract.
func OpenEnvelope(pairwise *secure.Channel, env Envelope) (uint32, []byte, error) {
	payload, err := pairwise.Open(env.Sealed)
	if err != nil {
		return 0, nil, fmt.Errorf("group: %w", err)
	}
	if len(payload) != 20 {
		secure.Wipe(payload)
		return 0, nil, errors.New("group: malformed envelope")
	}
	epoch := binary.BigEndian.Uint32(payload[:4])
	key := make([]byte, 16)
	copy(key, payload[4:])
	secure.Wipe(payload)
	return epoch, key, nil
}

// MemberState is a member's view of the group key schedule: the
// candidate pairwise channels from its establishment run, the last
// accepted epoch, and the current group key. It enforces the
// monotone-epoch contract — Accept rejects any envelope whose epoch
// does not strictly advance the schedule, so replayed or reordered
// envelopes cannot regress the key.
//
// Multiple candidate channels cover the protocol's round asymmetry:
// the hub seals under the first round it saw confirmed, which the
// member cannot predict, so it keeps a channel per confirmed round and
// pins whichever one opens the first envelope.
type MemberState struct {
	mu       sync.Mutex
	channels []*secure.Channel
	epoch    uint32
	key      []byte
}

// NewMemberState builds a member state over one or more candidate
// pairwise channels.
func NewMemberState(candidates ...*secure.Channel) (*MemberState, error) {
	if len(candidates) == 0 {
		return nil, errors.New("group: member state needs at least one pairwise channel")
	}
	return &MemberState{channels: candidates}, nil
}

// Accept opens env, advances the epoch, and returns a copy of the new
// group key (the caller owns and should wipe it). It fails with
// ErrStaleEpoch when env does not advance the current epoch, and with
// an opaque error when no candidate channel opens the envelope or the
// sealed epoch contradicts the cleartext one (a spliced header).
func (s *MemberState) Accept(env Envelope) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if env.Epoch <= s.epoch {
		return nil, fmt.Errorf("%w: epoch %d at or below current %d", ErrStaleEpoch, env.Epoch, s.epoch)
	}
	for i, ch := range s.channels {
		epoch, key, err := OpenEnvelope(ch, env)
		if err != nil {
			continue
		}
		if epoch != env.Epoch {
			secure.Wipe(key)
			return nil, errors.New("group: sealed epoch contradicts envelope header")
		}
		// First successful open pins the channel: later envelopes are
		// sealed under the same pairwise key, and the unpinned
		// candidates' cipher states hold no per-message secrets.
		s.channels = s.channels[i : i+1]
		secure.Wipe(s.key)
		s.key = key
		s.epoch = epoch
		out := make([]byte, len(key))
		copy(out, key)
		return out, nil
	}
	return nil, errors.New("group: envelope did not open under any pairwise channel")
}

// Epoch returns the last accepted epoch (0 before the first Accept).
func (s *MemberState) Epoch() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Key returns a copy of the current group key (nil before the first
// Accept). The caller owns — and should wipe — the copy.
func (s *MemberState) Key() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.key == nil {
		return nil
	}
	key := make([]byte, len(s.key))
	copy(key, s.key)
	return key
}

// Close wipes the group key.
func (s *MemberState) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	secure.Wipe(s.key)
	s.key = nil
}

// KeyDigest is a one-way fingerprint of a group key, safe to log or
// compare across members: the first 8 bytes of SHA-256 over a
// domain-separated hash of the key.
func KeyDigest(key []byte) string {
	if len(key) == 0 {
		return ""
	}
	h := sha256.New()
	h.Write([]byte("vehicle-key/group/digest"))
	h.Write(key)
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:8])
}
