// Package group extends Vehicle-Key from pairwise to group keys — the
// platoon/fleet setting the paper's related work (Liu et al., TMC'14)
// motivates. A hub (roadside unit or platoon leader) establishes a
// pairwise Vehicle-Key with every member over their individual radio
// channels, then distributes a fresh group key to each member through an
// AES-GCM channel keyed by that member's pairwise key.
//
// Security inherits from the pairwise scheme: each member's channel is
// spatially decorrelated from every other's, so a compromised or
// departing member learns nothing about future group keys (the hub
// simply re-keys).
package group

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"repro/internal/secure"
)

// Member is one group participant as seen by the hub: an established
// pairwise key and the secure channel derived from it.
type Member struct {
	ID      string
	channel *secure.Channel
}

// Hub distributes and rotates group keys over established pairwise keys.
type Hub struct {
	members map[string]*Member
	epoch   uint32
	current []byte
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{members: make(map[string]*Member)}
}

// Join registers a member with its established 16-byte pairwise key
// (the output of the Vehicle-Key protocol with that member).
func (h *Hub) Join(id string, pairwiseKey []byte) error {
	if _, exists := h.members[id]; exists {
		return fmt.Errorf("group: member %q already joined", id)
	}
	ch, err := secure.NewChannel(pairwiseKey)
	if err != nil {
		return fmt.Errorf("group: member %q: %w", id, err)
	}
	h.members[id] = &Member{ID: id, channel: ch}
	return nil
}

// Leave removes a member. Callers should Rekey afterwards so the
// departed member cannot follow future traffic.
func (h *Hub) Leave(id string) error {
	if _, ok := h.members[id]; !ok {
		return fmt.Errorf("group: member %q not joined", id)
	}
	delete(h.members, id)
	return nil
}

// Size returns the current member count.
func (h *Hub) Size() int { return len(h.members) }

// GroupKey returns the current group key (nil before the first Rekey).
func (h *Hub) GroupKey() []byte { return h.current }

// Envelope is one member's sealed copy of the group key.
type Envelope struct {
	MemberID string
	Epoch    uint32
	Sealed   []byte
}

// Rekey derives a fresh group key bound to the epoch and member set, and
// returns one sealed envelope per member.
func (h *Hub) Rekey(entropy []byte) ([]Envelope, error) {
	if len(h.members) == 0 {
		return nil, errors.New("group: no members")
	}
	h.epoch++
	hash := sha256.New()
	hash.Write([]byte("vehicle-key/group/v1"))
	hash.Write(entropy)
	hash.Write([]byte{byte(h.epoch >> 24), byte(h.epoch >> 16), byte(h.epoch >> 8), byte(h.epoch)})
	for id := range h.members {
		hash.Write([]byte(id))
	}
	sum := hash.Sum(nil)
	h.current = sum[:16]

	out := make([]Envelope, 0, len(h.members))
	for id, m := range h.members {
		payload := make([]byte, 4+16)
		payload[0], payload[1], payload[2], payload[3] =
			byte(h.epoch>>24), byte(h.epoch>>16), byte(h.epoch>>8), byte(h.epoch)
		copy(payload[4:], h.current)
		out = append(out, Envelope{MemberID: id, Epoch: h.epoch, Sealed: m.channel.Seal(payload)})
	}
	return out, nil
}

// OpenEnvelope is the member side: it unseals a group-key envelope with
// the member's pairwise channel and returns (epoch, groupKey).
func OpenEnvelope(pairwise *secure.Channel, env Envelope) (uint32, []byte, error) {
	payload, err := pairwise.Open(env.Sealed)
	if err != nil {
		return 0, nil, fmt.Errorf("group: %w", err)
	}
	if len(payload) != 20 {
		return 0, nil, errors.New("group: malformed envelope")
	}
	epoch := uint32(payload[0])<<24 | uint32(payload[1])<<16 | uint32(payload[2])<<8 | uint32(payload[3])
	key := make([]byte, 16)
	copy(key, payload[4:])
	return epoch, key, nil
}
