package group

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/secure"
)

// TestRekeyDeterministicAcrossJoinOrder is the regression test for the
// map-iteration-order bug: the derivation must hash member IDs in
// sorted order, so the same entropy + member set yields the same group
// key regardless of join order, worker count, or map layout.
func TestRekeyDeterministicAcrossJoinOrder(t *testing.T) {
	ids := []string{"car-4", "car-1", "car-9", "car-2", "car-7"}
	build := func(order []string, workers int) *Hub {
		hub := NewHub(WithWorkers(workers))
		for _, id := range order {
			key, _ := pairwise(t, id[len(id)-1])
			if err := hub.Join(id, key); err != nil {
				t.Fatal(err)
			}
		}
		return hub
	}
	reversed := append([]string(nil), ids...)
	sort.Sort(sort.Reverse(sort.StringSlice(reversed)))
	a := build(ids, 1)
	b := build(reversed, 8)
	for epoch := 1; epoch <= 3; epoch++ {
		entropy := []byte(fmt.Sprintf("entropy-%d", epoch))
		envsA, err := a.Rekey(entropy)
		if err != nil {
			t.Fatal(err)
		}
		envsB, err := b.Rekey(entropy)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.GroupKey(), b.GroupKey()) {
			t.Fatalf("epoch %d: same entropy and member set derived different group keys", epoch)
		}
		for i := range envsA {
			if envsA[i].MemberID != envsB[i].MemberID {
				t.Fatalf("epoch %d: envelope order diverged: %q vs %q",
					epoch, envsA[i].MemberID, envsB[i].MemberID)
			}
		}
	}
}

// TestRekeyEnvelopesSorted pins the envelope ordering contract: sorted
// member order, independent of worker count.
func TestRekeyEnvelopesSorted(t *testing.T) {
	hub := NewHub(WithWorkers(3))
	for _, id := range []string{"zz", "aa", "mm"} {
		key, _ := pairwise(t, id[0])
		if err := hub.Join(id, key); err != nil {
			t.Fatal(err)
		}
	}
	envs, err := hub.Rekey([]byte("e"))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"aa", "mm", "zz"}
	for i, env := range envs {
		if env.MemberID != want[i] {
			t.Fatalf("envelope %d is %q, want %q", i, env.MemberID, want[i])
		}
	}
}

// TestMemberStateRejectsReplay is the regression test for epoch
// replay: a member must reject any envelope at or below its current
// epoch, so a replayed older envelope cannot regress the group key.
func TestMemberStateRejectsReplay(t *testing.T) {
	hub := NewHub()
	key, ch := pairwise(t, 3)
	if err := hub.Join("m", key); err != nil {
		t.Fatal(err)
	}
	env1 := rekeyOne(t, hub, []byte("e1"))
	env2 := rekeyOne(t, hub, []byte("e2"))

	state, err := NewMemberState(ch)
	if err != nil {
		t.Fatal(err)
	}
	k1, err := state.Accept(env1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := state.Accept(env1); err == nil {
		t.Fatal("replayed current-epoch envelope accepted")
	}
	k2, err := state.Accept(env2)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(k1, k2) {
		t.Fatal("epochs 1 and 2 produced the same key")
	}
	if _, err := state.Accept(env1); err == nil {
		t.Fatal("replayed older envelope accepted: group key regressed")
	}
	if state.Epoch() != 2 {
		t.Fatalf("epoch = %d after replay attempts, want 2", state.Epoch())
	}
	if !bytes.Equal(state.Key(), k2) {
		t.Fatal("replay attempt changed the current key")
	}
}

// TestMemberStateRejectsSplicedHeader covers the cleartext-epoch
// integrity check: an attacker advancing the envelope header cannot
// make a member adopt an old key under a new epoch number.
func TestMemberStateRejectsSplicedHeader(t *testing.T) {
	hub := NewHub()
	key, ch := pairwise(t, 5)
	if err := hub.Join("m", key); err != nil {
		t.Fatal(err)
	}
	env := rekeyOne(t, hub, []byte("e"))
	env.Epoch = 9 // spliced: sealed payload still says epoch 1

	state, err := NewMemberState(ch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := state.Accept(env); err == nil {
		t.Fatal("spliced envelope header accepted")
	}
	if state.Epoch() != 0 {
		t.Fatalf("spliced envelope advanced the epoch to %d", state.Epoch())
	}
}

func rekeyOne(t *testing.T, hub *Hub, entropy []byte) Envelope {
	t.Helper()
	envs, err := hub.Rekey(entropy)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 1 {
		t.Fatalf("want 1 envelope, got %d", len(envs))
	}
	return envs[0]
}

// TestChurnStormAccounting hammers the hub with concurrent leaves and
// rekeys (run under -race via scripts/test-race.sh) and checks the
// churn contract: every envelope batch covers exactly one consistent
// member snapshot — unique sorted IDs, survivors always present — and
// after the storm the final batch addresses exactly the survivors,
// whom departed members' channels cannot impersonate.
func TestChurnStormAccounting(t *testing.T) {
	const members = 12
	const storms = 6 // members that leave mid-storm
	hub := NewHub(WithWorkers(4))
	chans := make(map[string]*secure.Channel, members)
	initial := make([]string, 0, members)
	for i := 0; i < members; i++ {
		id := fmt.Sprintf("m%02d", i)
		key, ch := pairwise(t, byte(i+1))
		if err := hub.Join(id, key); err != nil {
			t.Fatal(err)
		}
		chans[id] = ch
		initial = append(initial, id)
	}
	survivors := initial[storms:]

	var mu sync.Mutex
	var batches [][]Envelope
	var wg sync.WaitGroup
	for i := 0; i < storms; i++ {
		id := initial[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := hub.Leave(id); err != nil {
				t.Errorf("leave %s: %v", id, err)
			}
		}()
	}
	for i := 0; i < 5; i++ {
		entropy := []byte(fmt.Sprintf("storm-%d", i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			envs, err := hub.Rekey(entropy)
			if err != nil {
				t.Errorf("rekey: %v", err)
				return
			}
			mu.Lock()
			batches = append(batches, envs)
			mu.Unlock()
		}()
	}
	wg.Wait()

	surviving := map[string]bool{}
	for _, id := range survivors {
		surviving[id] = true
	}
	for _, envs := range batches {
		seen := map[string]bool{}
		for i, env := range envs {
			if seen[env.MemberID] {
				t.Fatalf("member %s sealed twice in one batch", env.MemberID)
			}
			seen[env.MemberID] = true
			if i > 0 && envs[i-1].MemberID >= env.MemberID {
				t.Fatalf("batch not in sorted member order at %d", i)
			}
			if chans[env.MemberID] == nil {
				t.Fatalf("batch addresses unknown member %s", env.MemberID)
			}
		}
		for _, id := range survivors {
			if !seen[id] {
				t.Fatalf("survivor %s missing from a batch of %d", id, len(envs))
			}
		}
	}

	final, err := hub.Rekey([]byte("final"))
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != len(survivors) {
		t.Fatalf("final batch has %d envelopes, want %d survivors", len(final), len(survivors))
	}
	groupKey := hub.GroupKey()
	for i, env := range final {
		if env.MemberID != survivors[i] {
			t.Fatalf("final envelope %d addresses %s, want %s", i, env.MemberID, survivors[i])
		}
		epoch, key, err := OpenEnvelope(chans[env.MemberID], env)
		if err != nil {
			t.Fatalf("survivor %s cannot open its envelope: %v", env.MemberID, err)
		}
		if epoch != hub.Epoch() || !bytes.Equal(key, groupKey) {
			t.Fatalf("survivor %s opened a wrong key or epoch", env.MemberID)
		}
		secure.Wipe(key)
	}
	// Departed members hold no envelope in the final batch, and their
	// channels cannot open anyone else's.
	for i := 0; i < storms; i++ {
		departed := initial[i]
		for _, env := range final {
			if env.MemberID == departed {
				t.Fatalf("departed member %s received a post-leave envelope", departed)
			}
			if _, _, err := OpenEnvelope(chans[departed], env); err == nil {
				t.Fatalf("departed member %s opened %s's envelope", departed, env.MemberID)
			}
		}
	}
}

// TestHubClosedRejectsUse pins the closed-hub contract.
func TestHubClosedRejectsUse(t *testing.T) {
	hub := NewHub()
	key, _ := pairwise(t, 1)
	if err := hub.Join("a", key); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Rekey([]byte("e")); err != nil {
		t.Fatal(err)
	}
	hub.Close()
	if hub.GroupKey() != nil {
		t.Fatal("closed hub still exposes a group key")
	}
	if _, err := hub.Rekey([]byte("e")); err == nil {
		t.Fatal("closed hub accepted a rekey")
	}
	if err := hub.Join("b", key); err == nil {
		t.Fatal("closed hub accepted a join")
	}
}
