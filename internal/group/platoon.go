package group

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/secure"
	"repro/internal/transport"
)

// This file runs the group key schedule end to end: the hub and every
// member are protocol.Node peers across transport.Dial/Listen
// endpoints, so one platoon session — N concurrent pairwise
// establishments, epoch rekey fan-out, churn — works over tcp, mem,
// and lora unmodified.
//
// Timing discipline: exactly one goroutine owns each conn at any time
// (transport conns, the lora medium's in particular, are not
// full-duplex-concurrent), and every wait is counted in RecvTimeout
// ticks of the conn's own clock — wall time on sockets, virtual
// seconds on a lockstep medium. No wall-clock timer ever decides a
// protocol action, so a lockstep platoon's outcome does not depend on
// how fast the host happens to run.

// Labeled metric names, built once (the obs.Labeled discipline).
var (
	groupEstablishOK     = obs.Labeled(obs.GroupEstablishments, "result", obs.GroupOK)
	groupEstablishFailed = obs.Labeled(obs.GroupEstablishments, "result", obs.GroupFailed)
	groupEnvelopeAcked   = obs.Labeled(obs.GroupEnvelopes, "result", obs.GroupOK)
	groupEnvelopeFailed  = obs.Labeled(obs.GroupEnvelopes, "result", obs.GroupFailed)
)

// ErrSessionEnded reports that the hub ended the platoon session
// (a bye frame) while the member was waiting for a key.
var ErrSessionEnded = errors.New("group: platoon session ended")

// ErrNoPairwiseKey reports a pairwise establishment run that derived
// no key, so the peer cannot participate in the group schedule.
var ErrNoPairwiseKey = errors.New("group: no pairwise key derived")

// defaultTick is the receive-poll granularity in conn time.
const defaultTick = 2 * time.Second

// ticks converts a total wait into a RecvTimeout tick budget, at least 1.
func ticks(total, tick time.Duration) int {
	n := int(total / tick)
	if n < 1 {
		n = 1
	}
	return n
}

// memberName is the hub-side registry ID for a wire member.
func memberName(member uint64) string { return strconv.FormatUint(member, 10) }

// platoonSession is the protocol session identifier both sides of a
// member's pairwise establishment use.
func platoonSession(member uint64) string { return fmt.Sprintf("vk/platoon/%d", member) }

// ---------------------------------------------------------------------
// Hub side.
// ---------------------------------------------------------------------

// HubConfig configures the hub end of a platoon session. All durations
// are measured on the conn's clock (virtual seconds over lora).
type HubConfig struct {
	// Resolve supplies the hub-side scheme clone and Alice windows for a
	// joining member announcing the given window count. It is called
	// concurrently from establishment workers, so it must hand out a
	// dedicated clone per call (callers typically wrap sys.Clone() +
	// server.SessionWindows).
	Resolve func(member uint64, windows int) (pipeline.Scheme, [][]float64, error)
	// Retry is the ARQ policy for pairwise establishment (zero value:
	// the protocol default; use virtual-second policies on lora).
	Retry protocol.RetryPolicy
	// Workers bounds concurrent pairwise establishments (0: one worker
	// per member — required for deterministic lockstep runs, where a
	// smaller pool's dispatch order would depend on the scheduler).
	Workers int
	// JoinWait bounds the wait for a join frame on an accepted conn
	// (default 2min).
	JoinWait time.Duration
	// AckWait is the retransmit interval for an unacknowledged rekey
	// envelope (default 4 ticks).
	AckWait time.Duration
	// AckRetries is how many times an unacknowledged envelope is
	// retransmitted before the member is marked failed (default 6).
	AckRetries int
	// Tick is the receive-poll granularity (default 2s).
	Tick time.Duration
	// Recorder receives the vk_group_* metrics (default nop).
	Recorder obs.Recorder
}

func (c HubConfig) normalize() HubConfig {
	if c.Tick <= 0 {
		c.Tick = defaultTick
	}
	if c.JoinWait <= 0 {
		c.JoinWait = 2 * time.Minute
	}
	if c.AckWait <= 0 {
		c.AckWait = 4 * c.Tick
	}
	if c.AckRetries <= 0 {
		c.AckRetries = 6
	}
	c.Recorder = obs.OrNop(c.Recorder)
	return c
}

// deliverReq asks a link loop to deliver one sealed envelope; done
// receives exactly one verdict once the member acks, departs, or the
// retry budget runs out.
type deliverReq struct {
	env     Envelope
	data    []byte
	started time.Time
	done    chan bool
}

// memberLink is the hub's live connection to one established member.
// Its single linkLoop goroutine owns both directions of the conn.
type memberLink struct {
	name   string
	member uint64
	conn   transport.Conn
	cmds   chan *deliverReq
	gone   chan struct{} // closed when the link is down
	once   sync.Once
}

func (l *memberLink) shutdown() { l.once.Do(func() { close(l.gone) }) }

// HubSession drives the hub end of a platoon over a transport listener:
// concurrent pairwise establishment, rekey fan-out with per-member
// acknowledgement, and churn bookkeeping.
type HubSession struct {
	cfg HubConfig
	hub *Hub
	rec obs.Recorder

	mu     sync.Mutex
	links  map[string]*memberLink
	closed bool

	rekeyMu sync.Mutex // serializes fan-outs: one wave on the wire at a time
	leaves  chan uint64
	loops   sync.WaitGroup
}

// NewHubSession builds a hub session; cfg.Resolve is required.
func NewHubSession(cfg HubConfig) (*HubSession, error) {
	if cfg.Resolve == nil {
		return nil, errors.New("group: hub session needs a Resolve callback")
	}
	cfg = cfg.normalize()
	return &HubSession{
		cfg:    cfg,
		hub:    NewHub(WithRecorder(cfg.Recorder)),
		rec:    cfg.Recorder,
		links:  make(map[string]*memberLink),
		leaves: make(chan uint64, 4096),
	}, nil
}

// EstablishOutcome reports one accepted conn's pairwise establishment.
type EstablishOutcome struct {
	Member uint64
	Rounds int   // pairwise rounds the hub confirmed
	Err    error // nil when the member joined the group
}

// Establish accepts n conns from l and runs the pairwise Vehicle-Key
// protocol with each concurrently — every accepted conn gets its own
// establishment goroutine (bounded by cfg.Workers) writing only its
// own outcome slot, so the result is identical at any worker count.
// Members whose run confirms at least one key join the hub; their
// conns move under a link loop that serves acks and leave events.
// Outcomes are returned sorted by member ID.
func (s *HubSession) Establish(l transport.Listener, n int) ([]EstablishOutcome, error) {
	conns := make([]transport.Conn, 0, n)
	for len(conns) < n {
		c, err := l.Accept()
		if err != nil {
			for _, c := range conns {
				_ = c.Close()
			}
			return nil, fmt.Errorf("group: establish accept: %w", err)
		}
		conns = append(conns, c)
	}
	outcomes := make([]EstablishOutcome, len(conns))
	workers := s.cfg.Workers
	if workers <= 0 || workers > len(conns) {
		workers = len(conns)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, c := range conns {
		i, c := i, c
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			outcomes[i] = s.establishOne(c)
		}()
	}
	wg.Wait()
	sort.SliceStable(outcomes, func(a, b int) bool { return outcomes[a].Member < outcomes[b].Member })
	return outcomes, nil
}

// establishOne runs one member's join + pairwise establishment and, on
// success, registers the member and hands the conn to its link loop.
// On failure the conn is closed, which also unblocks the member side.
func (s *HubSession) establishOne(conn transport.Conn) EstablishOutcome {
	started := time.Now()
	fail := func(err error) EstablishOutcome {
		_ = conn.Close()
		s.rec.Add(groupEstablishFailed, 1)
		return EstablishOutcome{Err: err}
	}
	join, err := s.awaitJoin(conn)
	if err != nil {
		return fail(err)
	}
	member := join.Member
	sys, aliceWin, err := s.cfg.Resolve(member, join.Windows)
	if err != nil {
		return fail(fmt.Errorf("group: member %d: resolve: %w", member, err))
	}
	node := protocol.NewNode(sys, conn, platoonSession(member),
		protocol.WithRetryPolicy(s.cfg.Retry), protocol.WithRecorder(s.rec))
	outs, err := node.RunAlice(aliceWin)
	if err != nil {
		return fail(fmt.Errorf("group: member %d: establish: %w", member, err))
	}
	rounds, joined := 0, false
	for _, ko := range outs {
		if !ko.Confirmed {
			continue
		}
		rounds++
		if !joined {
			// The first confirmed round keys the member's group channel;
			// the member keeps a candidate channel per derived key and
			// pins the matching one on its first envelope.
			err = s.hub.Join(memberName(member), ko.Key)
			joined = err == nil
		}
		secure.Wipe(ko.Key)
	}
	if err != nil {
		return fail(err)
	}
	if !joined {
		return fail(fmt.Errorf("group: member %d: %w", member, ErrNoPairwiseKey))
	}
	link := &memberLink{
		name:   memberName(member),
		member: member,
		conn:   conn,
		cmds:   make(chan *deliverReq, 1),
		gone:   make(chan struct{}),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fail(ErrHubClosed)
	}
	s.links[link.name] = link
	s.loops.Add(1)
	s.mu.Unlock()
	go s.linkLoop(link)
	s.rec.Add(groupEstablishOK, 1)
	//vklint:ignore detrand -- wall time feeds only the metrics recorder, never a report
	s.rec.Observe(obs.GroupEstablishSeconds, time.Since(started).Seconds())
	return EstablishOutcome{Member: member, Rounds: rounds}
}

// awaitJoin reads frames off a fresh conn until a join arrives, within
// the join tick budget. Non-join deliveries (join copies on lossy
// links, early protocol traffic) are skipped.
func (s *HubSession) awaitJoin(conn transport.Conn) (frame, error) {
	for budget := ticks(s.cfg.JoinWait, s.cfg.Tick); budget > 0; {
		data, err := conn.RecvTimeout(s.cfg.Tick)
		if errors.Is(err, transport.ErrTimeout) {
			budget--
			continue
		}
		if err != nil {
			return frame{}, fmt.Errorf("group: await join: %w", err)
		}
		fr, err := decodeFrame(data)
		if err != nil || fr.Kind != kindJoin {
			continue
		}
		// Welcome the member so it stops retransmitting its join and
		// starts the pairwise run. A lost welcome is repaired by the
		// member's bounded retries; leftover join duplicates are skipped
		// by the protocol layer as ARQ garbage.
		if wel, werr := encodeFrame(frame{Kind: kindWelcome, Member: fr.Member}); werr == nil {
			_ = conn.Send(wel)
		}
		return fr, nil
	}
	return frame{}, errors.New("group: no join before deadline")
}

// linkLoop owns a member's conn after establishment. It is the only
// goroutine touching the conn: it delivers rekey envelopes handed over
// via cmds (retransmitting the identical cached ciphertext every
// AckWait of conn time until the member acks the epoch), routes leave
// frames and dead conns into departure events, and sends the session
// bye once the hub closes.
func (s *HubSession) linkLoop(l *memberLink) {
	defer s.loops.Done()
	var cur *deliverReq
	finish := func(ok bool) {
		if cur == nil {
			return
		}
		if ok {
			s.rec.Add(groupEnvelopeAcked, 1)
			//vklint:ignore detrand -- wall time feeds only the metrics recorder, never a report
			s.rec.Observe(obs.GroupFanoutSeconds, time.Since(cur.started).Seconds())
		} else {
			s.rec.Add(groupEnvelopeFailed, 1)
		}
		cur.done <- ok
		cur = nil
	}
	defer func() {
		// Guarantee a verdict for every request: the pending one, then
		// anything that raced into the buffer while we were exiting.
		l.shutdown()
		finish(false)
		for {
			select {
			case req := <-l.cmds:
				req.done <- false
			default:
				return
			}
		}
	}()
	ackTicks := ticks(s.cfg.AckWait, s.cfg.Tick)
	attempts, sinceSend := 0, 0
	for {
		if s.isClosed() {
			if data, err := encodeFrame(frame{Kind: kindBye, Member: l.member}); err == nil {
				_ = l.conn.Send(data)
			}
			return
		}
		if cur == nil {
			select {
			case cur = <-l.cmds:
				attempts, sinceSend = 0, ackTicks // transmit on this pass
			default:
			}
		}
		if cur != nil && sinceSend >= ackTicks {
			if attempts > s.cfg.AckRetries {
				finish(false)
			} else {
				if err := l.conn.Send(cur.data); err != nil {
					s.dropMember(l)
					return
				}
				attempts++
				sinceSend = 0
			}
		}
		data, err := l.conn.RecvTimeout(s.cfg.Tick)
		if errors.Is(err, transport.ErrTimeout) {
			sinceSend++
			continue
		}
		if err != nil {
			s.dropMember(l)
			return
		}
		fr, err := decodeFrame(data)
		if err != nil {
			continue // a late protocol retransmit, or garbage
		}
		switch fr.Kind {
		case kindAck:
			if cur != nil && fr.Epoch == cur.env.Epoch {
				finish(true)
			}
		case kindLeave:
			// Drop the member while this end of the link is still
			// scheduler-visible: the whole accounting — membership, link
			// registry, the departure event — lands at the leave frame's
			// own virtual time, with the lockstep clock held by this
			// goroutine. No bye is sent on this path: a bye would hand the
			// member the trigger to close the (shared-fate) link while our
			// send still parks on the medium, turning everything after it
			// into a wall-clock race. The conn close inside dropMember
			// doubles as the confirmation — the member's leave loop treats
			// link death as "the hub has dropped us".
			s.dropMember(l)
			return
		}
	}
}

// dropMember removes a departed member: hub membership, link registry,
// the conn, and a departure event for AwaitLeaves.
func (s *HubSession) dropMember(l *memberLink) {
	s.mu.Lock()
	if s.closed || s.links[l.name] != l {
		s.mu.Unlock()
		return
	}
	delete(s.links, l.name)
	s.mu.Unlock()
	_ = s.hub.Leave(l.name)
	l.shutdown()
	_ = l.conn.Close()
	s.rec.Add(obs.GroupLeaves, 1)
	select {
	case s.leaves <- l.member:
	default:
	}
}

func (s *HubSession) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// RekeyOutcome reports one rekey wave.
type RekeyOutcome struct {
	Epoch   uint32
	Members []uint64 // envelope targets, sorted
	Acked   []uint64 // members that acknowledged the epoch, sorted
	Failed  []uint64 // members that never acked or departed mid-wave, sorted
}

// Rekey derives the next epoch's group key and fans the sealed
// envelopes out to every member's link loop concurrently, returning
// once each target has acked, departed, or exhausted its retry budget.
// Waves are serialized, so each conn carries at most one outstanding
// envelope.
func (s *HubSession) Rekey(entropy []byte) (RekeyOutcome, error) {
	s.rekeyMu.Lock()
	defer s.rekeyMu.Unlock()
	if s.isClosed() {
		return RekeyOutcome{}, ErrHubClosed
	}
	started := time.Now()
	envs, err := s.hub.Rekey(entropy)
	if err != nil {
		return RekeyOutcome{}, err
	}
	out := RekeyOutcome{Epoch: s.hub.Epoch()}
	type pending struct {
		link *memberLink
		req  *deliverReq
	}
	var sent []pending
	for _, env := range envs {
		s.mu.Lock()
		link := s.links[env.MemberID]
		s.mu.Unlock()
		if link == nil {
			continue // departed between the seal and the fan-out
		}
		data, err := encodeFrame(frame{Kind: kindKey, Member: link.member, Epoch: env.Epoch, Sealed: env.Sealed})
		if err != nil {
			return RekeyOutcome{}, err
		}
		req := &deliverReq{env: env, data: data, started: started, done: make(chan bool, 1)}
		out.Members = append(out.Members, link.member)
		select {
		case link.cmds <- req:
			sent = append(sent, pending{link, req})
		case <-link.gone:
			out.Failed = append(out.Failed, link.member)
		}
	}
	for _, p := range sent {
		ok := false
		select {
		case ok = <-p.req.done:
		case <-p.link.gone:
			// The loop guarantees a verdict for every accepted request;
			// prefer it if it raced ahead of the shutdown.
			select {
			case ok = <-p.req.done:
			default:
			}
		}
		if ok {
			out.Acked = append(out.Acked, p.link.member)
		} else {
			out.Failed = append(out.Failed, p.link.member)
		}
	}
	sort.Slice(out.Members, func(a, b int) bool { return out.Members[a] < out.Members[b] })
	sort.Slice(out.Acked, func(a, b int) bool { return out.Acked[a] < out.Acked[b] })
	sort.Slice(out.Failed, func(a, b int) bool { return out.Failed[a] < out.Failed[b] })
	//vklint:ignore detrand -- wall time feeds only the metrics recorder, never a report
	s.rec.Observe(obs.GroupRekeySeconds, time.Since(started).Seconds())
	return out, nil
}

// AwaitLeaves blocks until n departure events have arrived (counted
// from the session start; events are buffered) or the wall-clock
// failsafe expires, and returns how many it saw.
func (s *HubSession) AwaitLeaves(n int, wait time.Duration) int {
	got := 0
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for got < n {
		select {
		case <-s.leaves:
			got++
		case <-timer.C:
			return got
		}
	}
	return got
}

// Members returns the live members' wire IDs, sorted.
func (s *HubSession) Members() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, 0, len(s.links))
	for _, l := range s.links {
		out = append(out, l.member)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Epoch returns the hub's current key epoch.
func (s *HubSession) Epoch() uint32 { return s.hub.Epoch() }

// GroupKey returns a copy of the hub's current group key.
func (s *HubSession) GroupKey() []byte { return s.hub.GroupKey() }

// Hub exposes the underlying key schedule (tests, diagnostics).
func (s *HubSession) Hub() *Hub { return s.hub }

// Close ends the platoon session: each link loop sends a best-effort
// bye and exits, conns close, and the group key is wiped. Idempotent.
func (s *HubSession) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	links := make([]*memberLink, 0, len(s.links))
	for _, l := range s.links {
		links = append(links, l)
	}
	s.links = make(map[string]*memberLink)
	s.mu.Unlock()
	s.loops.Wait() // loops notice closed within one tick and send byes
	for _, l := range links {
		l.shutdown()
		_ = l.conn.Close()
	}
	s.hub.Close()
	return nil
}

// ---------------------------------------------------------------------
// Member side.
// ---------------------------------------------------------------------

// MemberConfig configures one member end of a platoon session.
type MemberConfig struct {
	// Member is this member's wire ID (unique within the platoon).
	Member uint64
	// Scheme is the member's pipeline clone (never shared across
	// concurrent sessions).
	Scheme pipeline.Scheme
	// Windows is the member's Bob-side probing windows.
	Windows [][]float64
	// Retry is the ARQ policy for pairwise establishment.
	Retry protocol.RetryPolicy
	// JoinCopies bounds the join handshake: the join frame is
	// retransmitted once per tick until the hub's welcome arrives, up
	// to JoinCopies attempts (default 1; use ~8 on the shared medium,
	// where a whole platoon's joins collide in the ignition window).
	// Exhausting the budget is not fatal — the member proceeds in case
	// only the welcome was lost.
	JoinCopies int
	// Tick is the receive-poll granularity (default 2s; conn time).
	Tick time.Duration
	// Linger is how long Leave keeps draining the conn — re-acking
	// duplicate envelopes whose acks were lost — before departing, so
	// the hub's fan-out does not mistake a lost ack for a dead member
	// (default 5 ticks).
	Linger time.Duration
	// Recorder receives the member-side vk_group_* metrics.
	Recorder obs.Recorder
}

// MemberSession is an established member following the hub's epoch
// schedule. It owns the conn; all methods must be called from one
// goroutine at a time.
type MemberSession struct {
	conn   transport.Conn
	member uint64
	state  *MemberState
	rounds int
	tick   time.Duration
	linger time.Duration
	rec    obs.Recorder
}

// JoinPlatoon announces the member to the hub and runs the member
// (Bob) side of the pairwise Vehicle-Key establishment over conn. On
// success the returned session owns conn; on error the caller still
// owns it.
func JoinPlatoon(conn transport.Conn, cfg MemberConfig) (*MemberSession, error) {
	if cfg.Scheme == nil || len(cfg.Windows) == 0 {
		return nil, errors.New("group: member needs a scheme and windows")
	}
	if cfg.JoinCopies < 1 {
		cfg.JoinCopies = 1
	}
	if cfg.Tick <= 0 {
		cfg.Tick = defaultTick
	}
	if cfg.Linger <= 0 {
		cfg.Linger = 5 * cfg.Tick
	}
	rec := obs.OrNop(cfg.Recorder)
	join, err := encodeFrame(frame{Kind: kindJoin, Member: cfg.Member, Windows: len(cfg.Windows)})
	if err != nil {
		return nil, err
	}
	// Reliable join: a join is a single unacknowledged datagram, so on
	// the contended medium the whole platoon's joins can collide in the
	// ignition window. Retransmit each tick until the hub welcomes us;
	// if the budget runs out, proceed anyway — the hub may have heard
	// the join and only the welcome was lost, in which case the pairwise
	// run below confirms it.
	for attempt, welcomed := 0, false; attempt < cfg.JoinCopies && !welcomed; attempt++ {
		if err := conn.Send(join); err != nil {
			return nil, fmt.Errorf("group: join: %w", err)
		}
		data, err := conn.RecvTimeout(cfg.Tick)
		if errors.Is(err, transport.ErrTimeout) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("group: join: %w", err)
		}
		if fr, derr := decodeFrame(data); derr == nil && fr.Kind == kindWelcome {
			welcomed = true
		}
	}
	node := protocol.NewNode(cfg.Scheme, conn, platoonSession(cfg.Member),
		protocol.WithRetryPolicy(cfg.Retry), protocol.WithRecorder(rec))
	outs, err := node.RunBob(cfg.Windows)
	if err != nil {
		return nil, fmt.Errorf("group: member %d: establish: %w", cfg.Member, err)
	}
	// Keep a candidate channel for every derived key, confirmed or not:
	// the hub seals under the first round IT confirmed, and confirmation
	// is not symmetric (Bob's last confirm ack can be lost). The first
	// envelope that opens pins the right channel.
	var candidates []*secure.Channel
	for _, ko := range outs {
		if len(ko.Key) == 0 {
			continue
		}
		ch, err := secure.NewChannel(ko.Key)
		secure.Wipe(ko.Key)
		if err != nil {
			continue
		}
		candidates = append(candidates, ch)
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("group: member %d: %w", cfg.Member, ErrNoPairwiseKey)
	}
	state, err := NewMemberState(candidates...)
	if err != nil {
		return nil, err
	}
	return &MemberSession{
		conn:   conn,
		member: cfg.Member,
		state:  state,
		rounds: len(candidates),
		tick:   cfg.Tick,
		linger: cfg.Linger,
		rec:    rec,
	}, nil
}

// Rounds returns how many candidate pairwise keys the establishment
// derived.
func (m *MemberSession) Rounds() int { return m.rounds }

// Epoch returns the member's last accepted epoch.
func (m *MemberSession) Epoch() uint32 { return m.state.Epoch() }

// GroupKey returns a copy of the member's current group key.
func (m *MemberSession) GroupKey() []byte { return m.state.Key() }

// AwaitKey blocks until the next group-key epoch is accepted and
// returns (key copy, epoch). Duplicates of the current epoch are
// re-acked without reopening (the hub retransmits the identical
// ciphertext, which the replay-protected channel would reject);
// envelopes at older epochs are counted as stale drops and ignored.
// It fails with ErrSessionEnded on a hub bye, transport.ErrTimeout
// once wait's worth of idle ticks have passed, or the conn's error
// when it dies. A wait ≤ 0 never times out: the session end (bye),
// the link dying, or a key are the only exits. That is the correct
// mode on a lockstep medium, where the virtual clock can run
// arbitrarily far ahead of the hub's wall-scheduled control plane
// between epochs — an idle-tick budget there turns scheduling noise
// into spurious member deaths, while event-driven exits keep every
// outcome schedule-independent.
func (m *MemberSession) AwaitKey(wait time.Duration) ([]byte, uint32, error) {
	budget, forever := ticks(wait, m.tick), wait <= 0
	for forever || budget > 0 {
		data, err := m.conn.RecvTimeout(m.tick)
		if errors.Is(err, transport.ErrTimeout) {
			if !forever {
				budget--
			}
			continue
		}
		if err != nil {
			return nil, 0, fmt.Errorf("group: await key: %w", err)
		}
		fr, err := decodeFrame(data)
		if err != nil {
			continue // late protocol retransmits share the conn
		}
		switch fr.Kind {
		case kindBye:
			return nil, 0, ErrSessionEnded
		case kindKey:
			current := m.state.Epoch()
			if fr.Epoch == current && current > 0 {
				m.ack(current) // retransmit of the accepted envelope: the ack was lost
				continue
			}
			if fr.Epoch < current {
				m.rec.Add(obs.GroupStaleDrops, 1)
				continue
			}
			key, err := m.state.Accept(Envelope{MemberID: memberName(m.member), Epoch: fr.Epoch, Sealed: fr.Sealed})
			if err != nil {
				if errors.Is(err, ErrStaleEpoch) {
					m.rec.Add(obs.GroupStaleDrops, 1)
				}
				continue
			}
			m.ack(fr.Epoch)
			m.rec.Add(obs.GroupKeysAccepted, 1)
			return key, fr.Epoch, nil
		}
	}
	return nil, 0, fmt.Errorf("group: await key: %w", transport.ErrTimeout)
}

// ack sends an epoch acknowledgement (best-effort; the hub retransmits
// the envelope if the ack is lost).
func (m *MemberSession) ack(epoch uint32) {
	if data, err := encodeFrame(frame{Kind: kindAck, Member: m.member, Epoch: epoch}); err == nil {
		_ = m.conn.Send(data)
	}
}

// Leave departs the platoon in two phases, both on the conn's clock:
// it lingers briefly to re-ack any retransmitted envelope (so a lost
// ack is repaired rather than becoming a phantom fan-out failure),
// then announces the departure and retransmits the leave each tick
// until the hub's bye confirms it was processed. Only then does the
// conn close — a shared-fate transport close must never be the hub's
// first notice of a departure, because a closed link's endpoint is
// invisible to a lockstep scheduler and its queued frames drain at
// wall-clock mercy.
func (m *MemberSession) Leave() error {
	for budget := ticks(m.linger, m.tick); budget > 0; {
		data, err := m.conn.RecvTimeout(m.tick)
		if errors.Is(err, transport.ErrTimeout) {
			budget--
			continue
		}
		if err != nil {
			return m.Close()
		}
		fr, err := decodeFrame(data)
		if err != nil {
			continue
		}
		if fr.Kind == kindBye {
			return m.Close()
		}
		if fr.Kind == kindKey && fr.Epoch == m.state.Epoch() && fr.Epoch > 0 {
			m.ack(fr.Epoch)
		}
	}
	leave, err := encodeFrame(frame{Kind: kindLeave, Member: m.member})
	if err != nil {
		return m.Close()
	}
	for budget := ticks(m.linger, m.tick); budget > 0; budget-- {
		if err := m.conn.Send(leave); err != nil {
			break
		}
		data, err := m.conn.RecvTimeout(m.tick)
		if errors.Is(err, transport.ErrTimeout) {
			continue // resend the leave
		}
		if err != nil {
			break // link died: the hub has dropped us
		}
		if fr, derr := decodeFrame(data); derr == nil && fr.Kind == kindBye {
			break
		}
	}
	return m.Close()
}

// Close wipes the member's key state and closes the conn.
func (m *MemberSession) Close() error {
	m.state.Close()
	return m.conn.Close()
}

// ---------------------------------------------------------------------
// One-shot platoon driver.
// ---------------------------------------------------------------------

// waiter is the optional conn-time sleep a lora conn offers; Drive
// uses it to stagger member ignition on a shared medium.
type waiter interface{ Wait(d time.Duration) error }

// DriveConfig configures Drive, the canonical platoon run every caller
// (the platoon experiment, vkload, the public API, the e2e tests)
// shares: listen, dial every member in a fixed order, establish all
// pairwise keys concurrently, rekey, let the configured leavers
// depart, rekey the survivors, and tear down.
type DriveConfig struct {
	// Endpoint is the transport endpoint the hub listens on and every
	// member dials (tcp://, mem://, lora://…). Listen/Dial override it.
	Endpoint string
	// Listen/Dial, when both set, replace the endpoint resolution — the
	// platoon experiment passes a pre-built lockstep medium's ends here.
	Listen func() (transport.Listener, error)
	Dial   func(member uint64) (transport.Conn, error)
	// Members is the platoon size (hub excluded).
	Members int
	// Leavers marks members that depart after accepting the first group
	// key, triggering the churn rekey.
	Leavers map[uint64]bool
	// Seed roots the drive's rng sub-streams (member ignition jitter,
	// per-epoch rekey entropy).
	Seed int64
	// Hub configures the hub end; Hub.Resolve is required.
	Hub HubConfig
	// Member supplies each member's config (scheme clone + Bob windows).
	Member func(member uint64) (MemberConfig, error)
	// KeyWait bounds each member's wait for the next epoch, in conn
	// time. ≤ 0 (the default) waits indefinitely — the event-driven
	// mode a lockstep medium requires (see MemberSession.AwaitKey);
	// Drive guarantees liveness by closing every conn once the hub's
	// control phase ends. A positive wait must cover the other
	// members' whole establishment phase, which precedes the first
	// rekey.
	KeyWait time.Duration
	// LeaveWait is the wall-clock failsafe for the hub's churn wait
	// (default 60s; the departures it counts are event-driven).
	LeaveWait time.Duration
}

// DriveResult is one platoon run's accounting, built only from
// schedule-independent quantities — membership counts, epochs, key
// digests — never medium timing, so lockstep runs compare byte-for-
// byte across parallelism levels.
type DriveResult struct {
	// Established and Failed partition the members by pairwise outcome.
	Established []uint64
	Failed      []uint64
	// Rekeys records each rekey wave's fan-out accounting.
	Rekeys []RekeyOutcome
	// LeavesSeen is how many departures the hub processed.
	LeavesSeen int
	// FinalEpoch and HubDigest snapshot the hub's schedule at teardown.
	FinalEpoch uint32
	HubDigest  string
	// Accepted maps epoch → member → group-key digest, as observed by
	// the members themselves.
	Accepted map[uint32]map[uint64]string
}

// Drive runs one complete platoon session and returns its accounting.
// Dials happen serially in member order before any session goroutine
// starts, so on a lockstep lora medium the device creation order — and
// with it every draw from the medium's seed — is schedule-independent.
func Drive(cfg DriveConfig) (DriveResult, error) {
	if cfg.Members <= 0 {
		return DriveResult{}, errors.New("group: drive needs at least one member")
	}
	if cfg.Member == nil {
		return DriveResult{}, errors.New("group: drive needs a Member config callback")
	}
	if cfg.LeaveWait <= 0 {
		cfg.LeaveWait = 60 * time.Second
	}
	// Resolve every member config before the network ignites: window
	// synthesis is wall-clock compute, and in the medium's emulation
	// mode a device doing compute outside a medium operation is
	// invisible to the scheduler — the virtual clock (and with it the
	// hub's join budget) would run hundreds of seconds ahead while the
	// members are still building their windows. Under lockstep the
	// order is irrelevant (the clock freezes either way), so resolving
	// up front is correct in both modes.
	mcs := make([]MemberConfig, cfg.Members)
	for i := range mcs {
		mc, err := cfg.Member(uint64(i))
		if err != nil {
			return DriveResult{}, err
		}
		mc.Member = uint64(i)
		mcs[i] = mc
	}

	listen, dial := cfg.Listen, cfg.Dial
	if listen == nil || dial == nil {
		ep := cfg.Endpoint
		listen = func() (transport.Listener, error) { return transport.Listen(ep) }
		dial = func(uint64) (transport.Conn, error) { return transport.Dial(ep) }
	}
	l, err := listen()
	if err != nil {
		return DriveResult{}, err
	}
	defer func() { _ = l.Close() }()
	conns := make([]transport.Conn, cfg.Members)
	for i := range conns {
		conns[i], err = dial(uint64(i))
		if err != nil {
			for _, c := range conns {
				if c != nil {
					_ = c.Close()
				}
			}
			return DriveResult{}, err
		}
	}
	hs, err := NewHubSession(cfg.Hub)
	if err != nil {
		for _, c := range conns {
			_ = c.Close()
		}
		return DriveResult{}, err
	}
	defer func() { _ = hs.Close() }()

	res := DriveResult{Accepted: make(map[uint32]map[uint64]string)}
	var resMu sync.Mutex
	record := func(epoch uint32, member uint64, key []byte) {
		digest := KeyDigest(key)
		resMu.Lock()
		if res.Accepted[epoch] == nil {
			res.Accepted[epoch] = make(map[uint64]string)
		}
		res.Accepted[epoch][member] = digest
		resMu.Unlock()
	}

	var wg sync.WaitGroup
	for i := 0; i < cfg.Members; i++ {
		member, conn := uint64(i), conns[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if w, ok := conn.(waiter); ok {
				// Staggered ignition on a shared medium, one rng
				// sub-stream per member (the contention experiments'
				// jitter discipline).
				jit := rng.Stream(cfg.Seed, "group/platoon/jitter", int(member)).Uniform(0, 2)
				if err := w.Wait(time.Duration(jit * float64(time.Second))); err != nil {
					_ = conn.Close()
					return
				}
			}
			ms, err := JoinPlatoon(conn, mcs[member])
			if err != nil {
				_ = conn.Close()
				return
			}
			leaver := cfg.Leavers[member]
			for {
				key, epoch, err := ms.AwaitKey(cfg.KeyWait)
				if err != nil {
					_ = ms.Close()
					return
				}
				record(epoch, member, key)
				secure.Wipe(key)
				if leaver {
					_ = ms.Leave()
					return
				}
			}
		}()
	}

	// finish tears the session down on every exit path: hub byes first,
	// then a sweep over every member conn — members wait for the next
	// epoch indefinitely by default, so a conn that outlives the hub's
	// control phase (a failed establishment, an early error) would
	// strand its goroutine forever.
	finish := func() {
		_ = hs.Close()
		for _, c := range conns {
			_ = c.Close()
		}
		wg.Wait()
	}

	outs, err := hs.Establish(l, cfg.Members)
	if err != nil {
		finish()
		return res, err
	}
	leavers := 0
	for _, o := range outs {
		if o.Err != nil {
			res.Failed = append(res.Failed, o.Member)
			continue
		}
		res.Established = append(res.Established, o.Member)
		if cfg.Leavers[o.Member] {
			leavers++
		}
	}
	entropy := func(epoch uint32) []byte {
		return rng.Stream(cfg.Seed, "group/platoon/entropy", int(epoch)).Bits(128)
	}
	if len(res.Established) > 0 {
		ro, err := hs.Rekey(entropy(hs.Epoch() + 1))
		if err != nil {
			finish()
			return res, err
		}
		res.Rekeys = append(res.Rekeys, ro)
		if leavers > 0 {
			res.LeavesSeen = hs.AwaitLeaves(leavers, cfg.LeaveWait)
			if hs.Hub().Size() > 0 {
				ro, err := hs.Rekey(entropy(hs.Epoch() + 1))
				if err != nil {
					finish()
					return res, err
				}
				res.Rekeys = append(res.Rekeys, ro)
			}
		}
		res.FinalEpoch = hs.Epoch()
		key := hs.GroupKey()
		res.HubDigest = KeyDigest(key)
		secure.Wipe(key)
	}
	finish()
	return res, nil
}
