// Package attack implements the adversary models of the paper's Sec. III
// and the active attacks its protocol defends against (Sec. IV-C):
//
//   - Eavesdropper: a passive Eve parked near the infrastructure who
//     records every protocol message and her own channel measurements,
//     then runs the full legitimate pipeline (she knows the protocol and
//     the trained models) including feeding intercepted code vectors to
//     the reconciler.
//   - Imitator: an Eve who replays the victim's route to collect
//     correlated large-scale measurements.
//   - MITM: an active attacker on the wire who tampers with syndrome
//     messages; the MAC check must reject the round.
//   - Replayer: an attacker who re-injects captured messages; sequence
//     tracking must reject them.
//
// The passive attackers are thin, documented wrappers over
// core.System.EvaluateEve; the active ones operate on protocol messages
// through a tampering transport.
package attack

import (
	"encoding/binary"
	"hash/crc32"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Passive is a passive adversary bound to a trained system.
type Passive struct {
	Sys *core.System
	// Imitate selects the trailing-car position; false means parked near
	// the infrastructure.
	Imitate bool
}

// Agreement evaluates the attacker's best achievable key agreement
// against Bob across the dataset, including reconciler exploitation.
func (p Passive) Agreement(ds *trace.Dataset, salt []byte) (core.Metrics, error) {
	return p.Sys.EvaluateEve(ds, p.Imitate, salt)
}

// KeyProbability bounds the attacker's chance of reproducing one full
// key of bits length given her measured per-bit agreement.
func KeyProbability(perBitAgreement float64, bits int) float64 {
	p := 1.0
	for i := 0; i < bits; i++ {
		p *= perBitAgreement
	}
	return p
}

// TamperConn wraps a transport and corrupts the payload of the nth
// message that flows through Send, modeling an on-path MITM who modifies
// a syndrome. The attacker knows the wire format, so after flipping
// payload bytes it recomputes the (unkeyed) CRC32 frame header — the
// checksum only defends against random corruption; rejecting the
// tampered round is the keyed MAC's job.
type TamperConn struct {
	transport.Conn
	// TamperAt is the 1-based index of the message to corrupt.
	TamperAt int
	// Flip is the byte offset whose bits get flipped; clamped into the
	// payload (past the 4-byte checksum header).
	Flip int

	sent int
}

// Send corrupts the configured message and passes everything else
// through.
func (c *TamperConn) Send(msg []byte) error {
	c.sent++
	if c.sent == c.TamperAt && len(msg) > 0 {
		cp := make([]byte, len(msg))
		copy(cp, msg)
		idx := c.Flip
		if idx >= len(cp) {
			idx = len(cp) - 1
		}
		if idx < 4 && len(cp) > 4 {
			idx = 4
		}
		cp[idx] ^= 0xFF
		if len(cp) > 4 {
			binary.BigEndian.PutUint32(cp[:4], crc32.ChecksumIEEE(cp[4:]))
		}
		return c.Conn.Send(cp)
	}
	return c.Conn.Send(msg)
}

// ReplayConn wraps a transport and re-sends a captured message after the
// nth send, modeling a replay attacker with record/inject capability.
type ReplayConn struct {
	transport.Conn
	// ReplayAfter is the 1-based index of the message to capture and
	// immediately re-inject.
	ReplayAfter int

	sent int
}

// Send passes the message through and, at the configured point, sends it
// a second time.
func (c *ReplayConn) Send(msg []byte) error {
	c.sent++
	if err := c.Conn.Send(msg); err != nil {
		return err
	}
	if c.sent == c.ReplayAfter {
		return c.Conn.Send(msg)
	}
	return nil
}
