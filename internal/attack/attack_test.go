package attack

import (
	"sync"
	"testing"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/transport"
)

func trainSystem(t *testing.T) (*core.System, *trace.Dataset) {
	t.Helper()
	sc := trace.NewScenario(channel.Urban, channel.V2V)
	ds, err := trace.Build(sc, 51, 260, 32, trace.DefaultExtract())
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(52)
	train, _, test := ds.Split(0.8, 0.05, src.Derive("split"))
	sys := core.New(core.DefaultConfig(), src.Derive("sys"))
	if _, err := sys.Train(train, 20, src.Derive("train")); err != nil {
		t.Fatal(err)
	}
	return sys, test
}

func TestPassiveAttackers(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	sys, test := trainSystem(t)
	legit, err := sys.Evaluate(test, []byte("s"))
	if err != nil {
		t.Fatal(err)
	}
	for _, imitate := range []bool{false, true} {
		m, err := Passive{Sys: sys, Imitate: imitate}.Agreement(test, []byte("s"))
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("imitate=%v: eve=%.4f legit=%.4f", imitate, m.PostKAR, legit.PostKAR)
		if m.PostKAR >= legit.PostKAR-0.15 {
			t.Errorf("imitate=%v: Eve %.4f too close to legit %.4f", imitate, m.PostKAR, legit.PostKAR)
		}
		if m.ExactRate > 0 {
			t.Error("Eve completed a key")
		}
	}
}

func TestKeyProbability(t *testing.T) {
	if p := KeyProbability(0.5, 128); p > 3e-39 {
		t.Errorf("0.5^128 = %v too large", p)
	}
	if p := KeyProbability(0.7, 128); p > 1e-19 {
		t.Errorf("0.7^128 = %v too large", p)
	}
	if p := KeyProbability(1, 128); p != 1 {
		t.Errorf("1^128 = %v", p)
	}
}

// runProtocolWith runs the protocol with the given Bob-side connection
// wrapper and reports the outcomes.
func runProtocolWith(t *testing.T, sys *core.System, test *trace.Dataset, wrap func(transport.Conn) transport.Conn) ([]protocol.KeyOutcome, []protocol.KeyOutcome) {
	t.Helper()
	var aliceWin, bobWin [][]float64
	for _, smp := range test.Samples {
		aliceWin = append(aliceWin, smp.Alice)
		bobWin = append(bobWin, smp.Bob)
	}
	a, b := transport.Pair()
	defer a.Close()
	defer b.Close()
	bobConn := wrap(b)
	alice := protocol.NewNode(sys, a, "sess")
	bob := protocol.NewNode(sys, bobConn, "sess")
	var aliceOut, bobOut []protocol.KeyOutcome
	var wg sync.WaitGroup
	wg.Add(2)
	var aliceErr, bobErr error
	// When interference makes one side abort, close both conns so the
	// peer's blocking Recv unblocks instead of deadlocking the test.
	closeBoth := func() { a.Close(); b.Close() }
	go func() { defer wg.Done(); defer closeBoth(); bobOut, bobErr = bob.RunBob(bobWin) }()
	go func() { defer wg.Done(); defer closeBoth(); aliceOut, aliceErr = alice.RunAlice(aliceWin) }()
	wg.Wait()
	// Tampering can legitimately end the run early with an error on one
	// side; what matters is checked by callers.
	_ = aliceErr
	_ = bobErr
	return aliceOut, bobOut
}

// assertNoDivergingKeys is the essential active-attack property: under
// any on-path interference, a round that BOTH sides confirm must still
// end in identical keys; interference may only reduce the number of
// confirmed rounds or abort the run.
func assertNoDivergingKeys(t *testing.T, alice, bob []protocol.KeyOutcome) (confirmed int) {
	t.Helper()
	n := len(alice)
	if len(bob) < n {
		n = len(bob)
	}
	for i := 0; i < n; i++ {
		if !alice[i].Confirmed || !bob[i].Confirmed {
			continue
		}
		confirmed++
		if string(alice[i].Key) != string(bob[i].Key) {
			t.Fatalf("round %d confirmed with diverging keys", i)
		}
	}
	return confirmed
}

func TestMITMTamperedMessages(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	sys, test := trainSystem(t)

	clean, cleanBob := runProtocolWith(t, sys, test, func(c transport.Conn) transport.Conn { return c })
	cleanConfirmed := assertNoDivergingKeys(t, clean, cleanBob)
	if cleanConfirmed == 0 {
		t.Fatal("clean run confirmed nothing; cannot test tampering")
	}

	// Corrupt Bob's messages at several positions; whatever the attacker
	// hits (index list, syndrome, result), no diverging key may confirm.
	for _, at := range []int{1, 2, 3, 4} {
		a, b := runProtocolWith(t, sys, test, func(c transport.Conn) transport.Conn {
			return &TamperConn{Conn: c, TamperAt: at, Flip: 8}
		})
		got := assertNoDivergingKeys(t, a, b)
		t.Logf("tamper at message %d: %d confirmed (clean %d)", at, got, cleanConfirmed)
	}
}

func TestReplayInjectionIgnored(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	sys, test := trainSystem(t)
	for _, after := range []int{1, 2} {
		a, b := runProtocolWith(t, sys, test, func(c transport.Conn) transport.Conn {
			return &ReplayConn{Conn: c, ReplayAfter: after}
		})
		got := assertNoDivergingKeys(t, a, b)
		t.Logf("replay after message %d: %d confirmed", after, got)
	}
}
