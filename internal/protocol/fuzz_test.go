package protocol

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"hash/crc32"
	"testing"
)

// FuzzDecode feeds decode arbitrary bytes plus mutations of valid
// envelopes. It must never panic, and every envelope it does accept must
// respect the wire-format caps — a corrupted or hostile peer cannot
// drive allocations through oversized Indices/Code/Windows payloads.
func FuzzDecode(f *testing.F) {
	seed := []Envelope{
		{Type: MsgKept, Session: "s", Seq: 1, Window: 3, Indices: []int{1, 2, 3}},
		{Type: MsgFinal, Session: "sess-1", Seq: 9, Window: 0, Indices: []int{0, 31}},
		{Type: MsgSyndrome, Session: "s", Seq: 2, Round: 1, Code: []float64{0.5, -1.25}, MAC: bytes.Repeat([]byte{7}, 16), Windows: []int{0, 1}, Counts: []int{40, 24}},
		{Type: MsgConfirm, Session: "s", Seq: 3, Round: 1, MAC: make([]byte, 16)},
		{Type: MsgResult, Session: "s", Seq: 4, Round: 1, Accepted: true},
		{Type: MsgDone, Session: "s", Seq: 5, Round: 7},
	}
	for _, e := range seed {
		data, err := encode(e)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// A mutated-valid variant so the corpus starts near the format.
		mut := append([]byte(nil), data...)
		if len(mut) > 4 {
			mut[len(mut)/2] ^= 0xA5
			mut[len(mut)-1] ^= 0x5A
		}
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := decode(data)
		if err != nil {
			return
		}
		if e.Type < MsgKept || e.Type > MsgDone {
			t.Fatalf("decode accepted unknown type %d", e.Type)
		}
		if len(e.Indices) > MaxIndices {
			t.Fatalf("decode accepted %d indices", len(e.Indices))
		}
		if len(e.Code) > MaxCode {
			t.Fatalf("decode accepted code of %d", len(e.Code))
		}
		if len(e.MAC) > MaxMACBytes {
			t.Fatalf("decode accepted MAC of %d bytes", len(e.MAC))
		}
		if len(e.Windows) > MaxIndices || len(e.Counts) > MaxIndices {
			t.Fatalf("decode accepted %d windows / %d counts", len(e.Windows), len(e.Counts))
		}
		if e.Round < 0 || e.Round > MaxRounds {
			t.Fatalf("decode accepted round %d", e.Round)
		}
		if e.Window < 0 || e.Window > MaxIndices {
			t.Fatalf("decode accepted window %d", e.Window)
		}
	})
}

// frame wraps raw gob bytes in the CRC32 header so tests can hand decode
// envelopes that encode itself would never produce.
func frame(t *testing.T, e Envelope) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(make([]byte, 4))
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	binary.BigEndian.PutUint32(data[:4], crc32.ChecksumIEEE(data[4:]))
	return data
}

func TestDecodeRejectsOversized(t *testing.T) {
	huge := make([]int, MaxIndices+1)
	for _, e := range []Envelope{
		{Type: MsgKept, Session: "s", Seq: 1, Indices: huge},
		{Type: MsgSyndrome, Session: "s", Seq: 1, Code: make([]float64, MaxCode+1)},
		{Type: MsgSyndrome, Session: "s", Seq: 1, MAC: make([]byte, MaxMACBytes+1)},
		{Type: MsgSyndrome, Session: "s", Seq: 1, Windows: huge},
		{Type: MsgSyndrome, Session: "s", Seq: 1, Counts: huge},
		{Type: 0, Session: "s", Seq: 1},
		{Type: MsgDone + 1, Session: "s", Seq: 1},
		// A hostile Round used to drive RunAlice's failure back-fill
		// loops (and the per-round bookkeeping they allocate) to any
		// length the peer picked; decode now rejects it at the wire.
		{Type: MsgDone, Session: "s", Seq: 1, Round: MaxRounds + 1},
		{Type: MsgSyndrome, Session: "s", Seq: 1, Round: -1},
		{Type: MsgKept, Session: "s", Seq: 1, Window: MaxIndices + 1},
		{Type: MsgKept, Session: "s", Seq: 1, Window: -1},
	} {
		if _, err := decode(frame(t, e)); err == nil {
			t.Fatalf("decode accepted out-of-bounds envelope %+v", e.Type)
		}
	}
	if _, err := decode(make([]byte, MaxEnvelopeBytes+1)); err == nil {
		t.Fatal("decode accepted an envelope beyond the byte cap")
	}
}

func TestDecodeRejectsCorruptFrame(t *testing.T) {
	data, err := encode(Envelope{Type: MsgKept, Session: "s", Seq: 1, Indices: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decode(data); err != nil {
		t.Fatalf("intact frame rejected: %v", err)
	}
	for _, pos := range []int{0, 2, 4, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[pos] ^= 0x40
		if _, err := decode(bad); err == nil {
			t.Fatalf("flipped byte %d went undetected", pos)
		}
	}
	if _, err := decode(data[:3]); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	e := Envelope{
		Type: MsgSyndrome, Session: "round-trip", Seq: 42, Round: 3,
		Code: []float64{1, 2.5, -3}, MAC: bytes.Repeat([]byte{9}, 16),
		Windows: []int{0, 2, 5}, Counts: []int{40, 38, 44},
	}
	data, err := encode(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Session != e.Session || got.Seq != e.Seq || got.Round != e.Round ||
		len(got.Code) != len(e.Code) || len(got.Windows) != len(e.Windows) {
		t.Fatalf("round trip mangled envelope: %+v", got)
	}
}
