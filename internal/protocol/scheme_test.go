package protocol

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/nist"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/transport"

	// Registers the lora-key/han/gao schemes with core's registry; the
	// test drives them purely through pipeline.Scheme.
	_ "repro/internal/baselines"
)

// baselineNames are the training-free schemes the paper compares
// against; each must run over the wire through the same Node code path
// as Vehicle-Key.
var baselineNames = []string{"lora-key", "han", "gao"}

// baselineHarness builds a named baseline scheme by registry lookup and
// correlated per-packet RSSI windows for both sides from one simulated
// collector run. Baselines are training-free, so unlike trainSystem
// there is no fitting step — the harness is ready as constructed.
func baselineHarness(t *testing.T, name string, seed int64, windows, winLen int) *soakHarness {
	t.Helper()
	sys, err := core.NewScheme(name, core.DefaultConfig(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	sc := trace.NewScenario(channel.Urban, channel.V2I)
	col := trace.NewCollector(sc, seed)
	ex := col.Run(windows * winLen)
	alice, bob := trace.PRSSI(ex)
	h := &soakHarness{sys: sys}
	for i := 0; i+winLen <= len(alice) && len(h.aliceWin) < windows; i += winLen {
		h.aliceWin = append(h.aliceWin, alice[i:i+winLen])
		h.bobWin = append(h.bobWin, bob[i:i+winLen])
	}
	return h
}

// unpackKeyBits expands key bytes into the 0/1 slice the NIST battery
// consumes.
func unpackKeyBits(keys [][]byte) []byte {
	var out []byte
	for _, k := range keys {
		for _, b := range k {
			for i := 7; i >= 0; i-- {
				out = append(out, b>>uint(i)&1)
			}
		}
	}
	return out
}

// TestBaselineSchemesOverProtocol runs each baseline through the full
// wire protocol on a clean in-memory link — the same Node code path
// Vehicle-Key uses, selected purely by registry name — and feeds the
// confirmed key material through the NIST battery. It is the refactor's
// end-to-end check: no baseline needs (or has) protocol code of its own.
//
// Han is the exception the paper predicts: its guard-less 3-bit
// quantizer runs at roughly a third of the block mismatched on the
// vehicular channel, and correcting that in one shot needs more public
// parity than the 64-bit block holds. The leakage-bounded wire Cascade
// (reconcile.CascadeSyndromeBits < block bits, enforced by the stage)
// therefore cannot reconcile it — rounds complete, both sides agree
// essentially nothing confirms, and that verdict is the assertion. A
// wire encode that made han confirm here would necessarily be
// publishing enough equations to solve for the key, which is exactly
// the defect this pins against.
func TestBaselineSchemesOverProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("full protocol soak per scheme")
	}
	cases := []struct {
		name string
		// wireFeasible: the scheme's residual mismatch is within what
		// its reconciler can repair under the public-leakage bound, so
		// confirmed key material must flow and pass the NIST battery.
		wireFeasible bool
	}{
		{"lora-key", true},
		{"han", false},
		{"gao", true},
	}
	for i, tc := range cases {
		tc, seed := tc, int64(400+31*i)
		t.Run(tc.name, func(t *testing.T) {
			h := baselineHarness(t, tc.name, seed, 16, 160)
			a, b := transport.Pair()
			defer a.Close()
			defer b.Close()
			aliceOut, bobOut := runProtocol(t, h.sys, h.aliceWin, h.bobWin, a, b)
			confirmed := verifyOutcomes(t, aliceOut, bobOut)

			if !tc.wireFeasible {
				if len(aliceOut) == 0 {
					t.Fatalf("%s produced no rounds at all", tc.name)
				}
				if confirmed*10 > len(aliceOut) {
					t.Fatalf("%s confirmed %d/%d blocks at ~35%% block BER under a %d-bit-bounded syndrome — the wire code is leaking the key", tc.name, confirmed, len(aliceOut), 64)
				}
				return
			}
			if confirmed == 0 {
				t.Fatal("no confirmed keys")
			}

			var keys [][]byte
			for i := range aliceOut {
				if aliceOut[i].Confirmed {
					keys = append(keys, aliceOut[i].Key)
				}
			}
			bits := unpackKeyBits(keys)
			if len(bits) > 4096 {
				bits = bits[:4096] // bound LinearComplexity's quadratic cost
			}
			if len(bits) < nist.MinBits {
				t.Fatalf("%s confirmed only %d key bits, below the battery's %d-bit floor", tc.name, len(bits), nist.MinBits)
			}
			results, err := nist.Battery(bits)
			if err != nil {
				t.Fatalf("nist battery over %s keys: %v", tc.name, err)
			}
			passed := 0
			for _, r := range results {
				t.Logf("%s: %s p=%.4f passed=%t", tc.name, r.Name, r.P, r.Passed)
				if r.Passed {
					passed++
				}
			}
			// Amplified keys are hash output; with a deterministic run a
			// hard majority bound is stable while leaving room for the
			// battery's per-test 1% false-reject rate on short streams.
			if passed < len(results)-1 {
				t.Fatalf("%s: only %d/%d NIST tests passed over %d bits", tc.name, passed, len(results), len(bits))
			}
		})
	}
}

// TestBaselineSchemesUnderFaults drives every baseline through the
// retry/resync layer over a lossy link grid. The property is the same
// one the Vehicle-Key soak pins: a round confirmed by both sides never
// diverges, no matter the scheme or the link, and injected loss actually
// exercises the retransmit path.
func TestBaselineSchemesUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("full protocol soak per scheme and loss cell")
	}
	cells := []struct {
		name string
		cfg  transport.FaultConfig
	}{
		{"loss10/reorder", transport.FaultConfig{Drop: 0.10, Reorder: 0.20}},
		{"loss25/duplicate", transport.FaultConfig{Drop: 0.25, Duplicate: 0.20}},
	}
	for i, name := range baselineNames {
		name, seed := name, int64(500+31*i)
		t.Run(name, func(t *testing.T) {
			h := baselineHarness(t, name, seed, 6, 160)
			for j, cell := range cells {
				cell, cellSeed := cell, seed+int64(1000+17*j)
				t.Run(cell.name, func(t *testing.T) {
					aliceOut, bobOut, aliceNode, bobNode := runUnderFaults(t, h, cell.cfg, cellSeed)
					agreed := agreedKeys(t, name+"/"+cell.name, aliceOut, bobOut)
					as, bs := aliceNode.Stats(), bobNode.Stats()
					t.Logf("%s/%s: agreed=%d aliceStats=%+v bobStats=%+v", name, cell.name, agreed, as, bs)
					if as.Retransmits+bs.Retransmits == 0 {
						t.Fatalf("%s/%s: loss injected but nobody retransmitted", name, cell.name)
					}
				})
			}
		})
	}
}
