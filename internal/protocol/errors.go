package protocol

import (
	"errors"
	"fmt"
)

// Sentinel errors callers branch on with errors.Is. They classify why a
// reconciliation round produced no key; KeyOutcome.Err carries them
// wrapped in a RoundError.
var (
	// ErrConfirmFailed reports a round whose key confirmation was
	// rejected: the peers reconciled to different bits (residual channel
	// mismatch) or the CONFIRM tag was tampered with.
	ErrConfirmFailed = errors.New("protocol: key confirmation failed")
	// ErrPeerTimeout reports a round (or window) the peer never finished:
	// retries were exhausted waiting for its next message.
	ErrPeerTimeout = errors.New("protocol: peer timed out")
)

// RoundError locates a round failure: which round, and in which exchange
// phase ("final", "syndrome", "confirm", "result") it died. It wraps one
// of the sentinels above, so errors.Is(err, ErrPeerTimeout) and
// errors.As(err, &re) both work.
type RoundError struct {
	Round int
	Phase string
	Err   error
}

func (e *RoundError) Error() string {
	return fmt.Sprintf("protocol: round %d (%s): %v", e.Round, e.Phase, e.Err)
}

func (e *RoundError) Unwrap() error { return e.Err }

// roundErr builds the KeyOutcome.Err value for a failed round.
func roundErr(round int, phase string, sentinel error) *RoundError {
	return &RoundError{Round: round, Phase: phase, Err: sentinel}
}
