package protocol

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/transport"
)

// soakPolicy keeps retransmit timers far above in-memory latency (so the
// schedule is not scheduler-sensitive) but small enough that a 25%-loss
// run completes in seconds.
func soakPolicy() RetryPolicy {
	return RetryPolicy{Timeout: 40 * time.Millisecond, MaxTimeout: 400 * time.Millisecond, Backoff: 2, MaxRetries: 8}
}

// runUnderFaults runs a full key establishment over a faulty in-memory
// pair and returns both sides' outcomes plus the node stats.
func runUnderFaults(t *testing.T, h *soakHarness, cfg transport.FaultConfig, seed int64) (aliceOut, bobOut []KeyOutcome, aliceNode, bobNode *Node) {
	t.Helper()
	a, b := transport.FaultyPair(cfg, rng.New(seed))
	alice := NewNode(h.sys, a, "soak", WithRetryPolicy(soakPolicy()))
	bob := NewNode(h.sys, b, "soak", WithRetryPolicy(soakPolicy()))
	var wg sync.WaitGroup
	wg.Add(2)
	var aliceErr, bobErr error
	// Either side finishing ends the session: close both ends so the
	// peer's tail timeouts collapse instead of running their full budget.
	closeBoth := func() { a.Close(); b.Close() }
	go func() { defer wg.Done(); defer closeBoth(); bobOut, bobErr = bob.RunBob(h.bobWin) }()
	go func() { defer wg.Done(); defer closeBoth(); aliceOut, aliceErr = alice.RunAlice(h.aliceWin) }()
	wg.Wait()
	if aliceErr != nil {
		t.Fatalf("alice: %v", aliceErr)
	}
	if bobErr != nil {
		t.Fatalf("bob: %v", bobErr)
	}
	return aliceOut, bobOut, alice, bob
}

type soakHarness struct {
	sys      *core.System
	aliceWin [][]float64
	bobWin   [][]float64
}

// agreedKeys counts rounds confirmed by BOTH sides and fails the test if
// any such round ends with different key bytes — the property the paper's
// confirmation step guarantees regardless of link quality.
func agreedKeys(t *testing.T, label string, aliceOut, bobOut []KeyOutcome) int {
	t.Helper()
	byRound := make(map[int]KeyOutcome, len(aliceOut))
	for _, o := range aliceOut {
		byRound[o.Round] = o
	}
	agreed := 0
	for _, b := range bobOut {
		a, ok := byRound[b.Round]
		if !ok || !a.Confirmed || !b.Confirmed {
			continue
		}
		if !bytes.Equal(a.Key, b.Key) {
			t.Fatalf("%s: round %d confirmed on both sides with diverging keys", label, b.Round)
		}
		if len(a.Key) != 16 {
			t.Fatalf("%s: round %d key length %d", label, b.Round, len(a.Key))
		}
		agreed++
	}
	return agreed
}

// TestProtocolUnderFaults soaks the full key establishment across a
// loss × fault-mode grid with fixed seeds. The retry/resync layer must
// keep the agreed-key count within 80% of the fault-free run in every
// cell, with byte-identical keys on both ends throughout.
func TestProtocolUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	sys, aliceWin, bobWin := trainSystem(t)
	h := &soakHarness{sys: sys, aliceWin: aliceWin, bobWin: bobWin}

	baseAlice, baseBob, _, _ := runUnderFaults(t, h, transport.FaultConfig{}, 1000)
	baseline := agreedKeys(t, "fault-free", baseAlice, baseBob)
	if baseline < 5 {
		t.Fatalf("fault-free baseline agreed only %d keys; soak thresholds would be vacuous", baseline)
	}
	minAgreed := (baseline*8 + 9) / 10 // ceil(0.8 × baseline)

	cells := []struct {
		name string
		cfg  transport.FaultConfig
	}{
		{"loss00/reorder", transport.FaultConfig{Drop: 0.00, Reorder: 0.20}},
		{"loss00/duplicate", transport.FaultConfig{Drop: 0.00, Duplicate: 0.20}},
		{"loss00/corrupt", transport.FaultConfig{Drop: 0.00, Corrupt: 0.20}},
		{"loss10/reorder", transport.FaultConfig{Drop: 0.10, Reorder: 0.20}},
		{"loss10/duplicate", transport.FaultConfig{Drop: 0.10, Duplicate: 0.20}},
		{"loss10/corrupt", transport.FaultConfig{Drop: 0.10, Corrupt: 0.20}},
		{"loss25/reorder", transport.FaultConfig{Drop: 0.25, Reorder: 0.20}},
		{"loss25/duplicate", transport.FaultConfig{Drop: 0.25, Duplicate: 0.20}},
		{"loss25/corrupt", transport.FaultConfig{Drop: 0.25, Corrupt: 0.20}},
	}
	for i, cell := range cells {
		cell := cell
		seed := int64(2000 + 17*i)
		t.Run(cell.name, func(t *testing.T) {
			aliceOut, bobOut, aliceNode, bobNode := runUnderFaults(t, h, cell.cfg, seed)
			agreed := agreedKeys(t, cell.name, aliceOut, bobOut)
			as, bs := aliceNode.Stats(), bobNode.Stats()
			t.Logf("%s: agreed=%d (baseline %d, floor %d) bobStats=%+v aliceStats=%+v",
				cell.name, agreed, baseline, minAgreed, bs, as)
			if agreed < minAgreed {
				t.Fatalf("%s: agreed %d keys, below floor %d (baseline %d)", cell.name, agreed, minAgreed, baseline)
			}
			if cell.cfg.Enabled() && bs.Retransmits+as.Retransmits == 0 && cell.cfg.Drop > 0 {
				t.Fatalf("%s: loss injected but nobody retransmitted — fault path untested", cell.name)
			}
		})
	}
}

// TestProtocolAbandonsDeadPeer pins graceful degradation: with the link
// dropping everything, both sides must give up in bounded time with
// failed (not fatal) outcomes.
func TestProtocolAbandonsDeadPeer(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	sys, aliceWin, bobWin := trainSystem(t)
	h := &soakHarness{sys: sys, aliceWin: aliceWin[:3], bobWin: bobWin[:3]}
	fast := RetryPolicy{Timeout: 5 * time.Millisecond, MaxTimeout: 10 * time.Millisecond, Backoff: 2, MaxRetries: 2}

	a, b := transport.FaultyPair(transport.FaultConfig{Drop: 1}, rng.New(77))
	alice := NewNode(h.sys, a, "dead", WithRetryPolicy(fast))
	bob := NewNode(h.sys, b, "dead", WithRetryPolicy(fast))
	var wg sync.WaitGroup
	wg.Add(2)
	var aliceOut, bobOut []KeyOutcome
	var aliceErr, bobErr error
	go func() { defer wg.Done(); bobOut, bobErr = bob.RunBob(h.bobWin) }()
	go func() { defer wg.Done(); aliceOut, aliceErr = alice.RunAlice(h.aliceWin) }()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("protocol did not abandon a dead link in bounded time")
	}
	a.Close()
	b.Close()
	if aliceErr != nil || bobErr != nil {
		t.Fatalf("dead link must degrade, not error: alice=%v bob=%v", aliceErr, bobErr)
	}
	for _, o := range append(aliceOut, bobOut...) {
		if o.Confirmed {
			t.Fatal("confirmed a key over a link that delivered nothing")
		}
	}
	if bob.Stats().AbandonedWindows != 3 {
		t.Fatalf("bob should have abandoned all 3 windows: %+v", bob.Stats())
	}
}
