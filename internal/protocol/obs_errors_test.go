package protocol

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/transport"
)

// TestRoundErrorSemantics pins the typed-error contract callers branch
// on: errors.Is reaches the sentinel through RoundError, errors.As
// recovers the round and phase.
func TestRoundErrorSemantics(t *testing.T) {
	err := error(roundErr(4, "result", ErrConfirmFailed))
	if !errors.Is(err, ErrConfirmFailed) {
		t.Error("errors.Is(err, ErrConfirmFailed) = false")
	}
	if errors.Is(err, ErrPeerTimeout) {
		t.Error("err wrongly matches ErrPeerTimeout")
	}
	var re *RoundError
	if !errors.As(err, &re) {
		t.Fatal("errors.As failed")
	}
	if re.Round != 4 || re.Phase != "result" {
		t.Errorf("RoundError fields = %+v", re)
	}
}

// TestOutcomeErrAndRecorder runs the full protocol once over a clean
// in-memory link with both nodes recording into one registry, and checks
// the two additions of this layer together: every outcome's Err
// classifies correctly, and the recorder's counters agree with the
// nodes' own Stats.
func TestOutcomeErrAndRecorder(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	sys, aliceWin, bobWin := trainSystem(t)
	a, b := transport.Pair()
	defer a.Close()
	defer b.Close()

	reg := obs.NewRegistry()
	obs.DeclareStandard(reg)
	sys.SetRecorder(reg)
	alice := NewNode(sys, a, "sess-obs", WithRecorder(reg))
	bob := NewNode(sys, b, "sess-obs", WithRecorder(reg))
	var aliceOut, bobOut []KeyOutcome
	var aliceErr, bobErr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); bobOut, bobErr = bob.RunBob(bobWin) }()
	go func() { defer wg.Done(); aliceOut, aliceErr = alice.RunAlice(aliceWin) }()
	wg.Wait()
	if aliceErr != nil || bobErr != nil {
		t.Fatalf("run: alice=%v bob=%v", aliceErr, bobErr)
	}
	checkOutcomes(t, aliceOut, bobOut)

	confirmed := 0
	for _, out := range [][]KeyOutcome{aliceOut, bobOut} {
		for _, o := range out {
			if o.Confirmed {
				confirmed++
				if o.Err != nil {
					t.Errorf("round %d confirmed but Err = %v", o.Round, o.Err)
				}
				continue
			}
			var re *RoundError
			if !errors.As(o.Err, &re) {
				t.Errorf("round %d failed without a RoundError: %v", o.Round, o.Err)
				continue
			}
			if !errors.Is(o.Err, ErrPeerTimeout) && !errors.Is(o.Err, ErrConfirmFailed) {
				t.Errorf("round %d Err wraps neither sentinel: %v", o.Round, o.Err)
			}
			if re.Round != o.Round {
				t.Errorf("RoundError.Round = %d, want %d", re.Round, o.Round)
			}
		}
	}

	s := reg.Snapshot()
	wantSent := int64(alice.Stats().Sent + bob.Stats().Sent)
	if got := s.Counters[obs.ProtocolSent]; got != wantSent {
		t.Errorf("vk_protocol_sent_total = %d, want %d (sum of node Stats)", got, wantSent)
	}
	wantRetrans := int64(alice.Stats().Retransmits + bob.Stats().Retransmits)
	if got := s.Counters[obs.ProtocolRetransmits]; got != wantRetrans {
		t.Errorf("vk_protocol_retransmits_total = %d, want %d", got, wantRetrans)
	}
	if got := s.Counters[obs.ProtocolKeysConfirmed]; got != int64(confirmed) {
		t.Errorf("vk_protocol_keys_confirmed_total = %d, want %d", got, confirmed)
	}
	if s.Histograms[obs.ProtocolRoundSeconds].Count == 0 {
		t.Error("no round-latency samples recorded")
	}
	// Both endpoints share one trained System, so the pipeline phases the
	// protocol exercises (quantize on Bob, predict on Alice) recorded too.
	if s.Histograms[`vk_pipeline_phase_seconds{phase="quantize"}`].Count == 0 {
		t.Error("no quantize-phase samples recorded")
	}
}
