// Package protocol runs the Vehicle-Key key-establishment message flow
// between two real endpoints over a transport.Conn:
//
//	Bob  → Alice  KEPT      Bob's guard-band kept sample indices
//	Alice → Bob   FINAL     the confidence-intersected final indices
//	Bob  → Alice  SYNDROME  the autoencoder code vector y_Bob + MAC
//	Alice → Bob   CONFIRM   HMAC key confirmation
//	Bob  → Alice  RESULT    confirm/deny
//
// Both sides accumulate kept bits across rounds and emit a 128-bit
// session key whenever a reconciliation block completes and confirms.
// Syndromes are authenticated with a MAC keyed by the sender's
// Bloom-domain key (Sec. IV-C's MITM defence), and every message carries
// a session ID and strictly increasing sequence number (replay defence).
package protocol

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"repro/internal/amplify"
	"repro/internal/core"
	"repro/internal/reconcile"
	"repro/internal/secure"
	"repro/internal/transport"
)

// MsgType enumerates protocol messages.
type MsgType int

// Protocol message types.
const (
	MsgKept MsgType = iota + 1
	MsgFinal
	MsgSyndrome
	MsgConfirm
	MsgResult
)

// Envelope is the wire format.
type Envelope struct {
	Type    MsgType
	Session string
	Seq     uint64

	Indices  []int     // MsgKept, MsgFinal
	Code     []float64 // MsgSyndrome
	MAC      []byte    // MsgSyndrome, MsgConfirm
	Round    int       // block counter for MsgSyndrome/Confirm/Result
	Accepted bool      // MsgResult
}

func encode(e Envelope) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		return nil, fmt.Errorf("protocol: encode: %w", err)
	}
	return buf.Bytes(), nil
}

func decode(data []byte) (Envelope, error) {
	var e Envelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&e); err != nil {
		return Envelope{}, fmt.Errorf("protocol: decode: %w", err)
	}
	return e, nil
}

// Node is one protocol endpoint.
type Node struct {
	Sys     *core.System
	Conn    transport.Conn
	Session string

	guard *secure.ReplayGuard
	seq   uint64
}

// NewNode wraps a trained system and a connection into an endpoint.
func NewNode(sys *core.System, conn transport.Conn, session string) *Node {
	return &Node{Sys: sys, Conn: conn, Session: session, guard: secure.NewReplayGuard()}
}

func (n *Node) send(e Envelope) error {
	n.seq++
	e.Session = n.Session
	e.Seq = n.seq
	data, err := encode(e)
	if err != nil {
		return err
	}
	return n.Conn.Send(data)
}

func (n *Node) recv(want MsgType) (Envelope, error) {
	data, err := n.Conn.Recv()
	if err != nil {
		return Envelope{}, err
	}
	e, err := decode(data)
	if err != nil {
		return Envelope{}, err
	}
	if e.Session != n.Session {
		return Envelope{}, fmt.Errorf("protocol: session mismatch %q", e.Session)
	}
	if err := n.guard.Check("peer:"+e.Session, e.Seq); err != nil {
		return Envelope{}, err
	}
	if e.Type != want {
		return Envelope{}, fmt.Errorf("protocol: got message type %d, want %d", e.Type, want)
	}
	return e, nil
}

// KeyOutcome is one established (or failed) key block.
type KeyOutcome struct {
	Key       []byte // 128-bit session key (nil when !Confirmed)
	Confirmed bool
	Round     int
}

// sessionSalt derives the round's public salt.
func sessionSalt(session string, round int) []byte {
	return []byte(fmt.Sprintf("vk/%s/%d", session, round))
}

// RunBob drives Bob's side over the measurement windows (his normalized
// arRSSI sequences, one per probing round) and returns the confirmed
// keys.
func (n *Node) RunBob(windows [][]float64) ([]KeyOutcome, error) {
	var buf []byte
	var out []KeyOutcome
	round := 0
	block := n.Sys.Cfg.KeyBlockBits
	for _, seq := range windows {
		bits, kept, err := n.Sys.BobQuantize(seq)
		if err != nil {
			return nil, err
		}
		if err := n.send(Envelope{Type: MsgKept, Indices: kept}); err != nil {
			return nil, err
		}
		fin, err := n.recv(MsgFinal)
		if err != nil {
			return nil, err
		}
		buf = append(buf, core.SelectAt(bits, kept, fin.Indices, n.Sys.Cfg.BitsPerSample)...)

		for len(buf) >= block {
			res, err := n.bobBlock(buf[:block], round)
			if err != nil {
				return nil, err
			}
			out = append(out, res)
			buf = buf[block:]
			round++
		}
	}
	return out, nil
}

func (n *Node) bobBlock(bits []byte, round int) (KeyOutcome, error) {
	salt := sessionSalt(n.Session, round)
	bf := reconcile.NewBloomFilter(n.Sys.Cfg.KeyBlockBits, salt)
	bloomKey := bf.Transform(bits)
	code := n.Sys.AE.EncodeBob(bloomKey)
	mac := secure.MAC(bloomKey, floatsToBytes(code))
	if err := n.send(Envelope{Type: MsgSyndrome, Code: code, MAC: mac, Round: round}); err != nil {
		return KeyOutcome{}, err
	}
	conf, err := n.recv(MsgConfirm)
	if err != nil {
		return KeyOutcome{}, err
	}
	expect := secure.MAC(bits, salt)
	accepted := bytes.Equal(conf.MAC, expect)
	if err := n.send(Envelope{Type: MsgResult, Round: round, Accepted: accepted}); err != nil {
		return KeyOutcome{}, err
	}
	if !accepted {
		return KeyOutcome{Round: round}, nil
	}
	key, err := amplify.Amplify(bits, salt)
	if err != nil {
		return KeyOutcome{}, err
	}
	return KeyOutcome{Key: key, Confirmed: true, Round: round}, nil
}

// RunAlice drives Alice's side over her measurement windows (aligned with
// Bob's) and returns the confirmed keys.
func (n *Node) RunAlice(windows [][]float64) ([]KeyOutcome, error) {
	var buf []byte
	var out []KeyOutcome
	round := 0
	block := n.Sys.Cfg.KeyBlockBits
	for _, seq := range windows {
		kept, err := n.recv(MsgKept)
		if err != nil {
			return nil, err
		}
		bits, final := n.Sys.AliceSelect(seq, kept.Indices)
		if err := n.send(Envelope{Type: MsgFinal, Indices: final}); err != nil {
			return nil, err
		}
		buf = append(buf, bits...)

		for len(buf) >= block {
			res, err := n.aliceBlock(buf[:block], round)
			if err != nil {
				return nil, err
			}
			out = append(out, res)
			buf = buf[block:]
			round++
		}
	}
	return out, nil
}

func (n *Node) aliceBlock(bits []byte, round int) (KeyOutcome, error) {
	salt := sessionSalt(n.Session, round)
	syn, err := n.recv(MsgSyndrome)
	if err != nil {
		return KeyOutcome{}, err
	}
	bf := reconcile.NewBloomFilter(n.Sys.Cfg.KeyBlockBits, salt)
	bloomKey := bf.Transform(bits)
	corrected := n.Sys.AE.Correct(bloomKey, syn.Code)

	// MAC check: if our corrected key equals Bob's, his MAC verifies
	// under it. A failed MAC means either residual mismatch or tampering;
	// both end in rejection (Sec. IV-C).
	macOK := secure.VerifyMAC(corrected, floatsToBytes(syn.Code), syn.MAC)

	final := bf.Inverse(corrected)
	if err := n.send(Envelope{Type: MsgConfirm, MAC: secure.MAC(final, salt), Round: round}); err != nil {
		return KeyOutcome{}, err
	}
	res, err := n.recv(MsgResult)
	if err != nil {
		return KeyOutcome{}, err
	}
	if !res.Accepted || !macOK {
		return KeyOutcome{Round: round}, nil
	}
	key, err := amplify.Amplify(final, salt)
	if err != nil {
		return KeyOutcome{}, err
	}
	return KeyOutcome{Key: key, Confirmed: true, Round: round}, nil
}

func floatsToBytes(xs []float64) []byte {
	out := make([]byte, 0, len(xs)*8)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(xs); err != nil {
		return nil
	}
	out = append(out, buf.Bytes()...)
	return out
}

// ErrNoKeys reports a run that produced no confirmed keys.
var ErrNoKeys = errors.New("protocol: no confirmed keys")
