// Package protocol runs the Vehicle-Key key-establishment message flow
// between two real endpoints over a transport.Conn:
//
//	Bob  → Alice  KEPT      Bob's guard-band kept sample indices (window w)
//	Alice → Bob   FINAL     the confidence-intersected final indices
//	Bob  → Alice  SYNDROME  the autoencoder code vector y_Bob + MAC (round r)
//	Alice → Bob   CONFIRM   HMAC key confirmation
//	Bob  → Alice  RESULT    confirm/deny
//	Bob  ⇄ Alice  DONE      end-of-session handshake (total round count)
//
// Both sides accumulate kept bits across rounds and emit a 128-bit
// session key whenever a reconciliation block completes and confirms.
// Syndromes are authenticated with a MAC keyed by the sender's
// Bloom-domain key (Sec. IV-C's MITM defence), and every message carries
// a session ID and a sequence number checked against a sliding replay
// window (replay defence).
//
// # Loss tolerance
//
// The paper's protocol runs over lossy LoRa links (Sec. IV: rounds simply
// retry), so the transport is treated as unreliable. Every expected
// message is awaited under a per-attempt timeout; on timeout the sender
// retransmits the message that elicits it, with exponential backoff, up
// to RetryPolicy.MaxRetries times. Retransmits are fresh envelopes (new
// sequence number, identical content), so the replay window never blocks
// them; the receiver deduplicates semantically by (type, window/round)
// and answers a retransmitted request by re-sending its cached reply.
// A window or round that exhausts its retries is abandoned — it counts as
// a failed outcome — and the session resynchronizes on the next one
// instead of erroring out. Bob's syndromes carry the ordered list of
// windows (and their bit counts) that feed his key stream, so Alice
// reconstructs exactly the block Bob reconciled even when some of her
// windows never made it into his stream.
package protocol

import (
	"bytes"
	"crypto/subtle"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/secure"
	"repro/internal/transport"
)

// MsgType enumerates protocol messages.
type MsgType int

// Protocol message types.
const (
	MsgKept MsgType = iota + 1
	MsgFinal
	MsgSyndrome
	MsgConfirm
	MsgResult
	MsgDone
)

// Envelope is the wire format.
//
//vklint:wire -- decoded from untrusted peers; treat field reads as hostile
type Envelope struct {
	Type    MsgType
	Session string
	Seq     uint64

	Window   int       // probing-window index for MsgKept/MsgFinal
	Indices  []int     // MsgKept, MsgFinal
	Code     []float64 // MsgSyndrome
	MAC      []byte    // MsgSyndrome, MsgConfirm
	Round    int       // block counter for MsgSyndrome/Confirm/Result; total for MsgDone
	Accepted bool      // MsgResult

	// Windows/Counts (MsgSyndrome) describe Bob's key stream: the ordered
	// window indices whose bits were appended, and how many bits each
	// contributed, so Alice can assemble the identical block even when
	// some windows were abandoned on one side.
	Windows []int
	Counts  []int
}

// Wire-format hard limits: decode rejects anything beyond these instead
// of letting a corrupted or hostile envelope drive allocations.
const (
	// MaxEnvelopeBytes bounds one encoded envelope.
	MaxEnvelopeBytes = 1 << 20
	// MaxIndices bounds the Indices, Windows, and Counts lists.
	MaxIndices = 1 << 14
	// MaxCode bounds the syndrome code vector.
	MaxCode = 1 << 14
	// MaxMACBytes bounds the MAC field.
	MaxMACBytes = 64
	// MaxRounds bounds the block counter a peer may announce (Round on
	// MsgSyndrome/Confirm/Result, the total on MsgDone). Without it a
	// hostile DONE drives the receive loops' failure back-fill — and the
	// per-round bookkeeping it allocates — to any length the peer picks.
	MaxRounds = 1 << 14
)

// The wire format frames the gob payload behind a CRC32 so that link
// corruption is detected at decode and handled like loss (the sender
// retransmits) instead of leaking altered content into a round, where it
// would only surface as a MAC mismatch and burn the whole round.
func encode(e Envelope) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(make([]byte, 4))
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		return nil, fmt.Errorf("protocol: encode: %w", err)
	}
	data := buf.Bytes()
	binary.BigEndian.PutUint32(data[:4], crc32.ChecksumIEEE(data[4:]))
	return data, nil
}

func decode(data []byte) (Envelope, error) {
	if len(data) > MaxEnvelopeBytes {
		return Envelope{}, fmt.Errorf("protocol: decode: envelope %d bytes exceeds cap %d", len(data), MaxEnvelopeBytes)
	}
	if len(data) < 4 {
		return Envelope{}, fmt.Errorf("protocol: decode: short frame (%d bytes)", len(data))
	}
	if want := binary.BigEndian.Uint32(data[:4]); want != crc32.ChecksumIEEE(data[4:]) {
		return Envelope{}, fmt.Errorf("protocol: decode: checksum mismatch")
	}
	var e Envelope
	if err := gob.NewDecoder(bytes.NewReader(data[4:])).Decode(&e); err != nil {
		return Envelope{}, fmt.Errorf("protocol: decode: %w", err)
	}
	switch {
	case e.Type < MsgKept || e.Type > MsgDone:
		return Envelope{}, fmt.Errorf("protocol: decode: unknown message type %d", e.Type)
	case len(e.Indices) > MaxIndices:
		return Envelope{}, fmt.Errorf("protocol: decode: %d indices exceeds cap %d", len(e.Indices), MaxIndices)
	case len(e.Code) > MaxCode:
		return Envelope{}, fmt.Errorf("protocol: decode: code length %d exceeds cap %d", len(e.Code), MaxCode)
	case len(e.MAC) > MaxMACBytes:
		return Envelope{}, fmt.Errorf("protocol: decode: MAC length %d exceeds cap %d", len(e.MAC), MaxMACBytes)
	case len(e.Windows) > MaxIndices:
		return Envelope{}, fmt.Errorf("protocol: decode: %d windows exceeds cap %d", len(e.Windows), MaxIndices)
	case len(e.Counts) > MaxIndices:
		return Envelope{}, fmt.Errorf("protocol: decode: %d counts exceeds cap %d", len(e.Counts), MaxIndices)
	case e.Round < 0 || e.Round > MaxRounds:
		return Envelope{}, fmt.Errorf("protocol: decode: round %d outside [0, %d]", e.Round, MaxRounds)
	case e.Window < 0 || e.Window > MaxIndices:
		return Envelope{}, fmt.Errorf("protocol: decode: window %d outside [0, %d]", e.Window, MaxIndices)
	}
	return e, nil
}

// RetryPolicy configures the per-message timeout/retransmit behavior.
type RetryPolicy struct {
	// Timeout is the initial per-attempt receive deadline.
	Timeout time.Duration
	// MaxTimeout caps the backed-off deadline.
	MaxTimeout time.Duration
	// Backoff multiplies the deadline after each timeout (≥ 1).
	Backoff float64
	// MaxRetries is how many retransmissions are attempted before an
	// exchange is abandoned.
	MaxRetries int
}

// DefaultRetryPolicy suits real (UDP, cross-process) links: generous
// initial deadline, ~8 retransmits with exponential backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Timeout: 500 * time.Millisecond, MaxTimeout: 4 * time.Second, Backoff: 1.6, MaxRetries: 8}
}

func (p RetryPolicy) normalize() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.Timeout <= 0 {
		p.Timeout = d.Timeout
	}
	if p.MaxTimeout < p.Timeout {
		p.MaxTimeout = 8 * p.Timeout
	}
	if p.Backoff < 1 {
		p.Backoff = d.Backoff
	}
	if p.MaxRetries <= 0 {
		p.MaxRetries = d.MaxRetries
	}
	return p
}

func (p RetryPolicy) next(d time.Duration) time.Duration {
	d = time.Duration(float64(d) * p.Backoff)
	if d > p.MaxTimeout {
		d = p.MaxTimeout
	}
	return d
}

// iterCap bounds a receive loop's total iterations (timeouts plus
// garbage/stale deliveries) so a flood of junk cannot spin it forever.
func (p RetryPolicy) iterCap() int { return (p.MaxRetries + 2) * 64 }

// Stats counts what one node's run observed; read it after the run.
type Stats struct {
	Sent             int // envelopes transmitted (including retransmits)
	Retransmits      int
	Timeouts         int
	Garbage          int // undecodable, wrong-session, replayed, or invalid
	Stale            int // well-formed duplicates of already-handled messages
	AbandonedWindows int // probing windows given up after retry exhaustion
	AbandonedRounds  int // reconciliation rounds given up or never seen
}

// Option configures a Node.
type Option func(*Node)

// WithRetryPolicy overrides the node's timeout/retransmit policy.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(n *Node) { n.policy = p.normalize() }
}

// WithRecorder routes the node's counters, round-latency observations,
// and ARQ trace events into r. The default is obs.Nop; a node never
// constructs its own recorder (the obsnop lint contract).
func WithRecorder(r obs.Recorder) Option {
	return func(n *Node) { n.rec = obs.OrNop(r) }
}

// Node is one protocol endpoint. It drives any pipeline.Scheme — the
// trained Vehicle-Key system or a registered baseline — through the
// identical message flow; nothing below this struct knows which scheme
// is running.
type Node struct {
	Sys     pipeline.Scheme
	Conn    transport.Conn
	Session string

	policy RetryPolicy
	guard  *secure.WindowGuard
	seq    uint64
	sent   map[msgKey]Envelope // last semantic message per key, for re-replies
	stats  Stats
	rec    obs.Recorder
}

// msgKey identifies a semantic message independent of retransmission:
// the type plus its window index (KEPT/FINAL) or round (the rest).
type msgKey struct {
	t   MsgType
	idx int
}

func keyOf(e Envelope) msgKey {
	if e.Type == MsgKept || e.Type == MsgFinal {
		return msgKey{e.Type, e.Window}
	}
	return msgKey{e.Type, e.Round}
}

// NewNode wraps a scheme (a trained *core.System, or any other
// pipeline.Scheme) and a connection into an endpoint.
func NewNode(sys pipeline.Scheme, conn transport.Conn, session string, opts ...Option) *Node {
	n := &Node{
		Sys:     sys,
		Conn:    conn,
		Session: session,
		policy:  DefaultRetryPolicy(),
		guard:   secure.NewWindowGuard(64),
		sent:    make(map[msgKey]Envelope),
		rec:     obs.Nop,
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Stats returns the node's counters. Call it after RunBob/RunAlice
// returns; a Node is not safe for concurrent use.
func (n *Node) Stats() Stats { return n.stats }

// wipeSent scrubs the retransmit cache: cached SYNDROME/CONFIRM
// envelopes carry key-derived material (code vectors, MACs over the
// Bloom-domain key), and once the session is over nothing may re-request
// them, so they must not linger in dead heap memory. RunBob and RunAlice
// call it on every exit path.
func (n *Node) wipeSent() {
	for k, e := range n.sent {
		secure.Wipe(e.MAC)
		secure.WipeFloats(e.Code)
		delete(n.sent, k)
	}
}

// send transmits a semantic message and caches it so a peer's
// retransmitted request can be answered idempotently.
func (n *Node) send(e Envelope) error {
	n.sent[keyOf(e)] = e
	return n.transmit(e)
}

// transmit stamps a fresh sequence number and writes the envelope. Every
// (re)transmission gets a new sequence number so the peer's replay window
// admits it; deduplication happens semantically, by msgKey.
func (n *Node) transmit(e Envelope) error {
	n.seq++
	e.Session = n.Session
	e.Seq = n.seq
	data, err := encode(e)
	if err != nil {
		return err
	}
	n.stats.Sent++
	n.rec.Add(obs.ProtocolSent, 1)
	return n.Conn.Send(data)
}

// resend retransmits the cached semantic message for key, if any.
func (n *Node) resend(k msgKey) {
	if e, ok := n.sent[k]; ok {
		n.stats.Retransmits++
		n.rec.Add(obs.ProtocolRetransmits, 1)
		n.rec.Event(obs.EvRetransmit, fmt.Sprintf("type=%d idx=%d", k.t, k.idx))
		_ = n.transmit(e)
	}
}

// Sentinel errors of the receive path.
var (
	// errGarbage flags an unusable delivery: undecodable, wrong session,
	// or replayed. The receive loops skip it without consuming a retry.
	errGarbage = errors.New("protocol: unusable message")
	// ErrExchangeAbandoned reports an exchange that exhausted its retries.
	ErrExchangeAbandoned = errors.New("protocol: exchange abandoned after retries")
)

// recvEnvelope reads one envelope within the deadline, rejecting
// undecodable data, session mismatches, and replays.
func (n *Node) recvEnvelope(timeout time.Duration) (Envelope, error) {
	data, err := n.Conn.RecvTimeout(timeout)
	if err != nil {
		if errors.Is(err, transport.ErrTimeout) {
			return Envelope{}, transport.ErrTimeout
		}
		return Envelope{}, err
	}
	e, err := decode(data)
	if err != nil {
		n.stats.Garbage++
		n.rec.Add(obs.ProtocolGarbage, 1)
		return Envelope{}, errGarbage
	}
	if e.Session != n.Session {
		n.stats.Garbage++
		n.rec.Add(obs.ProtocolGarbage, 1)
		return Envelope{}, errGarbage
	}
	if err := n.guard.Check("peer:"+e.Session, e.Seq); err != nil {
		n.stats.Garbage++
		n.rec.Add(obs.ProtocolReplayDrops, 1)
		return Envelope{}, errGarbage
	}
	n.rec.Add(obs.ProtocolRecv, 1)
	return e, nil
}

// await drives one lockstep exchange: it waits for the (want, idx)
// message, retransmitting the cached `request` on each timeout with
// backoff, answering stale traffic in between. It fails with
// ErrExchangeAbandoned after MaxRetries timeouts.
func (n *Node) await(want MsgType, idx int, request msgKey) (Envelope, error) {
	timeout := n.policy.Timeout
	timeouts := 0
	for iter := 0; iter < n.policy.iterCap(); iter++ {
		e, err := n.recvEnvelope(timeout)
		switch {
		case err == nil:
		case errors.Is(err, transport.ErrTimeout):
			n.stats.Timeouts++
			n.rec.Add(obs.ProtocolTimeouts, 1)
			timeouts++
			if timeouts > n.policy.MaxRetries {
				return Envelope{}, ErrExchangeAbandoned
			}
			n.resend(request)
			timeout = n.policy.next(timeout)
			n.rec.Event(obs.EvBackoff, timeout.String())
			continue
		case errors.Is(err, errGarbage):
			continue
		default:
			return Envelope{}, err
		}
		if e.Type == want && keyOf(e).idx == idx {
			return e, nil
		}
		n.answerStale(e)
	}
	return Envelope{}, ErrExchangeAbandoned
}

// answerStale handles a well-formed message that is not the one currently
// awaited: a peer retransmitting an already-answered request gets the
// cached reply again; anything else is dropped.
func (n *Node) answerStale(e Envelope) {
	n.stats.Stale++
	n.rec.Add(obs.ProtocolStale, 1)
	switch e.Type {
	case MsgConfirm:
		// Alice never got (or lost) our RESULT for that round.
		n.resend(msgKey{MsgResult, e.Round})
	case MsgKept:
		n.resend(msgKey{MsgFinal, e.Window})
	case MsgSyndrome:
		n.resend(msgKey{MsgConfirm, e.Round})
	}
}

// KeyOutcome is one established (or failed) key block.
type KeyOutcome struct {
	Key       []byte // 128-bit session key (nil when !Confirmed)
	Confirmed bool
	Round     int
	// Err explains a failed round: a *RoundError wrapping ErrPeerTimeout
	// or ErrConfirmFailed. Nil when Confirmed.
	Err error
}

// sessionSalt derives the round's public salt.
func sessionSalt(session string, round int) []byte {
	return []byte(fmt.Sprintf("vk/%s/%d", session, round))
}

// RunBob drives Bob's side over the measurement windows (his normalized
// arRSSI sequences, one per probing round) and returns the key outcomes,
// one per reconciliation round. Windows and rounds that exhaust their
// retries are abandoned, not fatal; the only hard errors are local
// (quantization) failures. A closed transport ends the run gracefully
// with the outcomes so far.
func (n *Node) RunBob(windows [][]float64) ([]KeyOutcome, error) {
	block := n.Sys.BlockBits()
	bps := n.Sys.SampleBits()
	var buf []byte
	var contributed, counts []int
	var out []KeyOutcome
	round := 0
	// Session teardown scrubs every secret the run accumulated: the
	// unconsumed tail of the bit stream and the retransmit cache.
	defer func() {
		secure.Wipe(buf)
		n.wipeSent()
	}()
	for w, seq := range windows {
		bits, kept, err := n.Sys.BobQuantize(seq)
		if err != nil {
			return out, err
		}
		if err := n.send(Envelope{Type: MsgKept, Window: w, Indices: kept}); err != nil {
			return out, ignoreClosed(err)
		}
		fin, err := n.await(MsgFinal, w, msgKey{MsgKept, w})
		if err != nil {
			if errors.Is(err, ErrExchangeAbandoned) {
				n.stats.AbandonedWindows++
				n.rec.Add(obs.ProtocolAbandonedWindows, 1)
				n.rec.Event(obs.EvAbandon, fmt.Sprintf("window=%d", w))
				continue
			}
			return out, ignoreClosed(err)
		}
		sel := pipeline.SelectAt(bits, kept, fin.Indices, bps)
		buf = append(buf, sel...)
		contributed = append(contributed, w)
		counts = append(counts, len(sel))
		for len(buf) >= block {
			res, err := n.bobBlock(buf[:block], round, contributed, counts)
			out = append(out, res)
			secure.Wipe(buf[:block]) // round bits are dead once the round resolves
			buf = buf[block:]
			round++
			if err != nil {
				return out, ignoreClosed(err)
			}
		}
	}
	n.finish(round)
	return out, nil
}

// ignoreClosed treats a closed transport as a graceful end of session.
func ignoreClosed(err error) error {
	if errors.Is(err, transport.ErrClosed) {
		return nil
	}
	return err
}

func (n *Node) bobBlock(bits []byte, round int, wins, counts []int) (KeyOutcome, error) {
	//vklint:ignore norand -- round-latency metric only; never feeds randomness or key material
	started := time.Now()
	defer func() {
		n.rec.Observe(obs.ProtocolRoundSeconds, time.Since(started).Seconds())
	}()
	salt := sessionSalt(n.Session, round)
	code, keyImage, err := n.Sys.BobEncode(bits, salt)
	if err != nil {
		return KeyOutcome{Round: round}, err
	}
	mac := secure.MAC(keyImage, floatsToBytes(code))
	secure.Wipe(keyImage) // the scheme's key image is dead once coded and MACed
	env := Envelope{
		Type: MsgSyndrome, Code: code, MAC: mac, Round: round,
		Windows: append([]int(nil), wins...), Counts: append([]int(nil), counts...),
	}
	if err := n.send(env); err != nil {
		return KeyOutcome{Round: round}, err
	}
	conf, err := n.await(MsgConfirm, round, msgKey{MsgSyndrome, round})
	if err != nil {
		if errors.Is(err, ErrExchangeAbandoned) {
			n.stats.AbandonedRounds++
			n.rec.Add(obs.ProtocolAbandonedRounds, 1)
			n.rec.Event(obs.EvAbandon, fmt.Sprintf("round=%d", round))
			// Cache a denial so Alice's late CONFIRM retries still get a
			// definitive answer and both sides record the round failed.
			n.sent[msgKey{MsgResult, round}] = Envelope{Type: MsgResult, Round: round}
			return KeyOutcome{Round: round, Err: roundErr(round, "confirm", ErrPeerTimeout)}, nil
		}
		return KeyOutcome{Round: round}, err
	}
	// Key the confirmation MAC with a salted one-way image of the block,
	// never the raw bits: a raw-keyed CONFIRM hands a passive eavesdropper
	// an offline verification oracle for key guesses. Equal blocks still
	// produce equal images, so confirmation semantics are unchanged.
	// Enforced by the keyflow analyzer.
	confirmKey := secure.BlockImage(bits, salt)
	expect := secure.MAC(confirmKey, salt)
	secure.Wipe(confirmKey)
	// Constant-time compare: a variable-time check here would let a MITM
	// time CONFIRM verification and forge tags byte by byte.
	accepted := subtle.ConstantTimeCompare(conf.MAC, expect) == 1
	if err := n.send(Envelope{Type: MsgResult, Round: round, Accepted: accepted}); err != nil {
		return KeyOutcome{Round: round}, err
	}
	if !accepted {
		n.rec.Add(obs.ProtocolConfirmFailures, 1)
		n.rec.Event(obs.EvRound, fmt.Sprintf("round=%d rejected", round))
		return KeyOutcome{Round: round, Err: roundErr(round, "result", ErrConfirmFailed)}, nil
	}
	key, err := n.Sys.Amplify(bits, salt)
	if err != nil {
		return KeyOutcome{Round: round}, err
	}
	n.rec.Add(obs.ProtocolKeysConfirmed, 1)
	n.rec.Event(obs.EvKey, fmt.Sprintf("round=%d", round))
	return KeyOutcome{Key: key, Confirmed: true, Round: round}, nil
}

// finish runs Bob's end-of-session handshake: announce DONE (with the
// total round count), keep answering late retransmits, and exit once
// Alice acknowledges or the retries run out.
func (n *Node) finish(totalRounds int) {
	if err := n.send(Envelope{Type: MsgDone, Round: totalRounds}); err != nil {
		return
	}
	timeout := n.policy.Timeout
	timeouts := 0
	for iter := 0; iter < n.policy.iterCap(); iter++ {
		e, err := n.recvEnvelope(timeout)
		switch {
		case err == nil:
		case errors.Is(err, transport.ErrTimeout):
			timeouts++
			if timeouts > n.policy.MaxRetries {
				return
			}
			n.resend(msgKey{MsgDone, totalRounds})
			timeout = n.policy.next(timeout)
			continue
		case errors.Is(err, errGarbage):
			continue
		default:
			return
		}
		if e.Type == MsgDone {
			return // Alice's acknowledgement
		}
		n.answerStale(e)
	}
}

// RunAlice drives Alice's side over her measurement windows (aligned with
// Bob's) and returns the key outcomes, one per reconciliation round that
// either side opened. Alice is reactive: she answers whatever arrives,
// deduplicates retransmits, fast-forwards past rounds the peer abandoned,
// and finishes on the DONE handshake (or after a run of idle timeouts).
func (n *Node) RunAlice(windows [][]float64) ([]KeyOutcome, error) {
	block := n.Sys.BlockBits()
	// Precompute the network pass per window up front: replies inside the
	// receive loop must be cheap relative to the peer's retransmit timer.
	pre := make([]pipeline.Round, len(windows))
	for i, w := range windows {
		r, err := n.Sys.AlicePrecompute(w)
		if err != nil {
			return nil, err
		}
		pre[i] = r
	}

	type pendingRound struct {
		final   []byte
		macOK   bool
		started time.Time // syndrome receipt, for round-latency observation
	}
	winBits := make(map[int][]byte)
	pending := make(map[int]*pendingRound)
	outcomes := make(map[int]KeyOutcome)
	// Session teardown scrubs every secret the run accumulated: round keys
	// still pending confirmation, per-window bit slices, and the
	// retransmit cache. Confirmed keys in outcomes belong to the caller.
	defer func() {
		for _, p := range pending {
			secure.Wipe(p.final)
		}
		for _, b := range winBits {
			secure.Wipe(b)
		}
		n.wipeSent()
	}()
	nextRound := 0
	totalRounds := -1
	strikes := 0
	timeout := n.policy.Timeout

	fail := func(r int) {
		if _, seen := outcomes[r]; !seen {
			outcomes[r] = KeyOutcome{Round: r, Err: roundErr(r, "syndrome", ErrPeerTimeout)}
			n.stats.AbandonedRounds++
			n.rec.Add(obs.ProtocolAbandonedRounds, 1)
			n.rec.Event(obs.EvAbandon, fmt.Sprintf("round=%d", r))
		}
	}

	maxIter := (len(windows) + 4) * n.policy.iterCap()
loop:
	for iter := 0; iter < maxIter; iter++ {
		if totalRounds >= 0 && len(pending) == 0 && nextRound >= totalRounds {
			break
		}
		e, err := n.recvEnvelope(timeout)
		switch {
		case err == nil:
		case errors.Is(err, transport.ErrTimeout):
			n.stats.Timeouts++
			n.rec.Add(obs.ProtocolTimeouts, 1)
			strikes++
			if strikes > n.policy.MaxRetries {
				break loop // the peer has gone quiet; keep what we have
			}
			// The only progress Alice can force is re-asking for a lost
			// RESULT; everything else is retransmitted by Bob.
			lowest, found := -1, false
			for r := range pending {
				if !found || r < lowest {
					lowest, found = r, true
				}
			}
			if found {
				n.resend(msgKey{MsgConfirm, lowest})
			}
			timeout = n.policy.next(timeout)
			n.rec.Event(obs.EvBackoff, timeout.String())
			continue
		case errors.Is(err, errGarbage):
			continue
		default:
			return aliceOutcomes(outcomes, nextRound, totalRounds), ignoreClosed(err)
		}
		strikes = 0
		timeout = n.policy.Timeout

		switch e.Type {
		case MsgKept:
			w := e.Window
			if w < 0 || w >= len(windows) {
				n.stats.Garbage++
				n.rec.Add(obs.ProtocolGarbage, 1)
				continue
			}
			if _, done := winBits[w]; done {
				n.stats.Stale++
				n.rec.Add(obs.ProtocolStale, 1)
				n.resend(msgKey{MsgFinal, w})
				continue
			}
			bits, final, ok := pre[w].Select(e.Indices)
			if !ok {
				n.stats.Garbage++ // corrupted announcement; Bob will retry
				n.rec.Add(obs.ProtocolGarbage, 1)
				continue
			}
			winBits[w] = bits
			if err := n.send(Envelope{Type: MsgFinal, Window: w, Indices: final}); err != nil {
				return aliceOutcomes(outcomes, nextRound, totalRounds), ignoreClosed(err)
			}

		case MsgSyndrome:
			r := e.Round
			if r < nextRound {
				n.stats.Stale++
				n.rec.Add(obs.ProtocolStale, 1)
				n.resend(msgKey{MsgConfirm, r})
				continue
			}
			if r > MaxRounds {
				// decode already rejects Round > MaxRounds; re-assert it
				// here so the back-fill loop below is locally, visibly
				// bounded (allocbound) even if a new ingress path skips
				// decode's caps.
				n.stats.Garbage++
				n.rec.Add(obs.ProtocolGarbage, 1)
				continue
			}
			// Bob never opens round r+1 before r, so a jump means rounds
			// nextRound..r-1 were lost wholesale; Bob abandoned them too.
			for s := nextRound; s < r; s++ {
				fail(s)
			}
			nextRound = r + 1
			bits, ok := assembleBlock(winBits, e.Windows, e.Counts, r, block)
			if !ok {
				fail(r)
				continue
			}
			salt := sessionSalt(n.Session, r)
			final, keyImage, err := n.Sys.AliceCorrect(bits, e.Code, salt)
			if err != nil {
				// The scheme rejected the code vector (hostile or
				// wrong-length within the wire caps): the round cannot be
				// reconciled. Bob's CONFIRM retries expire on their own.
				n.stats.Garbage++
				n.rec.Add(obs.ProtocolGarbage, 1)
				fail(r)
				continue
			}
			// MAC check: if our corrected key equals Bob's, his MAC
			// verifies under the scheme's key image. A failed MAC means
			// residual mismatch or tampering; both end in rejection
			// (Sec. IV-C).
			macOK := secure.VerifyMAC(keyImage, floatsToBytes(e.Code), e.MAC)
			secure.Wipe(keyImage) // dead once verified; see zeroize invariant
			// CONFIRM is keyed by a one-way image of the corrected block,
			// mirroring Bob's verification; raw `final` must never key a
			// MAC that crosses the wire (keyflow).
			confirmKey := secure.BlockImage(final, salt)
			confirmMAC := secure.MAC(confirmKey, salt)
			secure.Wipe(confirmKey)
			if err := n.send(Envelope{Type: MsgConfirm, MAC: confirmMAC, Round: r}); err != nil {
				fail(r)
				return aliceOutcomes(outcomes, nextRound, totalRounds), ignoreClosed(err)
			}
			//vklint:ignore norand -- round-latency metric only; never feeds randomness or key material
			pending[r] = &pendingRound{final: final, macOK: macOK, started: time.Now()}

		case MsgResult:
			r := e.Round
			p, ok := pending[r]
			if !ok {
				n.stats.Stale++
				n.rec.Add(obs.ProtocolStale, 1)
				continue
			}
			delete(pending, r)
			n.rec.Observe(obs.ProtocolRoundSeconds, time.Since(p.started).Seconds())
			o := KeyOutcome{Round: r, Err: roundErr(r, "result", ErrConfirmFailed)}
			if e.Accepted && p.macOK {
				if key, err := n.Sys.Amplify(p.final, sessionSalt(n.Session, r)); err == nil {
					o = KeyOutcome{Key: key, Confirmed: true, Round: r}
					n.rec.Add(obs.ProtocolKeysConfirmed, 1)
					n.rec.Event(obs.EvKey, fmt.Sprintf("round=%d", r))
				}
			}
			if !o.Confirmed {
				n.rec.Add(obs.ProtocolConfirmFailures, 1)
				n.rec.Event(obs.EvRound, fmt.Sprintf("round=%d rejected", r))
			}
			// The round is resolved either way: its reconciled bits are an
			// expired round key and must not outlive the resolution.
			secure.Wipe(p.final)
			outcomes[r] = o

		case MsgDone:
			if e.Round > MaxRounds {
				// Same defense-in-depth as MsgSyndrome: a hostile total
				// must not drive the failure back-fill loop.
				n.stats.Garbage++
				n.rec.Add(obs.ProtocolGarbage, 1)
				continue
			}
			totalRounds = e.Round
			// Syndromes this side never saw are gone for good — and Bob
			// abandoned those rounds himself, or he couldn't have moved on.
			for s := nextRound; s < totalRounds; s++ {
				fail(s)
			}
			if nextRound < totalRounds {
				nextRound = totalRounds
			}
			// Acknowledge only once everything is resolved; otherwise keep
			// Bob in his finish loop so he can answer our CONFIRM retries.
			if len(pending) == 0 {
				if err := n.send(Envelope{Type: MsgDone, Round: e.Round}); err != nil {
					return aliceOutcomes(outcomes, nextRound, totalRounds), ignoreClosed(err)
				}
			}

		default:
			n.stats.Stale++
		}
	}

	for r := range pending {
		fail(r)
	}
	return aliceOutcomes(outcomes, nextRound, totalRounds), nil
}

// aliceOutcomes flattens the outcome map into a dense, round-ordered
// slice; rounds never resolved appear as failed outcomes.
func aliceOutcomes(outcomes map[int]KeyOutcome, nextRound, totalRounds int) []KeyOutcome {
	total := nextRound
	if totalRounds > total {
		total = totalRounds
	}
	out := make([]KeyOutcome, total)
	for i := range out {
		out[i] = KeyOutcome{Round: i, Err: roundErr(i, "syndrome", ErrPeerTimeout)}
	}
	for r, o := range outcomes {
		if r >= 0 && r < total {
			out[r] = o
		}
	}
	return out
}

// assembleBlock rebuilds the bits of reconciliation round `round` from
// Alice's per-window bit slices, following Bob's announced stream layout
// (window order plus per-window bit counts). It fails — without
// panicking — when a window overlapping the block is missing or its
// local bit count disagrees with Bob's announcement (corrupted FINAL).
func assembleBlock(winBits map[int][]byte, wins, counts []int, round, block int) ([]byte, bool) {
	if len(wins) != len(counts) || round < 0 || block <= 0 {
		return nil, false
	}
	start, end := round*block, (round+1)*block
	out := make([]byte, 0, block)
	off := 0
	for i, w := range wins {
		c := counts[i]
		if c < 0 || c > MaxIndices {
			return nil, false
		}
		lo, hi := max(off, start), min(off+c, end)
		if lo < hi {
			b, ok := winBits[w]
			if !ok || len(b) != c {
				return nil, false
			}
			out = append(out, b[lo-off:hi-off]...)
		}
		off += c
		if off >= end {
			break
		}
	}
	if len(out) != block {
		return nil, false
	}
	return out, true
}

func floatsToBytes(xs []float64) []byte {
	out := make([]byte, 0, len(xs)*8)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(xs); err != nil {
		return nil
	}
	out = append(out, buf.Bytes()...)
	return out
}

// ErrNoKeys reports a run that produced no confirmed keys.
var ErrNoKeys = errors.New("protocol: no confirmed keys")
