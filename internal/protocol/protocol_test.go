package protocol

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/transport"
)

// trainSystem builds a small trained system plus aligned test windows.
func trainSystem(t *testing.T) (*core.System, [][]float64, [][]float64) {
	t.Helper()
	sc := trace.NewScenario(channel.Urban, channel.V2I)
	ds, err := trace.Build(sc, 21, 300, 32, trace.DefaultExtract())
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(22)
	train, _, test := ds.Split(0.8, 0.05, src.Derive("split"))
	sys := core.New(core.DefaultConfig(), src.Derive("sys"))
	if _, err := sys.Train(train, 25, src.Derive("train")); err != nil {
		t.Fatal(err)
	}
	var alice, bob [][]float64
	for _, smp := range test.Samples {
		alice = append(alice, smp.Alice)
		bob = append(bob, smp.Bob)
	}
	return sys, alice, bob
}

func runProtocol(t *testing.T, sys *core.System, aliceWin, bobWin [][]float64, a, b transport.Conn) ([]KeyOutcome, []KeyOutcome) {
	t.Helper()
	alice := NewNode(sys, a, "sess-1")
	bob := NewNode(sys, b, "sess-1")
	var aliceOut, bobOut []KeyOutcome
	var aliceErr, bobErr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		bobOut, bobErr = bob.RunBob(bobWin)
	}()
	go func() {
		defer wg.Done()
		aliceOut, aliceErr = alice.RunAlice(aliceWin)
	}()
	wg.Wait()
	if aliceErr != nil {
		t.Fatalf("alice: %v", aliceErr)
	}
	if bobErr != nil {
		t.Fatalf("bob: %v", bobErr)
	}
	return aliceOut, bobOut
}

// verifyOutcomes checks the confirmation invariants — both sides reach
// the same verdict per round, confirmed keys are identical and 128-bit —
// and returns the confirmed count. It does not demand any round confirm:
// schemes whose reconciliation is infeasible over the wire legitimately
// confirm nothing.
func verifyOutcomes(t *testing.T, aliceOut, bobOut []KeyOutcome) int {
	t.Helper()
	if len(aliceOut) != len(bobOut) {
		t.Fatalf("outcome count mismatch: %d vs %d", len(aliceOut), len(bobOut))
	}
	confirmed := 0
	for i := range aliceOut {
		if aliceOut[i].Confirmed != bobOut[i].Confirmed {
			t.Fatalf("round %d: confirmation mismatch", i)
		}
		if !aliceOut[i].Confirmed {
			continue
		}
		confirmed++
		if !bytes.Equal(aliceOut[i].Key, bobOut[i].Key) {
			t.Fatalf("round %d: confirmed keys differ", i)
		}
		if len(aliceOut[i].Key) != 16 {
			t.Fatalf("round %d: key length %d", i, len(aliceOut[i].Key))
		}
	}
	t.Logf("blocks=%d confirmed=%d", len(aliceOut), confirmed)
	return confirmed
}

func checkOutcomes(t *testing.T, aliceOut, bobOut []KeyOutcome) {
	t.Helper()
	if verifyOutcomes(t, aliceOut, bobOut) == 0 {
		t.Fatal("no confirmed keys")
	}
}

func TestProtocolInMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	sys, aliceWin, bobWin := trainSystem(t)
	a, b := transport.Pair()
	defer a.Close()
	defer b.Close()
	aliceOut, bobOut := runProtocol(t, sys, aliceWin, bobWin, a, b)
	checkOutcomes(t, aliceOut, bobOut)
}

func TestProtocolOverUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	sys, aliceWin, bobWin := trainSystem(t)
	bobSide, err := transport.DialUDP("127.0.0.1:0", "127.0.0.1:9") // placeholder peer
	if err != nil {
		t.Fatal(err)
	}
	defer bobSide.Close()
	aliceSide, err := transport.DialUDP("127.0.0.1:0", bobSide.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer aliceSide.Close()
	ap, err := transport.ResolvePeer(aliceSide.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	bobSide.SetPeer(ap)
	aliceOut, bobOut := runProtocol(t, sys, aliceWin, bobWin, aliceSide, bobSide)
	checkOutcomes(t, aliceOut, bobOut)
}

func TestReplayRejected(t *testing.T) {
	sys := core.New(core.DefaultConfig(), rng.New(3))
	a, b := transport.Pair()
	defer a.Close()
	defer b.Close()
	alice := NewNode(sys, a, "s")
	// Craft a valid message, deliver it twice: an identical re-injection
	// (same sequence number) is a replay and must be rejected, while a
	// retransmission (fresh sequence number) must pass.
	env := Envelope{Type: MsgKept, Session: "s", Seq: 1, Indices: []int{1, 2}}
	data, _ := encode(env)
	b.Send(data)
	b.Send(data)
	if _, err := alice.recvEnvelope(time.Second); err != nil {
		t.Fatalf("first delivery should pass: %v", err)
	}
	if _, err := alice.recvEnvelope(time.Second); err == nil {
		t.Fatal("replayed message must be rejected")
	}
	env.Seq = 2 // retransmission with a fresh nonce
	data, _ = encode(env)
	b.Send(data)
	if _, err := alice.recvEnvelope(time.Second); err != nil {
		t.Fatalf("retransmission with fresh seq should pass: %v", err)
	}
}

func TestReorderedSeqAccepted(t *testing.T) {
	sys := core.New(core.DefaultConfig(), rng.New(5))
	a, b := transport.Pair()
	defer a.Close()
	defer b.Close()
	alice := NewNode(sys, a, "s")
	// Deliver seq 3 before seq 2: the sliding replay window admits the
	// late-but-fresh message instead of discarding it.
	for _, seq := range []uint64{3, 2} {
		data, _ := encode(Envelope{Type: MsgKept, Session: "s", Seq: seq})
		b.Send(data)
	}
	for i := 0; i < 2; i++ {
		if _, err := alice.recvEnvelope(time.Second); err != nil {
			t.Fatalf("delivery %d: %v", i, err)
		}
	}
}

func TestSessionMismatchRejected(t *testing.T) {
	sys := core.New(core.DefaultConfig(), rng.New(4))
	a, b := transport.Pair()
	defer a.Close()
	defer b.Close()
	alice := NewNode(sys, a, "expected")
	env := Envelope{Type: MsgKept, Session: "other", Seq: 1}
	data, _ := encode(env)
	b.Send(data)
	if _, err := alice.recvEnvelope(time.Second); err == nil {
		t.Fatal("session mismatch must be rejected")
	}
}
