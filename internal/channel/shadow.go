package channel

import (
	"math"

	"repro/internal/rng"
)

// ShadowProcess is a spatially correlated log-normal shadowing field along
// the driven route (Gudmundson 1991): shadowing in dB is a Gaussian AR(1)
// process over distance with autocorrelation exp(−Δd/decorr).
//
// The process is generated lazily on a fixed grid and linearly
// interpolated, so any position can be queried in any order as long as the
// route only grows forward (negative offsets below the first grid point
// clamp to it — used for an imitating Eve trailing slightly behind).
type ShadowProcess struct {
	sigma  float64
	step   float64 // grid spacing in metres
	rho    float64 // AR(1) coefficient between adjacent grid points
	src    *rng.Source
	values []float64
}

// shadowGridStep is the spatial resolution of the field. 0.5 m is far
// below every decorrelation distance used by the presets.
const shadowGridStep = 0.5

// NewShadowProcess creates a shadowing field with standard deviation sigma
// (dB) and decorrelation distance decorr (m).
func NewShadowProcess(sigma, decorr float64, src *rng.Source) *ShadowProcess {
	if decorr <= 0 {
		decorr = 1
	}
	return &ShadowProcess{
		sigma: sigma,
		step:  shadowGridStep,
		rho:   math.Exp(-shadowGridStep / decorr),
		src:   src,
	}
}

// At returns the shadowing value in dB at route position pos metres.
func (s *ShadowProcess) At(pos float64) float64 {
	if pos < 0 {
		pos = 0
	}
	idx := pos / s.step
	lo := int(idx)
	frac := idx - float64(lo)
	s.extend(lo + 1)
	if frac == 0 {
		return s.values[lo]
	}
	return s.values[lo]*(1-frac) + s.values[lo+1]*frac
}

func (s *ShadowProcess) extend(upto int) {
	for len(s.values) <= upto {
		if len(s.values) == 0 {
			s.values = append(s.values, s.src.Normal(0, s.sigma))
			continue
		}
		prev := s.values[len(s.values)-1]
		innov := s.src.Normal(0, s.sigma*math.Sqrt(1-s.rho*s.rho))
		s.values = append(s.values, s.rho*prev+innov)
	}
}

// Sigma returns the configured standard deviation in dB.
func (s *ShadowProcess) Sigma() float64 { return s.sigma }
