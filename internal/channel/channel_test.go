package channel

import (
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/rng"
)

func TestConfigNormalizePresets(t *testing.T) {
	u := Config{Env: Urban, Link: V2I, SpeedAKmh: 50}
	u.Normalize()
	if u.RicianK != 0 {
		t.Error("urban should be Rayleigh (K = 0)")
	}
	if u.SpeedBKmh != 0 {
		t.Error("V2I forces Bob static")
	}
	r := Config{Env: Rural, Link: V2V, SpeedAKmh: 50, SpeedBKmh: 30}
	r.Normalize()
	if r.RicianK <= 0 {
		t.Error("rural should be Rician")
	}
	if !r.ScatterDoppler {
		t.Error("V2V enables scatter Doppler")
	}
}

func TestWavelengthAndCoherence(t *testing.T) {
	cfg := DefaultConfig(Urban, V2I)
	if w := cfg.Wavelength(); math.Abs(w-0.6912) > 1e-3 {
		t.Errorf("wavelength = %v, want ~0.6912 m", w)
	}
	// Paper's example: 40 km/h difference at 434 MHz → T_c ≈ 27 ms.
	cfg.SpeedAKmh = 40
	cfg.Link = V2I
	cfg.Normalize()
	tc := cfg.CoherenceTime()
	if math.Abs(tc-0.0263) > 0.003 {
		t.Errorf("coherence time = %v s, want ~0.026 s", tc)
	}
}

func TestFaderRayleighStatistics(t *testing.T) {
	f := NewFader(20, 0, rng.New(1))
	var sum, sum2 float64
	const n = 20000
	for i := 0; i < n; i++ {
		e := f.Envelope(float64(i) * 0.01)
		sum += e * e
		sum2 += e
	}
	if power := sum / n; math.Abs(power-1) > 0.15 {
		t.Errorf("mean envelope power = %v, want ~1", power)
	}
}

func TestFaderTemporalCorrelation(t *testing.T) {
	// Correlation at lag ≪ 1/fd should be high; at lag ≫ 1/fd low.
	f := NewFader(20, 0, rng.New(2))
	const n = 4000
	a := make([]float64, n)
	for i := range a {
		re, _ := f.Gain(float64(i) * 0.002)
		a[i] = re
	}
	short := autocorr(a, 1)   // 2 ms: fd·τ = 0.04, J0 ≈ 0.98
	long := autocorr(a, 1000) // 2 s: far past the first J0 zero
	if short < 0.3 {
		t.Errorf("short-lag fading correlation %v too low", short)
	}
	if math.Abs(long) > 0.35 {
		t.Errorf("long-lag fading correlation %v too high", long)
	}
}

func autocorr(xs []float64, lag int) float64 {
	c, _ := mathx.Pearson(xs[:len(xs)-lag], xs[lag:])
	return c
}

func TestShadowCorrelationDecay(t *testing.T) {
	s := NewShadowProcess(8, 20, rng.New(3))
	const n = 4000
	a := make([]float64, n)
	for i := range a {
		a[i] = s.At(float64(i) * 0.5)
	}
	near := autocorr(a, 4)  // 2 m apart
	far := autocorr(a, 400) // 200 m apart
	if near < 0.8 {
		t.Errorf("2 m shadow correlation %v too low", near)
	}
	if far > 0.3 {
		t.Errorf("200 m shadow correlation %v too high", far)
	}
}

func TestShadowStd(t *testing.T) {
	s := NewShadowProcess(6, 25, rng.New(4))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = s.At(float64(i) * 2)
	}
	if std := mathx.Std(xs); math.Abs(std-6) > 0.6 {
		t.Errorf("shadow std = %v, want ~6", std)
	}
}

func TestShadowRandomAccessConsistent(t *testing.T) {
	s := NewShadowProcess(5, 30, rng.New(5))
	v1 := s.At(123.4)
	_ = s.At(999)
	if v2 := s.At(123.4); v1 != v2 {
		t.Error("repeated queries must return the same value")
	}
}

func TestMobilityBounds(t *testing.T) {
	cfg := DefaultConfig(Urban, V2V)
	m := NewMobility(cfg, rng.New(6))
	for i := 0; i < 2000; i++ {
		d := m.Distance(float64(i))
		if d < cfg.MinDistanceM-1e-9 || d > cfg.MaxDistanceM+1e-9 {
			t.Fatalf("distance %v outside [%v, %v]", d, cfg.MinDistanceM, cfg.MaxDistanceM)
		}
	}
}

func TestChannelReciprocity(t *testing.T) {
	// The ground-truth gain process is one function of time — both link
	// directions read the same value by construction.
	m := NewModel(DefaultConfig(Urban, V2V), rng.New(7))
	for i := 0; i < 100; i++ {
		tt := float64(i) * 0.37
		if m.GainDB(tt) != m.GainDB(tt) {
			t.Fatal("gain must be deterministic in t")
		}
	}
}

func TestEveChannelsDiffer(t *testing.T) {
	m := NewModel(DefaultConfig(Urban, V2V), rng.New(8))
	const n = 500
	var legit, imitate, eaves []float64
	for i := 0; i < n; i++ {
		tt := float64(i) * 0.1
		legit = append(legit, m.GainDB(tt))
		imitate = append(imitate, m.EveImitateGainDB(tt))
		eaves = append(eaves, m.EveEavesdropGainDB(tt))
	}
	ci, _ := mathx.Pearson(legit, imitate)
	ce, _ := mathx.Pearson(legit, eaves)
	if ci > 0.995 || ce > 0.995 {
		t.Errorf("Eve gains too correlated: imitate=%v eavesdrop=%v", ci, ce)
	}
	// They still share the large-scale trend, so correlation is positive.
	if ci < 0 {
		t.Errorf("imitating Eve should track the trend, corr=%v", ci)
	}
}

func TestDopplerFormula(t *testing.T) {
	cfg := Config{Env: Urban, Link: V2I, SpeedAKmh: 36, CarrierHz: 434e6} // 10 m/s
	cfg.Normalize()
	want := 10.0 / SpeedOfLight * 434e6
	if fd := cfg.DopplerHz(); math.Abs(fd-want) > 1e-9 {
		t.Errorf("Doppler = %v, want %v", fd, want)
	}
}
