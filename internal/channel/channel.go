// Package channel simulates the vehicular radio channel that Vehicle-Key
// harvests randomness from. It implements the exact models the paper's
// theory section (Sec. II-A) uses:
//
//   - log-distance path loss between the endpoints,
//   - log-normal shadow fading, spatially correlated along the driven
//     route (Gudmundson model),
//   - Rayleigh (urban NLOS) / Rician (rural LOS) small-scale fading
//     synthesized with a Jakes sum-of-sinusoids oscillator bank whose
//     Doppler spread follows f_d = v_rel/c · f_0, and
//   - mobility models for V2V and V2I links.
//
// The channel between Alice and Bob is reciprocal by construction: both
// directions read the same ground-truth gain process. Asymmetry enters
// only through *when* each side samples it (LoRa airtime, modeled in
// package lora) and through receiver noise and hardware offsets.
// Eve's channels are spatially decorrelated: an imitating Eve shares the
// large-scale terms (path loss, most of the shadowing) but never the
// small-scale fading, exactly as the paper argues for separations beyond
// λ/2.
package channel

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// SpeedOfLight is the radio propagation speed in m/s.
const SpeedOfLight = 3e8

// Environment selects the propagation preset.
type Environment int

const (
	// Urban is the NLOS city preset: strong multipath (Rayleigh), large
	// path-loss exponent, short shadowing decorrelation distance.
	Urban Environment = iota + 1
	// Rural is the LOS countryside preset: Rician fading with a dominant
	// line-of-sight component and a long shadowing decorrelation distance.
	Rural
)

// String implements fmt.Stringer.
func (e Environment) String() string {
	switch e {
	case Urban:
		return "urban"
	case Rural:
		return "rural"
	}
	return fmt.Sprintf("Environment(%d)", int(e))
}

// LinkType distinguishes vehicle-to-vehicle from vehicle-to-infrastructure
// links.
type LinkType int

const (
	// V2V links have both endpoints moving.
	V2V LinkType = iota + 1
	// V2I links have one moving endpoint (Alice) and one static (Bob).
	V2I
)

// String implements fmt.Stringer.
func (l LinkType) String() string {
	switch l {
	case V2V:
		return "V2V"
	case V2I:
		return "V2I"
	}
	return fmt.Sprintf("LinkType(%d)", int(l))
}

// Config fully describes one simulated link.
type Config struct {
	Env  Environment
	Link LinkType

	// SpeedAKmh and SpeedBKmh are the endpoint speeds in km/h. For V2I
	// links SpeedBKmh is forced to zero.
	SpeedAKmh float64
	SpeedBKmh float64

	// CarrierHz is the LoRa carrier frequency (the paper uses 434 MHz).
	CarrierHz float64

	// InitialDistanceM is the starting separation between the endpoints.
	InitialDistanceM float64

	// TxPowerDBm is the transmit power used to convert channel gain into
	// received signal strength.
	TxPowerDBm float64

	// Propagation parameters; zero values are filled in from the
	// environment preset by Normalize.
	PathLossExp    float64 // log-distance exponent n
	RefLossDB      float64 // loss at the 1 m reference distance
	ShadowSigmaDB  float64 // shadowing std deviation σ
	ShadowDecorrM  float64 // Gudmundson decorrelation distance
	RicianK        float64 // LOS/scatter power ratio (0 ⇒ Rayleigh)
	MinDopplerKmh  float64 // environmental-motion floor for f_d
	EveOffsetM     float64 // Eve's separation from the legitimate node
	EveShadowCorr  float64 // shadowing cross-correlation of Eve's link with the legitimate link
	MinDistanceM   float64 // closest approach of the endpoints
	MaxDistanceM   float64 // farthest separation of the endpoints
	ScatterDoppler bool    // V2V: scatterers add both speeds to f_d spread
}

// DefaultConfig returns the paper's experimental configuration for the
// given environment and link type: 434 MHz carrier, 50 km/h vehicle(s),
// endpoints several hundred metres apart.
func DefaultConfig(env Environment, link LinkType) Config {
	cfg := Config{
		Env:              env,
		Link:             link,
		SpeedAKmh:        50,
		SpeedBKmh:        30,
		CarrierHz:        434e6,
		InitialDistanceM: 400,
		TxPowerDBm:       14,
	}
	cfg.Normalize()
	return cfg
}

// Normalize fills unset propagation fields from the environment preset and
// enforces link-type invariants. It must be called (directly or via
// NewModel) before the config is used.
func (c *Config) Normalize() {
	if c.CarrierHz == 0 {
		c.CarrierHz = 434e6
	}
	if c.InitialDistanceM == 0 {
		c.InitialDistanceM = 400
	}
	if c.TxPowerDBm == 0 {
		c.TxPowerDBm = 14
	}
	if c.MinDopplerKmh == 0 {
		c.MinDopplerKmh = 3 // residual environmental motion
	}
	if c.EveOffsetM == 0 {
		c.EveOffsetM = 10
	}
	if c.EveShadowCorr == 0 {
		// Link-to-link shadowing cross-correlation, not along-route
		// autocorrelation: even a closely trailing attacker's link passes
		// different obstacles at different angles, and measured
		// site-to-site cross-correlations are weak (≈ 0.2–0.5 in the
		// literature). 0.3 is a conservative middle value.
		c.EveShadowCorr = 0.3
	}
	if c.MinDistanceM == 0 {
		c.MinDistanceM = c.InitialDistanceM / 2
	}
	if c.MaxDistanceM == 0 {
		c.MaxDistanceM = c.InitialDistanceM * 2
	}
	switch c.Env {
	case Rural:
		// Open LOS country road: gentle path loss, weak smooth shadowing,
		// strong Rician LOS component. The weak shadowing makes the
		// (perfectly reciprocal) path-loss trend dominate, which is why
		// the paper's rural traces stay comparatively correlated.
		if c.PathLossExp == 0 {
			c.PathLossExp = 2.2
		}
		if c.ShadowSigmaDB == 0 {
			c.ShadowSigmaDB = 4
		}
		if c.ShadowDecorrM == 0 {
			c.ShadowDecorrM = 50
		}
		if c.RicianK == 0 {
			c.RicianK = 6 // strong LOS
		}
	default: // Urban and unset
		// Dense NLOS city: strong, rapidly decorrelating shadowing from
		// buildings dominates the RSSI variance, so packet-separated
		// measurements decorrelate quickly — the paper's core challenge.
		if c.Env == 0 {
			c.Env = Urban
		}
		if c.PathLossExp == 0 {
			c.PathLossExp = 3.2
		}
		if c.ShadowSigmaDB == 0 {
			c.ShadowSigmaDB = 8.5
		}
		if c.ShadowDecorrM == 0 {
			c.ShadowDecorrM = 15
		}
		// Urban NLOS: RicianK stays 0 ⇒ Rayleigh.
	}
	if c.RefLossDB == 0 {
		// Free-space loss at 1 m for the configured carrier:
		// 20·log10(4πd f / c), d = 1 m.
		c.RefLossDB = freeSpace1m(c.CarrierHz)
	}
	if c.Link == V2I {
		c.SpeedBKmh = 0
	}
	if c.Link == V2V {
		c.ScatterDoppler = true
	}
}

// Wavelength returns the carrier wavelength in metres (≈ 0.6912 m at
// 434 MHz, so λ/2 ≈ 34.56 cm, the paper's Eve-separation bound).
func (c Config) Wavelength() float64 { return SpeedOfLight / c.CarrierHz }

// RelativeSpeedKmh is the Doppler-determining speed from the paper's
// formula f_d = |V_A − V_B|/c · f_0, floored at MinDopplerKmh so the
// channel never freezes entirely.
func (c Config) RelativeSpeedKmh() float64 {
	v := c.SpeedAKmh - c.SpeedBKmh
	if v < 0 {
		v = -v
	}
	if c.ScatterDoppler {
		// Rich scattering around both moving endpoints widens the Doppler
		// spectrum: the worst-case scatter path sees both motions.
		if s := 0.5 * (c.SpeedAKmh + c.SpeedBKmh); s > v {
			v = s
		}
	}
	if v < c.MinDopplerKmh {
		v = c.MinDopplerKmh
	}
	return v
}

// DopplerHz returns the maximum Doppler shift f_d.
func (c Config) DopplerHz() float64 {
	return kmhToMs(c.RelativeSpeedKmh()) / SpeedOfLight * c.CarrierHz
}

// CoherenceTime returns the paper's T_c ≈ 0.423/f_d estimate in seconds.
func (c Config) CoherenceTime() float64 { return 0.423 / c.DopplerHz() }

func kmhToMs(v float64) float64 { return v / 3.6 }

func freeSpace1m(f float64) float64 {
	// 20·log10(4π·1·f/c)
	const fourPi = 12.566370614359172
	return 20 * log10(fourPi*f/SpeedOfLight)
}

// Model is a ground-truth channel process for one Alice–Bob link plus the
// correlated-but-distinct processes observed by an attacker Eve. All gains
// are in dB relative to transmit power; RSSI(t) = TxPowerDBm + GainDB(t).
//
// Model is not safe for concurrent use: derive independent models per
// goroutine from independent rng.Sources.
type Model struct {
	cfg Config

	mob    *Mobility
	shadow *ShadowProcess
	fader  *Fader // reciprocal Alice↔Bob small-scale fading

	// Imitating Eve: follows Alice a few metres behind. Her link's
	// shadowing is only partially correlated with the legitimate link's
	// (mixing weight exp(−offset/decorr)) and her small-scale fading is
	// fully independent — she is far beyond λ/2 from Alice's antenna.
	eveFader  *Fader
	eveShadow *ShadowProcess
	eveMix    float64 // shadow cross-correlation with the legitimate link

	// Eavesdropping Eve: parked near Bob, same partial-shadow and
	// independent-fading structure on the Alice→Eve path.
	eveFarFader  *Fader
	eveFarShadow *ShadowProcess
}

// NewModel builds a channel model for cfg, normalizing it first. All
// randomness derives from src.
func NewModel(cfg Config, src *rng.Source) *Model {
	cfg.Normalize()
	fd := cfg.DopplerHz()
	m := &Model{
		cfg:          cfg,
		mob:          NewMobility(cfg, src.Derive("mobility")),
		shadow:       NewShadowProcess(cfg.ShadowSigmaDB, cfg.ShadowDecorrM, src.Derive("shadow")),
		fader:        NewFader(fd, cfg.RicianK, src.Derive("fading")),
		eveFader:     NewFader(fd, cfg.RicianK, src.Derive("eve-fading")),
		eveShadow:    NewShadowProcess(cfg.ShadowSigmaDB, cfg.ShadowDecorrM, src.Derive("eve-shadow")),
		eveMix:       cfg.EveShadowCorr,
		eveFarFader:  NewFader(fd, cfg.RicianK, src.Derive("eve-far-fading")),
		eveFarShadow: NewShadowProcess(cfg.ShadowSigmaDB, cfg.ShadowDecorrM, src.Derive("eve-far-shadow")),
	}
	return m
}

// Config returns the normalized configuration the model was built with.
func (m *Model) Config() Config { return m.cfg }

// GainDB returns the reciprocal Alice↔Bob channel gain at time t seconds.
func (m *Model) GainDB(t float64) float64 {
	d := m.mob.Distance(t)
	pl := m.pathLossDB(d)
	sh := m.shadow.At(m.mob.RoutePosition(t))
	ss := m.fader.EnvelopeDB(t)
	return -pl + sh + ss
}

// RSSIdBm returns the noise-free received power on the legitimate link.
func (m *Model) RSSIdBm(t float64) float64 { return m.cfg.TxPowerDBm + m.GainDB(t) }

// EveImitateGainDB returns the gain of the Bob→Eve channel for an Eve who
// replays Alice's route EveOffsetM behind her: identical path loss trend,
// shadowing sampled slightly earlier along the route, independent
// small-scale fading.
func (m *Model) EveImitateGainDB(t float64) float64 {
	d := m.mob.Distance(t) + m.cfg.EveOffsetM
	pl := m.pathLossDB(d)
	pos := m.mob.RoutePosition(t)
	sh := m.mixedShadow(m.shadow.At(pos-m.cfg.EveOffsetM), m.eveShadow.At(pos))
	ss := m.eveFader.EnvelopeDB(t)
	return -pl + sh + ss
}

// mixedShadow blends the legitimate link's shadowing with Eve's own so the
// cross-correlation equals eveMix while the marginal variance is
// preserved.
func (m *Model) mixedShadow(legit, own float64) float64 {
	return m.eveMix*legit + math.Sqrt(1-m.eveMix*m.eveMix)*own
}

// EveEavesdropGainDB returns the gain of the Alice→Eve channel for an Eve
// parked EveOffsetM from Bob: similar distance, but fully independent
// shadowing and fading (she is far beyond λ/2 from Bob's antenna).
func (m *Model) EveEavesdropGainDB(t float64) float64 {
	d := m.mob.Distance(t) + m.cfg.EveOffsetM
	pl := m.pathLossDB(d)
	pos := m.mob.RoutePosition(t)
	sh := m.mixedShadow(m.shadow.At(pos), m.eveFarShadow.At(pos))
	ss := m.eveFarFader.EnvelopeDB(t)
	return -pl + sh + ss
}

// Distance reports the Alice–Bob separation at time t.
func (m *Model) Distance(t float64) float64 { return m.mob.Distance(t) }

func (m *Model) pathLossDB(d float64) float64 {
	if d < 1 {
		d = 1
	}
	return m.cfg.RefLossDB + 10*m.cfg.PathLossExp*log10(d)
}
