package channel

import (
	"math"

	"repro/internal/rng"
)

// Mobility models the endpoint kinematics of one link. The separation
// between the endpoints sweeps back and forth inside the configured
// [MinDistanceM, MaxDistanceM] band (vehicles approach, pass and recede
// along the road), and the model exposes the two quantities the channel
// needs:
//
//   - Distance(t): the Alice–Bob separation, which drives path loss, and
//   - RoutePosition(t): the cumulative distance driven by the moving
//     endpoints, which indexes the shadowing field (the local obstacle
//     environment changes as *either* endpoint moves).
type Mobility struct {
	link   LinkType
	speedA float64 // m/s
	speedB float64 // m/s

	minD, maxD float64
	closeSpeed float64 // rate at which the separation sweeps, m/s
	phase      float64
}

// NewMobility builds the mobility model for cfg.
func NewMobility(cfg Config, src *rng.Source) *Mobility {
	vA, vB := kmhToMs(cfg.SpeedAKmh), kmhToMs(cfg.SpeedBKmh)
	var closing float64
	switch cfg.Link {
	case V2I:
		// The vehicle's full speed translates into range change.
		closing = vA
	default:
		// Two vehicles in traffic close at their speed difference, but
		// never slower than a fraction of their common speed (lane
		// changes, curves, overtaking).
		closing = math.Abs(vA - vB)
		if floor := 0.25 * (vA + vB); closing < floor {
			closing = floor
		}
	}
	if closing <= 0 {
		closing = 0.5
	}
	span := cfg.MaxDistanceM - cfg.MinDistanceM
	return &Mobility{
		link:       cfg.Link,
		speedA:     vA,
		speedB:     vB,
		minD:       cfg.MinDistanceM,
		maxD:       cfg.MaxDistanceM,
		closeSpeed: closing,
		phase:      src.Uniform(0, 2*span),
	}
}

// bounce maps unbounded travel x onto a back-and-forth position in
// [0, length] (triangle wave).
func bounce(x, length float64) float64 {
	if length <= 0 {
		return 0
	}
	period := 2 * length
	x = math.Mod(x, period)
	if x < 0 {
		x += period
	}
	if x > length {
		return period - x
	}
	return x
}

// Distance returns the Alice–Bob separation at time t seconds.
func (m *Mobility) Distance(t float64) float64 {
	span := m.maxD - m.minD
	if span <= 0 {
		return m.minD
	}
	return m.minD + bounce(m.phase+m.closeSpeed*t, span)
}

// RoutePosition returns the cumulative environment-changing travel at time
// t: the sum of both endpoints' driven distances.
func (m *Mobility) RoutePosition(t float64) float64 {
	return (m.speedA + m.speedB) * t
}

// SpeedA returns Alice's speed in m/s.
func (m *Mobility) SpeedA() float64 { return m.speedA }

// SpeedB returns Bob's speed in m/s.
func (m *Mobility) SpeedB() float64 { return m.speedB }
