package channel

import (
	"math"

	"repro/internal/rng"
)

// Fader synthesizes small-scale fading with a Jakes/Clarke sum-of-sinusoids
// oscillator bank. The resulting complex gain has the classic Clarke
// autocorrelation J₀(2π f_d τ), so the coherence-time estimate
// T_c ≈ 0.423/f_d used by the paper holds by construction.
//
// With K > 0 a line-of-sight component is added, turning the envelope
// Rician (rural LOS links); K = 0 yields Rayleigh (urban NLOS).
type Fader struct {
	fd float64 // max Doppler shift, Hz
	k  float64 // Rician K-factor

	// Oscillator bank: per-path Doppler frequency and phases.
	freq   []float64
	phaseI []float64
	phaseQ []float64
	scale  float64

	losPhase   float64
	losDoppler float64
}

// faderPaths is the number of sinusoid paths; 16 is ample for a smooth
// Rayleigh envelope (Clarke recommends ≥ 8).
const faderPaths = 16

// NewFader builds a fader with maximum Doppler fd (Hz) and Rician factor k.
func NewFader(fd, k float64, src *rng.Source) *Fader {
	f := &Fader{
		fd:     fd,
		k:      k,
		freq:   make([]float64, faderPaths),
		phaseI: make([]float64, faderPaths),
		phaseQ: make([]float64, faderPaths),
		// Scatter power normalized to 1/(K+1) of unit total power,
		// split across paths and the two quadratures.
		scale:      math.Sqrt(1 / ((k + 1) * faderPaths)),
		losPhase:   src.Uniform(0, 2*math.Pi),
		losDoppler: fd * math.Cos(src.Uniform(0, 2*math.Pi)),
	}
	// Random arrival angles give each path a Doppler in [-fd, fd] with the
	// Clarke angle distribution.
	for n := 0; n < faderPaths; n++ {
		alpha := (2*math.Pi*float64(n) + src.Uniform(0, 2*math.Pi)) / faderPaths
		f.freq[n] = fd * math.Cos(alpha)
		f.phaseI[n] = src.Uniform(0, 2*math.Pi)
		f.phaseQ[n] = src.Uniform(0, 2*math.Pi)
	}
	return f
}

// Gain returns the complex channel gain at time t seconds.
func (f *Fader) Gain(t float64) (re, im float64) {
	for n := 0; n < faderPaths; n++ {
		w := 2 * math.Pi * f.freq[n] * t
		re += math.Cos(w + f.phaseI[n])
		im += math.Cos(w + f.phaseQ[n])
	}
	re *= f.scale
	im *= f.scale
	if f.k > 0 {
		a := math.Sqrt(f.k / (f.k + 1))
		w := 2*math.Pi*f.losDoppler*t + f.losPhase
		re += a * math.Cos(w)
		im += a * math.Sin(w)
	}
	return re, im
}

// Envelope returns |gain| at time t.
func (f *Fader) Envelope(t float64) float64 {
	re, im := f.Gain(t)
	return math.Hypot(re, im)
}

// EnvelopeDB returns the envelope in dB, floored at −60 dB to keep deep
// fades finite (receivers lose the packet long before that anyway).
func (f *Fader) EnvelopeDB(t float64) float64 {
	e := f.Envelope(t)
	db := 20 * log10(e)
	if db < -60 {
		db = -60
	}
	return db
}

// Doppler returns the configured maximum Doppler shift in Hz.
func (f *Fader) Doppler() float64 { return f.fd }

func log10(x float64) float64 {
	if x <= 0 {
		return -30 // −300 dB; callers floor anyway
	}
	return math.Log10(x)
}
