package trace

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/mathx"
	"repro/internal/rng"
)

func TestBuildShapes(t *testing.T) {
	sc := NewScenario(channel.Urban, channel.V2I)
	ds, err := Build(sc, 1, 20, 32, DefaultExtract())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Samples) != 20 {
		t.Fatalf("samples = %d, want 20", len(ds.Samples))
	}
	for _, s := range ds.Samples {
		for _, seq := range [][]float64{s.Alice, s.Bob, s.EveEavesdrop, s.EveImitate} {
			if len(seq) != 32 {
				t.Fatalf("sequence length %d, want 32", len(seq))
			}
		}
		if s.Duration <= 0 {
			t.Fatal("sample duration must be positive")
		}
	}
}

func TestBuildValidation(t *testing.T) {
	sc := NewScenario(channel.Urban, channel.V2I)
	if _, err := Build(sc, 1, 0, 32, DefaultExtract()); err == nil {
		t.Error("n=0 must be rejected")
	}
	if _, err := Build(sc, 1, 4, 30, DefaultExtract()); err == nil {
		t.Error("seqLen not a multiple of Blocks must be rejected")
	}
}

func TestNormalizationPerWindow(t *testing.T) {
	sc := NewScenario(channel.Urban, channel.V2I)
	ds, err := Build(sc, 2, 10, 32, DefaultExtract())
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range ds.Samples {
		if m := mathx.Mean(s.Alice); math.Abs(m) > 1e-9 {
			t.Fatalf("sample %d: Alice mean %v, want 0", i, m)
		}
		if sd := mathx.Std(s.Bob); math.Abs(sd-1) > 1e-9 {
			t.Fatalf("sample %d: Bob std %v, want 1", i, sd)
		}
	}
}

func TestSplitPartitions(t *testing.T) {
	sc := NewScenario(channel.Rural, channel.V2I)
	ds, err := Build(sc, 3, 40, 32, DefaultExtract())
	if err != nil {
		t.Fatal(err)
	}
	train, val, test := ds.Split(0.5, 0.25, rng.New(4))
	if len(train.Samples) != 20 || len(val.Samples) != 10 || len(test.Samples) != 10 {
		t.Fatalf("split sizes %d/%d/%d", len(train.Samples), len(val.Samples), len(test.Samples))
	}
	if train.Mean != ds.Mean || test.Std != ds.Std {
		t.Error("splits must share normalization constants")
	}
}

func TestSubset(t *testing.T) {
	sc := NewScenario(channel.Rural, channel.V2V)
	ds, err := Build(sc, 5, 20, 32, DefaultExtract())
	if err != nil {
		t.Fatal(err)
	}
	sub := ds.Subset(0.25)
	if len(sub.Samples) != 5 {
		t.Fatalf("subset size %d, want 5", len(sub.Samples))
	}
	if ds.Subset(0).Samples == nil {
		t.Error("subset floor is one sample")
	}
	if n := len(ds.Subset(5).Samples); n != 20 {
		t.Errorf("subset cap is the full set, got %d", n)
	}
}

func TestDetrendRemovesLinearTrend(t *testing.T) {
	// A pure linear ramp across exchanges should be almost entirely
	// removed, leaving near-zero residuals except edge effects.
	xs := make([]float64, 32)
	for i := range xs {
		xs[i] = float64(i / 4) // exchange index as the trend
	}
	detrendExchanges(xs, 4)
	for i := 8; i < 24; i++ { // interior exchanges
		if math.Abs(xs[i]) > 1e-9 {
			t.Fatalf("interior residual xs[%d] = %v after detrending a ramp", i, xs[i])
		}
	}
}

func TestDetrendPreservesDeviation(t *testing.T) {
	// A single deviant exchange must survive detrending (its own level
	// never enters its trend estimate).
	xs := make([]float64, 32)
	for i := 12; i < 16; i++ {
		xs[i] = 10
	}
	detrendExchanges(xs, 4)
	if xs[13] < 8 {
		t.Fatalf("deviation attenuated too much: %v", xs[13])
	}
}

func TestBuildDeterministic(t *testing.T) {
	sc := NewScenario(channel.Urban, channel.V2V)
	a, err := Build(sc, 7, 6, 32, DefaultExtract())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(sc, 7, 6, 32, DefaultExtract())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		for j := range a.Samples[i].Alice {
			if a.Samples[i].Alice[j] != b.Samples[i].Alice[j] {
				t.Fatal("same seed must reproduce the dataset")
			}
		}
	}
}
