package trace

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/lora"
	"repro/internal/mathx"
)

// diff returns the first differences of xs.
func diff(xs []float64) []float64 {
	if len(xs) < 2 {
		return nil
	}
	out := make([]float64, len(xs)-1)
	for i := 1; i < len(xs); i++ {
		out[i-1] = xs[i] - xs[i-1]
	}
	return out
}

// avgPRSSICorr averages the Alice/Bob pRSSI correlation over several
// independent channel realizations to smooth single-drive variance.
func avgPRSSICorr(t *testing.T, sc Scenario, seeds, exchanges int) float64 {
	t.Helper()
	var sum float64
	for s := 0; s < seeds; s++ {
		col := NewCollector(sc, int64(100+s))
		ex := col.Run(exchanges)
		pa, pb := PRSSI(ex)
		c, err := mathx.Pearson(pa, pb)
		if err != nil {
			t.Fatal(err)
		}
		sum += c
	}
	return sum / float64(seeds)
}

// TestCalibrationShapes is the load-bearing physics check: the simulated
// substrate must reproduce the qualitative findings of the paper's
// preliminary study (Sec. II-B/C) or every downstream experiment is
// meaningless.
func TestCalibrationShapes(t *testing.T) {
	t.Run("rRSSI beats pRSSI", func(t *testing.T) {
		for _, sc := range Scenarios() {
			col := NewCollector(sc, 42)
			ex := col.Run(60)
			pa, pb := PRSSI(ex)
			pCorr, err := mathx.Pearson(pa, pb)
			if err != nil {
				t.Fatal(err)
			}
			aa, ab := ArRSSI(ex, DefaultExtract())
			aCorr, err := Correlation(aa, ab)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: pRSSI corr=%.3f arRSSI corr=%.3f", sc.Name, pCorr, aCorr)
			if aCorr <= pCorr {
				t.Errorf("%s: arRSSI corr %.3f should beat pRSSI corr %.3f", sc.Name, aCorr, pCorr)
			}
			if aCorr < 0.7 {
				t.Errorf("%s: arRSSI corr %.3f too low for key generation", sc.Name, aCorr)
			}
		}
	})

	t.Run("correlation falls with lower data rate (Fig 2a)", func(t *testing.T) {
		sweep := lora.DataRateSweep()
		corrs := make([]float64, len(sweep))
		for i, pt := range sweep {
			sc := NewScenario(channel.Urban, channel.V2I)
			sc.Radio = pt.Params
			corrs[i] = avgPRSSICorr(t, sc, 4, 80)
			t.Logf("%s (airtime %.0f ms): pRSSI corr=%.3f", pt.Label, pt.Params.Airtime()*1e3, corrs[i])
		}
		if corrs[0] >= corrs[len(corrs)-1] {
			t.Errorf("correlation should rise with data rate: %v", corrs)
		}
	})

	t.Run("correlation falls with speed (Fig 2b)", func(t *testing.T) {
		speeds := []float64{10, 30, 50, 80}
		corrs := make([]float64, len(speeds))
		for i, v := range speeds {
			sc := NewScenario(channel.Urban, channel.V2I)
			sc.SpeedAKmh = v
			corrs[i] = avgPRSSICorr(t, sc, 4, 80)
			t.Logf("%.0f km/h: pRSSI corr=%.3f", v, corrs[i])
		}
		if corrs[0] <= corrs[len(corrs)-1] {
			t.Errorf("correlation should fall with speed: %v", corrs)
		}
	})

	// Eve's *overall pattern* is allowed to track the legitimate series
	// (Fig. 16: path loss and shadow trends are observable by following
	// the route) — what she must not share is the fine-grained variation
	// the quantizer keys on. First differences isolate that structure.
	t.Run("Eve fine structure decorrelated from Bob", func(t *testing.T) {
		sc := NewScenario(channel.Urban, channel.V2V)
		col := NewCollector(sc, 5)
		ex := col.Run(80)
		alice, bob := ArRSSI(ex, DefaultExtract())
		eve := EveArRSSI(ex, DefaultExtract(), true)
		legit, err := mathx.Pearson(diff(Flatten(alice)), diff(Flatten(bob)))
		if err != nil {
			t.Fatal(err)
		}
		attack, err := mathx.Pearson(diff(Flatten(eve)), diff(Flatten(bob)))
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("legit diff-corr=%.3f, imitating-Eve diff-corr=%.3f", legit, attack)
		if attack >= legit-0.15 {
			t.Errorf("Eve diff-corr %.3f should be well below legit %.3f", attack, legit)
		}
	})

	t.Run("arRSSI window optimum is interior (Fig 9)", func(t *testing.T) {
		sc := NewScenario(channel.Urban, channel.V2I)
		col := NewCollector(sc, 13)
		ex := col.Run(100)
		fractions := []float64{0.02, 0.05, 0.10, 0.20, 0.35, 0.5, 0.8}
		corrs := make([]float64, len(fractions))
		for i, f := range fractions {
			cfg := ExtractConfig{WindowFraction: f, Blocks: 4}
			a, b := ArRSSI(ex, cfg)
			c, err := Correlation(a, b)
			if err != nil {
				t.Fatal(err)
			}
			corrs[i] = c
			t.Logf("window %.0f%%: corr=%.3f", f*100, c)
		}
		// The best window should not be the widest one.
		best := 0
		for i, c := range corrs {
			if c > corrs[best] {
				best = i
			}
		}
		if best == len(corrs)-1 {
			t.Errorf("window optimum should be interior, got widest: %v", corrs)
		}
	})
}
