package trace

import (
	"repro/internal/channel"
	"repro/internal/lora"
	"repro/internal/rng"
)

// Exchange is one probe/response round:
//
//	t0                t0+Ta        t0+Ta+Td         t0+2Ta+Td
//	|-- Alice probes --|   (Bob's   |-- Bob answers --|
//	|   Bob receives   |  turnaround|  Alice receives |
//
// Bob's rRSSI window therefore *ends* right where Alice's *begins* — the
// adjacency the arRSSI feature exploits.
type Exchange struct {
	Index int
	BobRx lora.Reception // Bob receiving Alice's probe (earlier window)
	AlcRx lora.Reception // Alice receiving Bob's response (later window)

	// Eve's passive observations over her own, spatially distinct
	// channels, time-aligned with the legitimate windows.
	EveEavesdropRx lora.Reception // Eve (parked near Bob) hearing Alice's probe
	EveImitateRx   lora.Reception // Eve (tailing Alice) hearing Bob's response

	// Duration is the wall-clock span of the whole round including the
	// turnaround delays, used for key-generation-rate accounting.
	Duration float64
}

// Collector runs probe exchanges for one scenario against one seeded
// channel realization.
type Collector struct {
	Scenario Scenario
	Model    *channel.Model

	alice *lora.Transceiver
	bob   *lora.Transceiver
	eve   *lora.Transceiver

	radio   lora.Params
	airtime float64
	now     float64
	next    int
}

// NewCollector builds a collector for the scenario; all randomness derives
// from seed.
func NewCollector(sc Scenario, seed int64) *Collector {
	src := rng.New(seed)
	model := channel.NewModel(sc.ChannelConfig(), src.Derive("channel"))
	return &Collector{
		Scenario: sc,
		Model:    model,
		alice:    lora.NewTransceiver(sc.Device, src.Derive("alice")),
		bob:      lora.NewTransceiver(sc.Device, src.Derive("bob")),
		eve:      lora.NewTransceiver(sc.Device, src.Derive("eve")),
		radio:    sc.Radio,
		airtime:  sc.Radio.Airtime(),
	}
}

// Airtime returns the per-packet time on air for the scenario's radio.
func (c *Collector) Airtime() float64 { return c.airtime }

// Alice returns Alice's transceiver (for sample-interval tweaks in tests).
func (c *Collector) Alice() *lora.Transceiver { return c.alice }

// Bob returns Bob's transceiver.
func (c *Collector) Bob() *lora.Transceiver { return c.bob }

// Run advances the timeline by n probe/response rounds and returns them.
func (c *Collector) Run(n int) []Exchange {
	out := make([]Exchange, 0, n)
	tx := c.Model.Config().TxPowerDBm
	legit := func(t float64) float64 { return tx + c.Model.GainDB(t) }
	eveEaves := func(t float64) float64 { return tx + c.Model.EveEavesdropGainDB(t) }
	eveImit := func(t float64) float64 { return tx + c.Model.EveImitateGainDB(t) }

	for i := 0; i < n; i++ {
		start := c.now
		// Alice's probe is on the air; Bob and the eavesdropping Eve hear it.
		bobRx := c.bob.Receive(legit, c.now, c.airtime)
		eveERx := c.eve.Receive(eveEaves, c.now, c.airtime)
		c.now += c.airtime

		// Bob turns around.
		c.now += c.bob.OpDelay()

		// Bob's response is on the air; Alice and the imitating Eve hear it.
		alcRx := c.alice.Receive(legit, c.now, c.airtime)
		eveIRx := c.eve.Receive(eveImit, c.now, c.airtime)
		c.now += c.airtime

		// Alice's turnaround before the next probe.
		c.now += c.alice.OpDelay()

		out = append(out, Exchange{
			Index:          c.next,
			BobRx:          bobRx,
			AlcRx:          alcRx,
			EveEavesdropRx: eveERx,
			EveImitateRx:   eveIRx,
			Duration:       c.now - start,
		})
		c.next++
	}
	return out
}
