// Package trace drives simulated probe exchanges between Alice and Bob
// over the channel and LoRa PHY models and extracts the channel features
// Vehicle-Key consumes: packet RSSI (pRSSI), register RSSI (rRSSI) and the
// paper's adjacent-register-RSSI feature (arRSSI — the temporally adjacent
// edges of the two reception windows, block-averaged).
//
// It stands in for the paper's 20+ hours of drive-test data collection:
// the same four scenarios (V2V/V2I × urban/rural), the same radio
// configuration, and the same three device types.
package trace

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/lora"
)

// Scenario names one of the paper's four evaluation environments plus the
// radio and device configuration used in it.
type Scenario struct {
	Name      string
	Env       channel.Environment
	Link      channel.LinkType
	SpeedAKmh float64
	SpeedBKmh float64
	Device    lora.DeviceType
	Radio     lora.Params
}

// NewScenario builds a scenario with the paper's defaults for the given
// environment and link type: SF12/125 kHz/CR4/8 radio, Dragino shield,
// 50 km/h vehicle(s).
func NewScenario(env channel.Environment, link channel.LinkType) Scenario {
	s := Scenario{
		Name:      fmt.Sprintf("%s-%s", link, env),
		Env:       env,
		Link:      link,
		SpeedAKmh: 50,
		Device:    lora.DraginoLoRaShield,
		Radio:     lora.Default(),
	}
	if link == channel.V2V {
		s.SpeedBKmh = 30
	}
	return s
}

// Scenarios returns the paper's four evaluation scenarios in the order
// used throughout its figures: V2I-Urban, V2I-Rural, V2V-Urban, V2V-Rural.
func Scenarios() []Scenario {
	return []Scenario{
		NewScenario(channel.Urban, channel.V2I),
		NewScenario(channel.Rural, channel.V2I),
		NewScenario(channel.Urban, channel.V2V),
		NewScenario(channel.Rural, channel.V2V),
	}
}

// ChannelConfig translates the scenario into a channel.Config.
func (s Scenario) ChannelConfig() channel.Config {
	cfg := channel.Config{
		Env:       s.Env,
		Link:      s.Link,
		SpeedAKmh: s.SpeedAKmh,
		SpeedBKmh: s.SpeedBKmh,
		CarrierHz: s.Radio.CarrierHz,
	}
	cfg.Normalize()
	return cfg
}
