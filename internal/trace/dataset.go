package trace

import (
	"errors"
	"fmt"

	"repro/internal/mathx"
	"repro/internal/rng"
)

// Sample is one training/evaluation item for the prediction model: an
// aligned window of arRSSI features from both sides (and Eve's view of the
// same window, for attack evaluation).
type Sample struct {
	Alice []float64 // Alice's arRSSI sequence (model input)
	Bob   []float64 // Bob's arRSSI sequence (prediction target)

	EveEavesdrop []float64 // Eve's aligned features, eavesdropping position
	EveImitate   []float64 // Eve's aligned features, imitating position

	// Duration is the channel-probing wall time that produced the sample,
	// used for key-generation-rate accounting.
	Duration float64
}

// Dataset is a set of samples from one scenario plus the normalization
// constants fitted on it. Vehicle-Key normalizes arRSSI to zero mean and
// unit variance before feeding the network.
type Dataset struct {
	Scenario Scenario
	Samples  []Sample
	Mean     float64
	Std      float64
	SeqLen   int

	blockSize int // features per exchange, for detrending
}

// Build collects enough probe exchanges from the scenario to produce n
// samples with sequence length seqLen and extracts normalized arRSSI
// features. All randomness derives from seed.
func Build(sc Scenario, seed int64, n, seqLen int, cfg ExtractConfig) (*Dataset, error) {
	if n <= 0 || seqLen <= 0 {
		return nil, errors.New("trace: n and seqLen must be positive")
	}
	cfg = cfg.normalize()
	if seqLen%cfg.Blocks != 0 {
		return nil, fmt.Errorf("trace: seqLen %d must be a multiple of Blocks %d", seqLen, cfg.Blocks)
	}
	perSample := seqLen / cfg.Blocks
	col := NewCollector(sc, seed)
	exchanges := col.Run(n * perSample)
	alice, bob := ArRSSI(exchanges, cfg)
	eveE := EveArRSSI(exchanges, cfg, false)
	eveI := EveArRSSI(exchanges, cfg, true)

	ds := &Dataset{Scenario: sc, SeqLen: seqLen, Samples: make([]Sample, 0, n), blockSize: cfg.Blocks}
	for s := 0; s < n; s++ {
		smp := Sample{
			Alice:        make([]float64, 0, seqLen),
			Bob:          make([]float64, 0, seqLen),
			EveEavesdrop: make([]float64, 0, seqLen),
			EveImitate:   make([]float64, 0, seqLen),
		}
		for e := s * perSample; e < (s+1)*perSample; e++ {
			smp.Alice = append(smp.Alice, alice[e]...)
			smp.Bob = append(smp.Bob, bob[e]...)
			smp.EveEavesdrop = append(smp.EveEavesdrop, eveE[e]...)
			smp.EveImitate = append(smp.EveImitate, eveI[e]...)
			smp.Duration += exchanges[e].Duration
		}
		ds.Samples = append(ds.Samples, smp)
	}
	ds.fitNormalization()
	return ds, nil
}

// fitNormalization z-scores every window by its own mean and standard
// deviation, each side using only its own measurements (no exchange
// needed). Per-window normalization is load-bearing twice over: it
// removes the large-scale trend (path loss level) from the quantizer's
// view, which (a) keeps the key bits from following a trend an attacker
// can observe by driving the same route, and (b) keeps the bit stream
// unbiased when the vehicles are far apart (NIST randomness). The
// dataset-level Mean/Std are retained for reference.
func (d *Dataset) fitNormalization() {
	var all []float64
	for _, s := range d.Samples {
		all = append(all, s.Alice...)
		all = append(all, s.Bob...)
	}
	d.Mean = mathx.Mean(all)
	d.Std = mathx.Std(all)
	if d.Std == 0 {
		d.Std = 1
	}
	for i := range d.Samples {
		for _, seq := range [][]float64{
			d.Samples[i].Alice, d.Samples[i].Bob,
			d.Samples[i].EveEavesdrop, d.Samples[i].EveImitate,
		} {
			detrendExchanges(seq, d.blockSize)
			mathx.Normalize(seq)
		}
	}
}

// detrendExchanges removes the smooth large-scale trend from a feature
// window: each exchange's features are reduced by the mean level of the
// *neighboring* exchanges (±2, excluding the exchange itself). Path loss
// varies smoothly across exchanges and is cancelled; the per-exchange
// shadowing deviation — which decorrelates between exchanges and is the
// key's actual entropy source — is preserved because the exchange's own
// level never enters its trend estimate. The trend is exactly what an
// attacker replaying the route can observe, so it must not reach the
// quantizer.
func detrendExchanges(xs []float64, blockSize int) {
	if blockSize <= 0 || len(xs) < 2*blockSize {
		return
	}
	nEx := len(xs) / blockSize
	means := make([]float64, nEx)
	for e := 0; e < nEx; e++ {
		means[e] = mathx.Mean(xs[e*blockSize : (e+1)*blockSize])
	}
	for e := 0; e < nEx; e++ {
		var sum float64
		var cnt int
		for j := e - 2; j <= e+2; j++ {
			if j == e || j < 0 || j >= nEx {
				continue
			}
			sum += means[j]
			cnt++
		}
		if cnt == 0 {
			continue
		}
		trend := sum / float64(cnt)
		for i := e * blockSize; i < (e+1)*blockSize; i++ {
			xs[i] -= trend
		}
	}
}

// Split shuffles and partitions the dataset into train/val/test parts with
// the given fractions (the paper uses 70/15/15). The normalization
// constants are shared by all three parts.
func (d *Dataset) Split(trainFrac, valFrac float64, src *rng.Source) (train, val, test *Dataset) {
	idx := src.Perm(len(d.Samples))
	nTrain := int(trainFrac * float64(len(idx)))
	nVal := int(valFrac * float64(len(idx)))
	part := func(ids []int) *Dataset {
		p := &Dataset{Scenario: d.Scenario, Mean: d.Mean, Std: d.Std, SeqLen: d.SeqLen, blockSize: d.blockSize}
		p.Samples = make([]Sample, len(ids))
		for i, id := range ids {
			p.Samples[i] = d.Samples[id]
		}
		return p
	}
	return part(idx[:nTrain]), part(idx[nTrain : nTrain+nVal]), part(idx[nTrain+nVal:])
}

// Subset returns a dataset with the first fraction of samples — used by
// the transfer-learning experiment's "transfer-10%" conditions.
func (d *Dataset) Subset(fraction float64) *Dataset {
	n := int(fraction * float64(len(d.Samples)))
	if n < 1 {
		n = 1
	}
	if n > len(d.Samples) {
		n = len(d.Samples)
	}
	return &Dataset{Scenario: d.Scenario, Mean: d.Mean, Std: d.Std, SeqLen: d.SeqLen, Samples: d.Samples[:n], blockSize: d.blockSize}
}

// TotalDuration sums the probing time across samples.
func (d *Dataset) TotalDuration() float64 {
	var t float64
	for _, s := range d.Samples {
		t += s.Duration
	}
	return t
}
