package trace

import (
	"errors"

	"repro/internal/mathx"
)

// ExtractConfig controls arRSSI feature extraction.
type ExtractConfig struct {
	// WindowFraction is the share of each reception window used: the last
	// fraction of the earlier window (Bob's) and the first fraction of the
	// later window (Alice's). The paper's Fig. 9 sweep finds ≈ 0.10
	// optimal.
	WindowFraction float64
	// Blocks is the number of block-averaged arRSSI features produced per
	// exchange per side. Each feature is the mean of WindowFraction·N/Blocks
	// consecutive register reads.
	Blocks int
}

// DefaultExtract is the configuration selected by the paper: the adjacent
// 10 % of register samples, averaged into 4 features per exchange.
func DefaultExtract() ExtractConfig {
	return ExtractConfig{WindowFraction: 0.10, Blocks: 4}
}

func (c ExtractConfig) normalize() ExtractConfig {
	if c.WindowFraction <= 0 || c.WindowFraction > 1 {
		c.WindowFraction = 0.10
	}
	if c.Blocks <= 0 {
		c.Blocks = 4
	}
	return c
}

// edgeWindow slices the adjacent edge out of a register-RSSI stream:
// the trailing fraction when tail is true (the earlier window), else the
// leading fraction (the later window). At least one sample is returned.
func edgeWindow(samples []float64, fraction float64, tail bool) []float64 {
	k := int(fraction * float64(len(samples)))
	if k < 1 {
		k = 1
	}
	if k > len(samples) {
		k = len(samples)
	}
	if tail {
		return samples[len(samples)-k:]
	}
	return samples[:k]
}

// blockMeans averages samples into n consecutive block means. When there
// are fewer samples than blocks, the available samples are repeated so the
// output length is always n.
func blockMeans(samples []float64, n int) []float64 {
	out := make([]float64, n)
	if len(samples) == 0 {
		return out
	}
	for i := 0; i < n; i++ {
		lo := i * len(samples) / n
		hi := (i + 1) * len(samples) / n
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(samples) {
			hi = len(samples)
			lo = hi - 1
		}
		out[i] = mathx.Mean(samples[lo:hi])
	}
	return out
}

// ArRSSI extracts the per-exchange arRSSI feature vectors for Alice and
// Bob. Bob contributes the tail of his (earlier) window, Alice the head of
// hers. Bob's blocks are mirrored so feature 0 on both sides is the block
// touching the shared window edge: matched feature i is then separated by
// only the turnaround delay plus 2i block spans, the adjacency the paper's
// Fig. 4 observation exploits.
func ArRSSI(exchanges []Exchange, cfg ExtractConfig) (alice, bob [][]float64) {
	cfg = cfg.normalize()
	alice = make([][]float64, len(exchanges))
	bob = make([][]float64, len(exchanges))
	for i, ex := range exchanges {
		bobEdge := edgeWindow(ex.BobRx.RRSSI, cfg.WindowFraction, true)
		alcEdge := edgeWindow(ex.AlcRx.RRSSI, cfg.WindowFraction, false)
		bob[i] = reverse(blockMeans(bobEdge, cfg.Blocks))
		alice[i] = blockMeans(alcEdge, cfg.Blocks)
	}
	return alice, bob
}

func reverse(xs []float64) []float64 {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
	return xs
}

// EveArRSSI extracts Eve's arRSSI features. An eavesdropping Eve mimics
// Bob's role (tail of the probe window); an imitating Eve mimics Alice's
// (head of the response window).
func EveArRSSI(exchanges []Exchange, cfg ExtractConfig, imitate bool) [][]float64 {
	cfg = cfg.normalize()
	out := make([][]float64, len(exchanges))
	for i, ex := range exchanges {
		if imitate {
			edge := edgeWindow(ex.EveImitateRx.RRSSI, cfg.WindowFraction, false)
			out[i] = blockMeans(edge, cfg.Blocks)
		} else {
			edge := edgeWindow(ex.EveEavesdropRx.RRSSI, cfg.WindowFraction, true)
			out[i] = reverse(blockMeans(edge, cfg.Blocks))
		}
	}
	return out
}

// PRSSI returns the per-exchange packet-averaged RSSI series for both
// sides — the legacy feature the paper's preliminary study shows is too
// asymmetric for LoRa key generation.
func PRSSI(exchanges []Exchange) (alice, bob []float64) {
	alice = make([]float64, len(exchanges))
	bob = make([]float64, len(exchanges))
	for i, ex := range exchanges {
		alice[i] = ex.AlcRx.PRSSI
		bob[i] = ex.BobRx.PRSSI
	}
	return alice, bob
}

// EvePRSSI returns Eve's per-exchange packet RSSI (eavesdropping channel).
func EvePRSSI(exchanges []Exchange) []float64 {
	out := make([]float64, len(exchanges))
	for i, ex := range exchanges {
		out[i] = ex.EveEavesdropRx.PRSSI
	}
	return out
}

// Flatten concatenates per-exchange feature vectors into one series.
func Flatten(features [][]float64) []float64 {
	var n int
	for _, f := range features {
		n += len(f)
	}
	out := make([]float64, 0, n)
	for _, f := range features {
		out = append(out, f...)
	}
	return out
}

// Correlation returns the Pearson correlation between two per-exchange
// feature sets, flattened.
func Correlation(a, b [][]float64) (float64, error) {
	fa, fb := Flatten(a), Flatten(b)
	if len(fa) != len(fb) {
		return 0, errors.New("trace: feature shape mismatch")
	}
	return mathx.Pearson(fa, fb)
}
