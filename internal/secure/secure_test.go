package secure

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMACRoundTrip(t *testing.T) {
	key := []byte{1, 0, 1, 1, 0, 0, 1, 0}
	msg := []byte("probe 42")
	tag := MAC(key, msg)
	if len(tag) != MACSize {
		t.Fatalf("tag length %d, want %d", len(tag), MACSize)
	}
	if !VerifyMAC(key, msg, tag) {
		t.Fatal("valid MAC rejected")
	}
	if VerifyMAC(key, []byte("probe 43"), tag) {
		t.Fatal("modified message accepted")
	}
	key[0] ^= 1
	if VerifyMAC(key, msg, tag) {
		t.Fatal("wrong key accepted")
	}
}

func TestReplayGuard(t *testing.T) {
	g := NewReplayGuard()
	if err := g.Check("s", 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Check("s", 2); err != nil {
		t.Fatal(err)
	}
	if err := g.Check("s", 2); err == nil {
		t.Fatal("replay accepted")
	}
	if err := g.Check("s", 1); err == nil {
		t.Fatal("stale nonce accepted")
	}
	if err := g.Check("other", 1); err != nil {
		t.Fatal("independent session rejected")
	}
}

func TestChannelSealOpen(t *testing.T) {
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(i)
	}
	a, err := NewChannel(key)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewChannel(key)
	if err != nil {
		t.Fatal(err)
	}
	f := func(msg []byte) bool {
		ct := a.Seal(msg)
		pt, err := b.Open(ct)
		return err == nil && bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestChannelRejectsReplayAndTamper(t *testing.T) {
	key := make([]byte, 16)
	a, _ := NewChannel(key)
	b, _ := NewChannel(key)
	ct := a.Seal([]byte("hello"))
	if _, err := b.Open(ct); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Open(ct); err == nil {
		t.Fatal("replay accepted")
	}
	ct2 := a.Seal([]byte("world"))
	ct2[len(ct2)-1] ^= 1
	if _, err := b.Open(ct2); err == nil {
		t.Fatal("tampered ciphertext accepted")
	}
}

func TestChannelWrongKey(t *testing.T) {
	k1 := make([]byte, 16)
	k2 := make([]byte, 16)
	k2[0] = 1
	a, _ := NewChannel(k1)
	b, _ := NewChannel(k2)
	if _, err := b.Open(a.Seal([]byte("x"))); err == nil {
		t.Fatal("wrong key accepted")
	}
}

func TestChannelKeyLength(t *testing.T) {
	if _, err := NewChannel(make([]byte, 15)); err == nil {
		t.Fatal("15-byte key accepted")
	}
}

func TestWindowGuardInOrder(t *testing.T) {
	g := NewWindowGuard(64)
	for n := uint64(1); n <= 100; n++ {
		if err := g.Check("s", n); err != nil {
			t.Fatalf("in-order nonce %d rejected: %v", n, err)
		}
	}
}

func TestWindowGuardOutOfOrderWithinWindow(t *testing.T) {
	g := NewWindowGuard(64)
	for _, n := range []uint64{5, 3, 4, 1, 2, 10, 7, 9, 6, 8} {
		if err := g.Check("s", n); err != nil {
			t.Fatalf("fresh out-of-order nonce %d rejected: %v", n, err)
		}
	}
}

func TestWindowGuardRejectsDuplicates(t *testing.T) {
	g := NewWindowGuard(64)
	for _, n := range []uint64{1, 5, 3} {
		if err := g.Check("s", n); err != nil {
			t.Fatalf("nonce %d: %v", n, err)
		}
	}
	for _, n := range []uint64{1, 5, 3} {
		if err := g.Check("s", n); err == nil {
			t.Fatalf("duplicate nonce %d accepted", n)
		}
	}
	// Fresh nonces still pass after the rejections.
	if err := g.Check("s", 6); err != nil {
		t.Fatalf("nonce 6 after duplicates: %v", err)
	}
}

func TestWindowGuardRejectsBelowWindow(t *testing.T) {
	g := NewWindowGuard(8)
	if err := g.Check("s", 100); err != nil {
		t.Fatal(err)
	}
	if err := g.Check("s", 92); err == nil {
		t.Fatal("nonce 8 below max accepted with window 8")
	}
	if err := g.Check("s", 93); err != nil {
		t.Fatalf("nonce 7 below max rejected with window 8: %v", err)
	}
}

func TestWindowGuardSessionsIndependent(t *testing.T) {
	g := NewWindowGuard(64)
	if err := g.Check("a", 9); err != nil {
		t.Fatal(err)
	}
	if err := g.Check("b", 9); err != nil {
		t.Fatalf("session b blocked by session a: %v", err)
	}
}

func TestWindowGuardLargeJump(t *testing.T) {
	g := NewWindowGuard(64)
	if err := g.Check("s", 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Check("s", 1000); err != nil {
		t.Fatal(err)
	}
	if err := g.Check("s", 1); err == nil {
		t.Fatal("ancient nonce accepted after jump")
	}
	if err := g.Check("s", 999); err != nil {
		t.Fatalf("nonce just inside window rejected: %v", err)
	}
}
