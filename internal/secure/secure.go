// Package secure provides the protocol-security building blocks the paper
// applies around reconciliation (Sec. IV-C): HMAC message authentication
// against man-in-the-middle modification, nonce/session-ID replay
// protection, and an AES-128-GCM channel for the data that the established
// key finally protects.
package secure

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// MACSize is the truncated HMAC-SHA256 tag length in bytes.
const MACSize = 16

// MAC computes the message authentication code the reconciliation
// messages carry: HMAC-SHA256 keyed with the sender's (Bloom-domain) key
// material, truncated to MACSize bytes.
func MAC(keyBits []byte, message []byte) []byte {
	mac := hmac.New(sha256.New, packKeyed(keyBits))
	mac.Write(message)
	return mac.Sum(nil)[:MACSize]
}

// VerifyMAC checks a MAC in constant time.
func VerifyMAC(keyBits, message, tag []byte) bool {
	return hmac.Equal(MAC(keyBits, message), tag)
}

func packKeyed(bits []byte) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b == 1 {
			out[i/8] |= 1 << uint(7-i%8)
		}
	}
	return out
}

// BlockImage derives the MAC-keying image of a raw key block: the bit
// expansion of HMAC-SHA256 keyed by the public session salt over the
// packed block. Schemes whose reconciliation works directly on raw bits
// hand this image — never the block itself — to the reconciliation-
// message MAC, so the key material behind the MAC is one-way in the
// block: combined with the public linear syndrome equations, a raw-bit
// MAC key would let an eavesdropper solve for the block, while the
// image forces a full guess-and-hash per candidate. Like all key
// images, the result must be wiped once the MAC is computed.
func BlockImage(block, salt []byte) []byte {
	mac := hmac.New(sha256.New, salt)
	mac.Write(packKeyed(block))
	sum := mac.Sum(nil)
	out := make([]byte, 8*len(sum))
	for i, b := range sum {
		for j := 0; j < 8; j++ {
			out[i*8+j] = b >> uint(7-j) & 1
		}
	}
	return out
}

// Wipe zeroes key material in place. Go never scrubs dead heap memory,
// so intermediate key buffers (Bloom-domain images, expired round keys,
// cached envelopes) must be wiped explicitly once they are dead — the
// invariant the vklint zeroize analyzer enforces.
func Wipe(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// WipeFloats zeroes a float64 buffer that carried key-derived signal
// (code vectors, soft values) the same way Wipe does for bytes.
func WipeFloats(f []float64) {
	for i := range f {
		f[i] = 0
	}
}

// ErrReplay reports a replayed or out-of-window message.
var ErrReplay = errors.New("secure: replayed message")

// ReplayGuard tracks (session, nonce) pairs to reject replays. Nonces must
// be strictly increasing within a session, the standard counter scheme the
// paper references.
type ReplayGuard struct {
	sessions map[string]uint64
}

// NewReplayGuard returns an empty guard.
func NewReplayGuard() *ReplayGuard {
	return &ReplayGuard{sessions: make(map[string]uint64)}
}

// Check admits the (session, nonce) pair if the nonce advances the
// session's counter, and rejects replays or reordered messages.
func (g *ReplayGuard) Check(sessionID string, nonce uint64) error {
	last, seen := g.sessions[sessionID]
	if seen && nonce <= last {
		return fmt.Errorf("%w: session %q nonce %d ≤ %d", ErrReplay, sessionID, nonce, last)
	}
	g.sessions[sessionID] = nonce
	return nil
}

// WindowGuard is a sliding-window replay guard (the RFC 4303 ESP
// anti-replay scheme). Unlike ReplayGuard's strict counter, it admits
// messages that arrive out of order — which retransmission and reordered
// links produce constantly — while still rejecting every duplicate nonce
// and everything older than the window. The protocol layer uses it so
// that a reordered-but-fresh envelope is usable instead of discarded.
type WindowGuard struct {
	window   uint64
	sessions map[string]*windowState
}

type windowState struct {
	max  uint64 // highest nonce admitted
	seen uint64 // bit i set ⇔ nonce (max - i) admitted
}

// NewWindowGuard returns a guard admitting out-of-order nonces up to
// window positions behind the newest; window is clamped to [1, 64].
func NewWindowGuard(window int) *WindowGuard {
	if window < 1 {
		window = 1
	}
	if window > 64 {
		window = 64
	}
	return &WindowGuard{window: uint64(window), sessions: make(map[string]*windowState)}
}

// Check admits the (session, nonce) pair if the nonce has not been seen
// and is within the replay window of the newest admitted nonce.
func (g *WindowGuard) Check(sessionID string, nonce uint64) error {
	st, ok := g.sessions[sessionID]
	if !ok {
		st = &windowState{}
		g.sessions[sessionID] = st
	}
	switch {
	case nonce > st.max:
		shift := nonce - st.max
		if shift >= 64 {
			st.seen = 0
		} else {
			st.seen <<= shift
		}
		st.seen |= 1
		st.max = nonce
		return nil
	default:
		diff := st.max - nonce
		if diff >= g.window {
			return fmt.Errorf("%w: session %q nonce %d below window (max %d)", ErrReplay, sessionID, nonce, st.max)
		}
		if st.seen&(1<<diff) != 0 {
			return fmt.Errorf("%w: session %q nonce %d already seen", ErrReplay, sessionID, nonce)
		}
		st.seen |= 1 << diff
		return nil
	}
}

// Channel is an AES-128-GCM secure channel over an established key.
type Channel struct {
	aead    cipher.AEAD
	sendSeq uint64
	recvSeq uint64
}

// NewChannel builds a channel from a 16-byte key (the output of privacy
// amplification).
func NewChannel(key []byte) (*Channel, error) {
	if len(key) != 16 {
		return nil, fmt.Errorf("secure: key must be 16 bytes, got %d", len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("secure: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("secure: %w", err)
	}
	return &Channel{aead: aead}, nil
}

// Seal encrypts and authenticates plaintext with the next send sequence
// number as nonce; the sequence is prepended so Open can reconstruct it.
func (c *Channel) Seal(plaintext []byte) []byte {
	c.sendSeq++
	nonce := make([]byte, c.aead.NonceSize())
	binary.BigEndian.PutUint64(nonce[len(nonce)-8:], c.sendSeq)
	out := make([]byte, 8, 8+len(plaintext)+c.aead.Overhead())
	binary.BigEndian.PutUint64(out, c.sendSeq)
	return c.aead.Seal(out, nonce, plaintext, out[:8])
}

// Open authenticates and decrypts a message produced by the peer's Seal,
// enforcing strictly increasing sequence numbers (replay rejection).
func (c *Channel) Open(ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < 8 {
		return nil, errors.New("secure: message too short")
	}
	seq := binary.BigEndian.Uint64(ciphertext[:8])
	if seq <= c.recvSeq {
		return nil, ErrReplay
	}
	nonce := make([]byte, c.aead.NonceSize())
	binary.BigEndian.PutUint64(nonce[len(nonce)-8:], seq)
	pt, err := c.aead.Open(nil, nonce, ciphertext[8:], ciphertext[:8])
	if err != nil {
		return nil, fmt.Errorf("secure: authentication failed: %w", err)
	}
	c.recvSeq = seq
	return pt, nil
}
