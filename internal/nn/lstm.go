package nn

import (
	"fmt"

	"repro/internal/rng"
)

// LSTM is a single-layer LSTM processing a whole sequence with full
// backpropagation through time. Gate layout follows the standard
// formulation:
//
//	i = σ(Wi·x + Ui·h + bi)   input gate
//	f = σ(Wf·x + Uf·h + bf)   forget gate
//	o = σ(Wo·x + Uo·h + bo)   output gate
//	g = tanh(Wg·x + Ug·h + bg) cell candidate
//	c = f∘c' + i∘g,  h = o∘tanh(c)
type LSTM struct {
	InDim  int
	Hidden int

	// One Param per gate weight matrix/vector: W* are Hidden×InDim,
	// U* are Hidden×Hidden, b* are Hidden.
	wi, wf, wo, wg *Param
	ui, uf, uo, ug *Param
	bi, bf, bo, bg *Param

	cache lstmCache
	infer lstmInferScratch // reusable buffers for ForwardInfer (infer.go)
}

type lstmCache struct {
	xs         [][]float64
	i, f, o, g [][]float64
	c, h, tc   [][]float64 // cell, hidden, tanh(cell)
}

// NewLSTM creates an LSTM with Xavier-initialized weights and the
// customary forget-gate bias of 1 (helps gradient flow early in training).
func NewLSTM(name string, inDim, hidden int, src *rng.Source) *LSTM {
	l := &LSTM{InDim: inDim, Hidden: hidden}
	mk := func(suffix string, rows, cols int) *Param {
		p := NewParam(name+"."+suffix, rows*cols)
		p.InitXavier(cols, rows, src)
		return p
	}
	l.wi, l.wf, l.wo, l.wg = mk("Wi", hidden, inDim), mk("Wf", hidden, inDim), mk("Wo", hidden, inDim), mk("Wg", hidden, inDim)
	l.ui, l.uf, l.uo, l.ug = mk("Ui", hidden, hidden), mk("Uf", hidden, hidden), mk("Uo", hidden, hidden), mk("Ug", hidden, hidden)
	l.bi, l.bf, l.bo, l.bg = NewParam(name+".bi", hidden), NewParam(name+".bf", hidden), NewParam(name+".bo", hidden), NewParam(name+".bg", hidden)
	for i := range l.bf.W {
		l.bf.W[i] = 1
	}
	return l
}

// Params returns the learnable tensors.
func (l *LSTM) Params() Params {
	return Params{l.wi, l.wf, l.wo, l.wg, l.ui, l.uf, l.uo, l.ug, l.bi, l.bf, l.bo, l.bg}
}

func (l *LSTM) gate(w, u, b *Param, x, h []float64, out []float64, act Activation) {
	hd := l.Hidden
	for r := 0; r < hd; r++ {
		sum := b.W[r]
		wr := w.W[r*l.InDim : (r+1)*l.InDim]
		for c, xv := range x {
			sum += wr[c] * xv
		}
		ur := u.W[r*hd : (r+1)*hd]
		for c, hv := range h {
			sum += ur[c] * hv
		}
		out[r] = act.Apply(sum)
	}
}

// Forward runs the sequence xs (T × InDim) and returns the hidden state at
// every step (T × Hidden).
func (l *LSTM) Forward(xs [][]float64) [][]float64 {
	T := len(xs)
	hd := l.Hidden
	cc := &l.cache
	cc.xs = xs
	alloc := func(dst *[][]float64) {
		*dst = make([][]float64, T)
		for t := range *dst {
			(*dst)[t] = make([]float64, hd)
		}
	}
	alloc(&cc.i)
	alloc(&cc.f)
	alloc(&cc.o)
	alloc(&cc.g)
	alloc(&cc.c)
	alloc(&cc.h)
	alloc(&cc.tc)

	hPrev := make([]float64, hd)
	cPrev := make([]float64, hd)
	for t := 0; t < T; t++ {
		if len(xs[t]) != l.InDim {
			panic(fmt.Sprintf("nn: LSTM %d-in got %d values at step %d", l.InDim, len(xs[t]), t))
		}
		l.gate(l.wi, l.ui, l.bi, xs[t], hPrev, cc.i[t], Sigmoid)
		l.gate(l.wf, l.uf, l.bf, xs[t], hPrev, cc.f[t], Sigmoid)
		l.gate(l.wo, l.uo, l.bo, xs[t], hPrev, cc.o[t], Sigmoid)
		l.gate(l.wg, l.ug, l.bg, xs[t], hPrev, cc.g[t], Tanh)
		for r := 0; r < hd; r++ {
			cc.c[t][r] = cc.f[t][r]*cPrev[r] + cc.i[t][r]*cc.g[t][r]
			cc.tc[t][r] = Tanh.Apply(cc.c[t][r])
			cc.h[t][r] = cc.o[t][r] * cc.tc[t][r]
		}
		hPrev = cc.h[t]
		cPrev = cc.c[t]
	}
	return cc.h
}

// Backward consumes dL/dh for every timestep of the last Forward call,
// accumulates parameter gradients, and returns dL/dx per timestep.
func (l *LSTM) Backward(dhs [][]float64) [][]float64 {
	cc := &l.cache
	T := len(cc.xs)
	hd := l.Hidden
	dxs := make([][]float64, T)
	dhNext := make([]float64, hd)
	dcNext := make([]float64, hd)
	di := make([]float64, hd)
	df := make([]float64, hd)
	do := make([]float64, hd)
	dg := make([]float64, hd)

	for t := T - 1; t >= 0; t-- {
		var hPrev, cPrev []float64
		if t > 0 {
			hPrev, cPrev = cc.h[t-1], cc.c[t-1]
		} else {
			hPrev, cPrev = make([]float64, hd), make([]float64, hd)
		}
		for r := 0; r < hd; r++ {
			dh := dhs[t][r] + dhNext[r]
			do[r] = dh * cc.tc[t][r] * Sigmoid.DerivFromOutput(cc.o[t][r])
			dct := dh*cc.o[t][r]*Tanh.DerivFromOutput(cc.tc[t][r]) + dcNext[r]
			df[r] = dct * cPrev[r] * Sigmoid.DerivFromOutput(cc.f[t][r])
			di[r] = dct * cc.g[t][r] * Sigmoid.DerivFromOutput(cc.i[t][r])
			dg[r] = dct * cc.i[t][r] * Tanh.DerivFromOutput(cc.g[t][r])
			dcNext[r] = dct * cc.f[t][r]
		}
		dx := make([]float64, l.InDim)
		for r := 0; r < hd; r++ {
			dhNext[r] = 0
		}
		accum := func(dgate []float64, w, u, b *Param) {
			for r := 0; r < hd; r++ {
				d := dgate[r]
				if d == 0 {
					continue
				}
				b.G[r] += d
				wr := w.W[r*l.InDim : (r+1)*l.InDim]
				gw := w.G[r*l.InDim : (r+1)*l.InDim]
				for c := 0; c < l.InDim; c++ {
					gw[c] += d * cc.xs[t][c]
					dx[c] += d * wr[c]
				}
				ur := u.W[r*hd : (r+1)*hd]
				gu := u.G[r*hd : (r+1)*hd]
				for c := 0; c < hd; c++ {
					gu[c] += d * hPrev[c]
					dhNext[c] += d * ur[c]
				}
			}
		}
		accum(di, l.wi, l.ui, l.bi)
		accum(df, l.wf, l.uf, l.bf)
		accum(do, l.wo, l.uo, l.bo)
		accum(dg, l.wg, l.ug, l.bg)
		dxs[t] = dx
	}
	return dxs
}
