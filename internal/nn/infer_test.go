package nn

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/rng"
	"repro/internal/trace"
)

func sameBits(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: element %d: batched %.17g != reference %.17g (ulp-level mismatch)",
				name, i, got[i], want[i])
		}
	}
}

// TestLSTMForwardInferByteIdentical pins the batched LSTM inference to
// the per-step training Forward at the bit level, including InDim > 1
// and repeated calls on one instance (scratch reuse).
func TestLSTMForwardInferByteIdentical(t *testing.T) {
	for _, dims := range [][3]int{{1, 8, 5}, {3, 16, 9}, {2, 70, 4}} {
		in, hd, T := dims[0], dims[1], dims[2]
		src := rng.New(int64(100*in + hd))
		l := NewLSTM("t", in, hd, src)
		for rep := 0; rep < 3; rep++ {
			xs := make([][]float64, T)
			flat := make([]float64, T*in)
			for i := range flat {
				flat[i] = src.Normal(0, 1.5)
			}
			for ti := 0; ti < T; ti++ {
				xs[ti] = flat[ti*in : (ti+1)*in]
			}
			ref := l.Forward(xs)
			got := make([]float64, T*hd)
			l.ForwardInfer(flat, T, got)
			for ti := 0; ti < T; ti++ {
				sameBits(t, "LSTM h", got[ti*hd:(ti+1)*hd], ref[ti])
			}
		}
	}
}

func TestBiLSTMForwardInferByteIdentical(t *testing.T) {
	src := rng.New(7)
	const in, hd, T = 1, 24, 12
	b := NewBiLSTM("t", in, hd, src)
	flat := make([]float64, T*in)
	xs := make([][]float64, T)
	for i := range flat {
		flat[i] = src.Normal(0, 1)
	}
	for ti := 0; ti < T; ti++ {
		xs[ti] = flat[ti*in : (ti+1)*in]
	}
	ref := b.Forward(xs)
	got := b.ForwardInfer(flat, T)
	for ti := 0; ti < T; ti++ {
		sameBits(t, "BiLSTM h", got[ti*2*hd:(ti+1)*2*hd], ref[ti])
	}
}

func TestMLPForwardInferByteIdentical(t *testing.T) {
	src := rng.New(8)
	m := NewMLP("t", 2, []MLPSpec{{16, ReLU}, {16, ReLU}, {1, Sigmoid}}, src)
	const rows = 37
	xs := make([]float64, rows*2)
	for i := range xs {
		xs[i] = src.Normal(0, 2)
	}
	out := make([]float64, rows)
	m.ForwardInfer(xs, rows, out)
	for r := 0; r < rows; r++ {
		ref := m.Forward(xs[r*2 : r*2+2])
		sameBits(t, "MLP out", out[r:r+1], ref)
	}
}

// TestForwardBatchedByteIdentical is the linchpin of the fast path: the
// predictor's batched inference must reproduce Forward bit-for-bit on
// random sequences, so every downstream key bit is unchanged.
func TestForwardBatchedByteIdentical(t *testing.T) {
	cfgs := []PredictorConfig{
		{SeqLen: 8, Hidden: 12, Bits: 16, Theta: 0.9},
		{SeqLen: 32, Hidden: 32, Bits: 64, Theta: 0.9},
		{SeqLen: 16, Hidden: 130, Bits: 32, Theta: 0.9}, // crosses the GEMM block edge
	}
	for _, cfg := range cfgs {
		src := rng.New(int64(cfg.Hidden))
		p := NewPredictor(cfg, src)
		for rep := 0; rep < 4; rep++ {
			seq := make([]float64, cfg.SeqLen)
			for i := range seq {
				seq[i] = src.Normal(0, 1)
			}
			yRef, zRef := p.Forward(seq)
			yGot, zGot := p.ForwardBatched(seq)
			sameBits(t, "yHat", yGot, yRef)
			sameBits(t, "zHat", zGot, zRef)
		}
	}
}

// TestForwardBatchedScenarioWindows repeats the byte-identity check on
// real collected windows from all four paper scenarios (Urban/Rural ×
// V2V/V2I), the inputs the golden-key tests feed end to end.
func TestForwardBatchedScenarioWindows(t *testing.T) {
	src := rng.New(1)
	p := NewPredictor(PredictorConfig{SeqLen: 32, Hidden: 24, Bits: 64, Theta: 0.9}, src)
	for _, env := range []channel.Environment{channel.Urban, channel.Rural} {
		for _, link := range []channel.LinkType{channel.V2V, channel.V2I} {
			sc := trace.NewScenario(env, link)
			ds, err := trace.Build(sc, 1, 6, 32, trace.DefaultExtract())
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range ds.Samples {
				yRef, zRef := p.Forward(s.Alice)
				yGot, zGot := p.ForwardBatched(s.Alice)
				sameBits(t, sc.Name+" yHat", yGot, yRef)
				sameBits(t, sc.Name+" zHat", zGot, zRef)
			}
		}
	}
}
