package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// paramSnapshot is the gob wire format for a saved parameter set.
type paramSnapshot struct {
	Names   []string
	Weights [][]float64
}

// SaveParams serializes the weights (not optimizer state) of ps to w.
func SaveParams(w io.Writer, ps Params) error {
	snap := paramSnapshot{}
	for _, p := range ps {
		snap.Names = append(snap.Names, p.Name)
		cp := make([]float64, len(p.W))
		copy(cp, p.W)
		snap.Weights = append(snap.Weights, cp)
	}
	return gob.NewEncoder(w).Encode(snap)
}

// LoadParams restores weights saved by SaveParams into ps. Parameter
// names, order, and shapes must match the saved model exactly.
func LoadParams(r io.Reader, ps Params) error {
	var snap paramSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("nn: decode params: %w", err)
	}
	if len(snap.Names) != len(ps) {
		return fmt.Errorf("nn: saved model has %d tensors, want %d", len(snap.Names), len(ps))
	}
	for i, p := range ps {
		if snap.Names[i] != p.Name {
			return fmt.Errorf("nn: tensor %d is %q, want %q", i, snap.Names[i], p.Name)
		}
		if len(snap.Weights[i]) != len(p.W) {
			return fmt.Errorf("nn: tensor %q has %d values, want %d", p.Name, len(snap.Weights[i]), len(p.W))
		}
		copy(p.W, snap.Weights[i])
	}
	return nil
}
