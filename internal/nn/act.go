package nn

import "math"

// Activation identifies a pointwise nonlinearity.
type Activation int

// Supported activations.
const (
	Identity Activation = iota + 1
	Sigmoid
	Tanh
	ReLU
)

// Apply evaluates the activation at x.
func (a Activation) Apply(x float64) float64 {
	switch a {
	case Sigmoid:
		return sigmoid(x)
	case Tanh:
		return math.Tanh(x)
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	default:
		return x
	}
}

// DerivFromOutput returns the derivative dσ/dx expressed in terms of the
// activation *output* y (cheap for sigmoid/tanh, which is why layers cache
// outputs rather than pre-activations).
func (a Activation) DerivFromOutput(y float64) float64 {
	switch a {
	case Sigmoid:
		return y * (1 - y)
	case Tanh:
		return 1 - y*y
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	default:
		return 1
	}
}

func sigmoid(x float64) float64 {
	// Numerically stable split avoids overflow for large |x|.
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}
