package nn

import "repro/internal/rng"

// BiLSTM runs one forward and one backward LSTM over the same sequence and
// concatenates their per-step hidden states, the layer the paper chooses
// because channel sequences carry information in both temporal directions.
type BiLSTM struct {
	InDim  int
	Hidden int // per direction; output width is 2·Hidden

	fwd *LSTM
	bwd *LSTM

	infer biInferScratch // reusable buffers for ForwardInfer (infer.go)
}

// NewBiLSTM creates a bidirectional LSTM with hidden units per direction.
func NewBiLSTM(name string, inDim, hidden int, src *rng.Source) *BiLSTM {
	return &BiLSTM{
		InDim:  inDim,
		Hidden: hidden,
		fwd:    NewLSTM(name+".fwd", inDim, hidden, src),
		bwd:    NewLSTM(name+".bwd", inDim, hidden, src),
	}
}

// Params returns the learnable tensors of both directions.
func (b *BiLSTM) Params() Params {
	return append(b.fwd.Params(), b.bwd.Params()...)
}

// Forward returns the concatenated hidden states (T × 2·Hidden).
func (b *BiLSTM) Forward(xs [][]float64) [][]float64 {
	T := len(xs)
	hf := b.fwd.Forward(xs)
	rev := make([][]float64, T)
	for t := 0; t < T; t++ {
		rev[t] = xs[T-1-t]
	}
	hbRev := b.bwd.Forward(rev)
	out := make([][]float64, T)
	for t := 0; t < T; t++ {
		o := make([]float64, 2*b.Hidden)
		copy(o[:b.Hidden], hf[t])
		copy(o[b.Hidden:], hbRev[T-1-t])
		out[t] = o
	}
	return out
}

// Backward consumes dL/dout per step (T × 2·Hidden) and returns dL/dx per
// step.
func (b *BiLSTM) Backward(douts [][]float64) [][]float64 {
	T := len(douts)
	dhf := make([][]float64, T)
	dhbRev := make([][]float64, T)
	for t := 0; t < T; t++ {
		dhf[t] = douts[t][:b.Hidden]
		dhbRev[T-1-t] = douts[t][b.Hidden:]
	}
	dxf := b.fwd.Backward(dhf)
	dxbRev := b.bwd.Backward(dhbRev)
	dxs := make([][]float64, T)
	for t := 0; t < T; t++ {
		dx := make([]float64, b.InDim)
		for i := range dx {
			dx[i] = dxf[t][i] + dxbRev[T-1-t][i]
		}
		dxs[t] = dx
	}
	return dxs
}
