package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// numericalGrad perturbs each weight of ps and compares the analytic
// gradient against central finite differences of lossFn.
func checkGrads(t *testing.T, ps Params, lossFn func() float64, tol float64) {
	t.Helper()
	const h = 1e-5
	// Populate analytic gradients.
	ps.ZeroGrad()
	lossFn()
	analytic := make([][]float64, len(ps))
	for i, p := range ps {
		analytic[i] = append([]float64(nil), p.G...)
	}
	for pi, p := range ps {
		// Spot-check a handful of entries per tensor to keep runtime sane.
		stride := len(p.W)/5 + 1
		for wi := 0; wi < len(p.W); wi += stride {
			orig := p.W[wi]
			p.W[wi] = orig + h
			ps.ZeroGrad()
			lp := lossFn()
			p.W[wi] = orig - h
			ps.ZeroGrad()
			lm := lossFn()
			p.W[wi] = orig
			num := (lp - lm) / (2 * h)
			got := analytic[pi][wi]
			denom := math.Max(1e-6, math.Abs(num)+math.Abs(got))
			if math.Abs(num-got)/denom > tol {
				t.Errorf("%s[%d]: analytic %.8f vs numerical %.8f", p.Name, wi, got, num)
			}
		}
	}
}

func TestDenseGradient(t *testing.T) {
	src := rng.New(1)
	d := NewDense("d", 5, 3, Tanh, src)
	x := []float64{0.3, -0.2, 0.9, -1.1, 0.5}
	y := []float64{0.1, -0.4, 0.7}
	lossFn := func() float64 {
		out := d.Forward(x)
		loss, grad := MSE(y, out)
		d.Backward(grad)
		return loss
	}
	checkGrads(t, d.Params(), lossFn, 1e-4)
}

func TestDenseSigmoidBCEGradient(t *testing.T) {
	src := rng.New(2)
	d := NewDense("d", 4, 6, Sigmoid, src)
	x := []float64{0.5, -0.3, 1.2, 0.1}
	z := []byte{1, 0, 1, 1, 0, 0}
	lossFn := func() float64 {
		out := d.Forward(x)
		loss, grad := BCE(z, out)
		d.Backward(grad)
		return loss
	}
	checkGrads(t, d.Params(), lossFn, 1e-4)
}

func TestLSTMGradient(t *testing.T) {
	src := rng.New(3)
	l := NewLSTM("l", 2, 4, src)
	xs := [][]float64{{0.5, -0.1}, {0.2, 0.8}, {-0.7, 0.3}, {0.1, 0.1}}
	targets := []float64{0.3, -0.2, 0.5, 0.1}
	lossFn := func() float64 {
		hs := l.Forward(xs)
		// Loss over the first hidden unit of every step.
		var loss float64
		dhs := make([][]float64, len(hs))
		for tt, h := range hs {
			d := h[0] - targets[tt]
			loss += d * d
			dh := make([]float64, len(h))
			dh[0] = 2 * d
			dhs[tt] = dh
		}
		l.Backward(dhs)
		return loss
	}
	checkGrads(t, l.Params(), lossFn, 1e-4)
}

func TestBiLSTMGradient(t *testing.T) {
	src := rng.New(4)
	b := NewBiLSTM("b", 1, 3, src)
	xs := [][]float64{{0.5}, {-0.2}, {0.9}, {0.05}}
	lossFn := func() float64 {
		hs := b.Forward(xs)
		var loss float64
		dhs := make([][]float64, len(hs))
		for tt, h := range hs {
			dh := make([]float64, len(h))
			for i, v := range h {
				loss += v * v
				dh[i] = 2 * v
			}
			dhs[tt] = dh
		}
		b.Backward(dhs)
		return loss
	}
	checkGrads(t, b.Params(), lossFn, 1e-4)
}

func TestPredictorGradient(t *testing.T) {
	src := rng.New(5)
	p := NewPredictor(PredictorConfig{SeqLen: 6, Hidden: 3, Bits: 12, Theta: 0.7}, src)
	alice := []float64{0.5, -0.1, 0.2, 0.9, -0.3, 0.4}
	bob := []float64{0.4, -0.2, 0.3, 0.8, -0.2, 0.5}
	bits := []byte{1, 0, 1, 1, 0, 0, 1, 0, 0, 1, 1, 0}
	lossFn := func() float64 { return p.TrainStep(alice, bob, bits, nil) }
	checkGrads(t, p.Params(), lossFn, 2e-4)
}

func TestPredictorLearnsIdentityMapping(t *testing.T) {
	// A sanity fit: Bob's sequence is a noisy shift of Alice's and the
	// bits are a threshold of Bob's values. The model should learn this
	// quickly at small size.
	src := rng.New(6)
	cfg := PredictorConfig{SeqLen: 8, Hidden: 8, Bits: 8, Theta: 0.9}
	p := NewPredictor(cfg, src)
	var samples []TrainSample
	for i := 0; i < 60; i++ {
		alice := make([]float64, cfg.SeqLen)
		bob := make([]float64, cfg.SeqLen)
		bits := make([]byte, cfg.Bits)
		for j := range alice {
			alice[j] = src.Normal(0, 1)
			bob[j] = alice[j] + src.Normal(0, 0.05)
			if bob[j] > 0 {
				bits[j] = 1
			}
		}
		samples = append(samples, TrainSample{Alice: alice, Bob: bob, Bits: bits})
	}
	tr := NewTrainer(p, 0.01, src.Derive("train"))
	losses := tr.Fit(samples, 30)
	if losses[len(losses)-1] >= losses[0]*0.5 {
		t.Fatalf("loss should halve: first %.4f last %.4f", losses[0], losses[len(losses)-1])
	}
	// Check bit accuracy on fresh samples.
	correct, total := 0, 0
	for i := 0; i < 20; i++ {
		alice := make([]float64, cfg.SeqLen)
		bits := make([]byte, cfg.Bits)
		for j := range alice {
			alice[j] = src.Normal(0, 1)
			if alice[j] > 0 {
				bits[j] = 1
			}
		}
		_, zHat := p.Forward(alice)
		got := Bits(zHat)
		for j := range bits {
			if got[j] == bits[j] {
				correct++
			}
			total++
		}
	}
	acc := float64(correct) / float64(total)
	t.Logf("holdout bit accuracy: %.3f", acc)
	if acc < 0.85 {
		t.Fatalf("bit accuracy %.3f too low", acc)
	}
}
