package nn

import (
	"fmt"

	"repro/internal/rng"
)

// PredictorConfig sizes the Vehicle-Key prediction+quantization network.
type PredictorConfig struct {
	SeqLen int     // input/predicted arRSSI sequence length (paper: 32)
	Hidden int     // BiLSTM hidden units per direction (paper: 128)
	Bits   int     // quantization head width (paper: 64)
	Theta  float64 // joint-loss weight θ (paper: 0.9)
}

// DefaultPredictorConfig returns the paper's architecture: a 32-cell
// BiLSTM with 128 hidden units, a 32-unit prediction layer, a 64-unit
// sigmoid quantization layer and θ = 0.9.
func DefaultPredictorConfig() PredictorConfig {
	return PredictorConfig{SeqLen: 32, Hidden: 128, Bits: 64, Theta: 0.9}
}

func (c *PredictorConfig) normalize() {
	if c.SeqLen <= 0 {
		c.SeqLen = 32
	}
	if c.Hidden <= 0 {
		c.Hidden = 128
	}
	if c.Bits <= 0 {
		c.Bits = 64
	}
	if c.Theta <= 0 || c.Theta >= 1 {
		c.Theta = 0.9
	}
}

// Predictor is the paper's joint prediction and quantization model
// (Fig. 6): a BiLSTM over Alice's arRSSI sequence, a fully connected
// prediction layer emitting Bob's predicted arRSSI sequence (one output
// per step — 32 units), and a fully connected sigmoid quantization layer
// emitting the key bits (two per step — 64 units). Both heads are applied
// per timestep with shared weights (Keras TimeDistributed(Dense), the
// standard head on a BiLSTM): the task is translation-equivariant along
// the sequence, and weight sharing is what lets the model generalize from
// the modest number of probe sequences a drive collects.
type Predictor struct {
	Cfg PredictorConfig

	bilstm *BiLSTM
	// Shared per-timestep heads. Each timestep t gets its own cache view
	// so Forward can run all steps before Backward (see Dense.ShareWeights).
	fcPred  []*Dense // 2H → 1, Identity
	fcQuant []*Dense // 2H → BitsPerStep, Sigmoid
	perStep int      // bits per step = Bits/SeqLen

	// int8 inference state (int8.go). quant is read-only once built by
	// Calibrate and may be shared across clones; qscratch is per-instance.
	quant    *predictorQuant
	qscratch quantScratch
}

// NewPredictor builds the model with weights drawn from src. Bits must be
// a multiple of SeqLen.
func NewPredictor(cfg PredictorConfig, src *rng.Source) *Predictor {
	cfg.normalize()
	if cfg.Bits%cfg.SeqLen != 0 {
		panic(fmt.Sprintf("nn: Bits %d must be a multiple of SeqLen %d", cfg.Bits, cfg.SeqLen))
	}
	p := &Predictor{
		Cfg:     cfg,
		bilstm:  NewBiLSTM("predictor.bilstm", 1, cfg.Hidden, src),
		perStep: cfg.Bits / cfg.SeqLen,
	}
	pred := NewDense("predictor.fcPred", 2*cfg.Hidden, 1, Identity, src)
	quant := NewDense("predictor.fcQuant", 2*cfg.Hidden, p.perStep, Sigmoid, src)
	p.fcPred = make([]*Dense, cfg.SeqLen)
	p.fcQuant = make([]*Dense, cfg.SeqLen)
	p.fcPred[0], p.fcQuant[0] = pred, quant
	for t := 1; t < cfg.SeqLen; t++ {
		p.fcPred[t] = pred.ShareWeights()
		p.fcQuant[t] = quant.ShareWeights()
	}
	return p
}

// Params returns every learnable tensor in the model (shared heads listed
// once).
func (p *Predictor) Params() Params {
	ps := p.bilstm.Params()
	ps = append(ps, p.fcPred[0].Params()...)
	ps = append(ps, p.fcQuant[0].Params()...)
	return ps
}

// Forward maps Alice's normalized arRSSI sequence to (predicted Bob
// sequence, soft bit probabilities).
func (p *Predictor) Forward(aliceSeq []float64) (yHat, zHat []float64) {
	if len(aliceSeq) != p.Cfg.SeqLen {
		panic(fmt.Sprintf("nn: Predictor wants %d-step sequences, got %d", p.Cfg.SeqLen, len(aliceSeq)))
	}
	xs := make([][]float64, len(aliceSeq))
	for t, v := range aliceSeq {
		xs[t] = []float64{v}
	}
	hs := p.bilstm.Forward(xs)
	yHat = make([]float64, p.Cfg.SeqLen)
	zHat = make([]float64, 0, p.Cfg.Bits)
	for t, h := range hs {
		yHat[t] = p.fcPred[t].Forward(h)[0]
		zHat = append(zHat, p.fcQuant[t].Forward(h)...)
	}
	return yHat, zHat
}

// Bits hardens soft probabilities at the 0.5 threshold.
func Bits(zHat []float64) []byte {
	out := make([]byte, len(zHat))
	for i, v := range zHat {
		if v > 0.5 {
			out[i] = 1
		}
	}
	return out
}

// TrainStep runs one forward/backward pass against Bob's measured
// sequence y and quantized bits z, accumulates gradients, and returns the
// joint loss. mask, when non-nil, limits the bit loss to the positions
// Bob's quantizer kept. The caller applies the optimizer step (allowing
// simple mini-batching by accumulating several samples first).
func (p *Predictor) TrainStep(aliceSeq, y []float64, z []byte, mask []bool) float64 {
	yHat, zHat := p.Forward(aliceSeq)
	loss, dyHat, dzHat := JointLoss(p.Cfg.Theta, y, yHat, z, zHat, mask)

	// Both per-step heads feed gradients back into the shared features.
	douts := make([][]float64, p.Cfg.SeqLen)
	for t := 0; t < p.Cfg.SeqLen; t++ {
		dh := p.fcPred[t].Backward(dyHat[t : t+1])
		dhq := p.fcQuant[t].Backward(dzHat[t*p.perStep : (t+1)*p.perStep])
		for i := range dh {
			dh[i] += dhq[i]
		}
		douts[t] = dh
	}
	p.bilstm.Backward(douts)
	return loss
}

// TrainSample couples one input sequence with its targets. Mask, when
// non-nil, marks the bit positions that contribute to the BCE term.
type TrainSample struct {
	Alice []float64
	Bob   []float64
	Bits  []byte
	Mask  []bool
}

// Trainer drives epochs of Adam training over a sample set.
type Trainer struct {
	Model     *Predictor
	Opt       *Adam
	BatchSize int
	ClipNorm  float64
	src       *rng.Source
}

// NewTrainer builds a trainer with the paper-ish defaults: Adam at the
// given learning rate, batch size 8, gradient clipping at norm 5.
func NewTrainer(model *Predictor, lr float64, src *rng.Source) *Trainer {
	return &Trainer{Model: model, Opt: NewAdam(lr), BatchSize: 8, ClipNorm: 5, src: src}
}

// Epoch shuffles and trains over all samples once, returning the mean
// loss.
func (tr *Trainer) Epoch(samples []TrainSample) float64 {
	idx := tr.src.Perm(len(samples))
	params := tr.Model.Params()
	var total float64
	inBatch := 0
	for _, id := range idx {
		s := samples[id]
		total += tr.Model.TrainStep(s.Alice, s.Bob, s.Bits, s.Mask)
		inBatch++
		if inBatch == tr.BatchSize {
			params.ClipGrad(tr.ClipNorm)
			tr.Opt.Step(params)
			inBatch = 0
		}
	}
	if inBatch > 0 {
		params.ClipGrad(tr.ClipNorm)
		tr.Opt.Step(params)
	}
	return total / float64(len(samples))
}

// Fit trains for epochs epochs and returns the per-epoch mean losses.
func (tr *Trainer) Fit(samples []TrainSample, epochs int) []float64 {
	losses := make([]float64, 0, epochs)
	for e := 0; e < epochs; e++ {
		losses = append(losses, tr.Epoch(samples))
	}
	return losses
}
