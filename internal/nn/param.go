// Package nn is a from-scratch neural-network stack sufficient to
// reproduce Vehicle-Key's two models: the BiLSTM prediction+quantization
// network (Sec. IV-B) and the autoencoder reconciler (Sec. IV-C). It
// provides dense layers, LSTM/BiLSTM with full backpropagation through
// time, the paper's joint MSE+BCE loss, and the Adam optimizer — all on
// float64 slices with no external dependencies.
//
// The stack is gradient-checked against numerical differentiation in its
// tests; see grad_test.go.
package nn

import (
	"math"

	"repro/internal/rng"
)

// Param is one learnable tensor with its gradient accumulator and Adam
// moment estimates.
type Param struct {
	Name string
	W    []float64 // weights (row-major for matrices)
	G    []float64 // gradient accumulated by Backward passes
	m    []float64 // Adam first moment
	v    []float64 // Adam second moment
}

// NewParam allocates a parameter of n values named name.
func NewParam(name string, n int) *Param {
	return &Param{
		Name: name,
		W:    make([]float64, n),
		G:    make([]float64, n),
		m:    make([]float64, n),
		v:    make([]float64, n),
	}
}

// InitXavier fills the parameter with Xavier/Glorot-uniform values for a
// layer with the given fan-in and fan-out.
func (p *Param) InitXavier(fanIn, fanOut int, src *rng.Source) {
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	for i := range p.W {
		p.W[i] = src.Uniform(-limit, limit)
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// Params is a collection of learnable tensors (a model's parameter list).
type Params []*Param

// ZeroGrad clears all gradients.
func (ps Params) ZeroGrad() {
	for _, p := range ps {
		p.ZeroGrad()
	}
}

// Count returns the total number of scalar parameters.
func (ps Params) Count() int {
	n := 0
	for _, p := range ps {
		n += len(p.W)
	}
	return n
}

// ClipGrad scales all gradients so their global L2 norm does not exceed
// maxNorm, the standard stabilizer for BPTT.
func (ps Params) ClipGrad(maxNorm float64) {
	var sq float64
	for _, p := range ps {
		for _, g := range p.G {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm <= maxNorm || norm == 0 {
		return
	}
	scale := maxNorm / norm
	for _, p := range ps {
		for i := range p.G {
			p.G[i] *= scale
		}
	}
}
