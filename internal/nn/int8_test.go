package nn

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/rng"
)

func calibratedPredictor(t testing.TB, seed int64) (*Predictor, *rng.Source) {
	src := rng.New(seed)
	p := NewPredictor(PredictorConfig{SeqLen: 16, Hidden: 16, Bits: 32, Theta: 0.9}, src)
	cal := make([][]float64, 64)
	for i := range cal {
		w := make([]float64, p.Cfg.SeqLen)
		for j := range w {
			w[j] = src.Normal(0, 1)
		}
		cal[i] = w
	}
	p.Calibrate(cal)
	return p, src
}

func TestCalibrateLifecycle(t *testing.T) {
	p, _ := calibratedPredictor(t, 1)
	if !p.Calibrated() {
		t.Fatal("Calibrated() false after Calibrate")
	}
	if p.QuantBound() <= 0 {
		t.Fatalf("QuantBound = %g, want > 0", p.QuantBound())
	}
	p.DropCalibration()
	if p.Calibrated() {
		t.Fatal("Calibrated() true after DropCalibration")
	}
	if p.QuantBound() != 0 {
		t.Fatal("QuantBound nonzero after DropCalibration")
	}
}

func TestForwardQuantizedPanicsUncalibrated(t *testing.T) {
	src := rng.New(2)
	p := NewPredictor(PredictorConfig{SeqLen: 8, Hidden: 8, Bits: 16, Theta: 0.9}, src)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic before Calibrate")
		}
	}()
	p.ForwardQuantized(make([]float64, 8))
}

// TestQuantizedErrorBoundProperty is the 1k-window property test from
// the issue: over 1000 random windows drawn from the calibration
// distribution the int8 soft bits never panic, stay within the
// calibrated bound of the float path, and agree bit-for-bit wherever
// the float output clears the threshold by more than the bound.
func TestQuantizedErrorBoundProperty(t *testing.T) {
	p, src := calibratedPredictor(t, 3)
	bound := p.QuantBound()
	maxSeen := 0.0
	for n := 0; n < 1000; n++ {
		w := make([]float64, p.Cfg.SeqLen)
		for j := range w {
			w[j] = src.Normal(0, 1)
		}
		yf, zf := p.ForwardBatched(w)
		yq, zq := p.ForwardQuantized(w)
		if len(yq) != len(yf) || len(zq) != len(zf) {
			t.Fatalf("shape mismatch: y %d/%d z %d/%d", len(yq), len(yf), len(zq), len(zf))
		}
		for i := range zf {
			e := math.Abs(zq[i] - zf[i])
			if e > maxSeen {
				maxSeen = e
			}
			if e > bound {
				t.Fatalf("window %d bit %d: |Δ| = %g exceeds calibrated bound %g", n, i, e, bound)
			}
			// Key-bit identity away from the threshold: the bound is
			// exactly the margin that guarantees it.
			if math.Abs(zf[i]-0.5) > bound {
				if (zf[i] > 0.5) != (zq[i] > 0.5) {
					t.Fatalf("window %d bit %d: hard bit flipped outside the bound margin", n, i)
				}
			}
		}
		for i := range yq {
			if math.IsNaN(yq[i]) || math.IsInf(yq[i], 0) {
				t.Fatalf("window %d: non-finite quantized yHat[%d]", n, i)
			}
		}
	}
	t.Logf("calibrated bound %.4g, max observed error %.4g", bound, maxSeen)
}

// TestAdoptCalibrationMatches: a clone that adopted the snapshot
// produces byte-identical quantized outputs (the server worker-pool
// path: template calibrates once, clones share).
func TestAdoptCalibrationMatches(t *testing.T) {
	p, src := calibratedPredictor(t, 4)
	clone := NewPredictor(p.Cfg, rng.New(99))
	// Give the clone the same float weights via the save/load params path.
	var buf bytes.Buffer
	if err := SaveParams(&buf, p.Params()); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, clone.Params()); err != nil {
		t.Fatal(err)
	}
	clone.AdoptCalibration(p)
	if !clone.Calibrated() {
		t.Fatal("clone not calibrated after AdoptCalibration")
	}
	w := make([]float64, p.Cfg.SeqLen)
	for j := range w {
		w[j] = src.Normal(0, 1)
	}
	_, z1 := p.ForwardQuantized(w)
	_, z2 := clone.ForwardQuantized(w)
	for i := range z1 {
		if math.Float64bits(z1[i]) != math.Float64bits(z2[i]) {
			t.Fatalf("bit %d: clone %g != source %g", i, z2[i], z1[i])
		}
	}
}

func TestQuantizeValueEdges(t *testing.T) {
	cases := []struct {
		v, scale float64
		want     int8
	}{
		{0, 1, 0},
		{math.NaN(), 1, 0},
		{math.Inf(1), 1, 127},
		{math.Inf(-1), 1, -127},
		{1e300, 1e-300, 127},
		{-1e300, 1e-300, -127},
		{0.49, 1, 0},
		{0.5, 1, 1}, // round half away from zero
		{-0.5, 1, -1},
	}
	for _, c := range cases {
		if got := quantizeValue(c.v, c.scale); got != c.want {
			t.Fatalf("quantizeValue(%g, %g) = %d, want %d", c.v, c.scale, got, c.want)
		}
	}
}

// FuzzQuantRoundTrip: quantize/dequantize never panics for any input
// (NaN, ±Inf, denormals, any scale) and for in-range finite values the
// round-trip error stays within half a quantization step.
func FuzzQuantRoundTrip(f *testing.F) {
	f.Add(0.5, 1.0)
	f.Add(-3.7, 0.01)
	f.Add(math.Inf(1), 2.0)
	f.Add(math.NaN(), 1.0)
	f.Add(1e-310, 1e-300)
	f.Fuzz(func(t *testing.T, v, scaleRaw float64) {
		scale := math.Abs(scaleRaw)
		if !(scale > 0) || math.IsInf(scale, 0) {
			scale = 1 // mirror maxAbsScale's degenerate-tensor floor
		}
		q := quantizeValue(v, scale)
		if q > 127 || q < -127 {
			t.Fatalf("quantizeValue(%g, %g) = %d outside [-127, 127]", v, scale, q)
		}
		deq := float64(q) * scale
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return // clamped; no round-trip bound applies
		}
		if math.Abs(v) <= 127*scale && !math.IsInf(127*scale, 0) {
			if err := math.Abs(deq - v); err > scale/2*(1+1e-9) {
				t.Fatalf("round trip |%g - %g| = %g exceeds scale/2 = %g", deq, v, err, scale/2)
			}
		}
	})
}
