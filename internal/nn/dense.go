package nn

import (
	"fmt"

	"repro/internal/rng"
)

// Dense is a fully connected layer y = act(W·x + b). It caches the last
// forward pass so Backward can be called immediately afterwards; one layer
// instance therefore serves one sample at a time (the training loops here
// are sequential, matching the small per-step batch the paper trains
// with).
type Dense struct {
	In, Out int
	Act     Activation

	w *Param // Out×In, row-major
	b *Param // Out

	lastX []float64
	lastY []float64
}

// NewDense creates a dense layer with Xavier-initialized weights.
func NewDense(name string, in, out int, act Activation, src *rng.Source) *Dense {
	d := &Dense{
		In:  in,
		Out: out,
		Act: act,
		w:   NewParam(name+".W", in*out),
		b:   NewParam(name+".b", out),
	}
	d.w.InitXavier(in, out, src)
	return d
}

// Params returns the layer's learnable tensors.
func (d *Dense) Params() Params { return Params{d.w, d.b} }

// ShareWeights returns a new layer backed by the same parameter tensors
// but with its own forward cache, so two tied branches (e.g. the
// reconciler's twin encoders) can each hold a pending backward pass.
// Gradients from both branches accumulate into the shared tensors.
func (d *Dense) ShareWeights() *Dense {
	return &Dense{In: d.In, Out: d.Out, Act: d.Act, w: d.w, b: d.b}
}

// Forward computes the layer output for input x (length In).
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: Dense %d-in got %d values", d.In, len(x)))
	}
	y := make([]float64, d.Out)
	for o := 0; o < d.Out; o++ {
		sum := d.b.W[o]
		row := d.w.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			sum += row[i] * xi
		}
		y[o] = d.Act.Apply(sum)
	}
	d.lastX = append(d.lastX[:0], x...)
	d.lastY = append(d.lastY[:0], y...)
	return y
}

// Backward consumes dL/dy for the last Forward call, accumulates weight
// gradients, and returns dL/dx.
func (d *Dense) Backward(dy []float64) []float64 {
	if len(dy) != d.Out {
		panic(fmt.Sprintf("nn: Dense %d-out got %d grads", d.Out, len(dy)))
	}
	dx := make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		dz := dy[o] * d.Act.DerivFromOutput(d.lastY[o])
		d.b.G[o] += dz
		row := d.w.W[o*d.In : (o+1)*d.In]
		grow := d.w.G[o*d.In : (o+1)*d.In]
		for i := 0; i < d.In; i++ {
			grow[i] += dz * d.lastX[i]
			dx[i] += dz * row[i]
		}
	}
	return dx
}
