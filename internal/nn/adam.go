package nn

import "math"

// Adam is the Adam optimizer (Kingma & Ba 2015) with the standard
// bias-corrected moment estimates.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64
	// WeightDecay applies decoupled L2 regularization (AdamW): weights
	// shrink by LR·WeightDecay per step. The prediction model trains on
	// comparatively few probe sequences, so regularization carries real
	// generalization weight here.
	WeightDecay float64
	step        int
}

// NewAdam returns an Adam optimizer with the usual defaults
// (β1 = 0.9, β2 = 0.999, ε = 1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step applies one update to every parameter from its accumulated gradient
// and then clears the gradients.
func (a *Adam) Step(ps Params) {
	a.step++
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range ps {
		for i, g := range p.G {
			p.m[i] = a.Beta1*p.m[i] + (1-a.Beta1)*g
			p.v[i] = a.Beta2*p.v[i] + (1-a.Beta2)*g*g
			mHat := p.m[i] / c1
			vHat := p.v[i] / c2
			p.W[i] -= a.LR * (mHat/(math.Sqrt(vHat)+a.Epsilon) + a.WeightDecay*p.W[i])
		}
	}
	ps.ZeroGrad()
}
