// Batched inference-only forward passes (the PR 8 "gemm" fast path).
//
// The training Forward methods walk the sequence step by step, calling
// a vector–matrix gate per timestep and recording every intermediate
// for BPTT. Inference needs none of that bookkeeping, and the input
// projections W·x of all four gates are independent of the recurrent
// state — so they batch into one matrix–matrix product per gate over
// ALL timesteps at once (TimeDistributed-style), as do both Dense
// heads over the full feature matrix.
//
// Equivalence contract: every float64 op sequence here matches the
// reference path exactly. The gate reference is
//
//	sum := b[r]; for c { sum += W[r][c]*x[c] }; for c { sum += U[r][c]*h[c] }; act(sum)
//
// and the batched path computes the bias-seeded W·x prefix with
// mathx.MatMulTBias (same seed, same c order), then appends the U·h
// terms with mathx.AddMatVec (same accumulator, same c order), then
// applies the same activation. Storing the half-finished accumulator
// to memory between the two kernels does not change its value — Go
// float64 is strict IEEE 754 with no extended-precision carry-over.
// The zero initial state is NOT special-cased: the reference adds the
// U·0 terms (which can flip -0 to +0), so the batched path adds them
// too. infer_test.go pins all of this with math.Float64bits.
package nn

import (
	"fmt"

	"repro/internal/mathx"
)

type lstmInferScratch struct {
	pi, pf, po, pg []float64 // T×Hidden bias-seeded input projections
	c              []float64 // running cell state
	h0             []float64 // zero initial hidden state
}

type biInferScratch struct {
	rev    []float64 // reversed input for the backward direction
	hf, hb []float64 // per-direction hidden states (T×Hidden)
}

type mlpInferScratch struct {
	a, b []float64 // ping-pong activation buffers between layers
}

// grow returns *buf resized to n, reusing its backing array when large
// enough. Contents are unspecified — callers overwrite.
func grow(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// ForwardInfer runs the sequence xs (flat T×InDim row-major) and writes
// the hidden state of every step into out (flat T×Hidden), byte-identical
// to Forward but without recording the training cache. Scratch buffers
// live on the LSTM, so like Forward this is not safe for concurrent use
// on one instance.
func (l *LSTM) ForwardInfer(xs []float64, T int, out []float64) {
	hd := l.Hidden
	if len(xs) != T*l.InDim {
		panic(fmt.Sprintf("nn: LSTM ForwardInfer wants %d×%d inputs, got %d", T, l.InDim, len(xs)))
	}
	if len(out) < T*hd {
		panic("nn: LSTM ForwardInfer output buffer too short")
	}
	s := &l.infer
	pi := grow(&s.pi, T*hd)
	pf := grow(&s.pf, T*hd)
	po := grow(&s.po, T*hd)
	pg := grow(&s.pg, T*hd)
	// Batched bias-seeded input projections: p_g[t][r] = b_g[r] + Σ_c W_g[r][c]·x[t][c].
	mathx.MatMulTBias(xs, T, l.InDim, l.wi.W, hd, l.bi.W, pi)
	mathx.MatMulTBias(xs, T, l.InDim, l.wf.W, hd, l.bf.W, pf)
	mathx.MatMulTBias(xs, T, l.InDim, l.wo.W, hd, l.bo.W, po)
	mathx.MatMulTBias(xs, T, l.InDim, l.wg.W, hd, l.bg.W, pg)

	cPrev := grow(&s.c, hd)
	hPrev := grow(&s.h0, hd)
	for r := 0; r < hd; r++ {
		cPrev[r] = 0
		hPrev[r] = 0
	}
	for t := 0; t < T; t++ {
		ri := pi[t*hd : t*hd+hd]
		rf := pf[t*hd : t*hd+hd]
		ro := po[t*hd : t*hd+hd]
		rg := pg[t*hd : t*hd+hd]
		// Append the recurrent U·h terms to the stored accumulators —
		// same op order as the reference gate — then activate.
		mathx.AddMatVec(l.ui.W, hd, hd, hPrev, ri)
		mathx.AddMatVec(l.uf.W, hd, hd, hPrev, rf)
		mathx.AddMatVec(l.uo.W, hd, hd, hPrev, ro)
		mathx.AddMatVec(l.ug.W, hd, hd, hPrev, rg)
		ht := out[t*hd : t*hd+hd]
		for r := 0; r < hd; r++ {
			iv := Sigmoid.Apply(ri[r])
			fv := Sigmoid.Apply(rf[r])
			ov := Sigmoid.Apply(ro[r])
			gv := Tanh.Apply(rg[r])
			cv := fv*cPrev[r] + iv*gv
			ht[r] = ov * Tanh.Apply(cv)
			cPrev[r] = cv
		}
		hPrev = ht
	}
}

// ForwardInfer returns the concatenated hidden states as a fresh flat
// T×2·Hidden matrix, byte-identical to Forward. The returned slice does
// not alias the scratch buffers, so callers may retain it.
func (b *BiLSTM) ForwardInfer(xs []float64, T int) []float64 {
	in, hd := b.InDim, b.Hidden
	if len(xs) != T*in {
		panic(fmt.Sprintf("nn: BiLSTM ForwardInfer wants %d×%d inputs, got %d", T, in, len(xs)))
	}
	s := &b.infer
	rev := grow(&s.rev, T*in)
	for t := 0; t < T; t++ {
		copy(rev[t*in:t*in+in], xs[(T-1-t)*in:(T-t)*in])
	}
	hf := grow(&s.hf, T*hd)
	hb := grow(&s.hb, T*hd)
	b.fwd.ForwardInfer(xs, T, hf)
	b.bwd.ForwardInfer(rev, T, hb)
	out := make([]float64, T*2*hd)
	for t := 0; t < T; t++ {
		o := out[t*2*hd:]
		copy(o[:hd], hf[t*hd:t*hd+hd])
		copy(o[hd:2*hd], hb[(T-1-t)*hd:(T-t)*hd])
	}
	return out
}

// ForwardInfer runs rows samples (xs flat rows×in of the first layer)
// through the stack in one GEMM per layer, writing the final
// activations (rows×OutDim) into out. Byte-identical to calling
// Forward per row, without touching the per-layer training caches.
// Scratch lives on the MLP; not safe for concurrent use on one
// instance (same contract as Forward). out must not alias xs.
func (m *MLP) ForwardInfer(xs []float64, rows int, out []float64) {
	if len(m.layers) == 0 {
		panic("nn: ForwardInfer on empty MLP")
	}
	if len(xs) != rows*m.layers[0].In {
		panic(fmt.Sprintf("nn: MLP ForwardInfer wants %d×%d inputs, got %d", rows, m.layers[0].In, len(xs)))
	}
	if len(out) < rows*m.OutDim() {
		panic("nn: MLP ForwardInfer output buffer too short")
	}
	s := &m.infer
	bufA, bufB := &s.a, &s.b
	cur := xs
	for li, l := range m.layers {
		var dst []float64
		if li == len(m.layers)-1 {
			dst = out[:rows*l.Out]
		} else {
			dst = grow(bufA, rows*l.Out)
			bufA, bufB = bufB, bufA
		}
		mathx.MatMulTBias(cur, rows, l.In, l.w.W, l.Out, l.b.W, dst)
		if l.Act != Identity {
			for i := range dst {
				dst[i] = l.Act.Apply(dst[i])
			}
		}
		cur = dst
	}
}

// ForwardBatched is the inference-only Forward: identical outputs (to
// the bit — see infer_test.go), no training caches, and both heads
// applied as one GEMM over all timesteps instead of SeqLen small
// vector products.
func (p *Predictor) ForwardBatched(aliceSeq []float64) (yHat, zHat []float64) {
	T := p.Cfg.SeqLen
	if len(aliceSeq) != T {
		panic(fmt.Sprintf("nn: Predictor wants %d-step sequences, got %d", T, len(aliceSeq)))
	}
	// InDim is 1, so the sequence itself is the flat T×1 input matrix.
	hs := p.bilstm.ForwardInfer(aliceSeq, T)
	feat := 2 * p.Cfg.Hidden

	pred := p.fcPred[0]
	yHat = make([]float64, T)
	mathx.MatMulTBias(hs, T, feat, pred.w.W, 1, pred.b.W, yHat)
	if pred.Act != Identity {
		for i := range yHat {
			yHat[i] = pred.Act.Apply(yHat[i])
		}
	}

	quant := p.fcQuant[0]
	zHat = make([]float64, T*p.perStep)
	mathx.MatMulTBias(hs, T, feat, quant.w.W, p.perStep, quant.b.W, zHat)
	for i := range zHat {
		zHat[i] = quant.Act.Apply(zHat[i])
	}
	return yHat, zHat
}
