package nn

import "repro/internal/rng"

// MLP is a stack of dense layers, used for the autoencoder reconciler's
// encoders and decoder.
type MLP struct {
	layers []*Dense
	infer  mlpInferScratch // reusable buffers for ForwardInfer (infer.go)
}

// MLPSpec describes one MLP layer.
type MLPSpec struct {
	Out int
	Act Activation
}

// NewMLP builds an MLP taking in inputs through the given layer specs.
func NewMLP(name string, in int, specs []MLPSpec, src *rng.Source) *MLP {
	m := &MLP{}
	prev := in
	for i, s := range specs {
		m.layers = append(m.layers, NewDense(denseName(name, i), prev, s.Out, s.Act, src))
		prev = s.Out
	}
	return m
}

func denseName(name string, i int) string {
	return name + "." + string(rune('0'+i))
}

// ShareWeights returns an MLP view over the same parameters with
// independent forward caches (see Dense.ShareWeights).
func (m *MLP) ShareWeights() *MLP {
	out := &MLP{layers: make([]*Dense, len(m.layers))}
	for i, l := range m.layers {
		out.layers[i] = l.ShareWeights()
	}
	return out
}

// Params returns all learnable tensors.
func (m *MLP) Params() Params {
	var ps Params
	for _, l := range m.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// OutDim returns the width of the final layer.
func (m *MLP) OutDim() int { return m.layers[len(m.layers)-1].Out }

// Forward runs the stack.
func (m *MLP) Forward(x []float64) []float64 {
	for _, l := range m.layers {
		x = l.Forward(x)
	}
	return x
}

// Backward backpropagates dL/dy through the stack and returns dL/dx.
func (m *MLP) Backward(dy []float64) []float64 {
	for i := len(m.layers) - 1; i >= 0; i-- {
		dy = m.layers[i].Backward(dy)
	}
	return dy
}
