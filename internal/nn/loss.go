package nn

import "math"

// MSE returns the mean squared error between target y and prediction yHat,
// plus the gradient dL/dyHat.
func MSE(y, yHat []float64) (float64, []float64) {
	n := float64(len(y))
	grad := make([]float64, len(y))
	var loss float64
	for i := range y {
		d := yHat[i] - y[i]
		loss += d * d
		grad[i] = 2 * d / n
	}
	return loss / n, grad
}

// BCE returns the summed binary cross entropy between the 0/1 target bits
// z and the sigmoid outputs zHat (as in the paper's Eq. 5, which sums
// rather than averages), plus the gradient dL/dzHat. Predictions are
// clamped away from {0, 1} for numerical stability.
func BCE(z []byte, zHat []float64) (float64, []float64) {
	const eps = 1e-9
	grad := make([]float64, len(zHat))
	var loss float64
	for i := range zHat {
		p := zHat[i]
		if p < eps {
			p = eps
		}
		if p > 1-eps {
			p = 1 - eps
		}
		if z[i] == 1 {
			loss += -math.Log(p)
			grad[i] = -1 / p
		} else {
			loss += -math.Log(1 - p)
			grad[i] = 1 / (1 - p)
		}
	}
	return loss, grad
}

// JointLoss is the paper's Eq. 3: θ·MSE(y, ŷ) + (1−θ)·BCE(z, ẑ). It
// returns the combined loss and the two gradient slices already scaled by
// their weights. mask, when non-nil, limits the BCE term to the marked
// bit positions — the positions Bob's guard-banded quantizer kept.
func JointLoss(theta float64, y, yHat []float64, z []byte, zHat []float64, mask []bool) (loss float64, dyHat, dzHat []float64) {
	mse, dy := MSE(y, yHat)
	bce, dz := BCE(z, zHat)
	if mask != nil {
		bce = 0
		const eps = 1e-9
		for i := range zHat {
			if !mask[i] {
				dz[i] = 0
				continue
			}
			p := zHat[i]
			if p < eps {
				p = eps
			}
			if p > 1-eps {
				p = 1 - eps
			}
			if z[i] == 1 {
				bce += -math.Log(p)
			} else {
				bce += -math.Log(1 - p)
			}
		}
	}
	loss = theta*mse + (1-theta)*bce
	for i := range dy {
		dy[i] *= theta
	}
	for i := range dz {
		dz[i] *= 1 - theta
	}
	return loss, dy, dz
}
