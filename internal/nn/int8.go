// Int8 inference-only path (the PR 8 "int8" fast path).
//
// Per-tensor symmetric quantization: every weight matrix is snapshotted
// to int8 with scale = maxAbs/127, activations are quantized on the fly
// with scales recorded by Calibrate over post-training sample windows,
// and products accumulate in int32 (K ≤ a few hundred at |q| ≤ 127
// keeps the sum far below 2³¹). Biases, gate activations, and the cell
// recurrence stay float64 — the cheap part — so the only error source
// is weight/activation rounding, which Calibrate bounds empirically
// (QuantBound) with the property battery in int8_test.go asserting the
// bound over random windows.
//
// The path is inference-only and OPT-IN: training always runs the
// float64 reference, and serving uses this path only for sessions that
// tolerate bounded probability-output error before the 0.5 hard
// threshold. The guard band drops near-threshold samples, so at every
// position both paths keep, the hard key bits are identical
// (internal/core's TestInt8KeyBitIdentitySeedScenarios measures zero
// flips across the seed scenarios); whole-session golden-key identity
// is NOT claimed — the guard selection itself consumes the soft ŷ, and
// int8 weight rounding alone shifts ŷ enough (~5e-3) to flip
// boundary-adjacent keep decisions (scheme_golden_test.go pins how far
// the equality empirically extends).
package nn

import (
	"fmt"
	"math"
)

// qTensor is an int8 weight snapshot with its dequantization scale.
type qTensor struct {
	q     []int8
	scale float64
}

// quantizeValue maps v to int8 at the given scale: round to nearest
// (half away from zero), clamp to [-127, 127], NaN to 0. Never panics.
func quantizeValue(v, scale float64) int8 {
	r := math.Round(v / scale)
	if math.IsNaN(r) {
		return 0
	}
	if r > 127 {
		return 127
	}
	if r < -127 {
		return -127
	}
	return int8(r)
}

func quantizeTensor(w []float64) qTensor {
	scale := maxAbsScale(w)
	q := make([]int8, len(w))
	for i, v := range w {
		q[i] = quantizeValue(v, scale)
	}
	return qTensor{q: q, scale: scale}
}

// maxAbsScale returns maxAbs/127 with a floor that keeps all-zero (or
// degenerate) tensors usable: scale 1 quantizes everything to 0, which
// is exact for an all-zero tensor.
func maxAbsScale(w []float64) float64 {
	maxAbs := 0.0
	for _, v := range w {
		if a := math.Abs(v); a > maxAbs && !math.IsInf(a, 0) {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 1
	}
	return maxAbs / 127
}

// quantLSTM holds one direction's int8 weight snapshots plus bias
// copies (copied so a later float retrain cannot leave the snapshot
// half-stale) and the hidden-state activation scale.
type quantLSTM struct {
	wi, wf, wo, wg qTensor // Hidden×InDim
	ui, uf, uo, ug qTensor // Hidden×Hidden
	bi, bf, bo, bg []float64
	hScale         float64
}

func snapshotLSTM(l *LSTM, hScale float64) quantLSTM {
	cp := func(p *Param) []float64 { return append([]float64(nil), p.W...) }
	return quantLSTM{
		wi: quantizeTensor(l.wi.W), wf: quantizeTensor(l.wf.W),
		wo: quantizeTensor(l.wo.W), wg: quantizeTensor(l.wg.W),
		ui: quantizeTensor(l.ui.W), uf: quantizeTensor(l.uf.W),
		uo: quantizeTensor(l.uo.W), ug: quantizeTensor(l.ug.W),
		bi: cp(l.bi), bf: cp(l.bf), bo: cp(l.bo), bg: cp(l.bg),
		hScale: hScale,
	}
}

// predictorQuant is the read-only calibration product: weight
// snapshots, activation scales, and the empirically calibrated output
// error bound. Shared (not copied) by Predictor clones.
type predictorQuant struct {
	fwd, bwd      quantLSTM
	predW, quantW qTensor
	predB, quantB []float64
	inScale       float64 // input sequence values
	featScale     float64 // concatenated BiLSTM features
	bound         float64 // max |zHat_int8 − zHat_float| seen in calibration, with margin
}

type quantScratch struct {
	qx           []int8    // quantized input sequence
	pre          []float64 // 4×T×Hidden input projections, gate-major
	qh           []int8    // quantized previous hidden state
	cPrev, hPrev []float64
	hf, hb       []float64 // per-direction hidden states
	feat         []float64 // concatenated features
	qfeat        []int8
}

func growI8(buf *[]int8, n int) []int8 {
	if cap(*buf) < n {
		*buf = make([]int8, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// Calibrate snapshots the current weights to int8 and records
// activation scales from the given sample windows (max-abs over the
// float forward pass), then measures the resulting soft-bit error on
// those same windows to set QuantBound. Call after training; Train
// re-calibrates automatically when the int8 path is selected.
func (p *Predictor) Calibrate(windows [][]float64) {
	if len(windows) == 0 {
		panic("nn: Calibrate needs at least one window")
	}
	hd := p.Cfg.Hidden
	inMax, fwdMax, bwdMax := 0.0, 0.0, 0.0
	for _, w := range windows {
		for _, v := range w {
			if a := math.Abs(v); a > inMax {
				inMax = a
			}
		}
		hs := p.bilstm.ForwardInfer(w, p.Cfg.SeqLen)
		for t := 0; t < p.Cfg.SeqLen; t++ {
			for r := 0; r < hd; r++ {
				if a := math.Abs(hs[t*2*hd+r]); a > fwdMax {
					fwdMax = a
				}
				if a := math.Abs(hs[t*2*hd+hd+r]); a > bwdMax {
					bwdMax = a
				}
			}
		}
	}
	scaleOf := func(m float64) float64 {
		if m == 0 {
			return 1
		}
		return m / 127
	}
	q := &predictorQuant{
		fwd:       snapshotLSTM(p.bilstm.fwd, scaleOf(fwdMax)),
		bwd:       snapshotLSTM(p.bilstm.bwd, scaleOf(bwdMax)),
		predW:     quantizeTensor(p.fcPred[0].w.W),
		quantW:    quantizeTensor(p.fcQuant[0].w.W),
		predB:     append([]float64(nil), p.fcPred[0].b.W...),
		quantB:    append([]float64(nil), p.fcQuant[0].b.W...),
		inScale:   scaleOf(inMax),
		featScale: scaleOf(math.Max(fwdMax, bwdMax)),
	}
	p.quant = q
	// Empirical output-error bound over the calibration set, with a 3×
	// margin for serving windows drawn from the same distribution (the
	// property test in int8_test.go checks the margin holds over 1k
	// unseen windows).
	maxErr := 0.0
	for _, w := range windows {
		_, zf := p.ForwardBatched(w)
		_, zq := p.ForwardQuantized(w)
		for i := range zf {
			if e := math.Abs(zq[i] - zf[i]); e > maxErr {
				maxErr = e
			}
		}
	}
	q.bound = 3*maxErr + 2e-3
}

// Calibrated reports whether an int8 snapshot exists.
func (p *Predictor) Calibrated() bool { return p.quant != nil }

// QuantBound returns the calibrated bound on |zHat_int8 − zHat_float|
// per soft bit (0 when uncalibrated).
func (p *Predictor) QuantBound() float64 {
	if p.quant == nil {
		return 0
	}
	return p.quant.bound
}

// AdoptCalibration shares from's calibration snapshot (read-only, so
// sharing is safe). Used by clones whose weights are byte-identical to
// the source — i.e. right after a Save/Load round-trip.
func (p *Predictor) AdoptCalibration(from *Predictor) { p.quant = from.quant }

// DropCalibration invalidates the snapshot (weights changed).
func (p *Predictor) DropCalibration() { p.quant = nil }

// forwardQuant runs one direction: int8 input projections batched over
// all timesteps, int8 recurrent products per step, float64 gate math.
func (q *quantLSTM) forwardQuant(qx []int8, T, in, hd int, xScale float64, s *quantScratch, pre []float64, out []float64) {
	// pre is 4×T×hd gate-major: gate g's row t starts at (g*T+t)*hd.
	gates := [4]struct {
		w qTensor
		b []float64
	}{{q.wi, q.bi}, {q.wf, q.bf}, {q.wo, q.bo}, {q.wg, q.bg}}
	for g, gt := range gates {
		dst := pre[g*T*hd : (g+1)*T*hd]
		for t := 0; t < T; t++ {
			xr := qx[t*in : t*in+in]
			for r := 0; r < hd; r++ {
				wr := gt.w.q[r*in : r*in+in]
				acc := int32(0)
				for c, xv := range xr {
					acc += int32(wr[c]) * int32(xv)
				}
				dst[t*hd+r] = gt.b[r] + float64(acc)*gt.w.scale*xScale
			}
		}
	}
	cPrev := grow(&s.cPrev, hd)
	hPrev := grow(&s.hPrev, hd)
	for r := 0; r < hd; r++ {
		cPrev[r] = 0
		hPrev[r] = 0
	}
	qh := growI8(&s.qh, hd)
	recur := [4]qTensor{q.ui, q.uf, q.uo, q.ug}
	for t := 0; t < T; t++ {
		for r := 0; r < hd; r++ {
			qh[r] = quantizeValue(hPrev[r], q.hScale)
		}
		ht := out[t*hd : t*hd+hd]
		for r := 0; r < hd; r++ {
			var sums [4]float64
			for g := 0; g < 4; g++ {
				ur := recur[g].q[r*hd : r*hd+hd]
				acc := int32(0)
				for c, hv := range qh {
					acc += int32(ur[c]) * int32(hv)
				}
				sums[g] = pre[(g*T+t)*hd+r] + float64(acc)*recur[g].scale*q.hScale
			}
			iv := Sigmoid.Apply(sums[0])
			fv := Sigmoid.Apply(sums[1])
			ov := Sigmoid.Apply(sums[2])
			gv := Tanh.Apply(sums[3])
			cv := fv*cPrev[r] + iv*gv
			ht[r] = ov * Tanh.Apply(cv)
			cPrev[r] = cv
		}
		copy(hPrev, ht)
	}
}

// ForwardQuantized is the int8 inference forward. Panics if Calibrate
// has not run; callers gate on Calibrated().
func (p *Predictor) ForwardQuantized(aliceSeq []float64) (yHat, zHat []float64) {
	q := p.quant
	if q == nil {
		panic("nn: ForwardQuantized before Calibrate")
	}
	T, hd := p.Cfg.SeqLen, p.Cfg.Hidden
	if len(aliceSeq) != T {
		panic(fmt.Sprintf("nn: Predictor wants %d-step sequences, got %d", T, len(aliceSeq)))
	}
	s := &p.qscratch
	qx := growI8(&s.qx, T)
	for i, v := range aliceSeq {
		qx[i] = quantizeValue(v, q.inScale)
	}
	pre := grow(&s.pre, 4*T*hd)
	hf := grow(&s.hf, T*hd)
	hb := grow(&s.hb, T*hd)
	q.fwd.forwardQuant(qx, T, 1, hd, q.inScale, s, pre, hf)
	// Backward direction sees the reversed sequence.
	qxr := growI8(&s.qfeat, T) // reuse; refilled below for features
	for t := 0; t < T; t++ {
		qxr[t] = qx[T-1-t]
	}
	q.bwd.forwardQuant(qxr, T, 1, hd, q.inScale, s, pre, hb)

	feat := grow(&s.feat, T*2*hd)
	for t := 0; t < T; t++ {
		copy(feat[t*2*hd:t*2*hd+hd], hf[t*hd:t*hd+hd])
		copy(feat[t*2*hd+hd:(t+1)*2*hd], hb[(T-1-t)*hd:(T-t)*hd])
	}
	qfeat := growI8(&s.qfeat, T*2*hd)
	for i, v := range feat {
		qfeat[i] = quantizeValue(v, q.featScale)
	}

	width := 2 * hd
	yHat = make([]float64, T)
	for t := 0; t < T; t++ {
		fr := qfeat[t*width : (t+1)*width]
		acc := int32(0)
		for c, fv := range fr {
			acc += int32(q.predW.q[c]) * int32(fv)
		}
		yHat[t] = q.predB[0] + float64(acc)*q.predW.scale*q.featScale
	}
	zHat = make([]float64, T*p.perStep)
	for t := 0; t < T; t++ {
		fr := qfeat[t*width : (t+1)*width]
		for o := 0; o < p.perStep; o++ {
			wr := q.quantW.q[o*width : (o+1)*width]
			acc := int32(0)
			for c, fv := range fr {
				acc += int32(wr[c]) * int32(fv)
			}
			zHat[t*p.perStep+o] = Sigmoid.Apply(q.quantB[o] + float64(acc)*q.quantW.scale*q.featScale)
		}
	}
	return yHat, zHat
}
