package nn

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestPredictorOutputShapes(t *testing.T) {
	src := rng.New(1)
	p := NewPredictor(PredictorConfig{SeqLen: 16, Hidden: 4, Bits: 32, Theta: 0.9}, src)
	seq := make([]float64, 16)
	yHat, zHat := p.Forward(seq)
	if len(yHat) != 16 || len(zHat) != 32 {
		t.Fatalf("shapes %d/%d, want 16/32", len(yHat), len(zHat))
	}
}

func TestPredictorSigmoidBounds(t *testing.T) {
	src := rng.New(2)
	p := NewPredictor(PredictorConfig{SeqLen: 8, Hidden: 4, Bits: 16, Theta: 0.9}, src)
	f := func(raw [8]int8) bool {
		seq := make([]float64, 8)
		for i, v := range raw {
			seq[i] = float64(v) / 32
		}
		_, zHat := p.Forward(seq)
		for _, z := range zHat {
			if z < 0 || z > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictorSaveLoadDeterministic(t *testing.T) {
	src := rng.New(3)
	cfg := PredictorConfig{SeqLen: 8, Hidden: 4, Bits: 16, Theta: 0.9}
	p1 := NewPredictor(cfg, src)
	var buf bytes.Buffer
	if err := SaveParams(&buf, p1.Params()); err != nil {
		t.Fatal(err)
	}
	p2 := NewPredictor(cfg, rng.New(4))
	if err := LoadParams(&buf, p2.Params()); err != nil {
		t.Fatal(err)
	}
	seq := make([]float64, 8)
	for i := range seq {
		seq[i] = src.Normal(0, 1)
	}
	y1, z1 := p1.Forward(seq)
	y2, z2 := p2.Forward(seq)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatal("prediction head differs after load")
		}
	}
	for i := range z1 {
		if z1[i] != z2[i] {
			t.Fatal("quantization head differs after load")
		}
	}
}

func TestLoadParamsRejectsMismatch(t *testing.T) {
	src := rng.New(5)
	p1 := NewPredictor(PredictorConfig{SeqLen: 8, Hidden: 4, Bits: 16}, src)
	var buf bytes.Buffer
	if err := SaveParams(&buf, p1.Params()); err != nil {
		t.Fatal(err)
	}
	p2 := NewPredictor(PredictorConfig{SeqLen: 8, Hidden: 8, Bits: 16}, src)
	if err := LoadParams(&buf, p2.Params()); err == nil {
		t.Fatal("loading mismatched shapes must fail")
	}
}

func TestMaskedLossIgnoresMaskedPositions(t *testing.T) {
	y := []float64{0, 0}
	yHat := []float64{0, 0}
	z := []byte{1, 0}
	zHat := []float64{0.2, 0.9} // both "wrong"
	mask := []bool{false, false}
	loss, _, dz := JointLoss(0.5, y, yHat, z, zHat, mask)
	if loss != 0 {
		t.Errorf("fully masked loss = %v, want 0", loss)
	}
	for _, g := range dz {
		if g != 0 {
			t.Error("masked gradients must be zero")
		}
	}
	mask[0] = true
	loss, _, dz = JointLoss(0.5, y, yHat, z, zHat, mask)
	if loss <= 0 || dz[0] == 0 || dz[1] != 0 {
		t.Errorf("half-masked: loss=%v dz=%v", loss, dz)
	}
}

func TestClipGrad(t *testing.T) {
	p := NewParam("p", 3)
	p.G[0], p.G[1], p.G[2] = 3, 4, 0 // norm 5
	ps := Params{p}
	ps.ClipGrad(2.5)
	if p.G[0] != 1.5 || p.G[1] != 2 {
		t.Errorf("clipped grads = %v", p.G)
	}
	ps.ClipGrad(100) // under the cap: unchanged
	if p.G[0] != 1.5 {
		t.Error("grads below the cap must not change")
	}
}
