// Package lora models the LoRa physical layer as seen by Vehicle-Key: the
// SX127x timing equations that make LoRa packets hundreds of milliseconds
// long (the root cause of the paper's reciprocity problem), and a
// transceiver that measures the channel either as packet-averaged RSSI
// (pRSSI) or as a stream of instantaneous register reads (rRSSI), with
// per-device hardware imperfections, receiver noise, and the 1 dB register
// quantization of real SX127x silicon.
package lora

import (
	"errors"
	"fmt"
	"math"
)

// CodeRate is the LoRa forward-error-correction rate 4/(4+CR).
type CodeRate int

// Supported code rates.
const (
	CR45 CodeRate = 1 // 4/5
	CR46 CodeRate = 2 // 4/6
	CR47 CodeRate = 3 // 4/7
	CR48 CodeRate = 4 // 4/8
)

// Fraction returns the information fraction 4/(4+CR).
func (c CodeRate) Fraction() float64 { return 4 / (4 + float64(c)) }

// String implements fmt.Stringer.
func (c CodeRate) String() string { return fmt.Sprintf("4/%d", 4+int(c)) }

// Params is one LoRa radio configuration.
type Params struct {
	SpreadingFactor int      // 6..12
	BandwidthHz     float64  // 7.8e3 .. 500e3
	CodingRate      CodeRate // CR45..CR48
	PreambleSymbols int      // default 8
	ExplicitHeader  bool     // default true
	CRC             bool     // default true
	PayloadBytes    int      // default 16 (the paper's probe size)
	CarrierHz       float64  // default 434 MHz
}

// Default returns the paper's experimental configuration:
// SF12, BW 125 kHz, CR 4/8, 16-byte payload at 434 MHz (≈ 183 bit/s).
func Default() Params {
	return Params{
		SpreadingFactor: 12,
		BandwidthHz:     125e3,
		CodingRate:      CR48,
		PreambleSymbols: 8,
		ExplicitHeader:  true,
		CRC:             true,
		PayloadBytes:    16,
		CarrierHz:       434e6,
	}
}

// Validate reports whether the parameter combination is one a real SX127x
// accepts.
func (p Params) Validate() error {
	if p.SpreadingFactor < 6 || p.SpreadingFactor > 12 {
		return fmt.Errorf("lora: spreading factor %d out of range [6,12]", p.SpreadingFactor)
	}
	switch p.BandwidthHz {
	case 7.8e3, 10.4e3, 15.6e3, 20.8e3, 31.25e3, 41.7e3, 62.5e3, 125e3, 250e3, 500e3:
	default:
		return fmt.Errorf("lora: bandwidth %.0f Hz is not an SX127x option", p.BandwidthHz)
	}
	if p.CodingRate < CR45 || p.CodingRate > CR48 {
		return fmt.Errorf("lora: coding rate %d out of range", p.CodingRate)
	}
	if p.PayloadBytes <= 0 || p.PayloadBytes > 255 {
		return errors.New("lora: payload must be 1..255 bytes")
	}
	if p.PreambleSymbols < 6 {
		return errors.New("lora: preamble must be at least 6 symbols")
	}
	return nil
}

// SymbolTime returns the duration of one LoRa symbol: 2^SF / BW seconds.
func (p Params) SymbolTime() float64 {
	return math.Exp2(float64(p.SpreadingFactor)) / p.BandwidthHz
}

// BitRate returns the paper's R_b = SF · BW/2^SF · CR in bits/second
// (≈ 183 bit/s for the default configuration).
func (p Params) BitRate() float64 {
	return float64(p.SpreadingFactor) * p.BandwidthHz /
		math.Exp2(float64(p.SpreadingFactor)) * p.CodingRate.Fraction()
}

// lowDataRateOptimize reports whether the SX127x mandates the DE bit
// (symbol time above 16 ms).
func (p Params) lowDataRateOptimize() bool { return p.SymbolTime() > 16e-3 }

// PayloadSymbols returns the number of payload symbols per the Semtech
// AN1200.13 airtime formula.
func (p Params) PayloadSymbols() int {
	de := 0.0
	if p.lowDataRateOptimize() {
		de = 1
	}
	ih := 1.0
	if p.ExplicitHeader {
		ih = 0
	}
	crc := 0.0
	if p.CRC {
		crc = 1
	}
	sf := float64(p.SpreadingFactor)
	num := 8*float64(p.PayloadBytes) - 4*sf + 28 + 16*crc - 20*ih
	den := 4 * (sf - 2*de)
	n := math.Ceil(num/den) * float64(int(p.CodingRate)+4)
	if n < 0 {
		n = 0
	}
	return 8 + int(n)
}

// Airtime returns the full packet time-on-air in seconds: preamble
// (N + 4.25 symbols) plus payload symbols.
func (p Params) Airtime() float64 {
	ts := p.SymbolTime()
	preamble := (float64(p.PreambleSymbols) + 4.25) * ts
	return preamble + float64(p.PayloadSymbols())*ts
}

// String implements fmt.Stringer.
func (p Params) String() string {
	return fmt.Sprintf("SF%d/BW%.3gkHz/CR%s/%dB (%.0f bit/s, %.0f ms airtime)",
		p.SpreadingFactor, p.BandwidthHz/1e3, p.CodingRate, p.PayloadBytes,
		p.BitRate(), p.Airtime()*1e3)
}

// DataRatePoint couples a named bit rate with the Params that realize it.
type DataRatePoint struct {
	Label  string
	BitsPS float64
	Params Params
}

// DataRateSweep returns the seven configurations whose bit rates match the
// x-axis of the paper's Fig. 2(a): 23, 46, 92, 183, 293, 586 and
// 1172 bit/s (SF12 with bandwidth and coding-rate steps).
func DataRateSweep() []DataRatePoint {
	mk := func(bw float64, cr CodeRate) Params {
		p := Default()
		p.BandwidthHz = bw
		p.CodingRate = cr
		return p
	}
	cfgs := []Params{
		mk(15.6e3, CR48),
		mk(31.25e3, CR48),
		mk(62.5e3, CR48),
		mk(125e3, CR48),
		mk(125e3, CR45),
		mk(250e3, CR45),
		mk(500e3, CR45),
	}
	out := make([]DataRatePoint, len(cfgs))
	for i, c := range cfgs {
		out[i] = DataRatePoint{
			Label:  fmt.Sprintf("%.0f bps", c.BitRate()),
			BitsPS: c.BitRate(),
			Params: c,
		}
	}
	return out
}
