package lora

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestBitRateMatchesPaper(t *testing.T) {
	// The paper: SF12, BW 125 kHz, CR 4/8 → 183 bit/s.
	p := Default()
	if rb := p.BitRate(); math.Abs(rb-183.1) > 0.2 {
		t.Errorf("bit rate = %v, want ~183", rb)
	}
}

func TestDataRateSweepMatchesFig2a(t *testing.T) {
	want := []float64{23, 46, 92, 183, 293, 586, 1172}
	pts := DataRateSweep()
	if len(pts) != len(want) {
		t.Fatalf("sweep has %d points, want %d", len(pts), len(want))
	}
	for i, pt := range pts {
		if math.Abs(pt.BitsPS-want[i])/want[i] > 0.02 {
			t.Errorf("point %d: %v bps, want ~%v", i, pt.BitsPS, want[i])
		}
		if err := pt.Params.Validate(); err != nil {
			t.Errorf("point %d invalid: %v", i, err)
		}
	}
}

func TestSymbolTime(t *testing.T) {
	p := Default()
	if ts := p.SymbolTime(); math.Abs(ts-32.768e-3) > 1e-6 {
		t.Errorf("SF12/125k symbol time = %v, want 32.768 ms", ts)
	}
}

func TestAirtimeKnownValue(t *testing.T) {
	// Cross-checked against the Semtech airtime calculator:
	// SF12, BW125, CR4/8, 16-byte payload, explicit header, CRC, DE on,
	// preamble 8 → 12.25 preamble symbols + 8+7*8 = 64 payload symbols?
	// The calculator yields ≈ 1712 ms.
	p := Default()
	if at := p.Airtime(); math.Abs(at-1.712) > 0.01 {
		t.Errorf("airtime = %v s, want ~1.712 s", at)
	}
}

func TestAirtimeMonotoneInPayload(t *testing.T) {
	p := Default()
	prev := 0.0
	for bytes := 1; bytes <= 64; bytes *= 2 {
		p.PayloadBytes = bytes
		at := p.Airtime()
		if at < prev {
			t.Fatalf("airtime must grow with payload: %v < %v at %d bytes", at, prev, bytes)
		}
		prev = at
	}
}

func TestValidate(t *testing.T) {
	p := Default()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.SpreadingFactor = 13
	if err := p.Validate(); err == nil {
		t.Error("SF13 must be rejected")
	}
	p = Default()
	p.BandwidthHz = 100e3
	if err := p.Validate(); err == nil {
		t.Error("non-SX127x bandwidth must be rejected")
	}
	p = Default()
	p.PayloadBytes = 0
	if err := p.Validate(); err == nil {
		t.Error("zero payload must be rejected")
	}
}

func TestTransceiverReceive(t *testing.T) {
	tr := NewTransceiver(DraginoLoRaShield, rng.New(1))
	rssiAt := func(tt float64) float64 { return -80 + tt } // ramp
	rec := tr.Receive(rssiAt, 0, 1.7)
	if len(rec.RRSSI) < 100 {
		t.Fatalf("expected ≥100 register reads for 1.7 s airtime, got %d", len(rec.RRSSI))
	}
	if rec.PRSSI < -85 || rec.PRSSI > -75 {
		t.Errorf("pRSSI %v implausible for ramp around -80", rec.PRSSI)
	}
	// Register quantization: all values on the 1 dB grid.
	for _, v := range rec.RRSSI {
		if v != math.Round(v) {
			t.Fatalf("rRSSI %v not quantized to 1 dB", v)
		}
	}
}

func TestTransceiverBiasIsStable(t *testing.T) {
	tr := NewTransceiver(MultiTechXDot, rng.New(2))
	b1 := tr.GainBiasDB()
	tr.Receive(func(float64) float64 { return -70 }, 0, 0.3)
	if tr.GainBiasDB() != b1 {
		t.Error("hardware bias must be constant per unit")
	}
	tr2 := NewTransceiver(MultiTechXDot, rng.New(3))
	if tr2.GainBiasDB() == b1 {
		t.Error("different units should draw different biases")
	}
}

func TestOpDelayWithinProfile(t *testing.T) {
	tr := NewTransceiver(DraginoLoRaShield, rng.New(4))
	for i := 0; i < 100; i++ {
		d := tr.OpDelay()
		if d < 5e-3 || d > 25e-3 {
			t.Fatalf("op delay %v s outside the Dragino profile", d)
		}
	}
}

func TestDeviceStrings(t *testing.T) {
	for _, d := range AllDevices() {
		if d.String() == "" {
			t.Error("device must have a name")
		}
	}
}
