// Shared-medium MAC simulation. A Medium carries every transmission of
// an N-vehicle deployment over a common pool of LoRa channels and
// resolves the physics the point-to-point transports ignore: co-channel
// collisions, the capture effect, half-duplex radios, channel-activity
// detection with listen-before-talk backoff, per-device duty-cycle
// budgets, and time-synchronized channel hopping.
//
// The medium runs on a virtual clock. Devices execute on ordinary
// goroutines, but every blocking point (CAD dwell, backoff, time on
// air, duty-credit wait, receive timeout) parks the goroutine on a
// condition variable and hands control to a conservative scheduler:
// virtual time advances only when no device is runnable, and exactly
// one parked device is woken per step — the one with the lowest id
// among those eligible — after all frame deliveries due at the new time
// have fired. Execution is therefore fully serialized, and every draw
// (hop sequences, received powers, backoffs) comes from an rng sub-seed
// keyed by link label, so an N-vehicle run produces byte-identical
// traffic at any -cpu or GOMAXPROCS setting.
//
// Two clock modes:
//
//   - Lockstep: every device counts as runnable from creation until it
//     parks, so virtual time is frozen until every endpoint is being
//     driven by a goroutine, and the run executes as fast as the host
//     allows. This is the deterministic mode; it requires a dedicated
//     driver per endpoint (an undriven endpoint freezes the clock).
//   - Emulation (default): devices count as runnable only while inside
//     a medium operation, and the virtual clock is throttled to
//     TimeScale virtual seconds per wall second. Idle endpoints are
//     harmless, which is what a worker-pool server needs, but wake
//     order couples to wall scheduling, so runs are not reproducible.
package lora

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/transport"
)

// MediumConfig parameterizes one shared medium. The zero value is not
// usable directly; Normalize fills defaults and Validate checks ranges.
type MediumConfig struct {
	// Channels is the size of the hopping pool (1..128; default 8).
	Channels int
	// PHY is the radio configuration every frame uses. Defaults to
	// MediumPHY (SF7, 125 kHz, CR 4/5) — fast enough that an ARQ
	// round trip stays under a few virtual seconds. PayloadBytes is
	// ignored; frames derive their airtime from the fragment length.
	PHY Params
	// CaptureDB: a frame survives a co-channel overlap when it is
	// received at least this much stronger than the other frame
	// (default 6 dB, the classic LoRa capture margin).
	CaptureDB float64
	// PowerMinDBm/PowerMaxDBm bound the per-device received power,
	// drawn once per device from the seed (defaults -90/-60 dBm).
	PowerMinDBm float64
	PowerMaxDBm float64
	// CADSymbols is the channel-activity-detection dwell before every
	// transmission, in symbols (default 2).
	CADSymbols int
	// CADMaxAttempts bounds CAD retries; when all find the channel
	// busy the frame is dropped and the ARQ layer recovers (default 6).
	CADMaxAttempts int
	// BackoffMin/BackoffMax bound the uniform backoff drawn after a
	// busy CAD, doubled per attempt (defaults 20ms/160ms, virtual).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// DutyCycle is the allowed time-on-air fraction per device
	// (0 < d ≤ 1; default 1 = unconstrained; EU868 would be 0.01).
	DutyCycle float64
	// DutyBurst is the airtime credit a device may bank, so short
	// bursts need not pace frame by frame (default 1s virtual).
	DutyBurst time.Duration
	// Dwell is the channel-hop dwell time: all radios derive the
	// current hop slot as floor(now/Dwell) (default 400ms virtual).
	Dwell time.Duration
	// FragmentBytes caps a single frame's payload; longer messages
	// transmit as a back-to-back fragment burst whose airtimes sum
	// (1..255; default 192).
	FragmentBytes int
	// Seed roots every random stream (hop sequences, powers,
	// backoffs) via rng sub-seed derivation (default 1).
	Seed int64
	// Lockstep selects the deterministic clock mode (see package doc).
	Lockstep bool
	// TimeScale throttles the emulation clock to this many virtual
	// seconds per wall second (default 200; ignored under Lockstep).
	TimeScale float64
	// TimeBurst bounds how far the emulation clock may leap after an
	// idle stretch, in virtual time (default 100ms; ignored under
	// Lockstep).
	TimeBurst time.Duration
	// DefaultRecvTimeout backs Conn.Recv, which has no deadline
	// parameter (default 30s virtual).
	DefaultRecvTimeout time.Duration
	// Recorder receives the vk_lora_* metrics (default nop).
	Recorder obs.Recorder
}

// MediumPHY returns the medium's default radio configuration: SF7 at
// 125 kHz, CR 4/5 — a 192-byte fragment flies in ≈0.31 s, so a probe
// round trip is a few virtual seconds instead of SF12's minutes.
func MediumPHY() Params {
	return Params{
		SpreadingFactor: 7,
		BandwidthHz:     125e3,
		CodingRate:      CR45,
		PreambleSymbols: 8,
		ExplicitHeader:  true,
		CRC:             true,
		PayloadBytes:    16,
		CarrierHz:       434e6,
	}
}

// Normalize returns the config with every zero field set to its
// default.
func (c MediumConfig) Normalize() MediumConfig {
	if c.Channels == 0 {
		c.Channels = 8
	}
	if c.PHY.SpreadingFactor == 0 {
		c.PHY = MediumPHY()
	}
	if c.CaptureDB == 0 {
		c.CaptureDB = 6
	}
	if c.PowerMinDBm == 0 && c.PowerMaxDBm == 0 {
		c.PowerMinDBm, c.PowerMaxDBm = -90, -60
	}
	if c.CADSymbols == 0 {
		c.CADSymbols = 2
	}
	if c.CADMaxAttempts == 0 {
		c.CADMaxAttempts = 6
	}
	if c.BackoffMin == 0 {
		c.BackoffMin = 20 * time.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = 160 * time.Millisecond
	}
	if c.DutyCycle == 0 {
		c.DutyCycle = 1
	}
	if c.DutyBurst == 0 {
		c.DutyBurst = time.Second
	}
	if c.Dwell == 0 {
		c.Dwell = 400 * time.Millisecond
	}
	if c.FragmentBytes == 0 {
		c.FragmentBytes = 192
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TimeScale == 0 {
		c.TimeScale = 200
	}
	if c.TimeBurst == 0 {
		c.TimeBurst = 100 * time.Millisecond
	}
	if c.DefaultRecvTimeout == 0 {
		c.DefaultRecvTimeout = 30 * time.Second
	}
	c.Recorder = obs.OrNop(c.Recorder)
	return c
}

// Validate checks a normalized config.
func (c MediumConfig) Validate() error {
	if c.Channels < 1 || c.Channels > 128 {
		return fmt.Errorf("lora: medium channels %d out of range [1,128]", c.Channels)
	}
	if err := c.PHY.Validate(); err != nil {
		return err
	}
	if c.CaptureDB < 0 {
		return fmt.Errorf("lora: capture margin %.1f dB is negative", c.CaptureDB)
	}
	if c.PowerMaxDBm < c.PowerMinDBm {
		return fmt.Errorf("lora: power range [%.1f, %.1f] dBm is inverted", c.PowerMinDBm, c.PowerMaxDBm)
	}
	if c.CADSymbols < 1 || c.CADMaxAttempts < 1 {
		return fmt.Errorf("lora: CAD needs ≥1 symbol and ≥1 attempt")
	}
	if c.BackoffMin <= 0 || c.BackoffMax < c.BackoffMin {
		return fmt.Errorf("lora: backoff range [%s, %s] is invalid", c.BackoffMin, c.BackoffMax)
	}
	if c.DutyCycle <= 0 || c.DutyCycle > 1 {
		return fmt.Errorf("lora: duty cycle %g out of range (0, 1]", c.DutyCycle)
	}
	if c.Dwell <= 0 {
		return fmt.Errorf("lora: hop dwell must be positive")
	}
	if c.FragmentBytes < 1 || c.FragmentBytes > 255 {
		return fmt.Errorf("lora: fragment size %d out of range [1,255]", c.FragmentBytes)
	}
	if !c.Lockstep && c.TimeScale <= 0 {
		return fmt.Errorf("lora: emulation time scale must be positive")
	}
	return nil
}

// messageAirtime returns the time on air for one message of n payload
// bytes: the sum over its fragment burst. The whole burst is one
// collision domain — fragment-level loss is below this model's
// granularity.
func (c MediumConfig) messageAirtime(n int) float64 {
	p := c.PHY
	full := n / c.FragmentBytes
	rem := n % c.FragmentBytes
	total := 0.0
	if full > 0 {
		p.PayloadBytes = c.FragmentBytes
		total = float64(full) * p.Airtime()
	}
	if rem > 0 || n == 0 {
		p.PayloadBytes = rem
		if rem == 0 {
			p.PayloadBytes = 1 // an empty message still costs a minimal frame
		}
		total += p.Airtime()
	}
	return total
}

// Stats is a snapshot of a medium's MAC counters. Every transmission
// attempt resolves to exactly one of Delivered, Collided, HalfDuplex,
// CADDropped, or ClosedDrops.
type Stats struct {
	Frames      uint64
	Delivered   uint64
	Collided    uint64
	HalfDuplex  uint64
	CADDropped  uint64
	ClosedDrops uint64

	CADBusy   uint64 // CAD probes that found the channel busy
	DutyWaits uint64 // parks waiting for duty-cycle credit
	Backoffs  uint64 // listen-before-talk backoffs drawn

	AirtimeSeconds float64 // total time on air transmitted
	VirtualSeconds float64 // the medium clock at snapshot time
}

// Baked metric names (one allocation at init, per the obs idiom).
var (
	obsTxDelivered  = obs.Labeled(obs.LoraTx, "result", obs.LoraDelivered)
	obsTxCollided   = obs.Labeled(obs.LoraTx, "result", obs.LoraCollided)
	obsTxHalfDuplex = obs.Labeled(obs.LoraTx, "result", obs.LoraHalfDuplex)
	obsTxCADDropped = obs.Labeled(obs.LoraTx, "result", obs.LoraCADDropped)
	obsTxClosed     = obs.Labeled(obs.LoraTx, "result", obs.LoraClosedDrop)
)

// hopLen is the length of every link's hop sequence; the schedule
// repeats after hopLen dwell slots.
const hopLen = 128

// transmission is one fragment burst in flight.
type transmission struct {
	from, to   *device
	payload    []byte
	start, end float64
	channel    int
	powerDBm   float64
	doomed     bool // lost to a co-channel collision
}

// link is one vehicle↔gateway radio pair. Both directions share the
// hop sequence, so their collision and CAD domains agree.
type link struct {
	label  string
	hop    []int
	a, b   *device
	closed bool
}

// device is one radio endpoint. All fields are guarded by Medium.mu.
type device struct {
	id    int
	label string
	m     *Medium
	link  *link
	peer  *device

	cond     *sync.Cond
	src      *rng.Source // backoff draws; serialized by the scheduler
	powerDBm float64     // received power at the peer, fixed per device

	queue    [][]byte
	blocking bool // counted in Medium.running
	parked   bool
	recvWait bool
	wakeAt   float64
	released bool

	dutyCredit float64 // banked airtime, seconds
	dutyLast   float64 // virtual time of the last credit refill

	txStart, txUntil float64 // the device's latest transmission span
	lastActive       float64 // virtual time of the last completed op
}

// Medium is the shared channel pool. Create with NewMedium, connect
// endpoints with Link or Dial/Listen, and drive them like any other
// transport.Conn.
type Medium struct {
	name string
	cfg  MediumConfig
	rec  obs.Recorder

	mu      sync.Mutex
	now     float64
	running int // devices runnable right now; 0 ⇒ clock may advance
	closed  bool

	devices   []*device
	txs       []*transmission
	stats     Stats
	listener  *MediumListener
	autoLabel int

	// Emulation-mode pacing: virtual-time budget refilled from the
	// wall clock at TimeScale, capped at TimeBurst.
	budget     float64
	lastRefill time.Time
	pacer      *time.Timer
}

// NewMedium builds a medium from cfg (normalized and validated here).
func NewMedium(cfg MediumConfig) (*Medium, error) {
	cfg = cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Medium{name: "medium", cfg: cfg, rec: cfg.Recorder}
	if !cfg.Lockstep {
		//vklint:ignore detrand -- wall clock only paces the emulation throttle; no simulated value depends on it
		m.lastRefill = time.Now()
	}
	return m, nil
}

// Name returns the medium's registry name ("medium" until registered).
func (m *Medium) Name() string { return m.name }

// Config returns the normalized configuration.
func (m *Medium) Config() MediumConfig { return m.cfg }

// Now returns the virtual clock. Deterministic only when read from a
// device goroutine between its own ops; harness goroutines race it.
func (m *Medium) Now() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Stats returns a counter snapshot.
func (m *Medium) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.VirtualSeconds = m.now
	return s
}

// Link creates one vehicle↔gateway pair on the medium, bypassing the
// listener. The label keys the link's hop-sequence, power, and backoff
// streams — reusing a label reuses those draws, so harnesses should
// label links uniquely.
func (m *Medium) Link(label string) (local, remote *Conn, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, nil, transport.ErrClosed
	}
	a, b := m.newLinkLocked(label)
	return a, b, nil
}

// Close releases every device (pending and future ops fail with
// ErrClosed), closes the listener, and stops the pacer. Idempotent.
func (m *Medium) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	if m.pacer != nil {
		m.pacer.Stop()
		m.pacer = nil
	}
	for _, d := range m.devices {
		m.releaseLocked(d)
	}
	l := m.listener
	m.mu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	return nil
}

func (m *Medium) newLinkLocked(label string) (*Conn, *Conn) {
	hopSrc := rng.Stream(m.cfg.Seed, "lora/hop/"+label, 0)
	hop := make([]int, hopLen)
	for i := range hop {
		hop[i] = hopSrc.Intn(m.cfg.Channels)
	}
	l := &link{label: label, hop: hop}
	mk := func(idx int) *device {
		d := &device{
			id:         len(m.devices),
			label:      fmt.Sprintf("%s/%d", label, idx),
			m:          m,
			link:       l,
			src:        rng.Stream(m.cfg.Seed, "lora/mac/"+label, idx),
			powerDBm:   rng.Stream(m.cfg.Seed, "lora/power/"+label, idx).Uniform(m.cfg.PowerMinDBm, m.cfg.PowerMaxDBm),
			dutyCredit: m.cfg.DutyBurst.Seconds(),
			dutyLast:   m.now,
			txStart:    -1,
			txUntil:    -1,
			lastActive: m.now,
		}
		d.cond = sync.NewCond(&m.mu)
		// Lockstep freezes the clock until every endpoint is driven:
		// a device is runnable from birth until its first park.
		if m.cfg.Lockstep {
			m.setBlocking(d, true)
		}
		m.devices = append(m.devices, d)
		return d
	}
	a := mk(0)
	b := mk(1)
	a.peer, b.peer = b, a
	l.a, l.b = a, b
	return &Conn{d: a}, &Conn{d: b}
}

// ---------------------------------------------------------------------
// Scheduler: conservative virtual time under Medium.mu.
// ---------------------------------------------------------------------

// setBlocking moves a device in or out of the runnable count.
// Idempotent, so release/park/wake can overlap safely.
func (m *Medium) setBlocking(d *device, b bool) {
	if d.blocking == b {
		return
	}
	d.blocking = b
	if b {
		m.running++
	} else {
		m.running--
	}
}

// releaseLocked permanently retires a device: it no longer counts as
// runnable and every park returns false. Wakes any parked op.
func (m *Medium) releaseLocked(d *device) {
	if d.released {
		return
	}
	d.released = true
	m.setBlocking(d, false)
	d.cond.Broadcast()
}

// closeLinkLocked closes both ends of a link — Conn.Close is link-wide,
// matching the in-memory pair's shared-fate semantics.
func (m *Medium) closeLinkLocked(l *link) {
	if l.closed {
		return
	}
	l.closed = true
	m.releaseLocked(l.a)
	m.releaseLocked(l.b)
	m.schedule()
}

// park blocks the calling device until the scheduler wakes it at
// wakeAt — or, when recvWait, as soon as a message is queued — and
// returns false if the device was released instead.
func (d *device) park(wakeAt float64, recvWait bool) bool {
	m := d.m
	d.parked, d.wakeAt, d.recvWait = true, wakeAt, recvWait
	m.setBlocking(d, false)
	m.schedule()
	for d.parked && !d.released && !m.closed {
		d.cond.Wait()
	}
	d.recvWait = false
	if d.parked { // woken by release or medium close, not the scheduler
		d.parked = false
		return false
	}
	return !d.released && !m.closed
}

// wakeLocked hands the clock to one parked device.
func (m *Medium) wakeLocked(d *device) {
	d.parked = false
	m.setBlocking(d, true)
	d.cond.Signal()
}

// eligibleLocked returns the lowest-id parked device that is due at the
// current virtual time (deadline reached, or a message arrived for a
// receive wait), or nil.
func (m *Medium) eligibleLocked() *device {
	for _, d := range m.devices {
		if !d.parked || d.released {
			continue
		}
		if d.wakeAt <= m.now || (d.recvWait && len(d.queue) > 0) {
			return d // devices is in id order
		}
	}
	return nil
}

// nextEventLocked returns the earliest future event: a frame ending or
// a parked deadline.
func (m *Medium) nextEventLocked() (float64, bool) {
	t, ok := math.Inf(1), false
	for _, tx := range m.txs {
		if tx.end < t {
			t, ok = tx.end, true
		}
	}
	for _, d := range m.devices {
		if d.parked && !d.released && d.wakeAt < t {
			t, ok = d.wakeAt, true
		}
	}
	return t, ok
}

// schedule advances virtual time and wakes parked devices. Called with
// mu held whenever the runnable count may have reached zero. At most
// one device is woken; it runs to its next park or op exit and
// re-enters schedule, serializing the whole simulation.
func (m *Medium) schedule() {
	for m.running == 0 && !m.closed {
		if d := m.eligibleLocked(); d != nil {
			m.wakeLocked(d)
			return
		}
		t, ok := m.nextEventLocked()
		if !ok {
			return // fully idle: wait for external activity
		}
		if !m.cfg.Lockstep && !m.spendBudget(t) {
			return // throttled: the pacer re-enters schedule
		}
		m.advanceTo(t)
	}
}

// spendBudget gates an emulation-mode advance to target behind the
// wall-clock throttle. Returns false after arming the pacer when the
// virtual-time budget is short.
func (m *Medium) spendBudget(target float64) bool {
	//vklint:ignore detrand -- wall clock only paces the emulation throttle; no simulated value depends on it
	wall := time.Now()
	m.budget += wall.Sub(m.lastRefill).Seconds() * m.cfg.TimeScale
	m.lastRefill = wall
	step := target - m.now
	// The cap bounds how much idle credit banks, but must stretch to the
	// step at hand: a receive-timeout park is tens of virtual seconds,
	// and a budget that can never cover it would freeze the clock in an
	// arm-pacer/refill-to-cap loop.
	if cap := math.Max(m.cfg.TimeBurst.Seconds(), step); m.budget > cap {
		m.budget = cap
	}
	if step <= m.budget {
		m.budget -= step
		return true
	}
	m.armPacer((step - m.budget) / m.cfg.TimeScale)
	return false
}

func (m *Medium) armPacer(wallSeconds float64) {
	delay := time.Duration(wallSeconds * float64(time.Second))
	if delay < time.Millisecond {
		delay = time.Millisecond
	}
	if m.pacer != nil {
		m.pacer.Stop()
	}
	m.pacer = time.AfterFunc(delay, func() {
		m.mu.Lock()
		m.pacer = nil
		m.schedule()
		m.mu.Unlock()
	})
}

// advanceTo moves the clock to t and delivers every frame that has
// ended, in ascending (end, sender id) order so delivery order is
// independent of registration order.
func (m *Medium) advanceTo(t float64) {
	if t > m.now {
		m.now = t
		m.stats.VirtualSeconds = t
		m.rec.Set(obs.LoraVirtualSeconds, t)
	}
	for {
		best := -1
		for i, tx := range m.txs {
			if tx.end > m.now {
				continue
			}
			if best < 0 || tx.end < m.txs[best].end ||
				(tx.end == m.txs[best].end && tx.from.id < m.txs[best].from.id) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		tx := m.txs[best]
		m.txs = append(m.txs[:best], m.txs[best+1:]...)
		m.deliverLocked(tx)
	}
}

// ---------------------------------------------------------------------
// MAC: channel state, capture, delivery.
// ---------------------------------------------------------------------

// channelAt returns a link's hop channel at virtual time t. The hop
// index is derived from the clock, so every radio agrees on the slot
// without explicit synchronization.
func (m *Medium) channelAt(l *link, t float64) int {
	slot := int(t / m.cfg.Dwell.Seconds())
	return l.hop[slot%hopLen]
}

// busyLocked reports whether CAD heard activity on ch: an in-flight
// frame whose preamble began at or before the listen window opened
// (cadStart). A frame starting mid-window is missed — the same race a
// real SX127x loses, and the collision window the capture effect then
// resolves.
func (m *Medium) busyLocked(ch int, self *device, cadStart float64) bool {
	for _, tx := range m.txs {
		if tx.channel == ch && tx.from != self && tx.start <= cadStart {
			return true
		}
	}
	return false
}

// admitLocked registers a new transmission and resolves capture against
// every in-flight co-channel frame: the stronger frame survives when
// its margin is at least CaptureDB, otherwise both are lost.
func (m *Medium) admitLocked(tx *transmission) {
	for _, o := range m.txs {
		if o.channel != tx.channel {
			continue
		}
		switch {
		case tx.powerDBm >= o.powerDBm+m.cfg.CaptureDB:
			o.doomed = true
		case o.powerDBm >= tx.powerDBm+m.cfg.CaptureDB:
			tx.doomed = true
		default:
			o.doomed = true
			tx.doomed = true
		}
	}
	m.txs = append(m.txs, tx)
}

func (m *Medium) countTx(field *uint64, name string) {
	*field++
	m.stats.Frames++
	m.rec.Add(name, 1)
}

// deliverLocked resolves one ended transmission: collided, dropped at a
// closed or transmitting (half-duplex) receiver, or queued.
func (m *Medium) deliverLocked(tx *transmission) {
	to := tx.to
	switch {
	case tx.doomed:
		m.countTx(&m.stats.Collided, obsTxCollided)
	case to.released || m.closed:
		m.countTx(&m.stats.ClosedDrops, obsTxClosed)
	case to.txUntil > tx.start && to.txStart < tx.end:
		m.countTx(&m.stats.HalfDuplex, obsTxHalfDuplex)
	default:
		to.queue = append(to.queue, tx.payload)
		m.countTx(&m.stats.Delivered, obsTxDelivered)
	}
}
