package lora_test

// The contention soak: N vehicles establish keys against one gateway
// over a single shared lockstep medium, with the full serving stack in
// the loop — hello redundancy, the ARQ protocol, reconciliation — and
// the run must be byte-reproducible: the same seed produces the same
// keys, the same outcome sequence, and the same MAC counters on every
// run at any GOMAXPROCS. scripts/test-race.sh runs this package under
// -race, which is the "-j 1 vs -j 8" half of the determinism claim:
// the scheduler serializes devices regardless of how the runtime
// schedules their goroutines.

import (
	"encoding/hex"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/lora"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/trace"

	// Registers the training-free baseline schemes (the soak uses
	// lora-key so no predictor training is needed).
	_ "repro/internal/baselines"
)

const soakSeed int64 = 33

// soakPolicy works in virtual seconds: a medium round trip is a few
// seconds of airtime, so the initial deadline must sit above it.
var soakPolicy = protocol.RetryPolicy{
	Timeout:    4 * time.Second,
	MaxTimeout: 16 * time.Second,
	Backoff:    1.6,
	MaxRetries: 8,
}

// soakTranscript runs the scenario once and serializes everything
// observable about it.
func soakTranscript(t *testing.T, vehicles, windows int) string {
	t.Helper()
	sc := trace.NewScenario(channel.Urban, channel.V2I)
	cfg := core.DefaultConfig()

	m, err := lora.NewMedium(lora.MediumConfig{
		Channels: 4,
		Lockstep: true,
		Seed:     soakSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()

	// All links exist before any goroutine starts: under lockstep the
	// clock is frozen until every endpoint is driven, so creation order
	// (not goroutine start order) is what must be deterministic.
	type session struct {
		vconn, gconn *lora.Conn
	}
	sessions := make([]session, vehicles)
	for i := range sessions {
		v, g, err := m.Link(fmt.Sprintf("veh-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = session{vconn: v, gconn: g}
	}

	// newScheme builds one lora-key instance from a per-vehicle stream;
	// both endpoints of a session construct from the same stream index,
	// so their quantizer state matches exactly (the cross-process
	// discipline vkproto uses).
	newScheme := func(vehicle int) *core.System {
		sys, err := core.NewScheme("lora-key", cfg, rng.Stream(soakSeed, "lora/soak/sys", vehicle))
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}

	vehicleOut := make([][]protocol.KeyOutcome, vehicles)
	vehicleErr := make([]error, vehicles)
	gatewayOut := make([][]protocol.KeyOutcome, vehicles)

	var wg sync.WaitGroup
	for i := range sessions {
		i := i
		wg.Add(1)
		go func() { // vehicle side: hello + RunBob via the serving client
			defer wg.Done()
			conn := sessions[i].vconn
			defer func() { _ = conn.Close() }()
			// Staggered ignition, from the seed so it reproduces.
			jitter := rng.Stream(soakSeed, "lora/soak/jitter", i).Uniform(0, 2)
			if err := conn.Wait(time.Duration(jitter * float64(time.Second))); err != nil {
				vehicleErr[i] = err
				return
			}
			vehicleOut[i], vehicleErr[i] = server.RunVehicle(conn, newScheme(i), sc, cfg, soakSeed,
				server.Vehicle{ID: uint64(i), Windows: windows, HelloCopies: 2},
				protocol.WithRetryPolicy(soakPolicy))
		}()
		wg.Add(1)
		go func() { // gateway side: windows from the shared derivation + RunAlice
			defer wg.Done()
			conn := sessions[i].gconn
			defer func() { _ = conn.Close() }()
			aliceWin, _, err := server.SessionWindows(sc, cfg, soakSeed, uint64(i), windows)
			if err != nil {
				return
			}
			node := protocol.NewNode(newScheme(i), conn, server.SessionName(uint64(i)),
				protocol.WithRetryPolicy(soakPolicy))
			// The hello copies land as garbage envelopes; the ARQ layer
			// counts and skips them, exactly as the real server's worker
			// does after its own hello decode.
			gatewayOut[i], _ = node.RunAlice(aliceWin)
		}()
	}
	wg.Wait()

	confirmed := 0
	out := ""
	for i := 0; i < vehicles; i++ {
		out += fmt.Sprintf("veh%d err=%v\n", i, vehicleErr[i])
		for r, ko := range vehicleOut[i] {
			out += fmt.Sprintf("veh%d round%d confirmed=%v key=%s\n", i, r, ko.Confirmed, hex.EncodeToString(ko.Key))
			if ko.Confirmed {
				confirmed++
			}
		}
		for r, ko := range gatewayOut[i] {
			out += fmt.Sprintf("gw%d round%d confirmed=%v key=%s\n", i, r, ko.Confirmed, hex.EncodeToString(ko.Key))
		}
	}
	s := m.Stats()
	out += fmt.Sprintf("stats=%+v\n", s)

	if confirmed == 0 {
		t.Fatalf("no vehicle confirmed a key; transcript:\n%s", out)
	}
	if s.Delivered == 0 || s.Frames == 0 {
		t.Fatalf("medium carried no traffic: %+v", s)
	}
	return out
}

// TestContentionSoakDeterministic is the headline determinism check:
// two full protocol soaks over fresh media produce identical bytes.
func TestContentionSoakDeterministic(t *testing.T) {
	vehicles, windows := 4, 8
	if testing.Short() {
		vehicles = 2
	}
	first := soakTranscript(t, vehicles, windows)
	second := soakTranscript(t, vehicles, windows)
	if first != second {
		t.Fatalf("soak diverged between runs:\n--- run 1\n%s\n--- run 2\n%s", first, second)
	}
}
