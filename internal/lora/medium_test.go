package lora

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/transport/transporttest"
)

// lockstepConfig is the deterministic base used by the MAC unit tests:
// one channel so every frame contends, capture disabled by a huge
// margin unless a test overrides it.
func lockstepConfig() MediumConfig {
	return MediumConfig{
		Channels:  1,
		Lockstep:  true,
		CaptureDB: 200,
		Seed:      7,
	}
}

// drive runs fn for every conn on its own goroutine and waits for all —
// the lockstep requirement that every endpoint be driven.
func drive(t *testing.T, fns map[string]func() error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, len(fns))
	for name, fn := range fns {
		wg.Add(1)
		go func(name string, fn func() error) {
			defer wg.Done()
			if err := fn(); err != nil {
				errs <- fmt.Errorf("%s: %w", name, err)
			}
		}(name, fn)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMediumCollision: two frames whose CAD windows race start together
// and, with capture disabled, destroy each other.
func TestMediumCollision(t *testing.T) {
	m, err := NewMedium(lockstepConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	a1, a2, err := m.Link("a")
	if err != nil {
		t.Fatal(err)
	}
	b1, b2, err := m.Link("b")
	if err != nil {
		t.Fatal(err)
	}

	// The senders close their links when done, which releases the
	// receivers too (shared fate): a receiver sees ErrTimeout or
	// ErrClosed, but never a payload — the frames must collide.
	recv := func(c *Conn) func() error {
		return func() error {
			defer func() { _ = c.Close() }()
			if msg, err := c.RecvTimeout(20 * time.Second); err == nil {
				return fmt.Errorf("recv = %q, want no delivery (frame must collide)", msg)
			}
			return nil
		}
	}
	drive(t, map[string]func() error{
		"a1": func() error { defer a1.Close(); return a1.Send([]byte("from-a")) },
		"b1": func() error { defer b1.Close(); return b1.Send([]byte("from-b")) },
		"a2": recv(a2),
		"b2": recv(b2),
	})

	s := m.Stats()
	if s.Collided != 2 || s.Delivered != 0 {
		t.Errorf("stats = %+v, want 2 collided, 0 delivered", s)
	}
}

// TestMediumCapture: with a tiny capture margin and distinct received
// powers, exactly one of two racing frames survives.
func TestMediumCapture(t *testing.T) {
	cfg := lockstepConfig()
	cfg.CaptureDB = 0.001 // stronger always captures
	m, err := NewMedium(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	a1, a2, err := m.Link("a")
	if err != nil {
		t.Fatal(err)
	}
	b1, b2, err := m.Link("b")
	if err != nil {
		t.Fatal(err)
	}

	got := make(chan string, 2)
	recv := func(c *Conn) func() error {
		return func() error {
			defer func() { _ = c.Close() }()
			msg, err := c.RecvTimeout(20 * time.Second)
			if err == nil {
				got <- string(msg)
			}
			return nil
		}
	}
	drive(t, map[string]func() error{
		"a1": func() error { defer a1.Close(); return a1.Send([]byte("from-a")) },
		"b1": func() error { defer b1.Close(); return b1.Send([]byte("from-b")) },
		"a2": recv(a2),
		"b2": recv(b2),
	})
	close(got)

	s := m.Stats()
	if s.Delivered != 1 || s.Collided != 1 {
		t.Fatalf("stats = %+v, want exactly one captured survivor", s)
	}
	if len(got) != 1 {
		t.Fatalf("received %d messages, want 1", len(got))
	}
}

// TestMediumEqualPowersBothLost: equal received powers leave neither
// frame above the capture margin, so both are lost even with capture
// enabled.
func TestMediumEqualPowersBothLost(t *testing.T) {
	cfg := lockstepConfig()
	cfg.CaptureDB = 6
	cfg.PowerMinDBm, cfg.PowerMaxDBm = -70, -70
	m, err := NewMedium(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	a1, a2, err := m.Link("a")
	if err != nil {
		t.Fatal(err)
	}
	b1, b2, err := m.Link("b")
	if err != nil {
		t.Fatal(err)
	}
	recv := func(c *Conn) func() error {
		return func() error {
			defer func() { _ = c.Close() }()
			if msg, err := c.RecvTimeout(20 * time.Second); err == nil {
				return fmt.Errorf("recv = %q, want no delivery", msg)
			}
			return nil
		}
	}
	drive(t, map[string]func() error{
		"a1": func() error { defer a1.Close(); return a1.Send([]byte("x")) },
		"b1": func() error { defer b1.Close(); return b1.Send([]byte("y")) },
		"a2": recv(a2),
		"b2": recv(b2),
	})
	if s := m.Stats(); s.Collided != 2 {
		t.Errorf("stats = %+v, want both frames collided", s)
	}
}

// TestMediumCADBackoff: a sender whose CAD window opens while another
// frame is already on the air hears it, backs off, and delivers once
// the channel clears.
func TestMediumCADBackoff(t *testing.T) {
	m, err := NewMedium(lockstepConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	a1, a2, err := m.Link("a")
	if err != nil {
		t.Fatal(err)
	}
	b1, b2, err := m.Link("b")
	if err != nil {
		t.Fatal(err)
	}

	long := make([]byte, 3*m.cfg.FragmentBytes) // ≈1s on the air
	drive(t, map[string]func() error{
		"a1": func() error { defer a1.Close(); return a1.Send(long) },
		"b1": func() error {
			defer b1.Close()
			// Wait until a's frame is demonstrably in flight before
			// starting CAD.
			if err := b1.Wait(200 * time.Millisecond); err != nil {
				return err
			}
			return b1.Send([]byte("after-backoff"))
		},
		"a2": func() error {
			defer a2.Close()
			msg, err := a2.RecvTimeout(60 * time.Second)
			if err != nil || len(msg) != len(long) {
				return fmt.Errorf("long recv = %d bytes, %v", len(msg), err)
			}
			return nil
		},
		"b2": func() error {
			defer b2.Close()
			msg, err := b2.RecvTimeout(60 * time.Second)
			if err != nil || string(msg) != "after-backoff" {
				return fmt.Errorf("recv = %q, %v", msg, err)
			}
			return nil
		},
	})

	s := m.Stats()
	if s.CADBusy == 0 || s.Backoffs == 0 {
		t.Errorf("stats = %+v, want CAD busy hits and backoffs", s)
	}
	if s.Delivered != 2 || s.Collided != 0 {
		t.Errorf("stats = %+v, want both frames delivered", s)
	}
}

// TestMediumDutyCycle: with a 1%% duty cycle and no banked burst, a
// burst of frames is paced to ≈ airtime/duty spacing in virtual time.
func TestMediumDutyCycle(t *testing.T) {
	cfg := lockstepConfig()
	cfg.DutyCycle = 0.01
	cfg.DutyBurst = time.Millisecond // bank ≈ nothing: pace every frame
	m, err := NewMedium(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	a1, a2, err := m.Link("a")
	if err != nil {
		t.Fatal(err)
	}

	const frames = 3
	airtime := m.cfg.messageAirtime(4)
	drive(t, map[string]func() error{
		"a1": func() error {
			defer a1.Close()
			for i := 0; i < frames; i++ {
				if err := a1.Send([]byte("duty")); err != nil {
					return err
				}
			}
			return nil
		},
		"a2": func() error {
			defer a2.Close()
			for i := 0; i < frames; i++ {
				if _, err := a2.RecvTimeout(20 * time.Minute); err != nil {
					return fmt.Errorf("recv %d: %w", i, err)
				}
			}
			return nil
		},
	})

	s := m.Stats()
	if s.DutyWaits < frames-1 {
		t.Errorf("DutyWaits = %d, want ≥ %d", s.DutyWaits, frames-1)
	}
	// frames-1 inter-frame gaps of ≈ airtime/duty each.
	wantFloor := float64(frames-1) * airtime / cfg.DutyCycle * 0.9
	if s.VirtualSeconds < wantFloor {
		t.Errorf("virtual clock = %.1fs, want ≥ %.1fs (duty pacing)", s.VirtualSeconds, wantFloor)
	}
}

// contentionTranscript runs a fixed 3-link contention scenario on a
// fresh lockstep medium and returns a full serialization of everything
// observable: per-receiver transcripts and the final stats.
func contentionTranscript(t *testing.T) string {
	t.Helper()
	cfg := MediumConfig{Channels: 2, Lockstep: true, Seed: 11}
	m, err := NewMedium(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()

	const links, frames = 3, 5
	type end struct {
		tx, rx *Conn
	}
	ends := make([]end, links)
	for i := range ends {
		a, b, err := m.Link(fmt.Sprintf("v%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ends[i] = end{tx: a, rx: b}
	}

	transcripts := make([][]string, links)
	fns := map[string]func() error{}
	for i := range ends {
		i := i
		fns[fmt.Sprintf("tx%d", i)] = func() error {
			c := ends[i].tx
			defer c.Close()
			for f := 0; f < frames; f++ {
				if err := c.Send([]byte(fmt.Sprintf("l%d-f%d", i, f))); err != nil {
					return err
				}
			}
			return nil
		}
		fns[fmt.Sprintf("rx%d", i)] = func() error {
			c := ends[i].rx
			defer c.Close()
			for {
				msg, err := c.RecvTimeout(30 * time.Second)
				if err != nil {
					return nil // timeout ends the transcript
				}
				transcripts[i] = append(transcripts[i], fmt.Sprintf("%s@%.6f", msg, c.LastActive()))
			}
		}
	}
	drive(t, fns)

	s := m.Stats()
	out := fmt.Sprintf("stats=%+v\n", s)
	for i, tr := range transcripts {
		out += fmt.Sprintf("rx%d=%v\n", i, tr)
	}
	if s.Frames == 0 {
		t.Fatal("scenario resolved no frames")
	}
	return out
}

// TestMediumDeterminism: the same seeded contention scenario produces a
// byte-identical transcript across runs — the lockstep guarantee the
// experiment layer builds on.
func TestMediumDeterminism(t *testing.T) {
	first := contentionTranscript(t)
	for run := 1; run < 3; run++ {
		if got := contentionTranscript(t); got != first {
			t.Fatalf("run %d diverged:\n--- first\n%s\n--- run %d\n%s", run, first, run, got)
		}
	}
}

// TestMediumHopSpreadsChannels: with many channels, a link's hop
// sequence actually uses more than one of them.
func TestMediumHopSpreadsChannels(t *testing.T) {
	cfg := MediumConfig{Channels: 16, Lockstep: true}
	m, err := NewMedium(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	a, _, err := m.Link("hop")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	l := a.d.link
	for slot := 0; slot < hopLen; slot++ {
		seen[m.channelAt(l, float64(slot)*m.cfg.Dwell.Seconds())] = true
	}
	if len(seen) < 4 {
		t.Errorf("hop sequence visits only %d of %d channels", len(seen), cfg.Channels)
	}
}

// TestConnContract runs the shared transport.Conn contract over the
// medium conn, in emulation mode at TimeScale 1 so the contract's
// wall-clock timeout check holds, with a fast PHY so frames fly in
// ≈12ms.
func TestConnContract(t *testing.T) {
	phy := MediumPHY()
	phy.BandwidthHz = 500e3
	f := transporttest.Factory{
		Name: "lora",
		Make: func(t *testing.T) transporttest.Fixture {
			m, err := NewMedium(MediumConfig{
				Channels:  4,
				PHY:       phy,
				TimeScale: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			local, remote, err := m.Link("contract")
			if err != nil {
				t.Fatal(err)
			}
			return transporttest.Fixture{
				Local:    local,
				Remote:   remote,
				Cleanup:  func() { _ = m.Close() },
				QueueLen: local.Queued,
			}
		},
		Drains:       true,
		RemoteCloses: true,
	}
	transporttest.Run(t, f)
}

// TestLoraEndpoint drives the lora:// scheme end to end through
// transport.Listen/Dial: medium creation from query options, gateway
// accept, a round trip, and option validation.
func TestLoraEndpoint(t *testing.T) {
	defer ReleaseMedium("endpoint-test")

	l, err := transport.Listen("lora://endpoint-test?channels=4&scale=5000&seed=3")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	if got := l.Addr().String(); got != "lora://endpoint-test" {
		t.Errorf("Addr = %q", got)
	}
	m, ok := LookupMedium("endpoint-test")
	if !ok {
		t.Fatal("medium not registered")
	}
	if m.Config().Channels != 4 {
		t.Errorf("channels = %d, want 4 from query", m.Config().Channels)
	}

	accepted := make(chan transport.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := transport.Dial("lora://endpoint-test/veh-a")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := client.Send([]byte("over-the-air")); err != nil {
		t.Fatalf("send: %v", err)
	}
	gw := <-accepted
	got, err := gw.RecvTimeout(30 * time.Second)
	if err != nil || string(got) != "over-the-air" {
		t.Fatalf("recv = %q, %v", got, err)
	}
	_ = client.Close()
	_ = l.Close()

	// Dialing with no listener fails.
	if _, err := transport.Dial("lora://endpoint-test/veh-b"); err == nil {
		t.Error("dial without listener succeeded")
	}
	// Unknown options fail loudly.
	if _, err := transport.Listen("lora://typo-test?chanels=4"); err == nil {
		t.Error("unknown option accepted")
	}
}

// TestMediumConfigValidate pins the rejection paths.
func TestMediumConfigValidate(t *testing.T) {
	bad := []func(*MediumConfig){
		func(c *MediumConfig) { c.Channels = 200 },
		func(c *MediumConfig) { c.DutyCycle = 1.5 },
		func(c *MediumConfig) { c.FragmentBytes = 300 },
		func(c *MediumConfig) { c.PowerMinDBm, c.PowerMaxDBm = -60, -90 },
		func(c *MediumConfig) { c.BackoffMin, c.BackoffMax = time.Second, time.Millisecond },
		func(c *MediumConfig) { c.PHY = MediumPHY(); c.PHY.SpreadingFactor = 42 },
	}
	for i, mutate := range bad {
		cfg := MediumConfig{}.Normalize()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := (MediumConfig{}).Normalize().Validate(); err != nil {
		t.Errorf("normalized zero config invalid: %v", err)
	}
}
