package lora

import "fmt"

// DeviceType identifies one of the three LoRa transceiver boards used in
// the paper's evaluation (Table I).
type DeviceType int

// The paper's three evaluation devices.
const (
	// DraginoLoRaShield is the Arduino Uno + Dragino LoRa Shield
	// (ATmega328P host, Semtech SX1278 radio).
	DraginoLoRaShield DeviceType = iota + 1
	// MultiTechXDot is the MultiTech xDot (Cortex-M3 host, SX1272).
	MultiTechXDot
	// MultiTechMDot is the MultiTech mDot (Cortex-M3 host, SX1272).
	MultiTechMDot
)

// String implements fmt.Stringer.
func (d DeviceType) String() string {
	switch d {
	case DraginoLoRaShield:
		return "Dragino LoRa Shield"
	case MultiTechXDot:
		return "MultiTech xDot"
	case MultiTechMDot:
		return "MultiTech mDot"
	}
	return fmt.Sprintf("DeviceType(%d)", int(d))
}

// AllDevices lists the three evaluation device types in Table I order.
func AllDevices() []DeviceType {
	return []DeviceType{DraginoLoRaShield, MultiTechXDot, MultiTechMDot}
}

// profile captures the hardware-dependent measurement behaviour the paper
// attributes to "hardware imperfection": a per-board constant gain bias
// spread, slightly different RSSI measurement noise, and the host MCU's
// turnaround (operation) delay between receiving a probe and answering it.
type profile struct {
	gainBiasStdDB  float64 // spread of the per-unit constant RSSI bias
	noiseStdDB     float64 // per-register-read measurement noise
	opDelayMeanS   float64 // RX→TX turnaround mean
	opDelayJitterS float64 // turnaround jitter (uniform ±)
	rssiStepDB     float64 // register quantization step
}

func (d DeviceType) profile() profile {
	switch d {
	// Per-read noise reflects the SX127x's documented RSSI accuracy of a
	// few dB (thermal noise, interference asymmetry, AGC steps).
	case DraginoLoRaShield:
		// SX1278 on an 8-bit AVR: slowest turnaround, coarsest front end.
		return profile{gainBiasStdDB: 1.2, noiseStdDB: 2.6, opDelayMeanS: 14e-3, opDelayJitterS: 4e-3, rssiStepDB: 1}
	case MultiTechXDot:
		return profile{gainBiasStdDB: 0.8, noiseStdDB: 2.4, opDelayMeanS: 8e-3, opDelayJitterS: 2e-3, rssiStepDB: 1}
	case MultiTechMDot:
		return profile{gainBiasStdDB: 0.8, noiseStdDB: 2.4, opDelayMeanS: 9e-3, opDelayJitterS: 2e-3, rssiStepDB: 1}
	default:
		return profile{gainBiasStdDB: 1.0, noiseStdDB: 2.5, opDelayMeanS: 10e-3, opDelayJitterS: 3e-3, rssiStepDB: 1}
	}
}
