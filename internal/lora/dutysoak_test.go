package lora_test

// Regression test for the duty-cycle credit livelock: after a credit
// wait the refill lands within a few ulps of the required airtime, and
// the recomputed wait used to be too small to move the float64 clock,
// degenerating into an infinite zero-advance park/wake spin that also
// starved every other device on the medium. The full protocol stack
// under a tight duty budget must instead terminate with keys or clean
// timeouts.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/lora"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/trace"
)

func TestDutyCycleContentionTerminates(t *testing.T) {
	sc := trace.NewScenario(channel.Urban, channel.V2I)
	cfg := core.DefaultConfig()
	policy := protocol.RetryPolicy{Timeout: 4 * time.Second, MaxTimeout: 16 * time.Second, Backoff: 1.6, MaxRetries: 8}

	m, err := lora.NewMedium(lora.MediumConfig{Channels: 4, Lockstep: true, Seed: 5, DutyCycle: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()

	const vehicles, windows = 3, 8
	type session struct{ v, g *lora.Conn }
	sessions := make([]session, vehicles)
	for i := range sessions {
		v, g, err := m.Link(fmt.Sprintf("veh-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = session{v, g}
	}
	newScheme := func(i int) *core.System {
		sys, err := core.NewScheme("lora-key", cfg, rng.Stream(5, "duty/sys", i))
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}

	var wg sync.WaitGroup
	for i := range sessions {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn := sessions[i].v
			defer func() { _ = conn.Close() }()
			jitter := rng.Stream(5, "duty/jitter", i).Uniform(0, 2)
			if err := conn.Wait(time.Duration(jitter * float64(time.Second))); err != nil {
				return
			}
			_, _ = server.RunVehicle(conn, newScheme(i), sc, cfg, 5,
				server.Vehicle{ID: uint64(i), Windows: windows, HelloCopies: 2},
				protocol.WithRetryPolicy(policy))
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn := sessions[i].g
			defer func() { _ = conn.Close() }()
			aliceWin, _, err := server.SessionWindows(sc, cfg, 5, uint64(i), windows)
			if err != nil {
				return
			}
			node := protocol.NewNode(newScheme(i), conn, server.SessionName(uint64(i)),
				protocol.WithRetryPolicy(policy))
			_, _ = node.RunAlice(aliceWin)
		}()
	}
	wg.Wait()

	s := m.Stats()
	if s.DutyWaits == 0 {
		t.Errorf("duty budget 0.02 produced no credit waits: %+v", s)
	}
	if s.Delivered == 0 {
		t.Errorf("medium carried no traffic under the duty cap: %+v", s)
	}
}
