package lora

import (
	"math"

	"repro/internal/mathx"
	"repro/internal/rng"
)

// RegisterSampleInterval is how often the host polls the SX127x RSSI
// register during packet reception. Real hosts poll over SPI every few
// milliseconds; 10 ms gives ≈ 150 register samples per SF12 packet.
const RegisterSampleInterval = 10e-3

// RSSISmoothing is the time constant of the SX127x's internal RSSI
// averaging (the RssiSmoothing register, default 8 samples ≈ two symbol
// periods at SF12/125 kHz). Each register read reports the channel
// averaged over roughly this window, not an instantaneous value.
const RSSISmoothing = 65e-3

// rssiSmoothingTaps is how many points the simulator averages across the
// smoothing window.
const rssiSmoothingTaps = 3

// Transceiver is one LoRa radio endpoint. It owns the device-specific
// measurement imperfections: a constant per-unit gain bias (hardware
// imperfection), per-read Gaussian noise (thermal noise + interference
// asymmetry), register quantization, and the host turnaround delay.
//
// A Transceiver is not safe for concurrent use.
type Transceiver struct {
	dev        DeviceType
	prof       profile
	gainBiasDB float64
	src        *rng.Source
	interval   float64
}

// NewTransceiver creates a transceiver of the given device type whose
// per-unit imperfections are drawn from src.
func NewTransceiver(dev DeviceType, src *rng.Source) *Transceiver {
	prof := dev.profile()
	return &Transceiver{
		dev:        dev,
		prof:       prof,
		gainBiasDB: src.Normal(0, prof.gainBiasStdDB),
		src:        src,
		interval:   RegisterSampleInterval,
	}
}

// Device returns the transceiver's device type.
func (t *Transceiver) Device() DeviceType { return t.dev }

// GainBiasDB exposes the unit's constant hardware bias (useful in tests).
func (t *Transceiver) GainBiasDB() float64 { return t.gainBiasDB }

// SetSampleInterval overrides the register polling interval (seconds).
func (t *Transceiver) SetSampleInterval(s float64) {
	if s > 0 {
		t.interval = s
	}
}

// OpDelay returns one sample of the host's RX→TX turnaround delay.
func (t *Transceiver) OpDelay() float64 {
	return t.prof.opDelayMeanS + t.src.Uniform(-t.prof.opDelayJitterS, t.prof.opDelayJitterS)
}

// measure performs one RSSI register read at time ts: the chip-smoothed
// channel power plus this unit's bias, read noise, and register
// quantization.
func (t *Transceiver) measure(rssiAt func(t float64) float64, ts float64) float64 {
	var sum float64
	for k := 0; k < rssiSmoothingTaps; k++ {
		back := RSSISmoothing * float64(k) / float64(rssiSmoothingTaps)
		sum += rssiAt(ts - back)
	}
	v := sum/rssiSmoothingTaps + t.gainBiasDB + t.src.Normal(0, t.prof.noiseStdDB)
	step := t.prof.rssiStepDB
	return math.Round(v/step) * step
}

// Reception is the result of receiving one LoRa packet: the stream of
// instantaneous register RSSI reads (rRSSI) taken while the packet was on
// the air, and their packet average (pRSSI).
type Reception struct {
	Start   float64   // reception start time (s)
	Airtime float64   // packet time-on-air (s)
	Times   []float64 // absolute timestamp of each register read
	RRSSI   []float64 // instantaneous register RSSI reads (dBm)
	PRSSI   float64   // packet-averaged RSSI (dBm)
}

// Receive simulates receiving one packet that is on the air during
// [start, start+airtime). rssiAt must return the true (noise-free)
// received power in dBm at an absolute time; it is typically
// channel.Model.RSSIdBm composed with the peer's transmit power.
func (t *Transceiver) Receive(rssiAt func(t float64) float64, start, airtime float64) Reception {
	n := int(airtime / t.interval)
	if n < 1 {
		n = 1
	}
	rec := Reception{
		Start:   start,
		Airtime: airtime,
		Times:   make([]float64, n),
		RRSSI:   make([]float64, n),
	}
	for i := 0; i < n; i++ {
		ts := start + (float64(i)+0.5)*t.interval
		rec.Times[i] = ts
		rec.RRSSI[i] = t.measure(rssiAt, ts)
	}
	rec.PRSSI = mathx.Mean(rec.RRSSI)
	return rec
}
