// The transport face of the shared medium: Conn implements
// transport.Conn over one medium device, MediumListener implements
// transport.Listener for the gateway side, and an init-registered
// "lora" endpoint scheme lets every binary reach a medium through
// transport.Dial/Listen without transport importing this package.
package lora

import (
	"fmt"
	"math"
	"net"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

// Conn is one endpoint of a medium link. It satisfies transport.Conn,
// so protocol nodes, the server, and the load generator run over the
// shared medium unmodified — with every timeout interpreted in virtual
// seconds.
type Conn struct {
	d *device
}

var (
	_ transport.Conn     = (*Conn)(nil)
	_ transport.Listener = (*MediumListener)(nil)
)

// Label returns the device label ("<link>/<0|1>").
func (c *Conn) Label() string { return c.d.label }

// Queued returns the messages buffered for this endpoint.
func (c *Conn) Queued() int {
	m := c.d.m
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(c.d.queue)
}

// LastActive returns the virtual time at which this endpoint last
// completed an operation. Unlike Medium.Now, it is deterministic under
// lockstep: it only moves when the endpoint's own goroutine acts.
func (c *Conn) LastActive() float64 {
	m := c.d.m
	m.mu.Lock()
	defer m.mu.Unlock()
	return c.d.lastActive
}

// Wait sleeps the endpoint for d of virtual time — the deterministic
// stand-in for time.Sleep in medium harnesses (staggered starts,
// probe pacing). Returns ErrClosed if the link closes first.
func (c *Conn) Wait(d time.Duration) error {
	dev := c.d
	m := dev.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if dev.released || m.closed {
		return transport.ErrClosed
	}
	defer m.exitOp(dev)
	m.enterOp(dev)
	if !dev.park(m.now+d.Seconds(), false) {
		return transport.ErrClosed
	}
	dev.lastActive = m.now
	return nil
}

// enterOp/exitOp bracket every medium operation. In emulation mode the
// device is runnable only inside an op; under lockstep it is runnable
// from creation until it parks, so these are no-ops there.
func (m *Medium) enterOp(d *device) {
	if !m.cfg.Lockstep {
		m.setBlocking(d, true)
	}
}

func (m *Medium) exitOp(d *device) {
	if !m.cfg.Lockstep {
		m.setBlocking(d, false)
		m.schedule()
	}
}

// Send transmits msg as one fragment burst: wait for duty-cycle
// credit, run CAD with exponential listen-before-talk backoff, then
// occupy the hop channel for the burst's airtime. When Send returns
// nil the frame has ended and its delivery has been resolved — which
// may still be a silent loss (collision, half-duplex, CAD drop); like
// UDP, reliability is the ARQ layer's job. ErrClosed reports a closed
// link, not a lost frame.
func (c *Conn) Send(msg []byte) error {
	dev := c.d
	m := dev.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if dev.released || m.closed {
		return transport.ErrClosed
	}
	defer m.exitOp(dev)
	m.enterOp(dev)

	airtime := m.cfg.messageAirtime(len(msg))

	// Duty cycle: a token bucket of airtime credit. The effective cap
	// never drops below one burst's airtime, so an oversized message
	// waits long instead of forever.
	if m.cfg.DutyCycle < 1 {
		capSec := math.Max(m.cfg.DutyBurst.Seconds(), airtime)
		for {
			dev.refillDuty(capSec)
			// The refill after a credit wait lands within a few ulps of
			// airtime; without the tolerance — and a floor keeping each
			// wait large enough to move the float64 clock — the loop
			// degenerates into a zero-advance park/wake spin.
			if dev.dutyCredit >= airtime-1e-9 {
				break
			}
			m.stats.DutyWaits++
			m.rec.Add(obs.LoraDutyWaits, 1)
			wait := math.Max((airtime-dev.dutyCredit)/m.cfg.DutyCycle, 1e-3)
			if !dev.park(m.now+wait, false) {
				return transport.ErrClosed
			}
		}
		dev.dutyCredit -= airtime
	}

	// CAD: listen for CADSymbols, back off while busy, give the frame
	// up after CADMaxAttempts — the medium is unreliable by contract.
	cad := float64(m.cfg.CADSymbols) * m.cfg.PHY.SymbolTime()
	for attempt := 0; ; attempt++ {
		cadStart := m.now
		if !dev.park(m.now+cad, false) {
			return transport.ErrClosed
		}
		if !m.busyLocked(m.channelAt(dev.link, m.now), dev, cadStart) {
			break
		}
		m.stats.CADBusy++
		m.rec.Add(obs.LoraCADBusy, 1)
		if attempt+1 >= m.cfg.CADMaxAttempts {
			m.countTx(&m.stats.CADDropped, obsTxCADDropped)
			dev.lastActive = m.now
			return nil
		}
		backoff := dev.src.Uniform(m.cfg.BackoffMin.Seconds(), m.cfg.BackoffMax.Seconds()) *
			float64(uint64(1)<<uint(attempt))
		m.stats.Backoffs++
		m.rec.Observe(obs.LoraBackoffSeconds, backoff)
		if !dev.park(m.now+backoff, false) {
			return transport.ErrClosed
		}
	}

	tx := &transmission{
		from:     dev,
		to:       dev.peer,
		payload:  append([]byte(nil), msg...),
		start:    m.now,
		end:      m.now + airtime,
		channel:  m.channelAt(dev.link, m.now),
		powerDBm: dev.powerDBm,
	}
	m.admitLocked(tx)
	dev.txStart, dev.txUntil = tx.start, tx.end
	m.stats.AirtimeSeconds += airtime
	m.rec.Observe(obs.LoraAirtimeSeconds, airtime)
	if !dev.park(tx.end, false) {
		return transport.ErrClosed // frame stays on the air; delivery resolves it
	}
	dev.lastActive = m.now
	return nil
}

// refillDuty accrues duty credit for the virtual time elapsed since the
// last refill, capped at capSec.
func (d *device) refillDuty(capSec float64) {
	d.dutyCredit += (d.m.now - d.dutyLast) * d.m.cfg.DutyCycle
	d.dutyLast = d.m.now
	if d.dutyCredit > capSec {
		d.dutyCredit = capSec
	}
}

// Recv waits up to the medium's DefaultRecvTimeout of virtual time.
func (c *Conn) Recv() ([]byte, error) {
	return c.RecvTimeout(c.d.m.cfg.DefaultRecvTimeout)
}

// RecvTimeout returns the next queued message, waiting up to d of
// virtual time. After the link closes, already-delivered messages
// still drain before ErrClosed — the same contract as the in-memory
// pair, which the ARQ layer depends on.
func (c *Conn) RecvTimeout(d time.Duration) ([]byte, error) {
	dev := c.d
	m := dev.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if dev.released || m.closed {
		return dev.takeQueuedLocked()
	}
	defer m.exitOp(dev)
	m.enterOp(dev)
	deadline := m.now + d.Seconds()
	for {
		if len(dev.queue) > 0 {
			dev.lastActive = m.now
			return dev.popLocked(), nil
		}
		if dev.released || m.closed {
			return dev.takeQueuedLocked()
		}
		if m.now >= deadline {
			dev.lastActive = m.now
			return nil, transport.ErrTimeout
		}
		dev.park(deadline, true)
	}
}

func (d *device) popLocked() []byte {
	msg := d.queue[0]
	d.queue = d.queue[1:]
	return msg
}

func (d *device) takeQueuedLocked() ([]byte, error) {
	if len(d.queue) > 0 {
		return d.popLocked(), nil
	}
	return nil, transport.ErrClosed
}

// Close closes the whole link — both endpoints fail over to ErrClosed,
// like the shared-fate in-memory pair. Safe from any goroutine (the
// server watchdog closes conns it does not drive). Idempotent.
func (c *Conn) Close() error {
	m := c.d.m
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closeLinkLocked(c.d.link)
	return nil
}

// ---------------------------------------------------------------------
// Listener: the gateway side of lora:// endpoints.
// ---------------------------------------------------------------------

// MediumListener accepts the gateway end of every link dialed on its
// medium. One listener per medium.
type MediumListener struct {
	m       *Medium
	backlog chan *Conn
	done    chan struct{}
	once    sync.Once
}

// Listen installs the medium's listener.
func (m *Medium) Listen() (*MediumListener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, transport.ErrClosed
	}
	if m.listener != nil {
		return nil, fmt.Errorf("lora: medium %q already has a listener", m.name)
	}
	l := &MediumListener{
		m:       m,
		backlog: make(chan *Conn, 1024),
		done:    make(chan struct{}),
	}
	m.listener = l
	return l, nil
}

// Dial creates a link to the medium's listener and returns the local
// end; the gateway end lands in the listener's backlog. An empty label
// auto-assigns "veh-<n>".
func (m *Medium) Dial(label string) (*Conn, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, transport.ErrClosed
	}
	l := m.listener
	if l == nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("lora: no gateway is listening on medium %q", m.name)
	}
	if label == "" {
		m.autoLabel++
		label = fmt.Sprintf("veh-%d", m.autoLabel)
	}
	near, far := m.newLinkLocked(label)
	m.mu.Unlock()
	select {
	case l.backlog <- far:
		return near, nil
	case <-l.done:
		_ = near.Close()
		return nil, fmt.Errorf("%w: lora://%s listener closed", transport.ErrClosed, m.name)
	}
}

// Accept implements transport.Listener.
func (l *MediumListener) Accept() (transport.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, transport.ErrClosed
	}
}

// loraAddr is the net.Addr of a medium listener.
type loraAddr string

func (a loraAddr) Network() string { return "lora" }
func (a loraAddr) String() string  { return string(a) }

// Addr implements transport.Listener.
func (l *MediumListener) Addr() net.Addr { return loraAddr("lora://" + l.m.name) }

// Close detaches the listener; pending and future Accepts fail with
// ErrClosed. The medium and its links stay up. Idempotent.
func (l *MediumListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.m.mu.Lock()
		if l.m.listener == l {
			l.m.listener = nil
		}
		l.m.mu.Unlock()
	})
	return nil
}

// ---------------------------------------------------------------------
// Medium registry and the lora:// endpoint scheme.
// ---------------------------------------------------------------------

var mediums = struct {
	sync.Mutex
	byName map[string]*Medium
}{byName: map[string]*Medium{}}

// EnsureMedium returns the named medium, creating it from cfg on first
// use. Later calls ignore cfg — the first creation pins the physics,
// so every endpoint string naming the same medium shares one world.
func EnsureMedium(name string, cfg MediumConfig) (*Medium, error) {
	mediums.Lock()
	defer mediums.Unlock()
	if m, ok := mediums.byName[name]; ok {
		return m, nil
	}
	m, err := NewMedium(cfg)
	if err != nil {
		return nil, err
	}
	m.name = name
	mediums.byName[name] = m
	return m, nil
}

// EnsureEndpoint creates (or finds) the medium a lora:// endpoint names,
// with rec attached to its MAC counters. CLIs call this before
// transport.Listen/Dial so the first creation — the one that pins the
// config — carries their metrics registry; the later registry-path
// EnsureMedium calls then find this instance.
func EnsureEndpoint(endpoint string, rec obs.Recorder) (*Medium, error) {
	u, err := url.Parse(endpoint)
	if err != nil || u.Scheme != "lora" {
		return nil, fmt.Errorf("lora: %q is not a lora:// endpoint", endpoint)
	}
	cfg, err := mediumConfigFromQuery(u.Query())
	if err != nil {
		return nil, err
	}
	cfg.Recorder = rec
	name := u.Host
	if name == "" {
		name = "default"
	}
	return EnsureMedium(name, cfg)
}

// LookupMedium returns a registered medium without creating one.
func LookupMedium(name string) (*Medium, bool) {
	mediums.Lock()
	defer mediums.Unlock()
	m, ok := mediums.byName[name]
	return m, ok
}

// ReleaseMedium closes and deregisters a named medium, freeing the
// name for a fresh world (tests, sequential vkload runs).
func ReleaseMedium(name string) {
	mediums.Lock()
	m := mediums.byName[name]
	delete(mediums.byName, name)
	mediums.Unlock()
	if m != nil {
		_ = m.Close()
	}
}

// mediumConfigFromQuery builds a MediumConfig from lora:// query
// parameters. Unknown keys are rejected so typos fail loudly.
func mediumConfigFromQuery(q url.Values) (MediumConfig, error) {
	var cfg MediumConfig
	intq := func(s string) (int, error) { return strconv.Atoi(s) }
	// Sorted iteration: with several bad options the one reported must
	// not depend on map order.
	order := make([]string, 0, len(q))
	for key := range q {
		order = append(order, key)
	}
	sort.Strings(order)
	for _, key := range order {
		vals := q[key]
		v := vals[len(vals)-1]
		var err error
		switch key {
		case "channels":
			cfg.Channels, err = intq(v)
		case "sf":
			cfg.PHY = MediumPHY()
			cfg.PHY.SpreadingFactor, err = intq(v)
		case "duty":
			cfg.DutyCycle, err = strconv.ParseFloat(v, 64)
		case "capture":
			cfg.CaptureDB, err = strconv.ParseFloat(v, 64)
		case "scale":
			cfg.TimeScale, err = strconv.ParseFloat(v, 64)
		case "dwell":
			cfg.Dwell, err = time.ParseDuration(v)
		case "seed":
			cfg.Seed, err = strconv.ParseInt(v, 10, 64)
		case "frag":
			cfg.FragmentBytes, err = intq(v)
		case "cad":
			cfg.CADMaxAttempts, err = intq(v)
		default:
			keys := make([]string, 0, len(loraQueryKeys))
			keys = append(keys, loraQueryKeys...)
			sort.Strings(keys)
			return cfg, fmt.Errorf("lora: unknown endpoint option %q (known: %s)", key, strings.Join(keys, ", "))
		}
		if err != nil {
			return cfg, fmt.Errorf("lora: endpoint option %s=%q: %v", key, v, err)
		}
	}
	return cfg, nil
}

var loraQueryKeys = []string{"channels", "sf", "duty", "capture", "scale", "dwell", "seed", "frag", "cad"}

// parseLoraEndpoint splits lora://medium[/device][?opts] into the
// medium (created on first use) and the device label ("" = auto).
func parseLoraEndpoint(u *url.URL) (*Medium, string, error) {
	name := u.Host
	if name == "" {
		name = "default"
	}
	cfg, err := mediumConfigFromQuery(u.Query())
	if err != nil {
		return nil, "", err
	}
	m, err := EnsureMedium(name, cfg)
	if err != nil {
		return nil, "", err
	}
	return m, strings.Trim(u.Path, "/"), nil
}

func init() {
	transport.RegisterScheme("lora", transport.EndpointHandler{
		Dial: func(u *url.URL) (transport.Conn, error) {
			m, label, err := parseLoraEndpoint(u)
			if err != nil {
				return nil, err
			}
			return m.Dial(label)
		},
		Listen: func(u *url.URL) (transport.Listener, error) {
			m, _, err := parseLoraEndpoint(u)
			if err != nil {
				return nil, err
			}
			return m.Listen()
		},
	})
}
