package baselines

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/rng"
	"repro/internal/trace"
)

func collect(t *testing.T, env channel.Environment, link channel.LinkType, n int) []trace.Exchange {
	t.Helper()
	sc := trace.NewScenario(env, link)
	col := trace.NewCollector(sc, 77)
	return col.Run(n)
}

func TestBaselinesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("collects a long trace")
	}
	ex := collect(t, channel.Urban, channel.V2I, 600)
	src := rng.New(1)

	lk, err := LoRaKey(ex)
	if err != nil {
		t.Fatal(err)
	}
	han, err := Han(ex, src)
	if err != nil {
		t.Fatal(err)
	}
	gao, err := Gao(ex)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Result{lk, han, gao} {
		t.Logf("%v", r)
		if r.Blocks == 0 {
			t.Errorf("%s produced no blocks", r.Name)
		}
		if r.PostKAR <= 0.5 || r.PostKAR > 1 {
			t.Errorf("%s postKAR %.3f out of plausible range", r.Name, r.PostKAR)
		}
		// Fig. 13's claim reproduced as: every pRSSI baseline's net
		// secret rate sits far below Vehicle-Key's ≈ 0.2–0.5 bit/s on
		// the same channel (asserted end to end in internal/exp tests).
		if r.NetKGR > 0.12 {
			t.Errorf("%s net KGR %.4f implausibly high for a pRSSI scheme", r.Name, r.NetKGR)
		}
	}
	// LoRa-Key's published no-index-exchange protocol collapses toward
	// chance agreement under mobility (the paper's headline gap).
	if lk.PostKAR > 0.75 {
		t.Errorf("LoRa-Key postKAR %.3f should collapse under mobility", lk.PostKAR)
	}
}
