// Package baselines implements the three LoRa key-generation schemes the
// paper compares against in Figs. 12 and 13:
//
//   - LoRa-Key (Xu et al., IoT-J 2018): packet-RSSI quantization with an
//     α = 0.8 guard band on both sides, kept-index intersection, and
//     compressed-sensing reconciliation over a 20×64 random matrix;
//   - Han et al. (Sensors 2020): Jana-style multi-bit quantization with
//     Gray coding and Cascade reconciliation (group length 3, 4
//     iterations);
//   - Gao et al. (IPSN 2021): model-based filtering — RSSI smoothed over
//     an interval (20) with a bounded number of rounds (50) — followed by
//     single-bit quantization and CS reconciliation.
//
// All three consume the per-packet pRSSI series, the measurement every
// pre-Vehicle-Key scheme uses; their low key rates relative to
// Vehicle-Key's register-RSSI stream are the paper's Fig. 13.
//
// Each scheme is expressed as a pipeline.Stages slot assignment and
// registered with core's scheme registry (importing this package,
// possibly blank, makes "lora-key", "han" and "gao" constructible via
// core.NewScheme), so the protocol, experiment and NIST layers drive
// them through exactly the code path Vehicle-Key runs. The LoRaKey/
// Han/Gao functions below keep the historical stream-evaluation API
// used by the Fig. 12/13 regeneration.
package baselines

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/quantize"
	"repro/internal/rng"
	"repro/internal/trace"
)

// blockSize is the reconciliation unit all baselines use, matching the
// paper's 20×64 CS matrix.
const blockSize = 64

// loRaKeyQuant is LoRa-Key's quantizer: 1 bit per packet RSSI with the
// paper's α = 0.8 guard band, per-32-sample adaptive blocks.
func loRaKeyQuant() quantize.MultiBitConfig {
	return quantize.MultiBitConfig{
		BitsPerSample: 1,
		GuardRatio:    0.8, // the paper tunes LoRa-Key's α to 0.8
		BlockSize:     32,
	}
}

// hanQuant is Han et al.'s quantizer: the multi-bit quantizer pushed to
// 3 bits per packet RSSI to compensate for LoRa's low probing rate; at
// vehicular pRSSI correlations that depth costs substantial
// disagreement, which Cascade's four passes only partly repair — the
// paper's Fig. 12.
func hanQuant() quantize.MultiBitConfig {
	return quantize.MultiBitConfig{
		BitsPerSample: 3,
		GuardRatio:    0,
		BlockSize:     32,
	}
}

// Gao et al.'s model-based filtering: interval smoothing with a bounded
// number of rounds per batch (the paper sets interval 20, rounds 50
// over raw RSSI samples; scaled here to the per-packet series: one bit
// per two-packet interval).
const gaoInterval, gaoRounds = 3, 50

// noGuard strips the guard band from a multi-bit config, producing the
// full (every-sample) bit head an identity predictor announces.
func noGuard(qc quantize.MultiBitConfig) quantize.MultiBitConfig {
	qc.GuardRatio = 0
	return qc
}

// multiBitHead builds an identity-predictor head function: the full
// un-guarded bit string of the scheme's quantizer over a sequence.
func multiBitHead(qc quantize.MultiBitConfig) func([]float64) ([]byte, error) {
	return func(seq []float64) ([]byte, error) {
		res, err := quantize.MultiBit(seq, qc)
		if err != nil {
			return nil, err
		}
		return res.Bits, nil
	}
}

// loRaKeyStages assembles LoRa-Key's slot assignment.
//
// LoRa-Key's published protocol has no kept-index exchange: each side
// censors its own guard-band samples silently (the scheme was designed
// for static links, where both sides drop nearly identical indices). In
// a vehicular channel the two kept-index sets diverge, the order-aligned
// bit streams lose synchronization, and agreement collapses toward
// chance — this is precisely why the paper measures LoRa-Key lowest in
// Fig. 12. The stream-evaluation path preserves that misalignment; the
// unified protocol path necessarily adds the index exchange (it cannot
// run unaligned), which is marked by IndexExchange.
func loRaKeyStages() pipeline.Stages {
	qc := loRaKeyQuant()
	return pipeline.Stages{
		Scheme:        "lora-key",
		Predictor:     pipeline.NewIdentityPredictor(multiBitHead(noGuard(qc))),
		Quantizer:     pipeline.NewMultiBit(qc, qc),
		Reconciler:    pipeline.NewCS(pipeline.DefaultCSConfig(), blockSize),
		Amplifier:     pipeline.NewSHAAmplifier(),
		IndexExchange: true,
	}
}

// hanStages assembles Han et al.'s slot assignment. src feeds the
// interactive Cascade permutations of the local-evaluation path (one
// Derive("cascade") per reconciled block, matching the paper's
// comparison); the wire path derives permutations from the session salt
// instead and never touches it.
func hanStages(src *rng.Source) pipeline.Stages {
	qc := hanQuant()
	return pipeline.Stages{
		Scheme:        "han",
		Predictor:     pipeline.NewIdentityPredictor(multiBitHead(qc)),
		Quantizer:     pipeline.NewMultiBit(qc, qc),
		Reconciler:    pipeline.NewCascade(pipeline.DefaultCascadeConfig(), blockSize, src),
		Amplifier:     pipeline.NewSHAAmplifier(),
		IndexExchange: false,
	}
}

// gaoStages assembles Gao et al.'s slot assignment.
func gaoStages() pipeline.Stages {
	return pipeline.Stages{
		Scheme:        "gao",
		Predictor:     pipeline.NewIdentityPredictor(gaoHead),
		Quantizer:     pipeline.NewInterval(gaoInterval, gaoRounds),
		Reconciler:    pipeline.NewCS(pipeline.DefaultCSConfig(), blockSize),
		Amplifier:     pipeline.NewSHAAmplifier(),
		IndexExchange: false,
	}
}

func gaoHead(seq []float64) ([]byte, error) {
	return quantize.Interval(seq, gaoInterval, gaoRounds), nil
}

func init() {
	core.RegisterScheme("lora-key", func(_ core.Config, _ *rng.Source) (pipeline.Stages, error) {
		return loRaKeyStages(), nil
	})
	core.RegisterScheme("han", func(_ core.Config, src *rng.Source) (pipeline.Stages, error) {
		return hanStages(src), nil
	})
	core.RegisterScheme("gao", func(_ core.Config, _ *rng.Source) (pipeline.Stages, error) {
		return gaoStages(), nil
	})
}

// Result aggregates one baseline evaluation, mirroring core.Metrics.
type Result struct {
	Name       string
	Blocks     int
	PreKAR     float64
	PreKARStd  float64
	PostKAR    float64
	PostKARStd float64
	KGR        float64 // agreed bits per probing second (gross)
	NetKGR     float64 // agreed bits minus publicly leaked bits, per second
}

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("%s: blocks=%d preKAR=%.2f%%±%.2f postKAR=%.2f%%±%.2f KGR=%.3f bit/s net=%.3f bit/s",
		r.Name, r.Blocks, 100*r.PreKAR, 100*r.PreKARStd, 100*r.PostKAR, 100*r.PostKARStd, r.KGR, r.NetKGR)
}

// fromStream attaches a display name to a stream evaluation.
func fromStream(name string, sr pipeline.StreamResult) Result {
	return Result{
		Name:       name,
		Blocks:     sr.Blocks,
		PreKAR:     sr.PreKAR,
		PreKARStd:  sr.PreKARStd,
		PostKAR:    sr.PostKAR,
		PostKARStd: sr.PostKARStd,
		KGR:        sr.KGR,
		NetKGR:     sr.NetKGR,
	}
}

// totalDuration sums the probing time of the exchanges.
func totalDuration(ex []trace.Exchange) float64 {
	var t float64
	for _, e := range ex {
		t += e.Duration
	}
	return t
}

// LoRaKey evaluates the LoRa-Key scheme over the exchanges.
func LoRaKey(ex []trace.Exchange) (Result, error) {
	alice, bob := trace.PRSSI(ex)
	sr, err := pipeline.EvaluateStream(loRaKeyStages(), alice, bob, totalDuration(ex))
	if err != nil {
		return Result{}, err
	}
	return fromStream("LoRa-Key", sr), nil
}

// Han evaluates the Han et al. scheme over the exchanges: plain Jana
// multi-bit quantization (no guard censoring) with Cascade reconciliation
// at the paper's parameters (group length 3, 4 iterations).
func Han(ex []trace.Exchange, src *rng.Source) (Result, error) {
	alice, bob := trace.PRSSI(ex)
	sr, err := pipeline.EvaluateStream(hanStages(src), alice, bob, totalDuration(ex))
	if err != nil {
		return Result{}, err
	}
	return fromStream("Han et al.", sr), nil
}

// Gao evaluates the Gao et al. model-based scheme over the exchanges.
func Gao(ex []trace.Exchange) (Result, error) {
	alice, bob := trace.PRSSI(ex)
	sr, err := pipeline.EvaluateStream(gaoStages(), alice, bob, totalDuration(ex))
	if err != nil {
		return Result{}, err
	}
	return fromStream("Gao et al.", sr), nil
}
