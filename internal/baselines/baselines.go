// Package baselines implements the three LoRa key-generation schemes the
// paper compares against in Figs. 12 and 13:
//
//   - LoRa-Key (Xu et al., IoT-J 2018): packet-RSSI quantization with an
//     α = 0.8 guard band on both sides, kept-index intersection, and
//     compressed-sensing reconciliation over a 20×64 random matrix;
//   - Han et al. (Sensors 2020): Jana-style multi-bit quantization with
//     Gray coding and Cascade reconciliation (group length 3, 4
//     iterations);
//   - Gao et al. (IPSN 2021): model-based filtering — RSSI smoothed over
//     an interval (20) with a bounded number of rounds (50) — followed by
//     single-bit quantization and CS reconciliation.
//
// All three consume the per-packet pRSSI series, the measurement every
// pre-Vehicle-Key scheme uses; their low key rates relative to
// Vehicle-Key's register-RSSI stream are the paper's Fig. 13.
package baselines

import (
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/quantize"
	"repro/internal/reconcile"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Result aggregates one baseline evaluation, mirroring core.Metrics.
type Result struct {
	Name       string
	Blocks     int
	PreKAR     float64
	PreKARStd  float64
	PostKAR    float64
	PostKARStd float64
	KGR        float64 // agreed bits per probing second (gross)
	NetKGR     float64 // agreed bits minus publicly leaked bits, per second
}

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("%s: blocks=%d preKAR=%.2f%%±%.2f postKAR=%.2f%%±%.2f KGR=%.3f bit/s net=%.3f bit/s",
		r.Name, r.Blocks, 100*r.PreKAR, 100*r.PreKARStd, 100*r.PostKAR, 100*r.PostKARStd, r.KGR, r.NetKGR)
}

// blockSize is the reconciliation unit all baselines use, matching the
// paper's 20×64 CS matrix.
const blockSize = 64

// reconciler abstracts the per-scheme block reconciliation.
type reconciler func(alice, bob []byte) (reconcile.Outcome, error)

// evaluate aligns two bit streams, reconciles 64-bit blocks, and
// aggregates metrics. totalTime is the probing time that produced the
// streams.
func evaluate(name string, alice, bob []byte, totalTime float64, rec reconciler) (Result, error) {
	n := len(alice)
	if len(bob) < n {
		n = len(bob)
	}
	res := Result{Name: name}
	var pre, post []float64
	var agreedBits, netBits float64
	for lo := 0; lo+blockSize <= n; lo += blockSize {
		a := alice[lo : lo+blockSize]
		b := bob[lo : lo+blockSize]
		p, err := mathx.BitAgreement(a, b)
		if err != nil {
			return Result{}, err
		}
		out, err := rec(a, b)
		if err != nil {
			return Result{}, err
		}
		pre = append(pre, p)
		post = append(post, out.Agreement())
		agreedBits += out.Agreement() * blockSize
		if nb := out.Agreement()*blockSize - float64(out.LeakedKeyBits); nb > 0 {
			netBits += nb
		}
		res.Blocks++
	}
	if res.Blocks == 0 {
		return res, nil
	}
	res.PreKAR, res.PreKARStd = meanStd(pre)
	res.PostKAR, res.PostKARStd = meanStd(post)
	if totalTime > 0 {
		res.KGR = agreedBits / totalTime
		res.NetKGR = netBits / totalTime
	}
	return res, nil
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var v float64
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(v / float64(len(xs)))
}

// totalDuration sums the probing time of the exchanges.
func totalDuration(ex []trace.Exchange) float64 {
	var t float64
	for _, e := range ex {
		t += e.Duration
	}
	return t
}

// LoRaKey evaluates the LoRa-Key scheme over the exchanges.
//
// LoRa-Key's published protocol has no kept-index exchange: each side
// censors its own guard-band samples silently (the scheme was designed
// for static links, where both sides drop nearly identical indices). In
// a vehicular channel the two kept-index sets diverge, the order-aligned
// bit streams lose synchronization, and agreement collapses toward
// chance — this is precisely why the paper measures LoRa-Key lowest in
// Fig. 12.
func LoRaKey(ex []trace.Exchange) (Result, error) {
	alice, bob := trace.PRSSI(ex)
	qc := quantize.MultiBitConfig{
		BitsPerSample: 1,
		GuardRatio:    0.8, // the paper tunes LoRa-Key's α to 0.8
		BlockSize:     32,
	}
	ra, err := quantize.MultiBit(alice, qc)
	if err != nil {
		return Result{}, err
	}
	rb, err := quantize.MultiBit(bob, qc)
	if err != nil {
		return Result{}, err
	}
	rec := func(a, b []byte) (reconcile.Outcome, error) {
		return reconcile.CSISTA(a, b, reconcile.DefaultCSConfig())
	}
	return evaluate("LoRa-Key", ra.Bits, rb.Bits, totalDuration(ex), rec)
}

// Han evaluates the Han et al. scheme over the exchanges: plain Jana
// multi-bit quantization (no guard censoring) with Cascade reconciliation
// at the paper's parameters (group length 3, 4 iterations).
func Han(ex []trace.Exchange, src *rng.Source) (Result, error) {
	alice, bob := trace.PRSSI(ex)
	// Han et al. push the multi-bit quantizer to 3 bits per packet RSSI
	// to compensate for LoRa's low probing rate; at vehicular pRSSI
	// correlations that depth costs substantial disagreement, which
	// Cascade's four passes only partly repair — the paper's Fig. 12.
	qc := quantize.MultiBitConfig{
		BitsPerSample: 3,
		GuardRatio:    0,
		BlockSize:     32,
	}
	ra, err := quantize.MultiBit(alice, qc)
	if err != nil {
		return Result{}, err
	}
	rb, err := quantize.MultiBit(bob, qc)
	if err != nil {
		return Result{}, err
	}
	cas := reconcile.DefaultCascadeConfig() // k = 3, 4 iterations
	rec := func(a, b []byte) (reconcile.Outcome, error) {
		return reconcile.Cascade(a, b, cas, src.Derive("cascade"))
	}
	return evaluate("Han et al.", ra.Bits, rb.Bits, totalDuration(ex), rec)
}

// Gao evaluates the Gao et al. model-based scheme over the exchanges.
func Gao(ex []trace.Exchange) (Result, error) {
	alice, bob := trace.PRSSI(ex)
	// Model-based filtering: interval smoothing with a bounded number of
	// rounds per batch (the paper sets interval 20, rounds 50 over raw
	// RSSI samples; scaled here to the per-packet series: one bit per
	// two-packet interval).
	const interval, rounds = 3, 50
	ba := quantize.Interval(alice, interval, rounds)
	bb := quantize.Interval(bob, interval, rounds)
	rec := func(a, b []byte) (reconcile.Outcome, error) {
		return reconcile.CSISTA(a, b, reconcile.DefaultCSConfig())
	}
	return evaluate("Gao et al.", ba, bb, totalDuration(ex), rec)
}
