package server

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Hello is the pre-protocol handshake a vehicle sends as its first
// message: which vehicle is calling, how many probing windows the
// session will run, and the session identifier the protocol envelopes
// will carry. Both endpoints then derive the session's aligned
// measurement windows independently from (shared seed, vehicle ID), so
// the handshake never moves channel measurements over the wire.
//
// There is no acknowledgement. Over TCP the hello is the first frame of
// the stream and cannot be lost; over UDP the vehicle sends Copies
// redundant hellos and starts the protocol immediately — any protocol
// envelope that races ahead of the hello is dropped by the server's
// handshake loop and retransmitted by the ARQ layer, so hello loss is
// absorbed the same way wire loss is everywhere else.
//
//vklint:wire -- decoded from unauthenticated vehicles; treat field reads as hostile
type Hello struct {
	Magic   uint32
	Vehicle uint64
	Windows int
	Session string
}

// helloMagic distinguishes hellos from protocol envelopes at decode.
const helloMagic = 0x564b4859 // "VKHY"

// Handshake wire caps, mirroring the protocol layer's decode hygiene:
// reject before allocating or trusting anything oversized.
const (
	// MaxHelloBytes bounds one encoded hello.
	MaxHelloBytes = 4096
	// MaxSessionLen bounds the session identifier.
	MaxSessionLen = 128
	// MaxHelloWindows is the hard wire-format cap on the announced window
	// count; Config.MaxWindows applies the (lower) serving-policy cap.
	MaxHelloWindows = 1 << 12
)

// errNotHello flags a frame that is not a hello (most likely a protocol
// envelope that raced ahead of one); the handshake loop skips it.
var errNotHello = errors.New("server: not a hello")

// encodeHello frames h like the protocol envelopes: a CRC32 header over
// the gob payload, so link corruption surfaces at decode.
func encodeHello(h Hello) ([]byte, error) {
	h.Magic = helloMagic
	var buf bytes.Buffer
	buf.Write(make([]byte, 4))
	if err := gob.NewEncoder(&buf).Encode(h); err != nil {
		return nil, fmt.Errorf("server: encode hello: %w", err)
	}
	data := buf.Bytes()
	binary.BigEndian.PutUint32(data[:4], crc32.ChecksumIEEE(data[4:]))
	return data, nil
}

// decodeHello parses and validates one hello frame. Anything that is
// not a well-formed hello within the caps reports errNotHello.
func decodeHello(data []byte) (Hello, error) {
	if len(data) < 4 || len(data) > MaxHelloBytes {
		return Hello{}, errNotHello
	}
	if want := binary.BigEndian.Uint32(data[:4]); want != crc32.ChecksumIEEE(data[4:]) {
		return Hello{}, errNotHello
	}
	var h Hello
	if err := gob.NewDecoder(bytes.NewReader(data[4:])).Decode(&h); err != nil {
		return Hello{}, errNotHello
	}
	switch {
	case h.Magic != helloMagic:
		return Hello{}, errNotHello
	case h.Windows < 1 || h.Windows > MaxHelloWindows:
		return Hello{}, errNotHello
	case len(h.Session) == 0 || len(h.Session) > MaxSessionLen:
		return Hello{}, errNotHello
	}
	return h, nil
}

// SessionWindows derives one session's aligned measurement windows. Both
// endpoints call it with the same scenario, configuration, shared seed,
// and vehicle ID, then keep only their own side — the server (Alice)
// uses the alice windows, the vehicle (Bob) the bob windows. The
// derivation reuses the experiment engine's sub-stream discipline
// (rng.SubSeed), so every vehicle gets a decoupled, order-independent
// channel realization, and the trace layer's per-window normalization
// keeps these small per-session datasets consistent with the training
// distribution.
func SessionWindows(sc trace.Scenario, cfg core.Config, seed int64, vehicle uint64, n int) (alice, bob [][]float64, err error) {
	cfg.Normalize()
	ds, err := trace.Build(sc, rng.SubSeed(seed, "server/session", int(vehicle)), n, cfg.SeqLen, trace.DefaultExtract())
	if err != nil {
		return nil, nil, fmt.Errorf("server: session windows: %w", err)
	}
	for _, smp := range ds.Samples {
		alice = append(alice, smp.Alice)
		bob = append(bob, smp.Bob)
	}
	return alice, bob, nil
}
