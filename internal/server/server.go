// Package server is the fleet-facing serving layer: it accepts vehicle
// connections from any transport.Listener (framed TCP, the UDP mux) and
// runs the Alice role of the key-establishment protocol for each, so one
// process serves many concurrent vehicles from one trained scheme.
//
// The design leans on two earlier layers. Scheme instances are sharded
// the way the experiment engine shards work: a bounded pool of worker
// goroutines, each owning a private core.System clone of the one trained
// template, consuming sessions from a queue — the cached template itself
// is only ever cloned, never run. And per-session channel realizations
// reuse the engine's rng.SubSeed sub-stream discipline, so both
// endpoints derive identical measurement windows from (seed, vehicle)
// without any coordination beyond the hello handshake.
//
// Every session resolves to exactly one outcome — established, degraded,
// rejected, or error — counted on the obs registry together with an
// active-session gauge and a session-latency histogram; the churn soak
// test audits that accounting against the connections it opened.
package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Session-outcome counter names, baked once per label (the obs idiom).
var outcomeCounters = map[string]string{
	obs.OutcomeEstablished: obs.Labeled(obs.ServerSessions, "outcome", obs.OutcomeEstablished),
	obs.OutcomeDegraded:    obs.Labeled(obs.ServerSessions, "outcome", obs.OutcomeDegraded),
	obs.OutcomeRejected:    obs.Labeled(obs.ServerSessions, "outcome", obs.OutcomeRejected),
	obs.OutcomeError:       obs.Labeled(obs.ServerSessions, "outcome", obs.OutcomeError),
}

// Window-cache effectiveness counters, baked once (the obs idiom).
var (
	cacheHitWindows  = obs.Labeled(obs.CacheHits, "cache", "windows")
	cacheMissWindows = obs.Labeled(obs.CacheMisses, "cache", "windows")
)

// winKey identifies one vehicle's derived session windows; scenario,
// config, and seed are fixed per Server, so (vehicle, count) determines
// the derivation completely.
type winKey struct {
	vehicle uint64
	n       int
}

// winVal is one memoized derivation. The nested slices are shared across
// every session that hits the key — including concurrent workers — and
// are read-only by contract: the pipeline stages only read measurement
// windows (wincache_test.go proves cached == fresh and the race soak
// exercises the sharing).
type winVal struct {
	alice, bob [][]float64
}

// ErrServerClosed reports an operation on a closed server.
var ErrServerClosed = errors.New("server: closed")

// errNoHello reports a session on which no valid hello arrived within
// the handshake deadline.
var errNoHello = errors.New("server: no hello received")

// Config configures New. The zero value of every optional field takes
// the documented default.
type Config struct {
	// Template is the trained scheme instance sessions are served from.
	// It is never run directly: each worker owns a private clone.
	Template *core.System
	// Scenario is the simulated channel both endpoints derive session
	// windows from; it must match the vehicles' scenario.
	Scenario trace.Scenario
	// Seed is the shared base seed of the per-vehicle window derivation.
	Seed int64

	// Workers bounds concurrent sessions (default 8). Each worker holds
	// one scheme clone for its lifetime, so memory scales with Workers,
	// not with fleet size.
	Workers int
	// Queue is the accepted-but-unserved backlog depth (default 64).
	// When it is full the accept loop blocks — backpressure, not loss.
	Queue int
	// MaxWindows caps the per-session window count a hello may request
	// (default 64): the window derivation does real simulation work, so
	// a hostile hello must not buy unbounded compute.
	MaxWindows int
	// WindowCacheSize bounds the per-vehicle session-window memo shared
	// by the worker pool (default 1024 entries; negative disables
	// caching). Reconnecting vehicles skip the channel-simulation work
	// entirely — the dominant per-session cost once schemes are cheap.
	WindowCacheSize int

	// HelloTimeout bounds the wait for a session's handshake (default 5s).
	HelloTimeout time.Duration
	// SessionTimeout bounds one whole session (default 60s); on expiry
	// the connection is closed, which the protocol run observes as a
	// graceful end.
	SessionTimeout time.Duration
	// DrainTimeout bounds Close's graceful drain (default 10s); sessions
	// still running after it are cut by force-closing their connections.
	DrainTimeout time.Duration

	// Retry is the protocol node's timeout/retransmit policy; the zero
	// value takes protocol.DefaultRetryPolicy.
	Retry protocol.RetryPolicy
	// Recorder receives the serving metrics and every session's protocol
	// and pipeline metrics (default obs.Nop; the server never constructs
	// its own registry — the obsnop contract).
	Recorder obs.Recorder
	// OnSession, when set, observes every resolved session. It runs on
	// the session's worker; keep it cheap.
	OnSession func(Result)
	// WrapConn, when set, wraps every accepted connection before serving
	// — the loopback suite injects transport faults on the server's
	// egress path through it.
	WrapConn func(transport.Conn) transport.Conn
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.MaxWindows <= 0 {
		c.MaxWindows = 64
	}
	if c.WindowCacheSize == 0 {
		c.WindowCacheSize = 1024
	}
	if c.HelloTimeout <= 0 {
		c.HelloTimeout = 5 * time.Second
	}
	if c.SessionTimeout <= 0 {
		c.SessionTimeout = 60 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	return c
}

// Result is one resolved session, delivered to Config.OnSession.
type Result struct {
	Vehicle   uint64
	Session   string
	Outcome   string // one of obs.ServerOutcomes
	Outcomes  []protocol.KeyOutcome
	Confirmed int
	Elapsed   time.Duration
	Err       error
}

// Server is the session manager: listeners feed accepted connections
// into a bounded queue; workers (each holding a private scheme clone)
// serve them one at a time.
type Server struct {
	cfg   Config
	rec   obs.Recorder
	queue chan transport.Conn
	done  chan struct{}
	once  sync.Once

	workerWG sync.WaitGroup
	acceptWG sync.WaitGroup

	mu        sync.Mutex
	listeners []transport.Listener
	live      map[transport.Conn]struct{}

	// wins memoizes SessionWindows by (vehicle, count) across the whole
	// worker pool — the one cache in the serving layer that is shared
	// between goroutines. nil when Config.WindowCacheSize < 0.
	wins *memo.LRU[winKey, winVal]

	active atomic.Int64
}

// New validates cfg and starts the worker pool. The server accepts
// nothing until Serve is called with a listener.
func New(cfg Config) (*Server, error) {
	if cfg.Template == nil {
		return nil, errors.New("server: Config.Template must be a trained scheme instance")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		rec:   obs.OrNop(cfg.Recorder),
		queue: make(chan transport.Conn, cfg.Queue),
		done:  make(chan struct{}),
		live:  make(map[transport.Conn]struct{}),
	}
	if cfg.WindowCacheSize > 0 {
		s.wins = memo.NewLRU[winKey, winVal](cfg.WindowCacheSize)
	}
	s.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Serve accepts connections from l until l or the server closes, then
// returns nil (an accept failure other than closure is returned). It
// blocks, like net/http.Serve; run it in a goroutine to serve several
// listeners — e.g. TCP and the UDP mux — from one session manager.
func (s *Server) Serve(l transport.Listener) error {
	select {
	case <-s.done:
		return ErrServerClosed
	default:
	}
	s.mu.Lock()
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	s.acceptWG.Add(1)
	defer s.acceptWG.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		if s.cfg.WrapConn != nil {
			conn = s.cfg.WrapConn(conn)
		}
		select {
		case s.queue <- conn:
		case <-s.done:
			_ = conn.Close()
			return nil
		}
	}
}

// ActiveSessions reports the number of sessions currently being served.
func (s *Server) ActiveSessions() int64 { return s.active.Load() }

// Close shuts the server down gracefully: stop accepting, let running
// sessions finish within DrainTimeout, then cut the stragglers. Safe to
// call more than once; sessions queued but never started resolve as
// rejected so the accounting stays complete.
func (s *Server) Close() error {
	s.once.Do(func() {
		close(s.done)
		s.mu.Lock()
		ls := append([]transport.Listener(nil), s.listeners...)
		s.mu.Unlock()
		for _, l := range ls {
			_ = l.Close()
		}
		s.acceptWG.Wait() // no accept loop can enqueue past this point
		close(s.queue)

		drained := make(chan struct{})
		go func() {
			s.workerWG.Wait()
			close(drained)
		}()
		timer := time.NewTimer(s.cfg.DrainTimeout)
		defer timer.Stop()
		select {
		case <-drained:
		case <-timer.C:
			// Force-close the connections still being served; their
			// protocol runs observe ErrClosed and end gracefully.
			s.mu.Lock()
			for conn := range s.live {
				_ = conn.Close()
			}
			s.mu.Unlock()
			// Bounded second wait (netdeadline): force-closed sessions
			// unwind within their receive deadlines, but if one wedges
			// anyway Close must not wedge with it.
			grace := time.NewTimer(s.cfg.DrainTimeout)
			defer grace.Stop()
			select {
			case <-drained:
			case <-grace.C:
			}
		}
	})
	return nil
}

// worker owns one scheme clone and serves queued sessions sequentially
// — the exp engine's sharding discipline applied to serving. After
// Close, leftover queued connections are rejected, not served.
func (s *Server) worker() {
	defer s.workerWG.Done()
	sys := s.cfg.Template.Clone()
	sys.SetRecorder(s.rec)
	for conn := range s.queue {
		select {
		case <-s.done:
			s.resolve(conn, Result{Outcome: obs.OutcomeRejected, Err: ErrServerClosed}, time.Time{})
		default:
			s.session(sys, conn)
		}
	}
}

// session runs one connection through handshake and protocol and
// resolves it to exactly one outcome.
func (s *Server) session(sys *core.System, conn transport.Conn) {
	//vklint:ignore norand -- session latency metric only; never feeds randomness or key material
	started := time.Now()
	n := s.active.Add(1)
	s.rec.Set(obs.ServerActiveSessions, float64(n))
	s.track(conn, true)

	res := s.run(sys, conn)

	s.track(conn, false)
	n = s.active.Add(-1)
	s.rec.Set(obs.ServerActiveSessions, float64(n))
	s.resolve(conn, res, started)
}

// run executes the handshake and the Alice protocol role.
func (s *Server) run(sys *core.System, conn transport.Conn) Result {
	h, err := s.awaitHello(conn)
	if err != nil {
		return Result{Outcome: obs.OutcomeRejected, Err: err}
	}
	res := Result{Vehicle: h.Vehicle, Session: h.Session}
	if h.Windows > s.cfg.MaxWindows {
		res.Outcome = obs.OutcomeRejected
		res.Err = fmt.Errorf("server: hello requested %d windows, cap %d", h.Windows, s.cfg.MaxWindows)
		return res
	}
	aliceWin, err := s.sessionWindows(h.Vehicle, h.Windows)
	if err != nil {
		res.Outcome = obs.OutcomeError
		res.Err = err
		return res
	}
	// The watchdog closes the connection when the session overstays; the
	// protocol run sees ErrClosed and returns its outcomes gracefully.
	watchdog := time.AfterFunc(s.cfg.SessionTimeout, func() { _ = conn.Close() })
	defer watchdog.Stop()

	node := protocol.NewNode(sys, conn, h.Session,
		protocol.WithRetryPolicy(s.cfg.Retry), protocol.WithRecorder(s.rec))
	res.Outcomes, res.Err = node.RunAlice(aliceWin)
	for _, o := range res.Outcomes {
		if o.Confirmed {
			res.Confirmed++
		}
	}
	switch {
	case res.Err != nil:
		res.Outcome = obs.OutcomeError
	case res.Confirmed > 0:
		res.Outcome = obs.OutcomeEstablished
	default:
		res.Outcome = obs.OutcomeDegraded
	}
	return res
}

// sessionWindows serves the Alice-side window derivation for a session,
// consulting the shared memo when caching is enabled. Cached windows are
// shared and read-only (see winVal); a racing duplicate derivation is
// identical by determinism, so Put-after-Get needs no locking beyond the
// LRU's own.
func (s *Server) sessionWindows(vehicle uint64, n int) ([][]float64, error) {
	if s.wins == nil {
		alice, _, err := SessionWindows(s.cfg.Scenario, s.cfg.Template.Cfg, s.cfg.Seed, vehicle, n)
		return alice, err
	}
	k := winKey{vehicle: vehicle, n: n}
	if v, ok := s.wins.Get(k); ok {
		s.rec.Add(cacheHitWindows, 1)
		return v.alice, nil
	}
	s.rec.Add(cacheMissWindows, 1)
	alice, bob, err := SessionWindows(s.cfg.Scenario, s.cfg.Template.Cfg, s.cfg.Seed, vehicle, n)
	if err != nil {
		return nil, err
	}
	s.wins.Put(k, winVal{alice: alice, bob: bob})
	return alice, nil
}

// awaitHello reads frames until a valid hello arrives or the handshake
// deadline passes. Protocol envelopes that raced ahead of the hello are
// dropped — loss the ARQ layer already absorbs.
func (s *Server) awaitHello(conn transport.Conn) (Hello, error) {
	//vklint:ignore norand -- handshake deadline arithmetic only; never feeds randomness or key material
	deadline := time.Now().Add(s.cfg.HelloTimeout)
	for i := 0; i < 64; i++ {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			break
		}
		data, err := conn.RecvTimeout(remaining)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				break
			}
			return Hello{}, err
		}
		if h, err := decodeHello(data); err == nil {
			return h, nil
		}
	}
	return Hello{}, errNoHello
}

// resolve finalizes a session: close, count, observe, notify.
func (s *Server) resolve(conn transport.Conn, res Result, started time.Time) {
	_ = conn.Close()
	if !started.IsZero() {
		res.Elapsed = time.Since(started)
	}
	if name, ok := outcomeCounters[res.Outcome]; ok {
		s.rec.Add(name, 1)
	}
	s.rec.Observe(obs.ServerSessionSeconds, res.Elapsed.Seconds())
	if s.cfg.OnSession != nil {
		s.cfg.OnSession(res)
	}
}

// track maintains the live-connection set the drain deadline cuts.
func (s *Server) track(conn transport.Conn, add bool) {
	s.mu.Lock()
	if add {
		s.live[conn] = struct{}{}
	} else {
		delete(s.live, conn)
	}
	s.mu.Unlock()
}
