package server

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"hash/crc32"
	"strings"
	"testing"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/trace"
)

// TestHelloRoundTrip: a well-formed hello survives encode/decode with
// every field intact and the magic stamped automatically.
func TestHelloRoundTrip(t *testing.T) {
	in := Hello{Vehicle: 42, Windows: 8, Session: "vk/vehicle/42"}
	data, err := encodeHello(in)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := decodeHello(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Magic != helloMagic || out.Vehicle != 42 || out.Windows != 8 || out.Session != "vk/vehicle/42" {
		t.Fatalf("roundtrip = %+v", out)
	}
}

// TestHelloDecodeRejects: everything that is not a well-formed hello
// within the wire caps reports errNotHello — the handshake loop treats
// all of it as a protocol envelope racing ahead and skips it.
func TestHelloDecodeRejects(t *testing.T) {
	valid, err := encodeHello(Hello{Vehicle: 1, Windows: 4, Session: "s"})
	if err != nil {
		t.Fatal(err)
	}
	corruptPayload := append([]byte(nil), valid...)
	corruptPayload[len(corruptPayload)-1] ^= 0xFF
	corruptCRC := append([]byte(nil), valid...)
	binary.BigEndian.PutUint32(corruptCRC[:4], binary.BigEndian.Uint32(corruptCRC[:4])^0xdeadbeef)

	mangle := func(h Hello) []byte {
		// encodeHello stamps the magic; build mangled hellos by hand so the
		// field caps are actually exercised on the wire format.
		data, err := encodeHello(h)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	// A structurally valid hello with the wrong magic: hand-encoded, since
	// encodeHello always stamps the real one.
	badMagic := func() []byte {
		var buf bytes.Buffer
		buf.Write(make([]byte, 4))
		if err := gob.NewEncoder(&buf).Encode(Hello{Magic: 0x01020304, Vehicle: 1, Windows: 4, Session: "s"}); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()
		binary.BigEndian.PutUint32(data[:4], crc32.ChecksumIEEE(data[4:]))
		return data
	}()

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", []byte{1, 2, 3}},
		{"oversize", make([]byte, MaxHelloBytes+1)},
		{"corrupt-payload", corruptPayload},
		{"corrupt-crc", corruptCRC},
		{"not-gob", append([]byte{0, 0, 0, 0}, "plainly not gob"...)},
		{"bad-magic", badMagic},
		{"zero-windows", mangle(Hello{Vehicle: 1, Windows: 0, Session: "s"})},
		{"huge-windows", mangle(Hello{Vehicle: 1, Windows: MaxHelloWindows + 1, Session: "s"})},
		{"empty-session", mangle(Hello{Vehicle: 1, Windows: 4})},
		{"long-session", mangle(Hello{Vehicle: 1, Windows: 4, Session: strings.Repeat("s", MaxSessionLen+1)})},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			data := c.data
			if c.name == "not-gob" {
				binary.BigEndian.PutUint32(data[:4], crc32.ChecksumIEEE(data[4:]))
			}
			if _, err := decodeHello(data); !errors.Is(err, errNotHello) {
				t.Fatalf("decode = %v, want errNotHello", err)
			}
		})
	}
}

// TestSessionWindowsDeterministic: both endpoints calling SessionWindows
// with the same (scenario, config, seed, vehicle) derive byte-identical
// windows — that shared derivation is what stands in for the two radios
// probing one physical channel.
func TestSessionWindowsDeterministic(t *testing.T) {
	sc := trace.NewScenario(channel.Urban, channel.V2I)
	cfg := core.DefaultConfig()
	a1, b1, err := SessionWindows(sc, cfg, 21, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	a2, b2, err := SessionWindows(sc, cfg, 21, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != 4 || len(b1) != 4 {
		t.Fatalf("derived %d/%d windows, want 4/4", len(a1), len(b1))
	}
	for i := range a1 {
		for j := range a1[i] {
			if a1[i][j] != a2[i][j] || b1[i][j] != b2[i][j] {
				t.Fatalf("window %d diverges between identical derivations", i)
			}
		}
	}

	// A different vehicle is a different channel realization.
	a3, _, err := SessionWindows(sc, cfg, 21, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a1 {
		for j := range a1[i] {
			if a1[i][j] != a3[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("vehicles 7 and 8 derived identical windows")
	}
}
