package server

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/transport"

	// Registers the baseline schemes so core.SchemeNames() covers them.
	_ "repro/internal/baselines"
)

// loopbackSeed is the shared base seed both halves of every loopback
// session derive their windows from.
const loopbackSeed int64 = 21

// loopbackPolicy keeps the soak brisk: short initial timeout, enough
// retries to ride out the injected faults.
var loopbackPolicy = protocol.RetryPolicy{Timeout: 40 * time.Millisecond, MaxRetries: 8}

func loopbackScenario() trace.Scenario { return trace.NewScenario(channel.Urban, channel.V2I) }

// templateCache shares one built (and, for vehicle-key, trained) scheme
// instance per name across every loopback subtest — training is the
// expensive part and the server only ever clones its template anyway.
var templateCache = struct {
	sync.Mutex
	m map[string]*core.System
}{m: make(map[string]*core.System)}

func schemeTemplate(t testing.TB, name string) *core.System {
	t.Helper()
	templateCache.Lock()
	defer templateCache.Unlock()
	if sys, ok := templateCache.m[name]; ok {
		return sys
	}
	src := rng.New(loopbackSeed)
	sys, err := core.NewScheme(name, core.DefaultConfig(), src.Derive("sys"))
	if err != nil {
		t.Fatal(err)
	}
	if name == core.DefaultScheme {
		// Vehicle-Key needs its predictor fitted; baselines are
		// training-free. Small but real: the loopback suite checks the
		// serving layer, not key-rate records.
		ds, err := trace.Build(loopbackScenario(), loopbackSeed, 160, sys.Cfg.SeqLen, trace.DefaultExtract())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Train(ds, 10, src.Derive("train")); err != nil {
			t.Fatal(err)
		}
	}
	templateCache.m[name] = sys
	return sys
}

// schemeExpectation says what confirmation behavior a scheme must show
// on the serving layer's per-session windows. The windows are the
// trace layer's normalized feature sequences — what Vehicle-Key's
// predictor consumes — so expectations differ from the raw-pRSSI
// comparison sweep:
//
//   - mustConfirm: the scheme reliably turns these windows into
//     confirmed keys; a cell with zero confirms is a serving-layer bug.
//   - mustNotConfirm: han's guard-less 3-bit quantizer mismatches far
//     beyond what the leakage-bounded wire Cascade can repair; if it
//     confirms anyway, the wire code is leaking the key (the same bound
//     TestBaselineSchemesOverProtocol pins).
//   - agreementOnly: gao's guard-less interval quantizer is borderline
//     on normalized windows (the figure-12 comparison feeds it raw
//     pRSSI streams instead); rounds must complete with agreeing
//     verdicts, but confirmation is not demanded.
const (
	mustConfirm = iota
	mustNotConfirm
	agreementOnly
)

func schemeExpectation(name string) int {
	switch name {
	case core.DefaultScheme, "lora-key":
		return mustConfirm
	case "han":
		return mustNotConfirm
	default:
		return agreementOnly
	}
}

// listenLoopback binds a fresh loopback listener for the protocol name.
func listenLoopback(t *testing.T, proto string) transport.Listener {
	t.Helper()
	var l transport.Listener
	var err error
	if proto == "udp" {
		l, err = transport.ListenUDPMux("127.0.0.1:0")
	} else {
		l, err = transport.ListenTCP("127.0.0.1:0")
	}
	if err != nil {
		t.Fatalf("listen %s: %v", proto, err)
	}
	return l
}

func dialLoopback(t *testing.T, proto, addr string) transport.Conn {
	t.Helper()
	var c transport.Conn
	var err error
	if proto == "udp" {
		c, err = transport.DialUDP("127.0.0.1:0", addr)
	} else {
		c, err = transport.DialTCP(addr)
	}
	if err != nil {
		t.Fatalf("dial %s: %v", proto, err)
	}
	return c
}

// loopbackFaults is the fault model for the faulty cells, injected on
// both paths: the vehicle's conn and, through Config.WrapConn, the
// server's egress. Rates sit where the ARQ layer works hard but the
// suite stays fast.
var loopbackFaults = transport.FaultConfig{Drop: 0.10, Duplicate: 0.10, Reorder: 0.10, Corrupt: 0.05}

// runLoopback drives `vehicles` sessions of one scheme over a real
// localhost socket and returns client outcomes plus server results,
// keyed by vehicle ID.
func runLoopback(t *testing.T, name, proto string, faulty bool, vehicles, windows int) (map[uint64][]protocol.KeyOutcome, map[uint64]Result) {
	t.Helper()
	template := schemeTemplate(t, name)
	sc := loopbackScenario()

	var mu sync.Mutex
	results := make(map[uint64]Result)
	var faultMu sync.Mutex
	faultN := 0

	cfg := Config{
		Template:       template,
		Scenario:       sc,
		Seed:           loopbackSeed,
		Workers:        2,
		Retry:          loopbackPolicy,
		HelloTimeout:   10 * time.Second,
		SessionTimeout: 2 * time.Minute,
		OnSession: func(r Result) {
			// Sessions rejected before a hello carry no vehicle identity.
			// Over UDP these are expected ghosts: once the server resolves a
			// session and forgets its address, the vehicle's still-in-flight
			// retransmits look like a brand-new peer and are rejected at the
			// handshake. They must not clobber the real per-vehicle results.
			if r.Session == "" {
				return
			}
			mu.Lock()
			results[r.Vehicle] = r
			mu.Unlock()
		},
	}
	if faulty {
		cfg.WrapConn = func(c transport.Conn) transport.Conn {
			faultMu.Lock()
			faultN++
			src := rng.Stream(loopbackSeed, "loopback/server-fault", faultN)
			faultMu.Unlock()
			return transport.WrapFaulty(c, loopbackFaults, src)
		}
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := listenLoopback(t, proto)
	go func() { _ = srv.Serve(l) }()
	defer func() { _ = srv.Close() }()

	hellos := 1
	if proto == "udp" {
		hellos = 3
	}
	if faulty {
		// Both directions inject ~15% loss-equivalent faults; six copies
		// push the all-hellos-lost probability below measurement noise.
		hellos = 6
	}
	clone := template.Clone()
	outcomes := make(map[uint64][]protocol.KeyOutcome)
	for i := 0; i < vehicles; i++ {
		id := uint64(i)
		conn := dialLoopback(t, proto, l.Addr().String())
		drive := conn
		if faulty {
			drive = transport.WrapFaulty(conn, loopbackFaults, rng.Stream(loopbackSeed, "loopback/fault", i))
		}
		out, err := RunVehicle(drive, clone, sc, template.Cfg, loopbackSeed, Vehicle{ID: id, Windows: windows, HelloCopies: hellos},
			protocol.WithRetryPolicy(loopbackPolicy))
		if err != nil {
			t.Fatalf("vehicle %d (%s/%s): %v", id, name, proto, err)
		}
		_ = conn.Close()
		outcomes[id] = out
	}

	// Close drains the server so every accepted session has resolved
	// before the maps are compared.
	_ = srv.Close()
	return outcomes, results
}

// checkLoopback audits one cell: every vehicle got a server-side result,
// per-round confirmation verdicts agree end to end, confirmed keys are
// byte-identical 128-bit keys, and the outcome classification matches
// the confirmed count.
func checkLoopback(t *testing.T, name string, clean bool, client map[uint64][]protocol.KeyOutcome, servers map[uint64]Result) {
	t.Helper()
	rounds, confirmed := 0, 0
	for id, out := range client {
		res, ok := servers[id]
		if !ok {
			t.Fatalf("vehicle %d: no server-side result", id)
		}
		if res.Session != SessionName(id) {
			t.Fatalf("vehicle %d: server recorded session %q", id, res.Session)
		}
		if clean {
			// A clean link loses nothing: round counts and per-round
			// verdicts must line up exactly.
			if len(res.Outcomes) != len(out) {
				t.Fatalf("vehicle %d: %d client rounds vs %d server rounds", id, len(out), len(res.Outcomes))
			}
		}
		n := len(out)
		if len(res.Outcomes) < n {
			n = len(res.Outcomes)
		}
		for r := 0; r < n; r++ {
			c, s := out[r], res.Outcomes[r]
			if clean && c.Confirmed != s.Confirmed {
				t.Fatalf("vehicle %d round %d: client confirmed=%t server confirmed=%t", id, r, c.Confirmed, s.Confirmed)
			}
			// Faulty links may abandon asymmetrically, but a round both
			// sides confirmed must never diverge — that is the protocol's
			// core invariant and it must survive real sockets.
			if c.Confirmed && s.Confirmed {
				confirmed++
				if !bytes.Equal(c.Key, s.Key) {
					t.Fatalf("vehicle %d round %d: confirmed keys differ", id, r)
				}
				if len(c.Key) != 16 {
					t.Fatalf("vehicle %d round %d: key length %d", id, r, len(c.Key))
				}
			}
		}
		rounds += len(out)
		wantOutcome := obsOutcome(res)
		if res.Outcome != wantOutcome {
			t.Fatalf("vehicle %d: outcome %q with %d confirmed (want %q)", id, res.Outcome, res.Confirmed, wantOutcome)
		}
	}
	if rounds == 0 {
		t.Fatalf("%s produced no rounds at all", name)
	}
	switch schemeExpectation(name) {
	case mustConfirm:
		if confirmed == 0 {
			t.Fatalf("%s confirmed no keys across %d rounds", name, rounds)
		}
	case mustNotConfirm:
		if confirmed*10 > rounds {
			t.Fatalf("%s confirmed %d/%d rounds over the wire — its reconciliation should be leakage-infeasible", name, confirmed, rounds)
		}
	}
}

// obsOutcome recomputes the outcome classification a Result must carry.
func obsOutcome(r Result) string {
	switch {
	case r.Err != nil:
		return r.Outcome // error/rejected paths carry their own cause
	case r.Confirmed > 0:
		return "established"
	default:
		return "degraded"
	}
}

// TestLoopbackSchemes runs every registered scheme through the serving
// layer over real localhost sockets — TCP and the UDP mux, clean and
// fault-injected — asserting the same end-to-end invariants the
// in-memory protocol suite pins. This is the networked test battery's
// centerpiece: scheme code, protocol, framing, mux, session manager and
// client helper all under one roof.
func TestLoopbackSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model and soaks real sockets")
	}
	for _, name := range core.SchemeNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, proto := range []string{"tcp", "udp"} {
				proto := proto
				t.Run(proto, func(t *testing.T) {
					t.Run("clean", func(t *testing.T) {
						client, servers := runLoopback(t, name, proto, false, 3, 8)
						checkLoopback(t, name, true, client, servers)
					})
					t.Run("faulty", func(t *testing.T) {
						client, servers := runLoopback(t, name, proto, true, 3, 8)
						checkLoopback(t, name, false, client, servers)
					})
				})
			}
		})
	}
}
