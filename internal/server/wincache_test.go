package server

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/protocol"
	"repro/internal/transport"
)

// newWinCacheServer builds an unstarted Server (no listeners) so the
// sessionWindows path can be exercised directly.
func newWinCacheServer(t testing.TB, cacheSize int) *Server {
	t.Helper()
	srv, err := New(Config{
		Template:        schemeTemplate(t, "lora-key"),
		Scenario:        loopbackScenario(),
		Seed:            loopbackSeed,
		Workers:         1,
		WindowCacheSize: cacheSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

func sameWindows(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				return false
			}
		}
	}
	return true
}

// TestSessionWindowsCachedByteIdentical: the memoized derivation must be
// indistinguishable from calling SessionWindows directly — cold miss,
// warm hit, and with caching disabled.
func TestSessionWindowsCachedByteIdentical(t *testing.T) {
	srv := newWinCacheServer(t, 0) // 0 → default size
	for _, vehicle := range []uint64{1, 99, 1 << 40} {
		want, _, err := SessionWindows(loopbackScenario(), srv.cfg.Template.Cfg, loopbackSeed, vehicle, 6)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := srv.sessionWindows(vehicle, 6)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := srv.sessionWindows(vehicle, 6)
		if err != nil {
			t.Fatal(err)
		}
		if !sameWindows(want, cold) || !sameWindows(want, warm) {
			t.Fatalf("vehicle %d: cached windows differ from direct derivation", vehicle)
		}
	}
	// A different window count is a different key, not a truncated reuse.
	a4, err := srv.sessionWindows(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a4) != 4 {
		t.Fatalf("n=4 derivation returned %d windows", len(a4))
	}

	off := newWinCacheServer(t, -1)
	if off.wins != nil {
		t.Fatal("negative WindowCacheSize must disable the cache")
	}
	want, _, err := SessionWindows(loopbackScenario(), off.cfg.Template.Cfg, loopbackSeed, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := off.sessionWindows(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !sameWindows(want, got) {
		t.Fatal("uncached path differs from direct derivation")
	}
}

// TestSessionWindowsCacheEviction churns far past capacity and checks an
// evicted vehicle's rebuilt windows are still exact (purity: eviction
// can only cost time, never correctness).
func TestSessionWindowsCacheEviction(t *testing.T) {
	srv := newWinCacheServer(t, 8)
	want, err := srv.sessionWindows(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v <= 40; v++ {
		if _, err := srv.sessionWindows(v, 2); err != nil {
			t.Fatal(err)
		}
	}
	if st := srv.wins.Stats(); st.Evictions == 0 {
		t.Fatalf("churn past capacity produced no evictions: %+v", st)
	}
	got, err := srv.sessionWindows(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !sameWindows(want, got) {
		t.Fatal("rebuilt-after-eviction windows differ")
	}
}

// TestWindowCacheConcurrentSessions soaks the shared cache through the
// real worker pool under the race detector: many concurrent vehicles, a
// cache small enough to force eviction churn, and repeated IDs so hits,
// misses, and rebuilds interleave across workers.
func TestWindowCacheConcurrentSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("connection soak")
	}
	template := schemeTemplate(t, "lora-key")
	srv, err := New(Config{
		Template:        template,
		Scenario:        loopbackScenario(),
		Seed:            loopbackSeed,
		Workers:         4,
		WindowCacheSize: 4, // force eviction under concurrency
		Retry:           loopbackPolicy,
		HelloTimeout:    10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer func() { _ = srv.Close() }()

	const sessions = 24
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := transport.DialTCP(l.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer func() { _ = conn.Close() }()
			clone := template.Clone()
			v := Vehicle{ID: uint64(i % 6), Windows: 2, Session: fmt.Sprintf("soak/%d", i)}
			if _, err := RunVehicle(conn, clone, loopbackScenario(), template.Cfg, loopbackSeed, v,
				protocol.WithRetryPolicy(loopbackPolicy)); err != nil {
				errs <- fmt.Errorf("session %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := srv.wins.Stats()
	if st.Hits == 0 {
		t.Fatalf("repeated vehicle IDs produced no cache hits: %+v", st)
	}
}
